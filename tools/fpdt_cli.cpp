// fpdt — command-line front end to the capacity/memory/timing models.
//
//   fpdt plan <model> <gpus> [hbm_gib]          strategy comparison + pick
//   fpdt maxlen <model> <strategy> <gpus>       max trainable context
//   fpdt memory <model> <strategy> <gpus> <seq> per-GPU memory breakdown
//   fpdt simulate <model> <gpus> <seq> [chunk]  step time / MFU / engine busy
//   fpdt trace <model> <gpus> <chunk> <out.json> chrome://tracing pipeline dump
//   fpdt overlap [gpus] [chunks] [chunk_tokens] [--trace out.json]
//                                               measured stream-overlap report
//   fpdt profile [--steps N] [--gpus G] [--strategy S] [--trace t.json]
//                [--metrics m.json]             executed-step profiler
//   fpdt chaos [--spec S] [--steps N] [--gpus G]  fault-injected resilience run
//   fpdt elastic [--scenario S] [--steps N]       scripted churn + bitwise twin
//   fpdt footprint [--gpus G] [--stage all|0..3]  measured vs modeled ZeRO bytes
//   fpdt tune [--budget BYTES] [--top-k K]        cost-model-guided autotuner
//             [--sweep chunk]                     (or: regenerate Fig. 12 curve)
//   fpdt topo [--ranks 64..1024] [--hw PRESET]    weak-scaling flat-vs-hier model,
//             [--verify] [--grid-check]           bitwise differential checks
//   fpdt serve [--sessions N] [--seed S] ...      multi-tenant serving engine
//                                                 (chunked prefill + paged KV)
//
// Strategies: tp, tp-ac, tp-ac-oc, megatron-sp, ulysses, mst, fpdt-chunk, fpdt
// Models: gpt-2.7b gpt-6.7b gpt-13b gpt-30b llama-8b llama-70b
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "cli_args.h"
#include "comm/hierarchical_group.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/units.h"
#include "core/fpdt_trainer.h"
#include "data/synthetic_corpus.h"
#include "fault/fault_injector.h"
#include "fault/elastic.h"
#include "fault/resilient_trainer.h"
#include "kernels/backend.h"
#include "nn/model_config.h"
#include "obs/bench.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "parallel/grid2d.h"
#include "parallel/zero/sharded_optimizer.h"
#include "parallel/zero/zero_engine.h"
#include "perfmodel/evaluate.h"
#include "serve/engine.h"
#include "sim/runtime_bridge.h"
#include "sim/timeline.h"
#include "topo/topo_model.h"
#include "topo/topology.h"
#include "tune/sweep.h"
#include "tune/tuner.h"

namespace {

using namespace fpdt;
using perfmodel::Strategy;

Strategy strategy_by_name(const std::string& name) {
  if (name == "tp") return Strategy::megatron_tp(false, false);
  if (name == "tp-ac") return Strategy::megatron_tp(true, false);
  if (name == "tp-ac-oc") return Strategy::megatron_tp(true, true);
  if (name == "megatron-sp") return Strategy::megatron_sp();
  if (name == "ulysses") return Strategy::ulysses(3, true, true);
  if (name == "mst") return Strategy::mst();
  if (name == "fpdt-chunk") return Strategy::fpdt_chunking_only();
  if (name == "fpdt") return Strategy::fpdt();
  throw FpdtError("unknown strategy: " + name +
                  " (try tp, tp-ac, tp-ac-oc, megatron-sp, ulysses, mst, fpdt-chunk, fpdt)");
}

int usage() {
  std::cerr << "usage:\n"
               "  fpdt plan <model> <gpus> [hbm_gib=80]\n"
               "  fpdt maxlen <model> <strategy> <gpus> [hbm_gib=80]\n"
               "  fpdt memory <model> <strategy> <gpus> <seq>\n"
               "  fpdt simulate <model> <gpus> <seq> [chunk=64K]\n"
               "  fpdt trace <model> <gpus> <chunk> <out.json>\n"
               "  fpdt overlap [gpus=2] [chunks=4] [chunk_tokens=64] [--trace out.json]\n"
               "  fpdt profile [--steps 2] [--gpus 2] [--chunks 4] [--chunk-tokens 64]\n"
               "               [--strategy fpdt|ulysses|megatron-sp|ring] [--model tiny-gpt]\n"
               "               [--zero-stage -1..3] [--backend scalar|simd]\n"
               "               [--hw a100-nvlink|a100-40g|pcie-host]\n"
               "               [--ranks-per-node R] [--head-degree H]\n"
               "               [--trace trace.json] [--metrics metrics.json] [--no-trace]\n"
               "  fpdt kernels                                list math-kernel backends\n"
               "  fpdt chaos [--spec 'h2d:p=0.05;collective:step=2'] [--steps 4] [--gpus 2]\n"
               "             [--chunks 4] [--chunk-tokens 64] [--seed 1234]\n"
               "             [--ckpt fpdt_chaos.ckpt] [--no-verify] [--zero-stage 0..3]\n"
               "  fpdt elastic [--scenario 'ranklost:step=1,rank=1;rejoin:step=3'] [--steps 6]\n"
               "               [--gpus 4] [--chunks 2] [--chunk-tokens 32] [--seed 1234]\n"
               "               [--ckpt fpdt_elastic.ckpt] [--no-verify] [--zero-stage 0..3]\n"
               "               [--ranks-per-node R] [--head-degree H]\n"
               "               [--keep-ckpt]      rank churn drill; twin must match bitwise\n"
               "  fpdt footprint [--gpus 2] [--chunks 4] [--chunk-tokens 64]\n"
               "                 [--stage all|0|1|2|3]\n"
               "  fpdt tune [--model tiny-gpt] [--gpus 2] [--seq 512] [--budget 1450K]\n"
               "            [--top-k 6] [--steps 1] [--seed 1234] [--cache tune.cache]\n"
               "            [--json tune.json] [--max-chunks 8] [--backend scalar|simd]\n"
               "            [--hw a100-nvlink|a100-40g|pcie-host] [--grid]\n"
               "  fpdt tune --sweep chunk [--csv fig12_chunk_tradeoff.csv]\n"
               "  fpdt topo [--ranks 64..1024] [--hw a100-nvlink|a100-40g|pcie-host]\n"
               "            [--model gpt-6.7b] [--ctx-per-gpu 32K] [--chunks 4]\n"
               "            [--csv weak_scaling.csv] [--check]    weak-scaling sweep + gate\n"
               "  fpdt topo --verify                 flat-vs-hierarchical bitwise differential\n"
               "  fpdt topo --grid-check             2D-vs-1D loss bit-identity, both backends\n"
               "  fpdt bench [--out-dir DIR] [--steps 2] [--seed 1234] [--active-backend-only]\n"
               "             [--json]                     canonical perf-snapshot suite\n"
               "  fpdt serve [--sessions 64] [--seed 1234] [--min-len 2K] [--max-len 256K]\n"
               "             [--decode-min 4] [--decode-max 32] [--page-tokens 1K]\n"
               "             [--chunk-tokens 4K] [--max-active 4] [--gpus 1] [--hbm 256M]\n"
               "             [--model tiny-gpt] [--backend scalar|simd] [--faults SPEC]\n"
               "             [--execute] [--verify] [--print-transcript]\n"
               "             [--metrics m.json]           multi-tenant serving engine\n";
  return 2;
}

sim::HardwareSpec hardware(int hbm_gib) {
  return hbm_gib <= 40 ? sim::a100_40g_node() : sim::a100_80g_node();
}

int cmd_plan(const std::string& model, int gpus, int hbm_gib) {
  const nn::ModelConfig cfg = nn::model_by_name(model);
  const sim::HardwareSpec hw = hardware(hbm_gib);
  TextTable t({"strategy", "max_ctx", "hbm", "mfu"});
  for (const char* name :
       {"tp-ac-oc", "megatron-sp", "ulysses", "mst", "fpdt-chunk", "fpdt"}) {
    const Strategy st = strategy_by_name(name);
    const std::int64_t max_len = perfmodel::max_sequence(cfg, st, gpus, hw);
    if (max_len == 0) {
      t.add_row({name, "OOM", "-", "-"});
      continue;
    }
    const perfmodel::Evaluation ev = perfmodel::evaluate(cfg, st, gpus, max_len, hw);
    t.add_row({name, format_token_count(max_len), format_bytes(ev.memory.device_total()),
               cell_pct(ev.mfu)});
  }
  t.print(std::cout);
  return 0;
}

int cmd_maxlen(const std::string& model, const std::string& strat, int gpus, int hbm_gib) {
  const std::int64_t len = perfmodel::max_sequence(
      nn::model_by_name(model), strategy_by_name(strat), gpus, hardware(hbm_gib));
  std::cout << (len == 0 ? "OOM" : format_token_count(len)) << "\n";
  return len == 0 ? 1 : 0;
}

int cmd_memory(const std::string& model, const std::string& strat, int gpus,
               const std::string& seq) {
  const nn::ModelConfig cfg = nn::model_by_name(model);
  const perfmodel::MemoryBreakdown mb = perfmodel::estimate_memory(
      cfg, strategy_by_name(strat), gpus, parse_token_count(seq));
  TextTable t({"component", "per-gpu bytes"});
  t.add_row({"params", format_bytes(mb.params)});
  t.add_row({"grads", format_bytes(mb.grads)});
  t.add_row({"optimizer", format_bytes(mb.optimizer)});
  t.add_row({"zero3 gather", format_bytes(mb.gathered_params)});
  t.add_row({"stored activations", format_bytes(mb.stored_activations)});
  t.add_row({"working set", format_bytes(mb.working_set)});
  t.add_row({"logits spike", format_bytes(mb.logits_spike)});
  t.add_row({"TOTAL (device)", format_bytes(mb.device_total())});
  t.add_row({"host (offloaded)", format_bytes(mb.host_bytes)});
  t.print(std::cout);
  return 0;
}

int cmd_simulate(const std::string& model, int gpus, const std::string& seq,
                 const std::string& chunk) {
  const nn::ModelConfig cfg = nn::model_by_name(model);
  const std::int64_t s_global = parse_token_count(seq);
  Strategy st = strategy_by_name("fpdt");
  st.fpdt_chunk_tokens = parse_token_count(chunk);
  const perfmodel::Evaluation ev =
      perfmodel::evaluate(cfg, st, gpus, s_global, sim::a100_80g_node());
  std::cout << "model " << cfg.name << ", " << gpus << " GPUs, seq "
            << format_token_count(s_global) << ", chunk " << format_token_count(st.fpdt_chunk_tokens)
            << (ev.recompute_fallback ? " (recompute fallback: host-bound)" : "") << "\n"
            << "fits: " << (ev.fits ? "yes" : "NO (would OOM)") << "\n"
            << "step time: " << format_seconds(ev.step_s) << "   MFU: " << cell_pct(ev.mfu)
            << "\n"
            << "per-layer busy  compute " << format_seconds(ev.layer.compute_busy_s) << "  h2d "
            << format_seconds(ev.layer.h2d_busy_s) << "  d2h "
            << format_seconds(ev.layer.d2h_busy_s) << "  comm "
            << format_seconds(ev.layer.comm_busy_s) << "\n";
  return 0;
}

int cmd_trace(const std::string& model, int gpus, const std::string& chunk,
              const std::string& out_path) {
  const nn::ModelConfig cfg = nn::model_by_name(model);
  const std::int64_t c = parse_token_count(chunk);
  const sim::CostModel cm(sim::a100_80g_node(), gpus);
  // 4 chunks of the requested size make a readable pipeline.
  sim::PipelineSim ps =
      sim::build_fpdt_forward_sim(cfg, cm, 4 * c / gpus, 4, true, true);
  std::cerr << ps.trace(32);  // text preview
  std::ofstream out(out_path);
  out << ps.chrome_trace_json();
  FPDT_CHECK(out.good()) << " cannot write " << out_path;
  std::cout << "wrote " << out_path << " (open in chrome://tracing or Perfetto)\n";
  return 0;
}

// Runs an *executed* FPDT training step (tiny GPT, emulated group) with the
// stream engine on, stream rates taken from the A100 cost model, and prints
// the measured transfer timeline next to the simulator's forward-pipeline
// prediction for the same shapes — prediction and measurement on one scale.
int cmd_overlap(int gpus, std::int64_t chunks, std::int64_t chunk_tokens,
                const std::string& trace_path) {
  const nn::ModelConfig cfg = nn::tiny_gpt(64, 2, 4, 96);
  const sim::CostModel cm(sim::a100_80g_node(), gpus);

  core::FpdtConfig fcfg;
  fcfg.chunks_per_rank = chunks;
  const std::int64_t s_global = static_cast<std::int64_t>(gpus) * chunks * chunk_tokens;

  nn::Model model(cfg, 1234);
  core::FpdtTrainer trainer(model, gpus, fcfg);
  trainer.env().set_stream_rates(sim::stream_rates(cm));

  if (!trace_path.empty()) {
    obs::Tracer::instance().clear();
    obs::Tracer::instance().set_enabled(true);
  }
  data::SyntheticCorpus corpus(cfg.vocab, 7);
  const double loss = trainer.train_step_grads(corpus.sample(s_global + 1));

  const runtime::TimelineReport measured = trainer.env().timeline_report(0);
  if (!trace_path.empty()) {
    trainer.env().synchronize_streams();
    obs::Tracer::instance().write_chrome_trace(trace_path);
    obs::Tracer::instance().set_enabled(false);
    std::cout << "wrote trace to " << trace_path << "\n";
  }
  const runtime::TransferStats& tx = trainer.env().device(0).transfers();
  std::cout << "executed FPDT step: " << cfg.name << ", " << gpus << " GPUs, seq "
            << format_token_count(s_global) << " (" << chunks << " chunks x "
            << format_token_count(chunk_tokens) << "/rank), loss " << loss << "\n"
            << "rank-0 traffic: h2d " << format_bytes(tx.h2d_bytes) << " in " << tx.h2d_count
            << " transfers, d2h " << format_bytes(tx.d2h_bytes) << " in " << tx.d2h_count
            << " transfers, hbm peak " << format_bytes(trainer.env().max_hbm_peak()) << "\n"
            << measured.to_string();

  // Simulator prediction covers the forward chunk pipeline only (the
  // measured report spans forward + backward), so compare ratios, not
  // absolute times.
  const runtime::TimelineReport predicted = sim::sim_timeline_report(
      sim::build_fpdt_forward_sim(cfg, cm, s_global / gpus, chunks, fcfg.offload,
                                  fcfg.double_buffer));
  std::cout << "simulated forward pipeline (double_buffer="
            << (fcfg.double_buffer ? "true" : "false") << "):\n"
            << predicted.to_string();
  return 0;
}

int cmd_profile(int argc, char** argv, int base) {
  obs::ProfileOptions opt;
  std::string model, hw_name;
  cli::FlagParser f("profile", argc, argv, base);
  while (f.more()) {
    if (f.match("--steps", &opt.steps)) continue;
    if (f.match("--gpus", &opt.world)) continue;
    if (f.match("--chunks", &opt.chunks)) continue;
    if (f.match("--chunk-tokens", &opt.chunk_tokens)) continue;
    if (f.match("--strategy", &opt.strategy)) continue;
    if (f.match("--model", &model)) continue;
    if (f.match("--seed", &opt.seed)) continue;
    if (f.match("--trace", &opt.trace_path)) continue;
    if (f.match("--metrics", &opt.metrics_path)) continue;
    if (f.match_set("--no-trace", &opt.trace, false)) continue;
    if (f.match("--zero-stage", &opt.zero_stage)) continue;
    if (f.match("--backend", &opt.kernel_backend)) continue;
    if (f.match("--hw", &hw_name)) continue;
    if (f.match("--ranks-per-node", &opt.ranks_per_node)) continue;
    if (f.match("--head-degree", &opt.head_degree)) continue;
    f.unknown();
  }
  if (!model.empty()) opt.model = nn::model_by_name(model);
  if (!hw_name.empty()) opt.hw = sim::hw_preset(hw_name);

  const obs::ProfileResult res = obs::run_profile(opt);

  std::cout << "profiled " << opt.steps << " " << opt.strategy << " steps, " << opt.world
            << " GPUs, " << format_token_count(res.tokens_per_step) << " tokens/step";
  if (opt.zero_stage >= 0) std::cout << ", zero-" << opt.zero_stage;
  std::cout << ", kernels "
            << (opt.kernel_backend.empty() ? kernels::active_name() : opt.kernel_backend);
  std::cout << "\n";
  TextTable t({"step", "loss", "virtual", "wall", "tok/s", "mfu", "par_eff", "overlap",
               "exposed", "hbm peak"});
  for (const obs::StepStats& s : res.steps) {
    t.add_row({std::to_string(s.step), cell_f2(s.loss), format_seconds(s.virtual_step_s),
               format_seconds(s.wall_s), cell_f2(s.tokens_per_s), cell_pct(s.mfu),
               cell_pct(s.parallel_efficiency), cell_pct(s.overlap_ratio),
               format_seconds(s.exposed_transfer_s), format_bytes(s.hbm_peak_bytes)});
  }
  t.print(std::cout);
  if (!res.steps.empty() && res.steps.back().inter_link_bytes > 0) {
    const obs::StepStats& last = res.steps.back();
    std::cout << "link traffic (last step): intra " << format_bytes(last.intra_link_bytes)
              << ", inter " << format_bytes(last.inter_link_bytes) << ", inter bw util "
              << cell_pct(last.inter_bw_util) << "\n";
  }
  obs::MetricsRegistry::global().print_table(std::cout);
  if (opt.trace && !opt.trace_path.empty()) {
    std::cout << "wrote trace to " << opt.trace_path << " (open in Perfetto / chrome://tracing)\n";
  }
  if (!opt.metrics_path.empty()) std::cout << "wrote metrics to " << opt.metrics_path << "\n";
  return 0;
}

// Executed ZeRO footprint audit: runs one real training step + optimizer
// update per requested stage on the tiny model and prints each stage's
// *measured* model-state residency (what the ZeroEngine actually charged
// against rank-0's MemoryPool) next to the analytic memory model's
// prediction for the same strategy — the measured-vs-modeled column the
// differential oracle test (tests/test_zero.cpp) enforces in CI. The final
// loss is printed at full precision: every stage must match stage 0 bitwise.
int cmd_footprint(int argc, char** argv, int base) {
  int gpus = 2;
  std::int64_t chunks = 4, chunk_tokens = 64;
  std::string stage_arg = "all";
  cli::FlagParser f("footprint", argc, argv, base);
  while (f.more()) {
    if (f.match("--gpus", &gpus)) continue;
    if (f.match("--chunks", &chunks)) continue;
    if (f.match("--chunk-tokens", &chunk_tokens)) continue;
    if (f.match("--stage", &stage_arg)) continue;
    f.unknown();
  }
  std::vector<int> stages;
  if (stage_arg == "all") stages = {0, 1, 2, 3};
  else stages = {std::atoi(stage_arg.c_str())};

  const nn::ModelConfig cfg = nn::tiny_gpt();
  const std::int64_t s_global = static_cast<std::int64_t>(gpus) * chunks * chunk_tokens;
  std::cout << "executed ZeRO footprint: " << cfg.name << ", " << gpus << " GPUs, seq "
            << format_token_count(s_global) << " (one step + optimizer update per stage)\n";

  TextTable t({"stage", "component", "measured", "modeled", "delta"});
  std::cout.precision(17);
  for (int stage : stages) {
    core::FpdtConfig fcfg;
    fcfg.chunks_per_rank = chunks;
    fcfg.zero_stage = stage;
    nn::Model model(cfg, 1234);
    core::FpdtTrainer trainer(model, gpus, fcfg);
    data::SyntheticCorpus corpus(cfg.vocab, 7);
    const double loss = trainer.train_step_grads(corpus.sample(s_global + 1));
    zero::ShardedOptimizer opt(trainer.env(), zero::ZeroConfig{stage});
    opt.step([&](const nn::ParamVisitor& v) { model.visit_params(v); });
    trainer.env().synchronize_streams();

    const zero::ResidentBytes meas = trainer.zero_engine()->resident(0);
    Strategy st = Strategy::fpdt();
    st.zero_stage = stage;
    st.fpdt_chunk_tokens = chunk_tokens * gpus;  // global chunk
    const perfmodel::MemoryBreakdown mb = perfmodel::estimate_memory(cfg, st, gpus, s_global);
    const auto row = [&](const char* name, std::int64_t m, std::int64_t p) {
      const std::int64_t d = m - p;
      t.add_row({"zero-" + std::to_string(stage), name, format_bytes(m), format_bytes(p),
                 (d >= 0 ? "+" : "-") + format_bytes(std::abs(d))});
    };
    row("params", meas.params, mb.params);
    row("grads", meas.grads, mb.grads);
    row("optimizer", meas.optimizer, mb.optimizer);
    row("TOTAL", meas.total(), mb.params + mb.grads + mb.optimizer);
    std::cout << "zero-" << stage << ": loss " << loss << ", hbm peak "
              << format_bytes(trainer.env().max_hbm_peak()) << ", model-state resident "
              << format_bytes(meas.total()) << "\n";
  }
  t.print(std::cout);
  std::cout << "(modeled = perfmodel::estimate_memory; deltas come from bias parameters the\n"
               " analytic param count omits and per-parameter ceil(n/P) shard padding)\n";
  return 0;
}

// Deterministic fault-injection drill: a faulted run (retry / degrade /
// restore as needed) followed by a fault-free twin, verifying the injector
// was survivable and invisible to training math.
int cmd_chaos(int argc, char** argv, int base) {
  fault::ChaosOptions opt;
  // Default spec: env override, else a canned mix exercising every
  // recovery path short of math degradation.
  if (const char* env = std::getenv("FPDT_FAULTS")) opt.spec = env;
  if (opt.spec.empty()) opt.spec = "h2d:p=0.05;d2h:p=0.05;collective:step=2";
  cli::FlagParser f("chaos", argc, argv, base);
  while (f.more()) {
    if (f.match("--spec", &opt.spec)) continue;
    if (f.match("--steps", &opt.steps)) continue;
    if (f.match("--gpus", &opt.world)) continue;
    if (f.match("--chunks", &opt.chunks)) continue;
    if (f.match("--chunk-tokens", &opt.chunk_tokens)) continue;
    if (f.match("--seed", &opt.seed)) continue;
    if (f.match("--ckpt", &opt.checkpoint_path)) continue;
    if (f.match_set("--no-verify", &opt.verify_against_clean, false)) continue;
    if (f.match("--zero-stage", &opt.zero_stage)) continue;
    f.unknown();
  }

  fault::FaultInjector::instance().configure(opt.spec);
  std::cout << fault::FaultInjector::instance().describe();
  const fault::ChaosResult res = fault::run_chaos(opt);
  std::cout << res.report(opt.steps);
  if (!res.survived(opt.steps)) return 1;
  if (opt.verify_against_clean && !res.loss_bitwise_match && !res.math_degraded &&
      !res.resharded) {
    return 1;
  }
  return 0;
}

// Scripted rank churn (ranklost / rankslow / netpart / rejoin) with
// coordinated re-sharding, then the bitwise twin: a fresh run at the
// post-reshard world restored from the same snapshot must reproduce every
// replayed loss bit for bit.
int cmd_elastic(int argc, char** argv, int base) {
  fault::ElasticOptions opt;
  opt.scenario = "ranklost:step=1,rank=1";
  cli::FlagParser f("elastic", argc, argv, base);
  while (f.more()) {
    if (f.match("--scenario", &opt.scenario)) continue;
    if (f.match("--steps", &opt.steps)) continue;
    if (f.match("--gpus", &opt.world)) continue;
    if (f.match("--chunks", &opt.chunks)) continue;
    if (f.match("--chunk-tokens", &opt.chunk_tokens)) continue;
    if (f.match("--seed", &opt.seed)) continue;
    if (f.match("--ckpt", &opt.checkpoint_path)) continue;
    if (f.match_set("--no-verify", &opt.verify_twin, false)) continue;
    if (f.match("--zero-stage", &opt.zero_stage)) continue;
    if (f.match("--ranks-per-node", &opt.ranks_per_node)) continue;
    if (f.match("--head-degree", &opt.head_degree)) continue;
    if (f.match_set("--keep-ckpt", &opt.keep_checkpoint, true)) continue;
    f.unknown();
  }

  std::cout << "elastic: scenario '" << opt.scenario << "' world " << opt.world << " zero-stage "
            << opt.zero_stage;
  if (opt.ranks_per_node > 0 || opt.head_degree > 0) {
    std::cout << " grid rpn=" << opt.ranks_per_node << " hd=" << opt.head_degree;
  }
  std::cout << "\n";
  const fault::ElasticResult res = fault::run_elastic(opt);
  std::cout << res.report(opt.steps);
  if (!res.survived(opt.steps)) return 1;
  if (opt.verify_twin && !res.twin_bitwise_match) return 1;
  return 0;
}

// Cost-model-guided autotuner: enumerate the FPDT knob grid, prune with the
// analytic memory+latency model, execute the top-K survivors as real
// profiled training steps, and pick the fastest measured config that fits
// the HBM budget. `--sweep chunk` instead regenerates the Fig. 12
// chunk-tradeoff curve from the tuner's analytic pricing and shape-checks it.
int cmd_tune(int argc, char** argv, int base) {
  tune::TuneRequest req;
  std::string model = "tiny-gpt", sweep, json_path, backend, hw_name;
  std::string csv_path = "fig12_chunk_tradeoff.csv";
  std::int64_t max_chunks = 0;
  bool grid = false;
  cli::FlagParser f("tune", argc, argv, base);
  while (f.more()) {
    if (f.match("--model", &model)) continue;
    if (f.match("--hw", &hw_name)) continue;
    if (f.match_set("--grid", &grid)) continue;
    if (f.match("--gpus", &req.world)) continue;
    if (f.match_tokens("--seq", &req.s_global)) continue;
    if (f.match_tokens("--budget", &req.hbm_budget_bytes)) continue;  // bytes; K/M suffix ok
    if (f.match("--top-k", &req.top_k)) continue;
    if (f.match("--steps", &req.steps)) continue;
    if (f.match("--seed", &req.seed)) continue;
    if (f.match("--cache", &req.cache_path)) continue;
    if (f.match("--json", &json_path)) continue;
    if (f.match("--sweep", &sweep)) continue;
    if (f.match("--csv", &csv_path)) continue;
    if (f.match("--max-chunks", &max_chunks)) continue;
    if (f.match("--backend", &backend)) continue;
    f.unknown();
  }
  if (!backend.empty()) {
    kernels::backend(backend);  // fail fast on unknown names
    req.space.kernel_backends = {backend};
  }
  if (!hw_name.empty()) req.hw = sim::hw_preset(hw_name);
  if (grid) {
    // Opt the 2D grid axes into the sweep: flat plus a two-rank node / head
    // axis (the planner drops shapes the world or model cannot carry).
    req.space.ranks_per_node = {0, 2};
    req.space.head_degrees = {0, 2};
  }

  if (sweep == "chunk") {
    const std::vector<tune::ChunkSweepRow> rows = tune::chunk_sweep();
    TextTable t = tune::chunk_sweep_table(rows);
    std::cout << "Figure 12 — MFU and HBM vs chunk size at 256K global sequence"
                 " (tuner analytic sweep)\n";
    t.print(std::cout);
    t.write_csv(csv_path);
    std::cout << "wrote " << csv_path << "\n";
    std::string why;
    if (!tune::check_chunk_curve(rows, &why)) {
      std::cerr << "chunk curve shape check FAILED:\n" << why;
      return 1;
    }
    std::cout << "curve shape: monotone-then-flat around the modeled sweet spot — OK\n";
    return 0;
  }
  if (!sweep.empty()) throw FpdtError("unknown tune sweep: " + sweep + " (try chunk)");

  req.model = nn::model_by_name(model);
  if (max_chunks > 0) {
    req.space.chunks_per_rank.clear();
    for (std::int64_t u = 1; u <= max_chunks; u *= 2) req.space.chunks_per_rank.push_back(u);
  }

  const tune::TuneReport rep = tune::tune(req);
  std::cout << "tune: " << rep.model << ", " << rep.world << " GPUs, seq "
            << format_token_count(rep.s_global) << ", HBM budget "
            << format_bytes(rep.budget_bytes) << "\n"
            << "      enumerated " << rep.enumerated << ", pruned " << rep.pruned_count
            << " (conservative model-state floor), executed " << rep.executed_count << " ("
            << rep.cache_hits << " cache hit" << (rep.cache_hits == 1 ? "" : "s") << ")\n"
            << rep.table();
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << rep.json() << "\n";
    FPDT_CHECK(out.good()) << " cannot write " << json_path;
    std::cout << "wrote " << json_path << "\n";
  }
  const tune::TuneRow* w = rep.winning();
  if (w == nullptr) {
    std::cout << "no executed candidate fits the budget — raise --budget, widen --top-k, or"
                 " shrink the model\n";
    return 1;
  }
  const core::FpdtConfig cfg = rep.winning_config();
  std::cout << "winner: " << w->planned.cand.label << " — measured "
            << format_seconds(w->measured.virtual_step_s) << "/step, "
            << cell_f2(w->measured.tokens_per_s) << " tok/s, hbm peak "
            << format_bytes(w->measured.hbm_peak_bytes) << " (budget "
            << format_bytes(rep.budget_bytes) << ")\n"
            << "FpdtConfig: chunks_per_rank=" << cfg.chunks_per_rank
            << " offload=" << (cfg.offload ? "true" : "false")
            << " double_buffer=" << (cfg.double_buffer ? "true" : "false")
            << " cache_forward_outputs=" << (cfg.cache_forward_outputs ? "true" : "false")
            << " ffn_chunk_multiplier=" << cfg.ffn_chunk_multiplier
            << " lm_head_chunks=" << cfg.lm_head_chunks << " zero_stage=" << cfg.zero_stage
            << "\n";
  return 0;
}

// ---- fpdt topo -------------------------------------------------------------

// Bitwise tensor equality — the differential contract between flat and
// hierarchical collectives is bit-identity, not closeness.
bool bitwise_equal(const Tensor& a, const Tensor& b) {
  if (a.numel() != b.numel()) return false;
  return std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<std::size_t>(a.numel())) == 0;
}

int compare_ranks(const char* what, int P, int nodes, const std::vector<Tensor>& flat,
                  const std::vector<Tensor>& hier) {
  for (std::size_t r = 0; r < flat.size(); ++r) {
    if (!bitwise_equal(flat[r], hier[r])) {
      std::cerr << "topo verify FAILED: " << what << " ranks=" << P << " nodes=" << nodes
                << " rank " << r << " differs from flat\n";
      return 1;
    }
  }
  return 0;
}

// Differential oracle: every collective of comm::HierarchicalProcessGroup
// against the flat seed group on identical seeded inputs, across
// ranks {4,8,16} x nodes {1,2,4}. The hierarchical payload contract is
// bitwise equality on every rank — the hierarchy may only re-price
// transport, never touch a float.
int topo_verify() {
  int failures = 0;
  for (const int P : {4, 8, 16}) {
    for (const int nodes : {1, 2, 4}) {
      if (P % nodes != 0) continue;
      const int rpn = P / nodes;
      comm::ProcessGroup flat(P);
      comm::HierarchicalProcessGroup hier(
          topo::Topology::grid(nodes, rpn, sim::a100_80g_node()));
      Rng rng(0xF0D7u + static_cast<std::uint64_t>(P * 10 + nodes));

      // Ulysses All2All, both directions, plus the exact round trip.
      std::vector<Tensor> heads;
      for (int r = 0; r < P; ++r) heads.push_back(Tensor::randn({3, 2 * P, 4}, rng));
      const auto gf = flat.all_to_all_heads_to_seq(heads);
      const auto gh = hier.all_to_all_heads_to_seq(heads);
      failures += compare_ranks("heads_to_seq", P, nodes, gf, gh);
      failures += compare_ranks("seq_to_heads", P, nodes, flat.all_to_all_seq_to_heads(gf),
                                hier.all_to_all_seq_to_heads(gh));

      std::vector<Tensor> shard, full, vec, ring;
      for (int r = 0; r < P; ++r) {
        shard.push_back(Tensor::randn({5, 3}, rng));
        full.push_back(Tensor::randn({2 * P, 3}, rng));
        vec.push_back(Tensor::randn({7}, rng));
        ring.push_back(Tensor::randn({4}, rng));
      }
      failures += compare_ranks("all_gather", P, nodes, flat.all_gather(shard),
                                hier.all_gather(shard));
      failures += compare_ranks("reduce_scatter", P, nodes, flat.reduce_scatter(full),
                                hier.reduce_scatter(full));
      failures += compare_ranks("all_reduce", P, nodes, flat.all_reduce(vec),
                                hier.all_reduce(vec));
      failures += compare_ranks("ring_shift", P, nodes, flat.ring_shift(ring),
                                hier.ring_shift(ring));

      const topo::LinkStats ls = hier.link_stats();
      std::cout << "topo verify OK: ranks=" << P << " nodes=" << nodes << " rpn=" << rpn
                << " — all collectives bitwise-identical to flat; " << ls.to_string() << "\n";
      if (nodes > 1 && ls.inter_bytes == 0) {
        std::cerr << "topo verify FAILED: multi-node run charged no inter-node traffic\n";
        ++failures;
      }
    }
  }
  return failures == 0 ? 0 : 1;
}

// 2D-vs-1D trainer differential: one FPDT training step at world 4, flat/1D
// against the 2x2 grid (2 nodes x 2 ranks, head axis on-node), same seed and
// tokens, under both kernel backends. The grid re-routes traffic only, so
// the losses must agree bit for bit.
int topo_grid_check() {
  const nn::ModelConfig mc = nn::tiny_gpt(64, 2, 4, 96);
  const int world = 4;
  const std::int64_t chunks = 2, chunk_tokens = 32;
  const std::int64_t s_global = static_cast<std::int64_t>(world) * chunks * chunk_tokens;
  int failures = 0;
  for (const char* backend : {"scalar", "simd"}) {
    kernels::BackendScope scope(backend);
    double losses[2] = {0.0, 0.0};
    std::int64_t inter_bytes = 0;
    for (int g = 0; g < 2; ++g) {
      core::FpdtConfig cfg;
      cfg.chunks_per_rank = chunks;
      if (g == 1) {
        cfg.ranks_per_node = 2;
        cfg.head_degree = 2;
        FPDT_CHECK(parallel::Grid2D::valid(world, cfg.ranks_per_node, cfg.head_degree,
                                           mc.n_head));
      }
      nn::Model model(mc, 1234);
      core::FpdtTrainer trainer(model, world, cfg);
      data::SyntheticCorpus corpus(mc.vocab, 7);
      losses[g] = trainer.train_step_grads(corpus.sample(s_global + 1));
      if (g == 1) inter_bytes = trainer.env().pg().link_stats().inter_bytes;
    }
    if (std::memcmp(&losses[0], &losses[1], sizeof(double)) != 0) {
      std::cerr.precision(17);
      std::cerr << "topo grid-check FAILED (" << backend << "): 1D loss " << losses[0]
                << " != 2D loss " << losses[1] << "\n";
      ++failures;
      continue;
    }
    std::cout.precision(17);
    std::cout << "topo grid-check OK (" << backend << "): 2x2 grid loss " << losses[1]
              << " bitwise == 1D, inter-node traffic " << format_bytes(inter_bytes) << "\n";
  }
  return failures == 0 ? 0 : 1;
}

// Weak-scaling sweep (default), flat-vs-hier differential (--verify), and
// the 2D-vs-1D trainer bit-identity drill (--grid-check). The sweep writes
// weak_scaling.csv and --check gates its shape contract — what
// ci/topo_smoke.sh runs.
int cmd_topo(int argc, char** argv, int base) {
  std::string ranks = "64..1024", hw_name, model = "gpt-6.7b";
  std::string csv_path = "weak_scaling.csv";
  topo::TopoModelOptions mopt;
  bool check = false, verify = false, grid_check = false;
  cli::FlagParser f("topo", argc, argv, base);
  while (f.more()) {
    if (f.match("--ranks", &ranks)) continue;
    if (f.match("--hw", &hw_name)) continue;
    if (f.match("--model", &model)) continue;
    if (f.match_tokens("--ctx-per-gpu", &mopt.ctx_per_gpu)) continue;
    if (f.match_tokens("--chunks", &mopt.chunks_per_rank)) continue;
    if (f.match("--csv", &csv_path)) continue;
    if (f.match_set("--check", &check)) continue;
    if (f.match_set("--verify", &verify)) continue;
    if (f.match_set("--grid-check", &grid_check)) continue;
    f.unknown();
  }

  if (verify || grid_check) {
    int rc = 0;
    if (verify) rc |= topo_verify();
    if (grid_check) rc |= topo_grid_check();
    return rc;
  }

  const std::size_t dots = ranks.find("..");
  FPDT_CHECK(dots != std::string::npos) << " --ranks wants lo..hi (e.g. 64..1024)";
  const int lo = std::atoi(ranks.substr(0, dots).c_str());
  const int hi = std::atoi(ranks.substr(dots + 2).c_str());
  const sim::HardwareSpec hw = sim::hw_preset(hw_name);
  mopt.model = nn::model_by_name(model);

  const std::vector<topo::ScalingRow> rows = topo::weak_scaling(hw, lo, hi, mopt);
  std::cout << "weak scaling — " << mopt.model.name << ", "
            << format_token_count(mopt.ctx_per_gpu) << " tokens/GPU, " << hw.gpus_per_node
            << " GPUs/node (flat vs hierarchical routing)\n";
  TextTable t({"gpus", "nodes", "seq", "flat step", "hier step", "speedup", "flat mfu",
               "hier mfu", "flat ib", "hier ib"});
  for (const topo::ScalingRow& r : rows) {
    t.add_row({std::to_string(r.gpus), std::to_string(r.nodes), format_token_count(r.seq_global),
               format_seconds(r.flat_step_s), format_seconds(r.hier_step_s),
               cell_f2(r.speedup) + "x", cell_pct(r.flat_mfu), cell_pct(r.hier_mfu),
               cell_pct(r.flat_inter_util), cell_pct(r.hier_inter_util)});
  }
  t.print(std::cout);
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    out << topo::scaling_csv(rows);
    FPDT_CHECK(out.good()) << " cannot write " << csv_path;
    std::cout << "wrote " << csv_path << "\n";
  }
  if (check) {
    std::string why;
    if (!topo::check_weak_scaling(rows, hw, mopt.ctx_per_gpu, &why)) {
      std::cerr << "weak-scaling shape check FAILED:\n" << why << "\n";
      return 1;
    }
    std::cout << "curve shape: hier beats flat on every multi-node point — OK\n";
  }
  return 0;
}

// Lists the registered math-kernel backends, which one is active for this
// process (FPDT_KERNEL_BACKEND or "scalar"), and whether "simd" dispatches
// to runtime-detected AVX2/FMA or the portable fallback. ci/kernel_smoke.sh
// greps this before asserting a speedup.
int cmd_kernels() {
  TextTable t({"backend", "active", "notes"});
  for (const std::string& name : kernels::available()) {
    std::string notes;
    if (name == "scalar") {
      notes = "bit-exact reference";
    } else if (name == "simd") {
      notes = kernels::simd_uses_avx2() ? "avx2+fma (runtime-detected)"
                                        : "portable fallback (no avx2)";
    }
    t.add_row({name, name == kernels::active_name() ? "*" : "", notes});
  }
  t.print(std::cout);
  return 0;
}

// `fpdt bench` — the canonical perf-snapshot suite (obs/bench.h): prints
// the human table and, with --out-dir, writes the auto-numbered
// BENCH_<n>.json that ci/bench_smoke.sh gates against its baseline.
int cmd_bench(int argc, char** argv, int base) {
  obs::BenchOptions opt;
  bool json_only = false;
  bool active_only = false;
  cli::FlagParser f("bench", argc, argv, base);
  while (f.more()) {
    if (f.match("--out-dir", &opt.out_dir)) continue;
    if (f.match("--steps", &opt.steps)) continue;
    if (f.match("--seed", &opt.seed)) continue;
    if (f.match_set("--active-backend-only", &active_only)) continue;
    if (f.match_set("--json", &json_only)) continue;
    f.unknown();
  }
  opt.all_backends = !active_only;

  std::string path;
  const obs::BenchReport rep = obs::run_bench(opt, &path);
  if (json_only) {
    std::cout << rep.json() << "\n";
  } else {
    std::cout << rep.table();
  }
  if (!path.empty()) std::cerr << "wrote bench snapshot to " << path << "\n";
  return 0;
}

// Multi-tenant serving engine: a seeded synthetic workload (mixed-length
// prompts, Poisson arrivals) through chunked prefill + paged two-tier KV +
// continuous batching. Virtual compute by default so the stock 64-session
// 2K–256K mix finishes in CI time; --execute runs the real model math and
// --verify replays every session bitwise against the monolithic
// nn::InferenceSession.
int cmd_serve(int argc, char** argv, int base) {
  serve::ServeOptions opt;
  std::string model_name = "tiny-gpt";
  std::string backend;
  std::string fault_spec;
  std::string metrics_path;
  bool print_transcript = false;
  cli::FlagParser f("serve", argc, argv, base);
  while (f.more()) {
    if (f.match("--sessions", &opt.traffic.sessions)) continue;
    if (f.match("--seed", &opt.traffic.seed)) continue;
    if (f.match_tokens("--min-len", &opt.traffic.min_prompt_tokens)) continue;
    if (f.match_tokens("--max-len", &opt.traffic.max_prompt_tokens)) continue;
    if (f.match("--decode-min", &opt.traffic.min_decode_tokens)) continue;
    if (f.match("--decode-max", &opt.traffic.max_decode_tokens)) continue;
    if (f.match_tokens("--page-tokens", &opt.page_tokens)) continue;
    if (f.match_tokens("--chunk-tokens", &opt.chunk_tokens)) continue;
    if (f.match("--max-active", &opt.max_active)) continue;
    if (f.match("--gpus", &opt.world)) continue;
    if (f.match_tokens("--hbm", &opt.hbm_bytes)) continue;
    if (f.match("--model", &model_name)) continue;
    if (f.match("--backend", &backend)) continue;
    if (f.match("--faults", &fault_spec)) continue;
    if (f.match("--metrics", &metrics_path)) continue;
    if (f.match_set("--execute", &opt.execute)) continue;
    if (f.match_set("--verify", &opt.verify)) continue;
    if (f.match_set("--print-transcript", &print_transcript)) continue;
    f.unknown();
  }
  if (opt.verify) opt.execute = true;
  opt.model = nn::model_by_name(model_name);
  kernels::BackendScope scope(backend);
  if (!fault_spec.empty()) fault::FaultInjector::instance().configure(fault_spec);

  std::cout << "serve: model " << opt.model.name << " gpus " << opt.world << " | sessions "
            << opt.traffic.sessions << " seed " << opt.traffic.seed << " prompts "
            << format_token_count(opt.traffic.min_prompt_tokens) << ".."
            << format_token_count(opt.traffic.max_prompt_tokens) << " decode "
            << opt.traffic.min_decode_tokens << ".." << opt.traffic.max_decode_tokens << "\n";
  std::cout << "serve: page " << format_token_count(opt.page_tokens) << " tokens, chunk "
            << format_token_count(opt.chunk_tokens) << " tokens, max-active " << opt.max_active
            << ", hbm " << format_bytes(opt.hbm_bytes) << ", "
            << (opt.execute ? "executed" : "virtual") << " compute, backend "
            << kernels::active_name() << "\n";

  serve::ServingEngine engine(opt);
  const serve::ServeReport report = engine.run();

  if (print_transcript) {
    for (const std::string& line : report.transcript) std::cout << line << "\n";
  }
  std::cout << report.table();
  std::cout << report.summary() << "\n";
  std::cout << report.timeline.to_string() << "\n";
  if (!fault_spec.empty()) {
    std::cout << fault::FaultInjector::instance().stats().to_string();
    fault::FaultInjector::instance().disable();
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    out << obs::MetricsRegistry::global().json();
    std::cout << "serve: metrics -> " << metrics_path << "\n";
  }
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // FPDT_FAULTS arms the injector process-wide (off when unset): any
    // command — profile, overlap — then runs under injected faults.
    fpdt::fault::FaultInjector::instance().configure_from_env();
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    if (cmd == "plan" && argc >= 4) {
      return cmd_plan(argv[2], std::atoi(argv[3]), argc > 4 ? std::atoi(argv[4]) : 80);
    }
    if (cmd == "maxlen" && argc >= 5) {
      return cmd_maxlen(argv[2], argv[3], std::atoi(argv[4]),
                        argc > 5 ? std::atoi(argv[5]) : 80);
    }
    if (cmd == "memory" && argc >= 6) {
      return cmd_memory(argv[2], argv[3], std::atoi(argv[4]), argv[5]);
    }
    if (cmd == "simulate" && argc >= 5) {
      return cmd_simulate(argv[2], std::atoi(argv[3]), argv[4], argc > 5 ? argv[5] : "64K");
    }
    if (cmd == "trace" && argc >= 6) {
      return cmd_trace(argv[2], std::atoi(argv[3]), argv[4], argv[5]);
    }
    if (cmd == "overlap") {
      int gpus = 2;
      std::int64_t chunks = 4, chunk_tokens = 64;
      std::string trace_path;
      int pos = 0;
      for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--trace") {
          FPDT_CHECK_LT(i + 1, argc) << " missing value for --trace";
          trace_path = argv[++i];
          continue;
        }
        if (pos == 0) gpus = std::atoi(argv[i]);
        else if (pos == 1) chunks = std::atoll(argv[i]);
        else if (pos == 2) chunk_tokens = std::atoll(argv[i]);
        ++pos;
      }
      return cmd_overlap(gpus, chunks, chunk_tokens, trace_path);
    }
    if (cmd == "kernels") return cmd_kernels();
    if (cmd == "profile") return cmd_profile(argc, argv, 2);
    if (cmd == "chaos") return cmd_chaos(argc, argv, 2);
    if (cmd == "elastic") return cmd_elastic(argc, argv, 2);
    if (cmd == "footprint") return cmd_footprint(argc, argv, 2);
    if (cmd == "tune") return cmd_tune(argc, argv, 2);
    if (cmd == "topo") return cmd_topo(argc, argv, 2);
    if (cmd == "bench") return cmd_bench(argc, argv, 2);
    if (cmd == "serve") return cmd_serve(argc, argv, 2);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
