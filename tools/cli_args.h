// Shared flag parsing for the fpdt subcommands. Every command used to
// hand-roll the same next()/atoi loop with its own unknown-flag message;
// this keeps one copy with consistent errors:
//
//   cli::FlagParser f("profile", argc, argv, base);
//   while (f.more()) {
//     if (f.match("--steps", &opt.steps)) continue;
//     if (f.match_set("--no-trace", &opt.trace, false)) continue;
//     f.unknown();  // throws FpdtError("unknown profile flag: --bogus")
//   }
//
// match() consumes "--flag value" when the current argument equals the flag
// name (so a flag's value may look like another flag); match_set() consumes
// a bare flag and stores a fixed bool.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/check.h"
#include "common/units.h"

namespace fpdt::cli {

class FlagParser {
 public:
  FlagParser(std::string cmd, int argc, char** argv, int base)
      : cmd_(std::move(cmd)), argc_(argc), argv_(argv), i_(base) {}

  bool more() const { return i_ < argc_; }

  bool match(const char* name, int* out) {
    if (!is(name)) return false;
    *out = std::atoi(value(name));
    return true;
  }

  bool match(const char* name, std::int64_t* out) {
    if (!is(name)) return false;
    *out = std::atoll(value(name));
    return true;
  }

  bool match(const char* name, std::uint64_t* out) {
    if (!is(name)) return false;
    *out = std::strtoull(value(name), nullptr, 10);
    return true;
  }

  bool match(const char* name, std::string* out) {
    if (!is(name)) return false;
    *out = value(name);
    return true;
  }

  // "64K"/"2M"-suffixed counts (binary multiples, common/units.h); used for
  // token counts and byte budgets alike.
  bool match_tokens(const char* name, std::int64_t* out) {
    if (!is(name)) return false;
    *out = parse_token_count(value(name));
    return true;
  }

  // Valueless flag: "--no-trace" stores `set_to` into *out.
  bool match_set(const char* name, bool* out, bool set_to = true) {
    if (!is(name)) return false;
    *out = set_to;
    ++i_;
    return true;
  }

  [[noreturn]] void unknown() const {
    throw FpdtError("unknown " + cmd_ + " flag: " + argv_[i_]);
  }

 private:
  bool is(const char* name) const { return std::string(argv_[i_]) == name; }

  const char* value(const char* name) {
    FPDT_CHECK_LT(i_ + 1, argc_) << " missing value for " << name;
    const char* v = argv_[i_ + 1];
    i_ += 2;
    return v;
  }

  std::string cmd_;
  int argc_;
  char** argv_;
  int i_;
};

}  // namespace fpdt::cli
