#!/usr/bin/env bash
# Serving-engine CI lane: exercises `fpdt serve` end to end on an existing
# build, under both kernel backends:
#   - default 64-session 2K..256K virtual workload completes 64/64 with a
#     byte-identical transcript across two runs (determinism gate), KV pools
#     drained to baseline, nonzero eviction traffic, and sane latency
#     percentiles (0 < ttft p50 <= p99 < 60s, tokens/s > 0);
#   - an executed differential run (--execute --verify) replays every
#     completed session against the monolithic nn::InferenceSession and must
#     report bitwise-identical logits under active eviction pressure;
#   - a fault-injected run (d2h + spurious-oom on the KV offload paths) must
#     still complete every session with all injected faults recovered.
#
#   ci/serve_smoke.sh [build_dir]   # default: build
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
FPDT="$(pwd)/$BUILD_DIR/tools/fpdt"
if [[ ! -x "$FPDT" ]]; then
  echo "serve_smoke: $FPDT not built (run cmake --build $BUILD_DIR first)" >&2
  exit 2
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

for kb in scalar simd; do
  echo "--- serve lane: backend $kb ---"

  # Determinism: the stock virtual workload twice, byte-identical output.
  "$FPDT" serve --backend "$kb" --print-transcript > "$workdir/serve_$kb.1.txt"
  "$FPDT" serve --backend "$kb" --print-transcript > "$workdir/serve_$kb.2.txt"
  diff -u "$workdir/serve_$kb.1.txt" "$workdir/serve_$kb.2.txt" > /dev/null || {
    echo "serve_smoke($kb): two identical runs produced different transcripts" >&2
    exit 1
  }
  grep -q "serve: completed 64/64 rejected 0" "$workdir/serve_$kb.1.txt"
  grep -q "drained to baseline" "$workdir/serve_$kb.1.txt"

  python3 - "$workdir/serve_$kb.1.txt" <<'EOF'
import re, sys

text = open(sys.argv[1]).read()
UNIT = {"us": 1e-6, "ms": 1e-3, "s": 1.0}

def seconds(value, unit):
    return float(value) * UNIT[unit]

m = re.search(r"ttft p50 ([0-9.]+)(us|ms|s) p99 ([0-9.]+)(us|ms|s)", text)
assert m, "no ttft percentiles in summary"
p50, p99 = seconds(m.group(1), m.group(2)), seconds(m.group(3), m.group(4))
assert 0 < p50 <= p99 < 60, f"ttft percentiles implausible: p50={p50}s p99={p99}s"

m = re.search(r"\| ([0-9.]+) tokens/s", text)
assert m and float(m.group(1)) > 0, "no positive tokens/s in summary"

m = re.search(r"evictions (\d+) fetches (\d+)", text)
assert m, "no eviction counters in summary"
assert int(m.group(1)) > 0, "stock workload produced zero evictions: " \
    "the two-tier KV path was not exercised"

print(f"serve_smoke: ttft p50 {p50*1e3:.2f}ms p99 {p99*1e3:.2f}ms, "
      f"evictions {m.group(1)}, transcript deterministic")
EOF

  # Differential gate: executed chunked prefill + paged KV, replayed bitwise
  # against the monolithic session while evictions are forced (tight HBM).
  "$FPDT" serve --backend "$kb" --execute --verify --sessions 6 \
    --min-len 256 --max-len 1K --chunk-tokens 64 --page-tokens 48 \
    --hbm 320K --decode-min 2 --decode-max 6 > "$workdir/verify_$kb.txt"
  grep -q "serve: completed 6/6 rejected 0" "$workdir/verify_$kb.txt"
  grep -q "serve: verify OK" "$workdir/verify_$kb.txt"
  grep -q "drained to baseline" "$workdir/verify_$kb.txt"
  echo "serve_smoke($kb): executed run verified bitwise vs monolithic"
done

# Fault lane: transient d2h faults plus spurious OOMs on the KV offload
# paths; every session must still complete and every injected fault recover.
"$FPDT" serve --sessions 16 --max-len 32K --hbm 24M \
  --faults 'd2h:p=0.3,seed=5;oom:p=0.02,seed=9' > "$workdir/faults.txt"
grep -q "serve: completed 16/16 rejected 0" "$workdir/faults.txt"
grep -q "drained to baseline" "$workdir/faults.txt"
python3 - "$workdir/faults.txt" <<'EOF'
import re, sys

text = open(sys.argv[1]).read()
m = re.search(r"injected (\d+) retried (\d+) degraded (\d+) recovered (\d+)", text)
assert m, "no fault stats in output"
injected, recovered = int(m.group(1)), int(m.group(4))
assert injected > 0, "fault spec injected nothing"
assert recovered == injected, f"unrecovered faults: {injected - recovered}"
print(f"serve_smoke: fault lane recovered {recovered}/{injected} injected faults")
EOF

echo "serve_smoke: all lanes passed"
