#!/usr/bin/env bash
# Kernel-backend smoke lane: proves the simd backend actually pays for
# itself on an existing build.
#
#   - `fpdt kernels` lists both registered backends with "scalar" active by
#     default (the bit-exact reference is the default, always);
#   - an attention-dominated `fpdt profile` runs under --backend scalar and
#     --backend simd, with identical final losses (numerics hold end to end);
#   - host math time (StepStats::cpu_s, process-CPU — NOT the emulated
#     virtual_step_s, which is backend-invariant by design) must be >= 3x
#     faster under simd when the AVX2 path is compiled in and detected; on
#     portable-fallback hosts the ratio is reported but not gated. The gate
#     uses CPU seconds rather than wall_s so a loaded CI box (the two runs
#     are sequential and contend with whatever else is scheduled) can't
#     flake it; the wall-clock ratio is reported alongside.
#
# The measured ratio is recorded in the "kernel_smoke" section of
# bench_snapshot.txt so perf history travels with the repo.
#
#   ci/kernel_smoke.sh [build_dir]   # default: build
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
FPDT="$(pwd)/$BUILD_DIR/tools/fpdt"
if [[ ! -x "$FPDT" ]]; then
  echo "kernel_smoke: $FPDT not built (run cmake --build $BUILD_DIR first)" >&2
  exit 2
fi

# --- registry sanity --------------------------------------------------------
kernels_out="$("$FPDT" kernels)"
echo "$kernels_out"
grep -q 'scalar' <<< "$kernels_out" || { echo "kernel_smoke: no scalar backend" >&2; exit 1; }
grep -q 'simd' <<< "$kernels_out" || { echo "kernel_smoke: no simd backend" >&2; exit 1; }
# Default active backend must be the bit-exact reference.
"$FPDT" kernels | awk '$1 == "scalar" { found = ($2 == "yes" || $2 == "*") } END { exit !found }' \
  || { echo "kernel_smoke: scalar is not the default active backend" >&2; exit 1; }

if grep -q 'avx2+fma' <<< "$kernels_out"; then
  avx2=1
  echo "kernel_smoke: simd backend dispatches to avx2"
else
  avx2=0
  echo "kernel_smoke: simd backend is the portable fallback (no avx2) — ratio not gated"
fi

# --- attention-dominated profile under both backends ------------------------
# 4 chunks x 256 tokens = 1K tokens/rank/step keeps attention (the O(s^2)
# part) dominant so the flash-attention + GEMM paths carry the wall time.
run_profile() {
  local backend="$1" wd="$2"
  (cd "$wd" && "$FPDT" profile --steps 3 --gpus 2 --chunks 4 --chunk-tokens 256 \
      --backend "$backend" > profile.txt)
}

wd_scalar="$(mktemp -d)"
wd_simd="$(mktemp -d)"
trap 'rm -rf "$wd_scalar" "$wd_simd"' EXIT
run_profile scalar "$wd_scalar"
run_profile simd "$wd_simd"

ratio_line="$(python3 - "$wd_scalar" "$wd_simd" "$avx2" <<'EOF'
import json, sys

def load(wd):
    steps = json.load(open(f"{wd}/metrics.json"))["step_stats"]
    # Skip the first step: it pays one-time allocation/page-fault warmup
    # that would dilute the kernel-speedup signal.
    cpu = sum(s["cpu_s"] for s in steps[1:])
    wall = sum(s["wall_s"] for s in steps[1:])
    assert cpu > 0, f"{wd}: no cpu time recorded"
    # Virtual time must be backend-invariant: the emulated stream makespan
    # models A100 silicon, not host math speed.
    virt = tuple(s["virtual_step_s"] for s in steps)
    loss = tuple(s["loss"] for s in steps)
    return cpu, wall, virt, loss

scalar_cpu, scalar_wall, scalar_virt, scalar_loss = load(sys.argv[1])
simd_cpu, simd_wall, simd_virt, simd_loss = load(sys.argv[2])
avx2 = sys.argv[3] == "1"

assert scalar_virt == simd_virt, \
    f"virtual clock moved with the backend: {scalar_virt} vs {simd_virt}"
for a, b in zip(scalar_loss, simd_loss):
    assert abs(a - b) < 1e-3, f"losses diverged across backends: {a} vs {b}"

ratio = scalar_cpu / simd_cpu
wall_ratio = scalar_wall / simd_wall if simd_wall > 0 else float("nan")
print(f"kernel_smoke: scalar {scalar_cpu:.3f}s cpu, simd {simd_cpu:.3f}s cpu, "
      f"speedup {ratio:.2f}x cpu / {wall_ratio:.2f}x wall "
      f"(avx2={'yes' if avx2 else 'no'})")
if avx2:
    assert ratio >= 3.0, \
        f"simd speedup {ratio:.2f}x below the 3x acceptance gate"
EOF
)"
echo "$ratio_line"

# --- record the measured ratio in bench_snapshot.txt ------------------------
snapshot=bench_snapshot.txt
marker="===== kernel_smoke ====="
tmp="$(mktemp)"
if [[ -f "$snapshot" ]]; then
  # Drop any previous kernel_smoke section (up to the next section marker).
  awk -v m="$marker" '
    $0 == m { skip = 1; next }
    skip && /^===== / { skip = 0 }
    !skip { print }
  ' "$snapshot" > "$tmp"
else
  : > "$tmp"
fi
{
  echo "$marker"
  echo "$ratio_line"
} >> "$tmp"
mv "$tmp" "$snapshot"
echo "kernel_smoke: ratio recorded in $snapshot"
