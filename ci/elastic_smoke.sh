#!/usr/bin/env bash
# Elastic-membership smoke lane: runs `fpdt elastic` — a seeded rank-loss
# during a real ZeRO-3 training run — on an existing build and asserts the
# elastic contract:
#   - the run survives every step at the shrunken world (completed N/N);
#   - the optimizer shards were re-partitioned (a reshard line is present);
#   - every post-reshard loss is bitwise identical to a fresh run at the
#     reduced world restored from the re-sharded snapshot (the twin check);
#   - the same seed reproduces the identical recovery transcript twice
#     (only the recovery wall-clock line may differ between runs);
#   - recovery stayed inside the wall-clock budget.
#
#   ci/elastic_smoke.sh [build_dir] [recovery_budget_s]   # defaults: build, 30
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
BUDGET_S="${2:-30}"
FPDT="$(pwd)/$BUILD_DIR/tools/fpdt"
if [[ ! -x "$FPDT" ]]; then
  echo "elastic_smoke: $FPDT not built (run cmake --build $BUILD_DIR first)" >&2
  exit 2
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

STEPS=4
run_elastic() {
  (cd "$workdir" && "$FPDT" elastic \
      --scenario 'ranklost:step=1,rank=1' --steps "$STEPS" \
      --gpus 4 --chunks 2 --chunk-tokens 16 --zero-stage 3) | tee "$1"
}

out_a="$workdir/elastic_a.out"
out_b="$workdir/elastic_b.out"
run_elastic "$out_a"

grep -q "elastic: completed $STEPS/$STEPS steps" "$out_a" \
  || { echo "elastic_smoke: run did not complete all $STEPS steps" >&2; exit 1; }
grep -q "elastic: reshard at step .* -> world" "$out_a" \
  || { echo "elastic_smoke: rank loss did not trigger a reshard" >&2; exit 1; }
grep -Eq "elastic: twin verified [0-9]+ step\(s\) .*: match bitwise" "$out_a" \
  || { echo "elastic_smoke: post-reshard losses are not bitwise-identical to the reduced-world twin" >&2; exit 1; }

# Determinism: the same seed must reproduce the identical recovery transcript
# and losses. Only the recovery wall-clock line is allowed to move.
run_elastic "$out_b" > /dev/null
if ! diff <(grep -v 'recovery wall_s=' "$out_a") \
          <(grep -v 'recovery wall_s=' "$out_b"); then
  echo "elastic_smoke: two runs of the same seeded scenario diverged" >&2
  exit 1
fi

# Recovery budget: quiesce + replan + reshard + restore must fit the budget.
python3 - "$out_a" "$BUDGET_S" <<'EOF'
import re, sys

wall_line = next(l for l in open(sys.argv[1]) if "recovery wall_s=" in l)
m = re.search(r"recovery wall_s=([0-9.eE+-]+)", wall_line)
assert m, f"unparseable recovery line: {wall_line!r}"
wall, budget = float(m.group(1)), float(sys.argv[2])
assert wall > 0.0, "recovery time was not accounted"
assert wall < budget, f"recovery took {wall:.3f}s, budget is {budget}s"
print(f"elastic_smoke: reshard recovered in {wall:.3f}s (budget {budget}s), "
      "transcript deterministic, twin bitwise-clean")
EOF

# No checkpoint litter: the elastic driver removes its snapshot files.
leftover="$(ls "$workdir" | grep -Ev '^elastic_(a|b)\.out$' || true)"
if [[ -n "$leftover" ]]; then
  echo "elastic_smoke: leftover files in workdir: $leftover" >&2
  exit 1
fi
