#!/usr/bin/env bash
# Topology / 2D-parallelism smoke lane: runs the `fpdt topo` drills on an
# existing build and asserts the hierarchical contracts end to end:
#   - flat-vs-hierarchical differential: every collective of the
#     HierarchicalProcessGroup returns payloads bitwise identical to the
#     flat seed group across ranks {4,8,16} x nodes {1,2,4} (--verify);
#   - 2D-vs-1D trainer bit-identity: a 2x2 (seq x head) grid training step
#     produces a loss bitwise equal to the 1D run at equal world, under
#     both kernel backends, while charging real inter-node link traffic
#     (--grid-check);
#   - weak-scaling shape contract: the 64..1024-rank sweep writes
#     weak_scaling.csv with the expected header/row shape and the
#     hierarchical routing strictly beats flat on every multi-node point
#     whenever the inter-node link is slower (--check);
#   - elastic rank-loss-in-grid: a seeded ZeRO-3 rank loss inside a 2D grid
#     re-plans, re-shards and resumes with the bitwise twin intact.
#
# The differential drills are run under both kernel backends: the payload
# contract is about routing, so no backend may perturb it.
#
#   ci/topo_smoke.sh [build_dir]   # default: build
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
FPDT="$(pwd)/$BUILD_DIR/tools/fpdt"
if [[ ! -x "$FPDT" ]]; then
  echo "topo_smoke: $FPDT not built (run cmake --build $BUILD_DIR first)" >&2
  exit 2
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

for kb in scalar simd; do
  echo "--- topo lane: FPDT_KERNEL_BACKEND=$kb ---"
  FPDT_KERNEL_BACKEND="$kb" "$FPDT" topo --verify
  FPDT_KERNEL_BACKEND="$kb" "$FPDT" topo --grid-check
done

csv="$workdir/weak_scaling.csv"
(cd "$workdir" && "$FPDT" topo --ranks 64..1024 --check --csv "$csv")

# CSV shape: the exact header the plotting/DESIGN contract names, plus one
# row per doubling in 64..1024 (5 rows).
head -n1 "$csv" | grep -qx \
  "gpus,nodes,seq_global,flat_step_s,hier_step_s,speedup,flat_mfu,hier_mfu,flat_inter_util,hier_inter_util" \
  || { echo "topo_smoke: weak_scaling.csv header drifted" >&2; exit 1; }
rows=$(($(wc -l < "$csv") - 1))
[[ "$rows" -eq 5 ]] \
  || { echo "topo_smoke: expected 5 weak-scaling rows (64..1024), got $rows" >&2; exit 1; }

# Elastic rank loss inside the 2D grid: the re-plan must carry the grid and
# the twin must still verify bitwise.
elastic_out="$workdir/elastic_grid.out"
(cd "$workdir" && "$FPDT" elastic \
    --scenario 'ranklost:step=1,rank=1' --steps 3 \
    --gpus 4 --chunks 2 --chunk-tokens 16 --zero-stage 3 \
    --ranks-per-node 2 --head-degree 2) | tee "$elastic_out"
grep -q "elastic: completed 3/3 steps" "$elastic_out" \
  || { echo "topo_smoke: elastic grid run did not complete" >&2; exit 1; }
grep -q "grid rpn=2 hd=2" "$elastic_out" \
  || { echo "topo_smoke: elastic run lost the grid declaration" >&2; exit 1; }
grep -q "twin verified .* match bitwise" "$elastic_out" \
  || { echo "topo_smoke: elastic twin not bitwise after grid rank loss" >&2; exit 1; }

echo "topo_smoke: differential, grid bit-identity, weak-scaling shape and elastic grid lanes all hold"
