#!/usr/bin/env bash
# Profiler smoke lane: runs `fpdt profile` on an existing build, validates
# both emitted documents are real JSON, and asserts the trace/metrics carry
# the content the observability layer promises:
#   - trace.json has events from all four built-in categories (stream,
#     chunk, comm, memory) on at least two rank processes;
#   - metrics.json's overlap ratio equals hidden/(h2d+d2h) from the same
#     step stats, and exposed transfer time stays under a sanity ceiling.
#
#   ci/profile_smoke.sh [build_dir]   # default: build
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
FPDT="$(pwd)/$BUILD_DIR/tools/fpdt"
if [[ ! -x "$FPDT" ]]; then
  echo "profile_smoke: $FPDT not built (run cmake --build $BUILD_DIR first)" >&2
  exit 2
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

(cd "$workdir" && "$FPDT" profile --steps 2 --gpus 2 --chunks 4 --chunk-tokens 64)

python3 -m json.tool "$workdir/trace.json" > /dev/null
python3 -m json.tool "$workdir/metrics.json" > /dev/null
echo "profile_smoke: both documents are valid JSON"

python3 - "$workdir" <<'EOF'
import json, sys

workdir = sys.argv[1]
trace = json.load(open(f"{workdir}/trace.json"))
events = trace["traceEvents"]
cats = {e["cat"] for e in events if "cat" in e}
ranks = {e["pid"] for e in events if isinstance(e.get("pid"), int) and 0 <= e["pid"] < 9999}
missing = {"stream", "chunk", "comm", "memory"} - cats
assert not missing, f"trace missing categories: {missing}"
assert len(ranks) >= 2, f"trace covers only ranks {ranks}"

metrics = json.load(open(f"{workdir}/metrics.json"))
steps = metrics["step_stats"]
assert len(steps) == 2, f"expected 2 step stats, got {len(steps)}"
for s in steps:
    transfer = s["h2d_busy_s"] + s["d2h_busy_s"]
    assert transfer > 0, "no transfer time measured"
    want = s["hidden_transfer_s"] / transfer
    assert abs(s["overlap_ratio"] - want) < 1e-9, \
        f"overlap_ratio {s['overlap_ratio']} != hidden/transfer {want}"
    # Exposed transfer must not dominate: the double-buffered pipeline
    # keeps it below the step's total transfer time trivially, and below
    # 2x the virtual makespan as a gross-regression tripwire.
    assert s["exposed_transfer_s"] <= transfer + 1e-12, "exposed exceeds transfer busy"
    assert s["exposed_transfer_s"] < 2.0 * s["virtual_step_s"], \
        f"exposed transfer {s['exposed_transfer_s']}s vs step {s['virtual_step_s']}s"
    assert s["tokens_per_s"] > 0, "virtual throughput is zero"
gauges = {(m["name"], m.get("labels", "")): m for m in metrics["registry"]["metrics"]}
g = gauges[("overlap.ratio", "rank=0")]["value"]
assert abs(g - steps[-1]["overlap_ratio"]) < 1e-9, \
    f"registry overlap gauge {g} disagrees with step stats {steps[-1]['overlap_ratio']}"
print("profile_smoke: categories, ranks, and overlap invariants all hold")
EOF
