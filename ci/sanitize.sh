#!/usr/bin/env bash
# Sanitizer CI lane: builds the tree under TSan and/or ASan and runs the
# concurrency- and allocator-sensitive test suites.
#
#   ci/sanitize.sh            # both sanitizers
#   ci/sanitize.sh thread     # just TSan
#   ci/sanitize.sh address    # just ASan (+UBSan)
#
# Each sanitizer gets its own build tree (build-tsan/, build-asan/) so the
# lanes cache independently and never pollute the default build/.
set -euo pipefail
cd "$(dirname "$0")/.."

run_lane() {
  local san="$1"
  local dir
  if [[ "$san" == "thread" ]]; then dir=build-tsan; else dir=build-asan; fi
  echo "=== sanitizer lane: $san ($dir) ==="
  cmake -B "$dir" -S . -DFPDT_SANITIZE="$san" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$dir" -j
  # The suites that exercise shared state across the emulated ranks: the
  # stream/prefetch engine, the thread pool, the chunked executors, and the
  # tracer/metrics layer that all of them publish into concurrently.
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)" \
    -R 'Stream|Prefetch|ThreadPool|MemoryPool|ChunkStore|Fpdt|Tracer|Metrics|Profiler|Timeline|Fault|Chaos|Resilient|Zero|RankOrdinal|SearchSpace|Planner|PruneSoundness|Tune|Runner|Elastic|Reshard|Collectives|GroupView|Serve|Topology|TopoModel|HierDifferential|Hierarchical|Grid2D'
  # Kernel-backend matrix: the math-kernel suites must hold under both the
  # scalar reference and the simd backend. The simd lane is the one that can
  # race — its GEMM/attention forks rows across the thread pool — so TSan
  # over these suites with FPDT_KERNEL_BACKEND=simd is the real target;
  # scalar pins the reference semantics under the same sanitizer.
  for kb in scalar simd; do
    echo "--- kernel lane: FPDT_KERNEL_BACKEND=$kb ---"
    FPDT_KERNEL_BACKEND="$kb" ctest --test-dir "$dir" --output-on-failure -j "$(nproc)" \
      -R 'Kernel|Gemm|Simd|ScalarBitIdentity|ActiveBackend|Attention|Tensor|Softmax|Norm|Activation'
    # The elastic churn sweep re-runs full training twice per case (run +
    # bitwise twin), so its math goes through whichever backend is active —
    # the reshard/resume contract must hold under both.
    FPDT_KERNEL_BACKEND="$kb" ctest --test-dir "$dir" --output-on-failure -j "$(nproc)" \
      -R 'Elastic'
  done
  # ZeRO stage matrix: one footprint run per stage exercises the sharded
  # residency charges, the gather/scatter collectives and the sharded
  # optimizer under the sanitizer, and asserts the measured-vs-modeled
  # deltas (and cross-stage loss bit-identity) end to end.
  for stage in 0 1 2 3; do
    "$dir/tools/fpdt" footprint --gpus 2 --chunks 2 --chunk-tokens 32 --stage "$stage" \
      > /dev/null
  done
  # End-to-end profiler smoke under the sanitizer: traces a 2-step run and
  # checks the emitted JSON documents and overlap invariants.
  ci/profile_smoke.sh "$dir"
  # Fault-injection smoke under the sanitizer: survives a seeded chaos run
  # with all faults recovered and the final loss bitwise-clean. Races in the
  # injector's locked draw paths or the retry ladders show up here.
  ci/chaos_smoke.sh "$dir"
  # Same contract with the ZeRO-3 sharded optimizer and FPDTZR01 snapshots
  # on the fault path.
  ci/chaos_smoke.sh "$dir" 3
  # Elastic-membership smoke under the sanitizer: a seeded ZeRO-3 rank loss
  # must quiesce, re-plan, re-shard the moment shards and resume bitwise
  # identical to a fresh reduced-world run, with a deterministic transcript
  # and the recovery inside its wall-clock budget.
  ci/elastic_smoke.sh "$dir"
  # Autotuner smoke under the sanitizer: plans, prunes, executes top-K real
  # profiled steps and re-tunes against the warm result cache, asserting a
  # winner that measurably fits the budget and byte-identical cold/warm
  # reports.
  ci/tune_smoke.sh "$dir"
  # Perf-snapshot smoke under the sanitizer: the workmeter's accounting
  # invariants (0 < MFU <= 1, scalar/simd bit-identical FLOP counts) and the
  # deterministic-field baseline diff must survive instrumented builds —
  # only host clocks are allowed to move.
  ci/bench_smoke.sh "$dir"
  # Serving-engine smoke under the sanitizer: deterministic 64-session
  # virtual workload, executed chunked-prefill differential verify, and the
  # fault-injected KV-offload lane, under both kernel backends.
  ci/serve_smoke.sh "$dir"
  # Topology smoke under the sanitizer: flat-vs-hierarchical collective
  # bitwise differential, 2D-vs-1D trainer loss bit-identity under both
  # kernel backends, the weak-scaling CSV shape contract, and a rank loss
  # inside the 2D grid with the elastic twin intact. The hierarchical group
  # runs its phase subgroups concurrently from parallel_for_ranks callers,
  # so its link-ledger locking is exactly what TSan is for.
  ci/topo_smoke.sh "$dir"
}

lanes=("$@")
[[ ${#lanes[@]} -eq 0 ]] && lanes=(thread address)
for san in "${lanes[@]}"; do
  run_lane "$san"
done
