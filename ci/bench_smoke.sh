#!/usr/bin/env bash
# Perf-snapshot CI lane: runs `fpdt bench` on an existing build, validates
# the schema-versioned snapshot document, asserts the accounting invariants
# the workmeter design promises, and diffs the deterministic (virtual-clock)
# fields against the committed baseline:
#   - schema is exactly fpdt-bench/2 with every field present per suite;
#   - 0 < MFU <= 1 and flops/op_bytes/peak_hbm > 0 on every row;
#   - the topo suite splits traffic across both link classes (intra and
#     inter bytes > 0, inter_bw_util in (0, 1]); flat suites report zeros;
#   - scalar and simd report bit-identical FLOP/byte counts, virtual time,
#     MFU and loss per suite (work is charged analytically from shapes, so
#     the backend must not change the accounting);
#   - deterministic fields match bench/baselines/BENCH_0001.json within
#     tolerance (integers exact, floats 1e-6 relative). Host clocks
#     (wall_s, cpu_s, parallel_efficiency) and git_rev/threads are
#     machine-dependent and never gated.
#
# On a legitimate perf-trajectory change, regenerate the baseline:
#   build/tools/fpdt bench --steps 1 --out-dir bench/baselines
# then replace BENCH_0001.json with the new snapshot and commit it.
#
#   ci/bench_smoke.sh [build_dir]   # default: build
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
FPDT="$(pwd)/$BUILD_DIR/tools/fpdt"
if [[ ! -x "$FPDT" ]]; then
  echo "bench_smoke: $FPDT not built (run cmake --build $BUILD_DIR first)" >&2
  exit 2
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

(cd "$workdir" && "$FPDT" bench --steps 1 --out-dir .)

snapshot="$(ls "$workdir"/BENCH_*.json | head -n1)"
python3 -m json.tool "$snapshot" > /dev/null
echo "bench_smoke: snapshot is valid JSON"

python3 - "$snapshot" bench/baselines/BENCH_0001.json <<'EOF'
import json, sys

snapshot_path, baseline_path = sys.argv[1], sys.argv[2]
doc = json.load(open(snapshot_path))

assert doc["schema"] == "fpdt-bench/2", f"unknown schema {doc['schema']!r}"
required = {"suite", "backend", "config", "wall_s", "cpu_s",
            "parallel_efficiency", "virtual_step_s", "mfu", "achieved_gbps",
            "arith_intensity", "overlap", "flops", "op_bytes", "peak_hbm",
            "intra_link_bytes", "inter_link_bytes", "inter_bw_util", "loss"}
for row in doc["suites"]:
    missing = required - set(row)
    assert not missing, f"{row.get('suite')}/{row.get('backend')} missing {missing}"

# Physical invariants: every suite did work and its utilization is a
# fraction of the roofline peak.
for row in doc["suites"]:
    who = f"{row['suite']}/{row['backend']}"
    assert 0.0 < row["mfu"] <= 1.0, f"{who}: mfu {row['mfu']} outside (0, 1]"
    assert row["flops"] > 0, f"{who}: zero flops"
    assert row["op_bytes"] > 0, f"{who}: zero op bytes"
    assert row["peak_hbm"] > 0, f"{who}: zero peak hbm"
    assert row["virtual_step_s"] > 0, f"{who}: zero virtual step"
    assert 0.0 <= row["overlap"] <= 1.0, f"{who}: overlap {row['overlap']}"
    if row["suite"] == "topo":
        # Hierarchical routing must split traffic across both link classes
        # and keep a sane inter-node occupancy fraction.
        assert row["intra_link_bytes"] > 0, f"{who}: no intra-link traffic"
        assert row["inter_link_bytes"] > 0, f"{who}: no inter-link traffic"
        assert 0.0 < row["inter_bw_util"] <= 1.0, \
            f"{who}: inter_bw_util {row['inter_bw_util']} outside (0, 1]"
    else:
        assert row["intra_link_bytes"] == 0 and row["inter_link_bytes"] == 0, \
            f"{who}: flat suite reported link traffic"

# Backend invariance: the workmeter charges analytic shape costs, so the
# same suite on scalar vs simd must account identical work and identical
# virtual-clock results — only host clocks may differ.
by_suite = {}
for row in doc["suites"]:
    by_suite.setdefault(row["suite"], {})[row["backend"]] = row
for suite, rows in by_suite.items():
    if {"scalar", "simd"} <= set(rows):
        sc, sd = rows["scalar"], rows["simd"]
        for f in ("flops", "op_bytes", "virtual_step_s", "mfu", "peak_hbm",
                  "intra_link_bytes", "inter_link_bytes"):
            assert sc[f] == sd[f], \
                f"{suite}: scalar/simd disagree on {f}: {sc[f]} vs {sd[f]}"
        # Loss is NOT bit-identical across backends (the AVX2 path uses FMA
        # and different summation order) — only numerically close.
        assert abs(sc["loss"] - sd["loss"]) <= 1e-6 * max(abs(sc["loss"]), 1e-30), \
            f"{suite}: scalar/simd losses diverge: {sc['loss']} vs {sd['loss']}"
        if doc["avx2"]:
            # Gross-regression tripwire only — host timing is noisy, so the
            # vectorized backend merely must not be grossly slower than the
            # scalar reference on the compute-bound suites.
            assert sd["cpu_s"] <= 2.0 * sc["cpu_s"], \
                f"{suite}: simd cpu {sd['cpu_s']}s vs scalar {sc['cpu_s']}s"

# Baseline diff on the deterministic fields.
base = json.load(open(baseline_path))
assert base["schema"] == doc["schema"], "baseline schema mismatch"
base_rows = {(r["suite"], r["backend"]): r for r in base["suites"]}
new_rows = {(r["suite"], r["backend"]): r for r in doc["suites"]}
assert set(base_rows) == set(new_rows), \
    f"suite/backend set changed: {set(base_rows) ^ set(new_rows)}"

INT_FIELDS = ("flops", "op_bytes", "peak_hbm", "intra_link_bytes",
              "inter_link_bytes")
FLOAT_FIELDS = ("virtual_step_s", "mfu", "achieved_gbps", "arith_intensity",
                "overlap", "loss")
REL_TOL = 1e-6
diffs = []
for key in sorted(base_rows):
    b, n = base_rows[key], new_rows[key]
    if b["config"] != n["config"]:
        diffs.append((key, "config", b["config"], n["config"]))
    for f in INT_FIELDS:
        if b[f] != n[f]:
            diffs.append((key, f, b[f], n[f]))
    for f in FLOAT_FIELDS:
        tol = REL_TOL * max(abs(b[f]), abs(n[f]), 1e-30)
        if abs(b[f] - n[f]) > tol:
            diffs.append((key, f, b[f], n[f]))

if diffs:
    widths = (22, 16, 24, 24)
    header = ("suite/backend", "field", "baseline", "current")
    print("bench_smoke: deterministic fields drifted from baseline "
          f"({baseline_path}):", file=sys.stderr)
    line = "  " + "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print(line, file=sys.stderr)
    print("  " + "-" * (sum(widths) + 6), file=sys.stderr)
    for (suite, backend), field, old, new in diffs:
        row = (f"{suite}/{backend}", field, str(old), str(new))
        print("  " + "  ".join(c.ljust(w) for c, w in zip(row, widths)),
              file=sys.stderr)
    print("bench_smoke: if intentional, regenerate the baseline "
          "(see ci/bench_smoke.sh header)", file=sys.stderr)
    sys.exit(1)

print("bench_smoke: schema, invariants, backend-invariance and baseline all hold")
EOF
