#!/usr/bin/env bash
# Autotuner smoke lane: runs `fpdt tune` on an existing build and holds the
# report to the tuner's contracts:
#   - a winner exists and its *measured* HBM peak fits the budget;
#   - the winner has the best measured throughput among fitting executed
#     candidates (the model never decides the final ranking);
#   - every executed row carries modeled-vs-measured deltas, and the
#     pruned/executed counts add up;
#   - re-tuning with a warm result cache produces a byte-identical JSON
#     report (determinism with cache cold and warm).
#
#   ci/tune_smoke.sh [build_dir]   # default: build
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
FPDT="$(pwd)/$BUILD_DIR/tools/fpdt"
if [[ ! -x "$FPDT" ]]; then
  echo "tune_smoke: $FPDT not built (run cmake --build $BUILD_DIR first)" >&2
  exit 2
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# Budget calibrated like tests/test_tune.cpp: ZeRO-0 prunes on the
# model-state floor, offloaded stage>=1 candidates fit, resident+cache_fwd
# ones measure over.
TUNE=("$FPDT" tune --gpus 2 --seq 512 --budget 1450K --top-k 4
      --cache "$workdir/results.cache")

(cd "$workdir" && "${TUNE[@]}" --json cold.json > cold.txt)
(cd "$workdir" && "${TUNE[@]}" --json warm.json > warm.txt)

cmp "$workdir/cold.json" "$workdir/warm.json"
echo "tune_smoke: cold and warm reports are byte-identical"
grep -q "(0 cache hits)" "$workdir/cold.txt"
grep -q "(4 cache hits)" "$workdir/warm.txt"

python3 - "$workdir" <<'EOF'
import json, sys

rep = json.load(open(f"{sys.argv[1]}/cold.json"))
budget = rep["budget_bytes"]
rows = rep["candidates"]
assert rep["winner"], "tune produced no winner"
assert len(rows) == rep["enumerated"], "report does not echo every candidate"

executed = [r for r in rows if r["executed"]]
pruned = [r for r in rows if r["pruned"]]
assert len(executed) == rep["executed"] == rep["top_k"], \
    f"executed {len(executed)} != top_k {rep['top_k']}"
assert len(pruned) == rep["pruned"], "pruned count mismatch"
assert not any(r["executed"] and r["pruned"] for r in rows), \
    "a pruned candidate was executed"

winner = next(r for r in rows if r["label"] == rep["winner"])
assert winner["status"] == "winner", winner["status"]
assert winner["measured"]["hbm_peak_bytes"] <= budget, \
    "winner's measured HBM peak exceeds the budget"

fitting = [r for r in executed if r["measured"]["fits_budget"]]
assert winner in fitting, "winner does not fit its own budget"
best = max(fitting, key=lambda r: r["measured"]["tokens_per_s"])
assert winner["measured"]["tokens_per_s"] == best["measured"]["tokens_per_s"], \
    "winner is not the fastest measured fitting candidate"

for r in executed:
    assert r["delta"]["time_ratio"] > 0, f"{r['label']}: missing time delta"
    assert r["delta"]["mem_ratio"] > 0, f"{r['label']}: missing memory delta"
for r in pruned:
    # Conservative pruning: only the model-state floor may prune, and the
    # floor must genuinely be over budget.
    assert r["modeled"]["floor_bytes"] > budget, \
        f"{r['label']}: pruned but floor fits the budget"
    assert "prune_reason" in r, f"{r['label']}: pruned without a reason"
print("tune_smoke: winner, deltas, and pruning invariants all hold")
EOF
