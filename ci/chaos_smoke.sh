#!/usr/bin/env bash
# Chaos smoke lane: runs `fpdt chaos` — deterministic fault injection over a
# real multi-step training run — on an existing build and asserts the
# resilience contract:
#   - the run survives every step (completed N/N);
#   - faults were actually injected and retried (the spec is not a no-op);
#   - every injection was recovered (recovered == injected);
#   - the final loss matches a fault-free twin bitwise (transient faults are
#     invisible to training math).
#
#   ci/chaos_smoke.sh [build_dir] [zero_stage]   # defaults: build, seed (-1)
#
# A second argument runs the whole contract under that ZeRO stage (the
# sharded optimizer + sharded FPDTZR01 snapshots are then on the fault path).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
ZERO_STAGE="${2:--1}"
FPDT="$(pwd)/$BUILD_DIR/tools/fpdt"
if [[ ! -x "$FPDT" ]]; then
  echo "chaos_smoke: $FPDT not built (run cmake --build $BUILD_DIR first)" >&2
  exit 2
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

STEPS=4
out="$workdir/chaos.out"
(cd "$workdir" && "$FPDT" chaos \
    --spec 'h2d:p=0.05;d2h:p=0.05;collective:step=2' --steps "$STEPS" \
    --zero-stage "$ZERO_STAGE") | tee "$out"

grep -q "chaos: completed $STEPS/$STEPS steps" "$out" \
  || { echo "chaos_smoke: run did not complete all $STEPS steps" >&2; exit 1; }
grep -q "chaos: final loss .* match bitwise" "$out" \
  || { echo "chaos_smoke: faulted loss does not match the fault-free twin" >&2; exit 1; }

python3 - "$out" <<'EOF'
import re, sys

stats_line = next(l for l in open(sys.argv[1]) if l.startswith("chaos: injected"))
m = re.match(r"chaos: injected (\d+) retried (\d+) degraded (\d+) recovered (\d+)", stats_line)
assert m, f"unparseable stats line: {stats_line!r}"
injected, retried, degraded, recovered = map(int, m.groups())
assert injected > 0, "spec injected nothing — the chaos lane is a no-op"
assert retried > 0, "no retries recorded despite transient-fault rules"
assert recovered == injected, f"unrecovered faults: injected {injected}, recovered {recovered}"
print(f"chaos_smoke: survived {injected} injected faults "
      f"({retried} retried, {degraded} degraded), all recovered, loss bitwise-clean")
EOF

# Rank-loss scenario: a lost rank triggers the elastic reshard path, so the
# surviving world is smaller and losses are verified approximately against the
# clean twin (fpdt elastic / ci/elastic_smoke.sh owns the bitwise contract).
lost="$workdir/chaos_ranklost.out"
(cd "$workdir" && "$FPDT" chaos \
    --spec 'ranklost:step=2,rank=1' --steps "$STEPS" \
    --zero-stage "$ZERO_STAGE") | tee "$lost"
grep -q "chaos: completed $STEPS/$STEPS steps" "$lost" \
  || { echo "chaos_smoke: ranklost run did not complete all $STEPS steps" >&2; exit 1; }
grep -q "chaos: rank loss re-sharded to a smaller world" "$lost" \
  || { echo "chaos_smoke: rank loss did not engage the elastic reshard path" >&2; exit 1; }
grep -q "chaos: final loss .* match approx" "$lost" \
  || { echo "chaos_smoke: post-reshard loss does not approximately match the clean twin" >&2; exit 1; }

# No checkpoint litter: the chaos driver removes its snapshot files.
leftover="$(ls "$workdir" | grep -Ev '^chaos(_ranklost)?\.out$' || true)"
if [[ -n "$leftover" ]]; then
  echo "chaos_smoke: leftover files in workdir: $leftover" >&2
  exit 1
fi
