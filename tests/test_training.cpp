// Tests for the training-loop utilities: LR schedule, gradient clipping,
// checkpoint round-trips (including corruption/mismatch rejection), and
// autoregressive generation.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/check.h"
#include "data/synthetic_corpus.h"
#include "nn/adam.h"
#include "nn/checkpoint_io.h"
#include "nn/generate.h"
#include "nn/model.h"
#include "nn/training.h"
#include "tests/test_util.h"

namespace fpdt {
namespace {

using namespace fpdt::nn;

TEST(LrScheduleTest, WarmupThenCosine) {
  CosineLrSchedule sched(1.0, 0.1, 10, 110);
  EXPECT_NEAR(sched.lr_at(0), 0.1, 1e-9);  // first warmup step: peak/10
  EXPECT_NEAR(sched.lr_at(9), 1.0, 1e-9);  // end of warmup
  EXPECT_NEAR(sched.lr_at(10), 1.0, 1e-6);  // cosine start
  EXPECT_NEAR(sched.lr_at(60), 0.55, 1e-2);  // midpoint: (1+0.1)/2
  EXPECT_NEAR(sched.lr_at(110), 0.1, 1e-9);  // floor
  EXPECT_NEAR(sched.lr_at(10000), 0.1, 1e-9);
}

TEST(LrScheduleTest, MonotoneDecayAfterWarmup) {
  CosineLrSchedule sched(3e-4, 3e-5, 100, 1000);
  double prev = 1e9;
  for (std::int64_t s = 100; s <= 1000; s += 50) {
    const double lr = sched.lr_at(s);
    EXPECT_LE(lr, prev + 1e-12);
    prev = lr;
  }
}

TEST(LrScheduleTest, InvalidArgsThrow) {
  EXPECT_THROW(CosineLrSchedule(1.0, 2.0, 0, 10), FpdtError);  // min > peak
  EXPECT_THROW(CosineLrSchedule(1.0, 0.1, 0, 0), FpdtError);   // no steps
}

TEST(ClipGradTest, ScalesOnlyWhenAboveThreshold) {
  Param a("a", Tensor::zeros({3}));
  a.grad = Tensor::from_values({3}, {3, 4, 0});  // norm 5
  auto walk = [&](const ParamVisitor& fn) { fn(a); };
  const double norm = clip_grad_norm(walk, 10.0);
  EXPECT_NEAR(norm, 5.0, 1e-6);
  EXPECT_FLOAT_EQ(a.grad.at({0}), 3.0f);  // untouched

  const double norm2 = clip_grad_norm(walk, 1.0);
  EXPECT_NEAR(norm2, 5.0, 1e-6);
  EXPECT_NEAR(a.grad.at({0}), 0.6f, 1e-6);  // scaled to norm 1
  EXPECT_NEAR(a.grad.at({1}), 0.8f, 1e-6);
}

TEST(ClipGradTest, GlobalNormAcrossParams) {
  Param a("a", Tensor::zeros({1})), b("b", Tensor::zeros({1}));
  a.grad.fill_(3.0f);
  b.grad.fill_(4.0f);
  auto walk = [&](const ParamVisitor& fn) {
    fn(a);
    fn(b);
  };
  EXPECT_NEAR(clip_grad_norm(walk, 100.0), 5.0, 1e-6);
}

TEST(ThroughputMeterTest, CountsTokens) {
  ThroughputMeter meter;
  EXPECT_EQ(meter.tokens_per_second(), 0.0);
  meter.step(100);
  meter.step(100);
  EXPECT_GT(meter.tokens_per_second(), 0.0);
}

// ---- Checkpoint I/O ---------------------------------------------------------

class CheckpointTest : public ::testing::Test {
 protected:
  // Unique file per test: ctest runs discovered tests in parallel, so a
  // shared path would race.
  std::string path_ =
      (std::filesystem::temp_directory_path() /
       (std::string("fpdt_ckpt_") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".bin"))
          .string();
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CheckpointTest, RoundTripBitExact) {
  ModelConfig cfg = tiny_gpt(32, 2, 4, 48);
  Model a(cfg, 1);
  save_checkpoint(a, path_);
  Model b(cfg, 2);  // different init
  std::vector<std::int32_t> tokens = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_NE(a.eval_loss(tokens), b.eval_loss(tokens));
  load_checkpoint(b, path_);
  EXPECT_DOUBLE_EQ(a.eval_loss(tokens), b.eval_loss(tokens));
  // Bit-exact parameters.
  std::vector<Tensor> pa;
  a.visit_params([&](Param& p) { pa.push_back(p.value); });
  std::size_t i = 0;
  b.visit_params([&](Param& p) {
    EXPECT_EQ(max_abs_diff(p.value, pa[i]), 0.0) << p.name;
    ++i;
  });
}

TEST_F(CheckpointTest, SurvivesTrainingResume) {
  ModelConfig cfg = tiny_gpt(32, 1, 2, 32);
  data::SyntheticCorpus corpus(cfg.vocab, 3);
  Model a(cfg, 5);
  Adam opt_a(1e-3);
  for (int s = 0; s < 3; ++s) {
    a.train_step_grads(corpus.sample(33));
    opt_a.step([&](const ParamVisitor& f) { a.visit_params(f); });
  }
  save_checkpoint(a, path_);
  Model b(cfg, 99);
  load_checkpoint(b, path_);
  const auto probe = corpus.sample(33);
  EXPECT_DOUBLE_EQ(a.eval_loss(probe), b.eval_loss(probe));
}

TEST_F(CheckpointTest, RejectsWrongModelShape) {
  Model a(tiny_gpt(32, 1, 2, 32), 1);
  save_checkpoint(a, path_);
  Model wrong_width(tiny_gpt(64, 1, 2, 32), 1);
  EXPECT_THROW(load_checkpoint(wrong_width, path_), FpdtError);
  Model wrong_layers(tiny_gpt(32, 2, 2, 32), 1);
  EXPECT_THROW(load_checkpoint(wrong_layers, path_), FpdtError);
}

TEST_F(CheckpointTest, RejectsCorruptedFile) {
  Model a(tiny_gpt(32, 1, 2, 32), 1);
  save_checkpoint(a, path_);
  // Corrupt the magic.
  {
    std::ofstream f(path_, std::ios::binary | std::ios::in);
    f.seekp(0);
    f.write("XXXX", 4);
  }
  EXPECT_THROW(load_checkpoint(a, path_), FpdtError);
}

TEST_F(CheckpointTest, RejectsTruncatedFile) {
  Model a(tiny_gpt(32, 1, 2, 32), 1);
  save_checkpoint(a, path_);
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size / 2);
  EXPECT_THROW(load_checkpoint(a, path_), FpdtError);
}

TEST_F(CheckpointTest, MissingFileThrows) {
  Model a(tiny_gpt(32, 1, 2, 32), 1);
  EXPECT_THROW(load_checkpoint(a, "/nonexistent/path/ckpt.bin"), FpdtError);
}

// ---- Generation -------------------------------------------------------------

TEST(GenerateTest, GreedyIsDeterministic) {
  Model model(tiny_gpt(32, 1, 2, 32), 7);
  Rng r1(1), r2(2);
  SampleOptions greedy;
  greedy.temperature = 0.0;
  auto a = generate(model, {1, 2, 3}, 8, greedy, r1);
  auto b = generate(model, {1, 2, 3}, 8, greedy, r2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 11u);
  for (std::int32_t t : a) EXPECT_TRUE(t >= 0 && t < 32);
}

TEST(GenerateTest, LogitsMatchLossHead) {
  // next_token_logits must agree with the training loss head's logits.
  Model model(tiny_gpt(32, 1, 2, 32), 9);
  std::vector<std::int32_t> prompt = {4, 8, 15, 16};
  Tensor logits = next_token_logits(model, prompt);
  EXPECT_EQ(logits.numel(), 32);
  // Training on a target distribution peaked at token t should raise t's
  // logit; cheap sanity: logits are finite and not all equal.
  float mn = logits.data()[0], mx = logits.data()[0];
  for (float v : logits.span()) {
    EXPECT_TRUE(std::isfinite(v));
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_GT(mx - mn, 1e-4);
}

TEST(GenerateTest, TrainedModelReproducesPattern) {
  // Train on a deterministic cycle; greedy decode must continue it.
  ModelConfig cfg = tiny_gpt(32, 2, 2, 8);
  Model model(cfg, 11);
  Adam opt(3e-3);
  std::vector<std::int32_t> cycle;
  for (int i = 0; i < 129; ++i) cycle.push_back(static_cast<std::int32_t>(i % 8));
  for (int step = 0; step < 80; ++step) {
    model.train_step_grads(cycle);
    opt.step([&](const ParamVisitor& f) { model.visit_params(f); });
  }
  Rng rng(1);
  SampleOptions greedy;
  greedy.temperature = 0.0;
  auto out = generate(model, {0, 1, 2, 3}, 8, greedy, rng);
  const std::vector<std::int32_t> expect = {0, 1, 2, 3, 4, 5, 6, 7, 0, 1, 2, 3};
  EXPECT_EQ(out, expect);
}

TEST(GenerateTest, TopKRestrictsSupport) {
  Model model(tiny_gpt(32, 1, 2, 32), 13);
  std::vector<std::int32_t> prompt = {1, 2};
  Tensor logits = next_token_logits(model, prompt);
  // Identify the argmax; with top_k = 1 sampling must always pick it.
  std::int64_t best = 0;
  for (std::int64_t i = 1; i < logits.numel(); ++i) {
    if (logits.data()[i] > logits.data()[best]) best = i;
  }
  SampleOptions topk;
  topk.temperature = 1.0;
  topk.top_k = 1;
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    auto out = generate(model, prompt, 1, topk, rng);
    EXPECT_EQ(out.back(), static_cast<std::int32_t>(best));
  }
}

TEST(GenerateTest, EmptyPromptThrows) {
  Model model(tiny_gpt(32, 1, 2, 32), 15);
  EXPECT_THROW(next_token_logits(model, {}), FpdtError);
}

}  // namespace
}  // namespace fpdt
