#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/activation.h"
#include "nn/adam.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/ffn.h"
#include "nn/linear.h"
#include "nn/lm_head.h"
#include "nn/model.h"
#include "nn/model_config.h"
#include "nn/norm.h"
#include "nn/rope.h"
#include "nn/transformer_block.h"
#include "runtime/device.h"
#include "tests/test_util.h"

namespace fpdt {
namespace {

using namespace fpdt::nn;
using fpdt::testing::expect_grad_matches;

double weighted_sum(const Tensor& t, const Tensor& weights) {
  double s = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    s += static_cast<double>(t.data()[i]) * static_cast<double>(weights.data()[i]);
  }
  return s;
}

TEST(ActivationTest, GeluGradFiniteDiff) {
  for (float x : {-3.0f, -0.5f, 0.0f, 0.7f, 2.5f}) {
    const float eps = 1e-3f;
    const float fd = (gelu(x + eps) - gelu(x - eps)) / (2 * eps);
    EXPECT_NEAR(gelu_grad(x), fd, 1e-3) << "x=" << x;
  }
}

TEST(ActivationTest, SiluGradFiniteDiff) {
  for (float x : {-4.0f, -1.0f, 0.0f, 1.3f, 3.0f}) {
    const float eps = 1e-3f;
    const float fd = (silu(x + eps) - silu(x - eps)) / (2 * eps);
    EXPECT_NEAR(silu_grad(x), fd, 1e-3) << "x=" << x;
  }
}

TEST(LinearTest, ForwardMatchesManual) {
  Rng rng(1);
  Linear lin("l", 3, 2, true, rng);
  Tensor x = Tensor::from_values({1, 3}, {1, 2, 3});
  Tensor y = lin.forward(x);
  const Tensor& w = lin.weight().value;
  float expect0 = w.at({0, 0}) * 1 + w.at({0, 1}) * 2 + w.at({0, 2}) * 3 + lin.bias().value.at({0});
  EXPECT_NEAR(y.at({0, 0}), expect0, 1e-5);
}

TEST(LinearTest, BackwardFiniteDiff) {
  Rng rng(2);
  Linear lin("l", 5, 4, true, rng);
  Tensor x = Tensor::randn({3, 5}, rng);
  Tensor r = Tensor::randn({3, 4}, rng);
  auto loss = [&] { return weighted_sum(lin.forward(x), r); };
  Tensor dx = lin.backward(r, x);
  Rng probe(3);
  expect_grad_matches(x, dx, loss, 10, probe);
  expect_grad_matches(lin.weight().value, lin.weight().grad, loss, 10, probe);
  expect_grad_matches(lin.bias().value, lin.bias().grad, loss, 4, probe);
}

TEST(LinearTest, BackwardAccumulates) {
  Rng rng(4);
  Linear lin("l", 3, 3, false, rng);
  Tensor x = Tensor::randn({2, 3}, rng);
  Tensor dy = Tensor::randn({2, 3}, rng);
  lin.backward(dy, x);
  Tensor after_one = lin.weight().grad.clone();
  lin.backward(dy, x);
  Tensor expected = mul_scalar(after_one, 2.0f);
  EXPECT_LT(max_abs_diff(lin.weight().grad, expected), 1e-5);
}

TEST(NormTest, LayerNormForwardNormalises) {
  Rng rng(5);
  LayerNorm ln("ln", 16);
  Tensor x = Tensor::randn({4, 16}, rng, 3.0, 2.0);
  NormStats st;
  Tensor y = ln.forward(x, st);
  // With unit gamma / zero beta, each row has ~0 mean, ~1 var.
  for (std::int64_t r = 0; r < 4; ++r) {
    double mean = 0, var = 0;
    for (std::int64_t j = 0; j < 16; ++j) mean += y.at({r, j});
    mean /= 16;
    for (std::int64_t j = 0; j < 16; ++j) var += std::pow(y.at({r, j}) - mean, 2);
    var /= 16;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(NormTest, LayerNormBackwardFiniteDiff) {
  Rng rng(6);
  LayerNorm ln("ln", 8);
  Tensor x = Tensor::randn({3, 8}, rng);
  Tensor r = Tensor::randn({3, 8}, rng);
  auto loss = [&] {
    NormStats st;
    return weighted_sum(ln.forward(x, st), r);
  };
  NormStats st;
  ln.forward(x, st);
  Tensor dx = ln.backward(r, x, st);
  Rng probe(7);
  expect_grad_matches(x, dx, loss, 10, probe);
}

TEST(NormTest, RmsNormBackwardFiniteDiff) {
  Rng rng(8);
  RmsNorm rn("rn", 8);
  Tensor x = Tensor::randn({3, 8}, rng);
  Tensor r = Tensor::randn({3, 8}, rng);
  auto loss = [&] {
    NormStats st;
    return weighted_sum(rn.forward(x, st), r);
  };
  NormStats st;
  rn.forward(x, st);
  Tensor dx = rn.backward(r, x, st);
  Rng probe(9);
  expect_grad_matches(x, dx, loss, 10, probe);
}

TEST(RopeTest, PreservesNorm) {
  Rng rng(10);
  Tensor x = Tensor::randn({6, 2, 8}, rng);
  const double before = l2_norm(x);
  rope_apply_(x, 100, 10000.0);
  EXPECT_NEAR(l2_norm(x), before, 1e-4);
}

TEST(RopeTest, BackwardIsInverse) {
  Rng rng(11);
  Tensor x = Tensor::randn({4, 2, 8}, rng);
  Tensor orig = x.clone();
  rope_apply_(x, 37, 10000.0);
  rope_apply_backward_(x, 37, 10000.0);
  EXPECT_LT(max_abs_diff(x, orig), 1e-5);
}

TEST(RopeTest, RelativePositionProperty) {
  // <rope(q, m), rope(k, n)> must depend only on m - n.
  Rng rng(12);
  Tensor q = Tensor::randn({1, 1, 8}, rng);
  Tensor k = Tensor::randn({1, 1, 8}, rng);
  auto dot_at = [&](std::int64_t mq, std::int64_t nk) {
    Tensor qq = q.clone();
    Tensor kk = k.clone();
    rope_apply_(qq, mq, 10000.0);
    rope_apply_(kk, nk, 10000.0);
    double s = 0;
    for (std::int64_t i = 0; i < 8; ++i) s += qq.data()[i] * kk.data()[i];
    return s;
  };
  EXPECT_NEAR(dot_at(10, 3), dot_at(107, 100), 1e-4);
  EXPECT_NEAR(dot_at(5, 5), dot_at(999, 999), 1e-4);
}

// ---- Attention -------------------------------------------------------------

TEST(AttentionTest, ForwardMatchesDenseSoftmax) {
  Rng rng(13);
  const std::int64_t s = 7, h = 2, d = 4;
  Tensor q = Tensor::randn({s, h, d}, rng);
  Tensor k = Tensor::randn({s, h, d}, rng);
  Tensor v = Tensor::randn({s, h, d}, rng);
  AttentionOutput out = reference_attention_forward(q, k, v, /*causal=*/true);
  // Dense re-computation for head 1.
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  for (std::int64_t i = 0; i < s; ++i) {
    Tensor logits({1, i + 1});
    for (std::int64_t j = 0; j <= i; ++j) {
      float acc = 0;
      for (std::int64_t p = 0; p < d; ++p) acc += q.at({i, 1, p}) * k.at({j, 1, p});
      logits.at({0, j}) = acc * scale;
    }
    softmax_rows_(logits);
    for (std::int64_t p = 0; p < d; ++p) {
      float expect = 0;
      for (std::int64_t j = 0; j <= i; ++j) expect += logits.at({0, j}) * v.at({j, 1, p});
      EXPECT_NEAR(out.out.at({i, 1, p}), expect, 1e-5) << "i=" << i << " p=" << p;
    }
  }
}

TEST(AttentionTest, CausalMaskRespected) {
  Rng rng(14);
  const std::int64_t s = 5, h = 1, d = 4;
  Tensor q = Tensor::randn({s, h, d}, rng);
  Tensor k = Tensor::randn({s, h, d}, rng);
  Tensor v = Tensor::randn({s, h, d}, rng);
  AttentionOutput a = reference_attention_forward(q, k, v, true);
  // Changing future keys/values must not change earlier outputs.
  Tensor k2 = k.clone();
  Tensor v2 = v.clone();
  for (std::int64_t p = 0; p < d; ++p) {
    k2.at({4, 0, p}) += 5.0f;
    v2.at({4, 0, p}) -= 3.0f;
  }
  AttentionOutput b = reference_attention_forward(q, k2, v2, true);
  EXPECT_LT(max_abs_diff(a.out.slice0(0, 4), b.out.slice0(0, 4)), 1e-6);
  EXPECT_GT(max_abs_diff(a.out.select0(4), b.out.select0(4)), 1e-3);
}

TEST(AttentionTest, BackwardFiniteDiff) {
  Rng rng(15);
  const std::int64_t s = 5, h = 2, d = 4;
  Tensor q = Tensor::randn({s, h, d}, rng);
  Tensor k = Tensor::randn({s, h, d}, rng);
  Tensor v = Tensor::randn({s, h, d}, rng);
  Tensor r = Tensor::randn({s, h, d}, rng);
  auto loss = [&] {
    return weighted_sum(reference_attention_forward(q, k, v, true).out, r);
  };
  AttentionOutput fwd = reference_attention_forward(q, k, v, true);
  AttentionGrads g = reference_attention_backward(r, q, k, v, fwd.out, true);
  Rng probe(16);
  expect_grad_matches(q, g.dq, loss, 12, probe);
  expect_grad_matches(k, g.dk, loss, 12, probe);
  expect_grad_matches(v, g.dv, loss, 12, probe);
}

TEST(AttentionTest, GqaBackwardFiniteDiff) {
  Rng rng(17);
  const std::int64_t s = 4, h = 4, hk = 2, d = 4;
  Tensor q = Tensor::randn({s, h, d}, rng);
  Tensor k = Tensor::randn({s, hk, d}, rng);
  Tensor v = Tensor::randn({s, hk, d}, rng);
  Tensor r = Tensor::randn({s, h, d}, rng);
  auto loss = [&] {
    return weighted_sum(reference_attention_forward(q, k, v, true).out, r);
  };
  AttentionOutput fwd = reference_attention_forward(q, k, v, true);
  AttentionGrads g = reference_attention_backward(r, q, k, v, fwd.out, true);
  Rng probe(18);
  expect_grad_matches(k, g.dk, loss, 10, probe);
  expect_grad_matches(v, g.dv, loss, 10, probe);
}

// Online attention chunked over (q, kv) pairs must equal the reference, for
// any chunking. This is the numeric heart of FPDT.
class OnlineAttnParam : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(OnlineAttnParam, MatchesReferenceForwardAndLse) {
  auto [s, chunks, h, hk] = GetParam();
  const std::int64_t d = 8;
  Rng rng(static_cast<std::uint64_t>(s * 1000 + chunks * 10 + h));
  Tensor q = Tensor::randn({s, h, d}, rng);
  Tensor k = Tensor::randn({s, hk, d}, rng);
  Tensor v = Tensor::randn({s, hk, d}, rng);
  AttentionOutput ref = reference_attention_forward(q, k, v, true);

  const std::int64_t c = s / chunks;
  ASSERT_EQ(s % chunks, 0);
  for (std::int64_t iq = 0; iq < chunks; ++iq) {
    OnlineAttnState st = OnlineAttnState::create(c, h, d);
    Tensor qc = q.slice0(iq * c, (iq + 1) * c);
    for (std::int64_t ik = 0; ik <= iq; ++ik) {
      online_attn_step(st, qc, k.slice0(ik * c, (ik + 1) * c), v.slice0(ik * c, (ik + 1) * c),
                       true, iq * c, ik * c);
    }
    AttentionOutput got = online_attn_finalize(st);
    EXPECT_LT(max_abs_diff(got.out, ref.out.slice0(iq * c, (iq + 1) * c).clone()), 1e-4)
        << "q chunk " << iq;
    EXPECT_LT(max_abs_diff(got.lse, ref.lse.slice0(iq * c, (iq + 1) * c).clone()), 1e-4);
  }
}

TEST_P(OnlineAttnParam, PairwiseBackwardSumsToReference) {
  auto [s, chunks, h, hk] = GetParam();
  const std::int64_t d = 8;
  Rng rng(static_cast<std::uint64_t>(s * 999 + chunks * 7 + h));
  Tensor q = Tensor::randn({s, h, d}, rng);
  Tensor k = Tensor::randn({s, hk, d}, rng);
  Tensor v = Tensor::randn({s, hk, d}, rng);
  Tensor dout = Tensor::randn({s, h, d}, rng);
  AttentionOutput ref = reference_attention_forward(q, k, v, true);
  AttentionGrads expect = reference_attention_backward(dout, q, k, v, ref.out, true);

  Tensor dq = Tensor::zeros(q.shape());
  Tensor dk = Tensor::zeros(k.shape());
  Tensor dv = Tensor::zeros(v.shape());
  const std::int64_t c = s / chunks;
  Tensor D = online_attn_backward_D(ref.out, dout);
  // FPDT backward order: outer loop over KV chunks, inner over Q chunks.
  for (std::int64_t ik = 0; ik < chunks; ++ik) {
    Tensor kc = k.slice0(ik * c, (ik + 1) * c).clone();
    Tensor vc = v.slice0(ik * c, (ik + 1) * c).clone();
    Tensor dkc = Tensor::zeros(kc.shape());
    Tensor dvc = Tensor::zeros(vc.shape());
    for (std::int64_t iq = ik; iq < chunks; ++iq) {
      Tensor qc = q.slice0(iq * c, (iq + 1) * c).clone();
      Tensor dqc = dq.slice0(iq * c, (iq + 1) * c);
      online_attn_backward_step(qc, kc, vc, dout.slice0(iq * c, (iq + 1) * c).clone(),
                                ref.lse.slice0(iq * c, (iq + 1) * c).clone(),
                                D.slice0(iq * c, (iq + 1) * c).clone(), true, iq * c, ik * c,
                                dqc, dkc, dvc);
    }
    Tensor dk_view = dk.slice0(ik * c, (ik + 1) * c);
    Tensor dv_view = dv.slice0(ik * c, (ik + 1) * c);
    add_(dk_view, dkc);
    add_(dv_view, dvc);
  }
  EXPECT_LT(max_abs_diff(dq, expect.dq), 1e-4);
  EXPECT_LT(max_abs_diff(dk, expect.dk), 1e-4);
  EXPECT_LT(max_abs_diff(dv, expect.dv), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OnlineAttnParam,
                         ::testing::Values(std::tuple{8, 1, 2, 2}, std::tuple{8, 2, 2, 2},
                                           std::tuple{8, 4, 2, 2}, std::tuple{8, 8, 2, 2},
                                           std::tuple{12, 3, 2, 1}, std::tuple{16, 4, 4, 2},
                                           std::tuple{16, 2, 4, 4}));

TEST(OnlineAttnTest, FullyMaskedPairIsNoop) {
  Rng rng(20);
  const std::int64_t c = 4, h = 1, d = 4;
  OnlineAttnState st = OnlineAttnState::create(c, h, d);
  Tensor q = Tensor::randn({c, h, d}, rng);
  Tensor k = Tensor::randn({c, h, d}, rng);
  Tensor v = Tensor::randn({c, h, d}, rng);
  online_attn_step(st, q, k, v, true, /*q_pos0=*/0, /*k_pos0=*/100);  // all future
  for (float mv : st.l.span()) EXPECT_EQ(mv, 0.0f);
  // Now attend to the past; must finalize fine.
  online_attn_step(st, q, k, v, true, /*q_pos0=*/100, /*k_pos0=*/0);
  AttentionOutput out = online_attn_finalize(st);
  EXPECT_TRUE(std::isfinite(out.out.at({0, 0, 0})));
}

// ---- LM head, FFN, Embedding -----------------------------------------------

TEST(LmHeadTest, ChunkedEqualsMonolithic) {
  Rng rng(21);
  const std::int64_t s = 12, d = 8, vocab = 32;
  LmHead head_a("h", d, vocab, rng);
  Rng rng2(21);
  LmHead head_b("h", d, vocab, rng2);
  Tensor x = Tensor::randn({s, d}, rng);
  std::vector<std::int32_t> targets;
  Rng trng(22);
  for (std::int64_t i = 0; i < s; ++i) {
    targets.push_back(static_cast<std::int32_t>(trng.next_below(vocab)));
  }
  LossResult mono = head_a.forward_backward(x, targets, 1, s);
  LossResult chunked = head_b.forward_backward(x, targets, 5, s);
  EXPECT_NEAR(mono.mean_loss(), chunked.mean_loss(), 1e-6);
  EXPECT_LT(max_abs_diff(mono.dx, chunked.dx), 1e-6);
  EXPECT_LT(max_abs_diff(head_a.weight().grad, head_b.weight().grad), 1e-5);
}

TEST(LmHeadTest, GradFiniteDiff) {
  Rng rng(23);
  const std::int64_t s = 6, d = 4, vocab = 11;
  LmHead head("h", d, vocab, rng);
  Tensor x = Tensor::randn({s, d}, rng);
  std::vector<std::int32_t> targets = {1, 5, 0, 10, 3, 7};
  // The fused API accumulates weight grads as a side effect; that does not
  // affect the returned loss value, so it is safe inside the FD probe.
  auto loss = [&] { return head.forward_backward(x, targets, 1, s).mean_loss(); };
  LossResult res = head.forward_backward(x, targets, 1, s);
  Rng probe(24);
  expect_grad_matches(x, res.dx, loss, 10, probe);
}

TEST(LmHeadTest, SuggestedChunksFollowsPaperRule) {
  Rng rng(25);
  LmHead head("h", 64, 512, rng);
  EXPECT_EQ(head.suggested_chunks(), 512 / 64 * 2);
}

TEST(LmHeadTest, LogitsSpikeChargedToPool) {
  Rng rng(26);
  const std::int64_t s = 16, d = 8, vocab = 64;
  LmHead head("h", d, vocab, rng);
  Tensor x = Tensor::randn({s, d}, rng);
  std::vector<std::int32_t> targets(s, 0);
  runtime::MemoryPool mono_pool("p", -1);
  head.forward_backward(x, targets, 1, s, &mono_pool);
  runtime::MemoryPool chunk_pool("p", -1);
  head.forward_backward(x, targets, 8, s, &chunk_pool);
  EXPECT_EQ(mono_pool.peak(), s * vocab * 4);
  EXPECT_EQ(chunk_pool.peak(), s / 8 * vocab * 4);
}

class FfnChunkParam : public ::testing::TestWithParam<std::tuple<Arch, int>> {};

TEST_P(FfnChunkParam, ChunkedEqualsMonolithic) {
  auto [arch, chunks] = GetParam();
  Rng rng_a(30), rng_b(30);
  FeedForward ffn_a("f", arch, 8, 16, rng_a);
  FeedForward ffn_b("f", arch, 8, 16, rng_b);
  Rng rng(31);
  Tensor x = Tensor::randn({12, 8}, rng);
  Tensor dy = Tensor::randn({12, 8}, rng);
  Tensor y1 = ffn_a.forward(x, 1);
  Tensor y2 = ffn_b.forward(x, chunks);
  EXPECT_LT(max_abs_diff(y1, y2), 1e-5);
  Tensor dx1 = ffn_a.backward(dy, x, 1);
  Tensor dx2 = ffn_b.backward(dy, x, chunks);
  EXPECT_LT(max_abs_diff(dx1, dx2), 1e-5);
  std::vector<Tensor> grads_a, grads_b;
  ffn_a.visit([&](Param& p) { grads_a.push_back(p.grad.clone()); });
  ffn_b.visit([&](Param& p) { grads_b.push_back(p.grad.clone()); });
  ASSERT_EQ(grads_a.size(), grads_b.size());
  for (std::size_t i = 0; i < grads_a.size(); ++i) {
    EXPECT_LT(max_abs_diff(grads_a[i], grads_b[i]), 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FfnChunkParam,
                         ::testing::Values(std::tuple{Arch::kGpt, 2}, std::tuple{Arch::kGpt, 3},
                                           std::tuple{Arch::kGpt, 12},
                                           std::tuple{Arch::kLlama, 2},
                                           std::tuple{Arch::kLlama, 4},
                                           std::tuple{Arch::kLlama, 12}));

TEST(FfnTest, BackwardFiniteDiff) {
  Rng rng(32);
  FeedForward ffn("f", Arch::kLlama, 6, 10, rng);
  Tensor x = Tensor::randn({4, 6}, rng);
  Tensor r = Tensor::randn({4, 6}, rng);
  auto loss = [&] { return weighted_sum(ffn.forward(x), r); };
  Tensor dx = ffn.backward(r, x);
  Rng probe(33);
  expect_grad_matches(x, dx, loss, 10, probe);
}

TEST(FfnTest, ChunkingReducesPoolPeak) {
  Rng rng(34);
  FeedForward ffn("f", Arch::kGpt, 8, 32, rng);
  Tensor x = Tensor::randn({16, 8}, rng);
  runtime::MemoryPool mono("m", -1);
  ffn.forward(x, 1, &mono);
  runtime::MemoryPool chunked("c", -1);
  ffn.forward(x, 4, &chunked);
  EXPECT_EQ(mono.peak(), chunked.peak() * 4);
}

TEST(EmbeddingTest, ForwardBackward) {
  Rng rng(35);
  Embedding emb("e", 10, 4, rng);
  std::vector<std::int32_t> tokens = {3, 7, 3};
  Tensor h = emb.forward(tokens);
  EXPECT_EQ(h.dim(0), 3);
  // Rows for the same token are identical.
  EXPECT_LT(max_abs_diff(h.select0(0), h.select0(2)), 1e-7);
  Tensor dy = Tensor::full({3, 4}, 1.0f);
  emb.backward(dy, tokens);
  Tensor grad;
  emb.visit([&](Param& p) { grad = p.grad.clone(); });
  EXPECT_EQ(grad.at({3, 0}), 2.0f);  // token 3 appears twice
  EXPECT_EQ(grad.at({7, 0}), 1.0f);
  EXPECT_EQ(grad.at({0, 0}), 0.0f);
}

// ---- Block and model --------------------------------------------------------

TEST(BlockTest, BackwardWithRecomputeFiniteDiff) {
  ModelConfig cfg = tiny_gpt(16, 1, 2, 16);
  Rng rng(40);
  TransformerBlock blk("b", cfg, rng);
  Tensor x = Tensor::randn({6, 16}, rng, 0.0, 0.5);
  Tensor r = Tensor::randn({6, 16}, rng);
  auto loss = [&] { return weighted_sum(blk.forward_only(x), r); };
  Tensor dx = blk.backward_with_recompute(r, x);
  Rng probe(41);
  expect_grad_matches(x, dx, loss, 12, probe, 8e-3, 4e-2);
}

TEST(BlockTest, LlamaBackwardWithRecomputeFiniteDiff) {
  ModelConfig cfg = tiny_llama(16, 1, 2, 1, 16);
  Rng rng(42);
  TransformerBlock blk("b", cfg, rng);
  Tensor x = Tensor::randn({5, 16}, rng, 0.0, 0.5);
  Tensor r = Tensor::randn({5, 16}, rng);
  auto loss = [&] { return weighted_sum(blk.forward_only(x), r); };
  Tensor dx = blk.backward_with_recompute(r, x);
  Rng probe(43);
  expect_grad_matches(x, dx, loss, 12, probe, 8e-3, 4e-2);
}

TEST(BlockTest, FfnChunksDontChangeResult) {
  ModelConfig cfg = tiny_gpt(16, 1, 2, 16);
  Rng rng_a(44), rng_b(44);
  TransformerBlock a("b", cfg, rng_a);
  TransformerBlock b("b", cfg, rng_b);
  Rng rng(45);
  Tensor x = Tensor::randn({8, 16}, rng);
  EXPECT_LT(max_abs_diff(a.forward_only(x, 0, 1), b.forward_only(x, 0, 4)), 1e-5);
}

TEST(ModelConfigTest, ParamCounts) {
  // Published sizes should land within 10% of the nominal names.
  EXPECT_NEAR(static_cast<double>(gpt_2p7b().param_count()), 2.7e9, 0.3e9);
  EXPECT_NEAR(static_cast<double>(gpt_6p7b().param_count()), 6.7e9, 0.7e9);
  EXPECT_NEAR(static_cast<double>(gpt_13b().param_count()), 13e9, 1.3e9);
  EXPECT_NEAR(static_cast<double>(llama_8b().param_count()), 8e9, 0.8e9);
  EXPECT_NEAR(static_cast<double>(llama_70b().param_count()), 70e9, 7e9);
}

TEST(ModelConfigTest, FlopsGrowWithSequence) {
  ModelConfig cfg = gpt_2p7b();
  EXPECT_GT(cfg.train_flops_per_token(1 << 20), cfg.train_flops_per_token(1 << 12));
  EXPECT_THROW(model_by_name("nope"), FpdtError);
  EXPECT_EQ(model_by_name("llama-8b").n_kv_head, 8);
}

TEST(ModelTest, LossDecreasesUnderTraining) {
  ModelConfig cfg = tiny_gpt(32, 2, 2, 24);
  Model model(cfg, 123);
  Adam opt(3e-3);
  Rng rng(46);
  // Learnable synthetic pattern: token t+1 = (t*3+1) mod vocab.
  std::vector<std::int32_t> tokens;
  std::int32_t cur = 5;
  for (int i = 0; i < 33; ++i) {
    tokens.push_back(cur);
    cur = static_cast<std::int32_t>((cur * 3 + 1) % 24);
  }
  const double first = model.train_step_grads(tokens);
  opt.step([&](const ParamVisitor& fn) { model.visit_params(fn); });
  for (int step = 0; step < 30; ++step) {
    model.train_step_grads(tokens);
    opt.step([&](const ParamVisitor& fn) { model.visit_params(fn); });
  }
  const double last = model.eval_loss(tokens);
  EXPECT_LT(last, first * 0.5) << "first " << first << " last " << last;
}

TEST(ModelTest, SameSeedIdenticalSteps) {
  ModelConfig cfg = tiny_gpt(16, 2, 2, 16);
  Model a(cfg, 7), b(cfg, 7);
  std::vector<std::int32_t> tokens = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_DOUBLE_EQ(a.train_step_grads(tokens), b.train_step_grads(tokens));
}

TEST(ModelTest, LmChunksDontChangeLoss) {
  ModelConfig cfg = tiny_gpt(16, 1, 2, 32);
  Model a(cfg, 9), b(cfg, 9);
  std::vector<std::int32_t> tokens = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13};
  const double l1 = a.train_step_grads(tokens, 1);
  const double l2 = b.train_step_grads(tokens, 4);
  EXPECT_NEAR(l1, l2, 1e-9);
}

TEST(ModelTest, CopyParamsMakesModelsEqual) {
  ModelConfig cfg = tiny_gpt(16, 1, 2, 16);
  Model a(cfg, 1), b(cfg, 2);
  std::vector<std::int32_t> tokens = {1, 2, 3, 4, 5};
  EXPECT_NE(a.eval_loss(tokens), b.eval_loss(tokens));
  b.copy_params_from(a);
  EXPECT_DOUBLE_EQ(a.eval_loss(tokens), b.eval_loss(tokens));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimise ||w - target||² through the Param/visit machinery.
  Param w("w", Tensor::zeros({4}));
  Tensor target = Tensor::from_values({4}, {1, -2, 3, 0.5});
  Adam opt(0.05);
  for (int i = 0; i < 400; ++i) {
    Tensor diff = sub(w.value, target);
    w.grad.copy_from(mul_scalar(diff, 2.0f));
    opt.step([&](const ParamVisitor& fn) { fn(w); });
  }
  EXPECT_LT(max_abs_diff(w.value, target), 1e-2);
}

TEST(MemoryPoolTest, ChargeDischargeAndPeak) {
  runtime::MemoryPool pool("p", 100);
  {
    runtime::Allocation a(&pool, 60);
    EXPECT_EQ(pool.used(), 60);
    {
      runtime::Allocation b(&pool, 30);
      EXPECT_EQ(pool.used(), 90);
    }
    EXPECT_EQ(pool.used(), 60);
    EXPECT_THROW(runtime::Allocation(&pool, 50), OutOfMemoryError);
  }
  EXPECT_EQ(pool.used(), 0);
  EXPECT_EQ(pool.peak(), 90);
}

TEST(MemoryPoolTest, TimelineRecordsLabels) {
  runtime::MemoryPool pool("p", -1);
  pool.start_timeline();
  pool.set_phase_label("attn");
  runtime::Allocation a(&pool, 10);
  pool.set_phase_label("ffn");
  { runtime::Allocation b(&pool, 20); }
  ASSERT_GE(pool.timeline().size(), 3u);
  EXPECT_EQ(pool.timeline()[0].label, "attn");
  EXPECT_EQ(pool.timeline()[1].label, "ffn");
  EXPECT_EQ(pool.timeline()[1].used_bytes, 30);
}

TEST(DeviceTest, OffloadFetchMovesCharges) {
  runtime::Device dev(0, 1000);
  runtime::Host host;
  Rng rng(50);
  runtime::Buffer buf = dev.alloc(Tensor::randn({10, 10}, rng));
  EXPECT_EQ(dev.hbm().used(), 200);  // bf16 accounting
  Tensor original = buf.tensor().clone();
  runtime::Buffer on_host = runtime::offload_to_host(dev, host, std::move(buf));
  EXPECT_EQ(dev.hbm().used(), 0);
  EXPECT_EQ(host.pool().used(), 200);
  EXPECT_EQ(dev.transfers().d2h_bytes, 200);
  runtime::Buffer back = runtime::fetch_to_device(dev, std::move(on_host));
  EXPECT_EQ(dev.hbm().used(), 200);
  EXPECT_EQ(host.pool().used(), 0);
  EXPECT_LT(max_abs_diff(back.tensor(), original), 1e-7);
}

TEST(DeviceTest, FetchCopyLeavesHostResident) {
  runtime::Device dev(0, 1000);
  runtime::Host host;
  Rng rng(51);
  runtime::Buffer hb = host.alloc(Tensor::randn({5}, rng));
  runtime::Buffer db = runtime::fetch_copy_to_device(dev, hb);
  EXPECT_EQ(host.pool().used(), 10);
  EXPECT_EQ(dev.hbm().used(), 10);
  EXPECT_LT(max_abs_diff(db.tensor(), hb.tensor()), 1e-7);
}

TEST(DeviceTest, HbmOomThrows) {
  runtime::Device dev(0, 100);
  Rng rng(52);
  EXPECT_THROW(dev.alloc(Tensor::randn({100}, rng)), OutOfMemoryError);
}

}  // namespace
}  // namespace fpdt
