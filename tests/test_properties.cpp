// Cross-cutting property and integration tests:
//  - schedule ↔ executor agreement: the ChunkSchedule's op counts must
//    match the functional executor's actual DMA/offload counters;
//  - memory monotonicity and double-buffer window effects, measured;
//  - online attention over irregular (non-uniform) chunk partitions;
//  - gradient-equivalence fuzzing across random seeds and geometries;
//  - failure injection: host capacity exhaustion, mid-run OOM recovery.
#include <gtest/gtest.h>

#include "core/chunk_schedule.h"
#include "core/fpdt_block.h"
#include "core/fpdt_trainer.h"
#include "data/rank_ordinal.h"
#include "data/synthetic_corpus.h"
#include "nn/attention.h"
#include "nn/model.h"
#include "tests/test_util.h"

namespace fpdt {
namespace {

using core::ChunkSchedule;
using core::FpdtBlockExecutor;
using core::FpdtConfig;
using core::FpdtEnv;
using core::FpdtTrainer;
using core::OpKind;
using data::RankOrdinalSharder;

// ---- Schedule vs executor ---------------------------------------------------

class ScheduleExecParam : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleExecParam, ForwardDmaCountsMatchSchedule) {
  const std::int64_t u = GetParam();
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 64);
  Rng wrng(1);
  nn::TransformerBlock block("b", cfg, wrng);
  Rng xrng(2);
  const int world = 2;
  Tensor x = Tensor::randn({world * u * 4, cfg.d_model}, xrng);

  FpdtConfig fcfg;
  fcfg.chunks_per_rank = u;
  fcfg.offload = true;
  fcfg.cache_forward_outputs = false;  // plain forward: k̂/v̂ traffic only
  FpdtEnv env(world, fcfg);
  FpdtBlockExecutor exec(block, 0, env);
  RankOrdinalSharder sh(world, u);
  exec.forward(sh.shard_tensor(x));

  const ChunkSchedule sched = ChunkSchedule::forward(u, true, true);
  // Each schedule-level KV fetch is two buffer fetches (k̂ and v̂); each
  // offload op parks the k̂/v̂ pair.
  EXPECT_EQ(env.device(0).transfers().h2d_count, 2 * sched.count(OpKind::kFetchKv));
  EXPECT_EQ(env.device(0).transfers().d2h_count, 2 * sched.count(OpKind::kOffloadKv));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScheduleExecParam, ::testing::Values(1, 2, 3, 4, 6, 8));

TEST(ScheduleExecTest, AllRanksSeeIdenticalTraffic) {
  // FPDT's load-balance claim: "each GPU always processes the same piece
  // of sequence at any given time" — so DMA traffic must be identical on
  // every rank.
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 64);
  Rng wrng(3);
  nn::TransformerBlock block("b", cfg, wrng);
  Rng xrng(4);
  const int world = 4;
  Tensor x = Tensor::randn({world * 16, cfg.d_model}, xrng);
  FpdtConfig fcfg;
  fcfg.chunks_per_rank = 4;
  FpdtEnv env(world, fcfg);
  FpdtBlockExecutor exec(block, 0, env);
  RankOrdinalSharder sh(world, 4);
  Tensor dz = Tensor::randn(x.shape(), xrng);
  exec.forward(sh.shard_tensor(x));
  exec.backward(sh.shard_tensor(dz), sh.shard_tensor(x));
  for (int r = 1; r < world; ++r) {
    EXPECT_EQ(env.device(r).transfers().h2d_bytes, env.device(0).transfers().h2d_bytes);
    EXPECT_EQ(env.device(r).transfers().d2h_bytes, env.device(0).transfers().d2h_bytes);
    EXPECT_EQ(env.device(r).hbm().peak(), env.device(0).hbm().peak());
  }
}

// ---- Memory monotonicity and buffering --------------------------------------

TEST(MemoryPropertyTest, PeakDecreasesMonotonicallyInChunkCount) {
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 64);
  Rng wrng(5);
  nn::TransformerBlock block("b", cfg, wrng);
  Rng xrng(6);
  const int world = 2;
  Tensor x = Tensor::randn({world * 48, cfg.d_model}, xrng);
  std::int64_t prev_peak = INT64_MAX;
  for (std::int64_t u : {1, 2, 4, 8}) {
    FpdtConfig fcfg;
    fcfg.chunks_per_rank = u;
    fcfg.offload = true;
    fcfg.cache_forward_outputs = false;
    FpdtEnv env(world, fcfg);
    FpdtBlockExecutor exec(block, 0, env);
    RankOrdinalSharder sh(world, u);
    exec.forward(sh.shard_tensor(x));
    EXPECT_LT(env.max_hbm_peak(), prev_peak) << "u=" << u;
    prev_peak = env.max_hbm_peak();
  }
}

TEST(MemoryPropertyTest, DoubleBufferCostsOneExtraKvChunk) {
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 64);
  Rng wrng(7);
  nn::TransformerBlock block("b", cfg, wrng);
  Rng xrng(8);
  const int world = 2;
  const std::int64_t u = 8;
  Tensor x = Tensor::randn({world * u * 4, cfg.d_model}, xrng);
  auto peak_with = [&](bool dbuf) {
    FpdtConfig fcfg;
    fcfg.chunks_per_rank = u;
    fcfg.offload = true;
    fcfg.double_buffer = dbuf;
    fcfg.cache_forward_outputs = false;
    FpdtEnv env(world, fcfg);
    FpdtBlockExecutor exec(block, 0, env);
    RankOrdinalSharder sh(world, u);
    exec.forward(sh.shard_tensor(x));
    return env.max_hbm_peak();
  };
  const std::int64_t strict = peak_with(false);
  const std::int64_t dbuf = peak_with(true);
  EXPECT_GE(dbuf, strict);
  // The extra resident buffer is one k̂/v̂ chunk pair: c_global × kv_dim.
  const std::int64_t kv_chunk_bytes = (world * 4) * cfg.d_model * 2 * 2;
  EXPECT_LE(dbuf - strict, kv_chunk_bytes);
}

TEST(MemoryPropertyTest, CacheForwardShiftsBytesToHost) {
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 64);
  Rng wrng(9);
  nn::TransformerBlock block("b", cfg, wrng);
  Rng xrng(10);
  const int world = 2;
  Tensor x = Tensor::randn({world * 16, cfg.d_model}, xrng);
  FpdtConfig fcfg;
  fcfg.chunks_per_rank = 4;
  fcfg.offload = true;
  fcfg.cache_forward_outputs = true;
  FpdtEnv env(world, fcfg);
  FpdtBlockExecutor exec(block, 0, env);
  RankOrdinalSharder sh(world, 4);
  exec.forward(sh.shard_tensor(x));
  // q̂/k̂/v̂/ô/lse/y for all chunks parked on host; device drained.
  EXPECT_GT(env.host().pool().used(), 0);
  EXPECT_EQ(env.device(0).hbm().used(), 0);
  EXPECT_GT(exec.cached_host_bytes(), 0);
  // Backward consumes the caches completely.
  Tensor dz = Tensor::randn(x.shape(), xrng);
  exec.backward(sh.shard_tensor(dz), sh.shard_tensor(x));
  EXPECT_EQ(env.host().pool().used(), 0);
}

// ---- Online attention: irregular partitions ---------------------------------

TEST(IrregularChunksTest, OnlineAttentionExactOverRandomPartitions) {
  // The online-softmax recurrence must be partition-invariant: accumulate
  // KV in randomly-sized pieces and match the monolithic reference.
  Rng rng(20);
  const std::int64_t s = 96, h = 2, d = 8;
  Tensor q = Tensor::randn({s, h, d}, rng);
  Tensor k = Tensor::randn({s, h, d}, rng);
  Tensor v = Tensor::randn({s, h, d}, rng);
  nn::AttentionOutput ref = nn::reference_attention_forward(q, k, v, true);

  for (int trial = 0; trial < 5; ++trial) {
    Rng trng(100 + static_cast<std::uint64_t>(trial));
    // Random cut points for the KV axis.
    std::vector<std::int64_t> cuts = {0, s};
    for (int c = 0; c < 4; ++c) {
      cuts.push_back(1 + static_cast<std::int64_t>(trng.next_below(s - 1)));
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

    nn::OnlineAttnState st = nn::OnlineAttnState::create(s, h, d);
    for (std::size_t ci = 0; ci + 1 < cuts.size(); ++ci) {
      const std::int64_t b = cuts[ci], e = cuts[ci + 1];
      nn::online_attn_step(st, q, k.slice0(b, e), v.slice0(b, e), true, 0, b);
    }
    nn::AttentionOutput got = nn::online_attn_finalize(st);
    EXPECT_LT(max_abs_diff(got.out, ref.out), 1e-4) << "trial " << trial;
    EXPECT_LT(max_abs_diff(got.lse, ref.lse), 1e-4) << "trial " << trial;
  }
}

TEST(IrregularChunksTest, KvChunkOrderIsIrrelevant) {
  // Online softmax is order-invariant over KV chunks (up to FP error) —
  // the property that lets Ring Attention and FPDT schedule freely.
  Rng rng(21);
  const std::int64_t s = 32, h = 1, d = 8, c = 8;
  Tensor q = Tensor::randn({c, h, d}, rng);
  Tensor k = Tensor::randn({s, h, d}, rng);
  Tensor v = Tensor::randn({s, h, d}, rng);
  const std::int64_t q_pos = s;  // q after all kv: no masking
  auto run_order = [&](std::vector<std::int64_t> order) {
    nn::OnlineAttnState st = nn::OnlineAttnState::create(c, h, d);
    for (std::int64_t j : order) {
      nn::online_attn_step(st, q, k.slice0(j * c, (j + 1) * c), v.slice0(j * c, (j + 1) * c),
                           true, q_pos, j * c);
    }
    return nn::online_attn_finalize(st);
  };
  nn::AttentionOutput fwd = run_order({0, 1, 2, 3});
  nn::AttentionOutput rev = run_order({3, 2, 1, 0});
  nn::AttentionOutput shuffled = run_order({2, 0, 3, 1});
  EXPECT_LT(max_abs_diff(fwd.out, rev.out), 1e-4);
  EXPECT_LT(max_abs_diff(fwd.out, shuffled.out), 1e-4);
}

// ---- Gradient-equivalence fuzzing -------------------------------------------

class SeedFuzzParam : public ::testing::TestWithParam<int> {};

TEST_P(SeedFuzzParam, TrainerGradientsMatchReference) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Rng meta(seed);
  const bool llama = meta.next_uniform() < 0.5;
  const int world = meta.next_uniform() < 0.5 ? 2 : 4;
  const int chunks = 1 + static_cast<int>(meta.next_below(3));
  nn::ModelConfig cfg = llama ? nn::tiny_llama(32, 1, 4, 4, 40) : nn::tiny_gpt(32, 1, 4, 40);

  nn::Model ref(cfg, seed * 31 + 1);
  nn::Model dist(cfg, seed * 31 + 1);
  data::SyntheticCorpus corpus(cfg.vocab, seed);
  const std::int64_t s_global = static_cast<std::int64_t>(world) * chunks * 4;
  const auto tokens = corpus.sample(s_global + 1);

  const double l_ref = ref.train_step_grads(tokens);
  FpdtConfig fcfg;
  fcfg.chunks_per_rank = chunks;
  FpdtTrainer trainer(dist, world, fcfg);
  const double l_dist = trainer.train_step_grads(tokens);
  EXPECT_NEAR(l_ref, l_dist, 1e-4) << "seed " << seed;

  std::vector<Tensor> ga;
  ref.visit_params([&](nn::Param& p) { ga.push_back(p.grad); });
  std::size_t i = 0;
  dist.visit_params([&](nn::Param& p) {
    const double scale = std::max(1.0, l2_norm(ga[i]));
    EXPECT_LT(max_abs_diff(ga[i], p.grad) / scale, 2e-3) << p.name << " seed " << seed;
    ++i;
  });
}

INSTANTIATE_TEST_SUITE_P(Fuzz, SeedFuzzParam, ::testing::Range(1, 13));

// ---- Failure injection --------------------------------------------------------

TEST(FailureInjectionTest, HostCapacityExhaustionThrows) {
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 64);
  nn::Model model(cfg, 1);
  FpdtConfig fcfg;
  fcfg.chunks_per_rank = 4;
  fcfg.offload = true;
  // Host too small for the offloaded chunk caches.
  FpdtEnv env(2, fcfg, /*hbm=*/-1, /*host=*/512);
  FpdtBlockExecutor exec(model.blocks()[0], 0, env);
  RankOrdinalSharder sh(2, 4);
  Rng xrng(2);
  Tensor x = Tensor::randn({32, cfg.d_model}, xrng);
  EXPECT_THROW(exec.forward(sh.shard_tensor(x)), OutOfMemoryError);
}

TEST(FailureInjectionTest, OomLeavesPoolConsistent) {
  // After a mid-run OOM, all RAII charges must unwind: used() returns to 0
  // and a smaller run still succeeds on the same environment.
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 64);
  nn::Model model(cfg, 1);
  FpdtConfig fcfg;
  fcfg.chunks_per_rank = 2;
  fcfg.offload = false;
  fcfg.cache_forward_outputs = false;
  FpdtEnv env(2, fcfg, /*hbm=*/6 * 1024);
  FpdtBlockExecutor exec(model.blocks()[0], 0, env);
  Rng xrng(3);
  RankOrdinalSharder sh(2, 2);
  Tensor big = Tensor::randn({128, cfg.d_model}, xrng);
  EXPECT_THROW(exec.forward(sh.shard_tensor(big)), OutOfMemoryError);
  EXPECT_EQ(env.device(0).hbm().used(), 0);
  EXPECT_EQ(env.device(1).hbm().used(), 0);
  Tensor small = Tensor::randn({8, cfg.d_model}, xrng);
  EXPECT_NO_THROW(exec.forward(sh.shard_tensor(small)));
}

TEST(FailureInjectionTest, TrainerRejectsBadGeometry) {
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 64);
  nn::Model model(cfg, 1);
  FpdtConfig fcfg;
  fcfg.chunks_per_rank = 3;
  FpdtTrainer trainer(model, 4, fcfg);
  // 100 tokens not divisible by world*chunks = 12.
  std::vector<std::int32_t> tokens(101, 1);
  EXPECT_THROW(trainer.train_step_grads(tokens), FpdtError);
}

TEST(FailureInjectionTest, HeadsNotDivisibleByWorldThrows) {
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 64);  // 4 heads
  nn::Model model(cfg, 1);
  FpdtConfig fcfg;
  fcfg.chunks_per_rank = 1;
  FpdtTrainer trainer(model, 3, fcfg);  // 4 heads % 3 != 0
  std::vector<std::int32_t> tokens(3 * 4 + 1, 1);
  EXPECT_THROW(trainer.train_step_grads(tokens), FpdtError);
}

}  // namespace
}  // namespace fpdt
