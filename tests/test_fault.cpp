// Fault-injection and resilience: deterministic injector draws, retry /
// degrade / restore recovery ladders, crash-safe checkpointing, and the
// zero-overhead guarantee when the injector is disabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/fpdt_trainer.h"
#include "data/synthetic_corpus.h"
#include "fault/fault_injector.h"
#include "fault/resilient_trainer.h"
#include "fault/watchdog.h"
#include "nn/checkpoint_io.h"
#include "nn/model.h"
#include "nn/model_config.h"
#include "parallel/zero/sharded_optimizer.h"
#include "parallel/zero/zero_config.h"
#include "tests/test_util.h"

namespace fpdt {
namespace {

using fault::FaultInjector;

// Every test leaves the process-global injector disarmed, whatever happened.
class FaultTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& tag) {
    return (std::filesystem::temp_directory_path() /
            (std::string("fpdt_fault_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name() + "_" + tag))
        .string();
  }
  void TearDown() override {
    FaultInjector::instance().disable();
    for (const std::string& p : cleanup_) {
      std::remove(p.c_str());
      std::remove((p + ".tmp").c_str());
    }
  }
  std::string tracked(const std::string& tag) {
    cleanup_.push_back(temp_path(tag));
    return cleanup_.back();
  }

 private:
  std::vector<std::string> cleanup_;
};

TEST_F(FaultTest, DisabledByDefaultAndAfterDisable) {
  FaultInjector& inj = FaultInjector::instance();
  inj.disable();
  EXPECT_FALSE(fault::faults_enabled());
  EXPECT_FALSE(inj.should_fail(fault::Site::kH2D, 0));
  EXPECT_EQ(inj.straggler_delay(0), 0.0);
}

TEST_F(FaultTest, SpecParsing) {
  FaultInjector& inj = FaultInjector::instance();
  inj.configure("h2d:p=0.02,seed=7; collective:step=3,rank=1 ;oom:step=5;straggler:p=0.1,delay=2e-3");
  EXPECT_TRUE(inj.enabled());
  const std::string desc = inj.describe();
  EXPECT_NE(desc.find("h2d: p=0.02"), std::string::npos);
  EXPECT_NE(desc.find("collective: step=3 rank=1"), std::string::npos);
  EXPECT_NE(desc.find("delay=0.002"), std::string::npos);
  inj.configure("");  // empty spec disarms
  EXPECT_FALSE(inj.enabled());

  EXPECT_THROW(inj.configure("warp:p=0.1"), FpdtError);       // unknown site
  EXPECT_THROW(inj.configure("h2d:prob=0.1"), FpdtError);     // unknown key
  EXPECT_THROW(inj.configure("h2d:p=1.5"), FpdtError);        // p out of range
  EXPECT_THROW(inj.configure("h2d"), FpdtError);              // needs p or step
  EXPECT_THROW(inj.configure("h2d:p=abc"), FpdtError);        // bad number
  EXPECT_FALSE(inj.enabled());  // a failed configure never arms the gate
}

TEST_F(FaultTest, StepPinnedRuleFiresOncePerStepAndRank) {
  FaultInjector& inj = FaultInjector::instance();
  inj.configure("collective:step=2");
  inj.begin_step(1);
  EXPECT_FALSE(inj.should_fail(fault::Site::kCollective, -1));
  inj.begin_step(2);
  EXPECT_TRUE(inj.should_fail(fault::Site::kCollective, -1));
  EXPECT_FALSE(inj.should_fail(fault::Site::kCollective, -1));  // pin consumed
  inj.begin_step(3);
  EXPECT_FALSE(inj.should_fail(fault::Site::kCollective, -1));
  EXPECT_EQ(inj.stats().injected, 1);
}

TEST_F(FaultTest, SeededDrawsAreReproducible) {
  FaultInjector& inj = FaultInjector::instance();
  auto draw_pattern = [&] {
    inj.configure("h2d:p=0.3,seed=11");
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(inj.should_fail(fault::Site::kH2D, 0));
    return fired;
  };
  const auto a = draw_pattern();
  const auto b = draw_pattern();
  EXPECT_EQ(a, b);
  EXPECT_GT(std::count(a.begin(), a.end(), true), 0);
  EXPECT_LT(std::count(a.begin(), a.end(), true), 64);
}

TEST_F(FaultTest, ChaosRunIsDeterministic) {
  fault::ChaosOptions opt;
  opt.spec = "h2d:p=0.1,seed=5;d2h:p=0.1,seed=6;collective:step=1;straggler:p=0.05";
  opt.steps = 2;
  opt.chunk_tokens = 32;
  opt.checkpoint_path = tracked("a.ckpt");
  const fault::ChaosResult r1 = fault::run_chaos(opt);
  auto log1 = FaultInjector::instance().injection_log();
  opt.checkpoint_path = tracked("b.ckpt");
  const fault::ChaosResult r2 = fault::run_chaos(opt);
  auto log2 = FaultInjector::instance().injection_log();

  // Same seed, same spec: identical fault sequence (global order across rank
  // threads is nondeterministic, so compare sorted) and identical math.
  std::sort(log1.begin(), log1.end());
  std::sort(log2.begin(), log2.end());
  EXPECT_EQ(log1, log2);
  EXPECT_GT(r1.stats.injected, 0);
  EXPECT_EQ(r1.stats.injected, r2.stats.injected);
  EXPECT_EQ(r1.stats.retried, r2.stats.retried);
  EXPECT_EQ(r1.stats.degraded, r2.stats.degraded);
  EXPECT_EQ(r1.stats.recovered, r2.stats.recovered);
  ASSERT_EQ(r1.losses.size(), r2.losses.size());
  for (std::size_t i = 0; i < r1.losses.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.losses[i], r2.losses[i]);
  }
}

TEST_F(FaultTest, TransientFaultsAreInvisibleAndAllRecovered) {
  fault::ChaosOptions opt;
  opt.spec = "h2d:p=0.2;d2h:p=0.2;collective:step=1;straggler:p=0.1,delay=1e-3";
  opt.steps = 3;
  opt.chunk_tokens = 32;
  opt.checkpoint_path = tracked("ckpt");
  const fault::ChaosResult res = fault::run_chaos(opt);
  EXPECT_TRUE(res.survived(opt.steps)) << res.report(opt.steps);
  EXPECT_GT(res.stats.injected, 0);
  EXPECT_EQ(res.stats.recovered, res.stats.injected);
  EXPECT_FALSE(res.math_degraded);
  // Retried transfers/collectives and straggler spikes are timing-only:
  // the final loss matches the fault-free twin bitwise.
  EXPECT_TRUE(res.loss_bitwise_match) << res.report(opt.steps);
}

TEST_F(FaultTest, PrefetcherDegradesToSyncBitIdentically) {
  // p=1 exhausts the transfer retry budget immediately; the prefetcher must
  // fall back to the sync migration path, which is bit-identical by
  // construction — same loss, same gradients as a fault-free run.
  const nn::ModelConfig cfg = nn::tiny_gpt(32, 2, 4, 48);
  data::SyntheticCorpus c1(cfg.vocab, 9), c2(cfg.vocab, 9);
  const auto t1 = c1.sample(129);
  const auto t2 = c2.sample(129);
  ASSERT_EQ(t1, t2);
  core::FpdtConfig fcfg;
  fcfg.chunks_per_rank = 4;

  FaultInjector::instance().disable();
  nn::Model clean(cfg, 55);
  core::FpdtTrainer clean_trainer(clean, 2, fcfg);
  const double clean_loss = clean_trainer.train_step_grads(t1);

  FaultInjector::instance().configure("h2d:p=1,seed=3");
  nn::Model faulted(cfg, 55);
  core::FpdtTrainer faulted_trainer(faulted, 2, fcfg);
  const double faulted_loss = faulted_trainer.train_step_grads(t2);
  const fault::FaultStats stats = FaultInjector::instance().stats();
  FaultInjector::instance().disable();

  EXPECT_GT(stats.injected, 0);
  EXPECT_GT(stats.degraded, 0);  // sync fallback engaged
  EXPECT_DOUBLE_EQ(clean_loss, faulted_loss);
  std::vector<Tensor> gs;
  clean.visit_params([&](nn::Param& p) { gs.push_back(p.grad); });
  std::size_t i = 0;
  faulted.visit_params([&](nn::Param& p) {
    EXPECT_EQ(max_abs_diff(gs[i], p.grad), 0.0) << p.name;
    ++i;
  });
}

TEST_F(FaultTest, OomDegradesByDoublingChunks) {
  fault::ResilientOptions ro;
  ro.world = 2;
  ro.cfg.chunks_per_rank = 2;
  ro.chunk_tokens = 32;
  ro.checkpoint_path = tracked("ckpt");
  FaultInjector::instance().configure("oom:step=1,count=1");
  fault::ResilientTrainer rt(ro);
  fault::StepOutcome degraded_outcome;
  for (int s = 0; s < 3; ++s) {
    const fault::StepOutcome o = rt.train_step();
    EXPECT_TRUE(std::isfinite(o.loss));
    if (o.oom_degraded) degraded_outcome = o;
  }
  FaultInjector::instance().disable();
  EXPECT_TRUE(degraded_outcome.oom_degraded);
  EXPECT_GT(degraded_outcome.attempts, 1);
  EXPECT_EQ(rt.cfg().chunks_per_rank, 4);  // 2 -> 4, exactly one doubling
  EXPECT_EQ(rt.step(), 3);
}

TEST_F(FaultTest, CrashRestoresAndReplaysBitwise) {
  const std::string faulted_ckpt = tracked("faulted.ckpt");
  auto run = [&](const std::string& spec, const std::string& ckpt) {
    FaultInjector::instance().disable();
    if (!spec.empty()) FaultInjector::instance().configure(spec);
    fault::ResilientOptions ro;
    ro.world = 2;
    ro.cfg.chunks_per_rank = 2;
    ro.chunk_tokens = 32;
    ro.checkpoint_path = ckpt;
    auto rt = std::make_unique<fault::ResilientTrainer>(ro);
    bool restored = false;
    for (int s = 0; s < 4; ++s) restored |= rt->train_step().restored;
    FaultInjector::instance().disable();
    return std::pair<std::unique_ptr<fault::ResilientTrainer>, bool>(std::move(rt), restored);
  };

  auto [faulted, restored] = run("crash:step=2,count=1", faulted_ckpt);
  auto [clean, clean_restored] = run("", tracked("clean.ckpt"));
  EXPECT_TRUE(restored);  // the injected crash forced restore-and-replay
  EXPECT_FALSE(clean_restored);

  // Restore-and-replay must be bitwise invisible: params AND Adam moments
  // match the uninterrupted run exactly.
  std::vector<Tensor> pv, pm, pvv;
  clean->model().visit_params([&](nn::Param& p) {
    pv.push_back(p.value);
    const nn::Adam::Moments& mom = clean->adam().ensure_moments(p);
    pm.push_back(mom.m);
    pvv.push_back(mom.v);
  });
  std::size_t i = 0;
  faulted->model().visit_params([&](nn::Param& p) {
    EXPECT_EQ(max_abs_diff(pv[i], p.value), 0.0) << p.name;
    const nn::Adam::Moments& mom = faulted->adam().ensure_moments(p);
    EXPECT_EQ(max_abs_diff(pm[i], mom.m), 0.0) << p.name << ".m";
    EXPECT_EQ(max_abs_diff(pvv[i], mom.v), 0.0) << p.name << ".v";
    ++i;
  });
  EXPECT_EQ(faulted->adam().step_count(), clean->adam().step_count());
  EXPECT_EQ(faulted->step(), clean->step());
}

TEST_F(FaultTest, Zero3CrashResumeRestoresShardsBitwise) {
  // The ZeRO-3 variant of CrashRestoresAndReplaysBitwise: the snapshot is
  // the sharded envelope (FPDTZR01), and restore-and-replay must bring back
  // every rank's Adam moment shards bitwise, not just the parameters.
  auto run = [&](const std::string& spec, const std::string& ckpt) {
    FaultInjector::instance().disable();
    if (!spec.empty()) FaultInjector::instance().configure(spec);
    fault::ResilientOptions ro;
    ro.world = 2;
    ro.cfg.chunks_per_rank = 2;
    ro.cfg.zero_stage = 3;
    ro.chunk_tokens = 32;
    ro.checkpoint_path = ckpt;
    auto rt = std::make_unique<fault::ResilientTrainer>(ro);
    bool restored = false;
    for (int s = 0; s < 4; ++s) restored |= rt->train_step().restored;
    FaultInjector::instance().disable();
    return std::pair<std::unique_ptr<fault::ResilientTrainer>, bool>(std::move(rt), restored);
  };

  auto [faulted, restored] = run("crash:step=2,count=1", tracked("z3_faulted.ckpt"));
  auto [clean, clean_restored] = run("", tracked("z3_clean.ckpt"));
  EXPECT_TRUE(restored);
  EXPECT_FALSE(clean_restored);

  ASSERT_NE(faulted->sharded(), nullptr);
  ASSERT_NE(clean->sharded(), nullptr);
  EXPECT_EQ(faulted->sharded()->step_count(), clean->sharded()->step_count());
  EXPECT_EQ(faulted->step(), clean->step());

  std::vector<Tensor> pv;
  clean->model().visit_params([&](nn::Param& p) { pv.push_back(p.value); });
  std::size_t i = 0;
  faulted->model().visit_params([&](nn::Param& p) {
    EXPECT_EQ(max_abs_diff(pv[i], p.value), 0.0) << p.name;
    ++i;
  });

  const zero::ShardedAdamState& cs = clean->sharded()->shards();
  const zero::ShardedAdamState& fs = faulted->sharded()->shards();
  ASSERT_EQ(cs.size(), fs.size());
  for (const auto& [name, ranks] : cs) {
    ASSERT_EQ(fs.count(name), 1u) << name;
    const auto& got = fs.at(name);
    ASSERT_EQ(got.size(), ranks.size()) << name;
    for (std::size_t r = 0; r < ranks.size(); ++r) {
      EXPECT_EQ(max_abs_diff(ranks[r].m, got[r].m), 0.0) << name << " rank " << r << " .m";
      EXPECT_EQ(max_abs_diff(ranks[r].v, got[r].v), 0.0) << name << " rank " << r << " .v";
    }
  }
}

TEST_F(FaultTest, CollectiveFaultDuringZeroGatherRetriesWithoutCorruption) {
  // At stage 3 the first collective of a step is the zero.gather all-gather
  // of the embedding group, so a p=1,count=1 rule lands exactly there. The
  // comm retry ladder must absorb it: same loss, same params, same moment
  // shards as the fault-free twin, bitwise.
  const nn::ModelConfig cfg = nn::tiny_gpt(32, 2, 4, 48);
  data::SyntheticCorpus c1(cfg.vocab, 9), c2(cfg.vocab, 9);
  const auto t1 = c1.sample(129);
  const auto t2 = c2.sample(129);
  ASSERT_EQ(t1, t2);
  core::FpdtConfig fcfg;
  fcfg.chunks_per_rank = 4;
  fcfg.zero_stage = 3;

  auto run = [&](nn::Model& model, const std::vector<std::int32_t>& tokens,
                 zero::ShardedAdamState* shards_out) {
    core::FpdtTrainer trainer(model, 2, fcfg);
    zero::ShardedOptimizer opt(trainer.env(), zero::ZeroConfig{3});
    const double loss = trainer.train_step_grads(tokens);
    opt.step([&](const nn::ParamVisitor& v) { model.visit_params(v); });
    trainer.env().synchronize_streams();
    if (shards_out != nullptr) *shards_out = opt.shards();
    return loss;
  };

  FaultInjector::instance().disable();
  nn::Model clean(cfg, 55);
  zero::ShardedAdamState clean_shards;
  const double clean_loss = run(clean, t1, &clean_shards);

  FaultInjector::instance().reset_stats();
  FaultInjector::instance().configure("collective:p=1,count=1");
  nn::Model faulted(cfg, 55);
  zero::ShardedAdamState faulted_shards;
  const double faulted_loss = run(faulted, t2, &faulted_shards);
  const fault::FaultStats stats = FaultInjector::instance().stats();
  const auto log = FaultInjector::instance().injection_log();
  FaultInjector::instance().disable();

  EXPECT_EQ(stats.injected, 1);
  EXPECT_GT(stats.retried, 0);  // absorbed by retry, not degraded to corruption
  ASSERT_EQ(log.size(), 1u);
  EXPECT_NE(log[0].find("site=collective"), std::string::npos) << log[0];

  EXPECT_DOUBLE_EQ(clean_loss, faulted_loss);
  std::vector<Tensor> pv;
  clean.visit_params([&](nn::Param& p) { pv.push_back(p.value); });
  std::size_t i = 0;
  faulted.visit_params([&](nn::Param& p) {
    EXPECT_EQ(max_abs_diff(pv[i], p.value), 0.0) << p.name;
    ++i;
  });
  ASSERT_EQ(clean_shards.size(), faulted_shards.size());
  for (const auto& [name, ranks] : clean_shards) {
    const auto& got = faulted_shards.at(name);
    for (std::size_t r = 0; r < ranks.size(); ++r) {
      EXPECT_EQ(max_abs_diff(ranks[r].m, got[r].m), 0.0) << name << " rank " << r;
      EXPECT_EQ(max_abs_diff(ranks[r].v, got[r].v), 0.0) << name << " rank " << r;
    }
  }
}

TEST_F(FaultTest, TrainingStateRoundTripsBitwise) {
  const std::string path = tracked("ts.ckpt");
  const nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 2, 32);
  data::SyntheticCorpus corpus(cfg.vocab, 3);
  nn::Model a(cfg, 5);
  nn::Adam adam_a(1e-3);
  for (int s = 0; s < 2; ++s) {
    a.train_step_grads(corpus.sample(33));
    adam_a.step([&](const nn::ParamVisitor& f) { a.visit_params(f); });
  }
  nn::TrainingState ts;
  ts.step = 2;
  ts.streams["corpus"] = corpus.save_state();
  nn::save_training_state(a, adam_a, ts, path);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));  // temp was renamed away

  nn::Model b(cfg, 99);
  nn::Adam adam_b(1e-3);
  const nn::TrainingState loaded = nn::load_training_state(b, adam_b, path);
  EXPECT_EQ(loaded.step, 2);
  EXPECT_EQ(loaded.streams.at("corpus"), ts.streams.at("corpus"));
  EXPECT_EQ(adam_b.step_count(), adam_a.step_count());
  std::vector<Tensor> pv;
  a.visit_params([&](nn::Param& p) { pv.push_back(p.value); });
  std::size_t i = 0;
  b.visit_params([&](nn::Param& p) {
    EXPECT_EQ(max_abs_diff(pv[i], p.value), 0.0) << p.name;
    EXPECT_EQ(max_abs_diff(adam_a.ensure_moments(p).m, adam_b.ensure_moments(p).m), 0.0);
    EXPECT_EQ(max_abs_diff(adam_a.ensure_moments(p).v, adam_b.ensure_moments(p).v), 0.0);
    ++i;
  });

  // The restored data stream resumes bit-exactly.
  data::SyntheticCorpus resumed(cfg.vocab, 3);
  resumed.load_state(loaded.streams.at("corpus"));
  EXPECT_EQ(resumed.sample(64), corpus.sample(64));
}

TEST_F(FaultTest, CheckpointRejectsTruncationAndBitFlips) {
  const std::string path = tracked("corrupt.ckpt");
  const nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 2, 32);
  nn::Model a(cfg, 5);
  nn::Adam adam(1e-3);
  nn::TrainingState ts;
  ts.streams["corpus"] = {1, 2, 3};
  nn::save_training_state(a, adam, ts, path);

  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 16);
  EXPECT_THROW(nn::load_training_state(a, adam, path), FpdtError);

  nn::save_training_state(a, adam, ts, path);
  {
    // Flip one bit in the middle of the payload: the checksum must catch it
    // before any state is touched.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(size / 2));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    f.seekp(static_cast<std::streamoff>(size / 2));
    f.write(&byte, 1);
  }
  EXPECT_THROW(nn::load_training_state(a, adam, path), FpdtError);
}

TEST_F(FaultTest, WatchdogNamesStuckRankStreamAndChunk) {
  core::FpdtEnv env(2, core::FpdtConfig{});
  // A transfer that never retires: enqueued on rank 1's H2D queue and never
  // drained by anyone.
  env.device(1).h2d_stream().enqueue("fetch.khat.0.1", 1e-3);
  try {
    fault::check_step_quiescent(env);
    FAIL() << "watchdog accepted a stuck transfer";
  } catch (const FpdtError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("h2d"), std::string::npos) << what;
    EXPECT_NE(what.find("fetch.khat.0.1"), std::string::npos) << what;
  }
  env.synchronize_streams();
  EXPECT_NO_THROW(fault::check_step_quiescent(env));
}

TEST_F(FaultTest, DisabledInjectorIsInvisibleToTraining) {
  // The zero-overhead guard: with the injector disarmed, a streams-mode step
  // is bit-identical to the sync-mode step (the pre-existing equivalence),
  // no injections are recorded, and no fault path runs.
  FaultInjector::instance().disable();
  FaultInjector::instance().reset_stats();
  const nn::ModelConfig cfg = nn::tiny_gpt(32, 2, 4, 48);
  data::SyntheticCorpus c1(cfg.vocab, 9), c2(cfg.vocab, 9);
  const auto t1 = c1.sample(129);
  const auto t2 = c2.sample(129);

  core::FpdtConfig streams_cfg;
  streams_cfg.chunks_per_rank = 4;
  core::FpdtConfig sync_cfg = streams_cfg;
  sync_cfg.stream_prefetch = false;

  nn::Model m1(cfg, 55);
  core::FpdtTrainer tr1(m1, 2, streams_cfg);
  const double loss_streams = tr1.train_step_grads(t1);
  nn::Model m2(cfg, 55);
  core::FpdtTrainer tr2(m2, 2, sync_cfg);
  const double loss_sync = tr2.train_step_grads(t2);

  EXPECT_DOUBLE_EQ(loss_streams, loss_sync);
  const fault::FaultStats stats = FaultInjector::instance().stats();
  EXPECT_EQ(stats.injected, 0);
  EXPECT_EQ(stats.retried, 0);
  EXPECT_EQ(stats.degraded, 0);
  EXPECT_TRUE(FaultInjector::instance().injection_log().empty());
}

TEST_F(FaultTest, WatchdogDistinguishesSlowFromDead) {
  fault::Watchdog wd(4, /*slow_after_steps=*/1);
  for (int r = 0; r < 4; ++r) wd.heartbeat(r, 0, 1.0);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(wd.verdict(r), fault::RankHealth::kHealthy);

  // Rank 2 stops reporting while the group advances two steps: slow (its
  // heartbeat is stale but nobody declared it dead).
  for (std::int64_t step : {1, 2}) {
    for (int r : {0, 1, 3}) wd.heartbeat(r, step, 1.0 + static_cast<double>(step));
  }
  EXPECT_EQ(wd.verdict(2), fault::RankHealth::kSlow);
  EXPECT_EQ(wd.verdict(0), fault::RankHealth::kHealthy);
  const fault::Watchdog::Progress p = wd.last_progress(2);
  EXPECT_EQ(p.step, 0);
  EXPECT_FALSE(p.dead);
  EXPECT_NE(wd.summary().find("rank 2: slow"), std::string::npos) << wd.summary();

  // Catching back up clears the verdict without any membership action.
  wd.heartbeat(2, 2, 3.0);
  EXPECT_EQ(wd.verdict(2), fault::RankHealth::kHealthy);

  // Death is an explicit membership event, not a staleness threshold — and
  // a zombie heartbeat does not resurrect the rank.
  wd.mark_dead(3);
  EXPECT_EQ(wd.verdict(3), fault::RankHealth::kDead);
  wd.heartbeat(3, 9, 9.0);
  EXPECT_EQ(wd.verdict(3), fault::RankHealth::kDead);
  EXPECT_TRUE(wd.last_progress(3).dead);
  EXPECT_EQ(wd.alive_count(), 3);
  EXPECT_EQ(wd.healthy(), (std::vector<int>{0, 1, 2}));

  // Revive resets the heartbeat to the group's front so the rejoined rank
  // is not instantly judged slow.
  wd.revive(3);
  EXPECT_EQ(wd.verdict(3), fault::RankHealth::kHealthy);
  EXPECT_EQ(wd.alive_count(), 4);
}

TEST_F(FaultTest, WatchdogNeverHeardFromCountsAsStepZero) {
  fault::Watchdog wd(2, /*slow_after_steps=*/0);
  // No heartbeats at all: nobody has advanced, so nobody is slow.
  EXPECT_EQ(wd.verdict(0), fault::RankHealth::kHealthy);
  wd.heartbeat(0, 2, 1.0);
  // Rank 1 never reported while rank 0 reached step 2.
  EXPECT_EQ(wd.verdict(1), fault::RankHealth::kSlow);
  EXPECT_EQ(wd.last_progress(1).step, -1);
}

TEST_F(FaultTest, MembershipSitesParseAndDraw) {
  FaultInjector& inj = FaultInjector::instance();
  inj.configure("ranklost:step=2,rank=1;netpart:step=3;rankslow:step=1,rank=0");

  // group_event: no firing rule before its pinned step.
  inj.begin_step(0);
  EXPECT_EQ(inj.group_event(fault::Site::kRankLost, /*fallback=*/3), -1);
  inj.begin_step(2);
  EXPECT_EQ(inj.group_event(fault::Site::kRankLost, 3), 1);
  // Step-pinned rules fire once: the replayed step draws clean.
  EXPECT_EQ(inj.group_event(fault::Site::kRankLost, 3), -1);

  inj.begin_step(3);
  EXPECT_TRUE(inj.should_fail(fault::Site::kNetPart, -1));
  EXPECT_FALSE(inj.should_fail(fault::Site::kNetPart, -1));  // heals on replay

  inj.begin_step(1);
  EXPECT_TRUE(inj.should_fail(fault::Site::kRankSlow, 0));
  EXPECT_FALSE(inj.should_fail(fault::Site::kRankSlow, 1));  // other ranks keep pace

  const fault::FaultStats stats = inj.stats();
  EXPECT_EQ(stats.injected_by_site.at("ranklost"), 1);
  EXPECT_EQ(stats.injected_by_site.at("netpart"), 1);
  EXPECT_EQ(stats.injected_by_site.at("rankslow"), 1);

  // An unpinned ranklost rule names the fallback (last rank) as victim.
  inj.configure("ranklost:step=1");
  inj.begin_step(1);
  EXPECT_EQ(inj.group_event(fault::Site::kRankLost, 3), 3);

  EXPECT_THROW(inj.configure("nosuchsite:p=1"), FpdtError);
}

TEST_F(FaultTest, CorpusStateSurvivesSaveLoad) {
  data::SyntheticCorpus a(64, 17);
  a.sample(500);  // advance well past the history trim threshold? (small) —
                  // enough to populate history and copy machinery
  const auto state = a.save_state();
  const auto expect = a.sample(200);
  data::SyntheticCorpus b(64, 17);
  b.load_state(state);
  EXPECT_EQ(b.sample(200), expect);
  // Malformed states are rejected, not silently misparsed.
  EXPECT_THROW(b.load_state({1, 2, 3}), FpdtError);
  std::vector<std::uint64_t> bad = state;
  bad[4] += 1;  // history length no longer matches the payload
  EXPECT_THROW(b.load_state(bad), FpdtError);
}

}  // namespace
}  // namespace fpdt
