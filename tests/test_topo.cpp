// Topology, hierarchical-collective differential, and weak-scaling model
// contract tests. The load-bearing property is the payload contract: a
// HierarchicalProcessGroup re-routes and re-prices traffic but must return
// bitwise-identical tensors to the flat seed group on every rank, for every
// collective — the in-process analogue of "NCCL tree and ring produce the
// same bits".
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "comm/hierarchical_group.h"
#include "comm/process_group.h"
#include "common/rng.h"
#include "sim/hardware.h"
#include "tests/test_util.h"
#include "topo/topo_model.h"
#include "topo/topology.h"

namespace fpdt {
namespace {

using comm::HierarchicalProcessGroup;
using comm::ProcessGroup;
using topo::LinkClass;
using topo::LinkSpec;
using topo::Topology;

// ---- Topology placement ----------------------------------------------------

TEST(TopologyTest, NodeMajorPlacement) {
  const Topology t = Topology::grid(3, 4, sim::a100_80g_node());
  EXPECT_EQ(t.world(), 12);
  EXPECT_EQ(t.nodes(), 3);
  EXPECT_EQ(t.ranks_per_node(), 4);
  EXPECT_TRUE(t.hierarchical());
  for (int r = 0; r < t.world(); ++r) {
    EXPECT_EQ(t.node_of(r), r / 4);
    EXPECT_EQ(t.local_of(r), r % 4);
    EXPECT_EQ(t.rank_of(t.node_of(r), t.local_of(r)), r);
  }
  // Node membership is a contiguous global range; the cross-node axis is a
  // stride-R comb with one member per node.
  EXPECT_EQ(t.node_members(1), (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(t.cross_node_members(2), (std::vector<int>{2, 6, 10}));
  EXPECT_THROW(t.node_of(12), FpdtError);
}

TEST(TopologyTest, LinkClassification) {
  const Topology t = Topology::grid(2, 2, sim::a100_80g_node());
  EXPECT_EQ(t.link(1, 1), LinkClass::kSelf);
  EXPECT_EQ(t.link(0, 1), LinkClass::kIntra);
  EXPECT_EQ(t.link(1, 2), LinkClass::kInter);
  EXPECT_TRUE(t.same_node(2, 3));
  EXPECT_FALSE(t.same_node(1, 2));

  const Topology flat = Topology::flat(4);
  EXPECT_FALSE(flat.hierarchical());
  EXPECT_EQ(flat.link(0, 3), LinkClass::kIntra);
}

TEST(TopologyTest, FromHardwarePartitionsFullUniformNodes) {
  const sim::HardwareSpec hw = sim::a100_80g_node();  // 4 GPUs per node
  EXPECT_EQ(Topology::from_hardware(hw, 2).nodes(), 1);
  const Topology t8 = Topology::from_hardware(hw, 8);
  EXPECT_EQ(t8.nodes(), 2);
  EXPECT_EQ(t8.ranks_per_node(), 4);
  // world = 6: 4 does not divide 6, so the largest fitting divisor (3)
  // keeps every node full and uniform.
  const Topology t6 = Topology::from_hardware(hw, 6);
  EXPECT_EQ(t6.ranks_per_node(), 3);
  EXPECT_EQ(t6.nodes(), 2);
}

TEST(TopologyTest, PhaseTimeContentionModel) {
  LinkSpec intra;
  intra.bandwidth = 100.0;
  intra.latency_s = 1.0;
  intra.capacity = 4;
  LinkSpec inter;
  inter.bandwidth = 10.0;
  inter.latency_s = 2.0;
  inter.capacity = 1;  // the shared HCA
  const Topology t = Topology::grid(2, 4, intra, inter);

  // At or below capacity every flow gets full bandwidth.
  EXPECT_DOUBLE_EQ(t.phase_time(LinkClass::kIntra, 200, 4), 1.0 + 200.0 / 100.0);
  // Beyond capacity the aggregate divides: 4 flows through a capacity-1
  // link each run at bandwidth/4.
  EXPECT_DOUBLE_EQ(t.phase_time(LinkClass::kInter, 10, 4), 2.0 + 4.0 * 10.0 / 10.0);
  // Local copies are never priced.
  EXPECT_DOUBLE_EQ(t.phase_time(LinkClass::kSelf, 1 << 20, 8), 0.0);
  EXPECT_DOUBLE_EQ(t.phase_time(LinkClass::kInter, 0, 0), 0.0);
}

// ---- Hierarchical differential oracle --------------------------------------

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(), sizeof(float) * static_cast<std::size_t>(a.numel())) ==
             0;
}

void expect_ranks_bitwise(const char* what, const std::vector<Tensor>& flat,
                          const std::vector<Tensor>& hier) {
  ASSERT_EQ(flat.size(), hier.size()) << what;
  for (std::size_t r = 0; r < flat.size(); ++r) {
    EXPECT_TRUE(bitwise_equal(flat[r], hier[r])) << what << " rank " << r;
  }
}

class HierDifferential : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(HierDifferential, AllCollectivesBitwiseIdenticalToFlat) {
  const auto [P, nodes] = GetParam();
  const int rpn = P / nodes;
  ProcessGroup flat(P);
  HierarchicalProcessGroup hier(Topology::grid(nodes, rpn, sim::a100_80g_node()));
  Rng rng(0x70B0u + static_cast<std::uint64_t>(P * 10 + nodes));

  std::vector<Tensor> heads, shard, full, vec, ring;
  for (int r = 0; r < P; ++r) {
    heads.push_back(Tensor::randn({3, 2 * P, 4}, rng));
    shard.push_back(Tensor::randn({5, 3}, rng));
    full.push_back(Tensor::randn({2 * P, 3}, rng));
    vec.push_back(Tensor::randn({7}, rng));
    ring.push_back(Tensor::randn({4}, rng));
  }
  const auto gf = flat.all_to_all_heads_to_seq(heads);
  const auto gh = hier.all_to_all_heads_to_seq(heads);
  expect_ranks_bitwise("heads_to_seq", gf, gh);
  expect_ranks_bitwise("seq_to_heads", flat.all_to_all_seq_to_heads(gf),
                       hier.all_to_all_seq_to_heads(gh));
  expect_ranks_bitwise("all_gather", flat.all_gather(shard), hier.all_gather(shard));
  // Reductions are the sharp edge: float sums are order-sensitive, and the
  // hierarchy promises the flat sequential order.
  expect_ranks_bitwise("reduce_scatter", flat.reduce_scatter(full), hier.reduce_scatter(full));
  expect_ranks_bitwise("all_reduce", flat.all_reduce(vec), hier.all_reduce(vec));
  expect_ranks_bitwise("ring_shift", flat.ring_shift(ring), hier.ring_shift(ring));

  // The re-route must also be visible in the ledger: multi-node runs charge
  // the inter-node link, single-node runs never do.
  const topo::LinkStats ls = hier.link_stats();
  if (nodes > 1) {
    EXPECT_GT(ls.inter_bytes, 0);
    EXPECT_GT(ls.inter_phases, 0);
    EXPECT_GT(ls.inter_busy_s, 0.0);
  } else {
    EXPECT_EQ(ls.inter_bytes, 0);
  }
  EXPECT_GT(ls.intra_bytes, 0);
  EXPECT_GE(ls.max_intra_flows, 1);
  hier.reset_link_stats();
  EXPECT_EQ(hier.link_stats().total_bytes(), 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HierDifferential,
                         ::testing::Values(std::pair{4, 2}, std::pair{8, 2}, std::pair{8, 4},
                                           std::pair{16, 4}, std::pair{4, 1}));

TEST(HierarchicalGroupTest, FlatGroupHasNoLinkLedger) {
  ProcessGroup flat(4);
  EXPECT_EQ(flat.link_stats().total_bytes(), 0);
  EXPECT_EQ(flat.topology(), nullptr);
  HierarchicalProcessGroup hier(Topology::grid(2, 2, sim::a100_80g_node()));
  ASSERT_NE(hier.topology(), nullptr);
  EXPECT_EQ(hier.topology()->nodes(), 2);
}

// ---- Weak-scaling model ----------------------------------------------------

topo::TopoModelOptions small_model_opt() {
  topo::TopoModelOptions opt;
  opt.model = nn::model_by_name("gpt-6.7b");
  return opt;
}

TEST(TopoModelTest, SingleNodeRoutingsCoincide) {
  // On one node there is no inter-node link to avoid: both routings price
  // the same on-node pipeline.
  const sim::HardwareSpec hw = sim::a100_80g_node();
  const Topology t = Topology::grid(1, 4, hw);
  const topo::TopoModelOptions opt = small_model_opt();
  const topo::TopoEval flat = topo::model_step(t, hw, opt, /*hierarchical=*/false);
  const topo::TopoEval hier = topo::model_step(t, hw, opt, /*hierarchical=*/true);
  EXPECT_NEAR(flat.step_s, hier.step_s, 1e-9 * flat.step_s);
  EXPECT_EQ(flat.inter_busy_s, 0.0);
  EXPECT_EQ(hier.inter_busy_s, 0.0);
}

TEST(TopoModelTest, HierStrictlyWinsOnMultiNodeWorlds) {
  const sim::HardwareSpec hw = sim::a100_80g_node();
  ASSERT_LT(hw.ib_bw, hw.nvlink_bw);
  const topo::TopoModelOptions opt = small_model_opt();
  for (const int w : {64, 256, 1024}) {
    const Topology t = Topology::from_hardware(hw, w);
    ASSERT_GT(t.nodes(), 1);
    const topo::TopoEval flat = topo::model_step(t, hw, opt, false);
    const topo::TopoEval hier = topo::model_step(t, hw, opt, true);
    EXPECT_LT(hier.step_s, flat.step_s) << "world " << w;
    EXPECT_GT(flat.inter_busy_s, 0.0) << "world " << w;
    EXPECT_GT(hier.mfu, 0.0);
    EXPECT_LE(hier.mfu, 1.0);
  }
}

TEST(TopoModelTest, WeakScalingSweepSatisfiesShapeContract) {
  const sim::HardwareSpec hw = sim::a100_80g_node();
  const topo::TopoModelOptions opt = small_model_opt();
  const auto rows = topo::weak_scaling(hw, 64, 512, opt);
  ASSERT_EQ(rows.size(), 4u);
  std::string why;
  EXPECT_TRUE(topo::check_weak_scaling(rows, hw, opt.ctx_per_gpu, &why)) << why;
  // CSV: header plus one line per row.
  const std::string csv = topo::scaling_csv(rows);
  EXPECT_EQ(static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n')),
            rows.size() + 1);
  EXPECT_EQ(csv.rfind("gpus,nodes,seq_global,", 0), 0u);
}

TEST(TopoModelTest, ShapeCheckRejectsViolations) {
  const sim::HardwareSpec hw = sim::a100_80g_node();
  const topo::TopoModelOptions opt = small_model_opt();
  const auto rows = topo::weak_scaling(hw, 64, 256, opt);
  std::string why;

  auto tampered = rows;
  std::swap(tampered[1].flat_step_s, tampered[1].hier_step_s);
  tampered[1].speedup = tampered[1].flat_step_s / tampered[1].hier_step_s;
  EXPECT_FALSE(topo::check_weak_scaling(tampered, hw, opt.ctx_per_gpu, &why));
  EXPECT_NE(why.find("strictly beat"), std::string::npos) << why;

  tampered = rows;
  tampered[2].seq_global += 1;
  EXPECT_FALSE(topo::check_weak_scaling(tampered, hw, opt.ctx_per_gpu, &why));
  EXPECT_NE(why.find("weak scaling"), std::string::npos) << why;

  tampered = rows;
  tampered[1].gpus = 100;
  EXPECT_FALSE(topo::check_weak_scaling(tampered, hw, opt.ctx_per_gpu, &why));

  tampered = rows;
  tampered[0].speedup *= 2.0;
  EXPECT_FALSE(topo::check_weak_scaling(tampered, hw, opt.ctx_per_gpu, &why));
  EXPECT_FALSE(topo::check_weak_scaling({}, hw, opt.ctx_per_gpu, &why));
}

TEST(HardwarePresetTest, NamedPresetsResolve) {
  EXPECT_EQ(sim::hw_preset("").gpus_per_node, sim::a100_80g_node().gpus_per_node);
  EXPECT_LT(sim::hw_preset("a100-40g").hbm_bytes, sim::hw_preset("a100-nvlink").hbm_bytes);
  EXPECT_LT(sim::hw_preset("pcie-host").nvlink_bw, sim::hw_preset("a100-nvlink").nvlink_bw);
  EXPECT_THROW(sim::hw_preset("h100-sxm"), FpdtError);
}

}  // namespace
}  // namespace fpdt
