// The autotuner (src/tune/): search-space canonicalization, conservative
// pruning, the prune-soundness sweep (a pruned candidate must never measure
// as fitting the budget), bit-identical TuneReports with the result cache
// cold and warm, the Runner's exact double round-trip through the on-disk
// cache, the Fig. 12 chunk-sweep shape contract, and the profile-level ZeRO
// stage plumbing the tuner executes through.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "obs/profiler.h"
#include "tune/planner.h"
#include "tune/runner.h"
#include "tune/search_space.h"
#include "tune/sweep.h"
#include "tune/tuner.h"

namespace fpdt::tune {
namespace {

bool bitwise_equal(double a, double b) {
  std::uint64_t ab = 0, bb = 0;
  std::memcpy(&ab, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  return ab == bb;
}

// The laptop-scale request every executed test tunes: tiny GPT, 2 emulated
// GPUs, 512 tokens, one profiled step. The 1450K budget is calibrated so
// ZeRO stage 0 (model-state floor ~1.6M) prunes while stages 1-3 survive,
// and so offloaded candidates fit while resident+cache_fwd ones do not.
TuneRequest smoke_request() {
  TuneRequest req;
  req.world = 2;
  req.s_global = 512;
  req.steps = 1;
  req.seed = 1234;
  req.hbm_budget_bytes = 1450LL * 1024;
  req.top_k = 8;
  // Restricted grid (12 canonical candidates) keeps executed tests fast.
  req.space.chunks_per_rank = {2, 4};
  req.space.zero_stages = {0, 1, 3};
  req.space.ffn_chunk_multipliers = {2};
  req.space.offload = {true, false};
  req.space.double_buffer = {true};
  req.space.cache_fwd = {true};
  return req;
}

std::string temp_cache_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("fpdt_test_tune_") + tag + ".cache"))
      .string();
}

// ---- SearchSpace -----------------------------------------------------------

TEST(SearchSpace, DivisibilityConstraint) {
  // world * u must divide s_global with >= 1 token per chunk.
  EXPECT_TRUE(SearchSpace::divisible(2, 512, 4));
  EXPECT_TRUE(SearchSpace::divisible(4, 512, 8));
  EXPECT_FALSE(SearchSpace::divisible(3, 512, 1));   // 512 % 3 != 0
  EXPECT_FALSE(SearchSpace::divisible(2, 6, 4));     // 6 % 8 != 0
  EXPECT_FALSE(SearchSpace::divisible(2, 0, 1));     // no tokens
}

TEST(SearchSpace, EnumerateRespectsDivisibility) {
  SearchSpace space;
  space.chunks_per_rank = {1, 2, 3, 4};  // u=3 does not divide 512/world
  for (const Candidate& c : space.enumerate(2, 512)) {
    EXPECT_TRUE(SearchSpace::divisible(2, 512, c.cfg.chunks_per_rank)) << c.label;
    EXPECT_NE(c.cfg.chunks_per_rank, 3) << c.label;
  }
}

TEST(SearchSpace, CanonicalizationCollapsesOffloadAxes) {
  SearchSpace space;
  const std::vector<Candidate> cands = space.enumerate(2, 512);
  ASSERT_FALSE(cands.empty());
  std::set<std::string> canon;
  for (const Candidate& c : cands) {
    // No duplicates after canonicalization.
    EXPECT_TRUE(canon.insert(c.cfg.canonical()).second) << c.label;
    // Without offload there is no migration to buffer or prefetch.
    if (!c.cfg.offload) {
      EXPECT_FALSE(c.cfg.double_buffer) << c.label;
      EXPECT_FALSE(c.cfg.stream_prefetch) << c.label;
    } else {
      EXPECT_TRUE(c.cfg.stream_prefetch) << c.label;
    }
    // Strategy mirrors the executable config at this (world, s_global).
    EXPECT_EQ(c.strategy.fpdt_chunk_tokens, 512 / c.cfg.chunks_per_rank) << c.label;
  }
  // Full default grid at (2, 512): 4u x 4z x 2ffn x (offload: 2db x 2cf = 4;
  // resident: 2cf) = 4*4*2*6 = 192 canonical points.
  EXPECT_EQ(cands.size(), 192u);
}

TEST(SearchSpace, LabelsAreDeterministic) {
  core::FpdtConfig cfg;
  cfg.chunks_per_rank = 4;
  cfg.offload = true;
  cfg.double_buffer = true;
  cfg.cache_forward_outputs = true;
  cfg.ffn_chunk_multiplier = 2;
  cfg.lm_head_chunks = 0;
  cfg.zero_stage = 3;
  const Candidate c = make_candidate(cfg, 2, 512);
  EXPECT_EQ(c.label, "u4-z3-off+db+cf-ffn2-lm0");
  cfg.offload = false;
  cfg.double_buffer = false;
  const Candidate r = make_candidate(cfg, 2, 512);
  EXPECT_EQ(r.label, "u4-z3-res+cf-ffn2-lm0");
}

// ---- Planner ---------------------------------------------------------------

TEST(Planner, PrunesOnlyProvablyOversizedCandidates) {
  const TuneRequest req = smoke_request();
  const std::vector<PlannedCandidate> planned = Planner(req).plan();
  ASSERT_FALSE(planned.empty());
  int pruned = 0;
  for (const PlannedCandidate& pc : planned) {
    if (pc.pruned) {
      ++pruned;
      // Pruning only ever fires on the conservative model-state floor.
      EXPECT_GT(pc.floor_bytes, req.budget()) << pc.cand.label;
      EXPECT_FALSE(pc.prune_reason.empty()) << pc.cand.label;
      // With this budget only stage 0 (replicated model state) can prune.
      EXPECT_EQ(pc.cand.cfg.zero_stage, 0) << pc.cand.label;
    } else {
      EXPECT_LE(pc.floor_bytes, req.budget()) << pc.cand.label;
    }
  }
  // Every stage-0 candidate in the restricted grid is over the floor.
  EXPECT_EQ(pruned, 4);
}

TEST(Planner, OrdersFittingCandidatesFirst) {
  const TuneRequest req = smoke_request();
  const std::vector<PlannedCandidate> planned = Planner(req).plan();
  // Order contract: unpruned before pruned; within unpruned, modeled-fits
  // before modeled-over; within each group, modeled step ascending.
  for (std::size_t i = 1; i < planned.size(); ++i) {
    const PlannedCandidate& a = planned[i - 1];
    const PlannedCandidate& b = planned[i];
    EXPECT_LE(a.pruned, b.pruned) << b.cand.label;
    if (!a.pruned && !b.pruned) {
      EXPECT_GE(a.modeled_fits, b.modeled_fits) << b.cand.label;
      if (a.modeled_fits == b.modeled_fits) {
        EXPECT_LE(a.modeled.step_s, b.modeled.step_s) << b.cand.label;
      }
    }
  }
}

// ---- Prune soundness -------------------------------------------------------

// The load-bearing contract: execute EVERY candidate the planner saw —
// including the pruned ones — and check that nothing the pruner discarded
// would actually have fit the budget when measured.
TEST(PruneSoundness, PrunedCandidatesNeverMeasureAsFitting) {
  const TuneRequest req = smoke_request();
  const std::vector<PlannedCandidate> planned = Planner(req).plan();
  Runner runner(req);
  for (const PlannedCandidate& pc : planned) {
    const Measurement m = runner.run(pc.cand);
    EXPECT_GT(m.hbm_peak_bytes, 0) << pc.cand.label;
    if (pc.pruned) {
      EXPECT_GT(m.hbm_peak_bytes, req.budget())
          << pc.cand.label << " was pruned but measures as fitting — unsound prune";
      // The floor really is a lower bound on the measurement.
      EXPECT_LE(pc.floor_bytes, m.hbm_peak_bytes) << pc.cand.label;
    }
  }
}

// ---- tune() end-to-end -----------------------------------------------------

TEST(Tune, WinnerFitsAndIsFastestMeasured) {
  const TuneRequest req = smoke_request();
  const TuneReport rep = tune(req);
  EXPECT_EQ(rep.enumerated, 12);
  EXPECT_EQ(rep.pruned_count, 4);
  EXPECT_EQ(rep.executed_count, 8);
  ASSERT_GE(rep.winner, 0) << rep.table();
  const TuneRow* win = rep.winning();
  ASSERT_NE(win, nullptr);
  EXPECT_TRUE(win->executed);
  EXPECT_TRUE(win->fits_budget);
  EXPECT_EQ(win->status, "winner");
  EXPECT_LE(win->measured.hbm_peak_bytes, req.budget());
  for (const TuneRow& r : rep.rows) {
    if (r.executed && r.fits_budget) {
      EXPECT_LE(r.measured.tokens_per_s, win->measured.tokens_per_s) << r.planned.cand.label;
    }
  }
  // The winning config round-trips into an executable FpdtConfig.
  const core::FpdtConfig cfg = rep.winning_config();
  EXPECT_EQ(cfg.canonical(), win->planned.cand.cfg.canonical());
}

TEST(Tune, RowOrderingContract) {
  const TuneReport rep = tune(smoke_request());
  // executed rows first (tok/s descending), then skipped, then pruned.
  int phase = 0;  // 0=executed 1=skipped 2=pruned
  double prev_tok_s = 0.0;
  for (const TuneRow& r : rep.rows) {
    const int k = r.executed ? 0 : (r.planned.pruned ? 2 : 1);
    EXPECT_GE(k, phase) << r.planned.cand.label;
    if (k == 0) {
      if (phase == 0 && prev_tok_s > 0.0) {
        EXPECT_LE(r.measured.tokens_per_s, prev_tok_s) << r.planned.cand.label;
      }
      prev_tok_s = r.measured.tokens_per_s;
    }
    phase = k;
  }
}

TEST(Tune, ReportBitIdenticalColdAndWarmCache) {
  const std::string cache = temp_cache_path("coldwarm");
  std::filesystem::remove(cache);
  TuneRequest req = smoke_request();
  req.cache_path = cache;

  const TuneReport cold = tune(req);
  EXPECT_EQ(cold.cache_hits, 0);
  EXPECT_EQ(cold.executed_count, 8);
  ASSERT_TRUE(std::filesystem::exists(cache));

  const TuneReport warm = tune(req);
  EXPECT_EQ(warm.cache_hits, warm.executed_count);

  // Bit-identical rendered reports, cache state notwithstanding.
  EXPECT_EQ(cold.json(), warm.json());
  EXPECT_EQ(cold.table(), warm.table());
  std::filesystem::remove(cache);
}

TEST(Tune, DeterministicAcrossRepeatedRuns) {
  const TuneRequest req = smoke_request();  // no cache: both runs execute
  const TuneReport a = tune(req);
  const TuneReport b = tune(req);
  EXPECT_EQ(a.json(), b.json());
  EXPECT_EQ(a.table(), b.table());
}

// ---- Runner cache ----------------------------------------------------------

TEST(Runner, CacheRoundTripIsBitExact) {
  const std::string cache = temp_cache_path("roundtrip");
  std::filesystem::remove(cache);
  TuneRequest req = smoke_request();
  req.cache_path = cache;
  const Candidate cand = req.space.enumerate(req.world, req.s_global).front();

  Runner first(req);
  const Measurement executed = first.run(cand);
  EXPECT_FALSE(executed.from_cache);
  EXPECT_EQ(first.executed(), 1);

  Runner second(req);  // fresh process-equivalent: reloads from disk
  const Measurement cached = second.run(cand);
  EXPECT_TRUE(cached.from_cache);
  EXPECT_EQ(second.cache_hits(), 1);
  EXPECT_EQ(second.executed(), 0);

  EXPECT_TRUE(bitwise_equal(executed.virtual_step_s, cached.virtual_step_s));
  EXPECT_TRUE(bitwise_equal(executed.tokens_per_s, cached.tokens_per_s));
  EXPECT_TRUE(bitwise_equal(executed.overlap_ratio, cached.overlap_ratio));
  EXPECT_TRUE(bitwise_equal(executed.loss, cached.loss));
  EXPECT_EQ(executed.hbm_peak_bytes, cached.hbm_peak_bytes);
  std::filesystem::remove(cache);
}

TEST(Runner, TamperedCacheLineIsDropped) {
  const std::string cache = temp_cache_path("tamper");
  std::filesystem::remove(cache);
  TuneRequest req = smoke_request();
  req.cache_path = cache;
  const Candidate cand = req.space.enumerate(req.world, req.s_global).front();
  Runner(req).run(cand);

  // Flip the measurement payload without fixing the key hash.
  std::ifstream in(cache);
  std::string line;
  std::getline(in, line);
  in.close();
  const std::size_t last = line.rfind(' ');
  ASSERT_NE(last, std::string::npos);
  line.replace(last + 1, std::string::npos, "dead");
  {
    std::ofstream out(cache, std::ios::trunc);
    out << "FPDTTUNE1 0000000000000000 bogus-key 0 0 0 0 0\n" << line << "\n";
  }

  Runner reloaded(req);
  const Measurement m = reloaded.run(cand);
  // Both lines were invalid, so this re-executes rather than trusting them.
  EXPECT_FALSE(m.from_cache);
  EXPECT_EQ(reloaded.cache_hits(), 0);
  std::filesystem::remove(cache);
}

TEST(Runner, CacheKeySeparatesRequests) {
  TuneRequest a = smoke_request();
  TuneRequest b = smoke_request();
  b.seed = 999;
  TuneRequest c = smoke_request();
  c.s_global = 1024;
  const Candidate cand = a.space.enumerate(a.world, a.s_global).front();
  const std::string ka = Runner(a).cache_key(cand);
  EXPECT_NE(ka, Runner(b).cache_key(cand));
  EXPECT_NE(ka, Runner(c).cache_key(cand));
}

// ---- Chunk sweep (Fig. 12) -------------------------------------------------

TEST(ChunkSweep, CurveIsMonotoneThenFlat) {
  const std::vector<ChunkSweepRow> rows = chunk_sweep();
  ASSERT_FALSE(rows.empty());
  std::set<std::string> models;
  for (const ChunkSweepRow& r : rows) models.insert(r.model);
  EXPECT_EQ(models.size(), 4u);  // the paper's four Fig. 12 cases
  std::string why;
  EXPECT_TRUE(check_chunk_curve(rows, &why)) << why;
}

TEST(ChunkSweep, ShapeCheckRejectsBrokenCurves) {
  std::vector<ChunkSweepRow> rows = chunk_sweep();
  // Invert the memory ordering of one series: must be caught.
  rows.front().hbm_total = rows.back().hbm_total + (1LL << 40);
  std::string why;
  EXPECT_FALSE(check_chunk_curve(rows, &why));
  EXPECT_FALSE(why.empty());
}

// ---- fpdt profile --zero-stage ---------------------------------------------

TEST(ProfileZeroStage, LossBitIdenticalAndModelStateAccounted) {
  obs::ProfileOptions base;
  base.steps = 2;
  base.trace = false;
  base.trace_path.clear();
  base.metrics_path.clear();

  obs::ProfileOptions seed = base;   // zero_stage = -1: replicated Adam
  obs::ProfileOptions z0 = base;
  z0.zero_stage = 0;
  obs::ProfileOptions z3 = base;
  z3.zero_stage = 3;

  const obs::ProfileResult r_seed = obs::run_profile(seed);
  const obs::ProfileResult r_z0 = obs::run_profile(z0);
  const obs::ProfileResult r_z3 = obs::run_profile(z3);

  // ZeRO conformance reaches the profiler: every stage trains bit-identically.
  ASSERT_EQ(r_seed.steps.size(), r_z3.steps.size());
  for (std::size_t i = 0; i < r_seed.steps.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(r_seed.steps[i].loss, r_z0.steps[i].loss)) << i;
    EXPECT_TRUE(bitwise_equal(r_seed.steps[i].loss, r_z3.steps[i].loss)) << i;
  }
  // Stages >= 0 charge model state to the MemoryPool; the seed path does not.
  EXPECT_GT(r_z0.steps.back().hbm_peak_bytes, r_seed.steps.back().hbm_peak_bytes);
  // Partitioned stage 3 holds strictly less than replicated stage 0.
  EXPECT_LT(r_z3.steps.back().hbm_peak_bytes, r_z0.steps.back().hbm_peak_bytes);
}

}  // namespace
}  // namespace fpdt::tune
