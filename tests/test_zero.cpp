// Executable ZeRO (parallel/zero/): the conformance sweep that holds every
// stage bit-identical to the replicated reference, the differential oracle
// that pins the measured MemoryPool residency to perfmodel::estimate_memory,
// sharded checkpoint round-trips, and the rank-ordinal sharding edge cases
// the ZeRO trainers depend on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/table.h"
#include "core/fpdt_trainer.h"
#include "data/rank_ordinal.h"
#include "data/synthetic_corpus.h"
#include "nn/checkpoint_io.h"
#include "nn/model.h"
#include "nn/model_config.h"
#include "parallel/zero/sharded_optimizer.h"
#include "parallel/zero/zero_config.h"
#include "parallel/zero/zero_engine.h"
#include "perfmodel/memory_model.h"
#include "perfmodel/strategy.h"

namespace fpdt {
namespace {

bool bitwise_equal(double a, double b) {
  std::uint64_t ab = 0, bb = 0;
  std::memcpy(&ab, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  return ab == bb;
}

// ---- Conformance sweep -----------------------------------------------------
//
// One training run at a given (model, world, stage, chunks, chunk_tokens):
// FpdtTrainer forward/backward + ShardedOptimizer updates. Captures per-step
// losses, the gradients of the final step (pre-update), and the final
// parameters — everything the bit-identity property quantifies over.
struct RunResult {
  std::vector<double> losses;
  std::vector<Tensor> final_grads;
  std::vector<Tensor> final_params;
  std::vector<std::string> names;
};

RunResult run_training(const nn::ModelConfig& cfg, int world, int stage, std::int64_t chunks,
                       std::int64_t chunk_tokens, int steps) {
  nn::Model model(cfg, /*seed=*/4242);
  core::FpdtConfig fcfg;
  fcfg.chunks_per_rank = chunks;
  fcfg.zero_stage = stage;
  core::FpdtTrainer trainer(model, world, fcfg);
  zero::ShardedOptimizer opt(trainer.env(), zero::ZeroConfig{stage});
  data::SyntheticCorpus corpus(cfg.vocab, /*seed=*/31);
  const std::int64_t s_global = static_cast<std::int64_t>(world) * chunks * chunk_tokens;

  RunResult out;
  for (int s = 0; s < steps; ++s) {
    model.zero_grads();
    out.losses.push_back(trainer.train_step_grads(corpus.sample(s_global + 1)));
    if (s + 1 == steps) {
      model.visit_params([&](nn::Param& p) {
        out.final_grads.push_back(p.grad.clone());
        out.names.push_back(p.name);
      });
    }
    opt.step([&](const nn::ParamVisitor& v) { model.visit_params(v); });
    trainer.env().synchronize_streams();
  }
  model.visit_params([&](nn::Param& p) { out.final_params.push_back(p.value.clone()); });
  return out;
}

void expect_bitwise_identical(const RunResult& ref, const RunResult& got,
                              const std::string& tag) {
  ASSERT_EQ(ref.losses.size(), got.losses.size()) << tag;
  for (std::size_t s = 0; s < ref.losses.size(); ++s) {
    EXPECT_TRUE(bitwise_equal(ref.losses[s], got.losses[s]))
        << tag << " loss diverged at step " << s << ": " << ref.losses[s] << " vs "
        << got.losses[s];
  }
  ASSERT_EQ(ref.final_params.size(), got.final_params.size()) << tag;
  for (std::size_t i = 0; i < ref.final_params.size(); ++i) {
    EXPECT_EQ(max_abs_diff(ref.final_grads[i], got.final_grads[i]), 0.0)
        << tag << " grad " << ref.names[i];
    EXPECT_EQ(max_abs_diff(ref.final_params[i], got.final_params[i]), 0.0)
        << tag << " param " << ref.names[i];
  }
}

// Property: for every (ranks, stage, chunks, chunk_tokens, arch) drawn from
// the sweep, stages 1-3 reproduce the stage-0 replicated run bitwise — final
// loss, every per-step loss, every gradient, every updated parameter. The
// seeded generator keeps the drawn subset reproducible while still covering
// the cross-product over time.
TEST(ZeroConformance, StagesMatchReplicatedBitwiseAcrossSweep) {
  struct Case {
    int world;
    std::int64_t chunks;
    std::int64_t chunk_tokens;
    bool llama;
  };
  // Always-on corners: the degenerate single rank and the widest group.
  std::vector<Case> cases = {
      {1, 2, 32, false},
      {8, 2, 16, false},
  };
  // Seeded random middle of the sweep (ranks x chunks x tokens x arch).
  std::mt19937 gen(20250806);
  const int worlds[] = {1, 2, 4, 8};
  const std::int64_t chunk_opts[] = {1, 2, 4};
  const std::int64_t token_opts[] = {16, 32};
  for (int draw = 0; draw < 3; ++draw) {
    cases.push_back({worlds[gen() % 4], chunk_opts[gen() % 3], token_opts[gen() % 2],
                     (gen() % 2) == 0});
  }

  for (const Case& c : cases) {
    // n_head must divide the group; 8 heads shards across every world here.
    const nn::ModelConfig cfg = c.llama ? nn::tiny_llama(64, 2, 8, 8, 96)
                                        : nn::tiny_gpt(64, 2, 8, 96);
    const int steps = 2;
    const RunResult ref = run_training(cfg, c.world, /*stage=*/0, c.chunks, c.chunk_tokens, steps);
    for (int stage = 1; stage <= 3; ++stage) {
      std::ostringstream tag;
      tag << (c.llama ? "llama" : "gpt") << " P=" << c.world << " u=" << c.chunks
          << " k=" << c.chunk_tokens << " stage=" << stage;
      const RunResult got = run_training(cfg, c.world, stage, c.chunks, c.chunk_tokens, steps);
      expect_bitwise_identical(ref, got, tag.str());
    }
  }
}

// The sharded step must also match the plain nn::Adam reference — i.e. the
// ZeRO engine composes with the trainer without perturbing the pre-existing
// FpdtTrainer == nn::Adam equivalence.
TEST(ZeroConformance, Stage3MatchesUnshardedAdamReference) {
  const nn::ModelConfig cfg = nn::tiny_gpt(64, 2, 4, 96);
  const int world = 2;
  const std::int64_t chunks = 2, chunk_tokens = 32;
  const std::int64_t s_global = world * chunks * chunk_tokens;

  // Reference: seed-behavior trainer (zero_stage = -1) + replicated Adam.
  nn::Model ref_model(cfg, 4242);
  core::FpdtConfig seed_cfg;
  seed_cfg.chunks_per_rank = chunks;
  core::FpdtTrainer ref_trainer(ref_model, world, seed_cfg);
  nn::Adam adam(1e-3);
  data::SyntheticCorpus c1(cfg.vocab, 31);
  std::vector<double> ref_losses;
  for (int s = 0; s < 3; ++s) {
    ref_model.zero_grads();
    ref_losses.push_back(ref_trainer.train_step_grads(c1.sample(s_global + 1)));
    adam.step([&](const nn::ParamVisitor& v) { ref_model.visit_params(v); });
  }

  const RunResult got = run_training(cfg, world, /*stage=*/3, chunks, chunk_tokens, 3);
  ASSERT_EQ(got.losses.size(), ref_losses.size());
  for (std::size_t s = 0; s < ref_losses.size(); ++s) {
    EXPECT_TRUE(bitwise_equal(ref_losses[s], got.losses[s])) << "step " << s;
  }
  std::size_t i = 0;
  ref_model.visit_params([&](nn::Param& p) {
    EXPECT_EQ(max_abs_diff(p.value, got.final_params[i]), 0.0) << p.name;
    ++i;
  });
}

// ---- Differential oracle vs perfmodel::estimate_memory ---------------------
//
// The analytic model divides N exactly; the engine shards the *actual*
// parameter set (which includes GPT biases the analytic count omits) into
// per-parameter ceil(n/P) shards. Both effects are ~1% at tiny_gpt scale, so
// the oracle holds each component to 2% relative + 4 KiB absolute.
constexpr double kRelTol = 0.02;
constexpr double kAbsTolBytes = 4096.0;

bool within_tolerance(std::int64_t measured, std::int64_t modeled) {
  const double diff = std::abs(static_cast<double>(measured - modeled));
  return diff <= std::max(kAbsTolBytes, kRelTol * static_cast<double>(modeled));
}

// Chunk counts exercised by the footprint oracle: parsed from the repo's
// published table2_footprint.csv ("fpdt u=N" rows) so the CI lane and the
// paper artifact stay in lockstep; falls back to the published values when
// the test runs from an unexpected cwd.
std::vector<std::int64_t> footprint_chunk_counts() {
  const char* candidates[] = {
      "table2_footprint.csv",
      "../table2_footprint.csv",
      "../../table2_footprint.csv",
      "../../../table2_footprint.csv",
  };
  for (const char* path : candidates) {
    std::ifstream in(path);
    if (!in) continue;
    std::vector<std::int64_t> us;
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t pos = line.find("u=");
      if (pos == std::string::npos) continue;
      us.push_back(std::strtoll(line.c_str() + pos + 2, nullptr, 10));
    }
    if (!us.empty()) return us;
  }
  return {2, 4, 8};
}

TEST(ZeroFootprintOracle, MeasuredResidencyMatchesAnalyticModelPerStage) {
  const std::vector<std::int64_t> chunk_counts = footprint_chunk_counts();
  ASSERT_FALSE(chunk_counts.empty());
  const nn::ModelConfig cfg = nn::tiny_gpt();
  const int world = 2;
  const std::int64_t chunk_tokens = 32;

  for (const std::int64_t chunks : chunk_counts) {
    const std::int64_t s_global = world * chunks * chunk_tokens;
    for (int stage = 0; stage <= 3; ++stage) {
      nn::Model model(cfg, 7);
      core::FpdtConfig fcfg;
      fcfg.chunks_per_rank = chunks;
      fcfg.zero_stage = stage;
      core::FpdtTrainer trainer(model, world, fcfg);
      ASSERT_NE(trainer.zero_engine(), nullptr);
      const zero::ResidentBytes measured = trainer.zero_engine()->resident(0);

      perfmodel::Strategy st = perfmodel::Strategy::fpdt();
      st.zero_stage = stage;
      st.fpdt_chunk_tokens = world * chunk_tokens;
      const perfmodel::MemoryBreakdown modeled =
          perfmodel::estimate_memory(cfg, st, world, s_global);

      const struct {
        const char* component;
        std::int64_t measured, modeled;
      } rows[] = {
          {"params", measured.params, modeled.params},
          {"grads", measured.grads, modeled.grads},
          {"optimizer", measured.optimizer, modeled.optimizer},
      };
      bool ok = true;
      for (const auto& r : rows) ok &= within_tolerance(r.measured, r.modeled);
      if (!ok) {
        // Render the per-component diff the issue asks failures to carry.
        TextTable t({"stage", "component", "measured", "modeled", "delta"});
        for (const auto& r : rows) {
          t.add_row({std::to_string(stage), r.component, std::to_string(r.measured),
                     std::to_string(r.modeled), std::to_string(r.measured - r.modeled)});
        }
        std::ostringstream os;
        t.print(os);
        FAIL() << "u=" << chunks << " stage=" << stage
               << ": measured residency diverged from perfmodel::estimate_memory beyond "
               << kRelTol * 100 << "% + " << kAbsTolBytes << "B\n"
               << os.str();
      }
    }
  }
}

// The acceptance criterion: at stage 3 the resident model state is ~1/P of
// the replicated stage-0 bytes — while the final loss stays bit-identical
// (the conformance sweep above already pins losses; re-checked here on the
// same pair so the criterion is one self-contained test).
TEST(ZeroFootprintOracle, Stage3ResidencyIsOneOverPOfReplicated) {
  const nn::ModelConfig cfg = nn::tiny_gpt();
  const int world = 4;
  const std::int64_t chunks = 2, chunk_tokens = 32;

  const RunResult s0 = run_training(cfg, world, 0, chunks, chunk_tokens, 1);
  const RunResult s3 = run_training(cfg, world, 3, chunks, chunk_tokens, 1);
  EXPECT_TRUE(bitwise_equal(s0.losses.back(), s3.losses.back()));

  nn::Model m0(cfg, 7), m3(cfg, 7);
  core::FpdtConfig f0, f3;
  f0.chunks_per_rank = f3.chunks_per_rank = chunks;
  f0.zero_stage = 0;
  f3.zero_stage = 3;
  core::FpdtTrainer t0(m0, world, f0), t3(m3, world, f3);
  const std::int64_t replicated = t0.zero_engine()->resident(0).total();
  const std::int64_t sharded = t3.zero_engine()->resident(0).total();
  // Shard totals exceed replicated/P only by the per-parameter ceil padding.
  EXPECT_TRUE(within_tolerance(sharded, replicated / world))
      << "stage-3 resident " << sharded << " vs stage-0/" << world << " = "
      << replicated / world;
}

// Residency accounting is live, not just a static charge: a ZeRO-3 gather
// raises the rank's HBM `used` by the gathered working buffer and a release
// returns it; double-gathering one group is a caught programming error.
TEST(ZeroEngineResidency, GatherChargesAndReleasesWorkingBuffer) {
  const nn::ModelConfig cfg = nn::tiny_gpt();
  nn::Model model(cfg, 7);
  core::FpdtConfig fcfg;
  fcfg.zero_stage = 3;
  core::FpdtTrainer trainer(model, 2, fcfg);
  zero::ZeroEngine* eng = trainer.zero_engine();
  ASSERT_NE(eng, nullptr);

  const std::int64_t base = trainer.env().device(0).hbm().used();
  const zero::ParamWalk walk = [&](const nn::ParamVisitor& v) {
    model.blocks()[0].visit(v);
  };
  std::int64_t group_elems = 0;
  walk([&](nn::Param& p) { group_elems += p.value.numel(); });

  eng->gather_group("block0", walk);
  EXPECT_EQ(trainer.env().device(0).hbm().used() - base,
            group_elems * zero::kParamBytesPerElem);
  EXPECT_THROW(eng->gather_group("block0", walk), FpdtError);
  eng->release_group("block0");
  EXPECT_EQ(trainer.env().device(0).hbm().used(), base);
}

// ---- Sharded checkpoint round-trip (FPDTZR01) ------------------------------

class ZeroCheckpoint : public ::testing::Test {
 protected:
  std::string tracked(const std::string& tag) {
    cleanup_.push_back((std::filesystem::temp_directory_path() /
                        (std::string("fpdt_zero_") + tag))
                           .string());
    return cleanup_.back();
  }
  void TearDown() override {
    for (const std::string& p : cleanup_) {
      std::remove(p.c_str());
      std::remove((p + ".tmp").c_str());
    }
  }

 private:
  std::vector<std::string> cleanup_;
};

TEST_F(ZeroCheckpoint, ShardedStateRoundTripsBitwise) {
  const std::string path = tracked("roundtrip.ckpt");
  const nn::ModelConfig cfg = nn::tiny_gpt(32, 2, 4, 48);
  const int world = 4, stage = 3;
  const std::int64_t chunks = 2, chunk_tokens = 16;
  const std::int64_t s_global = world * chunks * chunk_tokens;

  nn::Model a(cfg, 5);
  core::FpdtConfig fcfg;
  fcfg.chunks_per_rank = chunks;
  fcfg.zero_stage = stage;
  core::FpdtTrainer ta(a, world, fcfg);
  zero::ShardedOptimizer oa(ta.env(), zero::ZeroConfig{stage});
  data::SyntheticCorpus corpus(cfg.vocab, 3);
  for (int s = 0; s < 2; ++s) {
    a.zero_grads();
    ta.train_step_grads(corpus.sample(s_global + 1));
    oa.step([&](const nn::ParamVisitor& v) { a.visit_params(v); });
  }
  nn::TrainingState ts;
  ts.step = 2;
  ts.streams["corpus"] = corpus.save_state();
  nn::save_sharded_training_state(a, oa.mutable_shards(), oa.step_count(), world, stage, ts,
                                  path);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  nn::Model b(cfg, 99);
  nn::ShardedAdamState loaded_shards;
  const nn::ShardedRestore sr =
      nn::load_sharded_training_state(b, loaded_shards, world, stage, path);
  EXPECT_EQ(sr.adam_step, oa.step_count());
  EXPECT_EQ(sr.state.step, 2);
  EXPECT_EQ(sr.state.streams.at("corpus"), ts.streams.at("corpus"));

  std::vector<Tensor> pv;
  a.visit_params([&](nn::Param& p) { pv.push_back(p.value); });
  std::size_t i = 0;
  b.visit_params([&](nn::Param& p) {
    EXPECT_EQ(max_abs_diff(pv[i], p.value), 0.0) << p.name;
    EXPECT_EQ(max_abs_diff(p.grad, Tensor::zeros(p.grad.shape())), 0.0) << p.name << ".grad";
    ++i;
  });
  ASSERT_EQ(loaded_shards.size(), oa.shards().size());
  for (const auto& [name, ranks] : oa.shards()) {
    ASSERT_EQ(loaded_shards.count(name), 1u) << name;
    const auto& got = loaded_shards.at(name);
    ASSERT_EQ(got.size(), ranks.size()) << name;
    for (std::size_t r = 0; r < ranks.size(); ++r) {
      EXPECT_EQ(max_abs_diff(ranks[r].m, got[r].m), 0.0) << name << " rank " << r << " .m";
      EXPECT_EQ(max_abs_diff(ranks[r].v, got[r].v), 0.0) << name << " rank " << r << " .v";
    }
  }
}

TEST_F(ZeroCheckpoint, RejectsGeometryMismatchAndCorruption) {
  const std::string path = tracked("geometry.ckpt");
  const nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 2, 32);
  nn::Model a(cfg, 5);
  nn::ShardedAdamState shards;
  nn::TrainingState ts;
  ts.streams["corpus"] = {1, 2, 3};
  nn::save_sharded_training_state(a, shards, /*adam_step=*/1, /*world=*/2, /*zero_stage=*/3,
                                  ts, path);

  nn::ShardedAdamState out;
  // Shard geometry is state: a different world or stage must be refused.
  EXPECT_THROW(nn::load_sharded_training_state(a, out, 4, 3, path), FpdtError);
  EXPECT_THROW(nn::load_sharded_training_state(a, out, 2, 1, path), FpdtError);
  EXPECT_NO_THROW(nn::load_sharded_training_state(a, out, 2, 3, path));

  // The replicated loader must refuse the sharded magic, and vice versa.
  nn::Adam adam(1e-3);
  EXPECT_THROW(nn::load_training_state(a, adam, path), FpdtError);

  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 8);
  EXPECT_THROW(nn::load_sharded_training_state(a, out, 2, 3, path), FpdtError);
}

// ---- Rank-ordinal sharding edge cases --------------------------------------

TEST(RankOrdinalEdgeCases, IndivisibleSequenceIsRefused) {
  data::RankOrdinalSharder sharder(/*world=*/2, /*chunks_per_rank=*/4);
  // 100 tokens cannot split into P*u = 8 chunks; the +1 is the final label.
  std::vector<std::int32_t> tokens(101, 1);
  EXPECT_THROW(sharder.shard_tokens(tokens), FpdtError);
  // Off-by-one in the label convention: s_global + 1 is required, a bare
  // multiple of P*u lacks the final label and is also refused.
  std::vector<std::int32_t> bare(96, 1);
  EXPECT_THROW(sharder.shard_tokens(bare), FpdtError);
}

TEST(RankOrdinalEdgeCases, SingleRankLayoutIsIdentity) {
  data::RankOrdinalSharder sharder(/*world=*/1, /*chunks_per_rank=*/4);
  std::vector<std::int32_t> tokens(33);
  for (std::size_t i = 0; i < tokens.size(); ++i) tokens[i] = static_cast<std::int32_t>(i);
  const auto shards = sharder.shard_tokens(tokens);
  ASSERT_EQ(shards.size(), 1u);
  const data::RankShard& s = shards[0];
  ASSERT_EQ(s.inputs.size(), 32u);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(s.inputs[i], tokens[i]) << i;
    EXPECT_EQ(s.labels[i], tokens[i + 1]) << i;
  }
  ASSERT_EQ(s.chunk_pos0.size(), 4u);
  for (std::int64_t c = 0; c < 4; ++c) {
    EXPECT_EQ(sharder.global_chunk(0, c), c);
    EXPECT_EQ(s.chunk_pos0[static_cast<std::size_t>(c)], c * 8);
  }
}

TEST(RankOrdinalEdgeCases, LabelReorderMatchesTokenReorder) {
  const int world = 2;
  const std::int64_t u = 2, k = 8;  // chunk size s_global / (P*u)
  data::RankOrdinalSharder sharder(world, u);
  std::vector<std::int32_t> tokens(world * u * k + 1);
  for (std::size_t i = 0; i < tokens.size(); ++i) tokens[i] = static_cast<std::int32_t>(i);
  const auto shards = sharder.shard_tokens(tokens);
  ASSERT_EQ(shards.size(), 2u);
  for (int r = 0; r < world; ++r) {
    const data::RankShard& s = shards[static_cast<std::size_t>(r)];
    for (std::int64_t c = 0; c < u; ++c) {
      const std::int64_t g0 = sharder.global_chunk(r, c) * k;
      EXPECT_EQ(s.chunk_pos0[static_cast<std::size_t>(c)], g0);
      for (std::int64_t j = 0; j < k; ++j) {
        // The label of every reordered token is the *globally* next token —
        // exactly what the reordered input stream pairs it with.
        EXPECT_EQ(s.inputs[static_cast<std::size_t>(c * k + j)],
                  tokens[static_cast<std::size_t>(g0 + j)]);
        EXPECT_EQ(s.labels[static_cast<std::size_t>(c * k + j)],
                  tokens[static_cast<std::size_t>(g0 + j + 1)]);
      }
    }
  }
}

}  // namespace
}  // namespace fpdt
