// KV-cache inference tests: parity with the recompute-based generation
// path, chunked-prefill invariance (the inference analogue of FPDT's
// training-side chunk invariance), and session lifecycle errors.
#include <gtest/gtest.h>

#include "common/check.h"
#include "data/synthetic_corpus.h"
#include "nn/adam.h"
#include "nn/generate.h"
#include "nn/inference.h"
#include "nn/model.h"
#include "tests/test_util.h"

namespace fpdt {
namespace {

using namespace fpdt::nn;

TEST(InferenceTest, PrefillLogitsMatchRecomputePath) {
  Model model(tiny_gpt(48, 2, 4, 40), 21);
  std::vector<std::int32_t> prompt = {3, 17, 5, 9, 22, 1, 30};
  Tensor ref = next_token_logits(model, prompt);
  InferenceSession session(model);
  Tensor got = session.prefill(prompt);
  EXPECT_LT(max_abs_diff(got, ref), 1e-4);
}

class PrefillChunkParam : public ::testing::TestWithParam<int> {};

TEST_P(PrefillChunkParam, ChunkedPrefillMatchesMonolithic) {
  const std::int64_t chunk = GetParam();
  Model model(tiny_llama(48, 2, 4, 2, 40), 22);
  data::SyntheticCorpus corpus(40, 4);
  const auto prompt = corpus.sample(23);  // deliberately not chunk-aligned
  InferenceSession mono(model, 0);
  InferenceSession chunked(model, chunk);
  Tensor a = mono.prefill(prompt);
  Tensor b = chunked.prefill(prompt);
  EXPECT_LT(max_abs_diff(a, b), 1e-4) << "chunk " << chunk;
  EXPECT_EQ(mono.position(), chunked.position());
}

INSTANTIATE_TEST_SUITE_P(Sweep, PrefillChunkParam, ::testing::Values(1, 3, 4, 8, 16, 64));

TEST(InferenceTest, DecodeMatchesRecomputedPrefixLogits) {
  Model model(tiny_gpt(48, 2, 4, 40), 23);
  std::vector<std::int32_t> prompt = {1, 2, 3, 4, 5};
  InferenceSession session(model, 2);
  session.prefill(prompt);
  // Decode three tokens; after each, the logits must equal a fresh
  // full-prefix recompute.
  std::vector<std::int32_t> extended = prompt;
  for (std::int32_t tok : {7, 11, 13}) {
    Tensor dec = session.decode(tok);
    extended.push_back(tok);
    Tensor ref = next_token_logits(model, extended);
    EXPECT_LT(max_abs_diff(dec, ref), 1e-4) << "after token " << tok;
  }
  EXPECT_EQ(session.position(), 8);
}

TEST(InferenceTest, GenerateCachedMatchesGenerate) {
  Model model(tiny_gpt(48, 2, 4, 40), 24);
  // Train briefly so logits are not near-uniform (argmax would be noisy).
  Adam opt(2e-3);
  data::SyntheticCorpus corpus(40, 9);
  for (int s = 0; s < 30; ++s) {
    model.train_step_grads(corpus.sample(65));
    opt.step([&](const ParamVisitor& f) { model.visit_params(f); });
  }
  SampleOptions greedy;
  greedy.temperature = 0.0;
  Rng r1(1), r2(1);
  const auto prompt = corpus.sample(16);
  const auto ref = generate(model, prompt, 12, greedy, r1);
  const auto cached = generate_cached(model, prompt, 12, greedy, r2, /*prefill_chunk=*/4);
  EXPECT_EQ(ref, cached);
}

TEST(InferenceTest, CacheGrowsAcrossDecodes) {
  Model model(tiny_gpt(32, 1, 2, 32), 25);
  InferenceSession session(model);
  session.prefill({1, 2, 3});
  const std::int64_t after_prefill = session.kv_cache_bytes();
  EXPECT_GT(after_prefill, 0);
  session.decode(4);
  session.decode(5);
  EXPECT_GT(session.kv_cache_bytes(), after_prefill);
  // Per-layer cache bytes = 2 (k+v) * length * kv_dim * 2 bytes.
  const auto& cfg = model.config();
  EXPECT_EQ(session.kv_cache_bytes(),
            cfg.n_layer * 2 * 5 * cfg.n_kv_head * cfg.head_dim() * 2);
}

TEST(InferenceTest, LifecycleErrors) {
  Model model(tiny_gpt(32, 1, 2, 32), 26);
  InferenceSession session(model);
  EXPECT_THROW(session.decode(1), FpdtError);  // decode before prefill
  session.prefill({1, 2});
  EXPECT_THROW(session.prefill({3}), FpdtError);  // double prefill
  InferenceSession other(model);
  EXPECT_THROW(other.prefill({}), FpdtError);  // empty prompt
  SampleOptions sampling;
  sampling.temperature = 1.0;
  Rng rng(1);
  EXPECT_THROW(generate_cached(model, {1}, 2, sampling, rng), FpdtError);  // greedy only
}

TEST(InferenceTest, LongPromptDecodeIsCheap) {
  // Smoke of the complexity claim: decoding after a long prompt touches
  // one token's worth of compute; just verify it completes and agrees for
  // a longer prompt than the capacity growth's initial 64.
  Model model(tiny_gpt(32, 1, 2, 32), 27);
  data::SyntheticCorpus corpus(32, 3);
  const auto prompt = corpus.sample(200);
  InferenceSession session(model, 64);
  session.prefill(prompt);
  Tensor dec = session.decode(5);
  std::vector<std::int32_t> extended = prompt;
  extended.push_back(5);
  EXPECT_LT(max_abs_diff(dec, next_token_logits(model, extended)), 2e-4);
}

}  // namespace
}  // namespace fpdt
