// KV-cache inference tests: parity with the recompute-based generation
// path, chunked-prefill invariance (the inference analogue of FPDT's
// training-side chunk invariance), and session lifecycle errors.
#include <gtest/gtest.h>

#include "common/check.h"
#include "data/synthetic_corpus.h"
#include "nn/adam.h"
#include "nn/generate.h"
#include "nn/inference.h"
#include "nn/model.h"
#include "obs/workmeter.h"
#include "tests/test_util.h"

namespace fpdt {
namespace {

using namespace fpdt::nn;

TEST(InferenceTest, PrefillLogitsMatchRecomputePath) {
  Model model(tiny_gpt(48, 2, 4, 40), 21);
  std::vector<std::int32_t> prompt = {3, 17, 5, 9, 22, 1, 30};
  Tensor ref = next_token_logits(model, prompt);
  InferenceSession session(model);
  Tensor got = session.prefill(prompt);
  EXPECT_LT(max_abs_diff(got, ref), 1e-4);
}

class PrefillChunkParam : public ::testing::TestWithParam<int> {};

TEST_P(PrefillChunkParam, ChunkedPrefillMatchesMonolithic) {
  const std::int64_t chunk = GetParam();
  Model model(tiny_llama(48, 2, 4, 2, 40), 22);
  data::SyntheticCorpus corpus(40, 4);
  const auto prompt = corpus.sample(23);  // deliberately not chunk-aligned
  InferenceSession mono(model, 0);
  InferenceSession chunked(model, chunk);
  Tensor a = mono.prefill(prompt);
  Tensor b = chunked.prefill(prompt);
  EXPECT_LT(max_abs_diff(a, b), 1e-4) << "chunk " << chunk;
  EXPECT_EQ(mono.position(), chunked.position());
}

INSTANTIATE_TEST_SUITE_P(Sweep, PrefillChunkParam, ::testing::Values(1, 3, 4, 8, 16, 64));

TEST(InferenceTest, DecodeMatchesRecomputedPrefixLogits) {
  Model model(tiny_gpt(48, 2, 4, 40), 23);
  std::vector<std::int32_t> prompt = {1, 2, 3, 4, 5};
  InferenceSession session(model, 2);
  session.prefill(prompt);
  // Decode three tokens; after each, the logits must equal a fresh
  // full-prefix recompute.
  std::vector<std::int32_t> extended = prompt;
  for (std::int32_t tok : {7, 11, 13}) {
    Tensor dec = session.decode(tok);
    extended.push_back(tok);
    Tensor ref = next_token_logits(model, extended);
    EXPECT_LT(max_abs_diff(dec, ref), 1e-4) << "after token " << tok;
  }
  EXPECT_EQ(session.position(), 8);
}

TEST(InferenceTest, GenerateCachedMatchesGenerate) {
  Model model(tiny_gpt(48, 2, 4, 40), 24);
  // Train briefly so logits are not near-uniform (argmax would be noisy).
  Adam opt(2e-3);
  data::SyntheticCorpus corpus(40, 9);
  for (int s = 0; s < 30; ++s) {
    model.train_step_grads(corpus.sample(65));
    opt.step([&](const ParamVisitor& f) { model.visit_params(f); });
  }
  SampleOptions greedy;
  greedy.temperature = 0.0;
  greedy.kv_cache = false;  // pin the recompute path as the reference
  Rng r1(1), r2(1);
  const auto prompt = corpus.sample(16);
  const auto ref = generate(model, prompt, 12, greedy, r1);
  const auto cached = generate_cached(model, prompt, 12, greedy, r2, /*prefill_chunk=*/4);
  EXPECT_EQ(ref, cached);
}

TEST(InferenceTest, GreedyGenerateRoutesThroughKvCache) {
  Model model(tiny_gpt(48, 2, 4, 40), 29);
  Adam opt(2e-3);
  data::SyntheticCorpus corpus(40, 11);
  for (int s = 0; s < 30; ++s) {
    model.train_step_grads(corpus.sample(65));
    opt.step([&](const ParamVisitor& f) { model.visit_params(f); });
  }
  const auto prompt = corpus.sample(16);
  SampleOptions cached_opts;
  cached_opts.temperature = 0.0;  // kv_cache defaults on
  SampleOptions recompute_opts = cached_opts;
  recompute_opts.kv_cache = false;

  auto& meter = obs::Workmeter::instance();
  meter.reset();
  meter.set_enabled(true);
  const obs::WorkSnapshot base = meter.snapshot();
  Rng r1(1), r2(1);
  const auto cached = generate(model, prompt, 12, cached_opts, r1);
  const obs::WorkSnapshot after_cached = meter.snapshot();
  const auto recomputed = generate(model, prompt, 12, recompute_opts, r2);
  const obs::WorkSnapshot after_recompute = meter.snapshot();
  meter.set_enabled(false);

  EXPECT_EQ(cached, recomputed);
  const std::int64_t gemm = static_cast<int>(obs::OpKind::kGemm);
  const std::int64_t cached_flops = after_cached.since(base).kind[gemm].flops;
  const std::int64_t recompute_flops = after_recompute.since(after_cached).kind[gemm].flops;
  // Cached decode touches one token per step; recompute re-runs the whole
  // prefix. Even for 12 tokens the gap is several-fold.
  EXPECT_LT(cached_flops * 2, recompute_flops);
}

TEST(InferenceTest, DecodeStepGemmFlopsConstantInPosition) {
  // Regression pin for the O(1)-decode claim: the gemm work of one decode
  // step must not depend on how long the cached prefix already is. The
  // analytic FLOP formulas are exact integers, so equality is exact, not
  // within-tolerance. (Attention work does grow with the prefix — that is
  // the O(n) gather term — and is metered under a different kind.)
  Model model(tiny_gpt(32, 1, 2, 32), 30);
  data::SyntheticCorpus corpus(32, 12);
  InferenceSession session(model, 0);
  session.prefill(corpus.sample(8));

  auto& meter = obs::Workmeter::instance();
  meter.reset();
  meter.set_enabled(true);
  const obs::WorkSnapshot s0 = meter.snapshot();
  session.decode(1);
  const obs::WorkSnapshot s1 = meter.snapshot();
  for (int i = 0; i < 40; ++i) session.decode(2);
  const obs::WorkSnapshot s2 = meter.snapshot();
  session.decode(3);
  const obs::WorkSnapshot s3 = meter.snapshot();
  meter.set_enabled(false);

  const int gemm = static_cast<int>(obs::OpKind::kGemm);
  const int attn = static_cast<int>(obs::OpKind::kAttention);
  const obs::WorkSnapshot early = s1.since(s0);
  const obs::WorkSnapshot late = s3.since(s2);
  EXPECT_EQ(early.kind[gemm].flops, late.kind[gemm].flops);
  EXPECT_EQ(early.calls[gemm], late.calls[gemm]);
  EXPECT_GT(late.kind[attn].flops, early.kind[attn].flops);
}

TEST(InferenceTest, CacheGrowsAcrossDecodes) {
  Model model(tiny_gpt(32, 1, 2, 32), 25);
  InferenceSession session(model);
  session.prefill({1, 2, 3});
  const std::int64_t after_prefill = session.kv_cache_bytes();
  EXPECT_GT(after_prefill, 0);
  session.decode(4);
  session.decode(5);
  EXPECT_GT(session.kv_cache_bytes(), after_prefill);
  // Per-layer cache bytes = 2 (k+v) * length * kv_dim * 2 bytes.
  const auto& cfg = model.config();
  EXPECT_EQ(session.kv_cache_bytes(),
            cfg.n_layer * 2 * 5 * cfg.n_kv_head * cfg.head_dim() * 2);
}

TEST(InferenceTest, LifecycleErrors) {
  Model model(tiny_gpt(32, 1, 2, 32), 26);
  InferenceSession session(model);
  EXPECT_THROW(session.decode(1), FpdtError);  // decode before prefill
  session.prefill({1, 2});
  EXPECT_THROW(session.prefill({3}), FpdtError);  // double prefill
  InferenceSession other(model);
  EXPECT_THROW(other.prefill({}), FpdtError);  // empty prompt
  SampleOptions sampling;
  sampling.temperature = 1.0;
  Rng rng(1);
  EXPECT_THROW(generate_cached(model, {1}, 2, sampling, rng), FpdtError);  // greedy only
}

TEST(InferenceTest, LongPromptDecodeIsCheap) {
  // Smoke of the complexity claim: decoding after a long prompt touches
  // one token's worth of compute; just verify it completes and agrees for
  // a longer prompt than the capacity growth's initial 64.
  Model model(tiny_gpt(32, 1, 2, 32), 27);
  data::SyntheticCorpus corpus(32, 3);
  const auto prompt = corpus.sample(200);
  InferenceSession session(model, 64);
  session.prefill(prompt);
  Tensor dec = session.decode(5);
  std::vector<std::int32_t> extended = prompt;
  extended.push_back(5);
  EXPECT_LT(max_abs_diff(dec, next_token_logits(model, extended)), 2e-4);
}

}  // namespace
}  // namespace fpdt
