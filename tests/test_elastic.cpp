// Elastic world membership: rank loss, node churn and network partitions
// with coordinated re-sharding (fault/elastic.h).
//
// The two contracts under test, swept over ranks x churn x ZeRO stage:
//   1. determinism — the same scenario seed produces an identical recovery
//      transcript and identical per-step losses on every run;
//   2. bitwise resume — after a reshard to world P', every subsequent loss
//      is bitwise identical to a fresh P'-world run restored from the same
//      re-sharded snapshot (run_elastic's twin check).
// Plus unit coverage of the shard re-partitioner's manifest invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/check.h"
#include "fault/elastic.h"
#include "fault/fault_injector.h"
#include "nn/model_config.h"
#include "parallel/zero/reshard.h"
#include "tensor/tensor.h"

namespace fpdt {
namespace {

class ElasticTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& tag) {
    // Parameterized test names contain '/'; keep the path flat.
    std::string name = ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::replace(name.begin(), name.end(), '/', '_');
    return (std::filesystem::temp_directory_path() / ("fpdt_elastic_" + name + "_" + tag))
        .string();
  }
  void TearDown() override { fault::FaultInjector::instance().disable(); }
};

fault::ElasticOptions small_options(int world, int zero_stage, const std::string& scenario,
                                    const std::string& ckpt) {
  fault::ElasticOptions opt;
  opt.scenario = scenario;
  opt.steps = 4;
  opt.world = world;
  opt.chunks = 1;
  opt.chunk_tokens = 8;
  opt.zero_stage = zero_stage;
  // 8 heads: worlds {1, 2, 4, 8} are valid, so every shrink has somewhere
  // to land and world 8 can lose a rank.
  opt.model = nn::tiny_gpt(32, 1, 8, 48);
  opt.checkpoint_path = ckpt;
  return opt;
}

// ---- churn sweep -----------------------------------------------------------

struct ChurnCase {
  const char* name;
  const char* scenario;
  int min_world;        // scenario needs at least this many ranks
  bool expects_reshard;
};

struct SweepCase {
  int world;
  int zero_stage;
  ChurnCase churn;
};

class ElasticSweep : public ElasticTest,
                     public ::testing::WithParamInterface<SweepCase> {};

TEST_P(ElasticSweep, DeterministicTranscriptAndBitwiseTwin) {
  const SweepCase& p = GetParam();
  if (p.world < p.churn.min_world) {
    GTEST_SKIP() << p.churn.name << " needs at least " << p.churn.min_world << " ranks";
  }
  const fault::ElasticOptions opt =
      small_options(p.world, p.zero_stage, p.churn.scenario, temp_path("sweep"));

  fault::FaultInjector::instance().disable();
  const fault::ElasticResult a = fault::run_elastic(opt);
  fault::FaultInjector::instance().disable();
  const fault::ElasticResult b = fault::run_elastic(opt);

  ASSERT_TRUE(a.survived(opt.steps)) << "first run died";
  ASSERT_TRUE(b.survived(opt.steps)) << "second run died";

  // (a) identical seeds => identical recovery transcript, twice.
  EXPECT_EQ(a.transcript, b.transcript);
  EXPECT_EQ(a.final_epoch, b.final_epoch);
  EXPECT_EQ(a.final_world, b.final_world);
  ASSERT_EQ(a.losses.size(), b.losses.size());
  for (std::size_t i = 0; i < a.losses.size(); ++i) {
    EXPECT_EQ(a.losses[i], b.losses[i]) << "loss diverged at step " << i;
  }

  // (b) post-reshard losses bitwise-equal to a fresh run at the reduced
  // world restored from the same step (the twin inside run_elastic).
  EXPECT_EQ(a.resharded(), p.churn.expects_reshard) << a.report(opt.steps);
  EXPECT_TRUE(a.twin_bitwise_match) << a.report(opt.steps);
  EXPECT_TRUE(b.twin_bitwise_match);
  if (p.churn.expects_reshard) {
    EXPECT_LT(a.reshard_world, p.world + 1);
    EXPECT_GE(a.final_epoch, 2);
  }
}

std::vector<SweepCase> sweep_cases() {
  const ChurnCase churns[] = {
      {"lose1", "ranklost:step=1,rank=1", 2, true},
      {"lose2", "ranklost:step=1,rank=1;ranklost:step=2,rank=0", 4, true},
      {"lose_rejoin", "ranklost:step=1,rank=1;rejoin:step=3", 2, true},
      {"netpart_heal", "netpart:step=1", 2, false},
  };
  std::vector<SweepCase> cases;
  for (int world : {2, 4, 8}) {
    for (int stage : {0, 3}) {
      for (const ChurnCase& churn : churns) cases.push_back({world, stage, churn});
    }
  }
  return cases;
}

std::string sweep_name(const ::testing::TestParamInfo<SweepCase>& info) {
  return "w" + std::to_string(info.param.world) + "_z" +
         std::to_string(info.param.zero_stage) + "_" + info.param.churn.name;
}

INSTANTIATE_TEST_SUITE_P(Churn, ElasticSweep, ::testing::ValuesIn(sweep_cases()),
                         sweep_name);

// ---- targeted behaviors ----------------------------------------------------

TEST_F(ElasticTest, RankLossPicksNearestValidWorld) {
  // 8 heads at world 4: losing one rank leaves 3 survivors, but 8 % 3 != 0,
  // so the nearest valid world is 2 — one healthy rank idles as a spare.
  fault::ElasticOptions opt =
      small_options(4, 3, "ranklost:step=1,rank=1", temp_path("nearest"));
  const fault::ElasticResult res = fault::run_elastic(opt);
  ASSERT_TRUE(res.survived(opt.steps));
  EXPECT_EQ(res.reshard_world, 2);
  EXPECT_EQ(res.final_world, 2);
  EXPECT_TRUE(res.twin_bitwise_match) << res.report(opt.steps);
}

TEST_F(ElasticTest, RejoinGrowsTheWorldBack) {
  fault::ElasticOptions opt = small_options(
      4, 3, "ranklost:step=1,rank=0;rejoin:step=3,ranks=1", temp_path("rejoin"));
  opt.steps = 5;
  const fault::ElasticResult res = fault::run_elastic(opt);
  ASSERT_TRUE(res.survived(opt.steps));
  EXPECT_EQ(res.final_world, 4);
  // Epochs: loss, then rejoin.
  EXPECT_EQ(res.final_epoch, 3);
  EXPECT_EQ(res.reshard_step, 3);  // the growth reshard is the last one
  EXPECT_TRUE(res.twin_bitwise_match) << res.report(opt.steps);
}

TEST_F(ElasticTest, PartitionHealsWithoutMembershipChange) {
  fault::ElasticOptions opt = small_options(4, 3, "netpart:step=1", temp_path("netpart"));
  const fault::ElasticResult res = fault::run_elastic(opt);
  ASSERT_TRUE(res.survived(opt.steps));
  EXPECT_FALSE(res.resharded());
  EXPECT_EQ(res.final_world, 4);
  EXPECT_EQ(res.final_epoch, 2);  // the partition still bumps the epoch
  // Fault-free clean twin matches every step bitwise: the partition replay
  // was invisible to training math.
  EXPECT_TRUE(res.twin_bitwise_match) << res.report(opt.steps);
}

TEST_F(ElasticTest, SlowRankIsToleratedNotEvicted) {
  fault::ElasticOptions opt =
      small_options(4, 0, "rankslow:step=1,rank=1", temp_path("slow"));
  const fault::ElasticResult res = fault::run_elastic(opt);
  ASSERT_TRUE(res.survived(opt.steps));
  EXPECT_FALSE(res.resharded());
  EXPECT_EQ(res.final_epoch, 1);  // no membership event
  bool noted_slow = false;
  for (const std::string& line : res.transcript) {
    noted_slow = noted_slow || line.find("tolerated") != std::string::npos;
  }
  EXPECT_TRUE(noted_slow) << res.report(opt.steps);
  EXPECT_TRUE(res.twin_bitwise_match);
}

TEST_F(ElasticTest, BadRejoinClauseThrows) {
  fault::ElasticOptions opt = small_options(2, 0, "rejoin:ranks=1", temp_path("bad"));
  EXPECT_THROW(fault::run_elastic(opt), FpdtError);
  opt.scenario = "rejoin:step=2,bogus=1";
  EXPECT_THROW(fault::run_elastic(opt), FpdtError);
}

TEST_F(ElasticTest, RecoveryTimeIsAccounted) {
  fault::ElasticOptions opt =
      small_options(4, 3, "ranklost:step=1,rank=1", temp_path("recovery"));
  const fault::ElasticResult res = fault::run_elastic(opt);
  ASSERT_TRUE(res.survived(opt.steps));
  EXPECT_GT(res.recovery_wall_s, 0.0);
  EXPECT_LT(res.recovery_wall_s, 60.0);
}

// ---- shard re-partitioning (zero/reshard.h) --------------------------------

nn::ShardedAdamState make_state(const zero::ParamElems& numels, int world,
                                float scale) {
  nn::ShardedAdamState state;
  for (const auto& [name, numel] : numels) {
    const std::int64_t s = (numel + world - 1) / world;
    std::vector<nn::Adam::Moments> mom(static_cast<std::size_t>(world));
    std::int64_t flat = 0;
    for (int r = 0; r < world; ++r) {
      mom[static_cast<std::size_t>(r)].m = Tensor::zeros({s});
      mom[static_cast<std::size_t>(r)].v = Tensor::zeros({s});
      for (std::int64_t i = 0; i < s && flat < numel; ++i, ++flat) {
        mom[static_cast<std::size_t>(r)].m.data()[i] = scale * static_cast<float>(flat);
        mom[static_cast<std::size_t>(r)].v.data()[i] =
            scale * 0.5f * static_cast<float>(flat + 1);
      }
    }
    state.emplace(name, std::move(mom));
  }
  return state;
}

TEST(ReshardTest, FlatHashesSurviveAnyWorldChange) {
  const zero::ParamElems numels{{"a", 13}, {"b", 8}, {"c", 1}};
  const nn::ShardedAdamState at4 = make_state(numels, 4, 1.25f);
  const zero::ShardManifest m4 = zero::manifest_of(at4, numels, 4);
  for (int to : {1, 2, 3, 4, 8}) {
    const nn::ShardedAdamState out = zero::reshard_adam_state(at4, numels, 4, to);
    const zero::ShardManifest mo = zero::manifest_of(out, numels, to);
    EXPECT_EQ(m4.digest(), mo.digest()) << "to world " << to;
    ASSERT_EQ(mo.entries.size(), m4.entries.size());
    for (std::size_t i = 0; i < mo.entries.size(); ++i) {
      EXPECT_EQ(mo.entries[i].m_hash, m4.entries[i].m_hash);
      EXPECT_EQ(mo.entries[i].v_hash, m4.entries[i].v_hash);
    }
  }
}

TEST(ReshardTest, RoundTripIsIdentity) {
  const zero::ParamElems numels{{"w", 10}};
  const nn::ShardedAdamState orig = make_state(numels, 2, 2.0f);
  const nn::ShardedAdamState there = zero::reshard_adam_state(orig, numels, 2, 3);
  const nn::ShardedAdamState back = zero::reshard_adam_state(there, numels, 3, 2);
  for (const auto& [name, mom] : orig) {
    const auto& rt = back.at(name);
    ASSERT_EQ(rt.size(), mom.size());
    for (std::size_t r = 0; r < mom.size(); ++r) {
      ASSERT_EQ(rt[r].m.numel(), mom[r].m.numel());
      EXPECT_EQ(0, std::memcmp(rt[r].m.data(), mom[r].m.data(),
                               static_cast<std::size_t>(mom[r].m.numel()) * sizeof(float)));
      EXPECT_EQ(0, std::memcmp(rt[r].v.data(), mom[r].v.data(),
                               static_cast<std::size_t>(mom[r].v.numel()) * sizeof(float)));
    }
  }
}

TEST(ReshardTest, NonZeroPaddingIsRejected) {
  const zero::ParamElems numels{{"w", 5}};
  nn::ShardedAdamState state = make_state(numels, 2, 1.0f);
  // 5 elements over 2 shards of 3: the last shard's final slot is padding.
  state.at("w")[1].m.data()[2] = 7.0f;
  EXPECT_THROW(zero::manifest_of(state, numels, 2), FpdtError);
  EXPECT_THROW(zero::reshard_adam_state(state, numels, 2, 1), FpdtError);
}

TEST(ReshardTest, GeometryMismatchIsRejected) {
  const zero::ParamElems numels{{"w", 6}};
  const nn::ShardedAdamState state = make_state(numels, 2, 1.0f);
  // Wrong world: shard count disagrees.
  EXPECT_THROW(zero::manifest_of(state, numels, 3), FpdtError);
  // Missing numel entry.
  EXPECT_THROW(zero::manifest_of(state, zero::ParamElems{}, 2), FpdtError);
}

TEST(ReshardTest, DigestIsWorldInvariantButContentSensitive) {
  const zero::ParamElems numels{{"w", 9}};
  const nn::ShardedAdamState a = make_state(numels, 3, 1.0f);
  const nn::ShardedAdamState b = make_state(numels, 3, 1.5f);
  EXPECT_NE(zero::manifest_of(a, numels, 3).digest(),
            zero::manifest_of(b, numels, 3).digest());
}

}  // namespace
}  // namespace fpdt
