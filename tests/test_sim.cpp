// Simulator tests: pipeline scheduling semantics, cost-model physics
// (monotonicity, crossovers the paper's Figs. 8–10 rely on), and timeline
// properties (double buffering helps, offload overhead is bounded).
#include <gtest/gtest.h>

#include "nn/model_config.h"
#include "sim/cost_model.h"
#include "sim/hardware.h"
#include "sim/pipeline_sim.h"
#include "common/check.h"
#include "sim/timeline.h"

namespace fpdt {
namespace {

using sim::CostModel;
using sim::FetchStrategy;
using sim::HardwareSpec;
using sim::PipelineSim;

TEST(PipelineSimTest, SerializesTasksOnOneResource) {
  PipelineSim ps;
  const int r = ps.add_resource("comp");
  ps.add_task(r, 1.0, {});
  ps.add_task(r, 2.0, {});
  EXPECT_DOUBLE_EQ(ps.run(), 3.0);
  EXPECT_DOUBLE_EQ(ps.task(1).start, 1.0);
}

TEST(PipelineSimTest, IndependentResourcesOverlap) {
  PipelineSim ps;
  const int a = ps.add_resource("a");
  const int b = ps.add_resource("b");
  ps.add_task(a, 3.0, {});
  ps.add_task(b, 2.0, {});
  EXPECT_DOUBLE_EQ(ps.run(), 3.0);
}

TEST(PipelineSimTest, DependenciesStall) {
  PipelineSim ps;
  const int a = ps.add_resource("a");
  const int b = ps.add_resource("b");
  const int t0 = ps.add_task(a, 3.0, {});
  ps.add_task(b, 1.0, {t0});
  EXPECT_DOUBLE_EQ(ps.run(), 4.0);
}

TEST(PipelineSimTest, PipelineOverlapsStages) {
  // Classic 2-stage pipeline: 4 items, fetch 1s + compute 1s each.
  // Serial = 8s; pipelined = 5s.
  PipelineSim ps;
  const int fetch = ps.add_resource("fetch");
  const int comp = ps.add_resource("comp");
  int prev = -1;
  for (int i = 0; i < 4; ++i) {
    const int f = ps.add_task(fetch, 1.0, {});
    std::vector<int> deps = {f};
    if (prev >= 0) deps.push_back(prev);
    prev = ps.add_task(comp, 1.0, deps);
  }
  EXPECT_DOUBLE_EQ(ps.run(), 5.0);
}

TEST(PipelineSimTest, BusyTimeAndTrace) {
  PipelineSim ps;
  const int a = ps.add_resource("a");
  ps.add_task(a, 1.5, {}, "one");
  ps.add_task(a, 0.5, {}, "two");
  ps.run();
  EXPECT_DOUBLE_EQ(ps.resource_busy(a), 2.0);
  EXPECT_NE(ps.trace().find("one"), std::string::npos);
}

TEST(PipelineSimTest, InvalidInputsThrow) {
  PipelineSim ps;
  const int a = ps.add_resource("a");
  EXPECT_THROW(ps.add_task(7, 1.0, {}), FpdtError);
  EXPECT_THROW(ps.add_task(a, -1.0, {}), FpdtError);
  const int t = ps.add_task(a, 1.0, {});
  EXPECT_THROW(ps.add_task(a, 1.0, {t + 5}), FpdtError);  // forward dep
}

// ---- Cost model ------------------------------------------------------------

TEST(CostModelTest, GemmTimeScalesWithFlops) {
  CostModel cm(sim::a100_80g_node(), 4);
  EXPECT_GT(cm.gemm_time(1e12), cm.gemm_time(1e9));
  EXPECT_GT(cm.attn_time(1e12), cm.gemm_time(1e12));  // lower efficiency
}

TEST(CostModelTest, All2AllSingleRankFree) {
  CostModel cm(sim::a100_80g_node(), 1);
  EXPECT_DOUBLE_EQ(cm.all2all_time(1 << 20), 0.0);
}

TEST(CostModelTest, MultiNodeCommSlower) {
  const HardwareSpec hw = sim::a100_80g_node();
  CostModel intra(hw, 4);
  CostModel inter(hw, 8);
  const std::int64_t bytes = 256LL << 20;
  EXPECT_GT(inter.all2all_time(bytes), intra.all2all_time(bytes));
  EXPECT_GT(inter.allgather_time(bytes), intra.allgather_time(bytes));
}

TEST(CostModelTest, FetchStrategyBehaviour) {
  // §4.2: the multi-GPU H2D strategy "performs worse at smaller data sizes,
  // due to the overhead in lane contention", and past ~32-64K tokens both
  // strategies are overtaken by attention compute, so their difference
  // becomes negligible *relative to the step time*.
  const nn::ModelConfig cfg = nn::gpt_2p7b();
  CostModel cm(sim::a100_80g_node(), 4);
  const std::int64_t small = 256LL << 10;
  EXPECT_GT(cm.fetch_time(small, FetchStrategy::kPerGpu),
            cm.fetch_time(small, FetchStrategy::kPerGpuExclusive));
  EXPECT_GT(cm.fetch_time(small, FetchStrategy::kOneGpuScatter),
            cm.fetch_time(small, FetchStrategy::kPerGpuExclusive));
  const std::int64_t chunk = 128 * 1024;  // tokens, past the crossover
  const std::int64_t bytes = 2 * chunk * cfg.d_model / 4 * 2;
  const double attn =
      cm.attn_time(CostModel::attn_pair_flops(chunk, chunk, cfg.n_head / 4, cfg.head_dim()));
  EXPECT_GT(attn, cm.fetch_time(bytes, FetchStrategy::kPerGpu));
  EXPECT_GT(attn, cm.fetch_time(bytes, FetchStrategy::kOneGpuScatter));
}

TEST(CostModelTest, AttentionOvertakesFetchAtLargeChunks) {
  // The Fig. 10 crossover: fetch latency dominates small chunks (GPU
  // starving, Fig. 8); attention compute dominates large ones (Fig. 9).
  const nn::ModelConfig cfg = nn::gpt_2p7b();
  CostModel cm(sim::a100_80g_node(), 4);
  auto attn_t = [&](std::int64_t c) {
    return cm.attn_time(CostModel::attn_pair_flops(c, c, cfg.n_head / 4, cfg.head_dim()));
  };
  auto fetch_t = [&](std::int64_t c) {
    return cm.h2d_time(2 * c * cfg.d_model / 4 * 2);
  };
  EXPECT_LT(attn_t(2048), fetch_t(2048));       // starving regime
  EXPECT_GT(attn_t(256 * 1024), fetch_t(256 * 1024));  // compute-bound regime
}

// ---- Timelines --------------------------------------------------------------

TEST(TimelineTest, DoubleBufferBeatsStrict) {
  const nn::ModelConfig cfg = nn::gpt_2p7b();
  CostModel cm(sim::a100_80g_node(), 4);
  const std::int64_t s_local = 64 * 1024;
  sim::LayerTiming strict = sim::fpdt_layer_timing(cfg, cm, s_local, 8, true, false);
  sim::LayerTiming dbuf = sim::fpdt_layer_timing(cfg, cm, s_local, 8, true, true);
  EXPECT_LE(dbuf.total(), strict.total());
}

TEST(TimelineTest, OffloadOverheadBoundedAtSweetSpot) {
  // At the 64K chunk sweet spot, offloading costs almost nothing versus
  // pure chunking (the paper's "comparable MFU as the non-offloading
  // counterparts").
  const nn::ModelConfig cfg = nn::gpt_2p7b();
  CostModel cm(sim::a100_80g_node(), 4);
  const std::int64_t s_local = 256 * 1024 / 4;
  const std::int64_t u = 256 / 64;  // 64K global chunks
  sim::LayerTiming none = sim::fpdt_layer_timing(cfg, cm, s_local, u, false, false);
  sim::LayerTiming off = sim::fpdt_layer_timing(cfg, cm, s_local, u, true, true);
  EXPECT_LT(off.total(), none.total() * 1.10);
}

TEST(TimelineTest, TinyChunksStarveTheGpu) {
  // Fig. 8: with very small chunks the PCIe stream cannot keep up and the
  // per-token cost rises well above the sweet spot's.
  const nn::ModelConfig cfg = nn::gpt_2p7b();
  CostModel cm(sim::a100_80g_node(), 4);
  const std::int64_t s_local = 256 * 1024 / 4;
  sim::LayerTiming sweet = sim::fpdt_layer_timing(cfg, cm, s_local, 4, true, true);
  sim::LayerTiming tiny = sim::fpdt_layer_timing(cfg, cm, s_local, 64, true, true);
  EXPECT_GT(tiny.total(), sweet.total());
}

TEST(TimelineTest, UlyssesEqualsSingleChunkRecompute) {
  const nn::ModelConfig cfg = nn::llama_8b();
  CostModel cm(sim::a100_80g_node(), 4);
  sim::LayerTiming ul = sim::ulysses_layer_timing(cfg, cm, 32 * 1024);
  sim::LayerTiming fp = sim::fpdt_layer_timing(cfg, cm, 32 * 1024, 1, false, false,
                                               /*cache_fwd_outputs=*/false);
  EXPECT_DOUBLE_EQ(ul.total(), fp.total());
}

TEST(TimelineTest, CacheForwardOutputsFasterThanRecompute) {
  const nn::ModelConfig cfg = nn::llama_8b();
  CostModel cm(sim::a100_80g_node(), 8);
  sim::LayerTiming cached = sim::fpdt_layer_timing(cfg, cm, 64 * 1024, 4, true, true, true);
  sim::LayerTiming recompute =
      sim::fpdt_layer_timing(cfg, cm, 64 * 1024, 4, true, true, false);
  EXPECT_LT(cached.total(), recompute.total());
}

TEST(TimelineTest, MegatronSpCommScalesWithSequence) {
  const nn::ModelConfig cfg = nn::gpt_13b();
  CostModel cm(sim::a100_80g_node(), 8);
  sim::LayerTiming a = sim::megatron_layer_timing(cfg, cm, 8 * 1024, true, true);
  sim::LayerTiming b = sim::megatron_layer_timing(cfg, cm, 16 * 1024, true, true);
  EXPECT_GT(b.comm_busy_s, a.comm_busy_s * 1.5);
}

TEST(TimelineTest, StepEstimateMfuInUnitRange) {
  const nn::ModelConfig cfg = nn::gpt_2p7b();
  CostModel cm(sim::a100_80g_node(), 4);
  sim::LayerTiming layer = sim::fpdt_layer_timing(cfg, cm, 64 * 1024, 4, true, true);
  sim::StepEstimate est = sim::step_estimate(cfg, cm, 256 * 1024, layer);
  EXPECT_GT(est.mfu, 0.05);
  EXPECT_LT(est.mfu, 0.95);
  EXPECT_GT(est.step_s, 0.0);
}

TEST(TimelineTest, RingLayerSlowerThanUlyssesOnCausal) {
  // Ring's causal imbalance leaves its critical path ≥ balanced Ulysses.
  const nn::ModelConfig cfg = nn::gpt_2p7b();
  CostModel cm(sim::a100_80g_node(), 4);
  const std::int64_t s_local = 64 * 1024;
  sim::LayerTiming ring = sim::ring_layer_timing(cfg, cm, s_local);
  sim::LayerTiming ul = sim::ulysses_layer_timing(cfg, cm, s_local);
  EXPECT_GT(ring.total(), ul.total() * 0.9);
}

}  // namespace
}  // namespace fpdt
