// The kernel-backend registry (src/kernels/): selection semantics, the
// three numerics bugfixes this layer landed with, bit-identity of the
// "scalar" reference against the seed loops, and the simd-vs-scalar
// differential property sweep (GQA groupings, odd head dims, tiny and
// tail shapes).
//
// ci/sanitize.sh runs this binary under FPDT_KERNEL_BACKEND=scalar and
// =simd, so active-backend tests exercise whichever backend the lane
// selected, while the explicit BackendScope tests always pin both.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/fpdt_env.h"
#include "kernels/backend.h"
#include "nn/attention.h"
#include "obs/workmeter.h"
#include "tensor/tensor.h"
#include "tests/test_util.h"

namespace fpdt {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

// ---- registry --------------------------------------------------------------

TEST(KernelRegistryTest, ScalarAndSimdRegistered) {
  const std::vector<std::string> names = kernels::available();
  ASSERT_GE(names.size(), 2u);
  EXPECT_EQ(names[0], "scalar");  // registration order: reference first
  EXPECT_NE(std::find(names.begin(), names.end(), "simd"), names.end());
}

TEST(KernelRegistryTest, UnknownBackendThrowsListingKnown) {
  try {
    kernels::backend("does-not-exist");
    FAIL() << "expected FpdtError";
  } catch (const FpdtError& e) {
    EXPECT_NE(std::string(e.what()).find("scalar"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("simd"), std::string::npos);
  }
}

TEST(KernelRegistryTest, BackendScopeRestores) {
  const std::string before = kernels::active_name();
  {
    kernels::BackendScope scope("simd");
    EXPECT_EQ(kernels::active_name(), "simd");
    {
      kernels::BackendScope inner("scalar");
      EXPECT_EQ(kernels::active_name(), "scalar");
    }
    EXPECT_EQ(kernels::active_name(), "simd");
  }
  EXPECT_EQ(kernels::active_name(), before);
}

TEST(KernelRegistryTest, EmptyScopeIsNoOp) {
  const std::string before = kernels::active_name();
  {
    kernels::BackendScope scope("");
    EXPECT_EQ(kernels::active_name(), before);
  }
  EXPECT_EQ(kernels::active_name(), before);
}

TEST(KernelRegistryTest, FpdtEnvAppliesConfigBackend) {
  // FpdtConfig::kernel_backend selects the backend for the env's lifetime
  // (unless FPDT_KERNEL_BACKEND is set, which already decided the process
  // default — in that case the config defers to it by design).
  const std::string before = kernels::active_name();
  const bool env_var_set = std::getenv("FPDT_KERNEL_BACKEND") != nullptr;
  {
    core::FpdtConfig cfg;
    cfg.kernel_backend = "simd";
    core::FpdtEnv env(1, cfg);
    EXPECT_EQ(kernels::active_name(), env_var_set ? before : "simd");
  }
  EXPECT_EQ(kernels::active_name(), before);
}

TEST(KernelRegistryTest, CanonicalIncludesBackend) {
  core::FpdtConfig cfg;
  EXPECT_NE(cfg.canonical().find(";kb=scalar"), std::string::npos) << cfg.canonical();
  cfg.kernel_backend = "simd";
  EXPECT_NE(cfg.canonical().find(";kb=simd"), std::string::npos) << cfg.canonical();
}

// ---- bugfix 1: GEMM zero-times-Inf propagation ----------------------------

// The seed's rank-1 GEMM loops skipped A elements equal to 0.0f, silently
// dropping IEEE non-finite propagation: a 0 in A against an Inf in B must
// produce NaN, not 0.

// Independent triple-loop oracle, no short-circuits of any kind.
Tensor oracle_tn(const Tensor& a, const Tensor& b) {
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) acc += a.at({p, i}) * b.at({p, j});
      c.at({i, j}) = acc;
    }
  }
  return c;
}

TEST(GemmNonFiniteTest, MatmulTnPropagatesZeroTimesInf) {
  // A[1][0] == 0 meets B[1][1] == Inf: column 1 of C row 0 must be NaN.
  Tensor a = Tensor::from_values({2, 2}, {1.0f, 2.0f, 0.0f, 3.0f});  // [k=2, m=2]
  Tensor b = Tensor::from_values({2, 2}, {1.0f, 1.0f, 1.0f, kInf});  // [k=2, n=2]
  const Tensor c = matmul_tn(a, b);
  EXPECT_TRUE(std::isnan(c.at({0, 1}))) << "0*Inf dropped by the seed short-circuit";
  EXPECT_FLOAT_EQ(c.at({0, 0}), 1.0f);
  // Columns whose accumulation never meets the 0*Inf pair stay finite and
  // match the oracle exactly.
  const Tensor ref = oracle_tn(a, b);
  EXPECT_FLOAT_EQ(c.at({1, 0}), ref.at({1, 0}));
}

TEST(GemmNonFiniteTest, MatmulPropagatesZeroTimesInf) {
  // Same latent skip existed in the shared NN GEMM behind matmul().
  Tensor a = Tensor::from_values({2, 2}, {1.0f, 0.0f, 2.0f, 1.0f});
  Tensor b = Tensor::from_values({2, 2}, {1.0f, 1.0f, kInf, 1.0f});
  const Tensor c = matmul(a, b);
  EXPECT_TRUE(std::isnan(c.at({0, 0})));  // 1*1 + 0*Inf
  EXPECT_FLOAT_EQ(c.at({0, 1}), 1.0f);
}

TEST(GemmNonFiniteTest, DifferentialAgainstOracleWithNonFiniteOperands) {
  // Inf/NaN-laced operands: every backend must agree with the triple-loop
  // oracle on *which* entries are NaN / Inf, and match the finite ones.
  Rng rng(99);
  Tensor a = testing::random_tensor({3, 4}, rng);  // [k=3, m=4]
  Tensor b = testing::random_tensor({3, 5}, rng);  // [k=3, n=5]
  a.at({1, 2}) = 0.0f;
  b.at({1, 3}) = kInf;
  b.at({2, 0}) = -kInf;
  a.at({0, 0}) = std::numeric_limits<float>::quiet_NaN();
  const Tensor ref = oracle_tn(a, b);
  for (const char* name : {"scalar", "simd"}) {
    kernels::BackendScope scope(name);
    const Tensor c = matmul_tn(a, b);
    for (std::int64_t i = 0; i < 4; ++i) {
      for (std::int64_t j = 0; j < 5; ++j) {
        const float got = c.at({i, j});
        const float want = ref.at({i, j});
        if (std::isnan(want)) {
          EXPECT_TRUE(std::isnan(got)) << name << " at " << i << "," << j;
        } else if (std::isinf(want)) {
          EXPECT_EQ(got, want) << name << " at " << i << "," << j;
        } else {
          EXPECT_NEAR(got, want, 1e-4) << name << " at " << i << "," << j;
        }
      }
    }
  }
}

// ---- bugfix 2: fully causally-masked rows ---------------------------------

TEST(AttentionMaskingTest, FullyMaskedChunkYieldsIdentityElement) {
  // A KV chunk entirely in the query's causal future is legitimate under
  // chunked prefill. The seed hard-aborted; now: zero rows, lse = -inf.
  Rng rng(7);
  Tensor q = testing::random_tensor({2, 2, 4}, rng);
  Tensor k = testing::random_tensor({3, 2, 4}, rng);
  Tensor v = testing::random_tensor({3, 2, 4}, rng);
  // q positions 0..1, kv positions 100..102: all masked.
  const nn::AttentionOutput out = nn::reference_attention_forward(q, k, v, true, 0, 100);
  for (std::int64_t i = 0; i < 2; ++i) {
    for (std::int64_t h = 0; h < 2; ++h) {
      EXPECT_EQ(out.lse.at({i, h}), -kInf);
      for (std::int64_t p = 0; p < 4; ++p) EXPECT_EQ(out.out.at({i, h, p}), 0.0f);
    }
  }
}

TEST(AttentionMaskingTest, ChunkedPrefillMatchesMonolithic) {
  // Fold KV in chunks where later chunks are fully masked for early query
  // rows; the accumulated online state must finalize to the monolithic
  // answer. Odd head dim (5) and a tail chunk (7 = 3 + 3 + 1) on purpose.
  Rng rng(21);
  const std::int64_t sq = 7, h = 4, hk = 2, d = 5;
  Tensor q = testing::random_tensor({sq, h, d}, rng);
  Tensor k = testing::random_tensor({sq, hk, d}, rng);
  Tensor v = testing::random_tensor({sq, hk, d}, rng);
  const nn::AttentionOutput mono = nn::reference_attention_forward(q, k, v, true, 0, 0);
  for (const char* name : {"scalar", "simd"}) {
    kernels::BackendScope scope(name);
    nn::OnlineAttnState st = nn::OnlineAttnState::create(sq, h, d);
    for (std::int64_t c0 : {std::int64_t{0}, std::int64_t{3}, std::int64_t{6}}) {
      const std::int64_t c1 = std::min<std::int64_t>(c0 + 3, sq);
      nn::online_attn_step(st, q, k.slice0(c0, c1), v.slice0(c0, c1), true, 0, c0);
    }
    const nn::AttentionOutput chunked = nn::online_attn_finalize(st);
    EXPECT_LT(max_abs_diff(chunked.out, mono.out), 1e-4) << name;
    EXPECT_LT(max_abs_diff(chunked.lse, mono.lse), 1e-4) << name;
  }
}

TEST(AttentionMaskingTest, StateWithOnlyMaskedStepsFinalizesToIdentity) {
  Rng rng(3);
  Tensor q = testing::random_tensor({2, 1, 4}, rng);
  Tensor k = testing::random_tensor({2, 1, 4}, rng);
  Tensor v = testing::random_tensor({2, 1, 4}, rng);
  nn::OnlineAttnState st = nn::OnlineAttnState::create(2, 1, 4);
  nn::online_attn_step(st, q, k, v, true, 0, 50);  // entirely future chunk
  const nn::AttentionOutput out = nn::online_attn_finalize(st);
  for (std::int64_t i = 0; i < 2; ++i) {
    EXPECT_EQ(out.lse.at({i, 0}), -kInf);
    for (std::int64_t p = 0; p < 4; ++p) EXPECT_EQ(out.out.at({i, 0, p}), 0.0f);
  }
}

// ---- bugfix 3: mask sentinel vs genuine -inf logit ------------------------

TEST(AttentionMaskingTest, GenuineNegInfLogitIsNotTreatedAsMasked) {
  // Overflowing q·k produces a *real* -inf logit. The seed compared scores
  // against the -inf mask sentinel, silently treating such a row as masked;
  // with masking tracked as an index bound, an all--inf row is 0/0 and must
  // propagate NaN instead of fabricating a uniform or zero distribution.
  const float big = 3e38f;
  Tensor q = Tensor::from_values({1, 1, 1}, {big});
  Tensor k = Tensor::from_values({2, 1, 1}, {-big, -big});  // both dots overflow to -inf
  Tensor v = Tensor::from_values({2, 1, 1}, {1.0f, 2.0f});
  const nn::AttentionOutput out = nn::reference_attention_forward(q, k, v, false, 0, 0);
  EXPECT_TRUE(std::isnan(out.out.at({0, 0, 0})));
  EXPECT_TRUE(std::isnan(out.lse.at({0, 0})));
}

TEST(AttentionMaskingTest, GenuineNegInfLogitPropagatesThroughOnlinePath) {
  const float big = 3e38f;
  Tensor q = Tensor::from_values({1, 1, 1}, {big});
  Tensor k = Tensor::from_values({1, 1, 1}, {-big});
  Tensor v = Tensor::from_values({1, 1, 1}, {1.0f});
  nn::OnlineAttnState st = nn::OnlineAttnState::create(1, 1, 1);
  nn::online_attn_step(st, q, k, v, false, 0, 0);
  const nn::AttentionOutput out = nn::online_attn_finalize(st);
  EXPECT_TRUE(std::isnan(out.out.at({0, 0, 0})));
}

TEST(AttentionMaskingTest, FiniteRowsUnaffectedByNegInfNeighbor) {
  // One genuine -inf logit among finite ones carries zero weight — exactly
  // what the seed's sentinel skip computed — so mixed rows stay identical.
  const float big = 3e38f;
  Rng rng(11);
  Tensor q = Tensor::from_values({1, 1, 2}, {1.0f, big});
  Tensor k = Tensor::from_values({3, 1, 2}, {0.5f, 0.0f, -0.25f, 0.0f, 0.0f, -big});
  Tensor v = testing::random_tensor({3, 1, 2}, rng);
  const nn::AttentionOutput out = nn::reference_attention_forward(q, k, v, false, 0, 0);
  // Key 2's logit is -inf; the row must equal attention over keys 0..1 only.
  const nn::AttentionOutput ref =
      nn::reference_attention_forward(q, k.slice0(0, 2), v.slice0(0, 2), false, 0, 0);
  EXPECT_LT(max_abs_diff(out.out, ref.out), 1e-6);
  EXPECT_LT(max_abs_diff(out.lse, ref.lse), 1e-6);
}

// ---- scalar bit-identity with the seed loops ------------------------------

// The seed's gemm loops, verbatim (including the av == 0.0f short-circuit):
// on data with no exact zeros the backend must reproduce them bit-for-bit.
Tensor seed_gemm_nn(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  float* c = out.data();
  const float* ad = a.data();
  const float* bd = b.data();
  for (std::int64_t i = 0; i < m; ++i) {
    float* c_row = c + i * n;
    const float* a_row = ad + i * k;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = a_row[p];
      if (av == 0.0f) continue;
      const float* b_row = bd + p * n;
      for (std::int64_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
    }
  }
  return out;
}

TEST(ScalarBitIdentityTest, GemmNnMatchesSeedBitwise) {
  Rng rng(5);
  const Tensor a = testing::random_tensor({13, 37}, rng);
  const Tensor b = testing::random_tensor({37, 19}, rng);
  kernels::BackendScope scope("scalar");
  const Tensor got = matmul(a, b);
  const Tensor want = seed_gemm_nn(a, b);
  EXPECT_EQ(max_abs_diff(got, want), 0.0) << "scalar backend drifted from the seed loop";
}

TEST(ScalarBitIdentityTest, MatmulNtMatchesDotOracleBitwise) {
  // The seed matmul_nt is a plain dot-product loop; same accumulation order
  // must survive the refactor exactly.
  Rng rng(6);
  const Tensor a = testing::random_tensor({9, 21}, rng);
  const Tensor b = testing::random_tensor({11, 21}, rng);
  kernels::BackendScope scope("scalar");
  const Tensor got = matmul_nt(a, b);
  for (std::int64_t i = 0; i < 9; ++i) {
    for (std::int64_t j = 0; j < 11; ++j) {
      float acc = 0.0f;
      for (std::int64_t p = 0; p < 21; ++p) acc += a.at({i, p}) * b.at({j, p});
      EXPECT_EQ(got.at({i, j}), acc);
    }
  }
}

TEST(ScalarBitIdentityTest, SoftmaxMatchesSeedBitwise) {
  Rng rng(8);
  Tensor x = testing::random_tensor({6, 33}, rng);
  Tensor seed = x.clone();
  // Seed loop, verbatim.
  for (std::int64_t r = 0; r < 6; ++r) {
    float* row = seed.data() + r * 33;
    float m = row[0];
    for (std::int64_t j = 1; j < 33; ++j) m = std::max(m, row[j]);
    float z = 0.0f;
    for (std::int64_t j = 0; j < 33; ++j) {
      row[j] = std::exp(row[j] - m);
      z += row[j];
    }
    const float inv = 1.0f / z;
    for (std::int64_t j = 0; j < 33; ++j) row[j] *= inv;
  }
  kernels::BackendScope scope("scalar");
  softmax_rows_(x);
  EXPECT_EQ(max_abs_diff(x, seed), 0.0);
}

// ---- simd vs scalar differential sweep ------------------------------------

struct AttnShape {
  std::int64_t sq, sk, h, hk, d;
};

// Tolerance scaled by the result's magnitude: vector accumulation
// reassociates float sums, so simd is close to scalar, not equal to it.
void expect_close(const Tensor& scalar, const Tensor& simd, double rel, const char* what) {
  double scale = 1.0;
  for (std::int64_t i = 0; i < scalar.numel(); ++i) {
    scale = std::max(scale, static_cast<double>(std::abs(scalar.data()[i])));
  }
  EXPECT_LT(max_abs_diff(scalar, simd), rel * scale) << what;
}

TEST(SimdDifferentialTest, GemmSweep) {
  // Tiny shapes (below every block size), odd primes (tails everywhere),
  // and sizes straddling the 4x16 micro-kernel and the k-block boundary.
  const std::vector<std::vector<std::int64_t>> shapes = {
      {1, 1, 1}, {2, 3, 5}, {4, 16, 16}, {5, 17, 33}, {13, 7, 19},
      {32, 64, 48}, {3, 515, 19},  // k > the 512 k-block: exercises blocking
  };
  Rng rng(42);
  for (const auto& s : shapes) {
    const std::int64_t m = s[0], k = s[1], n = s[2];
    const Tensor a = testing::random_tensor({m, k}, rng);
    const Tensor b = testing::random_tensor({k, n}, rng);
    const Tensor bt = testing::random_tensor({n, k}, rng);
    const Tensor at = testing::random_tensor({k, m}, rng);
    Tensor r_nn, r_nt, r_tn;
    {
      kernels::BackendScope scope("scalar");
      r_nn = matmul(a, b);
      r_nt = matmul_nt(a, bt);
      r_tn = matmul_tn(at, b);
    }
    kernels::BackendScope scope("simd");
    expect_close(r_nn, matmul(a, b), 1e-4, "nn");
    expect_close(r_nt, matmul_nt(a, bt), 1e-4, "nt");
    expect_close(r_tn, matmul_tn(at, b), 1e-4, "tn");
  }
}

TEST(SimdDifferentialTest, AttentionSweep) {
  // GQA groupings (group = 1, 2, 4, 8), odd head dims (d not a multiple of
  // the 8-lane width), tiny shapes, and sk tail chunks.
  const std::vector<AttnShape> shapes = {
      {1, 1, 1, 1, 1},   {4, 4, 8, 8, 16},  {4, 4, 8, 4, 16}, {4, 4, 8, 2, 7},
      {4, 4, 8, 1, 13},  {7, 17, 4, 2, 5},  {3, 33, 2, 1, 9}, {16, 16, 2, 2, 64},
  };
  Rng rng(77);
  for (const AttnShape& s : shapes) {
    const Tensor q = testing::random_tensor({s.sq, s.h, s.d}, rng);
    const Tensor k = testing::random_tensor({s.sk, s.hk, s.d}, rng);
    const Tensor v = testing::random_tensor({s.sk, s.hk, s.d}, rng);
    const Tensor dout = testing::random_tensor({s.sq, s.h, s.d}, rng);
    nn::AttentionOutput fwd_scalar;
    nn::AttentionGrads bwd_scalar;
    {
      kernels::BackendScope scope("scalar");
      fwd_scalar = nn::reference_attention_forward(q, k, v, true, 3, 0);
      bwd_scalar =
          nn::reference_attention_backward(dout, q, k, v, fwd_scalar.out, true, 3, 0);
    }
    kernels::BackendScope scope("simd");
    const nn::AttentionOutput fwd = nn::reference_attention_forward(q, k, v, true, 3, 0);
    expect_close(fwd_scalar.out, fwd.out, 1e-4, "attn out");
    expect_close(fwd_scalar.lse, fwd.lse, 1e-4, "attn lse");
    const nn::AttentionGrads bwd =
        nn::reference_attention_backward(dout, q, k, v, fwd.out, true, 3, 0);
    expect_close(bwd_scalar.dq, bwd.dq, 5e-4, "dq");
    expect_close(bwd_scalar.dk, bwd.dk, 5e-4, "dk");
    expect_close(bwd_scalar.dv, bwd.dv, 5e-4, "dv");
  }
}

TEST(SimdDifferentialTest, OnlineChunkedTailChunks) {
  // Chunked online softmax with a ragged tail (sk = 3 + 3 + 1), GQA, odd d.
  Rng rng(17);
  const std::int64_t sq = 5, sk = 7, h = 4, hk = 2, d = 11;
  const Tensor q = testing::random_tensor({sq, h, d}, rng);
  const Tensor k = testing::random_tensor({sk, hk, d}, rng);
  const Tensor v = testing::random_tensor({sk, hk, d}, rng);
  nn::AttentionOutput scalar_out;
  {
    kernels::BackendScope scope("scalar");
    nn::OnlineAttnState st = nn::OnlineAttnState::create(sq, h, d);
    for (std::int64_t c0 = 0; c0 < sk; c0 += 3) {
      const std::int64_t c1 = std::min<std::int64_t>(c0 + 3, sk);
      nn::online_attn_step(st, q, k.slice0(c0, c1), v.slice0(c0, c1), true, 1, c0);
    }
    scalar_out = nn::online_attn_finalize(st);
  }
  kernels::BackendScope scope("simd");
  nn::OnlineAttnState st = nn::OnlineAttnState::create(sq, h, d);
  for (std::int64_t c0 = 0; c0 < sk; c0 += 3) {
    const std::int64_t c1 = std::min<std::int64_t>(c0 + 3, sk);
    nn::online_attn_step(st, q, k.slice0(c0, c1), v.slice0(c0, c1), true, 1, c0);
  }
  const nn::AttentionOutput simd_out = nn::online_attn_finalize(st);
  expect_close(scalar_out.out, simd_out.out, 1e-4, "chunked out");
  expect_close(scalar_out.lse, simd_out.lse, 1e-4, "chunked lse");
}

TEST(SimdDifferentialTest, SoftmaxRows) {
  Rng rng(31);
  for (std::int64_t cols : {std::int64_t{1}, std::int64_t{7}, std::int64_t{8},
                            std::int64_t{9}, std::int64_t{65}}) {
    Tensor a = testing::random_tensor({4, cols}, rng);
    Tensor b = a.clone();
    {
      kernels::BackendScope scope("scalar");
      softmax_rows_(a);
    }
    kernels::BackendScope scope("simd");
    softmax_rows_(b);
    expect_close(a, b, 1e-5, "softmax");
  }
}

TEST(SimdDifferentialTest, ActivationAndNormSweep) {
  // The pointwise activations and both norms run their transcendentals
  // through the simd backend's polynomial vector exp; pin them to the
  // scalar reference across vector-tail sizes and the saturating ends
  // (x = ±30 drives tanh/sigmoid to exactly ±1 / {0,1} on both paths).
  const kernels::Backend& ref = kernels::backend("scalar");
  const kernels::Backend& simd = kernels::backend("simd");
  Rng rng(77);
  const std::int64_t rows = 3;
  for (std::int64_t n : {std::int64_t{1}, std::int64_t{7}, std::int64_t{8}, std::int64_t{9},
                         std::int64_t{33}, std::int64_t{67}}) {
    Tensor x = testing::random_tensor({rows, n}, rng, 4.0);
    x.data()[0] = 30.0f;
    if (x.numel() > 1) x.data()[1] = -30.0f;
    const Tensor gamma = testing::random_tensor({n}, rng);
    const Tensor beta = testing::random_tensor({n}, rng);
    const Tensor dy = testing::random_tensor({rows, n}, rng);
    const std::int64_t numel = rows * n;

    Tensor y_ref = Tensor::full({rows, n}, 0.0f);
    Tensor y_simd = Tensor::full({rows, n}, 0.0f);
    ref.gelu_forward(x.data(), y_ref.data(), numel);
    simd.gelu_forward(x.data(), y_simd.data(), numel);
    expect_close(y_ref, y_simd, 1e-5, "gelu fwd");
    Tensor dx_ref = dy.clone();
    Tensor dx_simd = dy.clone();
    ref.gelu_backward_mul(x.data(), dx_ref.data(), numel);
    simd.gelu_backward_mul(x.data(), dx_simd.data(), numel);
    expect_close(dx_ref, dx_simd, 1e-5, "gelu bwd");

    ref.silu_forward(x.data(), y_ref.data(), numel);
    simd.silu_forward(x.data(), y_simd.data(), numel);
    expect_close(y_ref, y_simd, 1e-5, "silu fwd");
    dx_ref = dy.clone();
    dx_simd = dy.clone();
    ref.silu_backward_mul(x.data(), dx_ref.data(), numel);
    simd.silu_backward_mul(x.data(), dx_simd.data(), numel);
    expect_close(dx_ref, dx_simd, 1e-5, "silu bwd");

    // LayerNorm: each backend saves and consumes its own mean/rstd, the way
    // the nn layer uses it.
    Tensor mean_ref = Tensor::full({rows}, 0.0f), rstd_ref = Tensor::full({rows}, 0.0f);
    Tensor mean_simd = Tensor::full({rows}, 0.0f), rstd_simd = Tensor::full({rows}, 0.0f);
    ref.layernorm_forward(x.data(), gamma.data(), beta.data(), y_ref.data(), mean_ref.data(),
                          rstd_ref.data(), rows, n, 1e-5f);
    simd.layernorm_forward(x.data(), gamma.data(), beta.data(), y_simd.data(), mean_simd.data(),
                           rstd_simd.data(), rows, n, 1e-5f);
    expect_close(mean_ref, mean_simd, 1e-4, "ln mean");
    expect_close(rstd_ref, rstd_simd, 1e-4, "ln rstd");
    expect_close(y_ref, y_simd, 1e-4, "ln fwd");
    dx_ref = Tensor::full({rows, n}, 0.0f);
    dx_simd = Tensor::full({rows, n}, 0.0f);
    Tensor dg_ref = Tensor::full({n}, 0.0f), db_ref = Tensor::full({n}, 0.0f);
    Tensor dg_simd = Tensor::full({n}, 0.0f), db_simd = Tensor::full({n}, 0.0f);
    ref.layernorm_backward(x.data(), dy.data(), gamma.data(), mean_ref.data(), rstd_ref.data(),
                           dx_ref.data(), dg_ref.data(), db_ref.data(), rows, n);
    simd.layernorm_backward(x.data(), dy.data(), gamma.data(), mean_simd.data(),
                            rstd_simd.data(), dx_simd.data(), dg_simd.data(), db_simd.data(),
                            rows, n);
    expect_close(dx_ref, dx_simd, 5e-4, "ln dx");
    expect_close(dg_ref, dg_simd, 5e-4, "ln dgamma");
    expect_close(db_ref, db_simd, 5e-4, "ln dbeta");

    ref.rmsnorm_forward(x.data(), gamma.data(), y_ref.data(), rstd_ref.data(), rows, n, 1e-5f);
    simd.rmsnorm_forward(x.data(), gamma.data(), y_simd.data(), rstd_simd.data(), rows, n, 1e-5f);
    expect_close(rstd_ref, rstd_simd, 1e-4, "rms rstd");
    expect_close(y_ref, y_simd, 1e-4, "rms fwd");
    dx_ref = Tensor::full({rows, n}, 0.0f);
    dx_simd = Tensor::full({rows, n}, 0.0f);
    dg_ref = Tensor::full({n}, 0.0f);
    dg_simd = Tensor::full({n}, 0.0f);
    ref.rmsnorm_backward(x.data(), dy.data(), gamma.data(), rstd_ref.data(), dx_ref.data(),
                         dg_ref.data(), rows, n);
    simd.rmsnorm_backward(x.data(), dy.data(), gamma.data(), rstd_simd.data(), dx_simd.data(),
                          dg_simd.data(), rows, n);
    expect_close(dx_ref, dx_simd, 5e-4, "rms dx");
    expect_close(dg_ref, dg_simd, 5e-4, "rms dgamma");
  }
}

TEST(SimdDifferentialTest, ForkedRowsMatchSerial) {
  // The simd backend forks big GEMM / attention calls across the thread
  // pool; a row partition must not change any row's result. Forked vs
  // serial simd is bitwise equal (each row's arithmetic is identical).
  Rng rng(55);
  const Tensor a = testing::random_tensor({256, 64}, rng);
  const Tensor b = testing::random_tensor({64, 48}, rng);
  const Tensor q = testing::random_tensor({256, 2, 16}, rng);
  const Tensor k = testing::random_tensor({64, 2, 16}, rng);
  const Tensor v = testing::random_tensor({64, 2, 16}, rng);
  kernels::BackendScope scope("simd");
  const int saved = parallel_workers();
  set_parallel_workers(1);
  const Tensor serial_mm = matmul(a, b);
  const nn::AttentionOutput serial_attn = nn::reference_attention_forward(q, k, v, false, 0, 0);
  set_parallel_workers(4);
  const Tensor forked_mm = matmul(a, b);
  const nn::AttentionOutput forked_attn = nn::reference_attention_forward(q, k, v, false, 0, 0);
  set_parallel_workers(saved);
  EXPECT_EQ(max_abs_diff(serial_mm, forked_mm), 0.0);
  EXPECT_EQ(max_abs_diff(serial_attn.out, forked_attn.out), 0.0);
  EXPECT_EQ(max_abs_diff(serial_attn.lse, forked_attn.lse), 0.0);
}

// ---- active-backend property checks (run under both sanitize lanes) -------

TEST(ActiveBackendTest, AttentionRowsSumToOne) {
  // Whatever backend FPDT_KERNEL_BACKEND selected: softmax rows normalize
  // and uniform-value attention reproduces the value exactly.
  Rng rng(13);
  Tensor x = testing::random_tensor({5, 23}, rng);
  softmax_rows_(x);
  for (std::int64_t r = 0; r < 5; ++r) {
    float z = 0.0f;
    for (std::int64_t j = 0; j < 23; ++j) z += x.at({r, j});
    EXPECT_NEAR(z, 1.0f, 1e-5);
  }
  Tensor q = testing::random_tensor({3, 2, 8}, rng);
  Tensor k = testing::random_tensor({6, 2, 8}, rng);
  Tensor v = Tensor::full({6, 2, 8}, 2.5f);
  const nn::AttentionOutput out = nn::reference_attention_forward(q, k, v, false, 0, 0);
  for (std::int64_t i = 0; i < out.out.numel(); ++i) {
    EXPECT_NEAR(out.out.data()[i], 2.5f, 1e-4);
  }
}

TEST(ActiveBackendTest, AttentionBackwardMatchesFiniteDifferences) {
  // Gradient correctness holds for the active backend, not just scalar.
  Rng rng(23);
  Tensor q = testing::random_tensor({3, 2, 4}, rng, 0.5);
  Tensor k = testing::random_tensor({3, 2, 4}, rng, 0.5);
  Tensor v = testing::random_tensor({3, 2, 4}, rng, 0.5);
  Tensor dout = Tensor::full({3, 2, 4}, 1.0f);
  const nn::AttentionOutput fwd = nn::reference_attention_forward(q, k, v, true, 0, 0);
  nn::AttentionGrads g = nn::reference_attention_backward(dout, q, k, v, fwd.out, true, 0, 0);
  const auto loss = [&]() {
    const nn::AttentionOutput o = nn::reference_attention_forward(q, k, v, true, 0, 0);
    double sum = 0.0;
    for (std::int64_t i = 0; i < o.out.numel(); ++i) sum += o.out.data()[i];
    return sum;
  };
  // Larger eps than the default: the summed-output loss gives some
  // coordinates gradients near the float forward-pass noise floor, so the
  // difference step must be big enough to rise above output rounding.
  testing::expect_grad_matches(q, g.dq, loss, 6, rng, 2e-2, 5e-2);
  testing::expect_grad_matches(k, g.dk, loss, 6, rng, 2e-2, 5e-2);
  testing::expect_grad_matches(v, g.dv, loss, 6, rng, 2e-2, 5e-2);
}

// ---- work metering ----------------------------------------------------------

TEST(WorkmeterBackendTest, ScalarAndSimdChargeBitIdenticalWork) {
  // Work is charged analytically from shapes at the dispatch layer, so the
  // same call sequence on the scalar reference and the simd backend must
  // account bit-identical integer FLOP/byte/call totals in every op family
  // — the invariant ci/bench_smoke.sh gates end to end.
  obs::Workmeter& meter = obs::Workmeter::instance();

  const auto run = [&](const char* name) {
    const kernels::Backend& be = kernels::backend(name);
    Rng rng(99);
    const std::int64_t m = 5, k = 7, n = 9;
    Tensor a = testing::random_tensor({m, k}, rng);
    Tensor b = testing::random_tensor({n, k}, rng);
    Tensor c = Tensor::full({m, n}, 0.0f);

    kernels::AttnDims dm;
    dm.sq = 4;
    dm.sk = 6;
    dm.h = 2;
    dm.hk = 2;
    dm.d = 8;
    dm.group = 1;
    Tensor q = testing::random_tensor({dm.sq, dm.h, dm.d}, rng);
    Tensor kk = testing::random_tensor({dm.sk, dm.hk, dm.d}, rng);
    Tensor v = testing::random_tensor({dm.sk, dm.hk, dm.d}, rng);
    Tensor out = Tensor::full({dm.sq, dm.h, dm.d}, 0.0f);
    Tensor lse = Tensor::full({dm.sq, dm.h}, 0.0f);

    const std::int64_t rows = 3, cols = 17;
    Tensor sm = testing::random_tensor({rows, cols}, rng);
    Tensor gamma = testing::random_tensor({cols}, rng);
    Tensor beta = testing::random_tensor({cols}, rng);
    Tensor y = Tensor::full({rows, cols}, 0.0f);
    Tensor mean = Tensor::full({rows}, 0.0f);
    Tensor rstd = Tensor::full({rows}, 0.0f);

    meter.reset();
    meter.set_enabled(true);
    be.gemm_nt(a.data(), b.data(), c.data(), m, k, n);
    be.attn_forward(q.data(), kk.data(), v.data(), out.data(), lse.data(), dm,
                    /*causal=*/true, 0, 0);
    be.softmax_rows(sm.data(), rows, cols);
    be.layernorm_forward(sm.data(), gamma.data(), beta.data(), y.data(), mean.data(),
                         rstd.data(), rows, cols, 1e-5f);
    be.gelu_forward(sm.data(), y.data(), rows * cols);
    meter.set_enabled(false);
    return meter.snapshot();
  };

  const obs::WorkSnapshot scalar = run("scalar");
  const obs::WorkSnapshot simd = run("simd");
  for (int k = 0; k < obs::kOpKinds; ++k) {
    const char* kind = obs::op_kind_name(static_cast<obs::OpKind>(k));
    EXPECT_EQ(scalar.calls[k], 1) << kind;  // one call per family above
    EXPECT_GT(scalar.kind[k].flops, 0) << kind;
    EXPECT_GT(scalar.kind[k].bytes, 0) << kind;
    EXPECT_EQ(scalar.kind[k].flops, simd.kind[k].flops) << kind;
    EXPECT_EQ(scalar.kind[k].bytes, simd.kind[k].bytes) << kind;
    EXPECT_EQ(scalar.calls[k], simd.calls[k]) << kind;
  }
}

}  // namespace
}  // namespace fpdt
