#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "common/units.h"
#include "tensor/tensor.h"
#include "tests/test_util.h"

namespace fpdt {
namespace {

TEST(TensorTest, ConstructionAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.ndim(), 3);
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.size_bytes(), 24 * 4);
  for (float v : t.span()) EXPECT_EQ(v, 0.0f);
}

TEST(TensorTest, UndefinedTensor) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_THROW(t.data(), FpdtError);
}

TEST(TensorTest, FromValuesAndAt) {
  Tensor t = Tensor::from_values({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at({0, 0}), 1.0f);
  EXPECT_EQ(t.at({1, 2}), 6.0f);
  t.at({1, 0}) = 9.0f;
  EXPECT_EQ(t.at({1, 0}), 9.0f);
  EXPECT_THROW(t.at({2, 0}), FpdtError);
}

TEST(TensorTest, Slice0IsZeroCopyView) {
  Tensor t = Tensor::from_values({4, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  Tensor v = t.slice0(1, 3);
  EXPECT_TRUE(v.shares_storage_with(t));
  EXPECT_EQ(v.dim(0), 2);
  EXPECT_EQ(v.at({0, 0}), 2.0f);
  v.at({0, 0}) = 42.0f;
  EXPECT_EQ(t.at({1, 0}), 42.0f);  // writes through
}

TEST(TensorTest, CloneIsDeep) {
  Tensor t = Tensor::full({3}, 1.0f);
  Tensor c = t.clone();
  c.at({0}) = 5.0f;
  EXPECT_EQ(t.at({0}), 1.0f);
}

TEST(TensorTest, ReshapeSharesStorage) {
  Tensor t = Tensor::from_values({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshape({3, 2});
  EXPECT_TRUE(r.shares_storage_with(t));
  EXPECT_EQ(r.at({2, 1}), 6.0f);
  EXPECT_THROW(t.reshape({4, 2}), FpdtError);
}

TEST(TensorTest, Select0) {
  Tensor t = Tensor::from_values({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor row = t.select0(1);
  EXPECT_EQ(row.ndim(), 1);
  EXPECT_EQ(row.at({2}), 6.0f);
}

TEST(TensorTest, NarrowCopies) {
  Tensor t = Tensor::from_values({2, 4}, {0, 1, 2, 3, 4, 5, 6, 7});
  Tensor n = t.narrow(1, 1, 2);
  EXPECT_EQ(n.dim(0), 2);
  EXPECT_EQ(n.dim(1), 2);
  EXPECT_EQ(n.at({0, 0}), 1.0f);
  EXPECT_EQ(n.at({1, 1}), 6.0f);
  EXPECT_FALSE(n.shares_storage_with(t));
}

TEST(TensorTest, PermuteMatchesManualTranspose) {
  Rng rng(1);
  Tensor t = Tensor::randn({3, 5}, rng);
  Tensor tt = t.permute({1, 0});
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) EXPECT_EQ(t.at({i, j}), tt.at({j, i}));
  }
}

TEST(TensorTest, Permute3d) {
  Rng rng(2);
  Tensor t = Tensor::randn({2, 3, 4}, rng);
  Tensor p = t.permute({2, 0, 1});
  EXPECT_EQ(p.dim(0), 4);
  EXPECT_EQ(p.dim(1), 2);
  EXPECT_EQ(p.dim(2), 3);
  for (std::int64_t a = 0; a < 2; ++a) {
    for (std::int64_t b = 0; b < 3; ++b) {
      for (std::int64_t c = 0; c < 4; ++c) EXPECT_EQ(t.at({a, b, c}), p.at({c, a, b}));
    }
  }
}

TEST(TensorTest, Concat0) {
  Tensor a = Tensor::full({2, 2}, 1.0f);
  Tensor b = Tensor::full({1, 2}, 2.0f);
  std::vector<Tensor> parts;
  parts.push_back(a);
  parts.push_back(b);
  Tensor c = concat0(parts);
  EXPECT_EQ(c.dim(0), 3);
  EXPECT_EQ(c.at({2, 0}), 2.0f);
}

TEST(TensorTest, MatmulAgainstManual) {
  Tensor a = Tensor::from_values({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_values({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at({0, 0}), 58.0f);
  EXPECT_FLOAT_EQ(c.at({0, 1}), 64.0f);
  EXPECT_FLOAT_EQ(c.at({1, 0}), 139.0f);
  EXPECT_FLOAT_EQ(c.at({1, 1}), 154.0f);
}

TEST(TensorTest, MatmulBatchBroadcastWeight) {
  Rng rng(3);
  Tensor a = Tensor::randn({2, 3, 4}, rng);
  Tensor w = Tensor::randn({4, 5}, rng);
  Tensor c = matmul(a, w);
  EXPECT_EQ(c.dim(0), 2);
  EXPECT_EQ(c.dim(2), 5);
  // Check one batch slice equals its own 2-D matmul.
  Tensor c0 = matmul(a.select0(0), w);
  EXPECT_LT(max_abs_diff(c.select0(0), c0), 1e-6);
}

TEST(TensorTest, MatmulNtEqualsMatmulWithTranspose) {
  Rng rng(4);
  Tensor a = Tensor::randn({3, 6}, rng);
  Tensor b = Tensor::randn({5, 6}, rng);
  Tensor via_nt = matmul_nt(a, b);
  Tensor via_t = matmul(a, transpose_last2(b));
  EXPECT_LT(max_abs_diff(via_nt, via_t), 1e-5);
}

TEST(TensorTest, MatmulTnEqualsMatmulWithTranspose) {
  Rng rng(5);
  Tensor a = Tensor::randn({6, 3}, rng);
  Tensor b = Tensor::randn({6, 5}, rng);
  Tensor via_tn = matmul_tn(a, b);
  Tensor via_t = matmul(transpose_last2(a), b);
  EXPECT_LT(max_abs_diff(via_tn, via_t), 1e-5);
}

TEST(TensorTest, SoftmaxRowsSumToOne) {
  Rng rng(6);
  Tensor x = Tensor::randn({7, 9}, rng, 0.0, 3.0);
  softmax_rows_(x);
  Tensor s = row_sum(x);
  for (float v : s.span()) EXPECT_NEAR(v, 1.0f, 1e-5);
}

TEST(TensorTest, SoftmaxStableForLargeLogits) {
  Tensor x = Tensor::from_values({1, 3}, {1000.0f, 1000.0f, 999.0f});
  softmax_rows_(x);
  EXPECT_NEAR(x.at({0, 0}), x.at({0, 1}), 1e-6);
  EXPECT_GT(x.at({0, 0}), x.at({0, 2}));
  for (float v : x.span()) EXPECT_TRUE(std::isfinite(v));
}

TEST(TensorTest, ElementwiseOps) {
  Tensor a = Tensor::from_values({3}, {1, 2, 3});
  Tensor b = Tensor::from_values({3}, {4, 5, 6});
  EXPECT_EQ(add(a, b).at({1}), 7.0f);
  EXPECT_EQ(sub(b, a).at({2}), 3.0f);
  EXPECT_EQ(mul(a, b).at({0}), 4.0f);
  Tensor c = a.clone();
  axpy_(c, 2.0f, b);
  EXPECT_EQ(c.at({0}), 9.0f);
  scale_(c, 0.5f);
  EXPECT_EQ(c.at({0}), 4.5f);
}

TEST(TensorTest, AddBias) {
  Tensor x = Tensor::zeros({2, 3});
  Tensor b = Tensor::from_values({3}, {1, 2, 3});
  add_bias_(x, b);
  EXPECT_EQ(x.at({1, 2}), 3.0f);
}

TEST(TensorTest, RowMaxRowSum) {
  Tensor x = Tensor::from_values({2, 3}, {1, 5, 2, -1, -7, -2});
  EXPECT_EQ(row_max(x).at({0}), 5.0f);
  EXPECT_EQ(row_max(x).at({1}), -1.0f);
  EXPECT_EQ(row_sum(x).at({0}), 8.0f);
}

TEST(TensorTest, AllcloseAndDiff) {
  Tensor a = Tensor::full({4}, 1.0f);
  Tensor b = Tensor::full({4}, 1.0f + 1e-7f);
  EXPECT_TRUE(allclose(a, b));
  b.at({2}) = 2.0f;
  EXPECT_FALSE(allclose(a, b));
  EXPECT_NEAR(max_abs_diff(a, b), 1.0, 1e-6);
}

TEST(TensorTest, ShapeMismatchThrows) {
  Tensor a({2, 2});
  Tensor b({2, 3});
  EXPECT_THROW(add(a, b), FpdtError);
  EXPECT_THROW(matmul(a, Tensor({5, 2})), FpdtError);
}

// Property sweep: matmul_nt/matmul_tn agree with matmul across shapes.
class MatmulShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulShapes, ConsistentForms) {
  auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 100 + k * 10 + n));
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor c = matmul(a, b);
  Tensor c_nt = matmul_nt(a, transpose_last2(b));
  Tensor c_tn = matmul_tn(transpose_last2(a), b);
  EXPECT_LT(max_abs_diff(c, c_nt), 1e-4);
  EXPECT_LT(max_abs_diff(c, c_tn), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MatmulShapes,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 8, 3},
                                           std::tuple{7, 1, 5}, std::tuple{5, 16, 5},
                                           std::tuple{16, 32, 8}, std::tuple{33, 17, 9}));

TEST(UnitsTest, TokenCountRoundTrip) {
  EXPECT_EQ(parse_token_count("64K"), 65536);
  EXPECT_EQ(parse_token_count("2M"), 2097152);
  EXPECT_EQ(parse_token_count("4096"), 4096);
  EXPECT_EQ(format_token_count(65536), "64K");
  EXPECT_EQ(format_token_count(2097152), "2M");
  EXPECT_EQ(format_token_count(1000), "1000");
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(format_bytes(64LL * kGiB), "64.0G");
  EXPECT_EQ(format_bytes(512), "512B");
}

TEST(RngTest, DeterministicAndSplit) {
  Rng a(42), b(42);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c = a.split(1);
  Rng d = a.split(2);
  EXPECT_NE(c.next_u64(), d.next_u64());
}

TEST(RngTest, NormalMoments) {
  Rng rng(7);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.next_normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

}  // namespace
}  // namespace fpdt
