// Equivalence tests for the baseline sequence-parallel strategies: Ulysses,
// Megatron-SP (TP + sequence parallel) and Ring Attention all must match the
// single-device reference block bit-for-bit up to FP32 reduction order —
// these baselines anchor every comparison figure in the paper.
#include <gtest/gtest.h>

#include "core/fpdt_env.h"
#include "nn/model.h"
#include "parallel/megatron_sp.h"
#include "parallel/ring_attention.h"
#include "parallel/ulysses.h"
#include "tests/test_util.h"

namespace fpdt {
namespace {

using core::FpdtConfig;
using core::FpdtEnv;
using parallel::MegatronSpBlockExecutor;
using parallel::RingAttentionBlockExecutor;
using parallel::UlyssesBlockExecutor;

// Contiguous sequence sharding used by all three baselines.
std::vector<Tensor> contiguous_shard(const Tensor& full, int world) {
  const std::int64_t s_l = full.dim(0) / world;
  std::vector<Tensor> out;
  for (int r = 0; r < world; ++r) out.push_back(full.slice0(r * s_l, (r + 1) * s_l).clone());
  return out;
}

Tensor contiguous_unshard(const std::vector<Tensor>& locals) {
  return concat0(locals);
}

struct Case {
  int world;
  bool llama;
};

class BaselineParam : public ::testing::TestWithParam<Case> {};

nn::ModelConfig case_config(const Case& c) {
  return c.llama ? nn::tiny_llama(32, 1, 4, c.world > 2 ? 4 : 2, 64)
                 : nn::tiny_gpt(32, 1, 4, 64);
}

void expect_weight_grads_match(nn::TransformerBlock& a, nn::TransformerBlock& b, double tol) {
  std::vector<Tensor> ga, gb;
  std::vector<std::string> names;
  a.visit([&](nn::Param& p) {
    ga.push_back(p.grad.clone());
    names.push_back(p.name);
  });
  b.visit([&](nn::Param& p) { gb.push_back(p.grad.clone()); });
  ASSERT_EQ(ga.size(), gb.size());
  for (std::size_t i = 0; i < ga.size(); ++i) {
    const double scale = std::max(1.0, l2_norm(ga[i]));
    EXPECT_LT(max_abs_diff(ga[i], gb[i]) / scale, 2e-3) << names[i] << " tol " << tol;
  }
}

// ---- Ulysses ---------------------------------------------------------------

TEST_P(BaselineParam, UlyssesForwardMatchesReference) {
  const Case c = GetParam();
  nn::ModelConfig cfg = case_config(c);
  Rng wrng(100);
  nn::TransformerBlock block("b", cfg, wrng);
  Rng xrng(101);
  Tensor x = Tensor::randn({static_cast<std::int64_t>(c.world) * 6, cfg.d_model}, xrng, 0.0, 0.5);
  Tensor ref = block.forward_only(x);

  FpdtEnv env(c.world, UlyssesBlockExecutor::config());
  UlyssesBlockExecutor exec(block, 0, env);
  Tensor got = contiguous_unshard(exec.forward(contiguous_shard(x, c.world)));
  EXPECT_LT(max_abs_diff(got, ref), 2e-4);
}

TEST_P(BaselineParam, UlyssesBackwardMatchesReference) {
  const Case c = GetParam();
  nn::ModelConfig cfg = case_config(c);
  Rng w1(102), w2(102);
  nn::TransformerBlock ref_block("b", cfg, w1);
  nn::TransformerBlock ul_block("b", cfg, w2);
  Rng xrng(103);
  Tensor x = Tensor::randn({static_cast<std::int64_t>(c.world) * 6, cfg.d_model}, xrng, 0.0, 0.5);
  Tensor dz = Tensor::randn(x.shape(), xrng, 0.0, 0.5);

  Tensor ref_dx = ref_block.backward_with_recompute(dz, x);
  FpdtEnv env(c.world, UlyssesBlockExecutor::config());
  UlyssesBlockExecutor exec(ul_block, 0, env);
  Tensor got_dx = contiguous_unshard(
      exec.backward(contiguous_shard(dz, c.world), contiguous_shard(x, c.world)));
  EXPECT_LT(max_abs_diff(got_dx, ref_dx), 5e-4);
  expect_weight_grads_match(ref_block, ul_block, 2e-3);
}

// ---- Megatron-SP -------------------------------------------------------------

TEST_P(BaselineParam, MegatronSpForwardMatchesReference) {
  const Case c = GetParam();
  nn::ModelConfig cfg = case_config(c);
  Rng wrng(110);
  nn::TransformerBlock block("b", cfg, wrng);
  Rng xrng(111);
  Tensor x = Tensor::randn({static_cast<std::int64_t>(c.world) * 6, cfg.d_model}, xrng, 0.0, 0.5);
  Tensor ref = block.forward_only(x);

  FpdtEnv env(c.world, FpdtConfig{});
  MegatronSpBlockExecutor exec(block, env);
  Tensor got = contiguous_unshard(exec.forward(contiguous_shard(x, c.world)));
  EXPECT_LT(max_abs_diff(got, ref), 2e-4);
}

TEST_P(BaselineParam, MegatronSpBackwardMatchesReference) {
  const Case c = GetParam();
  nn::ModelConfig cfg = case_config(c);
  Rng w1(112), w2(112);
  nn::TransformerBlock ref_block("b", cfg, w1);
  nn::TransformerBlock sp_block("b", cfg, w2);
  Rng xrng(113);
  Tensor x = Tensor::randn({static_cast<std::int64_t>(c.world) * 6, cfg.d_model}, xrng, 0.0, 0.5);
  Tensor dz = Tensor::randn(x.shape(), xrng, 0.0, 0.5);

  Tensor ref_dx = ref_block.backward_with_recompute(dz, x);
  FpdtEnv env(c.world, FpdtConfig{});
  MegatronSpBlockExecutor exec(sp_block, env);
  Tensor got_dx = contiguous_unshard(
      exec.backward(contiguous_shard(dz, c.world), contiguous_shard(x, c.world)));
  EXPECT_LT(max_abs_diff(got_dx, ref_dx), 5e-4);
  expect_weight_grads_match(ref_block, sp_block, 2e-3);
}

// ---- Ring Attention ----------------------------------------------------------

TEST_P(BaselineParam, RingForwardMatchesReference) {
  const Case c = GetParam();
  nn::ModelConfig cfg = case_config(c);
  Rng wrng(120);
  nn::TransformerBlock block("b", cfg, wrng);
  Rng xrng(121);
  Tensor x = Tensor::randn({static_cast<std::int64_t>(c.world) * 6, cfg.d_model}, xrng, 0.0, 0.5);
  Tensor ref = block.forward_only(x);

  FpdtEnv env(c.world, FpdtConfig{});
  RingAttentionBlockExecutor exec(block, env);
  Tensor got = contiguous_unshard(exec.forward(contiguous_shard(x, c.world)));
  EXPECT_LT(max_abs_diff(got, ref), 2e-4);
}

TEST_P(BaselineParam, RingBackwardMatchesReference) {
  const Case c = GetParam();
  nn::ModelConfig cfg = case_config(c);
  Rng w1(122), w2(122);
  nn::TransformerBlock ref_block("b", cfg, w1);
  nn::TransformerBlock ring_block("b", cfg, w2);
  Rng xrng(123);
  Tensor x = Tensor::randn({static_cast<std::int64_t>(c.world) * 6, cfg.d_model}, xrng, 0.0, 0.5);
  Tensor dz = Tensor::randn(x.shape(), xrng, 0.0, 0.5);

  Tensor ref_dx = ref_block.backward_with_recompute(dz, x);
  FpdtEnv env(c.world, FpdtConfig{});
  RingAttentionBlockExecutor exec(ring_block, env);
  Tensor got_dx = contiguous_unshard(
      exec.backward(contiguous_shard(dz, c.world), contiguous_shard(x, c.world)));
  EXPECT_LT(max_abs_diff(got_dx, ref_dx), 5e-4);
  expect_weight_grads_match(ref_block, ring_block, 2e-3);
}

TEST(RingAttentionTest, CausalLoadImbalance) {
  // Rank r performs r+1 useful KV-block visits: the imbalance FPDT avoids.
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 64);
  Rng wrng(130);
  nn::TransformerBlock block("b", cfg, wrng);
  Rng xrng(131);
  const int P = 4;
  Tensor x = Tensor::randn({P * 4, cfg.d_model}, xrng);
  FpdtEnv env(P, FpdtConfig{});
  RingAttentionBlockExecutor exec(block, env);
  exec.forward(contiguous_shard(x, P));
  for (int r = 0; r < P; ++r) {
    EXPECT_EQ(exec.useful_steps()[static_cast<std::size_t>(r)], r + 1);
  }
}

TEST(MegatronSpTest, IndivisibleHeadsRejected) {
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 64);  // 4 heads
  Rng wrng(132);
  nn::TransformerBlock block("b", cfg, wrng);
  FpdtEnv env(3, FpdtConfig{});
  EXPECT_THROW(MegatronSpBlockExecutor(block, env), FpdtError);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BaselineParam,
                         ::testing::Values(Case{1, false}, Case{2, false}, Case{4, false},
                                           Case{2, true}, Case{4, true}));

}  // namespace
}  // namespace fpdt
