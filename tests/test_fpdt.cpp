// Tests of the FPDT core: rank-ordinal sharding (Fig. 6), the chunk store,
// and — most importantly — numerical equivalence of the fully pipelined
// chunked/offloaded block executor and trainer against the single-device
// reference, across world sizes, chunk counts, offload modes and both
// model families.
#include <gtest/gtest.h>

#include "core/chunk_store.h"
#include "core/fpdt_block.h"
#include "core/fpdt_trainer.h"
#include "data/rank_ordinal.h"
#include "data/synthetic_corpus.h"
#include "nn/model.h"
#include "tests/test_util.h"

namespace fpdt {
namespace {

using core::ChunkStore;
using core::FpdtBlockExecutor;
using core::FpdtConfig;
using core::FpdtEnv;
using core::FpdtTrainer;
using data::RankOrdinalSharder;

// ---- Rank-ordinal sharding --------------------------------------------------

TEST(RankOrdinalTest, GlobalChunkMapping) {
  RankOrdinalSharder sh(4, 3);
  EXPECT_EQ(sh.global_chunk(0, 0), 0);
  EXPECT_EQ(sh.global_chunk(3, 0), 3);
  EXPECT_EQ(sh.global_chunk(1, 2), 9);
}

TEST(RankOrdinalTest, GatheredChunksAreContiguous) {
  // The i-th All2All gathers local chunk i from every rank: global chunks
  // {i*P + r : r} — exactly the contiguous range [i*P, (i+1)*P). This is
  // the property that keeps the diagonal causal mask valid.
  const int P = 4;
  const std::int64_t u = 3;
  RankOrdinalSharder sh(P, u);
  for (std::int64_t i = 0; i < u; ++i) {
    for (int r = 0; r < P; ++r) {
      EXPECT_EQ(sh.global_chunk(r, i), i * P + r);
    }
    EXPECT_EQ(sh.global_chunk(0, i), i * P);
    EXPECT_EQ(sh.global_chunk(P - 1, i), (i + 1) * P - 1);
  }
}

TEST(RankOrdinalTest, TensorShardUnshardRoundTrip) {
  Rng rng(1);
  RankOrdinalSharder sh(4, 2);
  Tensor full = Tensor::randn({32, 3}, rng);
  auto locals = sh.shard_tensor(full);
  ASSERT_EQ(locals.size(), 4u);
  EXPECT_EQ(locals[0].dim(0), 8);
  Tensor back = sh.unshard_tensor(locals);
  EXPECT_LT(max_abs_diff(back, full), 1e-7);
}

TEST(RankOrdinalTest, TokenShardPositionsAndLabels) {
  RankOrdinalSharder sh(2, 2);
  std::vector<std::int32_t> tokens;
  for (int i = 0; i <= 16; ++i) tokens.push_back(i * 10);
  auto shards = sh.shard_tokens(tokens);
  ASSERT_EQ(shards.size(), 2u);
  // s_global = 16, 4 chunks of 4. Rank 0 holds global chunks 0, 2.
  EXPECT_EQ(shards[0].chunk_pos0, (std::vector<std::int64_t>{0, 8}));
  EXPECT_EQ(shards[1].chunk_pos0, (std::vector<std::int64_t>{4, 12}));
  EXPECT_EQ(shards[0].inputs[0], 0);
  EXPECT_EQ(shards[0].inputs[4], 80);   // chunk 2 starts at global pos 8
  EXPECT_EQ(shards[1].inputs[0], 40);
  // Labels are the next-token ids at the same shuffled positions.
  for (std::size_t t = 0; t < shards[0].inputs.size(); ++t) {
    EXPECT_EQ(shards[0].labels[t], shards[0].inputs[t] + 10);
  }
}

TEST(RankOrdinalTest, IndivisibleSequenceThrows) {
  RankOrdinalSharder sh(4, 2);
  std::vector<std::int32_t> tokens(18, 0);  // s_global = 17, not divisible by 8
  EXPECT_THROW(sh.shard_tokens(tokens), FpdtError);
}

// ---- Chunk store ------------------------------------------------------------

TEST(ChunkStoreTest, OffloadMovesChargesToHost) {
  runtime::Device dev(0, -1);
  runtime::Host host;
  ChunkStore store(dev, host, /*offload=*/true);
  Rng rng(2);
  store.put("k.0.0", dev.alloc(Tensor::randn({4, 2, 2}, rng)));
  EXPECT_EQ(dev.hbm().used(), 0);
  EXPECT_EQ(host.pool().used(), 32);
  runtime::Buffer copy = store.fetch_copy("k.0.0");
  EXPECT_EQ(dev.hbm().used(), 32);
  EXPECT_EQ(host.pool().used(), 32);  // cached copy still resident
  copy.release();
  runtime::Buffer taken = store.take("k.0.0");
  EXPECT_EQ(host.pool().used(), 0);
  EXPECT_EQ(dev.hbm().used(), 32);
  EXPECT_FALSE(store.contains("k.0.0"));
}

TEST(ChunkStoreTest, ResidentModeKeepsHbmCharge) {
  runtime::Device dev(0, -1);
  runtime::Host host;
  ChunkStore store(dev, host, /*offload=*/false);
  Rng rng(3);
  store.put("k.0.0", dev.alloc(Tensor::randn({4, 2, 2}, rng)));
  EXPECT_EQ(dev.hbm().used(), 32);
  EXPECT_EQ(host.pool().used(), 0);
  EXPECT_EQ(dev.transfers().d2h_bytes, 0);
}

TEST(ChunkStoreTest, DuplicateAndMissingKeysThrow) {
  runtime::Device dev(0, -1);
  runtime::Host host;
  ChunkStore store(dev, host, true);
  store.put("a", dev.alloc(Tensor::zeros({1})));
  EXPECT_THROW(store.put("a", dev.alloc(Tensor::zeros({1}))), FpdtError);
  EXPECT_THROW(store.take("b"), FpdtError);
  EXPECT_THROW(store.fetch_copy("b"), FpdtError);
}

// ---- Synthetic corpus -------------------------------------------------------

TEST(SyntheticCorpusTest, DeterministicAndInVocab) {
  data::SyntheticCorpus a(64, 9), b(64, 9);
  auto sa = a.sample(512);
  auto sb = b.sample(512);
  EXPECT_EQ(sa, sb);
  for (std::int32_t t : sa) EXPECT_TRUE(t >= 0 && t < 64);
  data::SyntheticCorpus c(64, 10);
  EXPECT_NE(sa, c.sample(512));
}

TEST(SyntheticCorpusTest, HasLearnableStructure) {
  // The Markov backbone makes the most common successor of each token much
  // more likely than chance.
  data::SyntheticCorpus corpus(32, 11);
  auto s = corpus.sample(20000);
  std::vector<std::vector<int>> follow(32, std::vector<int>(32, 0));
  for (std::size_t i = 0; i + 1 < s.size(); ++i) {
    follow[static_cast<std::size_t>(s[i])][static_cast<std::size_t>(s[i + 1])]++;
  }
  int peaked = 0, seen = 0;
  for (int t = 0; t < 32; ++t) {
    int total = 0, best = 0;
    for (int n = 0; n < 32; ++n) {
      total += follow[static_cast<std::size_t>(t)][static_cast<std::size_t>(n)];
      best = std::max(best, follow[static_cast<std::size_t>(t)][static_cast<std::size_t>(n)]);
    }
    if (total > 100) {
      ++seen;
      if (best > total / 2) ++peaked;
    }
  }
  ASSERT_GT(seen, 10);
  EXPECT_GT(peaked, seen / 2);
}

// ---- FPDT block executor equivalence ---------------------------------------

struct FpdtCase {
  int world;
  int chunks;
  bool offload;
  bool double_buffer;
  bool llama;
};

class FpdtBlockParam : public ::testing::TestWithParam<FpdtCase> {};

nn::ModelConfig case_config(const FpdtCase& c) {
  // kv heads must divide the world size for the Ulysses all2all.
  return c.llama ? nn::tiny_llama(32, 1, 4, c.world > 2 ? 4 : 2, 64)
                 : nn::tiny_gpt(32, 1, 4, 64);
}

TEST_P(FpdtBlockParam, ForwardMatchesReference) {
  const FpdtCase c = GetParam();
  nn::ModelConfig cfg = case_config(c);
  Rng wrng(77);
  nn::TransformerBlock block("b", cfg, wrng);

  const std::int64_t s_global = static_cast<std::int64_t>(c.world) * c.chunks * 4;
  Rng xrng(78);
  Tensor x = Tensor::randn({s_global, cfg.d_model}, xrng, 0.0, 0.5);
  Tensor ref = block.forward_only(x);

  FpdtConfig fcfg;
  fcfg.chunks_per_rank = c.chunks;
  fcfg.offload = c.offload;
  fcfg.double_buffer = c.double_buffer;
  FpdtEnv env(c.world, fcfg);
  FpdtBlockExecutor exec(block, 0, env);
  RankOrdinalSharder sh(c.world, c.chunks);
  std::vector<Tensor> z = exec.forward(sh.shard_tensor(x));
  Tensor got = sh.unshard_tensor(z);
  EXPECT_LT(max_abs_diff(got, ref), 2e-4);
}

TEST_P(FpdtBlockParam, BackwardMatchesReference) {
  const FpdtCase c = GetParam();
  nn::ModelConfig cfg = case_config(c);
  Rng wrng(80);
  nn::TransformerBlock ref_block("b", cfg, wrng);
  Rng wrng2(80);
  nn::TransformerBlock fpdt_block("b", cfg, wrng2);

  const std::int64_t s_global = static_cast<std::int64_t>(c.world) * c.chunks * 4;
  Rng xrng(81);
  Tensor x = Tensor::randn({s_global, cfg.d_model}, xrng, 0.0, 0.5);
  Tensor dz = Tensor::randn({s_global, cfg.d_model}, xrng, 0.0, 0.5);

  Tensor ref_dx = ref_block.backward_with_recompute(dz, x);

  FpdtConfig fcfg;
  fcfg.chunks_per_rank = c.chunks;
  fcfg.offload = c.offload;
  fcfg.double_buffer = c.double_buffer;
  FpdtEnv env(c.world, fcfg);
  FpdtBlockExecutor exec(fpdt_block, 0, env);
  RankOrdinalSharder sh(c.world, c.chunks);
  std::vector<Tensor> dx_local = exec.backward(sh.shard_tensor(dz), sh.shard_tensor(x));
  Tensor got_dx = sh.unshard_tensor(dx_local);
  EXPECT_LT(max_abs_diff(got_dx, ref_dx), 5e-4);

  // Weight gradients: per-rank accumulation into shared tensors reproduces
  // the gradient all-reduce.
  std::vector<Tensor> ref_grads, fpdt_grads;
  std::vector<std::string> names;
  ref_block.visit([&](nn::Param& p) {
    ref_grads.push_back(p.grad.clone());
    names.push_back(p.name);
  });
  fpdt_block.visit([&](nn::Param& p) { fpdt_grads.push_back(p.grad.clone()); });
  ASSERT_EQ(ref_grads.size(), fpdt_grads.size());
  for (std::size_t i = 0; i < ref_grads.size(); ++i) {
    EXPECT_LT(max_abs_diff(ref_grads[i], fpdt_grads[i]), 5e-3) << names[i];
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FpdtBlockParam,
    ::testing::Values(FpdtCase{1, 1, false, false, false},  // degenerate = Ulysses P=1
                      FpdtCase{1, 4, true, true, false},    // chunking only, single rank
                      FpdtCase{2, 2, false, false, false},  // multi-rank, resident chunks
                      FpdtCase{2, 3, true, false, false},   // offload, strict single buffer
                      FpdtCase{2, 3, true, true, false},    // offload + double buffer
                      FpdtCase{4, 2, true, true, false},    // 4 ranks
                      FpdtCase{4, 4, true, true, false},    // 4 ranks, more chunks
                      FpdtCase{2, 2, true, true, true},     // Llama (RMSNorm/SwiGLU/GQA)
                      FpdtCase{4, 2, true, true, true}));   // Llama on 4 ranks

// ---- Memory behaviour -------------------------------------------------------

TEST(FpdtMemoryTest, ChunkingShrinksActivationPeak) {
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 64);
  Rng wrng(90);
  nn::TransformerBlock block("b", cfg, wrng);
  Rng xrng(91);
  const std::int64_t s_global = 64;
  Tensor x = Tensor::randn({s_global, cfg.d_model}, xrng);

  auto peak_with = [&](std::int64_t chunks, bool offload) {
    FpdtConfig fcfg;
    fcfg.chunks_per_rank = chunks;
    fcfg.offload = offload;
    FpdtEnv env(2, fcfg);
    FpdtBlockExecutor exec(block, 0, env);
    RankOrdinalSharder sh(2, chunks);
    exec.forward(sh.shard_tensor(x));
    return env.max_hbm_peak();
  };

  const std::int64_t mono = peak_with(1, false);
  const std::int64_t chunked = peak_with(4, false);
  const std::int64_t offloaded = peak_with(4, true);
  EXPECT_LT(chunked, mono);
  EXPECT_LT(offloaded, chunked);  // offload strips the resident KV cache
}

TEST(FpdtMemoryTest, OffloadTrafficAccounted) {
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 64);
  Rng wrng(92);
  nn::TransformerBlock block("b", cfg, wrng);
  Rng xrng(93);
  Tensor x = Tensor::randn({64, cfg.d_model}, xrng);
  FpdtConfig fcfg;
  fcfg.chunks_per_rank = 4;
  fcfg.offload = true;
  FpdtEnv env(2, fcfg);
  FpdtBlockExecutor exec(block, 0, env);
  RankOrdinalSharder sh(2, 4);
  exec.forward(sh.shard_tensor(x));
  EXPECT_GT(env.device(0).transfers().d2h_bytes, 0);
  EXPECT_GT(env.device(0).transfers().h2d_bytes, 0);
  // Without offload there is no host traffic at all.
  FpdtConfig rcfg = fcfg;
  rcfg.offload = false;
  FpdtEnv env2(2, rcfg);
  FpdtBlockExecutor exec2(block, 0, env2);
  exec2.forward(sh.shard_tensor(x));
  EXPECT_EQ(env2.device(0).transfers().d2h_bytes, 0);
}

TEST(FpdtMemoryTest, TightHbmCapacityOoms) {
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 64);
  Rng wrng(94);
  nn::TransformerBlock block("b", cfg, wrng);
  Rng xrng(95);
  Tensor x = Tensor::randn({64, cfg.d_model}, xrng);
  FpdtConfig fcfg;
  fcfg.chunks_per_rank = 1;
  FpdtEnv env(2, fcfg, /*hbm_capacity=*/4 * 1024);
  FpdtBlockExecutor exec(block, 0, env);
  RankOrdinalSharder sh(2, 1);
  EXPECT_THROW(exec.forward(sh.shard_tensor(x)), OutOfMemoryError);
}

// ---- End-to-end trainer equivalence ------------------------------------------

class FpdtTrainerParam : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(FpdtTrainerParam, StepMatchesReferenceModel) {
  auto [world, chunks, llama] = GetParam();
  nn::ModelConfig cfg = llama ? nn::tiny_llama(32, 2, 4, 4, 48) : nn::tiny_gpt(32, 2, 4, 48);
  nn::Model ref(cfg, 321);
  nn::Model dist(cfg, 321);

  data::SyntheticCorpus corpus(cfg.vocab, 55);
  const std::int64_t s_global = static_cast<std::int64_t>(world) * chunks * 4;
  std::vector<std::int32_t> tokens = corpus.sample(s_global + 1);

  const double ref_loss = ref.train_step_grads(tokens);

  FpdtConfig fcfg;
  fcfg.chunks_per_rank = chunks;
  FpdtTrainer trainer(dist, world, fcfg);
  const double fpdt_loss = trainer.train_step_grads(tokens);

  EXPECT_NEAR(ref_loss, fpdt_loss, 1e-4);

  std::vector<Tensor> ref_grads, dist_grads;
  std::vector<std::string> names;
  ref.visit_params([&](nn::Param& p) {
    ref_grads.push_back(p.grad.clone());
    names.push_back(p.name);
  });
  dist.visit_params([&](nn::Param& p) { dist_grads.push_back(p.grad.clone()); });
  ASSERT_EQ(ref_grads.size(), dist_grads.size());
  for (std::size_t i = 0; i < ref_grads.size(); ++i) {
    const double scale = std::max(1.0, l2_norm(ref_grads[i]));
    EXPECT_LT(max_abs_diff(ref_grads[i], dist_grads[i]) / scale, 2e-3) << names[i];
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FpdtTrainerParam,
                         ::testing::Values(std::tuple{2, 2, false}, std::tuple{4, 2, false},
                                           std::tuple{2, 4, false}, std::tuple{2, 2, true},
                                           std::tuple{4, 2, true}));

TEST(FpdtTrainerTest, MultiStepTrainingTracksReference) {
  nn::ModelConfig cfg = nn::tiny_gpt(32, 2, 4, 48);
  nn::Model ref(cfg, 500);
  nn::Model dist(cfg, 500);
  nn::Adam opt_ref(1e-3), opt_dist(1e-3);
  FpdtConfig fcfg;
  fcfg.chunks_per_rank = 2;
  FpdtTrainer trainer(dist, 2, fcfg);
  data::SyntheticCorpus c1(cfg.vocab, 60), c2(cfg.vocab, 60);
  for (int step = 0; step < 5; ++step) {
    std::vector<std::int32_t> t1 = c1.sample(33);
    std::vector<std::int32_t> t2 = c2.sample(33);
    ASSERT_EQ(t1, t2);
    const double l_ref = ref.train_step_grads(t1);
    const double l_dist = trainer.train_step_grads(t2);
    EXPECT_NEAR(l_ref, l_dist, 5e-4) << "step " << step;
    opt_ref.step([&](const nn::ParamVisitor& fn) { ref.visit_params(fn); });
    opt_dist.step([&](const nn::ParamVisitor& fn) { dist.visit_params(fn); });
  }
}

}  // namespace
}  // namespace fpdt
