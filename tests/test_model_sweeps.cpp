// Parameterized sweeps across the six evaluation models (2.7B…70B): memory
// model component invariants, capacity monotonicity (more GPUs / more HBM
// never hurts), timeline sanity across world sizes, and cross-strategy
// orderings that every figure in the paper relies on.
#include <gtest/gtest.h>

#include "nn/model_config.h"
#include "perfmodel/evaluate.h"
#include "sim/timeline.h"

namespace fpdt {
namespace {

using perfmodel::estimate_memory;
using perfmodel::max_sequence;
using perfmodel::Strategy;

class ModelSweep : public ::testing::TestWithParam<const char*> {
 protected:
  nn::ModelConfig cfg_ = nn::model_by_name(GetParam());
};

TEST_P(ModelSweep, MemoryComponentsNonNegativeAndOrdered) {
  for (int world : {4, 8, 16, 32}) {
    for (std::int64_t s : {128LL << 10, 1LL << 20}) {
      const auto mb = estimate_memory(cfg_, Strategy::fpdt(), world, s);
      EXPECT_GE(mb.params, 0);
      EXPECT_GE(mb.working_set, 0);
      EXPECT_GE(mb.host_bytes, 0);
      // Optimizer state dominates params under ZeRO (12 vs 2 bytes/param).
      EXPECT_EQ(mb.optimizer, 6 * mb.params);
      EXPECT_EQ(mb.grads, mb.params);
    }
  }
}

TEST_P(ModelSweep, MemoryScalesDownWithWorldSize) {
  const std::int64_t s = 512 << 10;
  std::int64_t prev = INT64_MAX;
  for (int world : {4, 8, 16, 32}) {
    const auto mb = estimate_memory(cfg_, Strategy::fpdt(), world, s);
    EXPECT_LT(mb.device_total(), prev) << "world " << world;
    prev = mb.device_total();
  }
}

TEST_P(ModelSweep, MaxSequenceMonotoneInGpus) {
  const sim::HardwareSpec hw = sim::a100_80g_node();
  std::int64_t prev = 0;
  for (int world : {4, 8, 16, 32}) {
    const std::int64_t len = max_sequence(cfg_, Strategy::fpdt(), world, hw);
    EXPECT_GE(len, prev) << "world " << world;
    prev = len;
  }
}

TEST_P(ModelSweep, MaxSequenceMonotoneInHbm) {
  for (int world : {8, 16}) {
    const std::int64_t small = max_sequence(cfg_, Strategy::fpdt(), world,
                                            sim::a100_40g_node());
    const std::int64_t big = max_sequence(cfg_, Strategy::fpdt(), world,
                                          sim::a100_80g_node());
    EXPECT_GE(big, small) << "world " << world;
  }
}

TEST_P(ModelSweep, FpdtNeverWorseThanUlyssesCapacity) {
  const sim::HardwareSpec hw = sim::a100_80g_node();
  for (int world : {4, 8, 16}) {
    const std::int64_t ul = max_sequence(cfg_, Strategy::ulysses(3, true, true), world, hw);
    const std::int64_t fp = max_sequence(cfg_, Strategy::fpdt(), world, hw);
    EXPECT_GE(fp, ul) << "world " << world;
    // The paper's gains are 8-16x; small models cap at the 8M search limit
    // so the measurable ratio floor is 2x.
    if (ul > 0) {
      EXPECT_GE(fp / ul, 2) << "world " << world;
    }
  }
}

TEST_P(ModelSweep, TimelineSaneAcrossWorldSizes) {
  for (int world : {4, 8, 16}) {
    if (cfg_.n_head % world != 0 || cfg_.n_kv_head % world != 0) continue;
    const sim::CostModel cm(sim::a100_80g_node(), world);
    const sim::LayerTiming t = sim::fpdt_layer_timing(cfg_, cm, 64 * 1024, 4, true, true);
    EXPECT_GT(t.forward_s, 0.0);
    EXPECT_GT(t.backward_s, t.forward_s);  // backward has ~2.5x the attention work
    EXPECT_GT(t.compute_busy_s, 0.0);
    // The pipeline cannot beat its busiest engine.
    EXPECT_GE(t.total() + 1e-12, t.compute_busy_s / 1.0001);
  }
}

TEST_P(ModelSweep, MfuImprovesWithSequenceLength) {
  // Attention amortises fixed overheads: within one node, MFU at 256K
  // must exceed MFU at 128K for FPDT (comparing like modes: both short
  // enough that the host-bound recompute fallback does not engage).
  const sim::HardwareSpec hw = sim::a100_80g_node();
  const int world = 4;
  if (cfg_.param_count() > 20e9) GTEST_SKIP() << "model state too large for 4 GPUs";
  const auto lo = perfmodel::evaluate(cfg_, Strategy::fpdt(), world, 128 << 10, hw);
  const auto hi = perfmodel::evaluate(cfg_, Strategy::fpdt(), world, 256 << 10, hw);
  if (lo.recompute_fallback != hi.recompute_fallback) {
    GTEST_SKIP() << "backward mode changes between the two points";
  }
  EXPECT_GT(hi.mfu, lo.mfu);
}

TEST_P(ModelSweep, StepTimeSuperlinearInSequence) {
  // Quadratic attention must show: 4x sequence -> more than 4x step time
  // once attention dominates.
  const sim::HardwareSpec hw = sim::a100_80g_node();
  const int world = 8;
  if (cfg_.n_head % world != 0 || cfg_.n_kv_head % world != 0) {
    GTEST_SKIP() << "head count does not shard over " << world;
  }
  const auto lo = perfmodel::evaluate(cfg_, Strategy::fpdt(), world, 512 << 10, hw);
  const auto hi = perfmodel::evaluate(cfg_, Strategy::fpdt(), world, 2048LL << 10, hw);
  EXPECT_GT(hi.step_s, 4.0 * lo.step_s);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelSweep,
                         ::testing::Values("gpt-2.7b", "gpt-6.7b", "gpt-13b", "gpt-30b",
                                           "llama-8b", "llama-70b"));

TEST(CrossModelTest, BiggerModelsNeedMoreGpusForSameContext) {
  const sim::HardwareSpec hw = sim::a100_80g_node();
  auto gpus_for_1m = [&](const nn::ModelConfig& cfg) {
    for (int world : {4, 8, 16, 32}) {
      if (max_sequence(cfg, Strategy::fpdt(), world, hw) >= (1LL << 20)) return world;
    }
    return 64;
  };
  EXPECT_LE(gpus_for_1m(nn::gpt_2p7b()), gpus_for_1m(nn::gpt_13b()));
  EXPECT_LE(gpus_for_1m(nn::gpt_13b()), gpus_for_1m(nn::llama_70b()));
}

TEST(CrossModelTest, GqaShrinksKvTraffic) {
  // Llama-8B (8 kv heads) moves less KV than a same-width MHA model would.
  const nn::ModelConfig llama = nn::llama_8b();
  nn::ModelConfig mha = llama;
  mha.n_kv_head = mha.n_head;
  const auto gqa_mem = estimate_memory(llama, Strategy::fpdt(), 8, 1 << 20);
  const auto mha_mem = estimate_memory(mha, Strategy::fpdt(), 8, 1 << 20);
  EXPECT_LT(gqa_mem.working_set, mha_mem.working_set);
  EXPECT_LT(gqa_mem.host_bytes, mha_mem.host_bytes);
}

}  // namespace
}  // namespace fpdt
