// Tests of the episodic needle-retrieval data and the end-to-end capability
// property behind examples/needle_eval.cpp: a model trained on episodes up
// to length L recalls reliably within L and collapses beyond it — the
// train-on-the-target-context-length effect the paper motivates.
#include <gtest/gtest.h>

#include "common/check.h"
#include "data/needle.h"
#include "nn/adam.h"
#include "nn/generate.h"
#include "nn/model.h"

namespace fpdt {
namespace {

using data::NeedleGenerator;
using data::NeedleSample;

TEST(NeedleTest, ProbeStructure) {
  NeedleGenerator gen(64, 1);
  const NeedleSample s = gen.sample(40);
  ASSERT_EQ(s.tokens.size(), 41u);  // KEY at 0, QUERY at index `distance`
  EXPECT_EQ(s.tokens.front(), gen.key_marker());
  EXPECT_EQ(s.tokens[1], s.answer);
  EXPECT_EQ(s.tokens.back(), gen.query_marker());
  EXPECT_LT(s.answer, gen.value_range());
  // Markers appear exactly once each; the value exactly once.
  int keys = 0, queries = 0, answers = 0;
  for (std::int32_t t : s.tokens) {
    keys += (t == gen.key_marker());
    queries += (t == gen.query_marker());
    answers += (t == s.answer);
  }
  EXPECT_EQ(keys, 1);
  EXPECT_EQ(queries, 1);
  EXPECT_EQ(answers, 1);
}

TEST(NeedleTest, TrainingSequenceEpisodeStructure) {
  NeedleGenerator gen(64, 2);
  const auto seq = gen.training_sequence(8, 24, 5);
  // Five episodes: five KEY markers, five QUERYs, each QUERY followed by
  // the value after the episode's KEY.
  std::vector<std::size_t> key_pos, query_pos;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (seq[i] == gen.key_marker()) key_pos.push_back(i);
    if (seq[i] == gen.query_marker()) query_pos.push_back(i);
  }
  ASSERT_EQ(key_pos.size(), 5u);
  ASSERT_EQ(query_pos.size(), 5u);
  for (std::size_t e = 0; e < 5; ++e) {
    ASSERT_LT(query_pos[e] + 1, seq.size());
    EXPECT_EQ(seq[query_pos[e] + 1], seq[key_pos[e] + 1]) << "episode " << e;
    // Episode lengths within the requested band (KEY to QUERY inclusive+1).
    const std::size_t len = query_pos[e] - key_pos[e] + 1;
    EXPECT_GE(len, 8u);
    EXPECT_LE(len, 24u);
  }
}

TEST(NeedleTest, DeterministicPerSeed) {
  NeedleGenerator a(64, 7), b(64, 7), c(64, 8);
  EXPECT_EQ(a.sample(20).tokens, b.sample(20).tokens);
  EXPECT_EQ(a.training_sequence(8, 16, 3), b.training_sequence(8, 16, 3));
  EXPECT_NE(c.sample(20).tokens, NeedleGenerator(64, 7).sample(20).tokens);
}

TEST(NeedleTest, BoundsChecked) {
  NeedleGenerator gen(64, 2);
  EXPECT_THROW(gen.sample(1), FpdtError);
  EXPECT_THROW(gen.training_sequence(3, 10, 2), FpdtError);   // episode < 4
  EXPECT_THROW(gen.training_sequence(10, 8, 2), FpdtError);   // min > max
  EXPECT_THROW(gen.training_sequence(8, 10, 0), FpdtError);   // no episodes
  EXPECT_THROW(NeedleGenerator(4, 1), FpdtError);             // vocab too small
}

TEST(NeedleTest, RecallLearnedWithinTrainedContextCollapsesBeyond) {
  // The headline property: train on episodes of length 8..24, probe within
  // (distance 12: high accuracy) and far beyond (distance 96: near chance).
  nn::ModelConfig cfg = nn::tiny_gpt(64, 2, 4, 32);
  nn::Model model(cfg, 3);
  nn::Adam opt(3e-3);
  NeedleGenerator gen(cfg.vocab, 17);
  for (int step = 0; step < 900; ++step) {
    model.train_step_grads(gen.training_sequence(8, 24, 4));
    opt.step([&](const nn::ParamVisitor& f) { model.visit_params(f); });
  }
  auto accuracy_at = [&](std::int64_t distance) {
    NeedleGenerator probe(cfg.vocab, 99);
    int correct = 0;
    const int probes = 32;
    for (int p = 0; p < probes; ++p) {
      const NeedleSample s = probe.sample(distance);
      Tensor logits = nn::next_token_logits(model, s.tokens);
      std::int64_t best = 0;
      for (std::int64_t v = 1; v < logits.numel(); ++v) {
        if (logits.data()[v] > logits.data()[best]) best = v;
      }
      correct += (best == s.answer);
    }
    return static_cast<double>(correct) / probes;
  };
  const double in_context = accuracy_at(12);
  const double beyond = accuracy_at(96);
  EXPECT_GT(in_context, 0.5) << "in-context recall should be reliable";
  EXPECT_LT(beyond, in_context * 0.75) << "recall must degrade beyond the trained length";
}

}  // namespace
}  // namespace fpdt
