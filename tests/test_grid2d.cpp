// 2D (sequence × head) grid tests: validity rules, coordinate maps, and the
// end-to-end contract that turning the grid on re-routes traffic without
// touching a single bit of the math — a 2D FpdtTrainer run must produce a
// loss bitwise identical to the 1D run at equal world, under both kernel
// backends, while actually exercising the hierarchical inter-node path.
#include <gtest/gtest.h>

#include <cstring>

#include "core/fpdt_trainer.h"
#include "data/synthetic_corpus.h"
#include "kernels/backend.h"
#include "nn/model.h"
#include "parallel/grid2d.h"

namespace fpdt {
namespace {

using parallel::Grid2D;

TEST(Grid2DValidityTest, RulesAndDegenerate) {
  std::string why;
  // 1D degenerate: head_degree <= 0 is always valid.
  EXPECT_TRUE(Grid2D::valid(8, 0, 0, 12, &why));
  EXPECT_TRUE(Grid2D::valid(8, 4, -1, 12, &why));
  // head_degree must divide the world...
  EXPECT_FALSE(Grid2D::valid(8, 0, 3, 12, &why));
  EXPECT_FALSE(why.empty());
  // ...and the model's head count (whole heads per head-axis rank)...
  EXPECT_FALSE(Grid2D::valid(8, 0, 8, 12, &why));
  EXPECT_FALSE(why.empty());
  // ...and ranks_per_node when a physical grid is declared, so the fast
  // axis stays on-node.
  EXPECT_FALSE(Grid2D::valid(8, 2, 4, 12, &why));
  EXPECT_FALSE(why.empty());
  EXPECT_TRUE(Grid2D::valid(8, 4, 4, 12, &why)) << why;
  EXPECT_TRUE(Grid2D::valid(8, 4, 2, 12, &why)) << why;
  // No physical grid declared: any divisor pair works.
  EXPECT_TRUE(Grid2D::valid(8, 0, 4, 12, &why)) << why;
}

TEST(Grid2DTest, CoordinateMapsRoundTrip) {
  const Grid2D g(8, 4, 2, 12);
  EXPECT_EQ(g.seq_degree(), 4);
  EXPECT_EQ(g.head_degree(), 2);
  EXPECT_TRUE(g.is_2d());
  EXPECT_EQ(g.heads_per_rank(), 6);
  for (int r = 0; r < g.world(); ++r) {
    // Head axis fast: rank = seq * head_degree + head.
    EXPECT_EQ(g.head_of(r), r % 2);
    EXPECT_EQ(g.seq_of(r), r / 2);
    EXPECT_EQ(g.rank_at(g.seq_of(r), g.head_of(r)), r);
  }
  // Fast axis contiguous, slow axis strided.
  EXPECT_EQ(g.head_members(1), (std::vector<int>{2, 3}));
  EXPECT_EQ(g.seq_members(1), (std::vector<int>{1, 3, 5, 7}));
  EXPECT_TRUE(g.head_axis_on_node(4));
  EXPECT_TRUE(g.head_axis_on_node(2));

  const Grid2D one_d(4, 0, 0, 8);
  EXPECT_FALSE(one_d.is_2d());
  EXPECT_EQ(one_d.seq_degree(), 4);
  EXPECT_EQ(one_d.heads_per_rank(), 8);
}

TEST(Grid2DTest, FromConfigReadsTheKnobs) {
  core::FpdtConfig cfg;
  cfg.ranks_per_node = 2;
  cfg.head_degree = 2;
  const Grid2D g = Grid2D::from_config(cfg, 4, 4);
  EXPECT_EQ(g.seq_degree(), 2);
  EXPECT_EQ(g.head_degree(), 2);
  core::FpdtConfig bad = cfg;
  bad.head_degree = 3;
  EXPECT_THROW(Grid2D::from_config(bad, 4, 4), FpdtError);
}

// The tentpole contract, end to end: the 2×2 grid (2 emulated nodes × 2
// ranks, head axis on-node) trains through HierarchicalProcessGroup and the
// head-axis re-shard, yet its loss is bitwise identical to the flat 1D run —
// head_degree affects routing and attribution, never payloads.
TEST(Grid2DTrainerTest, LossBitwiseIdenticalTo1DUnderBothBackends) {
  const nn::ModelConfig mc = nn::tiny_gpt(64, 2, 4, 96);
  const int world = 4;
  const std::int64_t chunks = 2, chunk_tokens = 32;
  const std::int64_t s_global = world * chunks * chunk_tokens;
  for (const char* backend : {"scalar", "simd"}) {
    kernels::BackendScope scope(backend);
    double losses[2] = {0.0, 0.0};
    std::int64_t inter_bytes = -1;
    for (int g = 0; g < 2; ++g) {
      core::FpdtConfig cfg;
      cfg.chunks_per_rank = chunks;
      if (g == 1) {
        cfg.ranks_per_node = 2;
        cfg.head_degree = 2;
      }
      nn::Model model(mc, 1234);
      core::FpdtTrainer trainer(model, world, cfg);
      data::SyntheticCorpus corpus(mc.vocab, 7);
      losses[g] = trainer.train_step_grads(corpus.sample(s_global + 1));
      if (g == 1) inter_bytes = trainer.env().pg().link_stats().inter_bytes;
    }
    EXPECT_EQ(std::memcmp(&losses[0], &losses[1], sizeof(double)), 0)
        << backend << ": 1D loss " << losses[0] << " vs 2D loss " << losses[1];
    // ...and the 2D run really crossed the emulated node boundary.
    EXPECT_GT(inter_bytes, 0) << backend;
  }
}

}  // namespace
}  // namespace fpdt
