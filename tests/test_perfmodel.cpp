// Memory-model and evaluation properties at paper scale: ZeRO partitioning
// arithmetic, strategy orderings the paper's tables depend on, capacity
// search, and cross-checks of headline numbers (Table 1 / Table 3 anchors).
#include <gtest/gtest.h>

#include "nn/model_config.h"
#include "perfmodel/evaluate.h"
#include "perfmodel/memory_model.h"
#include "perfmodel/strategy.h"

namespace fpdt {
namespace {

using perfmodel::estimate_memory;
using perfmodel::evaluate;
using perfmodel::max_sequence;
using perfmodel::MemoryBreakdown;
using perfmodel::SeqScheme;
using perfmodel::Strategy;

TEST(StrategyTest, Labels) {
  EXPECT_EQ(Strategy::fpdt().label(), "FPDT w. offload+ZeRO-3+AC(OC)");
  EXPECT_EQ(Strategy::fpdt_chunking_only().label(), "FPDT w. chunking+ZeRO-3+AC(OC)");
  EXPECT_EQ(Strategy::megatron_tp().label(), "TP");
  EXPECT_EQ(Strategy::ulysses(2, true, false).label(), "Ulysses+ZeRO-2+AC");
}

TEST(MemoryModelTest, ZeroStagesMonotone) {
  const nn::ModelConfig cfg = nn::llama_8b();
  std::int64_t prev = -1;
  for (int stage = 0; stage <= 3; ++stage) {
    Strategy st = Strategy::ulysses(stage);
    const MemoryBreakdown mb = estimate_memory(cfg, st, 8, 64 * 1024);
    const std::int64_t model_state = mb.params + mb.grads + mb.optimizer;
    if (prev >= 0) {
      EXPECT_LE(model_state, prev) << "stage " << stage;
    }
    prev = model_state;
  }
}

TEST(MemoryModelTest, Zero3ModelStateIs16BytesPerParamSharded) {
  const nn::ModelConfig cfg = nn::llama_8b();
  Strategy st = Strategy::ulysses(3);
  const MemoryBreakdown mb = estimate_memory(cfg, st, 8, 64 * 1024);
  EXPECT_EQ(mb.params + mb.grads + mb.optimizer, 16 * cfg.param_count() / 8);
}

TEST(MemoryModelTest, FpdtWorkingSetIndependentOfSequence) {
  // The whole point of the design: at fixed chunk size, the transient
  // working set does not grow with s (only caches/checkpoints do, and they
  // live on host).
  const nn::ModelConfig cfg = nn::llama_8b();
  Strategy st = Strategy::fpdt();
  const MemoryBreakdown a = estimate_memory(cfg, st, 8, 256 * 1024);
  const MemoryBreakdown b = estimate_memory(cfg, st, 8, 4 * 1024 * 1024);
  EXPECT_EQ(a.working_set, b.working_set);
  EXPECT_GT(b.host_bytes, a.host_bytes);
}

TEST(MemoryModelTest, UlyssesWorkingSetGrowsWithSequence) {
  const nn::ModelConfig cfg = nn::llama_8b();
  Strategy st = Strategy::ulysses(3, true, true);
  const MemoryBreakdown a = estimate_memory(cfg, st, 8, 128 * 1024);
  const MemoryBreakdown b = estimate_memory(cfg, st, 8, 512 * 1024);
  EXPECT_EQ(b.working_set, 4 * a.working_set);
  EXPECT_EQ(b.logits_spike, 4 * a.logits_spike);
}

TEST(MemoryModelTest, FpdtLogitsSpikeFollowsChunkRule) {
  // vocab/hidden × 2 chunks ⇒ spike of 2·s_local·d FP32 values.
  const nn::ModelConfig cfg = nn::llama_8b();
  const MemoryBreakdown mb = estimate_memory(cfg, Strategy::fpdt(), 8, 1024 * 1024);
  EXPECT_EQ(mb.logits_spike, 2 * (1024 * 1024 / 8) * cfg.d_model);
}

TEST(MemoryModelTest, ChunkingOnlyKeepsCacheOnDevice) {
  const nn::ModelConfig cfg = nn::llama_8b();
  const MemoryBreakdown off = estimate_memory(cfg, Strategy::fpdt(), 4, 512 * 1024);
  const MemoryBreakdown chunk =
      estimate_memory(cfg, Strategy::fpdt_chunking_only(), 4, 512 * 1024);
  EXPECT_GT(chunk.working_set, off.working_set);
  EXPECT_LT(chunk.host_bytes, off.host_bytes);  // no chunk cache on host
}

// ---- Paper anchors -----------------------------------------------------------

TEST(PaperAnchorsTest, Table3MaxLengths) {
  const nn::ModelConfig cfg = nn::llama_8b();
  const sim::HardwareSpec hw = sim::a100_80g_node();
  EXPECT_EQ(max_sequence(cfg, Strategy::megatron_tp(false, false), 8, hw), 32 * 1024);
  EXPECT_EQ(max_sequence(cfg, Strategy::megatron_tp(true, false), 8, hw), 128 * 1024);
  EXPECT_EQ(max_sequence(cfg, Strategy::megatron_tp(true, true), 8, hw), 512 * 1024);
  EXPECT_EQ(max_sequence(cfg, Strategy::ulysses(3, false, false), 8, hw), 64 * 1024);
  EXPECT_EQ(max_sequence(cfg, Strategy::ulysses(3, true, true), 8, hw), 512 * 1024);
  EXPECT_EQ(max_sequence(cfg, Strategy::fpdt(), 8, hw), 4 * 1024 * 1024);
}

TEST(PaperAnchorsTest, Table1SelectedCells) {
  const sim::HardwareSpec a80 = sim::a100_80g_node();
  // 8B on 4x A100-80G reaches 2M (the headline claim).
  EXPECT_GE(max_sequence(nn::llama_8b(), Strategy::fpdt(), 4, a80), 2 * 1024 * 1024);
  // 2.7B on 4x A100-80G reaches 4M.
  EXPECT_GE(max_sequence(nn::gpt_2p7b(), Strategy::fpdt(), 4, a80), 4 * 1024 * 1024);
  // 70B needs 32 GPUs for 4M.
  EXPECT_GE(max_sequence(nn::llama_70b(), Strategy::fpdt(), 32, a80), 4 * 1024 * 1024);
  // 70B cannot even hold model state on 8 GPUs.
  EXPECT_EQ(max_sequence(nn::llama_70b(), Strategy::fpdt(), 8, a80), 0);
}

TEST(PaperAnchorsTest, FpdtBeatsUlyssesMaxLengthBy8x) {
  const nn::ModelConfig cfg = nn::llama_8b();
  const sim::HardwareSpec hw = sim::a100_80g_node();
  const std::int64_t ul = max_sequence(cfg, Strategy::ulysses(3, true, true), 8, hw);
  const std::int64_t fp = max_sequence(cfg, Strategy::fpdt(), 8, hw);
  EXPECT_GE(fp / ul, 8);
}

TEST(PaperAnchorsTest, FpdtMfuOver55Percent) {
  const nn::ModelConfig cfg = nn::llama_8b();
  const sim::HardwareSpec hw = sim::a100_80g_node();
  const perfmodel::Evaluation ev = evaluate(cfg, Strategy::fpdt(), 8, 4 * 1024 * 1024, hw);
  EXPECT_GT(ev.mfu, 0.50);
  EXPECT_LT(ev.mfu, 0.70);
}

TEST(PaperAnchorsTest, EvaluateFallsBackWhenHostBound) {
  // At 4M on 8 GPUs the per-layer forward caches exceed the node's host
  // memory; evaluate() must transparently fall back to recompute mode.
  const nn::ModelConfig cfg = nn::llama_8b();
  const sim::HardwareSpec hw = sim::a100_80g_node();
  const perfmodel::Evaluation ev = evaluate(cfg, Strategy::fpdt(), 8, 4 * 1024 * 1024, hw);
  EXPECT_TRUE(ev.fits);
  EXPECT_TRUE(ev.recompute_fallback);
  const perfmodel::Evaluation small = evaluate(cfg, Strategy::fpdt(), 8, 256 * 1024, hw);
  EXPECT_FALSE(small.recompute_fallback);
}

TEST(PaperAnchorsTest, ChunkSweetSpotNear64K) {
  // Fig. 12 at 256K global on 4 GPUs: 64K chunks pay almost no MFU versus
  // no chunking at all, while tiny chunks (8K) visibly starve the GPU, and
  // the chunked working set is far below the monolithic one — jointly, the
  // reason the paper defaults to 64K.
  const nn::ModelConfig cfg = nn::gpt_2p7b();
  const sim::HardwareSpec hw = sim::a100_80g_node();
  auto eval_at = [&](std::int64_t chunk) {
    Strategy st = Strategy::fpdt();
    st.fpdt_chunk_tokens = chunk;
    return evaluate(cfg, st, 4, 256 * 1024, hw);
  };
  const perfmodel::Evaluation mono = eval_at(256 * 1024);
  const perfmodel::Evaluation sweet = eval_at(64 * 1024);
  const perfmodel::Evaluation tiny = eval_at(8 * 1024);
  EXPECT_GT(sweet.mfu, mono.mfu * 0.95);   // pipeline hides the chunk overhead
  EXPECT_LT(tiny.mfu, sweet.mfu * 0.995);  // GPU-starving regime (Fig. 8)
  EXPECT_LT(sweet.memory.working_set, mono.memory.working_set / 2);
}

TEST(PaperAnchorsTest, FpdtChunks) {
  Strategy st = Strategy::fpdt();
  EXPECT_EQ(perfmodel::fpdt_chunks(st, 256 * 1024), 4);
  EXPECT_EQ(perfmodel::fpdt_chunks(st, 32 * 1024), 1);  // chunk > sequence
}

}  // namespace
}  // namespace fpdt
