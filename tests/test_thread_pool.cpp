// Thread-pool semantics and, critically, determinism of the forked SPMD
// execution: the parallel per-rank attention loops must produce bit-identical
// results to serial execution (per-rank state is disjoint; reduction orders
// are unchanged).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/check.h"
#include "common/thread_pool.h"
#include "core/fpdt_trainer.h"
#include "data/synthetic_corpus.h"
#include "nn/model.h"
#include "tests/test_util.h"

namespace fpdt {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> counts(64);
  parallel_for_ranks(64, [&](int i) { counts[static_cast<std::size_t>(i)]++; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, ZeroAndOneDegenerate) {
  int calls = 0;
  parallel_for_ranks(0, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for_ranks(1, [&](int i) {
    EXPECT_EQ(i, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ExceptionsPropagate) {
  EXPECT_THROW(
      parallel_for_ranks(8, [&](int i) {
        if (i == 3) throw FpdtError("worker failure");
      }),
      FpdtError);
}

TEST(ThreadPoolTest, FailFastCancelsUnstartedBodies) {
  // After one body throws, indices not yet claimed must never start: with
  // slow bodies and few workers, far fewer than n bodies run. Without the
  // cancellation flag all 64 would execute.
  const int saved = parallel_workers();
  set_parallel_workers(4);
  constexpr int kN = 64;
  std::atomic<int> executed{0};
  EXPECT_THROW(
      parallel_for_ranks(kN,
                         [&](int i) {
                           executed.fetch_add(1);
                           if (i == 0) throw FpdtError("injected worker failure");
                           std::this_thread::sleep_for(std::chrono::milliseconds(2));
                         }),
      FpdtError);
  set_parallel_workers(saved);
  // Index 0 runs on some worker's first claim; the other three workers get
  // at most a couple of bodies in before the flag is visible. Anything well
  // below kN proves cancellation; allow generous slack for scheduling.
  EXPECT_LT(executed.load(), kN / 2);
  EXPECT_GE(executed.load(), 1);
}

TEST(ThreadPoolTest, WorkerCountConfigurable) {
  const int saved = parallel_workers();
  set_parallel_workers(1);
  EXPECT_EQ(parallel_workers(), 1);
  int order_check = 0;
  // With one worker, execution is in index order.
  parallel_for_ranks(8, [&](int i) {
    EXPECT_EQ(i, order_check++);
  });
  set_parallel_workers(saved);
  EXPECT_THROW(set_parallel_workers(0), FpdtError);
}

TEST(ThreadPoolTest, FpdtStepBitIdenticalSerialVsParallel) {
  // The headline determinism property: an FPDT training step forked across
  // threads produces exactly the same loss and gradients as serial.
  nn::ModelConfig cfg = nn::tiny_gpt(32, 2, 4, 48);
  data::SyntheticCorpus c1(cfg.vocab, 9), c2(cfg.vocab, 9);
  const auto t1 = c1.sample(65);
  const auto t2 = c2.sample(65);
  ASSERT_EQ(t1, t2);

  const int saved = parallel_workers();
  core::FpdtConfig fcfg;
  fcfg.chunks_per_rank = 4;

  set_parallel_workers(1);
  nn::Model serial(cfg, 55);
  core::FpdtTrainer serial_trainer(serial, 4, fcfg);
  const double serial_loss = serial_trainer.train_step_grads(t1);

  set_parallel_workers(8);
  nn::Model parallel(cfg, 55);
  core::FpdtTrainer parallel_trainer(parallel, 4, fcfg);
  const double parallel_loss = parallel_trainer.train_step_grads(t2);
  set_parallel_workers(saved);

  EXPECT_DOUBLE_EQ(serial_loss, parallel_loss);
  std::vector<Tensor> gs;
  serial.visit_params([&](nn::Param& p) { gs.push_back(p.grad); });
  std::size_t i = 0;
  parallel.visit_params([&](nn::Param& p) {
    EXPECT_EQ(max_abs_diff(gs[i], p.grad), 0.0) << p.name;  // bit-identical
    ++i;
  });
}

TEST(ThreadPoolTest, HostPoolAccountingConsistentUnderConcurrency) {
  // Stress the shared host pool from many threads; every charge must be
  // matched and the final occupancy must return to zero.
  runtime::MemoryPool pool("host", -1);
  parallel_for_ranks(16, [&](int) {
    for (int k = 0; k < 200; ++k) {
      runtime::Allocation a(&pool, 64);
      runtime::Allocation b(&pool, 128);
    }
  });
  EXPECT_EQ(pool.used(), 0);
  EXPECT_GE(pool.peak(), 192);
}

}  // namespace
}  // namespace fpdt
