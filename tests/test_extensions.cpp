// Tests for the extension features: AdamW decoupled weight decay, loss-mask
// padding (kIgnoreTarget), the forward-pipeline sim builder, the MsT
// strategy, and the gradient-reduce-spike knob.
#include <gtest/gtest.h>

#include "core/fpdt_trainer.h"
#include "nn/adam.h"
#include "nn/lm_head.h"
#include "nn/model.h"
#include "perfmodel/evaluate.h"
#include "sim/timeline.h"
#include "tests/test_util.h"

namespace fpdt {
namespace {

// ---- AdamW -------------------------------------------------------------------

TEST(AdamWTest, DecayShrinksWeightsWithZeroGrad) {
  nn::Param p("p", Tensor::full({3}, 2.0f));
  nn::Adam opt(/*lr=*/0.1, 0.9, 0.95, 1e-8, /*weight_decay=*/0.5);
  // Zero gradient: the only update is the decoupled decay w -= lr*wd*w.
  opt.step([&](const nn::ParamVisitor& f) { f(p); });
  for (float w : p.value.span()) EXPECT_NEAR(w, 2.0f * (1.0f - 0.05f), 1e-5);
}

TEST(AdamWTest, NoDecayByDefault) {
  nn::Param p("p", Tensor::full({2}, 3.0f));
  nn::Adam opt(0.1);
  opt.step([&](const nn::ParamVisitor& f) { f(p); });
  for (float w : p.value.span()) EXPECT_FLOAT_EQ(w, 3.0f);
}

TEST(AdamWTest, DecayRegularisesTraining) {
  // Same model/data; the decayed run ends with a smaller weight norm.
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 2, 32);
  nn::Model plain(cfg, 5), decayed(cfg, 5);
  nn::Adam o1(1e-3, 0.9, 0.95, 1e-8, 0.0);
  nn::Adam o2(1e-3, 0.9, 0.95, 1e-8, 0.1);
  std::vector<std::int32_t> tokens = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  for (int s = 0; s < 20; ++s) {
    plain.train_step_grads(tokens);
    o1.step([&](const nn::ParamVisitor& f) { plain.visit_params(f); });
    decayed.train_step_grads(tokens);
    o2.step([&](const nn::ParamVisitor& f) { decayed.visit_params(f); });
  }
  double norm_plain = 0, norm_decayed = 0;
  plain.visit_params([&](nn::Param& p) { norm_plain += l2_norm(p.value); });
  decayed.visit_params([&](nn::Param& p) { norm_decayed += l2_norm(p.value); });
  EXPECT_LT(norm_decayed, norm_plain);
}

// ---- Loss masking --------------------------------------------------------------

TEST(IgnoreTargetTest, MaskedPositionsContributeNothing) {
  Rng rng(1);
  nn::LmHead head_a("h", 8, 16, rng);
  Rng rng2(1);
  nn::LmHead head_b("h", 8, 16, rng2);
  Rng xrng(2);
  Tensor x = Tensor::randn({4, 8}, xrng);
  // (a) full sequence with two masked positions.
  nn::LossResult masked = head_a.forward_backward(x, {3, nn::kIgnoreTarget, 7,
                                                      nn::kIgnoreTarget},
                                                  1, 2);
  // (b) only the two real positions, same loss scale.
  Tensor x_real({2, 8});
  x_real.slice0(0, 1).copy_from(x.slice0(0, 1));
  x_real.slice0(1, 2).copy_from(x.slice0(2, 3));
  nn::LossResult real = head_b.forward_backward(x_real, {3, 7}, 1, 2);

  EXPECT_EQ(masked.token_count, 2);
  EXPECT_NEAR(masked.mean_loss(), real.mean_loss(), 1e-6);
  // Gradients at masked rows are exactly zero.
  EXPECT_EQ(l2_norm(masked.dx.slice0(1, 2).clone()), 0.0);
  EXPECT_EQ(l2_norm(masked.dx.slice0(3, 4).clone()), 0.0);
  // Gradients at real rows match the unmasked run.
  EXPECT_LT(max_abs_diff(masked.dx.slice0(0, 1).clone(), real.dx.slice0(0, 1).clone()), 1e-6);
  EXPECT_LT(max_abs_diff(masked.dx.slice0(2, 3).clone(), real.dx.slice0(1, 2).clone()), 1e-6);
  // Weight grads identical too.
  EXPECT_LT(max_abs_diff(head_a.weight().grad, head_b.weight().grad), 1e-6);
}

TEST(IgnoreTargetTest, AllMaskedIsZeroLoss) {
  Rng rng(3);
  nn::LmHead head("h", 8, 16, rng);
  Tensor x = Tensor::randn({3, 8}, rng);
  nn::LossResult res = head.forward_backward(
      x, {nn::kIgnoreTarget, nn::kIgnoreTarget, nn::kIgnoreTarget}, 1, 3);
  EXPECT_EQ(res.token_count, 0);
  EXPECT_EQ(res.mean_loss(), 0.0);
  EXPECT_EQ(l2_norm(res.dx), 0.0);
}

TEST(IgnoreTargetTest, WorksThroughChunkedHead) {
  Rng rng(4), rng2(4);
  nn::LmHead a("h", 8, 32, rng), b("h", 8, 32, rng2);
  Rng xrng(5);
  Tensor x = Tensor::randn({8, 8}, xrng);
  std::vector<std::int32_t> targets = {1, nn::kIgnoreTarget, 3, 4,
                                       nn::kIgnoreTarget, 6, 7, 8};
  nn::LossResult mono = a.forward_backward(x, targets, 1, 8);
  nn::LossResult chunked = b.forward_backward(x, targets, 4, 8);
  EXPECT_NEAR(mono.mean_loss(), chunked.mean_loss(), 1e-6);
  EXPECT_LT(max_abs_diff(mono.dx, chunked.dx), 1e-6);
}

TEST(IgnoreTargetTest, PaddedFpdtTrainingStep) {
  // A padded sequence trained through the full FPDT pipeline equals the
  // unpadded sequence's loss (the pad tail contributes nothing).
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 32);
  nn::Model model(cfg, 7);
  core::FpdtConfig fcfg;
  fcfg.chunks_per_rank = 2;
  core::FpdtTrainer trainer(model, 2, fcfg);
  // 12 real tokens + pad to 16 inputs. Inputs use token 0 as pad; labels
  // use kIgnoreTarget. Build the padded stream by hand: FpdtTrainer shards
  // (inputs, labels) from a token stream, so append pad tokens whose labels
  // will be the pad token as well — mask by training on the label stream
  // via the generic step and comparing the loss to the unpadded reference
  // on the same 12 tokens is not exactly expressible through the plain
  // tokens API; this test exercises the head-level contract instead.
  std::vector<std::int32_t> tokens = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 1, 1, 1, 1};
  EXPECT_NO_THROW(trainer.train_step_grads(tokens));
}

// ---- Forward-sim builder --------------------------------------------------------

TEST(ForwardSimTest, BuilderProducesRunSimWithAllStreams) {
  const nn::ModelConfig cfg = nn::llama_8b();
  const sim::CostModel cm(sim::a100_80g_node(), 4);
  sim::PipelineSim ps = sim::build_fpdt_forward_sim(cfg, cm, 64 * 1024, 4, true, true);
  EXPECT_EQ(ps.resource_count(), 4);
  EXPECT_GT(ps.task_count(), 20u);
  EXPECT_GT(ps.resource_busy(0), 0.0);  // compute
  EXPECT_GT(ps.resource_busy(1), 0.0);  // h2d (fetches)
  EXPECT_GT(ps.resource_busy(2), 0.0);  // d2h (offloads)
  EXPECT_GT(ps.resource_busy(3), 0.0);  // comm
  const std::string json = ps.chrome_trace_json();
  EXPECT_NE(json.find("attn.3.0"), std::string::npos);
}

TEST(ForwardSimTest, TraceMatchesLayerTimingForward) {
  const nn::ModelConfig cfg = nn::gpt_2p7b();
  const sim::CostModel cm(sim::a100_80g_node(), 4);
  sim::PipelineSim ps = sim::build_fpdt_forward_sim(cfg, cm, 64 * 1024, 4, true, true);
  double makespan = 0;
  for (std::size_t i = 0; i < ps.task_count(); ++i) {
    makespan = std::max(makespan, ps.task(static_cast<int>(i)).finish);
  }
  const sim::LayerTiming t = sim::fpdt_layer_timing(cfg, cm, 64 * 1024, 4, true, true, true);
  EXPECT_NEAR(makespan, t.forward_s, 1e-9);
}

// ---- MsT strategy and grad-spike knob --------------------------------------------

TEST(MstTest, ExtendsUlyssesButNotAsFarAsFpdt) {
  const nn::ModelConfig cfg = nn::gpt_6p7b();  // MHA: attention spike dominates
  const sim::HardwareSpec hw = sim::a100_80g_node();
  using perfmodel::Strategy;
  const std::int64_t ul = perfmodel::max_sequence(cfg, Strategy::ulysses(3, true, true), 4, hw);
  const std::int64_t mst = perfmodel::max_sequence(cfg, Strategy::mst(), 4, hw);
  const std::int64_t fp = perfmodel::max_sequence(cfg, Strategy::fpdt(), 4, hw);
  EXPECT_GT(mst, ul);
  EXPECT_GT(fp, mst);
}

TEST(MstTest, LogitsSpikeChunked) {
  const nn::ModelConfig cfg = nn::llama_8b();
  const auto mb = perfmodel::estimate_memory(cfg, perfmodel::Strategy::mst(), 8, 512 * 1024);
  const auto ul =
      perfmodel::estimate_memory(cfg, perfmodel::Strategy::ulysses(3, true, true), 8, 512 * 1024);
  EXPECT_LT(mb.logits_spike, ul.logits_spike / 50);
}

TEST(GradSpikeTest, ErodesMaxSequence) {
  const nn::ModelConfig cfg = nn::gpt_13b();
  const sim::HardwareSpec hw = sim::a100_80g_node();
  perfmodel::Strategy clean = perfmodel::Strategy::fpdt();
  perfmodel::Strategy spiky = perfmodel::Strategy::fpdt();
  spiky.grad_reduce_bucket_layers = cfg.n_layer;  // worst case: whole model fp32
  const std::int64_t clean_len = perfmodel::max_sequence(cfg, clean, 8, hw);
  const std::int64_t spiky_len = perfmodel::max_sequence(cfg, spiky, 8, hw);
  EXPECT_LT(spiky_len, clean_len);
  EXPECT_GT(spiky_len, 0);
}

}  // namespace
}  // namespace fpdt
