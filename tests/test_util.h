// Shared helpers for the test suite: finite-difference gradient checking and
// random tensor construction.
#pragma once

#include <gtest/gtest.h>

#include <functional>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace fpdt::testing {

// Central finite difference of `loss` wrt `param`, compared against
// `analytic` on `probes` randomly chosen coordinates. `loss` must be a pure
// function of the current contents of *param.
inline void expect_grad_matches(Tensor& param, const Tensor& analytic,
                                const std::function<double()>& loss, int probes, Rng& rng,
                                double eps = 1e-3, double tol = 2e-2) {
  ASSERT_EQ(param.numel(), analytic.numel());
  for (int p = 0; p < probes; ++p) {
    const std::int64_t i =
        static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(param.numel())));
    const float saved = param.data()[i];
    param.data()[i] = saved + static_cast<float>(eps);
    const double up = loss();
    param.data()[i] = saved - static_cast<float>(eps);
    const double down = loss();
    param.data()[i] = saved;
    const double fd = (up - down) / (2.0 * eps);
    const double an = static_cast<double>(analytic.data()[i]);
    const double scale = std::max({std::abs(fd), std::abs(an), 1e-4});
    EXPECT_NEAR(fd, an, tol * scale) << "coordinate " << i;
  }
}

inline Tensor random_tensor(std::vector<std::int64_t> shape, Rng& rng, double stddev = 1.0) {
  return Tensor::randn(std::move(shape), rng, 0.0, stddev);
}

}  // namespace fpdt::testing
