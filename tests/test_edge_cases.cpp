// Edge cases and error paths across the API surface: geometry boundaries,
// GQA variants, RoPE position offsets through distributed execution,
// optimizer state isolation, and the smaller utilities.
#include <gtest/gtest.h>

#include <limits>

#include <sstream>

#include "comm/process_group.h"
#include "common/table.h"
#include "core/fpdt_block.h"
#include "data/rank_ordinal.h"
#include "nn/adam.h"
#include "nn/attention.h"
#include "nn/lm_head.h"
#include "nn/model.h"
#include "nn/rope.h"
#include "tests/test_util.h"

namespace fpdt {
namespace {

// ---- Tensor error paths -----------------------------------------------------

TEST(TensorEdgeTest, SliceBoundsChecked) {
  Tensor t({4, 2});
  EXPECT_THROW(t.slice0(3, 2), FpdtError);   // begin > end
  EXPECT_THROW(t.slice0(0, 5), FpdtError);   // end > dim
  EXPECT_THROW(t.narrow(0, 2, 3), FpdtError);
  EXPECT_THROW(t.narrow(5, 0, 1), FpdtError);
  EXPECT_NO_THROW(t.slice0(4, 4));  // empty tail view is legal
}

TEST(TensorEdgeTest, ZeroSizedTensors) {
  Tensor t({0, 5});
  EXPECT_EQ(t.numel(), 0);
  Tensor s = t.slice0(0, 0);
  EXPECT_EQ(s.numel(), 0);
  EXPECT_EQ(l2_norm(t), 0.0);
}

TEST(TensorEdgeTest, PermuteValidation) {
  Tensor t({2, 3, 4});
  EXPECT_THROW(t.permute({0, 1}), FpdtError);  // rank mismatch
  Tensor same = t.permute({0, 1, 2});
  EXPECT_LT(max_abs_diff(same, t), 1e-9);
}

TEST(TensorEdgeTest, FromValuesSizeChecked) {
  EXPECT_THROW(Tensor::from_values({2, 2}, {1.0f, 2.0f}), FpdtError);
}

// ---- Collectives: GQA head counts -------------------------------------------

class GqaAllToAllParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GqaAllToAllParam, KvHeadsRoundTrip) {
  auto [P, hk] = GetParam();
  if (hk % P != 0) GTEST_SKIP() << "kv heads must divide world";
  comm::ProcessGroup pg(P);
  Rng rng(1);
  std::vector<Tensor> kv;
  for (int r = 0; r < P; ++r) kv.push_back(Tensor::randn({6, hk, 4}, rng));
  auto global = pg.all_to_all_heads_to_seq(kv);
  EXPECT_EQ(global[0].dim(1), hk / P);
  auto back = pg.all_to_all_seq_to_heads(global);
  for (int r = 0; r < P; ++r) {
    EXPECT_LT(max_abs_diff(back[static_cast<std::size_t>(r)], kv[static_cast<std::size_t>(r)]),
              1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GqaAllToAllParam,
                         ::testing::Values(std::tuple{2, 2}, std::tuple{2, 4},
                                           std::tuple{4, 4}, std::tuple{4, 8},
                                           std::tuple{8, 8}));

// ---- RoPE offsets through chunked attention ----------------------------------

TEST(RopeOffsetTest, ChunkedProjectionMatchesMonolithic) {
  // Projecting a chunk at its global offset must equal slicing the
  // monolithic projection — the property that makes FPDT's per-chunk RoPE
  // correct.
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 32);
  Rng wrng(2);
  nn::AttentionLayer attn("a", cfg, wrng);
  Rng xrng(3);
  Tensor xn = Tensor::randn({24, cfg.d_model}, xrng);
  nn::AttentionLayer::Qkv full = attn.project_qkv(xn, 0);
  for (std::int64_t start : {0, 8, 16}) {
    nn::AttentionLayer::Qkv chunk = attn.project_qkv(xn.slice0(start, start + 8), start);
    EXPECT_LT(max_abs_diff(chunk.q, full.q.slice0(start, start + 8).clone()), 1e-5)
        << "offset " << start;
    EXPECT_LT(max_abs_diff(chunk.k, full.k.slice0(start, start + 8).clone()), 1e-5);
  }
}

TEST(RopeOffsetTest, LargeOffsetsStayFinite) {
  Rng rng(4);
  Tensor x = Tensor::randn({4, 2, 16}, rng);
  nn::rope_apply_(x, (1LL << 40), 10000.0);  // positions far beyond any context
  for (float v : x.span()) EXPECT_TRUE(std::isfinite(v));
}

TEST(RopeOffsetTest, OddHeadDimRejected) {
  Tensor x({2, 1, 7});
  EXPECT_THROW(nn::rope_apply_(x, 0, 10000.0), FpdtError);
}

// ---- Attention geometry edge cases -------------------------------------------

TEST(AttentionEdgeTest, SingleTokenSequence) {
  Rng rng(5);
  Tensor q = Tensor::randn({1, 2, 8}, rng);
  Tensor k = Tensor::randn({1, 2, 8}, rng);
  Tensor v = Tensor::randn({1, 2, 8}, rng);
  nn::AttentionOutput out = nn::reference_attention_forward(q, k, v, true);
  // Softmax over one element: output == v.
  EXPECT_LT(max_abs_diff(out.out, v), 1e-6);
}

TEST(AttentionEdgeTest, SingleHeadSingleDim) {
  Rng rng(6);
  Tensor q = Tensor::randn({3, 1, 2}, rng);
  Tensor k = Tensor::randn({3, 1, 2}, rng);
  Tensor v = Tensor::randn({3, 1, 2}, rng);
  nn::OnlineAttnState st = nn::OnlineAttnState::create(3, 1, 2);
  nn::online_attn_step(st, q, k, v, true, 0, 0);
  nn::AttentionOutput online = nn::online_attn_finalize(st);
  nn::AttentionOutput ref = nn::reference_attention_forward(q, k, v, true);
  EXPECT_LT(max_abs_diff(online.out, ref.out), 1e-5);
}

TEST(AttentionEdgeTest, MismatchedShapesRejected) {
  Tensor q({4, 2, 8}), k({4, 2, 8}), v({4, 2, 4});
  EXPECT_THROW(nn::reference_attention_forward(q, k, v, true), FpdtError);
  Tensor k_bad_heads({4, 3, 8}), v2({4, 3, 8});
  EXPECT_THROW(nn::reference_attention_forward(q, k_bad_heads, v2, true), FpdtError);
}

TEST(AttentionEdgeTest, FinalizeWithoutAnyStepYieldsIdentityElement) {
  // A row that attended to nothing (no step folded, or every folded chunk
  // fully causally masked — legitimate under chunked prefill) finalises to
  // the online-softmax identity element instead of aborting: zero output
  // row with lse = -inf.
  nn::OnlineAttnState st = nn::OnlineAttnState::create(2, 1, 4);
  nn::AttentionOutput out = nn::online_attn_finalize(st);
  for (std::int64_t r = 0; r < 2; ++r) {
    EXPECT_EQ(out.lse.at({r, 0}), -std::numeric_limits<float>::infinity());
    for (std::int64_t p = 0; p < 4; ++p) EXPECT_EQ(out.out.at({r, 0, p}), 0.0f);
  }
}

// ---- Adam state isolation -----------------------------------------------------

TEST(AdamEdgeTest, StateKeyedByName) {
  // Two parameters with different names get independent moments even with
  // identical shapes and gradients.
  nn::Param a("layer.a", Tensor::zeros({2}));
  nn::Param b("layer.b", Tensor::zeros({2}));
  nn::Adam opt(0.1);
  a.grad.fill_(1.0f);
  b.grad.fill_(1.0f);
  opt.step([&](const nn::ParamVisitor& f) {
    f(a);
    f(b);
  });
  // Now update only `a`; `b`'s moments must be untouched on the next step.
  a.grad.fill_(1.0f);
  b.grad.fill_(0.0f);
  opt.step([&](const nn::ParamVisitor& f) {
    f(a);
    f(b);
  });
  EXPECT_LT(a.value.at({0}), b.value.at({0}));  // a moved further down
}

TEST(AdamEdgeTest, GradZeroedAfterStep) {
  nn::Param p("p", Tensor::zeros({3}));
  p.grad.fill_(2.0f);
  nn::Adam opt(0.1);
  opt.step([&](const nn::ParamVisitor& f) { f(p); });
  for (float g : p.grad.span()) EXPECT_EQ(g, 0.0f);
  EXPECT_EQ(opt.step_count(), 1);
}

// ---- LM head edges -------------------------------------------------------------

TEST(LmHeadEdgeTest, SingleToken) {
  Rng rng(7);
  nn::LmHead head("h", 8, 16, rng);
  Tensor x = Tensor::randn({1, 8}, rng);
  nn::LossResult res = head.forward_backward(x, {5}, 4, 1);  // chunks > tokens
  EXPECT_EQ(res.token_count, 1);
  EXPECT_GT(res.mean_loss(), 0.0);
  EXPECT_EQ(res.dx.dim(0), 1);
}

TEST(LmHeadEdgeTest, OutOfVocabTargetRejected) {
  Rng rng(8);
  nn::LmHead head("h", 8, 16, rng);
  Tensor x = Tensor::randn({2, 8}, rng);
  EXPECT_THROW(head.forward_backward(x, {5, 16}, 1, 2), FpdtError);
}

TEST(LmHeadEdgeTest, LossMatchesManualCrossEntropy) {
  Rng rng(9);
  nn::LmHead head("h", 4, 6, rng);
  Tensor x = Tensor::randn({1, 4}, rng);
  nn::LossResult res = head.forward_backward(x, {2}, 1, 1);
  // Manual: logits = x · Wᵀ; loss = lse - logit[target].
  Tensor logits = matmul_nt(x, head.weight().value);
  float m = logits.data()[0];
  for (std::int64_t j = 1; j < 6; ++j) m = std::max(m, logits.data()[j]);
  double z = 0;
  for (std::int64_t j = 0; j < 6; ++j) z += std::exp(static_cast<double>(logits.data()[j] - m));
  const double expected = m + std::log(z) - logits.data()[2];
  EXPECT_NEAR(res.mean_loss(), expected, 1e-5);
}

// ---- Model config / sharder edges ----------------------------------------------

TEST(ConfigEdgeTest, AllNamedModelsResolve) {
  for (const char* name : {"gpt-2.7b", "gpt-6.7b", "gpt-13b", "gpt-30b", "llama-8b",
                           "llama-70b", "tiny-gpt", "tiny-llama"}) {
    const nn::ModelConfig cfg = nn::model_by_name(name);
    EXPECT_GT(cfg.param_count(), 0) << name;
    EXPECT_EQ(cfg.d_model % cfg.n_head, 0) << name;
    EXPECT_EQ(cfg.n_head % cfg.n_kv_head, 0) << name;
  }
}

TEST(SharderEdgeTest, SingleRankSingleChunkIsIdentity) {
  data::RankOrdinalSharder sh(1, 1);
  Rng rng(10);
  Tensor x = Tensor::randn({8, 3}, rng);
  auto locals = sh.shard_tensor(x);
  ASSERT_EQ(locals.size(), 1u);
  EXPECT_LT(max_abs_diff(locals[0], x), 1e-9);
}

TEST(SharderEdgeTest, ManyChunksFewRanks) {
  data::RankOrdinalSharder sh(2, 16);
  Rng rng(11);
  Tensor x = Tensor::randn({64, 2}, rng);
  EXPECT_LT(max_abs_diff(sh.unshard_tensor(sh.shard_tensor(x)), x), 1e-9);
}

// ---- Table / formatting utilities -----------------------------------------------

TEST(TableEdgeTest, RowWidthValidated) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), FpdtError);
  t.add_row({"x", "y"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("x  y"), std::string::npos);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TableEdgeTest, CellFormatters) {
  EXPECT_EQ(cell_f1(1.25), "1.2");
  EXPECT_EQ(cell_f2(1.256), "1.26");
  EXPECT_EQ(cell_pct(0.557), "55.7%");
}

// ---- FPDT executor geometry errors ----------------------------------------------

TEST(FpdtGeometryTest, NonDivisibleChunksRejected) {
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 32);
  Rng wrng(12);
  nn::TransformerBlock block("b", cfg, wrng);
  core::FpdtConfig fcfg;
  fcfg.chunks_per_rank = 3;
  core::FpdtEnv env(2, fcfg);
  core::FpdtBlockExecutor exec(block, 0, env);
  Rng xrng(13);
  // s_local = 8 not divisible by 3 chunks.
  std::vector<Tensor> x = {Tensor::randn({8, cfg.d_model}, xrng),
                           Tensor::randn({8, cfg.d_model}, xrng)};
  EXPECT_THROW(exec.forward(x), FpdtError);
}

TEST(FpdtGeometryTest, WrongRankCountRejected) {
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 32);
  Rng wrng(14);
  nn::TransformerBlock block("b", cfg, wrng);
  core::FpdtConfig fcfg;
  fcfg.chunks_per_rank = 1;
  core::FpdtEnv env(4, fcfg);
  core::FpdtBlockExecutor exec(block, 0, env);
  Rng xrng(15);
  std::vector<Tensor> x = {Tensor::randn({4, cfg.d_model}, xrng)};  // 1 of 4 ranks
  EXPECT_THROW(exec.forward(x), FpdtError);
}

}  // namespace
}  // namespace fpdt
