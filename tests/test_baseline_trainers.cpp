// End-to-end equivalence of the baseline trainers (Ulysses, Megatron-SP,
// Ring Attention) against the single-device reference model, batch-mode
// gradient accumulation, the sequence loader, and the chrome trace export.
#include <gtest/gtest.h>

#include "core/fpdt_trainer.h"
#include "data/loader.h"
#include "nn/adam.h"
#include "nn/model.h"
#include "parallel/baseline_trainer.h"
#include "sim/pipeline_sim.h"
#include "tests/test_util.h"

namespace fpdt {
namespace {

using core::FpdtConfig;
using core::FpdtTrainer;
using parallel::BaselineKind;
using parallel::BaselineTrainer;

struct TrainerCase {
  BaselineKind kind;
  int world;
  bool llama;
};

class BaselineTrainerParam : public ::testing::TestWithParam<TrainerCase> {};

TEST_P(BaselineTrainerParam, StepMatchesReferenceModel) {
  const TrainerCase c = GetParam();
  nn::ModelConfig cfg =
      c.llama ? nn::tiny_llama(32, 2, 4, 4, 48) : nn::tiny_gpt(32, 2, 4, 48);
  nn::Model ref(cfg, 777);
  nn::Model dist(cfg, 777);

  data::SyntheticCorpus corpus(cfg.vocab, 12);
  const std::int64_t s_global = static_cast<std::int64_t>(c.world) * 8;
  const auto tokens = corpus.sample(s_global + 1);

  const double ref_loss = ref.train_step_grads(tokens);
  BaselineTrainer trainer(dist, c.world, c.kind);
  const double dist_loss = trainer.train_step_grads(tokens);
  EXPECT_NEAR(ref_loss, dist_loss, 1e-4);

  std::vector<Tensor> ga;
  std::vector<std::string> names;
  ref.visit_params([&](nn::Param& p) {
    ga.push_back(p.grad);
    names.push_back(p.name);
  });
  std::size_t i = 0;
  dist.visit_params([&](nn::Param& p) {
    const double scale = std::max(1.0, l2_norm(ga[i]));
    EXPECT_LT(max_abs_diff(ga[i], p.grad) / scale, 2e-3) << names[i];
    ++i;
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaselineTrainerParam,
    ::testing::Values(TrainerCase{BaselineKind::kUlysses, 2, false},
                      TrainerCase{BaselineKind::kUlysses, 4, false},
                      TrainerCase{BaselineKind::kUlysses, 4, true},
                      TrainerCase{BaselineKind::kMegatronSp, 2, false},
                      TrainerCase{BaselineKind::kMegatronSp, 4, false},
                      TrainerCase{BaselineKind::kMegatronSp, 4, true},
                      TrainerCase{BaselineKind::kRing, 2, false},
                      TrainerCase{BaselineKind::kRing, 4, false},
                      TrainerCase{BaselineKind::kRing, 4, true}));

TEST(CrossStrategyTest, AllStrategiesConvergeIdentically) {
  // The strongest form of Fig. 14: FPDT and every baseline produce the same
  // multi-step training trajectory from the same seed.
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 48);
  nn::Model m_ref(cfg, 31), m_fpdt(cfg, 31), m_ul(cfg, 31), m_msp(cfg, 31), m_ring(cfg, 31);
  FpdtConfig fcfg;
  fcfg.chunks_per_rank = 2;
  FpdtTrainer t_fpdt(m_fpdt, 2, fcfg);
  BaselineTrainer t_ul(m_ul, 2, BaselineKind::kUlysses);
  BaselineTrainer t_msp(m_msp, 2, BaselineKind::kMegatronSp);
  BaselineTrainer t_ring(m_ring, 2, BaselineKind::kRing);
  nn::Adam o1(1e-3), o2(1e-3), o3(1e-3), o4(1e-3), o5(1e-3);
  data::SyntheticCorpus corpus(cfg.vocab, 99);
  for (int step = 0; step < 4; ++step) {
    const auto tokens = corpus.sample(17);
    const double l_ref = m_ref.train_step_grads(tokens);
    EXPECT_NEAR(t_fpdt.train_step_grads(tokens), l_ref, 5e-4) << "fpdt step " << step;
    EXPECT_NEAR(t_ul.train_step_grads(tokens), l_ref, 5e-4) << "ulysses step " << step;
    EXPECT_NEAR(t_msp.train_step_grads(tokens), l_ref, 5e-4) << "megatron step " << step;
    EXPECT_NEAR(t_ring.train_step_grads(tokens), l_ref, 5e-4) << "ring step " << step;
    o1.step([&](const nn::ParamVisitor& f) { m_ref.visit_params(f); });
    o2.step([&](const nn::ParamVisitor& f) { m_fpdt.visit_params(f); });
    o3.step([&](const nn::ParamVisitor& f) { m_ul.visit_params(f); });
    o4.step([&](const nn::ParamVisitor& f) { m_msp.visit_params(f); });
    o5.step([&](const nn::ParamVisitor& f) { m_ring.visit_params(f); });
  }
}

TEST(BaselineTrainerTest, IndivisibleSequenceThrows) {
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 48);
  nn::Model m(cfg, 1);
  BaselineTrainer t(m, 4, BaselineKind::kUlysses);
  std::vector<std::int32_t> tokens(12, 1);  // s_global = 11, % 4 != 0
  EXPECT_THROW(t.train_step_grads(tokens), FpdtError);
}

TEST(BaselineTrainerTest, LogitsSpikeVisibleOnDevice) {
  // The baselines' unchunked loss head must charge the full FP32 logits
  // buffer — the §5.4 spike FPDT removes.
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 128);
  nn::Model m(cfg, 1);
  BaselineTrainer t(m, 2, BaselineKind::kUlysses);
  data::SyntheticCorpus corpus(cfg.vocab, 5);
  t.train_step_grads(corpus.sample(17));
  // Peak must include s_local * vocab * 4 bytes of logits.
  EXPECT_GE(t.env().device(0).hbm().peak(), 8 * cfg.vocab * 4);
}

// ---- Batch training ----------------------------------------------------------

TEST(BatchTrainingTest, BatchGradEqualsMeanOfSequenceGrads) {
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 48);
  nn::Model a(cfg, 9), b(cfg, 9);
  FpdtConfig fcfg;
  fcfg.chunks_per_rank = 2;
  FpdtTrainer ta(a, 2, fcfg), tb(b, 2, fcfg);
  data::SyntheticCorpus corpus(cfg.vocab, 3);
  const auto s1 = corpus.sample(17);
  const auto s2 = corpus.sample(17);

  const double batch_loss = ta.train_batch_grads({s1, s2});

  tb.train_step_grads(s1);
  std::vector<Tensor> g1;
  b.visit_params([&](nn::Param& p) { g1.push_back(p.grad.clone()); });
  b.zero_grads();
  tb.train_step_grads(s2);
  std::size_t i = 0;
  std::vector<Tensor> mean_grads;
  b.visit_params([&](nn::Param& p) {
    Tensor mean = add(g1[i], p.grad);
    scale_(mean, 0.5f);
    mean_grads.push_back(std::move(mean));
    ++i;
  });

  i = 0;
  a.visit_params([&](nn::Param& p) {
    EXPECT_LT(max_abs_diff(p.grad, mean_grads[i]), 1e-6) << p.name;
    ++i;
  });
  EXPECT_GT(batch_loss, 0.0);
}

TEST(BatchTrainingTest, EmptyBatchThrows) {
  nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 48);
  nn::Model m(cfg, 1);
  FpdtConfig fcfg;
  fcfg.chunks_per_rank = 1;
  FpdtTrainer t(m, 2, fcfg);
  EXPECT_THROW(t.train_batch_grads({}), FpdtError);
}

// ---- Sequence loader -----------------------------------------------------------

TEST(SequenceLoaderTest, BatchShapesAndDeterminism) {
  data::SequenceLoader a(data::SyntheticCorpus(64, 4), 32);
  data::SequenceLoader b(data::SyntheticCorpus(64, 4), 32);
  auto batch_a = a.next_batch(3);
  auto batch_b = b.next_batch(3);
  ASSERT_EQ(batch_a.size(), 3u);
  EXPECT_EQ(batch_a[0].size(), 33u);
  EXPECT_EQ(batch_a, batch_b);
  EXPECT_EQ(a.sequences_served(), 3);
}

TEST(SequenceLoaderTest, HoldoutSplitsDeterministically) {
  data::SequenceLoader loader(data::SyntheticCorpus(64, 4), 16, /*holdout_every=*/3);
  loader.next_batch(6);
  // Serving 6 training sequences produces 8 total; #3 and #6 are held out.
  EXPECT_EQ(loader.validation_set().size(), 2u);
  EXPECT_EQ(loader.sequences_served(), 6);
  // Validation sequences never appear in training batches: disjoint by
  // construction of the modulo split (spot-check first holdout).
  data::SequenceLoader replay(data::SyntheticCorpus(64, 4), 16);
  auto all = replay.next_batch(9);
  EXPECT_EQ(loader.validation_set()[0], all[2]);  // 3rd produced sequence
}

TEST(SequenceLoaderTest, PerplexityEvaluator) {
  std::vector<std::vector<std::int32_t>> seqs = {{1, 2}, {3, 4}};
  auto fixed = [](const std::vector<std::int32_t>&) { return 1.0; };
  data::EvalResult r = data::evaluate_perplexity(seqs, fixed);
  EXPECT_EQ(r.sequences, 2);
  EXPECT_NEAR(r.mean_loss, 1.0, 1e-12);
  EXPECT_NEAR(r.perplexity, std::exp(1.0), 1e-9);
  EXPECT_EQ(data::evaluate_perplexity({}, fixed).sequences, 0);
}

TEST(SequenceLoaderTest, PerplexityFallsDuringTraining) {
  nn::ModelConfig cfg = nn::tiny_gpt(32, 2, 4, 48);
  nn::Model model(cfg, 21);
  FpdtConfig fcfg;
  fcfg.chunks_per_rank = 2;
  FpdtTrainer trainer(model, 2, fcfg);
  nn::Adam opt(2e-3);
  data::SequenceLoader loader(data::SyntheticCorpus(cfg.vocab, 8), 64, /*holdout_every=*/5);
  auto eval_fn = [&](const std::vector<std::int32_t>& s) { return model.eval_loss(s); };

  loader.next_batch(8);  // populate some validation sequences (every 5th)
  const data::EvalResult before = data::evaluate_perplexity(loader.validation_set(), eval_fn);
  for (int step = 0; step < 15; ++step) {
    trainer.train_batch_grads(loader.next_batch(2));
    opt.step([&](const nn::ParamVisitor& f) { model.visit_params(f); });
  }
  const data::EvalResult after = data::evaluate_perplexity(loader.validation_set(), eval_fn);
  EXPECT_LT(after.perplexity, before.perplexity * 0.8);
}

// ---- Chrome trace --------------------------------------------------------------

TEST(ChromeTraceTest, WellFormedAndComplete) {
  sim::PipelineSim ps;
  const int comp = ps.add_resource("compute");
  const int dma = ps.add_resource("h2d");
  const int t0 = ps.add_task(dma, 0.5, {}, "fetch");
  ps.add_task(comp, 1.0, {t0}, "attn");
  EXPECT_THROW(ps.chrome_trace_json(), FpdtError);  // before run()
  ps.run();
  const std::string json = ps.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"attn\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"compute\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":500000"), std::string::npos);  // attn starts at 0.5s
  // Balanced braces/brackets as a cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace fpdt
