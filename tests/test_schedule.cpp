// Tests of the explicit FPDT chunk schedule: generation, counting
// arithmetic (the triangular attention pair counts), and the legality
// checker — including adversarial checks that corrupted schedules are
// rejected for the right reasons.
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/chunk_schedule.h"

namespace fpdt {
namespace {

using core::ChunkSchedule;
using core::OpKind;
using core::ScheduleOp;

class ScheduleParam : public ::testing::TestWithParam<std::tuple<int, bool, bool>> {};

TEST_P(ScheduleParam, ForwardIsLegal) {
  auto [u, offload, dbuf] = GetParam();
  ChunkSchedule sched = ChunkSchedule::forward(u, offload, dbuf);
  EXPECT_NO_THROW(sched.check_legal());
}

TEST_P(ScheduleParam, BackwardIsLegal) {
  auto [u, offload, dbuf] = GetParam();
  ChunkSchedule sched = ChunkSchedule::backward(u, offload, dbuf);
  EXPECT_NO_THROW(sched.check_legal());
}

TEST_P(ScheduleParam, AttentionPairCountsAreTriangular) {
  auto [u, offload, dbuf] = GetParam();
  ChunkSchedule fwd = ChunkSchedule::forward(u, offload, dbuf);
  ChunkSchedule bwd = ChunkSchedule::backward(u, offload, dbuf);
  const std::int64_t pairs = static_cast<std::int64_t>(u) * (u + 1) / 2;
  EXPECT_EQ(fwd.count(OpKind::kAttnStep), pairs);
  EXPECT_EQ(bwd.count(OpKind::kAttnBwdStep), pairs);
}

TEST_P(ScheduleParam, OffloadTrafficCounts) {
  auto [u, offload, dbuf] = GetParam();
  ChunkSchedule fwd = ChunkSchedule::forward(u, offload, dbuf);
  if (!offload) {
    EXPECT_EQ(fwd.count(OpKind::kOffloadKv), 0);
    EXPECT_EQ(fwd.count(OpKind::kFetchKv), 0);
    return;
  }
  // Every chunk offloads its KV once; chunk i fetches i earlier chunks.
  EXPECT_EQ(fwd.count(OpKind::kOffloadKv), u);
  EXPECT_EQ(fwd.count(OpKind::kFetchKv), static_cast<std::int64_t>(u) * (u - 1) / 2);
  // Backward: each outer iteration fetches its KV chunk once; dq̂ partials
  // park on host except the finalizing diagonal visit.
  ChunkSchedule bwd = ChunkSchedule::backward(u, offload, dbuf);
  EXPECT_EQ(bwd.count(OpKind::kFetchKv), u);
  EXPECT_EQ(bwd.count(OpKind::kOffloadDq), static_cast<std::int64_t>(u) * (u - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScheduleParam,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 8, 16),
                                            ::testing::Bool(), ::testing::Bool()));

TEST(ScheduleTest, ProjectionBackwardPerChunkAfterFinalDq) {
  ChunkSchedule bwd = ChunkSchedule::backward(4, true, true);
  // For each chunk j, the kQkvBackward op must come after the (j, j)
  // attention backward step (where dq̂ⱼ finalizes).
  std::vector<std::size_t> final_dq_pos(4, 0), proj_pos(4, 0);
  const auto& ops = bwd.ops();
  for (std::size_t idx = 0; idx < ops.size(); ++idx) {
    const ScheduleOp& op = ops[idx];
    if (op.kind == OpKind::kAttnBwdStep && op.i == op.j) {
      final_dq_pos[static_cast<std::size_t>(op.i)] = idx;
    }
    if (op.kind == OpKind::kQkvBackward) proj_pos[static_cast<std::size_t>(op.i)] = idx;
  }
  for (int j = 0; j < 4; ++j) {
    EXPECT_GT(proj_pos[static_cast<std::size_t>(j)], final_dq_pos[static_cast<std::size_t>(j)])
        << "chunk " << j;
  }
}

TEST(ScheduleTest, DebugStringsAndPrinting) {
  ChunkSchedule fwd = ChunkSchedule::forward(2, true, true);
  const std::string text = fwd.to_string();
  EXPECT_NE(text.find("qkv_project i=0"), std::string::npos);
  EXPECT_NE(text.find("attn_step i=1 j=0"), std::string::npos);
  EXPECT_NE(text.find("offload_kv i=1"), std::string::npos);
  const std::string truncated = fwd.to_string(2);
  EXPECT_NE(truncated.find("more)"), std::string::npos);
}

// ---- Adversarial: corrupted schedules must be rejected. --------------------

ChunkSchedule corrupt(ChunkSchedule base, auto mutate) {
  // ChunkSchedule has no public mutation; rebuild op-by-op via a copy and
  // const_cast-free trick: we reconstruct through the vector accessor.
  // (Test-only: we poke the ops vector through a copy.)
  mutate(const_cast<std::vector<ScheduleOp>&>(base.ops()));
  return base;
}

TEST(ScheduleTest, RejectsAttentionBeforeAll2All) {
  ChunkSchedule fwd = corrupt(ChunkSchedule::forward(2, false, false),
                              [](std::vector<ScheduleOp>& ops) {
                                // Move the first attention step to the front.
                                for (std::size_t k = 0; k < ops.size(); ++k) {
                                  if (ops[k].kind == OpKind::kAttnStep) {
                                    std::swap(ops[0], ops[k]);
                                    break;
                                  }
                                }
                              });
  EXPECT_THROW(fwd.check_legal(), FpdtError);
}

TEST(ScheduleTest, RejectsFetchWithoutOffload) {
  ChunkSchedule fwd = corrupt(ChunkSchedule::forward(3, true, true),
                              [](std::vector<ScheduleOp>& ops) {
                                // Retarget a fetch at a chunk never offloaded.
                                for (ScheduleOp& op : ops) {
                                  if (op.kind == OpKind::kFetchKv) {
                                    op.j = 2;  // chunk 2 not offloaded yet
                                    break;
                                  }
                                }
                              });
  EXPECT_THROW(fwd.check_legal(), FpdtError);
}

TEST(ScheduleTest, RejectsCausallyMaskedBackwardPair) {
  ChunkSchedule bwd = corrupt(ChunkSchedule::backward(3, false, false),
                              [](std::vector<ScheduleOp>& ops) {
                                for (ScheduleOp& op : ops) {
                                  if (op.kind == OpKind::kAttnBwdStep && op.i == op.j) {
                                    op.i = op.j - 1 >= 0 ? op.j - 1 : 0;
                                    op.j = op.i + 1;  // j > i: masked pair
                                    break;
                                  }
                                }
                              });
  EXPECT_THROW(bwd.check_legal(), FpdtError);
}

TEST(ScheduleTest, RejectsContributionAfterFinalization) {
  ChunkSchedule bwd = corrupt(ChunkSchedule::backward(2, false, false),
                              [](std::vector<ScheduleOp>& ops) {
                                // Duplicate the diagonal (0,0) step at the end.
                                for (const ScheduleOp& op : ops) {
                                  if (op.kind == OpKind::kAttnBwdStep && op.i == 0 &&
                                      op.j == 0) {
                                    ops.push_back(op);
                                    break;
                                  }
                                }
                              });
  EXPECT_THROW(bwd.check_legal(), FpdtError);
}

}  // namespace
}  // namespace fpdt
