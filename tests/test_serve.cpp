// Serving-engine suite: (1) differential — chunked prefill through the
// paged KV cache must be bitwise-identical (logits AND cached K/V) to the
// monolithic nn::InferenceSession across the chunk-boundary prompt lengths
// and both kernel backends, including while the two-tier cache is actively
// evicting pages to host; (2) property — seeded traffic and engine
// transcripts are reproducible, and KV page accounting always drains the
// pools back to baseline; (3) fault injection — d2h/oom faults during KV
// offload degrade gracefully without corrupting any session's decode
// stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "data/synthetic_corpus.h"
#include "fault/fault_injector.h"
#include "kernels/backend.h"
#include "nn/inference.h"
#include "nn/model.h"
#include "serve/engine.h"
#include "serve/kv_cache.h"
#include "serve/prefill.h"
#include "serve/traffic.h"

namespace fpdt {
namespace {

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data(), b.data(), static_cast<std::size_t>(a.numel()) * sizeof(float)) ==
             0;
}

std::int32_t argmax(const Tensor& logits) {
  std::int64_t best = 0;
  for (std::int64_t i = 1; i < logits.numel(); ++i) {
    if (logits.data()[i] > logits.data()[best]) best = i;
  }
  return static_cast<std::int32_t>(best);
}

TEST(ServeDifferential, ChunkedPrefillBitwiseMatchesMonolithic) {
  constexpr std::int64_t kChunk = 32;
  constexpr std::int64_t kPage = 24;  // not a divisor of kChunk: appends span pages
  const std::vector<std::int64_t> lengths = {1, kChunk - 1, kChunk, kChunk + 1, 8 * kChunk};
  for (const char* backend : {"scalar", "simd"}) {
    kernels::BackendScope scope(backend);
    for (const bool llama : {false, true}) {
      const nn::ModelConfig cfg = llama ? nn::tiny_llama() : nn::tiny_gpt();
      nn::Model model(cfg, 4242);
      const std::int64_t token_bytes =
          2 * cfg.n_kv_head * cfg.head_dim() * 2;  // K+V, BF16 logical
      for (const std::int64_t len : lengths) {
        SCOPED_TRACE(std::string(backend) + (llama ? " llama" : " gpt") +
                     " len=" + std::to_string(len));
        data::SyntheticCorpus corpus(cfg.vocab, 99 + static_cast<std::uint64_t>(len));
        const std::vector<std::int32_t> prompt = corpus.sample(len);

        nn::InferenceSession mono(model, /*prefill_chunk=*/0);
        const Tensor ref_logits = mono.prefill(prompt);

        // HBM sized to the gather scratch plus a few pages: the long case
        // cannot keep its whole KV resident and must spill mid-prefill.
        runtime::Device device(0, (len + 8 * kPage) * token_bytes);
        runtime::Host host;
        serve::PagedKvCache cache(cfg, device, host,
                                  serve::KvCacheConfig{kPage, /*execute=*/true});
        cache.open_session(7);
        serve::SessionCompute compute(model, cache, 7);
        for (std::int64_t start = 0; start < len; start += kChunk) {
          const std::int64_t end = std::min(len, start + kChunk);
          compute.prefill_chunk({prompt.begin() + start, prompt.begin() + end});
        }
        const Tensor logits = compute.finish_prefill();
        EXPECT_TRUE(bitwise_equal(ref_logits, logits));

        // KV pages vs the monolithic caches, layer by layer, bit for bit.
        for (std::int64_t l = 0; l < cfg.n_layer; ++l) {
          const auto [k, v] = cache.snapshot(7, l, len);
          const auto [rk, rv] = mono.cache_view(static_cast<std::size_t>(l));
          EXPECT_TRUE(bitwise_equal(k, rk)) << "layer " << l << " K";
          EXPECT_TRUE(bitwise_equal(v, rv)) << "layer " << l << " V";
        }
        if (len == 8 * kChunk) {
          EXPECT_GT(cache.stats().evictions, 0) << " two-tier path not exercised";
        }

        // Decode stays bitwise too (greedy continuation over paged KV).
        std::int32_t token = argmax(logits);
        for (int step = 0; step < 3; ++step) {
          const Tensor mono_logits = mono.decode(token);
          const Tensor paged_logits = compute.decode(token);
          EXPECT_TRUE(bitwise_equal(mono_logits, paged_logits)) << "decode step " << step;
          token = argmax(mono_logits);
        }

        cache.close_session(7);
        device.synchronize_streams();
        EXPECT_EQ(device.hbm().used(), 0);
        EXPECT_EQ(device.hbm().staging(), 0);
        EXPECT_EQ(host.pool().used(), 0);
      }
    }
  }
}

TEST(ServeTraffic, SeededGeneratorIsReproducible) {
  serve::TrafficConfig cfg;
  cfg.sessions = 48;
  cfg.seed = 777;
  const auto a = serve::generate_traffic(cfg);
  const auto b = serve::generate_traffic(cfg);
  ASSERT_EQ(a.size(), b.size());
  double prev = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sid, b[i].sid);
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);  // bitwise double equality
    EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
    EXPECT_EQ(a[i].decode_tokens, b[i].decode_tokens);
    EXPECT_GE(a[i].arrival_s, prev);
    prev = a[i].arrival_s;
    EXPECT_GE(a[i].prompt_tokens, cfg.min_prompt_tokens);
    EXPECT_LE(a[i].prompt_tokens, cfg.max_prompt_tokens);
    EXPECT_GE(a[i].decode_tokens, cfg.min_decode_tokens);
    EXPECT_LE(a[i].decode_tokens, cfg.max_decode_tokens);
  }
  cfg.seed = 778;
  const auto c = serve::generate_traffic(cfg);
  bool any_diff = false;
  for (std::size_t i = 0; i < c.size(); ++i) {
    any_diff = any_diff || c[i].prompt_tokens != a[i].prompt_tokens ||
               c[i].arrival_s != a[i].arrival_s;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ServeKvCache, PageAccountingReturnsToBaseline) {
  const nn::ModelConfig cfg = nn::tiny_gpt();
  runtime::Device device(0, 1 << 20);
  runtime::Host host;
  serve::PagedKvCache cache(cfg, device, host, serve::KvCacheConfig{16, /*execute=*/false});
  for (const std::int64_t sid : {1, 2}) {
    cache.open_session(sid);
    for (std::int64_t l = 0; l < cfg.n_layer; ++l) {
      cache.append(sid, l, 0, Tensor(), Tensor(), 40);  // spans three pages
      serve::PagedKvCache::Gathered g = cache.gather(sid, l, 40);
      EXPECT_GT(g.scratch.bytes(), 0);
    }
  }
  EXPECT_TRUE(cache.evict_lru());
  EXPECT_EQ(cache.host_pages(), 1);
  EXPECT_GT(host.pool().used(), 0);
  cache.close_session(1);
  cache.close_session(2);
  device.synchronize_streams();
  EXPECT_EQ(cache.device_pages() + cache.host_pages(), 0);
  EXPECT_EQ(device.hbm().used(), 0);
  EXPECT_EQ(device.hbm().staging(), 0);
  EXPECT_EQ(host.pool().used(), 0);
  EXPECT_EQ(host.pool().staging(), 0);
}

TEST(ServeEngine, TranscriptDeterministicAndPoolsDrain) {
  serve::ServeOptions opt;  // stock workload: 64 sessions, 2K–256K prompts
  opt.hbm_bytes = 96ll << 20;  // tight enough that eviction runs for real
  serve::ServingEngine e1(opt);
  serve::ServingEngine e2(opt);
  const serve::ServeReport r1 = e1.run();
  const serve::ServeReport r2 = e2.run();
  EXPECT_EQ(r1.transcript, r2.transcript);  // byte-identical event log
  EXPECT_EQ(r1.completed, 64);
  EXPECT_EQ(r1.rejected, 0);
  EXPECT_EQ(r1.device_leak_bytes, 0);
  EXPECT_EQ(r1.host_leak_bytes, 0);
  EXPECT_GT(r1.cache.evictions, 0);
  EXPECT_GT(r1.cache.fetch_bytes, 0);
  EXPECT_GT(r1.tokens_per_s, 0.0);
  EXPECT_GT(r1.ttft_p50_s, 0.0);
  EXPECT_GE(r1.ttft_p99_s, r1.ttft_p50_s);
  EXPECT_TRUE(r1.ok());

  serve::ServeOptions other = opt;
  other.traffic.seed = 999;
  serve::ServingEngine e3(other);
  EXPECT_NE(e3.run().transcript, r1.transcript);
}

TEST(ServeFault, OffloadFaultsDegradeWithoutCorruptingDecodeStreams) {
  serve::ServeOptions opt;
  opt.execute = true;
  opt.traffic.sessions = 8;
  opt.traffic.seed = 31;
  opt.traffic.min_prompt_tokens = 64;
  opt.traffic.max_prompt_tokens = 512;
  opt.traffic.mean_interarrival_s = 1e-4;
  opt.traffic.min_decode_tokens = 2;
  opt.traffic.max_decode_tokens = 6;
  opt.chunk_tokens = 64;
  opt.page_tokens = 48;
  opt.hbm_bytes = 192ll << 10;  // forces steady eviction traffic

  fault::FaultInjector::instance().disable();
  serve::ServingEngine clean_engine(opt);
  const serve::ServeReport clean = clean_engine.run();
  ASSERT_EQ(clean.completed, opt.traffic.sessions);
  ASSERT_GT(clean.cache.evictions, 0);

  // Transient d2h/h2d faults on the offload/fetch paths plus spurious OOMs
  // on every pool charge: the retry ladder and evict-to-host degradation
  // must absorb all of it.
  fault::FaultInjector::instance().configure(
      "d2h:p=0.4,seed=5;h2d:p=0.3,seed=6;oom:p=0.05,seed=7");
  serve::ServingEngine faulty_engine(opt);
  const serve::ServeReport faulty = faulty_engine.run();
  const fault::FaultStats stats = fault::FaultInjector::instance().stats();
  fault::FaultInjector::instance().disable();

  EXPECT_GT(stats.injected, 0);
  EXPECT_EQ(stats.recovered, stats.injected);  // reconcile: all survived
  EXPECT_EQ(faulty.completed, opt.traffic.sessions);
  EXPECT_EQ(faulty.device_leak_bytes, 0);
  EXPECT_EQ(faulty.host_leak_bytes, 0);

  // No live session's decode stream may change under faults: compare the
  // emitted tokens per session (completion order may shift with retry
  // timing, so match by sid).
  std::map<std::int64_t, std::vector<std::int32_t>> clean_tokens;
  for (const serve::SessionOutcome& out : clean.outcomes) clean_tokens[out.sid] = out.generated;
  ASSERT_EQ(faulty.outcomes.size(), clean.outcomes.size());
  for (const serve::SessionOutcome& out : faulty.outcomes) {
    ASSERT_TRUE(clean_tokens.count(out.sid));
    EXPECT_EQ(out.generated, clean_tokens[out.sid]) << "session " << out.sid;
  }
}

}  // namespace
}  // namespace fpdt
