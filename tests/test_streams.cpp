// The emulated stream engine (runtime/stream.h) and the double-buffered
// chunk prefetcher built on it (core/chunk_prefetcher.h): FIFO ordering,
// cross-stream event dependencies, the in-flight window invariant, staging
// OOM semantics, and the headline guarantee — the streamed path is
// bit-identical and byte-identical to the synchronous one, it only adds a
// timeline.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/chunk_prefetcher.h"
#include "core/fpdt_trainer.h"
#include "data/rank_ordinal.h"
#include "data/synthetic_corpus.h"
#include "nn/model.h"
#include "tests/test_util.h"

namespace fpdt {
namespace {

using core::ChunkPrefetcher;
using core::ChunkStore;
using core::FpdtConfig;
using core::FpdtEnv;
using runtime::Event;
using runtime::Stream;

// ---- Stream / Event ---------------------------------------------------------

TEST(StreamTest, FifoOrderAndVirtualClock) {
  Stream s("s");
  std::vector<int> ran;
  s.enqueue("a", 1.0, {}, [&] { ran.push_back(0); });
  s.enqueue("b", 2.0, {}, [&] { ran.push_back(1); });
  s.enqueue("c", 0.5, {}, [&] { ran.push_back(2); });
  EXPECT_TRUE(ran.empty());  // deferred until drained
  s.synchronize();
  EXPECT_EQ(ran, (std::vector<int>{0, 1, 2}));
  ASSERT_EQ(s.spans().size(), 3u);
  EXPECT_DOUBLE_EQ(s.spans()[0].start, 0.0);
  EXPECT_DOUBLE_EQ(s.spans()[1].start, 1.0);   // back-to-back FIFO
  EXPECT_DOUBLE_EQ(s.spans()[2].start, 3.0);
  EXPECT_DOUBLE_EQ(s.tail_time(), 3.5);
  EXPECT_DOUBLE_EQ(s.busy_time(), 3.5);
}

TEST(StreamTest, EventOrdersWorkAcrossStreams) {
  Stream producer("p"), consumer("c");
  bool produced = false, consumed_after_produce = false;
  const Event ev = producer.enqueue("produce", 2.0, {}, [&] { produced = true; });
  consumer.enqueue("consume", 1.0, {ev}, [&] { consumed_after_produce = produced; });
  consumer.synchronize();  // draining the waiter drains the producer first
  EXPECT_TRUE(produced);
  EXPECT_TRUE(consumed_after_produce);
  // The consumer's virtual start is pushed to the producer's finish.
  EXPECT_DOUBLE_EQ(consumer.spans()[0].start, 2.0);
  EXPECT_DOUBLE_EQ(ev.ready_time(), 2.0);
}

TEST(StreamTest, WaitDrainsExactlyThroughTheMarkedTask) {
  Stream s("s");
  int ran = 0;
  const Event first = s.enqueue("one", 1.0, {}, [&] { ran = 1; });
  s.enqueue("two", 1.0, {}, [&] { ran = 2; });
  first.wait();
  EXPECT_EQ(ran, 1);  // the later task stays pending
  EXPECT_FALSE(s.idle());
  s.synchronize();
  EXPECT_EQ(ran, 2);
}

TEST(StreamTest, OverlappedTimeComputesIntervalIntersection) {
  // transfer [0,4), compute [1,2) u [3,6) -> 2.0 overlapped.
  std::vector<runtime::StreamSpan> xfer{{"t", 0.0, 4.0}};
  std::vector<runtime::StreamSpan> busy{{"a", 1.0, 2.0}, {"b", 3.0, 6.0}};
  EXPECT_DOUBLE_EQ(runtime::overlapped_time(xfer, busy), 2.0);
}

// ---- ChunkPrefetcher --------------------------------------------------------

struct PrefetchRig {
  explicit PrefetchRig(std::int64_t hbm_capacity = -1)
      : env(1, make_cfg(), hbm_capacity), store(env.device(0), env.host(), /*offload=*/true) {}
  static FpdtConfig make_cfg() {
    FpdtConfig cfg;
    cfg.offload = true;
    return cfg;
  }
  Tensor chunk(std::uint64_t seed, std::int64_t n = 16) {
    Rng rng(seed);
    return Tensor::randn({n}, rng);
  }
  FpdtEnv env;
  ChunkStore store;
};

TEST(ChunkPrefetcherTest, InFlightWindowIsCapped) {
  PrefetchRig rig;
  for (const char* key : {"k.0", "k.1", "k.2"}) {
    rig.store.put(key, rig.env.device(0).alloc(rig.chunk(1)));
  }
  ChunkPrefetcher pf(rig.store, /*use_streams=*/true, /*max_in_flight=*/2);
  pf.prefetch("k.0");
  pf.prefetch("k.1");
  EXPECT_EQ(pf.in_flight(), 2);
  EXPECT_THROW(pf.prefetch("k.2"), FpdtError);  // window exceeded
  (void)pf.acquire("k.0");
  EXPECT_EQ(pf.in_flight(), 1);
  pf.prefetch("k.2");  // freed slot can be reused
}

TEST(ChunkPrefetcherTest, PrefetchStagesBytesUntilRetire) {
  PrefetchRig rig;
  rig.store.put("k.0", rig.env.device(0).alloc(rig.chunk(2)));
  const std::int64_t bytes = rig.store.stored_bytes("k.0");
  ChunkPrefetcher pf(rig.store, /*use_streams=*/true);
  pf.prefetch("k.0");
  // In flight: destination bytes reserved in the staging counter, no data
  // charge yet (the closure has not retired).
  EXPECT_EQ(rig.env.device(0).hbm().staging(), bytes);
  EXPECT_EQ(rig.env.device(0).hbm().used(), 0);
  const auto fetched = pf.acquire("k.0");
  EXPECT_EQ(rig.env.device(0).hbm().staging(), 0);
  EXPECT_EQ(rig.env.device(0).hbm().used(), bytes);
  EXPECT_EQ(fetched.buffer.bytes(), bytes);
}

TEST(ChunkPrefetcherTest, OomRaisedAtIssueWithStagingCharge) {
  // Capacity fits exactly one staged chunk: the second prefetch must OOM at
  // *issue* time (where cudaMallocAsync would fail), not at acquire.
  PrefetchRig probe;
  probe.store.put("k.0", probe.env.device(0).alloc(probe.chunk(3)));
  const std::int64_t bytes = probe.store.stored_bytes("k.0");

  PrefetchRig rig(bytes);
  rig.store.put("k.0", rig.env.device(0).alloc(rig.chunk(3)));
  rig.store.put("k.1", rig.env.device(0).alloc(rig.chunk(4)));
  ChunkPrefetcher pf(rig.store, /*use_streams=*/true);
  pf.prefetch("k.0");
  try {
    pf.prefetch("k.1");
    FAIL() << "second prefetch must OOM";
  } catch (const OutOfMemoryError& e) {
    // The message reports the staged in-flight bytes, not a data charge.
    EXPECT_NE(std::string(e.what()).find("staging"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("staged " + std::to_string(bytes)),
              std::string::npos);
  }
  const auto fetched = pf.acquire("k.0");  // the first transfer still retires cleanly
  EXPECT_EQ(rig.env.device(0).hbm().used(), bytes);
  EXPECT_EQ(rig.env.device(0).hbm().staging(), 0);
}

TEST(ChunkPrefetcherTest, StreamedAndSyncPathsAccountIdentically) {
  auto run = [](bool use_streams, runtime::TransferStats* stats, std::int64_t* peak) {
    PrefetchRig rig;
    ChunkPrefetcher pf(rig.store, use_streams);
    // offload two chunks, re-fetch one with take and one as a copy.
    Event e0 = pf.put_async("k.0", rig.env.device(0).alloc(rig.chunk(5)));
    Event e1 = pf.put_async("k.1", rig.env.device(0).alloc(rig.chunk(6)));
    (void)e0;
    (void)e1;
    pf.prefetch("k.0", /*take=*/true);
    Tensor got = pf.acquire("k.0", /*take=*/true).buffer.tensor().clone();
    (void)pf.acquire("k.1");  // never prefetched: on-the-spot fallback
    pf.synchronize();
    EXPECT_LT(max_abs_diff(got, PrefetchRig{}.chunk(5)), 1e-12);
    EXPECT_TRUE(rig.store.contains("k.1"));   // copy semantics keep the host chunk
    EXPECT_FALSE(rig.store.contains("k.0"));  // take semantics consume it
    *stats = rig.env.device(0).transfers();
    *peak = rig.env.device(0).hbm().peak();
  };
  runtime::TransferStats streamed{}, sync{};
  std::int64_t streamed_peak = 0, sync_peak = 0;
  run(true, &streamed, &streamed_peak);
  run(false, &sync, &sync_peak);
  EXPECT_EQ(streamed.h2d_bytes, sync.h2d_bytes);
  EXPECT_EQ(streamed.d2h_bytes, sync.d2h_bytes);
  EXPECT_EQ(streamed.h2d_count, sync.h2d_count);
  EXPECT_EQ(streamed.d2h_count, sync.d2h_count);
  EXPECT_EQ(streamed_peak, sync_peak);
}

// ---- Executor / trainer equivalence ----------------------------------------

nn::ModelConfig small_cfg() { return nn::tiny_gpt(32, 2, 4, 48); }

TEST(StreamedExecutorTest, ForwardBackwardBitIdenticalToSyncPath) {
  const int world = 2;
  const std::int64_t s_global = world * 4 * 4;
  Rng xrng(11);
  Tensor x = Tensor::randn({s_global, 32}, xrng, 0.0, 0.5);
  Tensor dz = Tensor::randn({s_global, 32}, xrng, 0.0, 0.5);

  auto run = [&](bool streams, Tensor* z_out, Tensor* dx_out, runtime::TransferStats* tx,
                 std::int64_t* peak) {
    FpdtConfig fcfg;
    fcfg.chunks_per_rank = 4;
    fcfg.stream_prefetch = streams;
    Rng wrng(12);
    nn::TransformerBlock block("b", small_cfg(), wrng);
    FpdtEnv env(world, fcfg);
    core::FpdtBlockExecutor exec(block, 0, env);
    data::RankOrdinalSharder sh(world, 4);
    *z_out = sh.unshard_tensor(exec.forward(sh.shard_tensor(x)));
    *dx_out = sh.unshard_tensor(exec.backward(sh.shard_tensor(dz), sh.shard_tensor(x)));
    *tx = env.device(0).transfers();
    *peak = env.max_hbm_peak();
  };
  Tensor z_s, dx_s, z_i, dx_i;
  runtime::TransferStats tx_s{}, tx_i{};
  std::int64_t peak_s = 0, peak_i = 0;
  run(true, &z_s, &dx_s, &tx_s, &peak_s);
  run(false, &z_i, &dx_i, &tx_i, &peak_i);
  EXPECT_EQ(max_abs_diff(z_s, z_i), 0.0);    // bit-identical, not merely close
  EXPECT_EQ(max_abs_diff(dx_s, dx_i), 0.0);
  EXPECT_EQ(tx_s.h2d_bytes, tx_i.h2d_bytes);  // byte-exact traffic
  EXPECT_EQ(tx_s.d2h_bytes, tx_i.d2h_bytes);
  EXPECT_EQ(tx_s.h2d_count, tx_i.h2d_count);
  EXPECT_EQ(tx_s.d2h_count, tx_i.d2h_count);
  EXPECT_EQ(peak_s, peak_i);                  // byte-exact HBM peak
}

TEST(StreamedExecutorTest, SerialAndParallelWorkersBitIdentical) {
  const int world = 4;
  const std::int64_t s_global = world * 2 * 4;
  Rng xrng(21);
  Tensor x = Tensor::randn({s_global, 32}, xrng, 0.0, 0.5);
  Tensor dz = Tensor::randn({s_global, 32}, xrng, 0.0, 0.5);

  auto run = [&](int workers, Tensor* z_out, Tensor* dx_out) {
    const int saved = parallel_workers();
    set_parallel_workers(workers);
    FpdtConfig fcfg;
    fcfg.chunks_per_rank = 2;
    Rng wrng(22);
    nn::TransformerBlock block("b", small_cfg(), wrng);
    FpdtEnv env(world, fcfg);
    core::FpdtBlockExecutor exec(block, 0, env);
    data::RankOrdinalSharder sh(world, 2);
    *z_out = sh.unshard_tensor(exec.forward(sh.shard_tensor(x)));
    *dx_out = sh.unshard_tensor(exec.backward(sh.shard_tensor(dz), sh.shard_tensor(x)));
    set_parallel_workers(saved);
  };
  Tensor z1, dx1, zn, dxn;
  run(1, &z1, &dx1);
  run(8, &zn, &dxn);
  EXPECT_EQ(max_abs_diff(z1, zn), 0.0);
  EXPECT_EQ(max_abs_diff(dx1, dxn), 0.0);
}

TEST(StreamedTrainerTest, StepIdenticalToSyncAndOverlapPositive) {
  nn::ModelConfig cfg = small_cfg();
  nn::Model m_streams(cfg, 33), m_sync(cfg, 33);
  FpdtConfig on, off;
  on.chunks_per_rank = off.chunks_per_rank = 2;
  on.stream_prefetch = true;
  off.stream_prefetch = false;
  core::FpdtTrainer t_on(m_streams, 2, on), t_off(m_sync, 2, off);

  data::SyntheticCorpus corpus(cfg.vocab, 44);
  const auto tokens = corpus.sample(17);
  const double loss_on = t_on.train_step_grads(tokens);
  const double loss_off = t_off.train_step_grads(tokens);
  EXPECT_EQ(loss_on, loss_off);

  std::vector<Tensor> grads;
  m_sync.visit_params([&](nn::Param& p) { grads.push_back(p.grad); });
  std::size_t i = 0;
  m_streams.visit_params([&](nn::Param& p) {
    EXPECT_EQ(max_abs_diff(grads[i], p.grad), 0.0) << p.name;
    ++i;
  });

  // With offload on, some transfer time hides behind compute.
  const runtime::TimelineReport report = t_on.env().timeline_report(0);
  EXPECT_GT(report.transfer_busy_s(), 0.0);
  EXPECT_GT(report.overlap_ratio(), 0.0);
  // And the sync path recorded no stream spans at all.
  EXPECT_EQ(t_off.env().timeline_report(0).transfer_busy_s(), 0.0);
}

// ---- Satellite regression coverage -----------------------------------------

TEST(ChunkStoreTest, UseAfterMoveThrows) {
  PrefetchRig rig;
  rig.store.put("k.0", rig.env.device(0).alloc(rig.chunk(7)));
  ChunkStore moved = std::move(rig.store);
  EXPECT_TRUE(moved.contains("k.0"));
  EXPECT_THROW(rig.store.put("k.1", rig.env.device(0).alloc(rig.chunk(8))), FpdtError);
  EXPECT_THROW((void)rig.store.take("k.0"), FpdtError);
  EXPECT_THROW((void)rig.store.device(), FpdtError);
}

// ---- TimelineReport edge cases ---------------------------------------------

TEST(TimelineReportTest, EmptyLedgersProduceAllZeroFiniteReport) {
  Stream compute("c"), h2d("h"), d2h("d");
  const runtime::TimelineReport r = runtime::make_timeline_report(compute, h2d, d2h);
  EXPECT_DOUBLE_EQ(r.makespan_s, 0.0);
  EXPECT_DOUBLE_EQ(r.compute_busy_s, 0.0);
  EXPECT_DOUBLE_EQ(r.transfer_busy_s(), 0.0);
  EXPECT_DOUBLE_EQ(r.hidden_transfer_s, 0.0);
  EXPECT_DOUBLE_EQ(r.exposed_transfer_s, 0.0);
  // The regression: 0/0 must not surface as NaN.
  EXPECT_DOUBLE_EQ(r.overlap_ratio(), 0.0);
  EXPECT_TRUE(std::isfinite(r.overlap_ratio()));
}

TEST(TimelineReportTest, ZeroDurationSpansGiveZeroOverlapRatioNotNan) {
  Stream compute("c"), h2d("h"), d2h("d");
  compute.enqueue("noop", 0.0);
  h2d.enqueue("fetch.z", 0.0);
  d2h.enqueue("offload.z", 0.0);
  compute.synchronize();
  h2d.synchronize();
  d2h.synchronize();
  const runtime::TimelineReport r = runtime::make_timeline_report(compute, h2d, d2h);
  EXPECT_DOUBLE_EQ(r.transfer_busy_s(), 0.0);
  EXPECT_DOUBLE_EQ(r.overlap_ratio(), 0.0);
  EXPECT_TRUE(std::isfinite(r.overlap_ratio()));
  EXPECT_GE(r.exposed_transfer_s, 0.0);
}

TEST(TimelineReportTest, HiddenClampedToTransferBusyAndRatioToOne) {
  // Compute busy over the transfer's whole life: hidden == transfer busy,
  // ratio exactly 1 (never above despite FP drift), exposed exactly 0.
  Stream compute("c"), h2d("h"), d2h("d");
  compute.enqueue("work", 10.0);
  h2d.enqueue("fetch.k", 2.0);
  compute.synchronize();
  h2d.synchronize();
  const runtime::TimelineReport r = runtime::make_timeline_report(compute, h2d, d2h);
  EXPECT_DOUBLE_EQ(r.hidden_transfer_s, 2.0);
  EXPECT_DOUBLE_EQ(r.exposed_transfer_s, 0.0);
  EXPECT_DOUBLE_EQ(r.overlap_ratio(), 1.0);
}

TEST(MemoryPoolTest, TimelineReturnsSnapshotCopy) {
  runtime::MemoryPool pool("p", -1);
  pool.start_timeline();
  pool.charge(16);
  const auto snapshot = pool.timeline();
  ASSERT_EQ(snapshot.size(), 1u);
  pool.charge(16);  // must not mutate the snapshot taken above
  EXPECT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(pool.timeline().size(), 2u);
  pool.discharge(32);
}

}  // namespace
}  // namespace fpdt
