// The observability layer (src/obs): tracer semantics (gating, ring buffer,
// scope nesting on the virtual clock), Chrome-trace JSON well-formedness,
// metrics aggregation, and the profiler's headline guarantee — profiling an
// FPDT step changes nothing about its results while producing a trace that
// covers every built-in category on every rank.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/fpdt_trainer.h"
#include "data/synthetic_corpus.h"
#include "nn/model.h"
#include "nn/model_config.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "runtime/stream.h"

namespace fpdt {
namespace {

// RAII tracer window: clears the global tracer, enables it, and guarantees
// it is disabled again when the test block ends (other suites in this
// binary must not observe a leaked enable).
struct TracerWindow {
  TracerWindow() {
    obs::Tracer::instance().clear();
    obs::Tracer::instance().set_enabled(true);
  }
  ~TracerWindow() { obs::Tracer::instance().set_enabled(false); }
};

// ---- Hand-rolled JSON syntax checker ---------------------------------------
// No JSON library in the image; a recursive-descent validator is enough to
// assert the exporters can never emit a document Perfetto would reject.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool eof() const { return pos_ >= s_.size(); }
  char peek() const { return s_[pos_]; }
  bool eat(char c) {
    if (eof() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) ++pos_;
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!eat(*p)) return false;
    }
    return true;
  }

  bool object() {
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool array() {
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool string() {
    if (!eat('"')) return false;
    while (!eof()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c == '\\') {
        if (eof()) return false;
        const char esc = s_[pos_++];
        if (esc == 'u') {
          for (int k = 0; k < 4; ++k) {
            if (eof() || std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0) return false;
            ++pos_;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' && esc != 'f' &&
                   esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (eat('-')) {}
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (eat('.')) {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(JsonCheckerTest, AcceptsValidRejectsBroken) {
  EXPECT_TRUE(JsonChecker(R"({"a":[1,2.5,-3e4,"x\n",true,null],"b":{}})").valid());
  EXPECT_FALSE(JsonChecker(R"({"a":1,})").valid());
  EXPECT_FALSE(JsonChecker(R"({"a" 1})").valid());
  EXPECT_FALSE(JsonChecker("{\"a\":\"\n\"}").valid());  // raw newline in string
}

// ---- Tracer -----------------------------------------------------------------

TEST(TracerTest, DisabledTracerEmitsNothing) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_enabled(false);
  tracer.clear();

  // Every built-in hook: stream spans, pool samples, a TraceScope.
  runtime::Stream s("s");
  s.set_trace_identity(0, "compute");
  s.enqueue("work", 1.0);
  s.synchronize();
  runtime::MemoryPool pool("p", -1);
  pool.charge(64);
  pool.discharge(64);
  { FPDT_TRACE_SCOPE(obs::kCatPhase, "nothing"); }

  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, ScopeNestingAndClockMonotonicity) {
  TracerWindow window;
  obs::Tracer& tracer = obs::Tracer::instance();

  {
    obs::TraceScope outer(obs::kCatPhase, "outer", 0);
    tracer.complete(obs::kCatStream, "a", 0, "compute", 0.0, 1.0);
    {
      obs::TraceScope inner(obs::kCatPhase, "inner", 0);
      tracer.complete(obs::kCatStream, "b", 0, "compute", 1.0, 2.0);
    }
  }
  EXPECT_DOUBLE_EQ(tracer.clock(0), 3.0);  // advanced to the last span's finish

  obs::TraceEvent outer_ev, inner_ev;
  for (const obs::TraceEvent& ev : tracer.events()) {
    if (ev.name == "outer") outer_ev = ev;
    if (ev.name == "inner") inner_ev = ev;
  }
  ASSERT_EQ(outer_ev.kind, obs::TraceEvent::Kind::kComplete);
  ASSERT_EQ(inner_ev.kind, obs::TraceEvent::Kind::kComplete);
  // Inner interval nests inside outer on the virtual clock.
  EXPECT_GE(inner_ev.ts_s, outer_ev.ts_s);
  EXPECT_LE(inner_ev.ts_s + inner_ev.dur_s, outer_ev.ts_s + outer_ev.dur_s);
  EXPECT_DOUBLE_EQ(outer_ev.ts_s, 0.0);
  EXPECT_DOUBLE_EQ(outer_ev.dur_s, 3.0);
  EXPECT_DOUBLE_EQ(inner_ev.ts_s, 1.0);
  EXPECT_DOUBLE_EQ(inner_ev.dur_s, 2.0);
}

TEST(TracerTest, RingBufferDropsOldest) {
  TracerWindow window;
  obs::Tracer& tracer = obs::Tracer::instance();
  const std::size_t saved_capacity = tracer.capacity();
  tracer.set_capacity(4);
  for (int i = 0; i < 6; ++i) {
    tracer.instant(obs::kCatPhase, "e" + std::to_string(i), 0, "cpu");
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const std::vector<obs::TraceEvent> evs = tracer.events();
  EXPECT_EQ(evs.front().name, "e2");  // e0, e1 fell off the front
  EXPECT_EQ(evs.back().name, "e5");
  tracer.set_capacity(saved_capacity);
}

TEST(TracerTest, ChromeTraceJsonIsWellFormed) {
  TracerWindow window;
  obs::Tracer& tracer = obs::Tracer::instance();
  // Names with every character class the escaper must handle.
  tracer.complete(obs::kCatStream, "quote\"back\\slash", 0, "compute", 0.0, 1.0);
  tracer.instant(obs::kCatChunk, "newline\nand\ttab\x01", 1, "chunk", 42.0, true);
  tracer.counter(obs::kCatMemory, "hbm bytes", obs::kNodeRank, 1e9);

  const std::string json = tracer.chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

// ---- Metrics ----------------------------------------------------------------

TEST(MetricsTest, CounterGaugeHistogramAggregation) {
  obs::MetricsRegistry reg;
  reg.counter("req", "rank=0").add(3);
  reg.counter("req", "rank=0").add(2);  // same instrument: labels key
  reg.counter("req", "rank=1").add(7);
  reg.gauge("temp").set(1.5);
  reg.gauge("temp").set(2.5);  // last write wins
  obs::Histogram& h = reg.histogram("lat");
  h.observe(0.5);
  h.observe(2.0);
  h.observe(3.5);

  EXPECT_EQ(reg.counter("req", "rank=0").value(), 5);
  EXPECT_EQ(reg.counter("req", "rank=1").value(), 7);
  EXPECT_DOUBLE_EQ(reg.gauge("temp").value(), 2.5);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 6.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 3.5);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  const std::vector<std::int64_t> buckets = h.buckets();
  EXPECT_EQ(buckets[0], 1);  // 0.5 < 1
  EXPECT_EQ(buckets[2], 2);  // 2.0 and 3.5 in [2, 4)

  EXPECT_EQ(reg.snapshot().size(), 4u);
  EXPECT_TRUE(JsonChecker(reg.json()).valid()) << reg.json();
}

TEST(MetricsTest, EmptyHistogramIsZeroNotNan) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("empty");
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_TRUE(JsonChecker(reg.json()).valid());
}

// ---- phase_of ---------------------------------------------------------------

TEST(PhaseOfTest, ClassifiesBlockSpanVocabulary) {
  EXPECT_EQ(obs::phase_of("proj.3"), "qkv");
  EXPECT_EQ(obs::phase_of("bwd.qkv_proj.1"), "qkv");
  EXPECT_EQ(obs::phase_of("a2a.0"), "all2all");
  EXPECT_EQ(obs::phase_of("a2a_back.2"), "all2all");
  EXPECT_EQ(obs::phase_of("bwd.a2a_qkv.1"), "all2all");
  EXPECT_EQ(obs::phase_of("attn.1.0"), "attention");
  EXPECT_EQ(obs::phase_of("bwd.attn.0.3"), "attention");
  EXPECT_EQ(obs::phase_of("post.0"), "ffn");
  EXPECT_EQ(obs::phase_of("bwd.ffn.2"), "ffn");
  EXPECT_EQ(obs::phase_of("bwd.out_proj.0"), "ffn");
  EXPECT_EQ(obs::phase_of("fetch.k.0.1"), "fetch");
  EXPECT_EQ(obs::phase_of("offload.v.0.1"), "offload");
  EXPECT_EQ(obs::phase_of("embed"), "embed");
  EXPECT_EQ(obs::phase_of("bwd.embed"), "embed");
  EXPECT_EQ(obs::phase_of("loss"), "loss");
  EXPECT_EQ(obs::phase_of("optimizer"), "optimizer");
  EXPECT_EQ(obs::phase_of("mystery"), "other");
}

// ---- Profiled step: bit-identical and complete ------------------------------

TEST(ProfilerTest, ProfiledFpdtStepBitIdenticalToUnprofiled) {
  const nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 64);
  const int world = 2;
  core::FpdtConfig fcfg;
  fcfg.chunks_per_rank = 2;
  data::SyntheticCorpus corpus(cfg.vocab, 11);
  const std::vector<std::int32_t> tokens = corpus.sample(2 * world * fcfg.chunks_per_rank * 8 + 1);

  // Reference: same seed, tracer off.
  obs::Tracer::instance().set_enabled(false);
  nn::Model plain_model(cfg, 42);
  core::FpdtTrainer plain(plain_model, world, fcfg);
  const double plain_loss = plain.train_step_grads(tokens);

  // Profiled: tracer on for the whole step.
  double traced_loss = 0.0;
  nn::Model traced_model(cfg, 42);
  {
    TracerWindow window;
    core::FpdtTrainer traced(traced_model, world, fcfg);
    traced_loss = traced.train_step_grads(tokens);
    traced.env().synchronize_streams();
  }

  EXPECT_EQ(plain_loss, traced_loss);  // bit-identical, not just close
  std::vector<const nn::Param*> plain_params, traced_params;
  plain_model.visit_params([&](nn::Param& p) { plain_params.push_back(&p); });
  traced_model.visit_params([&](nn::Param& p) { traced_params.push_back(&p); });
  ASSERT_EQ(plain_params.size(), traced_params.size());
  for (std::size_t i = 0; i < plain_params.size(); ++i) {
    const Tensor& a = plain_params[i]->grad;
    const Tensor& b = traced_params[i]->grad;
    ASSERT_EQ(a.numel(), b.numel());
    for (std::int64_t k = 0; k < a.numel(); ++k) {
      ASSERT_EQ(a.data()[k], b.data()[k]) << plain_params[i]->name << "[" << k << "]";
    }
  }

  // The step's trace covers every built-in category on both ranks.
  std::set<std::string> cats;
  std::set<int> ranks;
  for (const obs::TraceEvent& ev : obs::Tracer::instance().events()) {
    cats.insert(ev.category);
    if (ev.rank >= 0) ranks.insert(ev.rank);
  }
  EXPECT_TRUE(cats.count(obs::kCatStream));
  EXPECT_TRUE(cats.count(obs::kCatChunk));
  EXPECT_TRUE(cats.count(obs::kCatComm));
  EXPECT_TRUE(cats.count(obs::kCatMemory));
  EXPECT_GE(ranks.size(), 2u);
  EXPECT_TRUE(JsonChecker(obs::Tracer::instance().chrome_trace_json()).valid());
}

TEST(ProfilerTest, RunProfileReportsOverlapFromTimelineReport) {
  obs::ProfileOptions opt;
  opt.steps = 1;
  opt.world = 2;
  opt.chunks = 2;
  opt.chunk_tokens = 16;
  opt.trace_path.clear();    // no files from unit tests
  opt.metrics_path.clear();
  const obs::ProfileResult res = obs::run_profile(opt);
  ASSERT_EQ(res.steps.size(), 1u);
  const obs::StepStats& st = res.steps[0];
  // One source of truth: StepStats' ratio is the TimelineReport's.
  const double transfer = st.h2d_busy_s + st.d2h_busy_s;
  ASSERT_GT(transfer, 0.0);
  EXPECT_DOUBLE_EQ(st.overlap_ratio, st.hidden_transfer_s / transfer);
  EXPECT_DOUBLE_EQ(st.exposed_transfer_s, transfer - st.hidden_transfer_s);
  // ...and the registry gauge agrees with it.
  EXPECT_DOUBLE_EQ(obs::MetricsRegistry::global().gauge("overlap.ratio", "rank=0").value(),
                   st.overlap_ratio);
  EXPECT_GT(st.tokens_per_s, 0.0);
  EXPECT_GT(st.hbm_peak_bytes, 0);
  EXPECT_GT(st.all2all_bytes, 0);
  EXPECT_FALSE(obs::tracing_enabled());  // run_profile restores the flag
  EXPECT_TRUE(JsonChecker(res.json(opt)).valid());
}

}  // namespace
}  // namespace fpdt
