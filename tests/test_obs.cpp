// The observability layer (src/obs): tracer semantics (gating, ring buffer,
// scope nesting on the virtual clock), Chrome-trace JSON well-formedness,
// metrics aggregation, and the profiler's headline guarantee — profiling an
// FPDT step changes nothing about its results while producing a trace that
// covers every built-in category on every rank.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <set>
#include <string>
#include <vector>

#include "core/fpdt_trainer.h"
#include "data/synthetic_corpus.h"
#include "kernels/backend.h"
#include "nn/model.h"
#include "nn/model_config.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "obs/workmeter.h"
#include "runtime/stream.h"

// Counting replacement allocator for the zero-allocation contract tests:
// every operator-new in this binary bumps one relaxed atomic. The default
// array and nothrow forms forward here, so the single pair suffices;
// aligned forms keep their defaults (they pair among themselves).
static std::atomic<std::uint64_t> g_alloc_count{0};

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace fpdt {
namespace {

// RAII tracer window: clears the global tracer, enables it, and guarantees
// it is disabled again when the test block ends (other suites in this
// binary must not observe a leaked enable).
struct TracerWindow {
  TracerWindow() {
    obs::Tracer::instance().clear();
    obs::Tracer::instance().set_enabled(true);
  }
  ~TracerWindow() { obs::Tracer::instance().set_enabled(false); }
};

// ---- Hand-rolled JSON syntax checker ---------------------------------------
// No JSON library in the image; a recursive-descent validator is enough to
// assert the exporters can never emit a document Perfetto would reject.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool eof() const { return pos_ >= s_.size(); }
  char peek() const { return s_[pos_]; }
  bool eat(char c) {
    if (eof() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) ++pos_;
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!eat(*p)) return false;
    }
    return true;
  }

  bool object() {
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool array() {
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool string() {
    if (!eat('"')) return false;
    while (!eof()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c == '\\') {
        if (eof()) return false;
        const char esc = s_[pos_++];
        if (esc == 'u') {
          for (int k = 0; k < 4; ++k) {
            if (eof() || std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0) return false;
            ++pos_;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' && esc != 'f' &&
                   esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (eat('-')) {}
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (eat('.')) {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(JsonCheckerTest, AcceptsValidRejectsBroken) {
  EXPECT_TRUE(JsonChecker(R"({"a":[1,2.5,-3e4,"x\n",true,null],"b":{}})").valid());
  EXPECT_FALSE(JsonChecker(R"({"a":1,})").valid());
  EXPECT_FALSE(JsonChecker(R"({"a" 1})").valid());
  EXPECT_FALSE(JsonChecker("{\"a\":\"\n\"}").valid());  // raw newline in string
}

// ---- Tracer -----------------------------------------------------------------

TEST(TracerTest, DisabledTracerEmitsNothing) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_enabled(false);
  tracer.clear();

  // Every built-in hook: stream spans, pool samples, a TraceScope.
  runtime::Stream s("s");
  s.set_trace_identity(0, "compute");
  s.enqueue("work", 1.0);
  s.synchronize();
  runtime::MemoryPool pool("p", -1);
  pool.charge(64);
  pool.discharge(64);
  { FPDT_TRACE_SCOPE(obs::kCatPhase, "nothing"); }

  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, ScopeNestingAndClockMonotonicity) {
  TracerWindow window;
  obs::Tracer& tracer = obs::Tracer::instance();

  {
    obs::TraceScope outer(obs::kCatPhase, "outer", 0);
    tracer.complete(obs::kCatStream, "a", 0, "compute", 0.0, 1.0);
    {
      obs::TraceScope inner(obs::kCatPhase, "inner", 0);
      tracer.complete(obs::kCatStream, "b", 0, "compute", 1.0, 2.0);
    }
  }
  EXPECT_DOUBLE_EQ(tracer.clock(0), 3.0);  // advanced to the last span's finish

  obs::TraceEvent outer_ev, inner_ev;
  for (const obs::TraceEvent& ev : tracer.events()) {
    if (ev.name == "outer") outer_ev = ev;
    if (ev.name == "inner") inner_ev = ev;
  }
  ASSERT_EQ(outer_ev.kind, obs::TraceEvent::Kind::kComplete);
  ASSERT_EQ(inner_ev.kind, obs::TraceEvent::Kind::kComplete);
  // Inner interval nests inside outer on the virtual clock.
  EXPECT_GE(inner_ev.ts_s, outer_ev.ts_s);
  EXPECT_LE(inner_ev.ts_s + inner_ev.dur_s, outer_ev.ts_s + outer_ev.dur_s);
  EXPECT_DOUBLE_EQ(outer_ev.ts_s, 0.0);
  EXPECT_DOUBLE_EQ(outer_ev.dur_s, 3.0);
  EXPECT_DOUBLE_EQ(inner_ev.ts_s, 1.0);
  EXPECT_DOUBLE_EQ(inner_ev.dur_s, 2.0);
}

TEST(TracerTest, RingBufferDropsOldest) {
  TracerWindow window;
  obs::Tracer& tracer = obs::Tracer::instance();
  const std::size_t saved_capacity = tracer.capacity();
  tracer.set_capacity(4);
  for (int i = 0; i < 6; ++i) {
    tracer.instant(obs::kCatPhase, "e" + std::to_string(i), 0, "cpu");
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const std::vector<obs::TraceEvent> evs = tracer.events();
  EXPECT_EQ(evs.front().name, "e2");  // e0, e1 fell off the front
  EXPECT_EQ(evs.back().name, "e5");
  tracer.set_capacity(saved_capacity);
}

TEST(TracerTest, ChromeTraceJsonIsWellFormed) {
  TracerWindow window;
  obs::Tracer& tracer = obs::Tracer::instance();
  // Names with every character class the escaper must handle.
  tracer.complete(obs::kCatStream, "quote\"back\\slash", 0, "compute", 0.0, 1.0);
  tracer.instant(obs::kCatChunk, "newline\nand\ttab\x01", 1, "chunk", 42.0, true);
  tracer.counter(obs::kCatMemory, "hbm bytes", obs::kNodeRank, 1e9);

  const std::string json = tracer.chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

// ---- Metrics ----------------------------------------------------------------

TEST(MetricsTest, CounterGaugeHistogramAggregation) {
  obs::MetricsRegistry reg;
  reg.counter("req", "rank=0").add(3);
  reg.counter("req", "rank=0").add(2);  // same instrument: labels key
  reg.counter("req", "rank=1").add(7);
  reg.gauge("temp").set(1.5);
  reg.gauge("temp").set(2.5);  // last write wins
  obs::Histogram& h = reg.histogram("lat");
  h.observe(0.5);
  h.observe(2.0);
  h.observe(3.5);

  EXPECT_EQ(reg.counter("req", "rank=0").value(), 5);
  EXPECT_EQ(reg.counter("req", "rank=1").value(), 7);
  EXPECT_DOUBLE_EQ(reg.gauge("temp").value(), 2.5);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 6.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 3.5);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  const std::vector<std::int64_t> buckets = h.buckets();
  EXPECT_EQ(buckets[0], 1);  // 0.5 < 1
  EXPECT_EQ(buckets[2], 2);  // 2.0 and 3.5 in [2, 4)

  EXPECT_EQ(reg.snapshot().size(), 4u);
  EXPECT_TRUE(JsonChecker(reg.json()).valid()) << reg.json();
}

TEST(MetricsTest, EmptyHistogramIsZeroNotNan) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("empty");
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_TRUE(JsonChecker(reg.json()).valid());
}

// ---- phase_of ---------------------------------------------------------------

TEST(PhaseOfTest, ClassifiesBlockSpanVocabulary) {
  EXPECT_EQ(obs::phase_of("proj.3"), "qkv");
  EXPECT_EQ(obs::phase_of("bwd.qkv_proj.1"), "qkv");
  EXPECT_EQ(obs::phase_of("a2a.0"), "all2all");
  EXPECT_EQ(obs::phase_of("a2a_back.2"), "all2all");
  EXPECT_EQ(obs::phase_of("bwd.a2a_qkv.1"), "all2all");
  EXPECT_EQ(obs::phase_of("attn.1.0"), "attention");
  EXPECT_EQ(obs::phase_of("bwd.attn.0.3"), "attention");
  EXPECT_EQ(obs::phase_of("post.0"), "ffn");
  EXPECT_EQ(obs::phase_of("bwd.ffn.2"), "ffn");
  EXPECT_EQ(obs::phase_of("bwd.out_proj.0"), "ffn");
  EXPECT_EQ(obs::phase_of("fetch.k.0.1"), "fetch");
  EXPECT_EQ(obs::phase_of("offload.v.0.1"), "offload");
  EXPECT_EQ(obs::phase_of("embed"), "embed");
  EXPECT_EQ(obs::phase_of("bwd.embed"), "embed");
  EXPECT_EQ(obs::phase_of("loss"), "loss");
  EXPECT_EQ(obs::phase_of("optimizer"), "optimizer");
  EXPECT_EQ(obs::phase_of("mystery"), "other");
}

// ---- Profiled step: bit-identical and complete ------------------------------

TEST(ProfilerTest, ProfiledFpdtStepBitIdenticalToUnprofiled) {
  const nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 64);
  const int world = 2;
  core::FpdtConfig fcfg;
  fcfg.chunks_per_rank = 2;
  data::SyntheticCorpus corpus(cfg.vocab, 11);
  const std::vector<std::int32_t> tokens = corpus.sample(2 * world * fcfg.chunks_per_rank * 8 + 1);

  // Reference: same seed, tracer off.
  obs::Tracer::instance().set_enabled(false);
  nn::Model plain_model(cfg, 42);
  core::FpdtTrainer plain(plain_model, world, fcfg);
  const double plain_loss = plain.train_step_grads(tokens);

  // Profiled: tracer on for the whole step.
  double traced_loss = 0.0;
  nn::Model traced_model(cfg, 42);
  {
    TracerWindow window;
    core::FpdtTrainer traced(traced_model, world, fcfg);
    traced_loss = traced.train_step_grads(tokens);
    traced.env().synchronize_streams();
  }

  EXPECT_EQ(plain_loss, traced_loss);  // bit-identical, not just close
  std::vector<const nn::Param*> plain_params, traced_params;
  plain_model.visit_params([&](nn::Param& p) { plain_params.push_back(&p); });
  traced_model.visit_params([&](nn::Param& p) { traced_params.push_back(&p); });
  ASSERT_EQ(plain_params.size(), traced_params.size());
  for (std::size_t i = 0; i < plain_params.size(); ++i) {
    const Tensor& a = plain_params[i]->grad;
    const Tensor& b = traced_params[i]->grad;
    ASSERT_EQ(a.numel(), b.numel());
    for (std::int64_t k = 0; k < a.numel(); ++k) {
      ASSERT_EQ(a.data()[k], b.data()[k]) << plain_params[i]->name << "[" << k << "]";
    }
  }

  // The step's trace covers every built-in category on both ranks.
  std::set<std::string> cats;
  std::set<int> ranks;
  for (const obs::TraceEvent& ev : obs::Tracer::instance().events()) {
    cats.insert(ev.category);
    if (ev.rank >= 0) ranks.insert(ev.rank);
  }
  EXPECT_TRUE(cats.count(obs::kCatStream));
  EXPECT_TRUE(cats.count(obs::kCatChunk));
  EXPECT_TRUE(cats.count(obs::kCatComm));
  EXPECT_TRUE(cats.count(obs::kCatMemory));
  EXPECT_GE(ranks.size(), 2u);
  EXPECT_TRUE(JsonChecker(obs::Tracer::instance().chrome_trace_json()).valid());
}

TEST(ProfilerTest, RunProfileReportsOverlapFromTimelineReport) {
  obs::ProfileOptions opt;
  opt.steps = 1;
  opt.world = 2;
  opt.chunks = 2;
  opt.chunk_tokens = 16;
  opt.trace_path.clear();    // no files from unit tests
  opt.metrics_path.clear();
  const obs::ProfileResult res = obs::run_profile(opt);
  ASSERT_EQ(res.steps.size(), 1u);
  const obs::StepStats& st = res.steps[0];
  // One source of truth: StepStats' ratio is the TimelineReport's.
  const double transfer = st.h2d_busy_s + st.d2h_busy_s;
  ASSERT_GT(transfer, 0.0);
  EXPECT_DOUBLE_EQ(st.overlap_ratio, st.hidden_transfer_s / transfer);
  EXPECT_DOUBLE_EQ(st.exposed_transfer_s, transfer - st.hidden_transfer_s);
  // ...and the registry gauge agrees with it.
  EXPECT_DOUBLE_EQ(obs::MetricsRegistry::global().gauge("overlap.ratio", "rank=0").value(),
                   st.overlap_ratio);
  EXPECT_GT(st.tokens_per_s, 0.0);
  EXPECT_GT(st.hbm_peak_bytes, 0);
  EXPECT_GT(st.all2all_bytes, 0);
  EXPECT_FALSE(obs::tracing_enabled());  // run_profile restores the flag
  EXPECT_TRUE(JsonChecker(res.json(opt)).valid());
}

// ---- Workmeter --------------------------------------------------------------

// RAII meter window mirroring TracerWindow: zeroed, enabled, and guaranteed
// disabled again on exit so other suites never observe a leaked enable.
struct MeterWindow {
  MeterWindow() {
    obs::Workmeter::instance().reset();
    obs::Workmeter::instance().set_enabled(true);
  }
  ~MeterWindow() { obs::Workmeter::instance().set_enabled(false); }
};

TEST(WorkmeterTest, ChargePhaseAttributionAndSince) {
  MeterWindow window;
  obs::Workmeter& meter = obs::Workmeter::instance();
  const obs::WorkSnapshot base = meter.snapshot();

  {
    obs::MeterPhase phase("test.phase_a");
    meter.charge(obs::OpKind::kGemm, {100, 40});
    meter.charge(obs::OpKind::kGemm, {20, 8});
  }
  meter.charge(obs::OpKind::kNorm, {7, 3});  // outside any phase span

  const obs::WorkSnapshot w = meter.snapshot().since(base);
  const int gemm = static_cast<int>(obs::OpKind::kGemm);
  const int norm = static_cast<int>(obs::OpKind::kNorm);
  EXPECT_EQ(w.kind[gemm].flops, 120);
  EXPECT_EQ(w.kind[gemm].bytes, 48);
  EXPECT_EQ(w.calls[gemm], 2);
  EXPECT_EQ(w.kind[norm].flops, 7);
  EXPECT_EQ(w.calls[norm], 1);
  EXPECT_EQ(w.total_flops(), 127);
  EXPECT_EQ(w.total_bytes(), 51);
  ASSERT_TRUE(w.phase.count("test.phase_a"));
  EXPECT_EQ(w.phase.at("test.phase_a").flops, 120);
  ASSERT_TRUE(w.phase.count("unattributed"));
  EXPECT_EQ(w.phase.at("unattributed").flops, 7);
}

TEST(WorkmeterTest, TraceScopePhaseTagsWorkWithoutTracer) {
  // Phase attribution rides the existing FPDT_TRACE_SCOPE(kCatPhase, ...)
  // spans and must work with the *tracer* disabled — metering and tracing
  // are independent switches.
  obs::Tracer::instance().set_enabled(false);
  MeterWindow window;
  obs::Workmeter& meter = obs::Workmeter::instance();
  const obs::WorkSnapshot base = meter.snapshot();
  {
    FPDT_TRACE_SCOPE(obs::kCatPhase, "blocks.forward");
    meter.charge(obs::OpKind::kAttention, {50, 10});
  }
  meter.charge(obs::OpKind::kAttention, {5, 1});  // after scope exit
  const obs::WorkSnapshot w = meter.snapshot().since(base);
  ASSERT_TRUE(w.phase.count("blocks.forward"));
  EXPECT_EQ(w.phase.at("blocks.forward").flops, 50);
  ASSERT_TRUE(w.phase.count("unattributed"));
  EXPECT_EQ(w.phase.at("unattributed").flops, 5);  // tag restored on exit
}

TEST(WorkmeterTest, MeteredDispatchAddsNoAllocations) {
  // The charge path is a relaxed load plus atomic adds on preallocated
  // slots: dispatching through the metered registry backend must allocate
  // exactly as much with the meter on as off — which for an in-place
  // kernel is nothing at all.
  const kernels::Backend& be = kernels::backend("scalar");
  std::vector<float> x(static_cast<std::size_t>(64 * 33), 0.25f);

  obs::Workmeter& meter = obs::Workmeter::instance();
  meter.set_enabled(false);
  be.softmax_rows(x.data(), 64, 33);  // warm-up: lazy init outside the window

  const std::uint64_t before_off = g_alloc_count.load();
  for (int i = 0; i < 8; ++i) be.softmax_rows(x.data(), 64, 33);
  const std::uint64_t off_allocs = g_alloc_count.load() - before_off;

  {
    MeterWindow window;
    obs::MeterPhase phase("test.alloc");  // interned before the window
    const std::uint64_t before_on = g_alloc_count.load();
    for (int i = 0; i < 8; ++i) be.softmax_rows(x.data(), 64, 33);
    const std::uint64_t on_allocs = g_alloc_count.load() - before_on;
    EXPECT_EQ(off_allocs, 0u);
    EXPECT_EQ(on_allocs, 0u);
  }
}

TEST(WorkmeterTest, MeteringDoesNotPerturbTraining) {
  // Same headline guarantee as the tracer: a metered FPDT step is
  // bit-identical to an unmetered one — the meter observes shapes, never
  // touches the math.
  const nn::ModelConfig cfg = nn::tiny_gpt(32, 1, 4, 64);
  const int world = 2;
  core::FpdtConfig fcfg;
  fcfg.chunks_per_rank = 2;
  data::SyntheticCorpus corpus(cfg.vocab, 11);
  const std::vector<std::int32_t> tokens = corpus.sample(2 * world * fcfg.chunks_per_rank * 8 + 1);

  obs::Workmeter::instance().set_enabled(false);
  nn::Model plain_model(cfg, 42);
  core::FpdtTrainer plain(plain_model, world, fcfg);
  const double plain_loss = plain.train_step_grads(tokens);

  double metered_loss = 0.0;
  obs::WorkSnapshot w;
  {
    MeterWindow window;
    nn::Model metered_model(cfg, 42);
    core::FpdtTrainer metered(metered_model, world, fcfg);
    metered_loss = metered.train_step_grads(tokens);
    w = obs::Workmeter::instance().snapshot();
  }

  EXPECT_EQ(plain_loss, metered_loss);  // bit-identical, not just close
  // ...and the step actually charged work in every op family it exercises
  // (standalone softmax_rows is not on the training path — attention's
  // online softmax is charged as kAttention and the loss head fuses its
  // own logsumexp).
  for (int k = 0; k < obs::kOpKinds; ++k) {
    if (static_cast<obs::OpKind>(k) == obs::OpKind::kSoftmax) continue;
    EXPECT_GT(w.calls[k], 0) << obs::op_kind_name(static_cast<obs::OpKind>(k));
    EXPECT_GT(w.kind[k].flops, 0) << obs::op_kind_name(static_cast<obs::OpKind>(k));
  }
}

// ---- Histogram percentiles --------------------------------------------------

TEST(MetricsTest, HistogramPercentilesMatchSortedOracle) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat");
  std::vector<double> vals;
  std::uint64_t state = 12345;
  for (int i = 0; i < 1000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double v = static_cast<double>(state >> 11) / static_cast<double>(1ULL << 53) * 100.0;
    vals.push_back(v);
    h.observe(v);
  }
  std::vector<double> sorted = vals;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.001, 0.25, 0.5, 0.95, 0.99, 1.0}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::max<std::int64_t>(1, static_cast<std::int64_t>(std::ceil(q * 1000.0))));
    EXPECT_DOUBLE_EQ(h.percentile(q), sorted[rank - 1]) << "q=" << q;  // exact, not approximate
  }
  // The registry snapshot carries the same exact percentiles.
  for (const obs::MetricsRegistry::Entry& e : reg.snapshot()) {
    if (e.name != "lat") continue;
    EXPECT_DOUBLE_EQ(e.p50, h.percentile(0.5));
    EXPECT_DOUBLE_EQ(e.p95, h.percentile(0.95));
    EXPECT_DOUBLE_EQ(e.p99, h.percentile(0.99));
  }
  EXPECT_TRUE(JsonChecker(reg.json()).valid()) << reg.json();
}

TEST(MetricsTest, HistogramPercentileOverflowFallsBackToBuckets) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("big");
  // Exceed the exact-sample retention cap so percentile() takes the bucket
  // interpolation path; the estimate must stay inside the observed range.
  const std::int64_t n = static_cast<std::int64_t>(obs::Histogram::kMaxExactSamples) + 500;
  for (std::int64_t i = 0; i < n; ++i) h.observe(1.0 + static_cast<double>(i % 1000));
  ASSERT_GT(h.count(), static_cast<std::int64_t>(obs::Histogram::kMaxExactSamples));
  for (const double q : {0.5, 0.95, 0.99}) {
    const double p = h.percentile(q);
    EXPECT_GE(p, h.min()) << "q=" << q;
    EXPECT_LE(p, h.max()) << "q=" << q;
  }
}

TEST(MetricsTest, BucketLabelsAreHalfOpenWithOpenTop) {
  EXPECT_EQ(obs::Histogram::bucket_label(0), "[0,1)");
  EXPECT_EQ(obs::Histogram::bucket_label(1), "[1,2)");
  EXPECT_EQ(obs::Histogram::bucket_label(5), "[16,32)");
  EXPECT_EQ(obs::Histogram::bucket_label(21), "[1048576,2^21)");
  // The top bucket's upper edge is open — it absorbs everything upward.
  EXPECT_EQ(obs::Histogram::bucket_label(obs::Histogram::kBuckets - 1), "[2^62,+inf)");
  EXPECT_EQ(obs::Histogram::bucket_label(99), "[2^62,+inf)");  // clamped
}

// ---- Roofline / phase work in the profiler ----------------------------------

TEST(ProfilerTest, RunProfileCarriesRooflineAndPhaseWork) {
  obs::ProfileOptions opt;
  opt.steps = 1;
  opt.world = 2;
  opt.chunks = 2;
  opt.chunk_tokens = 16;
  opt.trace_path.clear();
  opt.metrics_path.clear();
  const obs::ProfileResult res = obs::run_profile(opt);
  ASSERT_EQ(res.steps.size(), 1u);
  const obs::StepStats& st = res.steps[0];

  EXPECT_GT(st.flops, 0);
  EXPECT_GT(st.op_bytes, 0);
  EXPECT_GT(st.mfu, 0.0);
  EXPECT_LE(st.mfu, 1.0);
  EXPECT_GT(st.achieved_gbps, 0.0);
  EXPECT_GT(st.arith_intensity, 0.0);
  EXPECT_GE(st.parallel_efficiency, 0.0);

  // Phase attribution is a partition: per-phase FLOPs sum to the step's
  // total, and per-phase MFU contributions sum to the step MFU.
  std::int64_t phase_flop_sum = 0;
  double phase_mfu_sum = 0.0;
  for (const auto& [phase, f] : st.phase_flops) phase_flop_sum += f;
  for (const auto& [phase, m] : st.phase_mfu) phase_mfu_sum += m;
  EXPECT_EQ(phase_flop_sum, st.flops);
  EXPECT_NEAR(phase_mfu_sum, st.mfu, 1e-12);
  // The trainer's phase spans attribute the bulk of the work: the forward
  // and backward block phases must both appear with real FLOPs.
  ASSERT_TRUE(st.phase_flops.count("blocks.forward"));
  ASSERT_TRUE(st.phase_flops.count("blocks.backward"));
  EXPECT_GT(st.phase_flops.at("blocks.forward"), 0);
  EXPECT_GT(st.phase_flops.at("blocks.backward"), 0);

  EXPECT_FALSE(obs::work_metering_enabled());  // run_profile restores the flag
  EXPECT_TRUE(JsonChecker(res.json(opt)).valid());
}

TEST(TracerTest, PerfCountersInterleaveWithSpansInJson) {
  TracerWindow window;
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.complete(obs::kCatStream, "span_a", 0, "compute", 0.0, 1.0);
  tracer.counter(obs::kCatPerf, "mfu", 0, 0.42);
  tracer.counter(obs::kCatPerf, "achieved_gbps", 0, 12.5);
  tracer.complete(obs::kCatStream, "span_b", 0, "compute", 1.0, 2.0);

  const std::string json = tracer.chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counter events
  EXPECT_NE(json.find("\"mfu\""), std::string::npos);
  EXPECT_NE(json.find(obs::kCatPerf), std::string::npos);
}

}  // namespace
}  // namespace fpdt
