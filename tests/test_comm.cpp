#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "comm/process_group.h"
#include "common/rng.h"
#include "tests/test_util.h"

namespace fpdt {
namespace {

using comm::ProcessGroup;

std::vector<Tensor> make_rank_tensors(int world, std::vector<std::int64_t> shape,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> out;
  for (int r = 0; r < world; ++r) out.push_back(Tensor::randn(shape, rng));
  return out;
}

// Parameterised over (world size, s_local, h_global, d).
class AllToAllParam : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(AllToAllParam, RoundTripIsIdentity) {
  auto [P, s, h, d] = GetParam();
  ProcessGroup pg(P);
  auto local = make_rank_tensors(P, {s, h, d}, 11);
  auto global = pg.all_to_all_heads_to_seq(local);
  ASSERT_EQ(static_cast<int>(global.size()), P);
  EXPECT_EQ(global[0].dim(0), static_cast<std::int64_t>(P) * s);
  EXPECT_EQ(global[0].dim(1), h / P);
  auto back = pg.all_to_all_seq_to_heads(global);
  for (int r = 0; r < P; ++r) {
    EXPECT_LT(max_abs_diff(back[static_cast<std::size_t>(r)], local[static_cast<std::size_t>(r)]),
              1e-7)
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllToAllParam,
                         ::testing::Values(std::tuple{1, 4, 4, 2}, std::tuple{2, 3, 4, 2},
                                           std::tuple{4, 2, 8, 4}, std::tuple{4, 5, 4, 8},
                                           std::tuple{8, 1, 8, 2}));

// Encode (rank, token, head) into values and verify the exact Ulysses
// re-shard semantics: rank j ends with head block j from every rank, with
// sequence pieces in rank order.
TEST(AllToAllTest, HeadScatterSequenceGatherLayout) {
  const int P = 4;
  const std::int64_t s = 2, h = 8, d = 1;
  ProcessGroup pg(P);
  std::vector<Tensor> local;
  for (int r = 0; r < P; ++r) {
    Tensor t({s, h, d});
    for (std::int64_t tok = 0; tok < s; ++tok) {
      for (std::int64_t hd = 0; hd < h; ++hd) {
        t.at({tok, hd, 0}) = static_cast<float>(r * 1000 + tok * 100 + hd);
      }
    }
    local.push_back(std::move(t));
  }
  auto global = pg.all_to_all_heads_to_seq(local);
  const std::int64_t h_local = h / P;
  for (int j = 0; j < P; ++j) {
    const Tensor& g = global[static_cast<std::size_t>(j)];
    for (int src = 0; src < P; ++src) {
      for (std::int64_t tok = 0; tok < s; ++tok) {
        for (std::int64_t hl = 0; hl < h_local; ++hl) {
          const float expected = static_cast<float>(src * 1000 + tok * 100 + (j * h_local + hl));
          EXPECT_EQ(g.at({src * s + tok, hl, 0}), expected)
              << "dst " << j << " src " << src << " tok " << tok << " head " << hl;
        }
      }
    }
  }
}

TEST(CollectivesTest, AllGatherConcatsInRankOrder) {
  const int P = 3;
  ProcessGroup pg(P);
  std::vector<Tensor> local;
  for (int r = 0; r < P; ++r) local.push_back(Tensor::full({2, 2}, static_cast<float>(r)));
  auto out = pg.all_gather(local);
  for (int r = 0; r < P; ++r) {
    EXPECT_EQ(out[static_cast<std::size_t>(r)].dim(0), 6);
    EXPECT_EQ(out[static_cast<std::size_t>(r)].at({0, 0}), 0.0f);
    EXPECT_EQ(out[static_cast<std::size_t>(r)].at({4, 0}), 2.0f);
  }
}

TEST(CollectivesTest, ReduceScatterSumsThenShards) {
  const int P = 2;
  ProcessGroup pg(P);
  std::vector<Tensor> full;
  full.push_back(Tensor::full({4, 1}, 1.0f));
  full.push_back(Tensor::full({4, 1}, 2.0f));
  auto out = pg.reduce_scatter(full);
  EXPECT_EQ(out[0].dim(0), 2);
  EXPECT_EQ(out[0].at({0, 0}), 3.0f);
  EXPECT_EQ(out[1].at({1, 0}), 3.0f);
}

TEST(CollectivesTest, AllReduceReplicatesSum) {
  const int P = 3;
  ProcessGroup pg(P);
  auto local = make_rank_tensors(P, {3}, 5);
  auto out = pg.all_reduce(local);
  Tensor expected = local[0].clone();
  add_(expected, local[1]);
  add_(expected, local[2]);
  for (int r = 0; r < P; ++r) {
    EXPECT_LT(max_abs_diff(out[static_cast<std::size_t>(r)], expected), 1e-6);
  }
}

TEST(CollectivesTest, RingShiftRotatesByOne) {
  const int P = 4;
  ProcessGroup pg(P);
  std::vector<Tensor> local;
  for (int r = 0; r < P; ++r) local.push_back(Tensor::full({1}, static_cast<float>(r)));
  auto out = pg.ring_shift(local);
  for (int r = 0; r < P; ++r) {
    EXPECT_EQ(out[static_cast<std::size_t>(r)].at({0}), static_cast<float>((r + P - 1) % P));
  }
  // P shifts return to start.
  auto cur = local;
  for (int i = 0; i < P; ++i) cur = pg.ring_shift(cur);
  for (int r = 0; r < P; ++r) {
    EXPECT_EQ(cur[static_cast<std::size_t>(r)].at({0}), static_cast<float>(r));
  }
}

TEST(CollectivesTest, StatsAccumulate) {
  ProcessGroup pg(2);
  auto local = make_rank_tensors(2, {2, 4, 2}, 3);
  EXPECT_EQ(pg.stats().all_to_all_bytes, 0);
  pg.all_to_all_heads_to_seq(local);
  EXPECT_GT(pg.stats().all_to_all_bytes, 0);
}

TEST(CollectivesTest, StatsAccumulateConcurrently) {
  // Regression: stats() used to mutate a mutable CommStats from const
  // collectives with no synchronization — a data race under concurrent
  // callers (parallel_for_ranks drives collectives from worker threads).
  // Counters are now relaxed atomics; this test is the TSan probe and also
  // pins exact byte accounting under contention.
  ProcessGroup pg(2);
  const auto local = make_rank_tensors(2, {4}, 11);
  constexpr int kThreads = 4;
  constexpr int kIters = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        pg.all_reduce(local);
        pg.all_gather(local);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const comm::CommStats stats = pg.stats();
  // Ring accounting at 2 bytes/element: all_reduce charges numel*2*2*(P-1),
  // all_gather charges (world*numel)*2*(P-1) — both 16 bytes per call here.
  const std::int64_t per_call = 16;
  EXPECT_EQ(stats.all_reduce_bytes, kThreads * kIters * per_call);
  EXPECT_EQ(stats.all_gather_bytes, kThreads * kIters * per_call);
  EXPECT_EQ(stats.total(), stats.all_reduce_bytes + stats.all_gather_bytes);
  pg.reset_stats();
  EXPECT_EQ(pg.stats().total(), 0);
}

TEST(GroupViewTest, SubsetCollectivesChargeParent) {
  ProcessGroup pg(4);
  comm::GroupView view(pg, {0, 2, 3});
  EXPECT_EQ(view.size(), 3);
  EXPECT_EQ(view.global_rank(0), 0);
  EXPECT_EQ(view.global_rank(1), 2);
  EXPECT_EQ(view.global_rank(2), 3);
  EXPECT_TRUE(view.contains(3));
  EXPECT_FALSE(view.contains(1));

  std::vector<Tensor> per;
  for (int i = 0; i < 3; ++i) per.push_back(Tensor::full({2}, static_cast<float>(i)));
  const std::vector<Tensor> gathered = view.all_gather(per);
  ASSERT_EQ(gathered.size(), 3u);
  for (const Tensor& g : gathered) {
    ASSERT_EQ(g.numel(), 6);
    for (std::int64_t i = 0; i < 6; ++i) {
      EXPECT_EQ(g.data()[i], static_cast<float>(i / 2));
    }
  }
  // Byte accounting lands on the parent group's counters.
  EXPECT_GT(pg.stats().all_gather_bytes, 0);

  EXPECT_THROW(comm::GroupView(pg, {}), FpdtError);
  EXPECT_THROW(comm::GroupView(pg, {0, 0}), FpdtError);
  EXPECT_THROW(comm::GroupView(pg, {0, 4}), FpdtError);
}

TEST(GroupViewTest, SubviewComposesOverOrdinals) {
  ProcessGroup pg(8);
  comm::GroupView view(pg, {0, 2, 4, 6});
  // subview() takes *ordinals of this view*, not global ranks, and keeps
  // members ascending regardless of the order given.
  comm::GroupView sub = view.subview({3, 1});
  EXPECT_EQ(sub.size(), 2);
  EXPECT_EQ(sub.global_rank(0), 2);
  EXPECT_EQ(sub.global_rank(1), 6);
  EXPECT_TRUE(sub.contains(6));
  EXPECT_FALSE(sub.contains(4));
  EXPECT_EQ(sub.members(), (std::vector<int>{2, 6}));

  // Rank translation round-trips through the nesting: every member of the
  // subview is a member of the parent view under the same global name.
  for (int o = 0; o < sub.size(); ++o) {
    EXPECT_TRUE(view.contains(sub.global_rank(o)));
  }

  // Accounting skips the intermediate view and lands on the root group, so
  // a rank in both an intra-node and an inter-node view charges one ledger.
  pg.reset_stats();
  std::vector<Tensor> per;
  for (int i = 0; i < 2; ++i) per.push_back(Tensor::full({3}, static_cast<float>(i + 1)));
  const std::vector<Tensor> reduced = sub.all_reduce(per);
  ASSERT_EQ(reduced.size(), 2u);
  for (const Tensor& t : reduced) {
    for (std::int64_t i = 0; i < 3; ++i) EXPECT_EQ(t.data()[i], 3.0f);
  }
  EXPECT_GT(pg.stats().all_reduce_bytes, 0);

  EXPECT_THROW(view.subview({}), FpdtError);
  EXPECT_THROW(view.subview({0, 4}), FpdtError);  // ordinal out of range
  EXPECT_THROW(view.subview({1, 1}), FpdtError);  // duplicate
}

TEST(GroupViewTest, SubviewCollectiveMatchesDirectViewBitwise) {
  // A nested subview over ordinals {1, 2} of {1, 3, 5, 7} must behave
  // exactly like a view built directly over global ranks {3, 5}.
  ProcessGroup pg(8);
  comm::GroupView outer(pg, {1, 3, 5, 7});
  comm::GroupView nested = outer.subview({1, 2});
  comm::GroupView direct(pg, {3, 5});

  auto in = make_rank_tensors(2, {4, 2}, 99);
  const auto via_nested = nested.all_gather(in);
  const auto via_direct = direct.all_gather(in);
  ASSERT_EQ(via_nested.size(), via_direct.size());
  for (std::size_t r = 0; r < via_nested.size(); ++r) {
    EXPECT_EQ(std::memcmp(via_nested[r].data(), via_direct[r].data(),
                          sizeof(float) * static_cast<std::size_t>(via_nested[r].numel())),
              0)
        << "ordinal " << r;
  }
}

TEST(CollectivesTest, HeadsNotDivisibleThrows) {
  ProcessGroup pg(3);
  auto local = make_rank_tensors(3, {2, 4, 2}, 3);  // 4 heads, P=3
  EXPECT_THROW(pg.all_to_all_heads_to_seq(local), FpdtError);
}

}  // namespace
}  // namespace fpdt
