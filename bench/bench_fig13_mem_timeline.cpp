// Reproduces Figure 13: the memory-footprint timeline of the backward pass
// of one Transformer block under FPDT, with FFN chunks = 2x attention
// chunks. We run the *functional* executor with allocator timeline
// recording on and render the per-phase occupancy as an ASCII profile —
// the analogue of the PyTorch profiler trace in the paper. The shape to
// verify: FFN gradient phases (first) stay strictly below the attention
// phases' envelope, i.e. "the attention part strictly binds the memory
// footprint" (§5.4).
#include <algorithm>
#include <iostream>
#include <map>

#include "common/rng.h"
#include "common/table.h"
#include "common/units.h"
#include "core/fpdt_block.h"
#include "data/rank_ordinal.h"
#include "nn/model_config.h"

using namespace fpdt;

int main() {
  const nn::ModelConfig cfg = nn::tiny_gpt(128, 1, 8, 256);
  const int world = 4;
  const std::int64_t s_global = 2048;
  Rng wrng(1);
  nn::TransformerBlock block("b", cfg, wrng);
  Rng xrng(2);
  Tensor x = Tensor::randn({s_global, cfg.d_model}, xrng);
  Tensor dz = Tensor::randn({s_global, cfg.d_model}, xrng);

  // The paper's rule: FFN chunks = 2x attention chunks keep the FFN spike
  // below the attention envelope (§5.4). Our buffer structure (recompute
  // inside the FFN backward) differs from theirs, so we sweep the
  // multiplier and report the measured crossing alongside the 2x point.
  std::cout << "FFN chunk multiplier sweep (does attention bind the footprint?):\n";
  TextTable sweep({"ffn_mult", "ffn_phase_peak", "attn_phase_peak", "attention_binds"});
  std::int64_t sufficient = 0;
  for (std::int64_t mult : {1, 2, 4, 8}) {
    core::FpdtConfig scfg;
    scfg.chunks_per_rank = 4;
    scfg.offload = true;
    scfg.ffn_chunk_multiplier = mult;
    scfg.cache_forward_outputs = false;
    core::FpdtEnv senv(world, scfg);
    senv.device(0).hbm().start_timeline();
    core::FpdtBlockExecutor sexec(block, 0, senv);
    data::RankOrdinalSharder ssh(world, scfg.chunks_per_rank);
    sexec.backward(ssh.shard_tensor(dz), ssh.shard_tensor(x));
    senv.device(0).hbm().stop_timeline();
    std::int64_t ffn_p = 0, attn_p = 0;
    for (const auto& sample : senv.device(0).hbm().timeline()) {
      if (sample.label == "bwd.ffn") ffn_p = std::max(ffn_p, sample.used_bytes);
      if (sample.label == "bwd.attn") attn_p = std::max(attn_p, sample.used_bytes);
    }
    const bool binds = attn_p >= ffn_p;
    if (binds && sufficient == 0) sufficient = mult;
    sweep.add_row({std::to_string(mult) + "x", format_bytes(ffn_p), format_bytes(attn_p),
                   binds ? "yes" : "no"});
  }
  sweep.print(std::cout);
  std::cout << "(paper: 2x suffices for its kernel buffer structure; ours crosses at "
            << sufficient << "x)\n\n";

  core::FpdtConfig fcfg;
  fcfg.chunks_per_rank = 4;
  fcfg.offload = true;
  fcfg.ffn_chunk_multiplier = std::max<std::int64_t>(2, sufficient);
  fcfg.cache_forward_outputs = false;
  core::FpdtEnv env(world, fcfg);
  env.device(0).hbm().start_timeline();
  core::FpdtBlockExecutor exec(block, 0, env);
  data::RankOrdinalSharder sh(world, fcfg.chunks_per_rank);
  exec.backward(sh.shard_tensor(dz), sh.shard_tensor(x));
  env.device(0).hbm().stop_timeline();

  const auto& timeline = env.device(0).hbm().timeline();
  std::int64_t global_peak = 0;
  std::map<std::string, std::int64_t> phase_peak;
  for (const auto& sample : timeline) {
    global_peak = std::max(global_peak, sample.used_bytes);
    auto [it, ignore] = phase_peak.try_emplace(sample.label, 0);
    it->second = std::max(it->second, sample.used_bytes);
  }

  std::cout << "Figure 13 — backward-pass memory timeline of one FPDT block (rank 0)\n";
  std::cout << "samples: " << timeline.size() << ", peak " << format_bytes(global_peak)
            << "\n\nPer-phase peak occupancy:\n";
  TextTable table({"phase", "peak", "bar"});
  for (const auto& [label, peak] : phase_peak) {
    const int width = static_cast<int>(48.0 * static_cast<double>(peak) /
                                       static_cast<double>(std::max<std::int64_t>(1, global_peak)));
    table.add_row({label, format_bytes(peak), std::string(static_cast<std::size_t>(width), '#')});
  }
  table.print(std::cout);
  table.write_csv("fig13_mem_timeline.csv");

  // ASCII occupancy strip over (downsampled) allocator events.
  std::cout << "\nOccupancy over allocator events (each column = max of a bucket):\n";
  const int cols = 100;
  const int rows_h = 12;
  std::vector<std::int64_t> buckets(cols, 0);
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const int b = static_cast<int>(i * static_cast<std::size_t>(cols) / timeline.size());
    buckets[static_cast<std::size_t>(b)] =
        std::max(buckets[static_cast<std::size_t>(b)], timeline[i].used_bytes);
  }
  for (int r = rows_h; r >= 1; --r) {
    const std::int64_t level = global_peak * r / rows_h;
    std::cout << (r == rows_h ? format_bytes(global_peak) : std::string(5, ' '))
              << std::string(6 - std::min<std::size_t>(5, 0), ' ');
    for (int c = 0; c < cols; ++c) {
      std::cout << (buckets[static_cast<std::size_t>(c)] >= level ? '#' : ' ');
    }
    std::cout << "\n";
  }
  std::cout << "           ffn-backward phases first, then attention backward (Fig. 13 order)\n";

  const std::int64_t ffn_peak = phase_peak.count("bwd.ffn") ? phase_peak["bwd.ffn"] : 0;
  const std::int64_t attn_peak = phase_peak.count("bwd.attn") ? phase_peak["bwd.attn"] : 0;
  std::cout << "\nffn-phase peak " << format_bytes(ffn_peak) << " vs attention-phase peak "
            << format_bytes(attn_peak) << " -> attention binds the footprint: "
            << (attn_peak >= ffn_peak ? "yes (matches paper)" : "NO") << "\n";
  return 0;
}
