// Reproduces Figure 10: average time spent in All2All, attention forward,
// attention backward, and three host-to-device fetching strategies, as the
// sequence-chunk size sweeps 8K..512K tokens. The paper's takeaways, which
// must hold here: All2All (NVLink) is far below everything else; attention
// compute overtakes every fetch strategy at ~32-64K tokens; beyond that the
// fetch strategies' differences are negligible.
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "nn/model_config.h"
#include "sim/cost_model.h"

using namespace fpdt;
using sim::CostModel;
using sim::FetchStrategy;

int main() {
  const nn::ModelConfig cfg = nn::llama_8b();
  const int world = 4;
  const CostModel cm(sim::a100_80g_node(), world);
  const std::int64_t h_local = cfg.n_head / world;
  const std::int64_t kv_local = cfg.n_kv_head / world;
  const std::int64_t dh = cfg.head_dim();

  TextTable table({"chunk", "all2all", "attn_fwd", "attn_bwd", "fetch_multi_gpu",
                   "fetch_1gpu_scatter", "fetch_exclusive"});
  std::int64_t crossover = 0;
  for (std::int64_t chunk = 8 * 1024; chunk <= 512 * 1024; chunk *= 2) {
    // Tensors as in §4.2: All2All on the local [s/p, h, d] slice, attention
    // on the gathered [s, h/p, d] chunk, fetch of [3, s, h/p, d] (q, k, v).
    const std::int64_t a2a_bytes =
        chunk / world * (cfg.d_model + 2 * kv_local * world * dh) * 2;
    const double a2a = cm.all2all_time(a2a_bytes);
    const double fwd =
        cm.attn_time(0.5 * CostModel::attn_pair_flops(chunk, chunk, h_local, dh));
    const double bwd = 2.5 * fwd;
    const std::int64_t fetch_bytes = 3 * chunk * h_local * dh * 2;
    const double f_multi = cm.fetch_time(fetch_bytes, FetchStrategy::kPerGpu);
    const double f_scatter = cm.fetch_time(fetch_bytes, FetchStrategy::kOneGpuScatter);
    const double f_excl = cm.fetch_time(fetch_bytes, FetchStrategy::kPerGpuExclusive);
    if (crossover == 0 && fwd > f_multi) crossover = chunk;
    table.add_row({format_token_count(chunk), format_seconds(a2a), format_seconds(fwd),
                   format_seconds(bwd), format_seconds(f_multi), format_seconds(f_scatter),
                   format_seconds(f_excl)});
  }
  std::cout << "Figure 10 — op latency vs chunk size (Llama-8B geometry, 4 GPUs)\n";
  table.print(std::cout);
  table.write_csv("fig10_op_latency.csv");
  std::cout << "\nAttention forward overtakes the multi-GPU fetch at "
            << format_token_count(crossover) << " (paper: ~32K-64K).\n";
  return 0;
}
