// Cross-checks the stream engine's *measured* transfer overlap against the
// simulator's prediction for the same forward chunk pipeline.
//
// The runtime executes the real chunked forward with prefetches on the H2D
// stream and offload retirement on the D2H stream (core/chunk_prefetcher.h);
// its virtual-time spans use rates derived from the very CostModel the
// simulator runs on (sim/runtime_bridge.h). If the executed dataflow matches
// the modelled dataflow (Fig. 8), the two overlap ratios must agree — with
// double_buffer=true transfers hide behind compute, with double_buffer=false
// the strict window exposes them.
//
// The structures are close but not identical (the runtime fetches k̂ and v̂ as
// two transfers where the simulator uses one, and offloads the lse/y caches
// the simulator folds into one task), so the check is a tolerance band on the
// ratio, not equality. Exits non-zero when the band is violated.
#include <cmath>
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "common/units.h"
#include "core/fpdt_block.h"
#include "data/rank_ordinal.h"
#include "nn/model_config.h"
#include "sim/runtime_bridge.h"
#include "sim/timeline.h"

using namespace fpdt;

int main() {
  // Chunk sizes are picked so transfer time is bandwidth-dominated (the
  // per-transfer latency the runtime pays once per buffer and the simulator
  // once per k̂/v̂ pair would otherwise skew the busy-time comparison), and
  // caching is off on both sides so modelled and executed offload traffic
  // coincide (k̂/v̂ only).
  const nn::ModelConfig cfg = nn::tiny_gpt(128, 1, 8, 256);
  const int world = 2;
  const std::int64_t u = 4;           // chunks per rank
  const std::int64_t c_local = 1024;  // tokens per rank-chunk
  const std::int64_t s_local = u * c_local;
  const std::int64_t s_global = static_cast<std::int64_t>(world) * s_local;
  const sim::CostModel cm(sim::a100_80g_node(), world);
  constexpr double kTol = 0.3;

  Rng wrng(5);
  nn::TransformerBlock block("b", cfg, wrng);
  Rng xrng(6);
  Tensor x = Tensor::randn({s_global, cfg.d_model}, xrng, 0.0, 0.5);

  std::cout << "stream overlap: measured (executed forward) vs predicted (simulator)\n"
            << "model " << cfg.name << ", " << world << " GPUs, seq "
            << format_token_count(s_global) << ", " << u << " chunks/rank\n\n";

  TextTable t({"double_buffer", "measured", "predicted", "delta", "meas_exposed",
               "pred_exposed"});
  bool ok = true;
  double measured_db = 0.0, measured_strict = 0.0;
  for (const bool db : {false, true}) {
    core::FpdtConfig fcfg;
    fcfg.chunks_per_rank = u;
    fcfg.double_buffer = db;
    fcfg.cache_forward_outputs = false;
    core::FpdtEnv env(world, fcfg);
    env.set_stream_rates(sim::stream_rates(cm));
    core::FpdtBlockExecutor exec(block, 0, env);
    data::RankOrdinalSharder sh(world, u);
    exec.forward(sh.shard_tensor(x));
    const runtime::TimelineReport measured = env.timeline_report(0);

    const runtime::TimelineReport predicted = sim::sim_timeline_report(
        sim::build_fpdt_forward_sim(cfg, cm, s_local, u, /*offload=*/true, db,
                                    /*caching=*/false));

    const double delta = measured.overlap_ratio() - predicted.overlap_ratio();
    ok = ok && std::abs(delta) <= kTol;
    (db ? measured_db : measured_strict) = measured.overlap_ratio();
    auto pct = [](double v) {
      return std::to_string(static_cast<int>(std::round(100.0 * v))) + "%";
    };
    t.add_row({db ? "true" : "false", pct(measured.overlap_ratio()),
               pct(predicted.overlap_ratio()), pct(delta),
               format_seconds(measured.exposed_transfer_s),
               format_seconds(predicted.exposed_transfer_s)});
  }
  t.print(std::cout);
  t.write_csv("stream_overlap.csv");

  std::cout << "\nagreement within +-" << static_cast<int>(100 * kTol)
            << "%: " << (ok ? "yes" : "NO") << "\n"
            << "double-buffer hides more transfer than strict: "
            << (measured_db >= measured_strict ? "yes (matches Fig. 8)" : "NO") << "\n";
  return ok ? 0 : 1;
}
