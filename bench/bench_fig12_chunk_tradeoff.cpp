// Reproduces Figure 12: MFU and HBM consumption versus sequence-chunk size
// at a fixed 256K global sequence. Chunk 256K = no chunking (the Ulysses
// baseline); 8K..128K correspond to 32..2 chunks. 2.7B/6.7B/13B use 4 GPUs,
// 30B uses 8 (as in the paper; we keep TP-free ZeRO-3 so the 13B/30B runs
// use 8/16 GPUs to fit model state, noted in the output). The paper's
// shape: memory falls steadily with smaller chunks while MFU holds until
// chunks are too small to hide the fetch latency — 64K is the sweet spot.
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "nn/model_config.h"
#include "perfmodel/evaluate.h"

using namespace fpdt;
using perfmodel::Strategy;

int main() {
  const sim::HardwareSpec hw = sim::a100_80g_node();
  const std::int64_t s_global = 256 * 1024;
  struct ModelCase {
    nn::ModelConfig cfg;
    int world;
  };
  const ModelCase cases[] = {
      {nn::gpt_2p7b(), 4},
      {nn::gpt_6p7b(), 4},
      {nn::gpt_13b(), 8},
      {nn::gpt_30b(), 16},
  };

  TextTable table({"model", "gpus", "chunk", "chunks", "mfu", "hbm_total", "model_state",
                   "activations"});
  for (const ModelCase& mc : cases) {
    for (std::int64_t chunk = 8 * 1024; chunk <= s_global; chunk *= 2) {
      Strategy st = Strategy::fpdt();
      st.fpdt_chunk_tokens = chunk;
      const perfmodel::Evaluation ev = perfmodel::evaluate(mc.cfg, st, mc.world, s_global, hw);
      const std::int64_t model_state = ev.memory.params + ev.memory.grads +
                                       ev.memory.optimizer + ev.memory.gathered_params;
      const std::int64_t acts = ev.memory.device_total() - model_state;
      table.add_row({mc.cfg.name, std::to_string(mc.world), format_token_count(chunk),
                     std::to_string(s_global / chunk), cell_pct(ev.mfu),
                     format_bytes(ev.memory.device_total()), format_bytes(model_state),
                     format_bytes(acts)});
    }
  }
  std::cout << "Figure 12 — MFU and HBM vs chunk size at 256K global sequence\n";
  table.print(std::cout);
  table.write_csv("fig12_chunk_tradeoff.csv");
  std::cout << "\nPaper shape: activation memory falls with chunk count (e.g. 2.7B: 27GB -> 18GB\n"
               "going 1 -> 2 chunks) while MFU holds until chunks are too small to hide the\n"
               "fetch latency; 64K balances both.\n";
  return 0;
}
