// Reproduces Figure 12: MFU and HBM consumption versus sequence-chunk size
// at a fixed 256K global sequence. Chunk 256K = no chunking (the Ulysses
// baseline); 8K..128K correspond to 32..2 chunks. 2.7B/6.7B use 4 GPUs; we
// keep TP-free ZeRO-3 so the 13B/30B runs use 8/16 GPUs to fit model state,
// noted in the output. The paper's shape: memory falls steadily with smaller
// chunks while MFU holds until chunks are too small to hide the fetch
// latency — 64K is the sweet spot.
//
// The sweep itself lives in tune::chunk_sweep (`fpdt tune --sweep chunk`
// emits the same table/CSV); this bench adds the shape check so a cost-model
// change that bends the curve fails the bench lane instead of silently
// shipping a different figure.
#include <iostream>
#include <string>

#include "tune/sweep.h"

using namespace fpdt;

int main() {
  const std::vector<tune::ChunkSweepRow> rows = tune::chunk_sweep();
  TextTable table = tune::chunk_sweep_table(rows);
  std::cout << "Figure 12 — MFU and HBM vs chunk size at 256K global sequence\n";
  table.print(std::cout);
  table.write_csv("fig12_chunk_tradeoff.csv");
  std::cout << "\nPaper shape: activation memory falls with chunk count (e.g. 2.7B: 27GB -> 18GB\n"
               "going 1 -> 2 chunks) while MFU holds until chunks are too small to hide the\n"
               "fetch latency; 64K balances both.\n";

  std::string why;
  if (!tune::check_chunk_curve(rows, &why)) {
    std::cerr << "fig12 curve shape check FAILED:\n" << why;
    return 1;
  }
  std::cout << "\ncurve shape check: memory monotone, MFU rises to a sweet spot in [32K, 128K]\n"
               "and stays flat beyond it — the §5.3 tradeoff holds.\n";
  return 0;
}
