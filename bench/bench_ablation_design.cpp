// Design-choice ablations beyond the paper's headline tables — each
// corresponds to a decision DESIGN.md calls out:
//
//  A. Double buffering: prefetch window 2 vs strict single buffer, across
//     chunk sizes (the mechanism of Fig. 7).
//  B. Host-fetch strategy (per-GPU DMA vs one-GPU+scatter), folded into the
//     end-to-end layer time (the §4.2 choice).
//  C. Rank-ordinal vs naive contiguous layout: what the Fig. 6 shuffle
//     saves — with the naive layout each gathered chunk is non-contiguous,
//     so the diagonal causal mask is wrong and a correct implementation
//     must fall back to per-pair masked attention with (2·r+1)/(2·u)
//     average useful work instead of the contiguous schedule's balance.
//  D. MsT comparison (§2.2): chunking only the MLP/loss leaves the
//     attention spike, capping max length far below FPDT.
//  E. Gradient-reduce spike (§6): how the PyTorch reducer's FP32 buckets
//     erode max sequence length — the paper's own "future work" bottleneck.
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "nn/model_config.h"
#include "perfmodel/evaluate.h"
#include "sim/timeline.h"

using namespace fpdt;
using perfmodel::Strategy;

int main() {
  const sim::HardwareSpec hw = sim::a100_80g_node();
  const nn::ModelConfig cfg = nn::llama_8b();
  const int world = 4;

  // ---- A. Double buffering across chunk sizes.
  {
    std::cout << "A. Double buffering vs strict single buffer (Llama-8B, 4 GPUs, 512K seq)\n";
    TextTable t({"chunk", "strict_layer", "double_buffer_layer", "speedup"});
    const sim::CostModel cm(hw, world);
    const std::int64_t s_local = 512 * 1024 / world;
    for (std::int64_t chunk = 8 * 1024; chunk <= 128 * 1024; chunk *= 2) {
      const std::int64_t u = 512 * 1024 / chunk;
      const sim::LayerTiming strict =
          sim::fpdt_layer_timing(cfg, cm, s_local, u, true, false);
      const sim::LayerTiming dbuf = sim::fpdt_layer_timing(cfg, cm, s_local, u, true, true);
      t.add_row({format_token_count(chunk), format_seconds(strict.total()),
                 format_seconds(dbuf.total()), cell_f2(strict.total() / dbuf.total()) + "x"});
    }
    t.print(std::cout);
    t.write_csv("ablation_double_buffer.csv");
  }

  // ---- B. Fetch strategies inside the pipeline.
  {
    std::cout << "\nB. Host-fetch strategy latency at the 64K sweet spot\n";
    const sim::CostModel cm(hw, world);
    const std::int64_t kv_bytes = 2 * 64 * 1024 * cfg.n_kv_head / world *
                                  cfg.head_dim() * 2;
    TextTable t({"strategy", "latency", "vs attention fwd"});
    const double attn = cm.attn_time(
        0.5 * sim::CostModel::attn_pair_flops(64 * 1024, 64 * 1024, cfg.n_head / world,
                                              cfg.head_dim()));
    const struct {
      const char* name;
      sim::FetchStrategy st;
    } rows[] = {
        {"per-GPU DMA (paper's choice)", sim::FetchStrategy::kPerGpu},
        {"one GPU + scatter", sim::FetchStrategy::kOneGpuScatter},
        {"uncontended bound", sim::FetchStrategy::kPerGpuExclusive},
    };
    for (const auto& row : rows) {
      const double ft = cm.fetch_time(kv_bytes, row.st);
      t.add_row({row.name, format_seconds(ft), cell_f2(ft / attn)});
    }
    t.print(std::cout);
    std::cout << "(all << 1x attention: any strategy hides at 64K — the paper picks per-GPU\n"
                 " DMA to avoid the scatter's synchronisation)\n";
  }

  // ---- C. Rank-ordinal layout value.
  {
    std::cout << "\nC. Rank-ordinal (Fig. 6) vs naive contiguous placement\n";
    TextTable t({"chunks/rank", "useful-work balance (ordinal)", "naive layout"});
    for (std::int64_t u : {2, 4, 8}) {
      // With the ordinal layout every rank computes the same causal pair
      // count per gathered chunk (perfect balance, by construction). With
      // the naive layout, gathered chunk i mixes chunk indices {i, i+u,
      // i+2u, ...}; the per-rank causal work of the gathered sequence is
      // unbalanced across ranks by up to the full inter-chunk span.
      const double balanced = 1.0;
      // Naive: rank r's tokens sit at global chunk r*u + i; the last rank
      // always attends ~u/(u+1) more history than the first.
      const double naive_skew = static_cast<double>(2 * u) / (u + 1);
      t.add_row({std::to_string(u), cell_f2(balanced) + "x", cell_f2(naive_skew) + "x skew"});
    }
    t.print(std::cout);
    std::cout << "(and the naive gather breaks the diagonal causal mask outright —\n"
                 " RankOrdinalTest.GatheredChunksAreContiguous tests the fix)\n";
  }

  // ---- D. MsT comparison.
  {
    std::cout << "\nD. MsT (chunked MLP+loss, unchunked attention) vs FPDT — GPT-6.7B, 4 GPUs\n";
    const nn::ModelConfig mha = nn::gpt_6p7b();  // MHA: the attention spike bites
    TextTable t({"strategy", "max_len", "hbm@max", "mfu@max"});
    for (const Strategy& st : {Strategy::ulysses(3, true, true), Strategy::mst(),
                               Strategy::fpdt()}) {
      const std::int64_t max_len = perfmodel::max_sequence(mha, st, world, hw);
      if (max_len == 0) {
        t.add_row({st.label(), "OOM", "-", "-"});
        continue;
      }
      const perfmodel::Evaluation ev = perfmodel::evaluate(mha, st, world, max_len, hw);
      t.add_row({st.label(), format_token_count(max_len),
                 format_bytes(ev.memory.device_total()), cell_pct(ev.mfu)});
    }
    t.print(std::cout);
    t.write_csv("ablation_mst.csv");
    std::cout << "(MsT buys a little over Ulysses by flattening the MLP/loss spikes; the\n"
                 " attention working set it leaves behind is exactly what FPDT removes)\n";
  }

  // ---- E. Gradient-reduce spike (§6).
  {
    std::cout << "\nE. PyTorch gradient-reduce FP32 bucket spike (the paper's §6 bottleneck)\n";
    const nn::ModelConfig big = nn::gpt_13b();
    TextTable t({"bucket (layers)", "spike", "fpdt max_len (13B, 8 GPUs)"});
    for (std::int64_t bucket : {0, 8, 16, 32}) {
      Strategy st = Strategy::fpdt();
      st.grad_reduce_bucket_layers = bucket;
      const std::int64_t spike = bucket * big.param_count() / big.n_layer * 4;
      const std::int64_t max_len = perfmodel::max_sequence(big, st, 8, hw);
      t.add_row({std::to_string(bucket), format_bytes(spike),
                 max_len == 0 ? "OOM" : format_token_count(max_len)});
    }
    t.print(std::cout);
    t.write_csv("ablation_grad_spike.csv");
    std::cout << "(a 32-layer bucket costs "
              << format_bytes(32 * nn::gpt_13b().param_count() / nn::gpt_13b().n_layer * 4)
              << " — \"more significant than the activation's memory spikes\", as §6 warns)\n";
  }
  // ---- F. PCIe-bandwidth sensitivity of the chunk sweet spot.
  {
    std::cout << "\nF. PCIe bandwidth sensitivity (Llama-8B, 4 GPUs, 512K seq)\n";
    TextTable t({"pcie_bw", "best_chunk", "mfu@best", "mfu@64K"});
    for (double gbps : {8.0, 16.0, 32.0, 64.0}) {
      sim::HardwareSpec hw2 = sim::a100_80g_node();
      hw2.pcie_bw = gbps * 1e9;
      const sim::CostModel cm(hw2, world);
      const std::int64_t s_local = 512 * 1024 / world;
      double best_mfu = 0.0, mfu64 = 0.0;
      std::int64_t best_chunk = 0;
      for (std::int64_t chunk = 8 * 1024; chunk <= 256 * 1024; chunk *= 2) {
        const std::int64_t u = 512 * 1024 / chunk;
        const sim::LayerTiming lt = sim::fpdt_layer_timing(cfg, cm, s_local, u, true, true);
        const sim::StepEstimate est = sim::step_estimate(cfg, cm, 512 * 1024, lt, true);
        if (est.mfu > best_mfu) {
          best_mfu = est.mfu;
          best_chunk = chunk;
        }
        if (chunk == 64 * 1024) mfu64 = est.mfu;
      }
      t.add_row({cell_f1(gbps) + " GB/s", format_token_count(best_chunk), cell_pct(best_mfu),
                 cell_pct(mfu64)});
    }
    t.print(std::cout);
    t.write_csv("ablation_pcie.csv");
    std::cout << "(slower PCIe pushes the sweet spot toward larger chunks — the Fig. 8\n"
                 " starving regime widens; faster links make chunk size nearly free)\n";
  }
  return 0;
}
