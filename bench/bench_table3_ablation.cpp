// Reproduces Table 3: "A comprehensive analysis on long-context LLM training
// with different training techniques" — Llama-3 8B on 8 GPUs (two 4-GPU
// A100-80G nodes), sweeping TP / AC / OC / Ulysses / ZeRO-1/2/3 / FPDT.
// For each strategy row we report the maximum trainable sequence length, the
// per-GPU HBM at that length, and the simulated MFU.
//
// Paper row anchors: TP 32K/9.4%, TP+AC 128K/19.4%, TP+AC+OC 512K/32.7%,
// UL+ZeRO-{1,2,3} 64K/15-21%, UL+AC+OC+ZeRO 512K/46-47%, FPDT 4M/55.7%@68G.
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "nn/model_config.h"
#include "perfmodel/evaluate.h"

using namespace fpdt;
using perfmodel::Strategy;

int main() {
  const nn::ModelConfig cfg = nn::llama_8b();
  const sim::HardwareSpec hw = sim::a100_80g_node();
  const int world = 8;

  struct Row {
    const char* paper_row;
    Strategy strategy;
    const char* paper_maxlen;
    const char* paper_mfu;
  };
  const Row rows[] = {
      {"TP", Strategy::megatron_tp(false, false), "32K", "9.4%"},
      {"TP+AC", Strategy::megatron_tp(true, false), "128K", "19.4%"},
      {"TP+AC+OC", Strategy::megatron_tp(true, true), "512K", "32.7%"},
      {"UL+ZeRO-1", Strategy::ulysses(1, false, false), "64K", "15.3%"},
      {"UL+ZeRO-2", Strategy::ulysses(2, false, false), "64K", "15.3%"},
      {"UL+ZeRO-3", Strategy::ulysses(3, false, false), "64K", "21.0%"},
      {"UL+AC+OC+ZeRO-1", Strategy::ulysses(1, true, true), "512K", "46.8%"},
      {"UL+AC+OC+ZeRO-2", Strategy::ulysses(2, true, true), "512K", "46.8%"},
      {"UL+AC+OC+ZeRO-3", Strategy::ulysses(3, true, true), "512K", "47.2%"},
      {"FPDT (AC+OC+ZeRO-3)", Strategy::fpdt(), "4M", "55.7%"},
  };

  TextTable table({"strategy", "max_len", "hbm", "mfu", "paper_len", "paper_mfu"});
  for (const Row& row : rows) {
    const std::int64_t max_len = perfmodel::max_sequence(cfg, row.strategy, world, hw);
    if (max_len == 0) {
      table.add_row({row.paper_row, "OOM", "-", "-", row.paper_maxlen, row.paper_mfu});
      continue;
    }
    const perfmodel::Evaluation ev = perfmodel::evaluate(cfg, row.strategy, world, max_len, hw);
    table.add_row({row.paper_row, format_token_count(max_len),
                   format_bytes(ev.memory.device_total()), cell_pct(ev.mfu), row.paper_maxlen,
                   row.paper_mfu});
  }
  std::cout << "Table 3 — Llama-3 8B, 8x A100-80G (2 nodes): strategy ablation\n";
  table.print(std::cout);
  table.write_csv("table3_ablation.csv");
  return 0;
}
