// Reproduces Figure 11: supported sequence lengths and corresponding MFU
// for Megatron-SP, Ulysses, FPDT w. chunking, and FPDT w. offload (double
// buffer), across the six evaluation models. Sequences sweep upward in
// powers of two; "OOM" marks each strategy's wall. The paper's shape:
// within one node Megatron-SP and Ulysses die around 128-256K; FPDT w.
// chunking buys ~2-8x; FPDT w. offload reaches 2M+ at undiminished MFU;
// multi-node Megatron-SP degrades while Ulysses/FPDT hold.
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "nn/model_config.h"
#include "obs/bench.h"
#include "perfmodel/evaluate.h"

using namespace fpdt;
using perfmodel::Strategy;

int main() {
  // Same guard as fig01: the figure's MFU denominator (train_flops_per_token)
  // must stay consistent with the executed per-op workmeter accounting.
  double ratio = 0.0;
  if (!obs::accounting_consistent(nn::gpt_2p7b(), 32768, &ratio)) {
    std::cerr << "accounting drift: per-op workmeter FLOPs / train_flops_per_token = "
              << ratio << " on gpt-2.7b @ 32768 (expected within [0.85, 1.30])\n";
    return 1;
  }

  const sim::HardwareSpec hw = sim::a100_80g_node();
  struct ModelCase {
    nn::ModelConfig cfg;
    int world;
  };
  const ModelCase cases[] = {
      {nn::gpt_2p7b(), 4}, {nn::gpt_6p7b(), 4},  {nn::llama_8b(), 4},
      {nn::gpt_13b(), 8},  {nn::gpt_30b(), 16},  {nn::llama_70b(), 32},
  };
  const Strategy strategies[] = {
      Strategy::megatron_sp(),
      Strategy::ulysses(3, true, true),
      Strategy::fpdt_chunking_only(),
      Strategy::fpdt(),
  };

  TextTable table({"model", "gpus", "seq_len", "megatron-sp", "ulysses", "fpdt-chunk",
                   "fpdt-offload"});
  for (const ModelCase& mc : cases) {
    for (std::int64_t s = 128 * 1024; s <= (4LL << 20); s *= 2) {
      std::vector<std::string> row = {mc.cfg.name, std::to_string(mc.world),
                                      format_token_count(s)};
      bool any = false;
      for (const Strategy& st : strategies) {
        if (!perfmodel::fits(mc.cfg, st, mc.world, s, hw) &&
            !(st.scheme == perfmodel::SeqScheme::kFpdt && [&] {
              Strategy fb = st;
              fb.fpdt_cache_fwd = false;
              return perfmodel::fits(mc.cfg, fb, mc.world, s, hw);
            }())) {
          row.push_back("OOM");
          continue;
        }
        const perfmodel::Evaluation ev = perfmodel::evaluate(mc.cfg, st, mc.world, s, hw);
        row.push_back(cell_pct(ev.mfu));
        any = true;
      }
      table.add_row(std::move(row));
      if (!any) break;  // every strategy is out of memory; stop the sweep
    }
  }
  std::cout << "Figure 11 — sequence-length sweep: MFU per strategy (OOM = out of memory)\n";
  table.print(std::cout);
  table.write_csv("fig11_e2e_mfu.csv");
  return 0;
}
