// Profiler bench: runs `obs::run_profile` over the executed FPDT step and
// the Ulysses baseline, prints the per-step stats, and writes the full
// profile document to BENCH_profile.json (plus BENCH_profile_trace.json,
// loadable in Perfetto). Exits non-zero when a measured invariant breaks:
// overlap ratio must be a valid fraction, virtual throughput positive, and
// the per-step stats must agree with their own timeline decomposition.
#include <cmath>
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

using namespace fpdt;

namespace {

bool check(bool ok, const char* what) {
  if (!ok) std::cerr << "VIOLATION: " << what << "\n";
  return ok;
}

}  // namespace

int main() {
  bool ok = true;

  obs::ProfileOptions opt;
  opt.steps = 2;
  opt.world = 2;
  opt.chunks = 4;
  opt.chunk_tokens = 64;
  opt.trace_path = "BENCH_profile_trace.json";
  opt.metrics_path = "BENCH_profile.json";
  const obs::ProfileResult fpdt_res = obs::run_profile(opt);

  std::cout << "profiled FPDT: " << opt.steps << " steps, " << opt.world << " GPUs, "
            << format_token_count(fpdt_res.tokens_per_step) << " tokens/step\n";
  TextTable t({"step", "virtual", "tok/s", "overlap", "exposed", "hbm peak", "a2a bytes"});
  for (const obs::StepStats& s : fpdt_res.steps) {
    t.add_row({std::to_string(s.step), format_seconds(s.virtual_step_s),
               cell_f2(s.tokens_per_s), cell_pct(s.overlap_ratio),
               format_seconds(s.exposed_transfer_s), format_bytes(s.hbm_peak_bytes),
               format_bytes(s.all2all_bytes)});
    ok &= check(std::isfinite(s.overlap_ratio) && s.overlap_ratio >= 0.0 &&
                    s.overlap_ratio <= 1.0,
                "overlap ratio is a fraction");
    ok &= check(s.tokens_per_s > 0.0, "virtual throughput positive");
    ok &= check(s.exposed_transfer_s >= 0.0, "exposed transfer non-negative");
    const double transfer = s.h2d_busy_s + s.d2h_busy_s;
    ok &= check(std::abs(s.hidden_transfer_s + s.exposed_transfer_s - transfer) <
                    1e-9 * std::max(1.0, transfer),
                "hidden + exposed == transfer busy");
    ok &= check(s.hbm_peak_bytes > 0, "HBM peak recorded");
    ok &= check(s.all2all_bytes > 0, "All2All traffic recorded");
  }
  t.print(std::cout);

  // The baseline profile exercises the non-FPDT code path (no chunk
  // events, monolithic loss head) — it must still produce a sane document.
  obs::ProfileOptions base = opt;
  base.strategy = "ulysses";
  base.trace_path.clear();
  base.metrics_path.clear();
  const obs::ProfileResult ulysses_res = obs::run_profile(base);
  ok &= check(ulysses_res.steps.size() == static_cast<std::size_t>(base.steps),
              "ulysses profile completes");
  std::cout << "ulysses comparison: loss " << cell_f2(ulysses_res.final_loss) << " vs fpdt "
            << cell_f2(fpdt_res.final_loss) << "\n";

  std::cout << "wrote BENCH_profile.json and BENCH_profile_trace.json\n";
  if (!ok) {
    std::cerr << "bench_profile: invariant violations detected\n";
    return 1;
  }
  return 0;
}
