// Weak-scaling study (extension): hold the per-GPU context fixed and grow
// the cluster 4 -> 32 GPUs. Ulysses' All2All volume per GPU is constant
// (its design point) but crosses onto InfiniBand past one node; Megatron-SP
// moves the full gathered activation; FPDT overlaps everything. The paper
// asserts these properties qualitatively (§2.2, §5.2) — this bench makes
// them a table.
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "nn/model_config.h"
#include "perfmodel/evaluate.h"

using namespace fpdt;
using perfmodel::Strategy;

int main() {
  const sim::HardwareSpec hw = sim::a100_80g_node();
  const nn::ModelConfig cfg = nn::llama_8b();
  const std::int64_t ctx_per_gpu = 32 * 1024;

  TextTable table({"gpus", "nodes", "seq_global", "megatron-sp", "ulysses", "fpdt"});
  for (int world : {4, 8, 16, 32}) {
    const std::int64_t s_global = ctx_per_gpu * world;
    std::vector<std::string> row = {std::to_string(world),
                                    std::to_string(std::max(1, world / hw.gpus_per_node)),
                                    format_token_count(s_global)};
    for (const Strategy& st :
         {Strategy::megatron_sp(), Strategy::ulysses(3, true, true), Strategy::fpdt()}) {
      if (!perfmodel::fits(cfg, st, world, s_global, hw)) {
        Strategy fb = st;
        fb.fpdt_cache_fwd = false;
        if (st.scheme != perfmodel::SeqScheme::kFpdt ||
            !perfmodel::fits(cfg, fb, world, s_global, hw)) {
          row.push_back("OOM");
          continue;
        }
      }
      const perfmodel::Evaluation ev = perfmodel::evaluate(cfg, st, world, s_global, hw);
      row.push_back(cell_pct(ev.mfu));
    }
    table.add_row(std::move(row));
  }
  std::cout << "Weak scaling — Llama-8B, " << format_token_count(ctx_per_gpu)
            << " context per GPU, growing the cluster\n";
  table.print(std::cout);
  table.write_csv("weak_scaling.csv");
  std::cout << "\nShape: the global sequence grows with the cluster, so attention work per\n"
               "GPU grows linearly — MFU *rises* for the overlap-friendly strategies while\n"
               "Megatron-SP pays the cross-node gathered-activation traffic.\n";
  return 0;
}
