// Reproduces Table 2: memory footprint at each step of a Transformer block
// (units of N·d BF16 elements), and cross-checks the paper's closed-form
// inventory against *measured* allocator peaks from the functional layer:
// we run the Ulysses baseline (chunks = 1) and FPDT (chunks = u) on an
// emulated device with byte-exact charge accounting and report the measured
// peak working set, which must shrink by ~u under FPDT.
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "common/units.h"
#include "core/fpdt_block.h"
#include "data/rank_ordinal.h"
#include "nn/model_config.h"
#include "perfmodel/memory_model.h"

using namespace fpdt;

namespace {

std::int64_t measure_peak(nn::TransformerBlock& block, const Tensor& x, int world,
                          std::int64_t chunks, bool offload, bool backward) {
  core::FpdtConfig cfg;
  cfg.chunks_per_rank = chunks;
  cfg.offload = offload;
  cfg.double_buffer = true;
  cfg.ffn_chunk_multiplier = chunks == 1 ? 1 : 2;
  cfg.cache_forward_outputs = false;
  core::FpdtEnv env(world, cfg);
  core::FpdtBlockExecutor exec(block, 0, env);
  data::RankOrdinalSharder sh(world, chunks);
  if (backward) {
    Rng g(7);
    Tensor dz = Tensor::randn(x.shape(), g);
    exec.backward(sh.shard_tensor(dz), sh.shard_tensor(x));
  } else {
    exec.forward(sh.shard_tensor(x));
  }
  return env.max_hbm_peak();
}

}  // namespace

int main() {
  // ---- Part 1: the paper's closed-form inventory.
  std::cout << "Table 2 — per-phase activation footprint (units of N*d bf16 elements)\n";
  TextTable formulas({"phase", "forward", "backward"});
  int count = 0;
  const perfmodel::Table2Row* rows = perfmodel::table2_rows(&count);
  for (int i = 0; i < count; ++i) {
    formulas.add_row({rows[i].phase, cell_f1(rows[i].forward_nd), cell_f1(rows[i].backward_nd)});
  }
  formulas.print(std::cout);

  // ---- Part 2: measured peaks, Ulysses (1 chunk) vs FPDT (u chunks).
  const nn::ModelConfig cfg = nn::tiny_gpt(64, 1, 8, 128);
  const int world = 4;
  const std::int64_t s_global = 512;
  Rng wrng(1);
  nn::TransformerBlock block("b", cfg, wrng);
  Rng xrng(2);
  Tensor x = Tensor::randn({s_global, cfg.d_model}, xrng);

  TextTable measured({"configuration", "peak fwd", "peak bwd", "vs ulysses fwd"});
  const std::int64_t base_f = measure_peak(block, x, world, 1, false, false);
  const std::int64_t base_b = measure_peak(block, x, world, 1, false, true);
  measured.add_row({"ulysses (no chunking)", format_bytes(base_f), format_bytes(base_b), "1.00x"});
  for (std::int64_t u : {2, 4, 8}) {
    const std::int64_t f = measure_peak(block, x, world, u, true, false);
    const std::int64_t b = measure_peak(block, x, world, u, true, true);
    measured.add_row({"fpdt u=" + std::to_string(u) + " (offload)", format_bytes(f),
                      format_bytes(b),
                      cell_f2(static_cast<double>(f) / static_cast<double>(base_f)) + "x"});
  }
  std::cout << "\nMeasured per-GPU working-set peaks (functional layer, byte-exact):\n";
  measured.print(std::cout);
  measured.write_csv("table2_footprint.csv");
  std::cout << "\nPaper shape: backward > forward (6Nd QKV grads + 8Nd attention + 8Nd FFN),\n"
               "and FPDT's chunked working set shrinks ~1/u versus the Ulysses baseline.\n";
  return 0;
}
