// Reproduces Table 1: maximum context length supported by FPDT (ZeRO-3 +
// AC + OC, 64K chunks) per model size and hardware configuration —
// A100-40G nodes with 1/2/4/8 GPUs and A100-80G nodes with 4/8/16/32 GPUs.
// "-" = model state alone does not fit; "8M+" = the paper stopped testing
// at 8M, so we cap the search there too.
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "nn/model_config.h"
#include "perfmodel/evaluate.h"

using namespace fpdt;

namespace {

std::string cell(const nn::ModelConfig& cfg, perfmodel::Strategy st, int world,
                 const sim::HardwareSpec& hw) {
  // Ulysses All2All requires heads divisible by the group; single-GPU runs
  // and small groups degenerate gracefully (heads stay local).
  const std::int64_t cap = 8LL << 20;
  const std::int64_t max_len = perfmodel::max_sequence(cfg, st, world, hw, cap);
  if (max_len == 0) return "-";
  if (max_len >= cap) return "8M+";
  return format_token_count(max_len);
}

}  // namespace

int main() {
  const perfmodel::Strategy st = perfmodel::Strategy::fpdt();
  const sim::HardwareSpec a40 = sim::a100_40g_node();
  const sim::HardwareSpec a80 = sim::a100_80g_node();

  struct ModelRow {
    nn::ModelConfig cfg;
    const char* paper;  // paper cells: 40G x{1,2,4,8} then 80G x{4,8,16,32}
  };
  const ModelRow models[] = {
      {nn::gpt_2p7b(), "128K 512K 2M 4M | 4M 8M+ 8M+ 8M+"},
      {nn::llama_8b(), "- - - 1M | 2M 4M 8M+ 8M+"},
      {nn::gpt_13b(), "- - - 256K | 512K 3M 4M 8M+"},
      {nn::gpt_30b(), "- - - - | - 1M 3M 4M"},
      {nn::llama_70b(), "- - - - | - - 1M 4M"},
  };

  TextTable table({"model", "40G x1", "40G x2", "40G x4", "40G x8", "80G x4", "80G x8",
                   "80G x16", "80G x32", "paper"});
  for (const ModelRow& m : models) {
    std::vector<std::string> row = {m.cfg.name};
    for (int world : {1, 2, 4, 8}) row.push_back(cell(m.cfg, st, world, a40));
    for (int world : {4, 8, 16, 32}) row.push_back(cell(m.cfg, st, world, a80));
    row.push_back(m.paper);
    table.add_row(std::move(row));
  }
  std::cout << "Table 1 — Max context length trainable with FPDT (ZeRO-3+AC+OC, 64K chunks)\n";
  table.print(std::cout);
  table.write_csv("table1_max_context.csv");
  return 0;
}
