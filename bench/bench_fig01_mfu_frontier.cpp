// Reproduces Figure 1: end-to-end training MFU versus the maximum context
// length per GPU each method supports, for 2.7B, 13B and 70B models.
// Each strategy is evaluated at ITS OWN maximum sequence — the frontier the
// paper plots (Megatron-SP and Ulysses stall at short contexts; FPDT pushes
// ~16x further at the highest MFU).
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "nn/model_config.h"
#include "obs/bench.h"
#include "perfmodel/evaluate.h"

using namespace fpdt;
using perfmodel::Strategy;

int main() {
  // Every MFU in this figure divides by train_flops_per_token; the executed
  // path (`fpdt profile` / `fpdt bench`) divides by the per-op workmeter
  // accounting. Refuse to print the figure if the two drift apart.
  double ratio = 0.0;
  if (!obs::accounting_consistent(nn::gpt_2p7b(), 32768, &ratio)) {
    std::cerr << "accounting drift: per-op workmeter FLOPs / train_flops_per_token = "
              << ratio << " on gpt-2.7b @ 32768 (expected within [0.85, 1.30])\n";
    return 1;
  }

  const sim::HardwareSpec hw = sim::a100_80g_node();
  struct ModelCase {
    nn::ModelConfig cfg;
    int world;
  };
  const ModelCase cases[] = {
      {nn::gpt_2p7b(), 4},
      {nn::gpt_13b(), 8},
      {nn::llama_70b(), 32},
  };
  const Strategy strategies[] = {
      Strategy::megatron_sp(),
      Strategy::ulysses(3, true, true),
      Strategy::fpdt(),
  };

  TextTable table(
      {"model", "gpus", "strategy", "max_len", "ctx_per_gpu", "mfu", "step_time"});
  for (const ModelCase& mc : cases) {
    for (const Strategy& st : strategies) {
      const std::int64_t max_len = perfmodel::max_sequence(mc.cfg, st, mc.world, hw);
      if (max_len == 0) {
        table.add_row({mc.cfg.name, std::to_string(mc.world), st.label(), "OOM", "-", "-", "-"});
        continue;
      }
      const perfmodel::Evaluation ev = perfmodel::evaluate(mc.cfg, st, mc.world, max_len, hw);
      table.add_row({mc.cfg.name, std::to_string(mc.world), st.label(),
                     format_token_count(max_len), format_token_count(max_len / mc.world),
                     cell_pct(ev.mfu), format_seconds(ev.step_s)});
    }
  }
  std::cout << "Figure 1 — MFU vs maximum context per GPU (each strategy at its own max)\n";
  table.print(std::cout);
  table.write_csv("fig01_mfu_frontier.csv");
  std::cout << "\nPaper shape: FPDT supports ~16x longer context than Megatron-SP/Ulysses\n"
               "at equal or higher MFU (>55% at the frontier).\n";
  return 0;
}
