// Wall-clock microbenchmarks (google-benchmark) of the functional kernels:
// online blockwise attention vs naive reference, chunked vs monolithic loss
// head, FPDT block step vs Ulysses block step. These time the *emulation*,
// not A100 silicon — they exist to keep the functional layer honest about
// its own costs and to catch algorithmic regressions (e.g. an accidental
// O(s^2) copy in the chunk pipeline).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/fpdt_block.h"
#include "kernels/backend.h"
#include "data/rank_ordinal.h"
#include "nn/attention.h"
#include "nn/lm_head.h"
#include "nn/generate.h"
#include "nn/inference.h"
#include "nn/model.h"
#include "nn/model_config.h"
#include "parallel/megatron_sp.h"
#include "sim/timeline.h"
#include "tensor/tensor.h"

namespace {

using namespace fpdt;

void BM_MatmulNt(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul_nt(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulNt)->Arg(64)->Arg(128)->Arg(256);

// ---- backend-parameterized kernel benchmarks ------------------------------
// Second benchmark arg selects the math backend (0 = scalar reference,
// 1 = simd). Run side by side these put a number on the tentpole: how much
// of the emulated step is GEMM/attention math the simd backend recovers.

const char* backend_of(std::int64_t arg) { return arg == 0 ? "scalar" : "simd"; }

void BM_GemmBackend(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  kernels::BackendScope scope(backend_of(state.range(1)));
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetLabel(kernels::active_name());
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBackend)->Args({128, 0})->Args({128, 1})->Args({512, 0})->Args({512, 1});

void BM_AttentionBackend(benchmark::State& state) {
  const std::int64_t s = state.range(0);
  kernels::BackendScope scope(backend_of(state.range(1)));
  Rng rng(2);
  Tensor q = Tensor::randn({s, 8, 64}, rng);
  Tensor k = Tensor::randn({s, 2, 64}, rng);  // GQA group of 4
  Tensor v = Tensor::randn({s, 2, 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::reference_attention_forward(q, k, v, true));
  }
  state.SetLabel(kernels::active_name());
}
BENCHMARK(BM_AttentionBackend)->Args({256, 0})->Args({256, 1})->Args({1024, 0})->Args({1024, 1});

void BM_OnlineAttnStepBackend(benchmark::State& state) {
  const std::int64_t s = state.range(0);
  kernels::BackendScope scope(backend_of(state.range(1)));
  Rng rng(3);
  Tensor q = Tensor::randn({s, 8, 64}, rng);
  Tensor k = Tensor::randn({s, 2, 64}, rng);
  Tensor v = Tensor::randn({s, 2, 64}, rng);
  for (auto _ : state) {
    nn::OnlineAttnState st = nn::OnlineAttnState::create(s, 8, 64);
    nn::online_attn_step(st, q, k, v, true, 0, 0);
    benchmark::DoNotOptimize(nn::online_attn_finalize(st));
  }
  state.SetLabel(kernels::active_name());
}
BENCHMARK(BM_OnlineAttnStepBackend)->Args({512, 0})->Args({512, 1});

void BM_ReferenceAttention(benchmark::State& state) {
  const std::int64_t s = state.range(0);
  Rng rng(2);
  Tensor q = Tensor::randn({s, 4, 32}, rng);
  Tensor k = Tensor::randn({s, 4, 32}, rng);
  Tensor v = Tensor::randn({s, 4, 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::reference_attention_forward(q, k, v, true));
  }
}
BENCHMARK(BM_ReferenceAttention)->Arg(128)->Arg(512);

void BM_OnlineAttentionChunked(benchmark::State& state) {
  const std::int64_t s = state.range(0);
  const std::int64_t chunks = 8;
  const std::int64_t c = s / chunks;
  Rng rng(3);
  Tensor q = Tensor::randn({s, 4, 32}, rng);
  Tensor k = Tensor::randn({s, 4, 32}, rng);
  Tensor v = Tensor::randn({s, 4, 32}, rng);
  for (auto _ : state) {
    for (std::int64_t i = 0; i < chunks; ++i) {
      nn::OnlineAttnState st = nn::OnlineAttnState::create(c, 4, 32);
      for (std::int64_t j = 0; j <= i; ++j) {
        nn::online_attn_step(st, q.slice0(i * c, (i + 1) * c), k.slice0(j * c, (j + 1) * c),
                             v.slice0(j * c, (j + 1) * c), true, i * c, j * c);
      }
      benchmark::DoNotOptimize(nn::online_attn_finalize(st));
    }
  }
}
BENCHMARK(BM_OnlineAttentionChunked)->Arg(128)->Arg(512);

void BM_LmHeadChunked(benchmark::State& state) {
  const std::int64_t chunks = state.range(0);
  const std::int64_t s = 256, d = 64, vocab = 512;
  Rng rng(4);
  nn::LmHead head("h", d, vocab, rng);
  Tensor x = Tensor::randn({s, d}, rng);
  std::vector<std::int32_t> targets(s, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(head.forward_backward(x, targets, chunks, s));
  }
}
BENCHMARK(BM_LmHeadChunked)->Arg(1)->Arg(16);

void BM_FpdtBlockStep(benchmark::State& state) {
  const bool offload = state.range(0) != 0;
  const nn::ModelConfig cfg = nn::tiny_gpt(64, 1, 4, 64);
  Rng wrng(5);
  nn::TransformerBlock block("b", cfg, wrng);
  Rng xrng(6);
  Tensor x = Tensor::randn({512, cfg.d_model}, xrng);
  Tensor dz = Tensor::randn({512, cfg.d_model}, xrng);
  core::FpdtConfig fcfg;
  fcfg.chunks_per_rank = 4;
  fcfg.offload = offload;
  core::FpdtEnv env(4, fcfg);
  core::FpdtBlockExecutor exec(block, 0, env);
  data::RankOrdinalSharder sh(4, 4);
  auto xs = sh.shard_tensor(x);
  auto dzs = sh.shard_tensor(dz);
  for (auto _ : state) {
    exec.forward(xs);
    benchmark::DoNotOptimize(exec.backward(dzs, xs));
  }
}
BENCHMARK(BM_FpdtBlockStep)->Arg(0)->Arg(1);

void BM_GenerateRecompute(benchmark::State& state) {
  nn::Model model(nn::tiny_gpt(64, 2, 4, 64), 1);
  Rng prng(2);
  std::vector<std::int32_t> prompt(64, 3);
  nn::SampleOptions greedy;
  greedy.temperature = 0.0;
  for (auto _ : state) {
    Rng rng(1);
    benchmark::DoNotOptimize(nn::generate(model, prompt, 8, greedy, rng));
  }
}
BENCHMARK(BM_GenerateRecompute);

void BM_GenerateKvCache(benchmark::State& state) {
  nn::Model model(nn::tiny_gpt(64, 2, 4, 64), 1);
  std::vector<std::int32_t> prompt(64, 3);
  nn::SampleOptions greedy;
  greedy.temperature = 0.0;
  for (auto _ : state) {
    Rng rng(1);
    benchmark::DoNotOptimize(nn::generate_cached(model, prompt, 8, greedy, rng, 16));
  }
}
BENCHMARK(BM_GenerateKvCache);

void BM_MegatronSpBlockStep(benchmark::State& state) {
  const nn::ModelConfig cfg = nn::tiny_gpt(64, 1, 4, 64);
  Rng wrng(5);
  nn::TransformerBlock block("b", cfg, wrng);
  core::FpdtConfig fcfg;
  fcfg.cache_forward_outputs = false;
  core::FpdtEnv env(4, fcfg);
  parallel::MegatronSpBlockExecutor exec(block, env);
  Rng xrng(6);
  Tensor x = Tensor::randn({512, cfg.d_model}, xrng);
  Tensor dz = Tensor::randn({512, cfg.d_model}, xrng);
  std::vector<Tensor> xs, dzs;
  for (int r = 0; r < 4; ++r) {
    xs.push_back(x.slice0(r * 128, (r + 1) * 128).clone());
    dzs.push_back(dz.slice0(r * 128, (r + 1) * 128).clone());
  }
  for (auto _ : state) {
    exec.forward(xs);
    benchmark::DoNotOptimize(exec.backward(dzs, xs));
  }
}
BENCHMARK(BM_MegatronSpBlockStep);

void BM_PipelineSimScaling(benchmark::State& state) {
  // The simulator itself must stay cheap: a 32-chunk FPDT layer builds and
  // runs thousands of tasks.
  const nn::ModelConfig cfg = nn::llama_8b();
  const sim::CostModel cm(sim::a100_80g_node(), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::fpdt_layer_timing(cfg, cm, 512 * 1024, 32, true, true));
  }
}
BENCHMARK(BM_PipelineSimScaling);

}  // namespace

BENCHMARK_MAIN();
