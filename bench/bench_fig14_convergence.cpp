// Reproduces Figure 14: pretraining loss curves for (a) the single-device
// baseline (standing in for the paper's tensor-parallel baseline — both are
// exact data-parallel computations of the same gradients), (b) FPDT without
// offloading, and (c) FPDT with offloading. All three train *real* GPT
// models with identical seeds on the same synthetic stream; the claim under
// test is the paper's: "FPDT is a pure system optimization... there is no
// (negative) impact on the quality of trained models" — the curves must
// coincide.
#include <cmath>
#include <iostream>

#include "common/table.h"
#include "core/fpdt_trainer.h"
#include "data/synthetic_corpus.h"
#include "nn/adam.h"
#include "nn/model.h"

using namespace fpdt;

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 60;
  const nn::ModelConfig cfg = nn::tiny_gpt(64, 2, 4, 64);
  const std::int64_t seq = 256;
  const int world = 4;

  nn::Model baseline(cfg, 42);
  nn::Model fpdt_chunk_model(cfg, 42);
  nn::Model fpdt_offload_model(cfg, 42);

  core::FpdtConfig chunk_cfg;
  chunk_cfg.chunks_per_rank = 4;
  chunk_cfg.offload = false;
  core::FpdtConfig offload_cfg;
  offload_cfg.chunks_per_rank = 4;
  offload_cfg.offload = true;
  core::FpdtTrainer fpdt_chunk(fpdt_chunk_model, world, chunk_cfg);
  core::FpdtTrainer fpdt_offload(fpdt_offload_model, world, offload_cfg);

  nn::Adam opt_a(2e-3), opt_b(2e-3), opt_c(2e-3);
  data::SyntheticCorpus ca(cfg.vocab, 7), cb(cfg.vocab, 7), cc(cfg.vocab, 7);

  TextTable table({"step", "baseline", "fpdt_chunking", "fpdt_offload", "max_delta"});
  double worst = 0.0;
  for (int step = 1; step <= steps; ++step) {
    const auto ta = ca.sample(seq + 1);
    const auto tb = cb.sample(seq + 1);
    const auto tc = cc.sample(seq + 1);
    const double la = baseline.train_step_grads(ta);
    const double lb = fpdt_chunk.train_step_grads(tb);
    const double lc = fpdt_offload.train_step_grads(tc);
    opt_a.step([&](const nn::ParamVisitor& f) { baseline.visit_params(f); });
    opt_b.step([&](const nn::ParamVisitor& f) { fpdt_chunk_model.visit_params(f); });
    opt_c.step([&](const nn::ParamVisitor& f) { fpdt_offload_model.visit_params(f); });
    const double delta = std::max(std::abs(la - lb), std::abs(la - lc));
    worst = std::max(worst, delta);
    if (step <= 5 || step % 10 == 0) {
      table.add_row({std::to_string(step), cell_f2(la) + "", cell_f2(lb), cell_f2(lc),
                     cell_f2(delta * 1e4) + "e-4"});
    }
  }
  std::cout << "Figure 14 — pretraining loss curves (tiny GPT, " << world
            << " emulated GPUs, real FP32 training)\n";
  table.print(std::cout);
  table.write_csv("fig14_convergence.csv");
  std::cout << "\nLargest per-step loss divergence across " << steps
            << " steps: " << worst << " (pure FP32 reduction-order noise)\n"
            << (worst < 1e-3 ? "PASS" : "FAIL")
            << ": FPDT w/ and w/o offloading track the baseline exactly.\n";
  return worst < 1e-3 ? 0 : 1;
}
