# Empty dependencies file for strategy_planner.
# This may be replaced when dependencies are built.
