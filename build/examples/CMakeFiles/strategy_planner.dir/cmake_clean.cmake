file(REMOVE_RECURSE
  "CMakeFiles/strategy_planner.dir/strategy_planner.cpp.o"
  "CMakeFiles/strategy_planner.dir/strategy_planner.cpp.o.d"
  "strategy_planner"
  "strategy_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategy_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
