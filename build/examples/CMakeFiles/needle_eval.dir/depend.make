# Empty dependencies file for needle_eval.
# This may be replaced when dependencies are built.
