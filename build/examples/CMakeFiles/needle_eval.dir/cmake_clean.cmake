file(REMOVE_RECURSE
  "CMakeFiles/needle_eval.dir/needle_eval.cpp.o"
  "CMakeFiles/needle_eval.dir/needle_eval.cpp.o.d"
  "needle_eval"
  "needle_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/needle_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
