file(REMOVE_RECURSE
  "CMakeFiles/train_and_generate.dir/train_and_generate.cpp.o"
  "CMakeFiles/train_and_generate.dir/train_and_generate.cpp.o.d"
  "train_and_generate"
  "train_and_generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_and_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
