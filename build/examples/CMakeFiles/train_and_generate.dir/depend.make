# Empty dependencies file for train_and_generate.
# This may be replaced when dependencies are built.
