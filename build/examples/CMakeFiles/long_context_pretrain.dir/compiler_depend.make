# Empty compiler generated dependencies file for long_context_pretrain.
# This may be replaced when dependencies are built.
