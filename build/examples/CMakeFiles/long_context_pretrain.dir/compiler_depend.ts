# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for long_context_pretrain.
