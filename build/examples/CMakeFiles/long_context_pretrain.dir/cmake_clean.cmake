file(REMOVE_RECURSE
  "CMakeFiles/long_context_pretrain.dir/long_context_pretrain.cpp.o"
  "CMakeFiles/long_context_pretrain.dir/long_context_pretrain.cpp.o.d"
  "long_context_pretrain"
  "long_context_pretrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/long_context_pretrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
