file(REMOVE_RECURSE
  "CMakeFiles/pipeline_trace.dir/pipeline_trace.cpp.o"
  "CMakeFiles/pipeline_trace.dir/pipeline_trace.cpp.o.d"
  "pipeline_trace"
  "pipeline_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
