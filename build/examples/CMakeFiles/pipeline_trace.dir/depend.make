# Empty dependencies file for pipeline_trace.
# This may be replaced when dependencies are built.
