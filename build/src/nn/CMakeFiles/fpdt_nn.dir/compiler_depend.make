# Empty compiler generated dependencies file for fpdt_nn.
# This may be replaced when dependencies are built.
