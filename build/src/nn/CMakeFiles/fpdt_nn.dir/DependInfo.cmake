
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/adam.cpp" "src/nn/CMakeFiles/fpdt_nn.dir/adam.cpp.o" "gcc" "src/nn/CMakeFiles/fpdt_nn.dir/adam.cpp.o.d"
  "/root/repo/src/nn/attention.cpp" "src/nn/CMakeFiles/fpdt_nn.dir/attention.cpp.o" "gcc" "src/nn/CMakeFiles/fpdt_nn.dir/attention.cpp.o.d"
  "/root/repo/src/nn/checkpoint_io.cpp" "src/nn/CMakeFiles/fpdt_nn.dir/checkpoint_io.cpp.o" "gcc" "src/nn/CMakeFiles/fpdt_nn.dir/checkpoint_io.cpp.o.d"
  "/root/repo/src/nn/embedding.cpp" "src/nn/CMakeFiles/fpdt_nn.dir/embedding.cpp.o" "gcc" "src/nn/CMakeFiles/fpdt_nn.dir/embedding.cpp.o.d"
  "/root/repo/src/nn/ffn.cpp" "src/nn/CMakeFiles/fpdt_nn.dir/ffn.cpp.o" "gcc" "src/nn/CMakeFiles/fpdt_nn.dir/ffn.cpp.o.d"
  "/root/repo/src/nn/generate.cpp" "src/nn/CMakeFiles/fpdt_nn.dir/generate.cpp.o" "gcc" "src/nn/CMakeFiles/fpdt_nn.dir/generate.cpp.o.d"
  "/root/repo/src/nn/inference.cpp" "src/nn/CMakeFiles/fpdt_nn.dir/inference.cpp.o" "gcc" "src/nn/CMakeFiles/fpdt_nn.dir/inference.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/fpdt_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/fpdt_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/lm_head.cpp" "src/nn/CMakeFiles/fpdt_nn.dir/lm_head.cpp.o" "gcc" "src/nn/CMakeFiles/fpdt_nn.dir/lm_head.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/fpdt_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/fpdt_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/model_config.cpp" "src/nn/CMakeFiles/fpdt_nn.dir/model_config.cpp.o" "gcc" "src/nn/CMakeFiles/fpdt_nn.dir/model_config.cpp.o.d"
  "/root/repo/src/nn/norm.cpp" "src/nn/CMakeFiles/fpdt_nn.dir/norm.cpp.o" "gcc" "src/nn/CMakeFiles/fpdt_nn.dir/norm.cpp.o.d"
  "/root/repo/src/nn/rope.cpp" "src/nn/CMakeFiles/fpdt_nn.dir/rope.cpp.o" "gcc" "src/nn/CMakeFiles/fpdt_nn.dir/rope.cpp.o.d"
  "/root/repo/src/nn/training.cpp" "src/nn/CMakeFiles/fpdt_nn.dir/training.cpp.o" "gcc" "src/nn/CMakeFiles/fpdt_nn.dir/training.cpp.o.d"
  "/root/repo/src/nn/transformer_block.cpp" "src/nn/CMakeFiles/fpdt_nn.dir/transformer_block.cpp.o" "gcc" "src/nn/CMakeFiles/fpdt_nn.dir/transformer_block.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/fpdt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fpdt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
