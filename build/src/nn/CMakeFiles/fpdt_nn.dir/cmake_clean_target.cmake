file(REMOVE_RECURSE
  "libfpdt_nn.a"
)
