file(REMOVE_RECURSE
  "CMakeFiles/fpdt_nn.dir/adam.cpp.o"
  "CMakeFiles/fpdt_nn.dir/adam.cpp.o.d"
  "CMakeFiles/fpdt_nn.dir/attention.cpp.o"
  "CMakeFiles/fpdt_nn.dir/attention.cpp.o.d"
  "CMakeFiles/fpdt_nn.dir/checkpoint_io.cpp.o"
  "CMakeFiles/fpdt_nn.dir/checkpoint_io.cpp.o.d"
  "CMakeFiles/fpdt_nn.dir/embedding.cpp.o"
  "CMakeFiles/fpdt_nn.dir/embedding.cpp.o.d"
  "CMakeFiles/fpdt_nn.dir/ffn.cpp.o"
  "CMakeFiles/fpdt_nn.dir/ffn.cpp.o.d"
  "CMakeFiles/fpdt_nn.dir/generate.cpp.o"
  "CMakeFiles/fpdt_nn.dir/generate.cpp.o.d"
  "CMakeFiles/fpdt_nn.dir/inference.cpp.o"
  "CMakeFiles/fpdt_nn.dir/inference.cpp.o.d"
  "CMakeFiles/fpdt_nn.dir/linear.cpp.o"
  "CMakeFiles/fpdt_nn.dir/linear.cpp.o.d"
  "CMakeFiles/fpdt_nn.dir/lm_head.cpp.o"
  "CMakeFiles/fpdt_nn.dir/lm_head.cpp.o.d"
  "CMakeFiles/fpdt_nn.dir/model.cpp.o"
  "CMakeFiles/fpdt_nn.dir/model.cpp.o.d"
  "CMakeFiles/fpdt_nn.dir/model_config.cpp.o"
  "CMakeFiles/fpdt_nn.dir/model_config.cpp.o.d"
  "CMakeFiles/fpdt_nn.dir/norm.cpp.o"
  "CMakeFiles/fpdt_nn.dir/norm.cpp.o.d"
  "CMakeFiles/fpdt_nn.dir/rope.cpp.o"
  "CMakeFiles/fpdt_nn.dir/rope.cpp.o.d"
  "CMakeFiles/fpdt_nn.dir/training.cpp.o"
  "CMakeFiles/fpdt_nn.dir/training.cpp.o.d"
  "CMakeFiles/fpdt_nn.dir/transformer_block.cpp.o"
  "CMakeFiles/fpdt_nn.dir/transformer_block.cpp.o.d"
  "libfpdt_nn.a"
  "libfpdt_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpdt_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
