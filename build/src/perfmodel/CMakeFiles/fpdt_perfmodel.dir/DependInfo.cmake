
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perfmodel/evaluate.cpp" "src/perfmodel/CMakeFiles/fpdt_perfmodel.dir/evaluate.cpp.o" "gcc" "src/perfmodel/CMakeFiles/fpdt_perfmodel.dir/evaluate.cpp.o.d"
  "/root/repo/src/perfmodel/memory_model.cpp" "src/perfmodel/CMakeFiles/fpdt_perfmodel.dir/memory_model.cpp.o" "gcc" "src/perfmodel/CMakeFiles/fpdt_perfmodel.dir/memory_model.cpp.o.d"
  "/root/repo/src/perfmodel/strategy.cpp" "src/perfmodel/CMakeFiles/fpdt_perfmodel.dir/strategy.cpp.o" "gcc" "src/perfmodel/CMakeFiles/fpdt_perfmodel.dir/strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fpdt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fpdt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fpdt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fpdt_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
