# Empty compiler generated dependencies file for fpdt_perfmodel.
# This may be replaced when dependencies are built.
