file(REMOVE_RECURSE
  "CMakeFiles/fpdt_perfmodel.dir/evaluate.cpp.o"
  "CMakeFiles/fpdt_perfmodel.dir/evaluate.cpp.o.d"
  "CMakeFiles/fpdt_perfmodel.dir/memory_model.cpp.o"
  "CMakeFiles/fpdt_perfmodel.dir/memory_model.cpp.o.d"
  "CMakeFiles/fpdt_perfmodel.dir/strategy.cpp.o"
  "CMakeFiles/fpdt_perfmodel.dir/strategy.cpp.o.d"
  "libfpdt_perfmodel.a"
  "libfpdt_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpdt_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
