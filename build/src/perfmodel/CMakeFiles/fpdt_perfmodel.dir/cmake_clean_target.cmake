file(REMOVE_RECURSE
  "libfpdt_perfmodel.a"
)
