file(REMOVE_RECURSE
  "libfpdt_parallel.a"
)
