file(REMOVE_RECURSE
  "CMakeFiles/fpdt_parallel.dir/baseline_trainer.cpp.o"
  "CMakeFiles/fpdt_parallel.dir/baseline_trainer.cpp.o.d"
  "CMakeFiles/fpdt_parallel.dir/megatron_sp.cpp.o"
  "CMakeFiles/fpdt_parallel.dir/megatron_sp.cpp.o.d"
  "CMakeFiles/fpdt_parallel.dir/ring_attention.cpp.o"
  "CMakeFiles/fpdt_parallel.dir/ring_attention.cpp.o.d"
  "libfpdt_parallel.a"
  "libfpdt_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpdt_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
