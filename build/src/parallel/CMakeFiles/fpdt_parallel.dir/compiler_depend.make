# Empty compiler generated dependencies file for fpdt_parallel.
# This may be replaced when dependencies are built.
