file(REMOVE_RECURSE
  "libfpdt_comm.a"
)
