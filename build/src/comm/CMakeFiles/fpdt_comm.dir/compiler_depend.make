# Empty compiler generated dependencies file for fpdt_comm.
# This may be replaced when dependencies are built.
