file(REMOVE_RECURSE
  "CMakeFiles/fpdt_comm.dir/process_group.cpp.o"
  "CMakeFiles/fpdt_comm.dir/process_group.cpp.o.d"
  "libfpdt_comm.a"
  "libfpdt_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpdt_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
