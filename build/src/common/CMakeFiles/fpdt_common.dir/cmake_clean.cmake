file(REMOVE_RECURSE
  "CMakeFiles/fpdt_common.dir/logging.cpp.o"
  "CMakeFiles/fpdt_common.dir/logging.cpp.o.d"
  "CMakeFiles/fpdt_common.dir/table.cpp.o"
  "CMakeFiles/fpdt_common.dir/table.cpp.o.d"
  "CMakeFiles/fpdt_common.dir/thread_pool.cpp.o"
  "CMakeFiles/fpdt_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/fpdt_common.dir/units.cpp.o"
  "CMakeFiles/fpdt_common.dir/units.cpp.o.d"
  "libfpdt_common.a"
  "libfpdt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpdt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
