file(REMOVE_RECURSE
  "libfpdt_common.a"
)
