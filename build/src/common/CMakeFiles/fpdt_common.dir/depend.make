# Empty dependencies file for fpdt_common.
# This may be replaced when dependencies are built.
