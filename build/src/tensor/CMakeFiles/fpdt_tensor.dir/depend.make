# Empty dependencies file for fpdt_tensor.
# This may be replaced when dependencies are built.
