file(REMOVE_RECURSE
  "CMakeFiles/fpdt_tensor.dir/tensor.cpp.o"
  "CMakeFiles/fpdt_tensor.dir/tensor.cpp.o.d"
  "libfpdt_tensor.a"
  "libfpdt_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpdt_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
