file(REMOVE_RECURSE
  "libfpdt_tensor.a"
)
