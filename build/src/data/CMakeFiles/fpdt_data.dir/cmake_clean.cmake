file(REMOVE_RECURSE
  "CMakeFiles/fpdt_data.dir/loader.cpp.o"
  "CMakeFiles/fpdt_data.dir/loader.cpp.o.d"
  "CMakeFiles/fpdt_data.dir/needle.cpp.o"
  "CMakeFiles/fpdt_data.dir/needle.cpp.o.d"
  "CMakeFiles/fpdt_data.dir/rank_ordinal.cpp.o"
  "CMakeFiles/fpdt_data.dir/rank_ordinal.cpp.o.d"
  "CMakeFiles/fpdt_data.dir/synthetic_corpus.cpp.o"
  "CMakeFiles/fpdt_data.dir/synthetic_corpus.cpp.o.d"
  "libfpdt_data.a"
  "libfpdt_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpdt_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
