file(REMOVE_RECURSE
  "libfpdt_data.a"
)
