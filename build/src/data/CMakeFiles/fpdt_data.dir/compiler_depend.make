# Empty compiler generated dependencies file for fpdt_data.
# This may be replaced when dependencies are built.
