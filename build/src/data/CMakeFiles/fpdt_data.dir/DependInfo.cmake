
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/loader.cpp" "src/data/CMakeFiles/fpdt_data.dir/loader.cpp.o" "gcc" "src/data/CMakeFiles/fpdt_data.dir/loader.cpp.o.d"
  "/root/repo/src/data/needle.cpp" "src/data/CMakeFiles/fpdt_data.dir/needle.cpp.o" "gcc" "src/data/CMakeFiles/fpdt_data.dir/needle.cpp.o.d"
  "/root/repo/src/data/rank_ordinal.cpp" "src/data/CMakeFiles/fpdt_data.dir/rank_ordinal.cpp.o" "gcc" "src/data/CMakeFiles/fpdt_data.dir/rank_ordinal.cpp.o.d"
  "/root/repo/src/data/synthetic_corpus.cpp" "src/data/CMakeFiles/fpdt_data.dir/synthetic_corpus.cpp.o" "gcc" "src/data/CMakeFiles/fpdt_data.dir/synthetic_corpus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/fpdt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fpdt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
