# Empty dependencies file for fpdt_sim.
# This may be replaced when dependencies are built.
