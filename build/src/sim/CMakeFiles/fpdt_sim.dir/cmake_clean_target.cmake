file(REMOVE_RECURSE
  "libfpdt_sim.a"
)
