file(REMOVE_RECURSE
  "CMakeFiles/fpdt_sim.dir/cost_model.cpp.o"
  "CMakeFiles/fpdt_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/fpdt_sim.dir/pipeline_sim.cpp.o"
  "CMakeFiles/fpdt_sim.dir/pipeline_sim.cpp.o.d"
  "CMakeFiles/fpdt_sim.dir/timeline.cpp.o"
  "CMakeFiles/fpdt_sim.dir/timeline.cpp.o.d"
  "libfpdt_sim.a"
  "libfpdt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpdt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
