
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cpp" "src/sim/CMakeFiles/fpdt_sim.dir/cost_model.cpp.o" "gcc" "src/sim/CMakeFiles/fpdt_sim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sim/pipeline_sim.cpp" "src/sim/CMakeFiles/fpdt_sim.dir/pipeline_sim.cpp.o" "gcc" "src/sim/CMakeFiles/fpdt_sim.dir/pipeline_sim.cpp.o.d"
  "/root/repo/src/sim/timeline.cpp" "src/sim/CMakeFiles/fpdt_sim.dir/timeline.cpp.o" "gcc" "src/sim/CMakeFiles/fpdt_sim.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/fpdt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fpdt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fpdt_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
