file(REMOVE_RECURSE
  "libfpdt_core.a"
)
