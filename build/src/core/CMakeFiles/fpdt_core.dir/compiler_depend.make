# Empty compiler generated dependencies file for fpdt_core.
# This may be replaced when dependencies are built.
