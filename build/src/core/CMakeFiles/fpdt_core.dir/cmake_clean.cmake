file(REMOVE_RECURSE
  "CMakeFiles/fpdt_core.dir/chunk_schedule.cpp.o"
  "CMakeFiles/fpdt_core.dir/chunk_schedule.cpp.o.d"
  "CMakeFiles/fpdt_core.dir/chunk_store.cpp.o"
  "CMakeFiles/fpdt_core.dir/chunk_store.cpp.o.d"
  "CMakeFiles/fpdt_core.dir/fpdt_block.cpp.o"
  "CMakeFiles/fpdt_core.dir/fpdt_block.cpp.o.d"
  "CMakeFiles/fpdt_core.dir/fpdt_trainer.cpp.o"
  "CMakeFiles/fpdt_core.dir/fpdt_trainer.cpp.o.d"
  "libfpdt_core.a"
  "libfpdt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpdt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
