# Empty compiler generated dependencies file for test_model_sweeps.
# This may be replaced when dependencies are built.
