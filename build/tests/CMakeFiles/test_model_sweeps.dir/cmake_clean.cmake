file(REMOVE_RECURSE
  "CMakeFiles/test_model_sweeps.dir/test_model_sweeps.cpp.o"
  "CMakeFiles/test_model_sweeps.dir/test_model_sweeps.cpp.o.d"
  "test_model_sweeps"
  "test_model_sweeps.pdb"
  "test_model_sweeps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
