file(REMOVE_RECURSE
  "CMakeFiles/test_inference.dir/test_inference.cpp.o"
  "CMakeFiles/test_inference.dir/test_inference.cpp.o.d"
  "test_inference"
  "test_inference.pdb"
  "test_inference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
