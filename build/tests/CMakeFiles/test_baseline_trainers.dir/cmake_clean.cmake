file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_trainers.dir/test_baseline_trainers.cpp.o"
  "CMakeFiles/test_baseline_trainers.dir/test_baseline_trainers.cpp.o.d"
  "test_baseline_trainers"
  "test_baseline_trainers.pdb"
  "test_baseline_trainers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_trainers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
