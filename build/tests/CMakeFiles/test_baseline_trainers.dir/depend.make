# Empty dependencies file for test_baseline_trainers.
# This may be replaced when dependencies are built.
