file(REMOVE_RECURSE
  "CMakeFiles/test_training.dir/test_training.cpp.o"
  "CMakeFiles/test_training.dir/test_training.cpp.o.d"
  "test_training"
  "test_training.pdb"
  "test_training[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
