# Empty dependencies file for test_needle.
# This may be replaced when dependencies are built.
