file(REMOVE_RECURSE
  "CMakeFiles/test_needle.dir/test_needle.cpp.o"
  "CMakeFiles/test_needle.dir/test_needle.cpp.o.d"
  "test_needle"
  "test_needle.pdb"
  "test_needle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_needle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
