file(REMOVE_RECURSE
  "CMakeFiles/test_fpdt.dir/test_fpdt.cpp.o"
  "CMakeFiles/test_fpdt.dir/test_fpdt.cpp.o.d"
  "test_fpdt"
  "test_fpdt.pdb"
  "test_fpdt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
