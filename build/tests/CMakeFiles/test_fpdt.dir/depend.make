# Empty dependencies file for test_fpdt.
# This may be replaced when dependencies are built.
