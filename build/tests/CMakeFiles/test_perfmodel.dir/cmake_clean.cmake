file(REMOVE_RECURSE
  "CMakeFiles/test_perfmodel.dir/test_perfmodel.cpp.o"
  "CMakeFiles/test_perfmodel.dir/test_perfmodel.cpp.o.d"
  "test_perfmodel"
  "test_perfmodel.pdb"
  "test_perfmodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
