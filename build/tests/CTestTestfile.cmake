# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_fpdt[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_perfmodel[1]_include.cmake")
include("/root/repo/build/tests/test_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_training[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_baseline_trainers[1]_include.cmake")
include("/root/repo/build/tests/test_needle[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/build/tests/test_model_sweeps[1]_include.cmake")
include("/root/repo/build/tests/test_inference[1]_include.cmake")
