# Empty dependencies file for fpdt_cli.
# This may be replaced when dependencies are built.
