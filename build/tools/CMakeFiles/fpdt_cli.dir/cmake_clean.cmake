file(REMOVE_RECURSE
  "CMakeFiles/fpdt_cli.dir/fpdt_cli.cpp.o"
  "CMakeFiles/fpdt_cli.dir/fpdt_cli.cpp.o.d"
  "fpdt"
  "fpdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpdt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
