file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_e2e_mfu.dir/bench_fig11_e2e_mfu.cpp.o"
  "CMakeFiles/bench_fig11_e2e_mfu.dir/bench_fig11_e2e_mfu.cpp.o.d"
  "bench_fig11_e2e_mfu"
  "bench_fig11_e2e_mfu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_e2e_mfu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
