# Empty dependencies file for bench_fig11_e2e_mfu.
# This may be replaced when dependencies are built.
