# Empty dependencies file for bench_fig10_op_latency.
# This may be replaced when dependencies are built.
