
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_kernels.cpp" "bench/CMakeFiles/bench_kernels.dir/bench_kernels.cpp.o" "gcc" "bench/CMakeFiles/bench_kernels.dir/bench_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fpdt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/fpdt_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fpdt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fpdt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/fpdt_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fpdt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fpdt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fpdt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
