file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_footprint.dir/bench_table2_footprint.cpp.o"
  "CMakeFiles/bench_table2_footprint.dir/bench_table2_footprint.cpp.o.d"
  "bench_table2_footprint"
  "bench_table2_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
