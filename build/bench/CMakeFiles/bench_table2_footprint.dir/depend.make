# Empty dependencies file for bench_table2_footprint.
# This may be replaced when dependencies are built.
