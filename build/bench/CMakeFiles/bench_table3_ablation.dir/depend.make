# Empty dependencies file for bench_table3_ablation.
# This may be replaced when dependencies are built.
