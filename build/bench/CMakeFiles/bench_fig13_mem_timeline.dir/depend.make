# Empty dependencies file for bench_fig13_mem_timeline.
# This may be replaced when dependencies are built.
