file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_mem_timeline.dir/bench_fig13_mem_timeline.cpp.o"
  "CMakeFiles/bench_fig13_mem_timeline.dir/bench_fig13_mem_timeline.cpp.o.d"
  "bench_fig13_mem_timeline"
  "bench_fig13_mem_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_mem_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
