file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_chunk_tradeoff.dir/bench_fig12_chunk_tradeoff.cpp.o"
  "CMakeFiles/bench_fig12_chunk_tradeoff.dir/bench_fig12_chunk_tradeoff.cpp.o.d"
  "bench_fig12_chunk_tradeoff"
  "bench_fig12_chunk_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_chunk_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
