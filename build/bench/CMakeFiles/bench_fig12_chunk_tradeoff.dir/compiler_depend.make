# Empty compiler generated dependencies file for bench_fig12_chunk_tradeoff.
# This may be replaced when dependencies are built.
