file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_convergence.dir/bench_fig14_convergence.cpp.o"
  "CMakeFiles/bench_fig14_convergence.dir/bench_fig14_convergence.cpp.o.d"
  "bench_fig14_convergence"
  "bench_fig14_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
