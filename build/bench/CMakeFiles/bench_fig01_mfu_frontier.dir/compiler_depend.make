# Empty compiler generated dependencies file for bench_fig01_mfu_frontier.
# This may be replaced when dependencies are built.
