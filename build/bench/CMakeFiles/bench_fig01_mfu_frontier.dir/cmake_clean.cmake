file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_mfu_frontier.dir/bench_fig01_mfu_frontier.cpp.o"
  "CMakeFiles/bench_fig01_mfu_frontier.dir/bench_fig01_mfu_frontier.cpp.o.d"
  "bench_fig01_mfu_frontier"
  "bench_fig01_mfu_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_mfu_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
