file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_max_context.dir/bench_table1_max_context.cpp.o"
  "CMakeFiles/bench_table1_max_context.dir/bench_table1_max_context.cpp.o.d"
  "bench_table1_max_context"
  "bench_table1_max_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_max_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
