# Empty dependencies file for bench_table1_max_context.
# This may be replaced when dependencies are built.
