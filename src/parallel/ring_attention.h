// Ring Attention baseline (Liu et al., 2023).
//
// Sequence shards are contiguous; each rank projects QKV for its shard with
// *all* heads, then KV blocks rotate around the ring for P-1 steps while
// each rank folds the visiting block into its online-attention state. With
// a causal mask, rank r only has useful work for KV blocks from source
// ranks <= r — the load imbalance the paper calls out ("GPUs are always
// load-balanced" in FPDT, unlike Ring). We surface that imbalance as a
// per-rank count of non-masked (query, KV-block) pairs.
//
// Backward is functionally faithful: gradients of a KV block accumulate
// contributions from every query rank, exactly what the reverse ring
// rotation computes; the emulation sums them directly (the transport is the
// substituted part, the arithmetic is not).
#pragma once

#include <cstdint>
#include <vector>

#include "core/fpdt_env.h"
#include "nn/transformer_block.h"

namespace fpdt::parallel {

class RingAttentionBlockExecutor {
 public:
  RingAttentionBlockExecutor(nn::TransformerBlock& block, core::FpdtEnv& env);

  std::vector<Tensor> forward(const std::vector<Tensor>& x_local);
  std::vector<Tensor> backward(const std::vector<Tensor>& dz_local,
                               const std::vector<Tensor>& x_local);

  // Non-masked (q rank, kv block) pair count per rank from the last
  // forward — rank 0 does 1 useful step, rank P-1 does P (imbalance).
  const std::vector<std::int64_t>& useful_steps() const { return useful_steps_; }

 private:
  struct RankFwd {
    Tensor xn, q, k, v, attn_out, lse, y_local;
  };

  std::vector<Tensor> run_forward(const std::vector<Tensor>& x_local,
                                  std::vector<RankFwd>* saved);

  nn::TransformerBlock* block_;
  core::FpdtEnv* env_;
  std::vector<std::int64_t> useful_steps_;
};

}  // namespace fpdt::parallel
