// 2D (sequence × head) rank grid — the Untied Ulysses decomposition.
//
// 1D Ulysses ties the All2All span to the full sequence-parallel world: at
// P ranks every projection re-shards across all P, so the head scatter
// crosses the slow inter-node fabric as soon as P exceeds one node. The 2D
// grid unties the two axes:
//
//   head axis      `head_degree` ranks, the FAST axis (consecutive global
//                  ranks, so with head_degree | ranks_per_node the whole
//                  axis lives inside one node and the head All2All never
//                  touches the IB HCA);
//   sequence axis  world / head_degree ranks, the SLOW axis (stride
//                  head_degree), carrying the KV/sequence traffic that
//                  overlaps with attention compute.
//
// Placement composes with the node-major topo::Topology: rank r sits at
// (seq = r / head_degree, head = r % head_degree). The grid re-routes
// traffic only — chunk math, ZeRO partitioning and losses are bitwise
// identical to the 1D run at equal world (tests/test_grid2d.cpp), exactly
// as the hierarchical collectives are bitwise identical to flat ones.
//
// Grid2D is the planning object: validity of a (world, ranks_per_node,
// head_degree, n_head) tuple, coordinate maps, and the member lists the
// communication layer turns into comm::GroupView subgroups. The elastic
// layer re-plans it when ranks are lost (fault/elastic.cpp).
#pragma once

#include <string>
#include <vector>

#include "core/fpdt_config.h"

namespace fpdt::parallel {

class Grid2D {
 public:
  // Validity of a grid tuple. head_degree must divide the world and the
  // model's head count (every head-axis rank gets whole heads), and — when
  // a physical grid is declared — ranks_per_node, so the fast axis stays
  // on-node. head_degree <= 0 is the 1D degenerate (always valid; the grid
  // is world × 1). On failure `why` (if non-null) names the violated rule.
  static bool valid(int world, int ranks_per_node, int head_degree, int n_head,
                    std::string* why = nullptr);

  // Builds the grid; FPDT_CHECKs valid(). head_degree <= 0 collapses to 1.
  Grid2D(int world, int ranks_per_node, int head_degree, int n_head);

  // Grid from an FpdtConfig's knobs (the shape FpdtTrainer runs under).
  static Grid2D from_config(const core::FpdtConfig& cfg, int world, int n_head);

  int world() const { return world_; }
  int head_degree() const { return head_degree_; }
  int seq_degree() const { return world_ / head_degree_; }
  int n_head() const { return n_head_; }
  bool is_2d() const { return head_degree_ > 1; }

  // Head axis fast: rank r = seq * head_degree + head.
  int head_of(int rank) const;
  int seq_of(int rank) const;
  int rank_at(int seq, int head) const;

  // Heads owned per head-axis rank after the head All2All.
  int heads_per_rank() const { return n_head_ / head_degree_; }

  // Global ranks of one head-axis group (fixed seq coordinate): a
  // contiguous run of head_degree ranks — the fast axis.
  std::vector<int> head_members(int seq) const;
  // Global ranks of one sequence-axis group (fixed head coordinate):
  // stride head_degree — the slow axis.
  std::vector<int> seq_members(int head) const;

  // True when every head-axis group is contained in a single node of a
  // node-major topology with the given ranks-per-node (the property that
  // keeps the head All2All off the inter-node link).
  bool head_axis_on_node(int ranks_per_node) const;

  std::string to_string() const;  // e.g. "grid 4x2 (seq x head), 8 heads"

 private:
  int world_;
  int head_degree_;
  int n_head_;
};

}  // namespace fpdt::parallel
