// ShardedOptimizer — Adam with ZeRO-partitioned state.
//
// Stage 0 delegates to the reference nn::Adam (replicated moments — the
// conformance oracle). Stages 1–3 run the paper-cited ZeRO step
// (Rajbhandari et al., 2020, §5):
//
//   1. reduce-scatter   each parameter's gradient, padded to P equal flat
//                       shards, goes through comm::ProcessGroup so rank r
//                       receives exactly its owned slice (traced, faultable);
//   2. local Adam       rank r applies the elementwise update — the same
//                       arithmetic as nn::Adam::step, same order — to its
//                       fp32 moment shard and weight shard only;
//   3. all-gather       stages 1/2 re-replicate the updated weights through
//                       a real all-gather; stage 3 keeps the 1/P weight
//                       shards and lets ZeroEngine::gather_group
//                       re-materialize each layer at its next use.
//
// Because grads are exact slices (reduce-scatter of [g, 0, ..., 0] sums to g
// bitwise up to -0 → +0, which Adam's arithmetic cannot distinguish) and
// Adam is elementwise, the concatenated shard updates are bit-identical to
// the replicated update — tests/test_zero.cpp holds every stage to that.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/fpdt_env.h"
#include "nn/adam.h"
#include "nn/param.h"
#include "parallel/zero/zero_config.h"

namespace fpdt::zero {

// Per-parameter, per-rank flat moment shards: shards[name][r].m/.v are
// [ceil(numel/P)] tensors (the same alias checkpoint I/O round-trips).
using ShardedAdamState = std::map<std::string, std::vector<nn::Adam::Moments>>;

class ShardedOptimizer {
 public:
  ShardedOptimizer(core::FpdtEnv& env, ZeroConfig cfg, double lr = 1e-3,
                   double beta1 = 0.9, double beta2 = 0.95, double eps = 1e-8,
                   double weight_decay = 0.0);

  int stage() const { return cfg_.stage; }
  double lr() const { return stage() >= 1 ? lr_ : reference_.lr(); }
  void set_lr(double lr);

  std::int64_t step_count() const { return stage() >= 1 ? t_ : reference_.step_count(); }
  void set_step_count(std::int64_t t);

  // One optimizer update over every parameter the walker visits; zeroes the
  // gradients, exactly like nn::Adam::step.
  void step(const std::function<void(const nn::ParamVisitor&)>& walk);

  // Stage-0 replicated state (checkpointed via the existing unsharded path).
  nn::Adam& reference() { return reference_; }

  // Stage >= 1 sharded state, for checkpoint I/O and bitwise-restore tests.
  const ShardedAdamState& shards() const { return shards_; }
  ShardedAdamState& mutable_shards() { return shards_; }
  void set_shards(ShardedAdamState shards) { shards_ = std::move(shards); }

  // Zero-initialized moment shards for `p`, created exactly as step() would
  // on first touch — so save/restore of a never-stepped optimizer is
  // bit-identical to stepping from scratch.
  std::vector<nn::Adam::Moments>& ensure_shards(const nn::Param& p);

 private:
  void sharded_step(const std::function<void(const nn::ParamVisitor&)>& walk);
  void emit_span(const std::string& label, std::int64_t bytes_per_rank);

  core::FpdtEnv* env_;
  ZeroConfig cfg_;
  double lr_, beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
  ShardedAdamState shards_;
  nn::Adam reference_;  // stage-0 delegate
};

}  // namespace fpdt::zero
