#include "parallel/zero/reshard.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/check.h"

namespace fpdt::zero {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a64(const void* data, std::size_t n, std::uint64_t h = kFnvOffset) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a64_u64(std::uint64_t value, std::uint64_t h) {
  return fnv1a64(&value, sizeof(value), h);
}

// Validates one parameter's shard vector against (numel, world) and returns
// the FNV-1a hash of its flat (unpadded) bytes. `which` selects m or v.
std::uint64_t flat_hash(const std::string& name, const std::vector<nn::Adam::Moments>& mom,
                        std::int64_t numel, int world, bool want_m) {
  FPDT_CHECK_EQ(static_cast<int>(mom.size()), world)
      << " reshard: param " << name << " shard count vs world";
  const std::int64_t s = (numel + world - 1) / world;
  std::uint64_t h = kFnvOffset;
  std::int64_t remaining = numel;
  for (int r = 0; r < world; ++r) {
    const Tensor& t = want_m ? mom[static_cast<std::size_t>(r)].m
                             : mom[static_cast<std::size_t>(r)].v;
    FPDT_CHECK_EQ(t.numel(), s) << " reshard: param " << name << " rank " << r
                                << (want_m ? " m" : " v") << " shard size";
    const std::int64_t used = std::min<std::int64_t>(s, std::max<std::int64_t>(remaining, 0));
    h = fnv1a64(t.data(), static_cast<std::size_t>(used) * sizeof(float), h);
    for (std::int64_t i = used; i < s; ++i) {
      if (t.data()[i] != 0.0f) {
        throw FpdtError("reshard: param " + name + " rank " + std::to_string(r) +
                        (want_m ? " m" : " v") + " has non-zero padding at element " +
                        std::to_string(i) + " — flat view undefined");
      }
    }
    remaining -= used;
  }
  return h;
}

}  // namespace

std::uint64_t ShardManifest::digest() const {
  std::uint64_t h = fnv1a64_u64(entries.size(), kFnvOffset);
  for (const Entry& e : entries) {
    h = fnv1a64(e.name.data(), e.name.size(), h);
    h = fnv1a64_u64(static_cast<std::uint64_t>(e.numel), h);
    h = fnv1a64_u64(e.m_hash, h);
    h = fnv1a64_u64(e.v_hash, h);
  }
  return h;
}

std::string ShardManifest::to_string() const {
  std::ostringstream os;
  os << "manifest world=" << world << " params=" << entries.size() << " digest=" << std::hex
     << digest() << std::dec;
  return os.str();
}

ShardManifest manifest_of(const nn::ShardedAdamState& shards, const ParamElems& numels,
                          int world) {
  FPDT_CHECK_GE(world, 1) << " reshard manifest world";
  ShardManifest out;
  out.world = world;
  out.entries.reserve(shards.size());
  for (const auto& [name, mom] : shards) {
    const auto it = numels.find(name);
    if (it == numels.end()) {
      throw FpdtError("reshard: shard param " + name + " has no numel entry");
    }
    ShardManifest::Entry e;
    e.name = name;
    e.numel = it->second;
    e.m_hash = flat_hash(name, mom, e.numel, world, /*want_m=*/true);
    e.v_hash = flat_hash(name, mom, e.numel, world, /*want_m=*/false);
    out.entries.push_back(std::move(e));
  }
  return out;
}

namespace {

// Re-splits one flat sequence of `numel` elements from `from` shards of
// ceil(numel/from) into `to` shards of ceil(numel/to), zero-padding the
// tail — a pure copy, no arithmetic, so bits survive exactly.
std::vector<Tensor> resplit(const std::vector<nn::Adam::Moments>& mom, std::int64_t numel,
                            int from, int to, bool want_m) {
  const std::int64_t s_from = (numel + from - 1) / from;
  const std::int64_t s_to = (numel + to - 1) / to;
  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(to));
  for (int r = 0; r < to; ++r) out.push_back(Tensor::zeros({s_to}));
  for (std::int64_t i = 0; i < numel; ++i) {
    const Tensor& src = want_m ? mom[static_cast<std::size_t>(i / s_from)].m
                               : mom[static_cast<std::size_t>(i / s_from)].v;
    out[static_cast<std::size_t>(i / s_to)].data()[i % s_to] = src.data()[i % s_from];
  }
  return out;
}

}  // namespace

nn::ShardedAdamState reshard_adam_state(const nn::ShardedAdamState& in,
                                        const ParamElems& numels, int from_world,
                                        int to_world) {
  FPDT_CHECK_GE(to_world, 1) << " reshard target world";
  // Validates geometry and zero padding as a side effect; the hashes are the
  // round-trip witness compared below.
  const ShardManifest before = manifest_of(in, numels, from_world);
  nn::ShardedAdamState out;
  for (const auto& [name, mom] : in) {
    const std::int64_t numel = numels.at(name);
    std::vector<Tensor> m = resplit(mom, numel, from_world, to_world, /*want_m=*/true);
    std::vector<Tensor> v = resplit(mom, numel, from_world, to_world, /*want_m=*/false);
    std::vector<nn::Adam::Moments> dst(static_cast<std::size_t>(to_world));
    for (int r = 0; r < to_world; ++r) {
      dst[static_cast<std::size_t>(r)].m = std::move(m[static_cast<std::size_t>(r)]);
      dst[static_cast<std::size_t>(r)].v = std::move(v[static_cast<std::size_t>(r)]);
    }
    out.emplace(name, std::move(dst));
  }
  const ShardManifest after = manifest_of(out, numels, to_world);
  if (after.digest() != before.digest()) {
    throw FpdtError("reshard: flat state changed across re-split (" + before.to_string() +
                    " -> " + after.to_string() + ")");
  }
  return out;
}

}  // namespace fpdt::zero
