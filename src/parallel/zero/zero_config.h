// ZeRO sharding configuration and partition geometry (Rajbhandari et al.,
// 2020), composed with the sequence-parallel trainers the way the paper's
// evaluation runs every headline result (FPDT + ZeRO-1/2/3, §5.1).
//
// Stages partition the three components of model state across the P ranks
// of the sequence-parallel group:
//   stage 0  everything replicated (the reference; also the test oracle),
//   stage 1  optimizer state (fp32 master + Adam moments) partitioned,
//   stage 2  + gradients partitioned (freed to the owning rank's shard
//             right after reduce-scatter),
//   stage 3  + parameters partitioned (resident as 1/P shards, gathered
//             per layer into a working buffer before use).
//
// Partitioning is by flattened element range: parameter p of n elements is
// split into P contiguous shards of ceil(n/P) elements (the last shard is
// padded with zeros); rank r owns shard r. Sharding is a *pure memory
// transform* — every stage produces bit-identical losses, gradients and
// updates to stage 0, a property tests/test_zero.cpp enforces.
#pragma once

#include <cstdint>

namespace fpdt::zero {

struct ZeroConfig {
  // 0 = replicated, 1/2/3 = ZeRO stages (see above).
  int stage = 0;

  // Emit zero.gather / zero.scatter spans onto each rank's virtual compute
  // stream so the collectives show up in `fpdt overlap` / trace output.
  bool emit_spans = true;
};

// Elements per rank shard for an n-element parameter: ceil(n / world).
inline std::int64_t shard_elems(std::int64_t numel, int world) {
  return (numel + world - 1) / world;
}

// Logical byte sizes of the model-state components, matching the analytic
// memory model (perfmodel/memory_model.cpp): BF16 weights and grads (2 B),
// FP32 master copy + Adam m + v (12 B) per parameter element.
inline constexpr std::int64_t kParamBytesPerElem = 2;
inline constexpr std::int64_t kGradBytesPerElem = 2;
inline constexpr std::int64_t kOptimBytesPerElem = 12;

}  // namespace fpdt::zero
