// ZeRO shard re-partitioning P -> P' for elastic world membership.
//
// ShardedAdamState keeps each parameter's Adam moments as `world` flat
// shards of ceil(numel / world) elements, the last shard zero-padded. The
// shard split is pure bookkeeping: concatenating the shards and trimming
// the padding recovers the parameter's flat [numel] moment vector, and the
// optimizer's elementwise arithmetic never looks across shard boundaries.
// That makes re-partitioning after a world-size change exact: flatten at P,
// re-split at P', and the resulting state is bitwise what a fresh P'-world
// optimizer restored from the same flat moments would hold — the invariant
// the elastic bitwise-resume contract (fault/elastic.h) is built on.
//
// Every conversion goes through a checksummed manifest: per-parameter
// FNV-1a over the flat (unpadded) m/v bytes, taken before the re-split and
// verified after. A manifest mismatch means the shards were corrupt or the
// geometry disagreed — the reshard refuses rather than resuming from silent
// garbage. The manifest digest is also what surviving ranks exchange (over
// a comm::GroupView) to agree they are re-sharding the same state.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "nn/checkpoint_io.h"

namespace fpdt::zero {

// Per-parameter true element counts, keyed by parameter name — the geometry
// the flat view needs (shards alone only bound numel to within padding).
using ParamElems = std::map<std::string, std::int64_t>;

struct ShardManifest {
  struct Entry {
    std::string name;
    std::int64_t numel = 0;    // true (unpadded) element count
    std::uint64_t m_hash = 0;  // FNV-1a64 over the flat m bytes
    std::uint64_t v_hash = 0;  // FNV-1a64 over the flat v bytes
  };
  int world = 0;
  std::vector<Entry> entries;  // sorted by name (map iteration order)

  // Order-sensitive digest over (name, numel, m_hash, v_hash) of every
  // entry plus the entry count — world is deliberately excluded so the
  // digest is invariant under re-partitioning (the agreement token).
  std::uint64_t digest() const;
  std::string to_string() const;
};

// Builds the manifest of `shards` at `world`. Throws FpdtError if a
// parameter's shard count disagrees with `world`, a shard's size disagrees
// with ceil(numel/world), or the padding tail is non-zero (padding must be
// zero for the flat view to be well-defined).
ShardManifest manifest_of(const nn::ShardedAdamState& shards, const ParamElems& numels,
                          int world);

// Re-partitions `in` from `from_world` to `to_world` shards. Verifies `in`
// against a fresh manifest (geometry + zero padding), performs the flatten/
// re-split, and verifies the output manifest has identical flat hashes —
// returning only state that provably round-tripped. Throws FpdtError on any
// mismatch.
nn::ShardedAdamState reshard_adam_state(const nn::ShardedAdamState& in,
                                        const ParamElems& numels, int from_world,
                                        int to_world);

}  // namespace fpdt::zero
