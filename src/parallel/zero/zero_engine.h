// ZeroEngine — executable ZeRO-1/2/3 model-state residency for the emulated
// sequence-parallel group.
//
// The trainers borrow one shared nn::Model, so the *data* for every rank's
// param/grad/optimizer shard already lives in process memory; what ZeRO
// changes is which bytes are resident in each rank's HBM and which bytes
// move through collectives. The engine makes both executable:
//
//   residency   on attach it charges every rank's MemoryPool with exactly
//               the model-state bytes that stage keeps resident (params,
//               grads, optimizer shards — the same accounting rules as
//               perfmodel::estimate_memory, which tests/test_zero.cpp uses
//               as a differential oracle). OOM and peak tracking therefore
//               see model state, not just activations.
//   ZeRO-3      gather_group() routes a real all-gather of the parameter
//               shards through comm::ProcessGroup (obs::Tracer records the
//               bytes, fault::FaultInjector can hit it), writes the result
//               back into the parameter tensors, charges the gathered
//               working buffer on every rank for the duration of the
//               layer's use, and emits a zero.gather span on each rank's
//               virtual timeline. release_group() drops the buffer.
//   ZeRO-2/3    charge_grad_bucket() models the transient full-gradient
//               bucket a layer materializes during backward before the
//               reduce-scatter frees it to the owning rank's shard.
//
// GroupScope is the RAII form trainers wrap around each phase: gather on
// entry, release (+ bucket release) on exit, exception-safe.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/fpdt_env.h"
#include "nn/model.h"
#include "parallel/zero/zero_config.h"
#include "runtime/memory_pool.h"

namespace fpdt::zero {

// Walks one parameter group (a layer, the embedding, the loss head).
using ParamWalk = std::function<void(const nn::ParamVisitor&)>;

// Measured model-state bytes resident on one rank.
struct ResidentBytes {
  std::int64_t params = 0;
  std::int64_t grads = 0;
  std::int64_t optimizer = 0;
  std::int64_t total() const { return params + grads + optimizer; }
};

class ZeroEngine {
 public:
  // Charges every rank's HBM pool with the stage's resident model state.
  // Throws OutOfMemoryError where a real run would fail to place the shards.
  ZeroEngine(nn::Model& model, core::FpdtEnv& env, ZeroConfig cfg);
  ~ZeroEngine();

  ZeroEngine(const ZeroEngine&) = delete;
  ZeroEngine& operator=(const ZeroEngine&) = delete;

  const ZeroConfig& cfg() const { return cfg_; }
  int world() const;
  core::FpdtEnv& env() { return *env_; }

  // Total parameter elements across the wrapped model.
  std::int64_t total_param_elems() const { return total_elems_; }
  // Sum over params of ceil(numel / P) — the exact shard size the engine
  // charges (the analytic model divides exactly; the difference is the
  // per-parameter padding bound tests tolerate).
  std::int64_t total_shard_elems() const { return total_shard_elems_; }

  // Measured residency charged against rank r's HBM pool right now
  // (persistent shards only; gathered buffers and grad buckets are reported
  // by the pool's used/peak counters).
  ResidentBytes resident(int rank) const;

  // ---- ZeRO-3 per-layer parameter gather (stage < 3: no-op) --------------
  // `key` names the group ("block3", "embed", "head"); `walk` visits its
  // params. Gathering twice under the same key is an error (missing
  // release).
  void gather_group(const std::string& key, const ParamWalk& walk);
  void release_group(const std::string& key);

  // ---- ZeRO-2/3 transient gradient bucket (stage < 2: no-op) -------------
  void charge_grad_bucket(const std::string& key, const ParamWalk& walk);
  void release_grad_bucket(const std::string& key);

 private:
  std::int64_t group_elems(const ParamWalk& walk) const;
  void emit_span(const char* label, std::int64_t bytes_per_rank);

  nn::Model* model_;
  core::FpdtEnv* env_;
  ZeroConfig cfg_;
  std::int64_t total_elems_ = 0;
  std::int64_t total_shard_elems_ = 0;

  // Persistent residency, one allocation per rank per component.
  std::vector<runtime::Allocation> params_resident_;
  std::vector<runtime::Allocation> grads_resident_;
  std::vector<runtime::Allocation> optim_resident_;

  // In-flight gathered layers / grad buckets, keyed by group.
  std::map<std::string, std::vector<runtime::Allocation>> gathered_;
  std::map<std::string, std::vector<runtime::Allocation>> buckets_;
};

// RAII window for one group's execution: gathers params on entry (stage 3),
// optionally charges the backward grad bucket (stage >= 2), releases both on
// exit. Null engine = no-op, so trainers wrap phases unconditionally.
class GroupScope {
 public:
  GroupScope(ZeroEngine* engine, std::string key, ParamWalk walk, bool grad_bucket)
      : engine_(engine), key_(std::move(key)) {
    if (engine_ == nullptr) return;
    engine_->gather_group(key_, walk);
    if (grad_bucket) {
      engine_->charge_grad_bucket(key_, walk);
      bucket_ = true;
    }
  }
  ~GroupScope() {
    if (engine_ == nullptr) return;
    if (bucket_) engine_->release_grad_bucket(key_);
    engine_->release_group(key_);
  }

  GroupScope(const GroupScope&) = delete;
  GroupScope& operator=(const GroupScope&) = delete;

 private:
  ZeroEngine* engine_ = nullptr;
  std::string key_;
  bool bucket_ = false;
};

}  // namespace fpdt::zero
