#include "parallel/zero/zero_engine.h"

#include <cstring>

#include "common/check.h"
#include "tensor/tensor.h"

namespace fpdt::zero {

namespace {

// Collects the parameters a group walk visits. The engine is called from the
// orchestration thread (outside parallel_for_ranks), so holding raw Param
// pointers for the duration of one gather/charge call is safe.
std::vector<nn::Param*> collect(const ParamWalk& walk) {
  std::vector<nn::Param*> params;
  walk([&](nn::Param& p) { params.push_back(&p); });
  return params;
}

std::int64_t sum_numel(const std::vector<nn::Param*>& params) {
  std::int64_t n = 0;
  for (const nn::Param* p : params) n += p->value.numel();
  return n;
}

}  // namespace

ZeroEngine::ZeroEngine(nn::Model& model, core::FpdtEnv& env, ZeroConfig cfg)
    : model_(&model), env_(&env), cfg_(cfg) {
  FPDT_CHECK(cfg_.stage >= 0 && cfg_.stage <= 3)
      << " invalid ZeRO stage " << cfg_.stage;
  const int world = env_->world();
  model_->visit_params([&](nn::Param& p) {
    total_elems_ += p.value.numel();
    total_shard_elems_ += shard_elems(p.value.numel(), world);
  });

  // Persistent residency per the stage's partitioning rules (the same rules
  // perfmodel::estimate_memory applies analytically):
  //   params     full 2N below stage 3, 2 * sum ceil(n/P) at stage 3
  //   grads      full 2N below stage 2, sharded at stage >= 2
  //   optimizer  full 12N at stage 0, sharded at stage >= 1
  const std::int64_t param_elems = cfg_.stage >= 3 ? total_shard_elems_ : total_elems_;
  const std::int64_t grad_elems = cfg_.stage >= 2 ? total_shard_elems_ : total_elems_;
  const std::int64_t optim_elems = cfg_.stage >= 1 ? total_shard_elems_ : total_elems_;
  params_resident_.reserve(static_cast<std::size_t>(world));
  grads_resident_.reserve(static_cast<std::size_t>(world));
  optim_resident_.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    runtime::MemoryPool& hbm = env_->device(r).hbm();
    params_resident_.emplace_back(&hbm, param_elems * kParamBytesPerElem);
    grads_resident_.emplace_back(&hbm, grad_elems * kGradBytesPerElem);
    optim_resident_.emplace_back(&hbm, optim_elems * kOptimBytesPerElem);
  }
}

ZeroEngine::~ZeroEngine() = default;

int ZeroEngine::world() const { return env_->world(); }

ResidentBytes ZeroEngine::resident(int rank) const {
  FPDT_CHECK(rank >= 0 && rank < static_cast<int>(params_resident_.size()))
      << " rank " << rank << " out of range";
  const auto i = static_cast<std::size_t>(rank);
  return {params_resident_[i].bytes(), grads_resident_[i].bytes(),
          optim_resident_[i].bytes()};
}

std::int64_t ZeroEngine::group_elems(const ParamWalk& walk) const {
  return sum_numel(collect(walk));
}

void ZeroEngine::emit_span(const char* label, std::int64_t bytes_per_rank) {
  if (!cfg_.emit_spans) return;
  const int world = env_->world();
  for (int r = 0; r < world; ++r) {
    runtime::Device& d = env_->device(r);
    const double dt = d.rates().a2a_time(bytes_per_rank, world);
    // Synchronize immediately: the span is timing-only, and the step
    // watchdog (fault/watchdog) requires idle streams at step end.
    d.compute_stream().enqueue(label, dt);
    d.compute_stream().synchronize();
  }
}

void ZeroEngine::gather_group(const std::string& key, const ParamWalk& walk) {
  if (cfg_.stage < 3) return;
  FPDT_CHECK(gathered_.find(key) == gathered_.end())
      << " group '" << key << "' gathered twice (missing release_group)";

  const std::vector<nn::Param*> params = collect(walk);
  const std::int64_t elems = sum_numel(params);
  const int world = env_->world();

  // Charge the gathered working buffer (the full group's BF16 params) on
  // every rank *before* moving data — where a real allocator would OOM.
  std::vector<runtime::Allocation>& charges = gathered_[key];
  charges.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    charges.emplace_back(&env_->device(r).hbm(), elems * kParamBytesPerElem);
  }

  if (world > 1) {
    // Real data round-trip: each rank contributes its shard slices of every
    // parameter in the group, the group all-gathers them, and the full
    // values are written back from the received buffer. Bitwise a no-op on
    // a healthy link, but a corrupted collective *would* corrupt params —
    // which is exactly what the fault tests need to be able to observe.
    std::vector<Tensor> flats;  // padded flat copy per param
    flats.reserve(params.size());
    std::vector<std::int64_t> shard_sizes(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      const std::int64_t n = params[i]->value.numel();
      const std::int64_t s = shard_elems(n, world);
      shard_sizes[i] = s;
      Tensor flat({s * world});
      std::memcpy(flat.data(), params[i]->value.data(),
                  static_cast<std::size_t>(n) * sizeof(float));
      flats.push_back(std::move(flat));
    }
    std::vector<Tensor> local(static_cast<std::size_t>(world));
    for (int r = 0; r < world; ++r) {
      std::vector<Tensor> shards;
      shards.reserve(params.size());
      for (std::size_t i = 0; i < params.size(); ++i) {
        shards.push_back(flats[i].slice0(r * shard_sizes[i], (r + 1) * shard_sizes[i]));
      }
      local[static_cast<std::size_t>(r)] = concat0(shards);
    }
    const std::vector<Tensor> full = env_->pg().all_gather(local);
    // full[rank] = concat of every rank's group-shard in rank order; unpack
    // rank r's segment back into each parameter's [r*s, r*s+s) range.
    const Tensor& recv = full[0];
    const std::int64_t group_shard = local[0].numel();
    for (int r = 0; r < world; ++r) {
      std::int64_t off = r * group_shard;
      for (std::size_t i = 0; i < params.size(); ++i) {
        const std::int64_t n = params[i]->value.numel();
        const std::int64_t s = shard_sizes[i];
        const std::int64_t lo = r * s;
        const std::int64_t len = std::min(s, n - lo);
        if (len > 0) {
          std::memcpy(params[i]->value.data() + lo, recv.data() + off,
                      static_cast<std::size_t>(len) * sizeof(float));
        }
        off += s;
      }
    }
  }

  emit_span(("zero.gather." + key).c_str(), elems * kParamBytesPerElem);
}

void ZeroEngine::release_group(const std::string& key) {
  if (cfg_.stage < 3) return;
  auto it = gathered_.find(key);
  FPDT_CHECK(it != gathered_.end()) << " release of ungathered group '" << key << "'";
  gathered_.erase(it);  // Allocation dtors discharge every rank's buffer
}

void ZeroEngine::charge_grad_bucket(const std::string& key, const ParamWalk& walk) {
  if (cfg_.stage < 2) return;
  FPDT_CHECK(buckets_.find(key) == buckets_.end())
      << " grad bucket '" << key << "' charged twice";
  const std::int64_t elems = group_elems(walk);
  std::vector<runtime::Allocation>& charges = buckets_[key];
  const int world = env_->world();
  charges.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    charges.emplace_back(&env_->device(r).hbm(), elems * kGradBytesPerElem);
  }
}

void ZeroEngine::release_grad_bucket(const std::string& key) {
  if (cfg_.stage < 2) return;
  auto it = buckets_.find(key);
  FPDT_CHECK(it != buckets_.end()) << " release of uncharged grad bucket '" << key << "'";
  buckets_.erase(it);
}

}  // namespace fpdt::zero
