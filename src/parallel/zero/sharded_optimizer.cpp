#include "parallel/zero/sharded_optimizer.h"

#include <cmath>
#include <cstring>

#include "common/check.h"
#include "obs/trace.h"
#include "tensor/tensor.h"

namespace fpdt::zero {

ShardedOptimizer::ShardedOptimizer(core::FpdtEnv& env, ZeroConfig cfg, double lr,
                                   double beta1, double beta2, double eps,
                                   double weight_decay)
    : env_(&env),
      cfg_(cfg),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay),
      reference_(lr, beta1, beta2, eps, weight_decay) {
  FPDT_CHECK(cfg_.stage >= 0 && cfg_.stage <= 3)
      << " invalid ZeRO stage " << cfg_.stage;
}

void ShardedOptimizer::set_lr(double lr) {
  lr_ = lr;
  reference_.set_lr(lr);
}

void ShardedOptimizer::set_step_count(std::int64_t t) {
  t_ = t;
  reference_.set_step_count(t);
}

std::vector<nn::Adam::Moments>& ShardedOptimizer::ensure_shards(const nn::Param& p) {
  const int world = env_->world();
  auto [it, inserted] = shards_.try_emplace(p.name);
  if (inserted) {
    const std::int64_t s = shard_elems(p.value.numel(), world);
    it->second.resize(static_cast<std::size_t>(world));
    for (auto& mom : it->second) {
      mom.m = Tensor::zeros({s});
      mom.v = Tensor::zeros({s});
    }
  }
  return it->second;
}

void ShardedOptimizer::emit_span(const std::string& label, std::int64_t bytes_per_rank) {
  if (!cfg_.emit_spans) return;
  const int world = env_->world();
  for (int r = 0; r < world; ++r) {
    runtime::Device& d = env_->device(r);
    // Timing-only span, synchronized immediately so the end-of-step
    // watchdog sees quiescent streams.
    d.compute_stream().enqueue(label, d.rates().a2a_time(bytes_per_rank, world));
    d.compute_stream().synchronize();
  }
}

void ShardedOptimizer::step(const std::function<void(const nn::ParamVisitor&)>& walk) {
  if (cfg_.stage < 1) {
    reference_.step(walk);
    return;
  }
  sharded_step(walk);
}

void ShardedOptimizer::sharded_step(
    const std::function<void(const nn::ParamVisitor&)>& walk) {
  FPDT_TRACE_SCOPE(obs::kCatPhase, "optimizer");
  const int world = env_->world();
  comm::ProcessGroup& pg = env_->pg();
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const float b1 = static_cast<float>(beta1_);
  const float b2 = static_cast<float>(beta2_);

  std::int64_t scatter_elems = 0;  // grad elements reduce-scattered
  std::int64_t gather_elems = 0;   // updated weight elements re-replicated

  walk([&](nn::Param& p) {
    const std::int64_t n = p.value.numel();
    const std::int64_t s = shard_elems(n, world);
    scatter_elems += s * world;

    // Pad grad and weight to P equal flat shards; the tail pad is zeros, so
    // its moments stay zero and its weight updates are discarded below.
    Tensor flat_g({s * world});
    std::memcpy(flat_g.data(), p.grad.data(), static_cast<std::size_t>(n) * sizeof(float));
    Tensor flat_w({s * world});
    std::memcpy(flat_w.data(), p.value.data(), static_cast<std::size_t>(n) * sizeof(float));

    // reduce-scatter([g, 0, ..., 0]) — the sum is g bitwise (up to -0 → +0,
    // invisible to Adam's arithmetic), and rank r receives exactly its
    // owned slice through the traced, fault-injectable collective.
    std::vector<Tensor> contrib(static_cast<std::size_t>(world));
    contrib[0] = flat_g;
    for (int r = 1; r < world; ++r) {
      contrib[static_cast<std::size_t>(r)] = Tensor::zeros({s * world});
    }
    const std::vector<Tensor> grad_shards = pg.reduce_scatter(contrib);

    std::vector<nn::Adam::Moments>& mom = ensure_shards(p);
    FPDT_CHECK_EQ(mom[0].m.numel(), s)
        << " stale shard geometry for " << p.name << " (world changed?)";
    for (int r = 0; r < world; ++r) {
      // Rank r's local Adam on its owned shard — arithmetic and evaluation
      // order identical to nn::Adam::step.
      float* w = flat_w.data() + r * s;
      const float* g = grad_shards[static_cast<std::size_t>(r)].data();
      float* m = mom[static_cast<std::size_t>(r)].m.data();
      float* v = mom[static_cast<std::size_t>(r)].v.data();
      for (std::int64_t i = 0; i < s; ++i) {
        m[i] = b1 * m[i] + (1.0f - b1) * g[i];
        v[i] = b2 * v[i] + (1.0f - b2) * g[i] * g[i];
        const double mhat = static_cast<double>(m[i]) / bc1;
        const double vhat = static_cast<double>(v[i]) / bc2;
        w[i] -= static_cast<float>(lr_ * (mhat / (std::sqrt(vhat) + eps_) +
                                          weight_decay_ * static_cast<double>(w[i])));
      }
    }

    if (cfg_.stage < 3 && world > 1) {
      // Re-replicate the updated weights through a real all-gather: each
      // rank contributes its updated shard, and the full parameter is
      // written back from the received buffer.
      gather_elems += s * world;
      std::vector<Tensor> updated(static_cast<std::size_t>(world));
      for (int r = 0; r < world; ++r) {
        updated[static_cast<std::size_t>(r)] = flat_w.slice0(r * s, (r + 1) * s);
      }
      const std::vector<Tensor> full = pg.all_gather(updated);
      std::memcpy(p.value.data(), full[0].data(),
                  static_cast<std::size_t>(n) * sizeof(float));
    } else {
      // Stage 3 (or single rank): the updated shards are the resident
      // representation; ZeroEngine::gather_group re-materializes full
      // layers at their next use.
      std::memcpy(p.value.data(), flat_w.data(),
                  static_cast<std::size_t>(n) * sizeof(float));
    }
    p.grad.zero_();
  });

  emit_span("zero.scatter", scatter_elems * kGradBytesPerElem);
  if (gather_elems > 0) emit_span("zero.gather", gather_elems * kParamBytesPerElem);
}

}  // namespace fpdt::zero
