#include "parallel/grid2d.h"

#include "common/check.h"

namespace fpdt::parallel {

namespace {

bool fail(std::string* why, const std::string& msg) {
  if (why != nullptr) *why = msg;
  return false;
}

}  // namespace

bool Grid2D::valid(int world, int ranks_per_node, int head_degree, int n_head,
                   std::string* why) {
  if (world < 1) return fail(why, "world must be >= 1");
  if (n_head < 1) return fail(why, "n_head must be >= 1");
  if (head_degree <= 0) return true;  // 1D degenerate
  if (world % head_degree != 0) {
    return fail(why, "head_degree " + std::to_string(head_degree) + " does not divide world " +
                         std::to_string(world));
  }
  if (n_head % head_degree != 0) {
    return fail(why, "head_degree " + std::to_string(head_degree) +
                         " does not divide n_head " + std::to_string(n_head));
  }
  if (ranks_per_node > 0 && ranks_per_node % head_degree != 0) {
    return fail(why, "head_degree " + std::to_string(head_degree) +
                         " does not divide ranks_per_node " + std::to_string(ranks_per_node) +
                         " (the head axis would cross nodes)");
  }
  return true;
}

Grid2D::Grid2D(int world, int ranks_per_node, int head_degree, int n_head)
    : world_(world), head_degree_(head_degree <= 0 ? 1 : head_degree), n_head_(n_head) {
  std::string why;
  FPDT_CHECK(valid(world, ranks_per_node, head_degree, n_head, &why)) << " grid2d: " << why;
}

Grid2D Grid2D::from_config(const core::FpdtConfig& cfg, int world, int n_head) {
  return Grid2D(world, cfg.ranks_per_node, cfg.head_degree, n_head);
}

int Grid2D::head_of(int rank) const {
  FPDT_CHECK(rank >= 0 && rank < world_) << " grid2d rank " << rank;
  return rank % head_degree_;
}

int Grid2D::seq_of(int rank) const {
  FPDT_CHECK(rank >= 0 && rank < world_) << " grid2d rank " << rank;
  return rank / head_degree_;
}

int Grid2D::rank_at(int seq, int head) const {
  FPDT_CHECK(seq >= 0 && seq < seq_degree()) << " grid2d seq coord " << seq;
  FPDT_CHECK(head >= 0 && head < head_degree_) << " grid2d head coord " << head;
  return seq * head_degree_ + head;
}

std::vector<int> Grid2D::head_members(int seq) const {
  FPDT_CHECK(seq >= 0 && seq < seq_degree()) << " grid2d seq coord " << seq;
  std::vector<int> m;
  m.reserve(static_cast<std::size_t>(head_degree_));
  for (int h = 0; h < head_degree_; ++h) m.push_back(rank_at(seq, h));
  return m;
}

std::vector<int> Grid2D::seq_members(int head) const {
  FPDT_CHECK(head >= 0 && head < head_degree_) << " grid2d head coord " << head;
  std::vector<int> m;
  m.reserve(static_cast<std::size_t>(seq_degree()));
  for (int s = 0; s < seq_degree(); ++s) m.push_back(rank_at(s, head));
  return m;
}

bool Grid2D::head_axis_on_node(int ranks_per_node) const {
  if (ranks_per_node <= 0) return false;
  // A head group is the contiguous range [seq*H, (seq+1)*H); it stays in
  // one node iff H divides R (node boundaries are multiples of R and H | R
  // makes every group start/end inside one R-block).
  return ranks_per_node % head_degree_ == 0;
}

std::string Grid2D::to_string() const {
  return "grid " + std::to_string(seq_degree()) + "x" + std::to_string(head_degree_) +
         " (seq x head), " + std::to_string(n_head_) + " heads";
}

}  // namespace fpdt::parallel
