// End-to-end training steps for the baseline strategies — the counterpart
// of core::FpdtTrainer for Ulysses, Megatron-SP and Ring Attention. All
// three shard the sequence contiguously, run per-rank embedding and loss,
// and execute every block through the respective distributed executor.
// Like FpdtTrainer they borrow the wrapped nn::Model's weights, so losses
// and gradients are directly comparable across strategies — extending the
// Fig. 14 convergence-equivalence argument to every baseline.
#pragma once

#include <cstdint>
#include <memory>
#include <variant>
#include <vector>

#include "core/fpdt_env.h"
#include "nn/model.h"
#include "parallel/megatron_sp.h"
#include "parallel/ring_attention.h"
#include "parallel/ulysses.h"
#include "parallel/zero/zero_engine.h"

namespace fpdt::parallel {

enum class BaselineKind { kUlysses, kMegatronSp, kRing };

class BaselineTrainer {
 public:
  // zero_stage: -1 = seed behavior (no model-state accounting); 0-3 attach
  // a zero::ZeroEngine exactly as FpdtTrainer does (DeepSpeed Ulysses runs
  // with ZeRO-3 in the paper's evaluation, §5.1).
  BaselineTrainer(nn::Model& model, int world, BaselineKind kind,
                  std::int64_t hbm_capacity_bytes = -1, int zero_stage = -1);

  // tokens: s_global + 1 ids, s_global divisible by world.
  // Returns mean token loss; accumulates grads into the wrapped model.
  double train_step_grads(const std::vector<std::int32_t>& tokens);

  core::FpdtEnv& env() { return env_; }
  BaselineKind kind() const { return kind_; }
  zero::ZeroEngine* zero_engine() { return zero_.get(); }

 private:
  using Executor =
      std::variant<UlyssesBlockExecutor, MegatronSpBlockExecutor, RingAttentionBlockExecutor>;

  std::vector<Tensor> exec_forward(std::size_t layer, const std::vector<Tensor>& x);
  std::vector<Tensor> exec_backward(std::size_t layer, const std::vector<Tensor>& dz,
                                    const std::vector<Tensor>& x);

  nn::Model* model_;
  BaselineKind kind_;
  core::FpdtEnv env_;
  std::vector<Executor> executors_;
  std::unique_ptr<zero::ZeroEngine> zero_;
};

}  // namespace fpdt::parallel
