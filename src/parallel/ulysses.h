// DeepSpeed Ulysses baseline (Jacobs et al., 2023).
//
// Ulysses shards the sequence contiguously across ranks and performs one
// All2All per projection to scatter heads / gather sequence, runs full
// (Flash-style) attention over the whole sequence with local heads, and one
// All2All back. FPDT is "designed based on DeepSpeed Ulysses" (§4): with a
// single chunk per rank, no offload and a contiguous layout, the FPDT
// executor *is* Ulysses — rank-ordinal placement with u = 1 assigns global
// chunk r to rank r. This adapter pins that configuration and exposes the
// baseline under its own name; its memory profile (full-sequence QKV,
// receive buffers and attention working set all resident at once) is the
// Table-2 baseline the paper improves on.
#pragma once

#include "core/fpdt_block.h"
#include "core/fpdt_env.h"
#include "nn/transformer_block.h"

namespace fpdt::parallel {

class UlyssesBlockExecutor {
 public:
  UlyssesBlockExecutor(nn::TransformerBlock& block, std::int64_t layer_index,
                       core::FpdtEnv& env)
      : inner_(block, layer_index, env) {
    FPDT_CHECK_EQ(env.cfg().chunks_per_rank, 1)
        << " Ulysses is the single-chunk configuration";
    FPDT_CHECK(!env.cfg().offload) << " Ulysses does not offload";
  }

  // x_local: contiguous sequence shard per rank ([r*s_local, (r+1)*s_local)).
  std::vector<Tensor> forward(const std::vector<Tensor>& x_local) {
    return inner_.forward(x_local);
  }

  std::vector<Tensor> backward(const std::vector<Tensor>& dz_local,
                               const std::vector<Tensor>& x_local) {
    return inner_.backward(dz_local, x_local);
  }

  // Environment config for a Ulysses run.
  static core::FpdtConfig config() {
    core::FpdtConfig cfg;
    cfg.chunks_per_rank = 1;
    cfg.offload = false;
    cfg.double_buffer = false;
    cfg.ffn_chunk_multiplier = 1;
    // Ulysses under activation checkpointing recomputes the block forward
    // in backward; it has no chunk cache to skip it with.
    cfg.cache_forward_outputs = false;
    return cfg;
  }

 private:
  core::FpdtBlockExecutor inner_;
};

}  // namespace fpdt::parallel
