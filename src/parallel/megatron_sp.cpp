#include "parallel/megatron_sp.h"

#include "common/check.h"
#include "nn/activation.h"
#include "nn/attention.h"
#include "nn/rope.h"

namespace fpdt::parallel {

namespace {

using nn::Arch;
using nn::AttentionOutput;
using nn::NormStats;
using runtime::Allocation;

// Column-sum of a 2-D tensor into an existing 1-D accumulator.
void add_colsum_(Tensor& acc, const Tensor& x2d) {
  const std::int64_t rows = x2d.dim(0);
  const std::int64_t cols = x2d.dim(1);
  FPDT_CHECK_EQ(acc.numel(), cols) << " colsum accumulator";
  float* a = acc.data();
  const float* xp = x2d.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) a[c] += xp[r * cols + c];
  }
}

// grad[:, c0:c0+W.cols] += delta.
void add_into_columns_(Tensor& grad, const Tensor& delta, std::int64_t c0) {
  const std::int64_t rows = grad.dim(0);
  const std::int64_t gcols = grad.dim(1);
  const std::int64_t dcols = delta.dim(1);
  FPDT_CHECK_EQ(delta.dim(0), rows) << " column grad rows";
  float* g = grad.data();
  const float* dp = delta.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < dcols; ++c) g[r * gcols + c0 + c] += dp[r * dcols + c];
  }
}

}  // namespace

MegatronSpBlockExecutor::MegatronSpBlockExecutor(nn::TransformerBlock& block,
                                                 core::FpdtEnv& env)
    : block_(&block), env_(&env) {
  const int P = env.world();
  FPDT_CHECK_EQ(block.attention().n_head() % P, 0) << " heads must divide TP degree";
  FPDT_CHECK_EQ(block.attention().n_kv_head() % P, 0) << " kv heads must divide TP degree";
  FPDT_CHECK_EQ(block.ffn().hidden() % P, 0) << " ffn hidden must divide TP degree";
}

std::int64_t MegatronSpBlockExecutor::q_rows_per_rank() const {
  return block_->attention().n_head() / env_->world() * block_->attention().head_dim();
}

std::int64_t MegatronSpBlockExecutor::kv_rows_per_rank() const {
  return block_->attention().n_kv_head() / env_->world() * block_->attention().head_dim();
}

std::int64_t MegatronSpBlockExecutor::ffn_rows_per_rank() const {
  return block_->ffn().hidden() / env_->world();
}

std::vector<Tensor> MegatronSpBlockExecutor::forward(const std::vector<Tensor>& x_local) {
  return run_forward(x_local, nullptr);
}

std::vector<Tensor> MegatronSpBlockExecutor::run_forward(const std::vector<Tensor>& x_local,
                                                         std::vector<RankFwd>* saved) {
  const int P = env_->world();
  FPDT_CHECK_EQ(static_cast<int>(x_local.size()), P) << " rank count";
  nn::AttentionLayer& attn = block_->attention();
  const std::int64_t dh = attn.head_dim();
  const std::int64_t h_local = attn.n_head() / P;
  const std::int64_t kv_local = attn.n_kv_head() / P;
  const std::int64_t qr = q_rows_per_rank();
  const std::int64_t kvr = kv_rows_per_rank();
  const bool gpt = block_->ffn().arch() == Arch::kGpt;
  const std::int64_t fr = ffn_rows_per_rank();

  if (saved != nullptr) saved->resize(static_cast<std::size_t>(P));

  // ---- norm1 + sequence all-gather. The gathered [s, d] activation is the
  // footprint TP cannot reduce (§5.5: the GEMM "generates an intermediate
  // buffer [N, B, C̃] regardless of C").
  std::vector<Tensor> xn_local(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    NormStats st;
    xn_local[static_cast<std::size_t>(r)] =
        block_->norm1().forward(x_local[static_cast<std::size_t>(r)], st);
  }
  std::vector<Tensor> xn_full = env_->pg().all_gather(xn_local);
  const std::int64_t s = xn_full[0].dim(0);

  std::vector<Tensor> attn_partials(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    runtime::Device& dev = env_->device(r);
    dev.hbm().set_phase_label("msp.attn");
    Allocation gather_charge(&dev.hbm(), xn_full[0].numel() * 2);
    // Column-parallel QKV: this rank's rows of Wq/Wk/Wv are its heads.
    Tensor q = matmul_nt(xn_full[static_cast<std::size_t>(r)],
                         attn.wq().weight().value.slice0(r * qr, (r + 1) * qr));
    Tensor k = matmul_nt(xn_full[static_cast<std::size_t>(r)],
                         attn.wk().weight().value.slice0(r * kvr, (r + 1) * kvr));
    Tensor v = matmul_nt(xn_full[static_cast<std::size_t>(r)],
                         attn.wv().weight().value.slice0(r * kvr, (r + 1) * kvr));
    if (attn.wq().has_bias()) {
      add_bias_(q, attn.wq().bias().value.slice0(r * qr, (r + 1) * qr));
      add_bias_(k, attn.wk().bias().value.slice0(r * kvr, (r + 1) * kvr));
      add_bias_(v, attn.wv().bias().value.slice0(r * kvr, (r + 1) * kvr));
    }
    Allocation qkv_charge(&dev.hbm(), (q.numel() + k.numel() + v.numel()) * 2);
    q = q.reshape({s, h_local, dh});
    k = k.reshape({s, kv_local, dh});
    v = v.reshape({s, kv_local, dh});
    nn::rope_apply_(q, 0, attn.rope_base());
    nn::rope_apply_(k, 0, attn.rope_base());
    AttentionOutput out = nn::reference_attention_forward(q, k, v, /*causal=*/true);
    // Row-parallel Wo: local heads hit their column block; partial sums are
    // reduce-scattered back to sequence shards.
    Tensor wo_cols = attn.wo().weight().value.narrow(1, r * qr, qr);
    attn_partials[static_cast<std::size_t>(r)] =
        matmul_nt(out.out.reshape({s, qr}), wo_cols);
    if (saved != nullptr) {
      RankFwd& fw = (*saved)[static_cast<std::size_t>(r)];
      fw.xn_full = xn_full[static_cast<std::size_t>(r)];
      fw.q = q;
      fw.k = k;
      fw.v = v;
      fw.attn_out = out.out;
      fw.lse = out.lse;
    }
  }
  std::vector<Tensor> attn_local = env_->pg().reduce_scatter(attn_partials);

  // ---- Residual + norm2 + gathered FFN.
  std::vector<Tensor> yn_local(static_cast<std::size_t>(P));
  std::vector<Tensor> y_local(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    if (block_->attention().wo().has_bias()) {
      add_bias_(attn_local[static_cast<std::size_t>(r)], attn.wo().bias().value);
    }
    y_local[static_cast<std::size_t>(r)] =
        add(x_local[static_cast<std::size_t>(r)], attn_local[static_cast<std::size_t>(r)]);
    NormStats st;
    yn_local[static_cast<std::size_t>(r)] =
        block_->norm2().forward(y_local[static_cast<std::size_t>(r)], st);
    if (saved != nullptr) {
      (*saved)[static_cast<std::size_t>(r)].y_local = y_local[static_cast<std::size_t>(r)];
    }
  }
  std::vector<Tensor> yn_full = env_->pg().all_gather(yn_local);

  std::vector<Tensor> ffn_partials(static_cast<std::size_t>(P));
  // fc1 is the GPT up-projection / Llama gate; both are column-parallel.
  nn::Linear& fc1 = block_->ffn().fc1();
  for (int r = 0; r < P; ++r) {
    runtime::Device& dev = env_->device(r);
    dev.hbm().set_phase_label("msp.ffn");
    Allocation gather_charge(&dev.hbm(), yn_full[0].numel() * 2);
    Tensor u1 = matmul_nt(yn_full[static_cast<std::size_t>(r)],
                          fc1.weight().value.slice0(r * fr, (r + 1) * fr));
    if (fc1.has_bias()) {
      add_bias_(u1, fc1.bias().value.slice0(r * fr, (r + 1) * fr));
    }
    Allocation act_charge(&dev.hbm(), u1.numel() * 2 * (gpt ? 2 : 3));
    Tensor hmid;
    Tensor u3;
    if (gpt) {
      hmid = nn::gelu_forward(u1);
    } else {
      u3 = matmul_nt(yn_full[static_cast<std::size_t>(r)],
                     block_->ffn().fc3().weight().value.slice0(r * fr, (r + 1) * fr));
      hmid = mul(nn::silu_forward(u1), u3);
    }
    Tensor fc2_cols = block_->ffn().fc2().weight().value.narrow(1, r * fr, fr);
    ffn_partials[static_cast<std::size_t>(r)] = matmul_nt(hmid, fc2_cols);
    if (saved != nullptr) {
      RankFwd& fw = (*saved)[static_cast<std::size_t>(r)];
      fw.yn_full = yn_full[static_cast<std::size_t>(r)];
      fw.u1 = u1;
      fw.u3 = u3;
    }
  }
  std::vector<Tensor> ffn_local = env_->pg().reduce_scatter(ffn_partials);

  std::vector<Tensor> z_local(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    if (block_->ffn().fc2().has_bias()) {
      add_bias_(ffn_local[static_cast<std::size_t>(r)], block_->ffn().fc2().bias().value);
    }
    z_local[static_cast<std::size_t>(r)] =
        add(y_local[static_cast<std::size_t>(r)], ffn_local[static_cast<std::size_t>(r)]);
  }
  return z_local;
}

std::vector<Tensor> MegatronSpBlockExecutor::backward(const std::vector<Tensor>& dz_local,
                                                      const std::vector<Tensor>& x_local) {
  const int P = env_->world();
  nn::AttentionLayer& attn = block_->attention();
  const std::int64_t qr = q_rows_per_rank();
  const std::int64_t kvr = kv_rows_per_rank();
  const std::int64_t fr = ffn_rows_per_rank();
  const bool gpt = block_->ffn().arch() == Arch::kGpt;

  std::vector<RankFwd> fw;
  run_forward(x_local, &fw);
  const std::int64_t s = fw[0].xn_full.dim(0);

  // ---- FFN backward. Backward of reduce-scatter = all-gather of grads.
  nn::Linear& fc1 = block_->ffn().fc1();
  nn::Linear& fc2 = block_->ffn().fc2();
  for (int r = 0; r < P; ++r) {
    if (fc2.has_bias()) add_colsum_(fc2.bias().grad, dz_local[static_cast<std::size_t>(r)]);
  }
  std::vector<Tensor> dz_full = env_->pg().all_gather(dz_local);
  std::vector<Tensor> dyn_partials(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    Tensor fc2_cols = fc2.weight().value.narrow(1, r * fr, fr);
    Tensor dh = matmul(dz_full[static_cast<std::size_t>(r)], fc2_cols);  // [s, f/P]
    Tensor hmid = gpt ? nn::gelu_forward(fw[static_cast<std::size_t>(r)].u1)
                      : mul(nn::silu_forward(fw[static_cast<std::size_t>(r)].u1),
                            fw[static_cast<std::size_t>(r)].u3);
    add_into_columns_(fc2.weight().grad,
                      matmul_tn(dz_full[static_cast<std::size_t>(r)], hmid), r * fr);
    Tensor du1;
    Tensor dyn;
    if (gpt) {
      du1 = nn::gelu_backward(dh, fw[static_cast<std::size_t>(r)].u1);
      dyn = matmul(du1, fc1.weight().value.slice0(r * fr, (r + 1) * fr));
    } else {
      Tensor sg = nn::silu_forward(fw[static_cast<std::size_t>(r)].u1);
      du1 = nn::silu_backward(mul(dh, fw[static_cast<std::size_t>(r)].u3),
                              fw[static_cast<std::size_t>(r)].u1);
      Tensor du3 = mul(dh, sg);
      dyn = matmul(du1, fc1.weight().value.slice0(r * fr, (r + 1) * fr));
      add_(dyn, matmul(du3, block_->ffn().fc3().weight().value.slice0(r * fr, (r + 1) * fr)));
      Tensor g3 = block_->ffn().fc3().weight().grad.slice0(r * fr, (r + 1) * fr);
      add_(g3, matmul_tn(du3, fw[static_cast<std::size_t>(r)].yn_full));
    }
    Tensor g1 = fc1.weight().grad.slice0(r * fr, (r + 1) * fr);
    add_(g1, matmul_tn(du1, fw[static_cast<std::size_t>(r)].yn_full));
    if (fc1.has_bias()) {
      Tensor b1 = fc1.bias().grad.slice0(r * fr, (r + 1) * fr);
      add_colsum_(b1, du1);
    }
    dyn_partials[static_cast<std::size_t>(r)] = std::move(dyn);
  }
  // Backward of all-gather = reduce-scatter of gradients.
  std::vector<Tensor> dyn_local = env_->pg().reduce_scatter(dyn_partials);

  std::vector<Tensor> dy_local(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    NormStats st2;
    block_->norm2().forward(fw[static_cast<std::size_t>(r)].y_local, st2);
    dy_local[static_cast<std::size_t>(r)] =
        add(dz_local[static_cast<std::size_t>(r)],
            block_->norm2().backward(dyn_local[static_cast<std::size_t>(r)],
                                     fw[static_cast<std::size_t>(r)].y_local, st2));
  }

  // ---- Attention backward.
  for (int r = 0; r < P; ++r) {
    if (attn.wo().has_bias()) {
      add_colsum_(attn.wo().bias().grad, dy_local[static_cast<std::size_t>(r)]);
    }
  }
  std::vector<Tensor> dy_full = env_->pg().all_gather(dy_local);
  std::vector<Tensor> dxn_partials(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    RankFwd& f = fw[static_cast<std::size_t>(r)];
    Tensor wo_cols = attn.wo().weight().value.narrow(1, r * qr, qr);
    Tensor do_flat = matmul(dy_full[static_cast<std::size_t>(r)], wo_cols);  // [s, qr]
    add_into_columns_(attn.wo().weight().grad,
                      matmul_tn(dy_full[static_cast<std::size_t>(r)], f.attn_out.reshape({s, qr})),
                      r * qr);
    Tensor dout = do_flat.reshape(f.attn_out.shape());
    Tensor D = nn::online_attn_backward_D(f.attn_out, dout);
    Tensor dq = Tensor::zeros(f.q.shape());
    Tensor dk = Tensor::zeros(f.k.shape());
    Tensor dv = Tensor::zeros(f.v.shape());
    nn::online_attn_backward_step(f.q, f.k, f.v, dout, f.lse, D, /*causal=*/true, 0, 0, dq, dk,
                                  dv);
    nn::rope_apply_backward_(dq, 0, attn.rope_base());
    nn::rope_apply_backward_(dk, 0, attn.rope_base());
    Tensor dq2 = dq.reshape({s, qr});
    Tensor dk2 = dk.reshape({s, kvr});
    Tensor dv2 = dv.reshape({s, kvr});
    Tensor dxn = matmul(dq2, attn.wq().weight().value.slice0(r * qr, (r + 1) * qr));
    add_(dxn, matmul(dk2, attn.wk().weight().value.slice0(r * kvr, (r + 1) * kvr)));
    add_(dxn, matmul(dv2, attn.wv().weight().value.slice0(r * kvr, (r + 1) * kvr)));
    Tensor gq = attn.wq().weight().grad.slice0(r * qr, (r + 1) * qr);
    add_(gq, matmul_tn(dq2, f.xn_full));
    Tensor gk = attn.wk().weight().grad.slice0(r * kvr, (r + 1) * kvr);
    add_(gk, matmul_tn(dk2, f.xn_full));
    Tensor gv = attn.wv().weight().grad.slice0(r * kvr, (r + 1) * kvr);
    add_(gv, matmul_tn(dv2, f.xn_full));
    if (attn.wq().has_bias()) {
      Tensor bq = attn.wq().bias().grad.slice0(r * qr, (r + 1) * qr);
      add_colsum_(bq, dq2);
      Tensor bk = attn.wk().bias().grad.slice0(r * kvr, (r + 1) * kvr);
      add_colsum_(bk, dk2);
      Tensor bv = attn.wv().bias().grad.slice0(r * kvr, (r + 1) * kvr);
      add_colsum_(bv, dv2);
    }
    dxn_partials[static_cast<std::size_t>(r)] = std::move(dxn);
  }
  std::vector<Tensor> dxn_local = env_->pg().reduce_scatter(dxn_partials);

  std::vector<Tensor> dx_local(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    NormStats st1;
    block_->norm1().forward(x_local[static_cast<std::size_t>(r)], st1);
    dx_local[static_cast<std::size_t>(r)] =
        add(dy_local[static_cast<std::size_t>(r)],
            block_->norm1().backward(dxn_local[static_cast<std::size_t>(r)],
                                     x_local[static_cast<std::size_t>(r)], st1));
  }
  return dx_local;
}

}  // namespace fpdt::parallel
