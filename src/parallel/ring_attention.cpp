#include "parallel/ring_attention.h"

#include "common/check.h"
#include "nn/attention.h"

namespace fpdt::parallel {

namespace {
using nn::AttentionOutput;
using nn::NormStats;
using nn::OnlineAttnState;
}  // namespace

RingAttentionBlockExecutor::RingAttentionBlockExecutor(nn::TransformerBlock& block,
                                                       core::FpdtEnv& env)
    : block_(&block), env_(&env) {}

std::vector<Tensor> RingAttentionBlockExecutor::forward(const std::vector<Tensor>& x_local) {
  return run_forward(x_local, nullptr);
}

std::vector<Tensor> RingAttentionBlockExecutor::run_forward(const std::vector<Tensor>& x_local,
                                                            std::vector<RankFwd>* saved) {
  const int P = env_->world();
  FPDT_CHECK_EQ(static_cast<int>(x_local.size()), P) << " rank count";
  nn::AttentionLayer& attn = block_->attention();
  const std::int64_t s_l = x_local[0].dim(0);
  useful_steps_.assign(static_cast<std::size_t>(P), 0);
  if (saved != nullptr) saved->resize(static_cast<std::size_t>(P));

  // ---- Local QKV with all heads; positions are the shard offsets.
  std::vector<Tensor> k_blocks(static_cast<std::size_t>(P)), v_blocks(static_cast<std::size_t>(P));
  std::vector<int> block_src(static_cast<std::size_t>(P));
  std::vector<OnlineAttnState> states;
  std::vector<Tensor> qs(static_cast<std::size_t>(P));
  std::vector<Tensor> xns(static_cast<std::size_t>(P));
  states.reserve(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    NormStats st;
    Tensor xn = block_->norm1().forward(x_local[static_cast<std::size_t>(r)], st);
    nn::AttentionLayer::Qkv qkv = attn.project_qkv(xn, r * s_l);
    qs[static_cast<std::size_t>(r)] = qkv.q;
    k_blocks[static_cast<std::size_t>(r)] = qkv.k;
    v_blocks[static_cast<std::size_t>(r)] = qkv.v;
    block_src[static_cast<std::size_t>(r)] = r;
    xns[static_cast<std::size_t>(r)] = std::move(xn);
    states.push_back(
        OnlineAttnState::create(qkv.q.dim(0), qkv.q.dim(1), qkv.q.dim(2)));
  }

  // ---- P rounds: consume the resident KV block, then rotate (the real
  // system overlaps the send/recv with the blockwise attention compute).
  for (int step = 0; step < P; ++step) {
    for (int r = 0; r < P; ++r) {
      const int src = block_src[static_cast<std::size_t>(r)];
      // Causal: the whole block is in the future of every local query.
      if (src > r) continue;
      useful_steps_[static_cast<std::size_t>(r)]++;
      nn::online_attn_step(states[static_cast<std::size_t>(r)],
                           qs[static_cast<std::size_t>(r)],
                           k_blocks[static_cast<std::size_t>(r)],
                           v_blocks[static_cast<std::size_t>(r)], /*causal=*/true, r * s_l,
                           src * s_l);
    }
    if (step + 1 < P) {
      k_blocks = env_->pg().ring_shift(k_blocks);
      v_blocks = env_->pg().ring_shift(v_blocks);
      std::vector<int> next_src(static_cast<std::size_t>(P));
      for (int r = 0; r < P; ++r) {
        next_src[static_cast<std::size_t>((r + 1) % P)] = block_src[static_cast<std::size_t>(r)];
      }
      block_src = std::move(next_src);
    }
  }

  // ---- Output projection, residual, FFN — all rank-local.
  std::vector<Tensor> z_local(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    AttentionOutput out = nn::online_attn_finalize(states[static_cast<std::size_t>(r)]);
    Tensor y = add(x_local[static_cast<std::size_t>(r)],
                   attn.project_out(out.out));
    NormStats st2;
    Tensor yn = block_->norm2().forward(y, st2);
    z_local[static_cast<std::size_t>(r)] = add(y, block_->ffn().forward(yn));
    if (saved != nullptr) {
      RankFwd& fw = (*saved)[static_cast<std::size_t>(r)];
      fw.xn = xns[static_cast<std::size_t>(r)];
      fw.q = qs[static_cast<std::size_t>(r)];
      fw.attn_out = out.out;
      fw.lse = out.lse;
      fw.y_local = std::move(y);
    }
  }
  if (saved != nullptr) {
    // KV blocks have rotated P-1 times; rotate once more so block r is home.
    k_blocks = env_->pg().ring_shift(k_blocks);
    v_blocks = env_->pg().ring_shift(v_blocks);
    for (int r = 0; r < P; ++r) {
      (*saved)[static_cast<std::size_t>(r)].k = k_blocks[static_cast<std::size_t>(r)];
      (*saved)[static_cast<std::size_t>(r)].v = v_blocks[static_cast<std::size_t>(r)];
    }
  }
  return z_local;
}

std::vector<Tensor> RingAttentionBlockExecutor::backward(const std::vector<Tensor>& dz_local,
                                                         const std::vector<Tensor>& x_local) {
  const int P = env_->world();
  nn::AttentionLayer& attn = block_->attention();
  const std::int64_t s_l = x_local[0].dim(0);

  std::vector<RankFwd> fw;
  run_forward(x_local, &fw);

  // ---- FFN / norm2 / Wo backward, rank-local.
  std::vector<Tensor> dout(static_cast<std::size_t>(P));
  std::vector<Tensor> D(static_cast<std::size_t>(P));
  std::vector<Tensor> dy_local(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    RankFwd& f = fw[static_cast<std::size_t>(r)];
    NormStats st2;
    Tensor yn = block_->norm2().forward(f.y_local, st2);
    Tensor dyn = block_->ffn().backward(dz_local[static_cast<std::size_t>(r)], yn);
    Tensor dy = add(dz_local[static_cast<std::size_t>(r)],
                    block_->norm2().backward(dyn, f.y_local, st2));
    dout[static_cast<std::size_t>(r)] = attn.backward_out(dy, f.attn_out);
    D[static_cast<std::size_t>(r)] = nn::online_attn_backward_D(
        f.attn_out, dout[static_cast<std::size_t>(r)]);
    dy_local[static_cast<std::size_t>(r)] = std::move(dy);
  }

  // ---- Ring backward: every (query rank r, KV source j <= r) pair
  // contributes; dq stays local, dk/dv accumulate at the block's home rank
  // (delivered by the reverse rotation in the real system).
  std::vector<Tensor> dq(static_cast<std::size_t>(P)), dk(static_cast<std::size_t>(P)),
      dv(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    dq[static_cast<std::size_t>(r)] =
        Tensor::zeros(fw[static_cast<std::size_t>(r)].q.shape());
    dk[static_cast<std::size_t>(r)] =
        Tensor::zeros(fw[static_cast<std::size_t>(r)].k.shape());
    dv[static_cast<std::size_t>(r)] =
        Tensor::zeros(fw[static_cast<std::size_t>(r)].v.shape());
  }
  for (int r = 0; r < P; ++r) {
    RankFwd& f = fw[static_cast<std::size_t>(r)];
    for (int j = 0; j <= r; ++j) {
      nn::online_attn_backward_step(
          f.q, fw[static_cast<std::size_t>(j)].k, fw[static_cast<std::size_t>(j)].v,
          dout[static_cast<std::size_t>(r)], f.lse, D[static_cast<std::size_t>(r)],
          /*causal=*/true, r * s_l, j * s_l, dq[static_cast<std::size_t>(r)],
          dk[static_cast<std::size_t>(j)], dv[static_cast<std::size_t>(j)]);
    }
  }

  // ---- Projection + norm1 backward, rank-local.
  std::vector<Tensor> dx_local(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    RankFwd& f = fw[static_cast<std::size_t>(r)];
    Tensor dxn = attn.backward_qkv(dq[static_cast<std::size_t>(r)],
                                   dk[static_cast<std::size_t>(r)],
                                   dv[static_cast<std::size_t>(r)], f.xn, r * s_l);
    NormStats st1;
    block_->norm1().forward(x_local[static_cast<std::size_t>(r)], st1);
    dx_local[static_cast<std::size_t>(r)] =
        add(dy_local[static_cast<std::size_t>(r)],
            block_->norm1().backward(dxn, x_local[static_cast<std::size_t>(r)], st1));
  }
  return dx_local;
}

}  // namespace fpdt::parallel
