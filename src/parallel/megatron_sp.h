// Megatron-SP baseline (Korthikanti et al., 2023): tensor parallelism with
// sequence parallelism in the norm/residual regions.
//
// Dataflow per block (P-way TP group; sequence shards are contiguous):
//   norm1 on the local sequence shard
//   → all-gather along sequence (full [s, d] on every rank)
//   → column-parallel QKV (each rank owns h/P heads' worth of rows of
//     Wq/Wk/Wv) → full-sequence attention with local heads
//   → row-parallel Wo (each rank owns d/P input columns) producing partial
//     sums → reduce-scatter back to sequence shards (+ unsharded bias)
//   → residual, norm2, and the same gather/column/row/scatter pattern for
//     the FFN.
//
// The communication volume therefore scales with the full message size
// per layer (2 all-gathers + 2 reduce-scatters of [s, d]) regardless of P —
// the property the paper contrasts with Ulysses' constant-volume All2All.
//
// Weights are *views/slices of the same shared nn::TransformerBlock*, so
// gradients accumulate into the identical tensors the reference uses and
// equivalence is testable end to end.
#pragma once

#include <cstdint>
#include <vector>

#include "core/fpdt_env.h"
#include "nn/transformer_block.h"

namespace fpdt::parallel {

class MegatronSpBlockExecutor {
 public:
  MegatronSpBlockExecutor(nn::TransformerBlock& block, core::FpdtEnv& env);

  // x_local: contiguous per-rank sequence shards [s_local, d].
  std::vector<Tensor> forward(const std::vector<Tensor>& x_local);

  // Recompute-based backward (activation checkpointing), mirroring forward
  // with the transposed collectives (bwd of all-gather = reduce-scatter of
  // gradients and vice versa). Accumulates weight grads, returns dx shards.
  std::vector<Tensor> backward(const std::vector<Tensor>& dz_local,
                               const std::vector<Tensor>& x_local);

 private:
  struct RankFwd {
    // Saved per-rank forward intermediates for one backward invocation.
    Tensor xn_full, q, k, v, attn_out, lse, y_local, yn_full, u1, u3;
  };

  std::vector<Tensor> run_forward(const std::vector<Tensor>& x_local,
                                  std::vector<RankFwd>* saved);

  // Head/hidden shard boundaries for rank r.
  std::int64_t q_rows_per_rank() const;
  std::int64_t kv_rows_per_rank() const;
  std::int64_t ffn_rows_per_rank() const;

  nn::TransformerBlock* block_;
  core::FpdtEnv* env_;
};

}  // namespace fpdt::parallel
