#include "parallel/baseline_trainer.h"

#include "common/check.h"
#include "obs/trace.h"

namespace fpdt::parallel {

namespace {

core::FpdtConfig config_for(BaselineKind kind, int zero_stage) {
  core::FpdtConfig cfg;
  if (kind == BaselineKind::kUlysses) {
    cfg = UlyssesBlockExecutor::config();
  } else {
    cfg.cache_forward_outputs = false;  // Megatron-SP / Ring ignore FPDT knobs
  }
  cfg.zero_stage = zero_stage;
  return cfg;
}

}  // namespace

BaselineTrainer::BaselineTrainer(nn::Model& model, int world, BaselineKind kind,
                                 std::int64_t hbm_capacity_bytes, int zero_stage)
    : model_(&model),
      kind_(kind),
      env_(world, config_for(kind, zero_stage), hbm_capacity_bytes) {
  if (zero_stage >= 0) {
    zero_ = std::make_unique<zero::ZeroEngine>(model, env_,
                                               zero::ZeroConfig{zero_stage});
  }
  executors_.reserve(model.blocks().size());
  for (std::size_t l = 0; l < model.blocks().size(); ++l) {
    switch (kind_) {
      case BaselineKind::kUlysses:
        executors_.emplace_back(std::in_place_type<UlyssesBlockExecutor>, model.blocks()[l],
                                static_cast<std::int64_t>(l), env_);
        break;
      case BaselineKind::kMegatronSp:
        executors_.emplace_back(std::in_place_type<MegatronSpBlockExecutor>, model.blocks()[l],
                                env_);
        break;
      case BaselineKind::kRing:
        executors_.emplace_back(std::in_place_type<RingAttentionBlockExecutor>,
                                model.blocks()[l], env_);
        break;
    }
  }
}

std::vector<Tensor> BaselineTrainer::exec_forward(std::size_t layer,
                                                  const std::vector<Tensor>& x) {
  return std::visit([&](auto& exec) { return exec.forward(x); }, executors_[layer]);
}

std::vector<Tensor> BaselineTrainer::exec_backward(std::size_t layer,
                                                   const std::vector<Tensor>& dz,
                                                   const std::vector<Tensor>& x) {
  return std::visit([&](auto& exec) { return exec.backward(dz, x); }, executors_[layer]);
}

double BaselineTrainer::train_step_grads(const std::vector<std::int32_t>& tokens) {
  const int P = env_.world();
  const std::int64_t s_global = static_cast<std::int64_t>(tokens.size()) - 1;
  FPDT_CHECK_GT(s_global, 0) << " need tokens";
  FPDT_CHECK_EQ(s_global % P, 0) << " sequence must divide across ranks";
  const std::int64_t s_local = s_global / P;

  // Contiguous sharding: rank r owns tokens [r*s_local, (r+1)*s_local).
  std::vector<std::vector<std::int32_t>> inputs(static_cast<std::size_t>(P));
  std::vector<std::vector<std::int32_t>> labels(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    const std::int64_t base = r * s_local;
    inputs[static_cast<std::size_t>(r)].assign(
        tokens.begin() + base, tokens.begin() + base + s_local);
    labels[static_cast<std::size_t>(r)].assign(
        tokens.begin() + base + 1, tokens.begin() + base + s_local + 1);
  }

  // ZeRO group walks (no-ops while zero_ is null).
  const zero::ParamWalk walk_embed = [this](const nn::ParamVisitor& fn) {
    model_->embedding().visit(fn);
  };
  const zero::ParamWalk walk_head = [this](const nn::ParamVisitor& fn) {
    model_->final_norm().visit(fn);
    model_->lm_head().visit(fn);
  };
  const auto walk_block = [this](std::size_t l) -> zero::ParamWalk {
    return [this, l](const nn::ParamVisitor& fn) { model_->blocks()[l].visit(fn); };
  };

  std::vector<Tensor> h(static_cast<std::size_t>(P));
  {
    FPDT_TRACE_SCOPE(obs::kCatPhase, "embed");
    zero::GroupScope zs(zero_.get(), "embed", walk_embed, /*grad_bucket=*/false);
    for (int r = 0; r < P; ++r) {
      h[static_cast<std::size_t>(r)] =
          model_->embedding().forward(inputs[static_cast<std::size_t>(r)]);
    }
  }

  // Activation checkpointing across blocks, as everywhere in the paper.
  std::vector<std::vector<Tensor>> block_inputs;
  block_inputs.reserve(executors_.size());
  {
    FPDT_TRACE_SCOPE(obs::kCatPhase, "blocks.forward");
    for (std::size_t l = 0; l < executors_.size(); ++l) {
      zero::GroupScope zs(zero_.get(), "block" + std::to_string(l), walk_block(l),
                          /*grad_bucket=*/false);
      block_inputs.push_back(h);
      h = exec_forward(l, h);
    }
  }

  double loss_sum = 0.0;
  std::vector<Tensor> dh(static_cast<std::size_t>(P));
  {
    FPDT_TRACE_SCOPE(obs::kCatPhase, "loss_head");
    zero::GroupScope zs(zero_.get(), "head", walk_head, /*grad_bucket=*/true);
    for (int r = 0; r < P; ++r) {
      nn::NormStats st;
      Tensor hn = model_->final_norm().forward(h[static_cast<std::size_t>(r)], st);
      // Monolithic loss head: these baselines do not chunk the logits — the
      // §5.4 spike the memory model charges them for.
      nn::LossResult res = model_->lm_head().forward_backward(
          hn, labels[static_cast<std::size_t>(r)], /*chunks=*/1, s_global,
          &env_.device(r).hbm());
      loss_sum += res.loss_sum;
      dh[static_cast<std::size_t>(r)] =
          model_->final_norm().backward(res.dx, h[static_cast<std::size_t>(r)], st);
    }
  }

  {
    FPDT_TRACE_SCOPE(obs::kCatPhase, "blocks.backward");
    for (std::size_t l = executors_.size(); l-- > 0;) {
      zero::GroupScope zs(zero_.get(), "block" + std::to_string(l), walk_block(l),
                          /*grad_bucket=*/true);
      dh = exec_backward(l, dh, block_inputs[l]);
    }
  }
  {
    FPDT_TRACE_SCOPE(obs::kCatPhase, "embed.backward");
    zero::GroupScope zs(zero_.get(), "embed", walk_embed, /*grad_bucket=*/true);
    for (int r = 0; r < P; ++r) {
      model_->embedding().backward(dh[static_cast<std::size_t>(r)],
                                   inputs[static_cast<std::size_t>(r)]);
    }
  }
  return loss_sum / static_cast<double>(s_global);
}

}  // namespace fpdt::parallel
