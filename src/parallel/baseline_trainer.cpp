#include "parallel/baseline_trainer.h"

#include "common/check.h"
#include "obs/trace.h"

namespace fpdt::parallel {

namespace {

core::FpdtConfig config_for(BaselineKind kind) {
  if (kind == BaselineKind::kUlysses) return UlyssesBlockExecutor::config();
  core::FpdtConfig cfg;  // Megatron-SP / Ring ignore the FPDT knobs
  cfg.cache_forward_outputs = false;
  return cfg;
}

}  // namespace

BaselineTrainer::BaselineTrainer(nn::Model& model, int world, BaselineKind kind,
                                 std::int64_t hbm_capacity_bytes)
    : model_(&model), kind_(kind), env_(world, config_for(kind), hbm_capacity_bytes) {
  executors_.reserve(model.blocks().size());
  for (std::size_t l = 0; l < model.blocks().size(); ++l) {
    switch (kind_) {
      case BaselineKind::kUlysses:
        executors_.emplace_back(std::in_place_type<UlyssesBlockExecutor>, model.blocks()[l],
                                static_cast<std::int64_t>(l), env_);
        break;
      case BaselineKind::kMegatronSp:
        executors_.emplace_back(std::in_place_type<MegatronSpBlockExecutor>, model.blocks()[l],
                                env_);
        break;
      case BaselineKind::kRing:
        executors_.emplace_back(std::in_place_type<RingAttentionBlockExecutor>,
                                model.blocks()[l], env_);
        break;
    }
  }
}

std::vector<Tensor> BaselineTrainer::exec_forward(std::size_t layer,
                                                  const std::vector<Tensor>& x) {
  return std::visit([&](auto& exec) { return exec.forward(x); }, executors_[layer]);
}

std::vector<Tensor> BaselineTrainer::exec_backward(std::size_t layer,
                                                   const std::vector<Tensor>& dz,
                                                   const std::vector<Tensor>& x) {
  return std::visit([&](auto& exec) { return exec.backward(dz, x); }, executors_[layer]);
}

double BaselineTrainer::train_step_grads(const std::vector<std::int32_t>& tokens) {
  const int P = env_.world();
  const std::int64_t s_global = static_cast<std::int64_t>(tokens.size()) - 1;
  FPDT_CHECK_GT(s_global, 0) << " need tokens";
  FPDT_CHECK_EQ(s_global % P, 0) << " sequence must divide across ranks";
  const std::int64_t s_local = s_global / P;

  // Contiguous sharding: rank r owns tokens [r*s_local, (r+1)*s_local).
  std::vector<std::vector<std::int32_t>> inputs(static_cast<std::size_t>(P));
  std::vector<std::vector<std::int32_t>> labels(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    const std::int64_t base = r * s_local;
    inputs[static_cast<std::size_t>(r)].assign(
        tokens.begin() + base, tokens.begin() + base + s_local);
    labels[static_cast<std::size_t>(r)].assign(
        tokens.begin() + base + 1, tokens.begin() + base + s_local + 1);
  }

  std::vector<Tensor> h(static_cast<std::size_t>(P));
  {
    FPDT_TRACE_SCOPE(obs::kCatPhase, "embed");
    for (int r = 0; r < P; ++r) {
      h[static_cast<std::size_t>(r)] =
          model_->embedding().forward(inputs[static_cast<std::size_t>(r)]);
    }
  }

  // Activation checkpointing across blocks, as everywhere in the paper.
  std::vector<std::vector<Tensor>> block_inputs;
  block_inputs.reserve(executors_.size());
  {
    FPDT_TRACE_SCOPE(obs::kCatPhase, "blocks.forward");
    for (std::size_t l = 0; l < executors_.size(); ++l) {
      block_inputs.push_back(h);
      h = exec_forward(l, h);
    }
  }

  double loss_sum = 0.0;
  std::vector<Tensor> dh(static_cast<std::size_t>(P));
  {
    FPDT_TRACE_SCOPE(obs::kCatPhase, "loss_head");
    for (int r = 0; r < P; ++r) {
      nn::NormStats st;
      Tensor hn = model_->final_norm().forward(h[static_cast<std::size_t>(r)], st);
      // Monolithic loss head: these baselines do not chunk the logits — the
      // §5.4 spike the memory model charges them for.
      nn::LossResult res = model_->lm_head().forward_backward(
          hn, labels[static_cast<std::size_t>(r)], /*chunks=*/1, s_global,
          &env_.device(r).hbm());
      loss_sum += res.loss_sum;
      dh[static_cast<std::size_t>(r)] =
          model_->final_norm().backward(res.dx, h[static_cast<std::size_t>(r)], st);
    }
  }

  {
    FPDT_TRACE_SCOPE(obs::kCatPhase, "blocks.backward");
    for (std::size_t l = executors_.size(); l-- > 0;) {
      dh = exec_backward(l, dh, block_inputs[l]);
    }
  }
  {
    FPDT_TRACE_SCOPE(obs::kCatPhase, "embed.backward");
    for (int r = 0; r < P; ++r) {
      model_->embedding().backward(dh[static_cast<std::size_t>(r)],
                                   inputs[static_cast<std::size_t>(r)]);
    }
  }
  return loss_sum / static_cast<double>(s_global);
}

}  // namespace fpdt::parallel
