#include "common/units.h"

#include <cstdio>

#include "common/check.h"

namespace fpdt {

std::int64_t parse_token_count(const std::string& text) {
  FPDT_CHECK(!text.empty()) << " in parse_token_count";
  char suffix = text.back();
  std::int64_t multiplier = 1;
  std::string digits = text;
  if (suffix == 'K' || suffix == 'k') {
    multiplier = kTokensK;
    digits.pop_back();
  } else if (suffix == 'M' || suffix == 'm') {
    multiplier = kTokensM;
    digits.pop_back();
  }
  return std::stoll(digits) * multiplier;
}

std::string format_token_count(std::int64_t tokens) {
  if (tokens >= kTokensM && tokens % kTokensM == 0) {
    return std::to_string(tokens / kTokensM) + "M";
  }
  if (tokens >= kTokensK && tokens % kTokensK == 0) {
    return std::to_string(tokens / kTokensK) + "K";
  }
  return std::to_string(tokens);
}

std::string format_bytes(std::int64_t bytes) {
  char buf[32];
  double value = static_cast<double>(bytes);
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.1fG", value / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.1fM", value / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.1fK", value / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldB", static_cast<long long>(bytes));
  }
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[32];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  }
  return buf;
}

}  // namespace fpdt
