// Error handling primitives used across the FPDT codebase.
//
// Invariant violations throw FpdtError (derived from std::runtime_error) so
// callers can distinguish library failures from standard-library ones. The
// FPDT_CHECK family is used for preconditions that remain enabled in release
// builds: this is a systems library where a silently-corrupt schedule or
// out-of-bounds tensor view is far more expensive than a branch.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fpdt {

// Base error type for all failures raised by this library.
class FpdtError : public std::runtime_error {
 public:
  explicit FpdtError(const std::string& what) : std::runtime_error(what) {}
};

// Raised when an emulated device arena cannot satisfy an allocation.
// Distinct so capacity-search code can catch OOM specifically.
class OutOfMemoryError : public FpdtError {
 public:
  explicit OutOfMemoryError(const std::string& what) : FpdtError(what) {}
};

// A failure that is expected to succeed on retry: a dropped H2D/D2H
// transfer, a flapped collective. Raised only by the fault-injection layer
// (src/fault/) and caught by the retry/degradation machinery; anything that
// escapes a retry loop is promoted to a plain FpdtError.
class TransientError : public FpdtError {
 public:
  explicit TransientError(const std::string& what) : FpdtError(what) {}
};

namespace detail {

class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr) {
    stream_ << file << ":" << line << ": check failed: " << expr;
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] void raise() const { throw FpdtError(stream_.str()); }

 private:
  std::ostringstream stream_;
};

}  // namespace detail

// Usage: FPDT_CHECK(cond) << " context " << value;
// The message stream is only evaluated on failure.
#define FPDT_CHECK(cond)                                                     \
  if (cond) {                                                                \
  } else                                                                     \
    ::fpdt::detail::CheckRaiser{} &                                          \
        ::fpdt::detail::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define FPDT_CHECK_EQ(a, b) FPDT_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ")"
#define FPDT_CHECK_NE(a, b) FPDT_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ")"
#define FPDT_CHECK_LT(a, b) FPDT_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ")"
#define FPDT_CHECK_LE(a, b) FPDT_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ")"
#define FPDT_CHECK_GT(a, b) FPDT_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ")"
#define FPDT_CHECK_GE(a, b) FPDT_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ")"

namespace detail {

// Lowest-precedence trigger so the << chain completes before raise().
struct CheckRaiser {
  [[noreturn]] void operator&(const CheckMessageBuilder& builder) { builder.raise(); }
};

}  // namespace detail
}  // namespace fpdt
