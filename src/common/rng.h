// Deterministic counter-based random number generation.
//
// All stochastic behaviour in the library (weight init, synthetic data,
// property-test inputs) flows through Rng so that runs are reproducible from
// a single seed regardless of evaluation order — a requirement for the
// convergence-equivalence experiment (Fig. 14), where three executors must
// start from bit-identical weights.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace fpdt {

// splitmix64: tiny, high-quality 64-bit mixer. Each next() consumes one
// counter increment, so streams can be split by offsetting the seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, 1).
  double next_uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double next_uniform(double lo, double hi) { return lo + (hi - lo) * next_uniform(); }

  // Standard normal via Box-Muller (one value per call; the pair's second
  // member is discarded to keep the counter/value mapping simple).
  double next_normal() {
    double u1 = next_uniform();
    double u2 = next_uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  }

  double next_normal(double mean, double stddev) { return mean + stddev * next_normal(); }

  // Integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return n == 0 ? 0 : next_u64() % n; }

  // Derive an independent stream (e.g. per-rank or per-tensor).
  Rng split(std::uint64_t stream_id) const {
    return Rng(state_ ^ (0xD1B54A32D192ED03ULL * (stream_id + 1)));
  }

  // Raw counter state, for checkpointing: restoring it resumes the stream
  // bit-exactly (splitmix64's whole state is the counter).
  std::uint64_t state() const { return state_; }
  void set_state(std::uint64_t s) { state_ = s; }

 private:
  std::uint64_t state_;
};

}  // namespace fpdt
