#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "common/check.h"

namespace fpdt {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  FPDT_CHECK_EQ(row.size(), header_.size()) << " table row width mismatch";
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << "\n";
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

void TextTable::write_csv(const std::string& path) const {
  std::ofstream out(path);
  FPDT_CHECK(out.good()) << " cannot open " << path;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) out << (c == 0 ? "" : ",") << row[c];
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string cell_f1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

std::string cell_f2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

std::string cell_pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", v * 100.0);
  return buf;
}

}  // namespace fpdt
