// Console table / CSV emitters shared by all benchmark binaries so every
// reproduced table and figure prints in a uniform, diffable format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fpdt {

// Accumulates rows of strings and pretty-prints with aligned columns.
// Also exports CSV so figures can be re-plotted externally.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // Column-aligned ASCII rendering with a header rule.
  void print(std::ostream& os) const;

  // RFC-4180-ish CSV (no quoting needed for our numeric content).
  void write_csv(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Shorthand numeric formatting for table cells.
std::string cell_f1(double v);   // "12.3"
std::string cell_f2(double v);   // "12.34"
std::string cell_pct(double v);  // 0.557 -> "55.7%"

}  // namespace fpdt
