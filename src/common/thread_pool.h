// Minimal fork-join helper for the SPMD emulation.
//
// The functional layer runs P emulated ranks; rank-local compute (online
// attention chunk steps, attention backward pairs) touches only per-rank
// buffers, so those loops can fork across OS threads and join before the
// next collective — exactly the synchronisation structure of the real
// system (compute between NCCL rendezvous points). Weight-gradient
// accumulation and collectives stay on the calling thread, so results are
// bit-identical to the serial execution.
#pragma once

#include <functional>

namespace fpdt {

// Runs fn(0..n-1), possibly concurrently; returns after all complete.
// Exceptions from workers are rethrown on the caller (first one wins), and
// cancel the loop: indices not yet claimed when the first body threw are
// never started (in-flight bodies still finish). n <= 1 or a single-core
// machine degrades to a plain loop (which stops at the throwing index).
void parallel_for_ranks(int n, const std::function<void(int)>& fn);

// Process-wide worker count used by parallel_for_ranks (defaults to the
// hardware concurrency, capped at 16). Setting it to 1 forces serial
// execution (useful to isolate concurrency bugs).
int parallel_workers();
void set_parallel_workers(int workers);

// True while the calling thread is inside a parallel_for_ranks body
// (including the serial fallback). Kernel backends use this to fork only
// from the top level — a nested fork inside a rank body would oversubscribe
// the machine instead of speeding anything up.
bool in_parallel_region();

}  // namespace fpdt
