#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace fpdt {
namespace {

// -1 = threshold not yet initialised from the environment.
std::atomic<int> g_threshold{-1};
std::mutex g_emit_mutex;
thread_local int t_current_rank = -1;
thread_local int t_work_phase = 0;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

bool parse_level(const char* text, LogLevel* out) {
  if (text == nullptr || *text == '\0') return false;
  const std::string s(text);
  if (s == "debug" || s == "DEBUG" || s == "0") *out = LogLevel::kDebug;
  else if (s == "info" || s == "INFO" || s == "1") *out = LogLevel::kInfo;
  else if (s == "warn" || s == "WARN" || s == "warning" || s == "2") *out = LogLevel::kWarn;
  else if (s == "error" || s == "ERROR" || s == "3") *out = LogLevel::kError;
  else return false;
  return true;
}

int threshold_now() {
  int v = g_threshold.load(std::memory_order_relaxed);
  if (v < 0) {
    init_logging_from_env();
    v = g_threshold.load(std::memory_order_relaxed);
  }
  return v;
}

}  // namespace

LogLevel log_threshold() { return static_cast<LogLevel>(threshold_now()); }

void set_log_threshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

void init_logging_from_env() {
  LogLevel level = LogLevel::kWarn;
  if (parse_level(std::getenv("FPDT_LOG_LEVEL"), &level)) {
    g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
    return;
  }
  // Variable unset/unparsable: only fill in the default if the threshold was
  // never initialised (explicit set_log_threshold() calls win).
  int expected = -1;
  g_threshold.compare_exchange_strong(expected, static_cast<int>(LogLevel::kWarn));
}

int current_rank() { return t_current_rank; }

void set_current_rank(int rank) { t_current_rank = rank; }

RankScope::RankScope(int rank) : prev_(t_current_rank) { t_current_rank = rank; }

RankScope::~RankScope() { t_current_rank = prev_; }

int current_work_phase() { return t_work_phase; }

void set_current_work_phase(int phase_id) { t_work_phase = phase_id; }

WorkPhaseTag::WorkPhaseTag(int phase_id) : prev_(t_work_phase) { t_work_phase = phase_id; }

WorkPhaseTag::~WorkPhaseTag() { t_work_phase = prev_; }

namespace detail {

LogLine::LogLine(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= threshold_now()) {
  if (enabled_) {
    stream_ << "[" << level_name(level);
    if (t_current_rank >= 0) stream_ << " r" << t_current_rank;
    stream_ << " " << basename_of(file) << ":" << line << "] ";
  }
}

LogLine::~LogLine() {
  if (enabled_) {
    stream_ << "\n";
    const std::string line = stream_.str();
    // One locked write per line: lines from concurrent rank workers never
    // interleave mid-line.
    std::lock_guard<std::mutex> lock(g_emit_mutex);
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

}  // namespace detail
}  // namespace fpdt
