#include "common/logging.h"

#include <cstring>

namespace fpdt {
namespace {

LogLevel g_threshold = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel log_threshold() { return g_threshold; }

void set_log_threshold(LogLevel level) { g_threshold = level; }

namespace detail {

LogLine::LogLine(LogLevel level, const char* file, int line)
    : enabled_(level >= g_threshold) {
  if (enabled_) {
    stream_ << "[" << level_name(level) << " " << basename_of(file) << ":" << line << "] ";
  }
}

LogLine::~LogLine() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

}  // namespace detail
}  // namespace fpdt
