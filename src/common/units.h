// Byte / token / FLOP unit helpers and human-readable formatting used by the
// memory model, the simulator and every benchmark table.
#pragma once

#include <cstdint>
#include <string>

namespace fpdt {

inline constexpr std::int64_t kKiB = 1024;
inline constexpr std::int64_t kMiB = 1024 * kKiB;
inline constexpr std::int64_t kGiB = 1024 * kMiB;

// Token-count units as used in the paper ("64K chunk", "2M sequence"): these
// are binary multiples (64K = 65536 tokens), matching the paper's powers-of-2
// sweep points.
inline constexpr std::int64_t kTokensK = 1024;
inline constexpr std::int64_t kTokensM = 1024 * 1024;

// "2M" -> 2097152, "512K" -> 524288, "4096" -> 4096.
std::int64_t parse_token_count(const std::string& text);

// 2097152 -> "2M", 65536 -> "64K", 1000 -> "1000".
std::string format_token_count(std::int64_t tokens);

// 68719476736 -> "64.0G" (GiB); keeps one decimal.
std::string format_bytes(std::int64_t bytes);

// Seconds -> "123.4ms" / "1.23s" / "45.6us".
std::string format_seconds(double seconds);

}  // namespace fpdt
