#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/logging.h"

namespace fpdt {

namespace {

int g_workers = []() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<int>(static_cast<int>(hw == 0 ? 1 : hw), 1, 16);
}();

thread_local int g_parallel_depth = 0;

struct ParallelRegionScope {
  ParallelRegionScope() { ++g_parallel_depth; }
  ~ParallelRegionScope() { --g_parallel_depth; }
};

}  // namespace

int parallel_workers() { return g_workers; }

bool in_parallel_region() { return g_parallel_depth > 0; }

void set_parallel_workers(int workers) {
  FPDT_CHECK_GE(workers, 1) << " worker count";
  g_workers = workers;
}

void parallel_for_ranks(int n, const std::function<void(int)>& fn) {
  // Worker threads are fresh OS threads with default-initialised thread
  // locals; capture the caller's work-phase context so kernel FLOPs charged
  // inside a rank body land in the phase span that forked it.
  const int phase = current_work_phase();
  if (n <= 1 || g_workers <= 1) {
    for (int i = 0; i < n; ++i) {
      RankScope rank_scope(i);
      ParallelRegionScope region;
      fn(i);
    }
    return;
  }
  // Fork-join with a shared index counter; threads are cheap relative to
  // the tensor math inside each rank's body.
  std::atomic<int> next{0};
  std::atomic<bool> cancelled{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      // Fail fast: once any rank threw, stop claiming new indices so the
      // join (and the rethrow) is not delayed by unstarted bodies — a rank
      // failure aborts the collective step anyway.
      if (cancelled.load(std::memory_order_acquire)) return;
      const int i = next.fetch_add(1);
      if (i >= n) return;
      try {
        // The loop body *is* emulated rank i: tag the thread so log lines
        // and trace scopes carry the rank without plumbing it through.
        RankScope rank_scope(i);
        WorkPhaseTag phase_tag(phase);
        ParallelRegionScope region;
        fn(i);
      } catch (...) {
        cancelled.store(true, std::memory_order_release);
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  const int threads = std::min(n, g_workers);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace fpdt
