// Minimal leveled logger with per-rank context.
//
// Thread-safety: line emission is atomic — the fully formatted line is
// written to stderr under a process-wide mutex, because the emulated ranks
// fork across OS threads (common/thread_pool.h) and the sanitizer lanes run
// them concurrently. The level threshold is an atomic; it is initialised
// lazily from the FPDT_LOG_LEVEL environment variable (debug|info|warn|error
// or 0..3) and can be overridden with set_log_threshold().
//
// Per-rank prefix: worker threads carry a thread-local emulated-rank id
// (set by parallel_for_ranks, or explicitly via RankScope); when set, log
// lines are prefixed "[INFO r3 file:line]". The same context feeds the
// default rank of obs::TraceScope spans.
#pragma once

#include <sstream>
#include <string>

namespace fpdt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are discarded. The first query reads
// FPDT_LOG_LEVEL (falling back to warn).
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

// Re-reads FPDT_LOG_LEVEL and applies it (no-op if the variable is unset or
// unparsable). Called lazily on first use and by core::FpdtEnv at init.
void init_logging_from_env();

// ---- Per-rank context -------------------------------------------------------
// Thread-local emulated-rank id; -1 = no rank context (driver code).
int current_rank();
void set_current_rank(int rank);

// RAII rank context for a scope (used around per-rank forks).
class RankScope {
 public:
  explicit RankScope(int rank);
  ~RankScope();

  RankScope(const RankScope&) = delete;
  RankScope& operator=(const RankScope&) = delete;

 private:
  int prev_;
};

// ---- Per-phase work context -------------------------------------------------
// Thread-local interned phase id for the work-accounting layer
// (obs/workmeter.h owns the id <-> name mapping; 0 = unattributed). It lives
// here, next to the rank context, for the same reason: parallel_for_ranks
// must propagate it into worker threads without depending on obs.
int current_work_phase();
void set_current_work_phase(int phase_id);

// RAII phase context (mirrors RankScope; used by obs::TraceScope and the
// thread-pool fork so kernel work charged inside a phase span — on any
// worker thread — lands in that phase's accumulator).
class WorkPhaseTag {
 public:
  explicit WorkPhaseTag(int phase_id);
  ~WorkPhaseTag();

  WorkPhaseTag(const WorkPhaseTag&) = delete;
  WorkPhaseTag& operator=(const WorkPhaseTag&) = delete;

 private:
  int prev_;
};

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail

#define FPDT_LOG(level) ::fpdt::detail::LogLine(::fpdt::LogLevel::level, __FILE__, __LINE__)
#define FPDT_LOG_DEBUG FPDT_LOG(kDebug)
#define FPDT_LOG_INFO FPDT_LOG(kInfo)
#define FPDT_LOG_WARN FPDT_LOG(kWarn)
#define FPDT_LOG_ERROR FPDT_LOG(kError)

}  // namespace fpdt
