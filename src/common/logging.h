// Minimal leveled logger. Not thread-safe beyond line atomicity; the SPMD
// emulation is single-threaded by design (see comm/process_group.h).
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace fpdt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are discarded.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail

#define FPDT_LOG(level) ::fpdt::detail::LogLine(::fpdt::LogLevel::level, __FILE__, __LINE__)
#define FPDT_LOG_DEBUG FPDT_LOG(kDebug)
#define FPDT_LOG_INFO FPDT_LOG(kInfo)
#define FPDT_LOG_WARN FPDT_LOG(kWarn)
#define FPDT_LOG_ERROR FPDT_LOG(kError)

}  // namespace fpdt
