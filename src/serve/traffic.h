// Deterministic synthetic serving traffic.
//
// A serving engine's behaviour — admission order, eviction pressure, tail
// latency — is a function of its arrival process, so reproducing a serving
// result requires reproducing the traffic bit-for-bit. Every draw here goes
// through one seeded Rng in a fixed program order: the same TrafficConfig
// always produces the same session list, which is what lets the engine
// promise byte-identical transcripts across runs (tests/test_serve.cpp).
//
// The mix mirrors multi-tenant long-context serving: exponential
// interarrivals (Poisson process) and log-uniform prompt lengths spanning
// 2K–256K tokens by default — most requests short, a heavy tail of
// ultra-long prompts that only chunked prefill + paged KV can host.
#pragma once

#include <cstdint>
#include <vector>

namespace fpdt::serve {

struct TrafficConfig {
  std::int64_t sessions = 64;
  std::uint64_t seed = 1234;
  std::int64_t min_prompt_tokens = 2048;    // 2K
  std::int64_t max_prompt_tokens = 262144;  // 256K
  double mean_interarrival_s = 2e-3;
  // Tokens to decode after prefill (the first token counts); uniform draw.
  std::int64_t min_decode_tokens = 4;
  std::int64_t max_decode_tokens = 32;
};

struct SessionSpec {
  std::int64_t sid = 0;
  double arrival_s = 0.0;
  std::int64_t prompt_tokens = 0;
  std::int64_t decode_tokens = 0;
};

// Session list sorted by arrival time. Same config => bitwise-identical
// output (three Rng draws per session, program order).
std::vector<SessionSpec> generate_traffic(const TrafficConfig& cfg);

}  // namespace fpdt::serve
