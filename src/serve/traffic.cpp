#include "serve/traffic.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace fpdt::serve {

std::vector<SessionSpec> generate_traffic(const TrafficConfig& cfg) {
  FPDT_CHECK_GT(cfg.sessions, 0) << " traffic needs at least one session";
  FPDT_CHECK_GE(cfg.min_prompt_tokens, 1) << " prompts must be non-empty";
  FPDT_CHECK_GE(cfg.max_prompt_tokens, cfg.min_prompt_tokens) << " bad prompt-length range";
  FPDT_CHECK_GE(cfg.min_decode_tokens, 1) << " every session decodes at least the first token";
  FPDT_CHECK_GE(cfg.max_decode_tokens, cfg.min_decode_tokens) << " bad decode range";
  FPDT_CHECK_GE(cfg.mean_interarrival_s, 0.0) << " negative interarrival";

  Rng rng(cfg.seed);
  const double ln_lo = std::log(static_cast<double>(cfg.min_prompt_tokens));
  const double ln_hi = std::log(static_cast<double>(cfg.max_prompt_tokens));

  std::vector<SessionSpec> specs;
  specs.reserve(static_cast<std::size_t>(cfg.sessions));
  double t = 0.0;
  for (std::int64_t s = 0; s < cfg.sessions; ++s) {
    // Exponential interarrival: -mean * ln(1-u), u in [0,1) so log1p(-u) is
    // finite. Draw order (gap, length, decode) is part of the contract.
    t += -cfg.mean_interarrival_s * std::log1p(-rng.next_uniform());
    const double lu = rng.next_uniform();
    std::int64_t len = static_cast<std::int64_t>(std::llround(std::exp(ln_lo + (ln_hi - ln_lo) * lu)));
    len = std::clamp(len, cfg.min_prompt_tokens, cfg.max_prompt_tokens);
    const std::int64_t span = cfg.max_decode_tokens - cfg.min_decode_tokens + 1;
    const std::int64_t dec =
        cfg.min_decode_tokens +
        static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(span)));
    specs.push_back({s, t, len, dec});
  }
  return specs;
}

}  // namespace fpdt::serve
