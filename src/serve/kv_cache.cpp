#include "serve/kv_cache.h"

#include <algorithm>
#include <string>

#include "common/check.h"
#include "fault/retry.h"

namespace fpdt::serve {

PagedKvCache::PagedKvCache(const nn::ModelConfig& model, runtime::Device& device,
                           runtime::Host& host, KvCacheConfig cfg)
    : model_(model), device_(&device), host_(&host), cfg_(cfg) {
  FPDT_CHECK_GT(cfg_.page_tokens, 0) << " page size must be positive";
  // K and V, BF16 logical bytes per cached token per layer.
  token_bytes_ = 2 * model_.n_kv_head * model_.head_dim() *
                 dtype_size(runtime::Dtype::kBF16);
  // Retry backoffs become spans on this device's compute stream, so retry
  // cost is visible virtual time (the FpdtEnv idiom from fault/retry.h).
  fault::FaultInjector::instance().set_backoff_sink(
      this, [dev = device_](int, const std::string& label, double seconds) {
        dev->compute_stream().enqueue("serve.retry." + label, seconds);
      });
}

PagedKvCache::~PagedKvCache() {
  fault::FaultInjector::instance().clear_backoff_sink(this);
}

void PagedKvCache::open_session(std::int64_t sid) {
  // Pages are created lazily by append(); opening just validates the id is
  // fresh so a leaked/duplicated sid fails loudly.
  const PageKey lo{sid, 0, 0};
  auto it = pages_.lower_bound(lo);
  FPDT_CHECK(it == pages_.end() || it->first.sid != sid)
      << " session " << sid << " already has pages";
}

void PagedKvCache::close_session(std::int64_t sid) {
  const PageKey lo{sid, 0, 0};
  auto it = pages_.lower_bound(lo);
  while (it != pages_.end() && it->first.sid == sid) it = pages_.erase(it);
}

runtime::Allocation PagedKvCache::charge_with_retry(runtime::MemoryPool& pool,
                                                    std::int64_t bytes,
                                                    bool evict_on_pressure) {
  constexpr int kMaxSpuriousRetries = 8;
  int spurious = 0;
  for (;;) {
    try {
      return runtime::Allocation(&pool, bytes);
    } catch (const OutOfMemoryError&) {
      ++stats_.oom_events;
      // Genuine pressure and injected OOMs are indistinguishable here; both
      // degrade the same way — push a cold page to the host tier and retry.
      if (evict_on_pressure && evict_lru()) continue;
      if (++spurious > kMaxSpuriousRetries) throw;
      ++stats_.oom_retries;
      fault::FaultInjector::instance().note_retry();
    }
  }
}

runtime::Event PagedKvCache::transfer_span(runtime::Stream& stream, fault::Site site,
                                           std::string label, double duration_s) {
  if (fault::faults_enabled()) {
    fault::FaultInjector& inj = fault::FaultInjector::instance();
    const bool ok = fault::retry_transient(
        fault::BackoffPolicy{}, device_->rank(), label,
        [&] { inj.maybe_throw(site, device_->rank(), label); });
    if (!ok) {
      // Retry ladder exhausted: fall back to a synchronous copy on the
      // compute stream — slower (exposed transfer time) but never corrupt.
      degraded_ = true;
      inj.note_degraded("serve.kv.sync-transfer " + label);
      return device_->compute_stream().enqueue(label + ".sync", duration_s);
    }
  }
  return stream.enqueue(std::move(label), duration_s);
}

bool PagedKvCache::evict_lru() {
  auto victim = pages_.end();
  for (auto it = pages_.begin(); it != pages_.end(); ++it) {
    if (it->second.on_host) continue;
    if (victim == pages_.end() || it->second.last_use < victim->second.last_use) victim = it;
  }
  if (victim == pages_.end()) return false;

  Page& page = victim->second;
  const std::int64_t bytes = bytes_per_page();
  const std::string key = "serve.evict.s" + std::to_string(victim->first.sid) + ".l" +
                          std::to_string(victim->first.layer) + ".p" +
                          std::to_string(victim->first.index);
  runtime::Event done =
      transfer_span(device_->d2h_stream(), fault::Site::kD2H, key,
                    device_->rates().d2h_time(bytes));
  (void)done;  // nothing orders on an offload; the span ledger records it
  // Accounting converts immediately (the engine drains streams every
  // quantum, so the span retires before anything could observe the page
  // mid-flight): charge the host tier, then drop the device charge.
  page.charge = charge_with_retry(host_->pool(), bytes, /*evict_on_pressure=*/false);
  page.on_host = true;
  device_->transfers().d2h_bytes += bytes;
  device_->transfers().d2h_count += 1;
  ++stats_.evictions;
  return true;
}

void PagedKvCache::fetch_page(Page& page, const PageKey& key) {
  const std::int64_t bytes = bytes_per_page();
  const std::string label = "serve.fetch.s" + std::to_string(key.sid) + ".l" +
                            std::to_string(key.layer) + ".p" + std::to_string(key.index);
  // Device charge first (may evict colder pages), then the H2D span; the
  // caller's next compute span waits on it via take_pending_events().
  runtime::Allocation up = charge_with_retry(device_->hbm(), bytes, /*evict_on_pressure=*/true);
  runtime::Event done = transfer_span(device_->h2d_stream(), fault::Site::kH2D, label,
                                      device_->rates().h2d_time(bytes));
  pending_events_.push_back(done);
  page.charge = std::move(up);
  page.on_host = false;
  device_->transfers().h2d_bytes += bytes;
  device_->transfers().h2d_count += 1;
  ++stats_.fetches;
}

PagedKvCache::Page& PagedKvCache::page_for(std::int64_t sid, std::int64_t layer,
                                           std::int64_t index) {
  const PageKey key{sid, layer, index};
  auto it = pages_.find(key);
  if (it == pages_.end()) {
    Page page;
    page.charge = charge_with_retry(device_->hbm(), bytes_per_page(), /*evict_on_pressure=*/true);
    if (cfg_.execute) {
      page.kv = Tensor({2, cfg_.page_tokens, model_.n_kv_head, model_.head_dim()});
    }
    ++stats_.pages_allocated;
    it = pages_.emplace(key, std::move(page)).first;
  }
  Page& page = it->second;
  if (page.on_host) fetch_page(page, key);  // writes need device residency
  page.last_use = ++tick_;
  return page;
}

void PagedKvCache::append(std::int64_t sid, std::int64_t layer, std::int64_t pos0,
                          const Tensor& k, const Tensor& v, std::int64_t n) {
  FPDT_CHECK_GE(n, 1) << " empty append";
  std::int64_t written = 0;
  while (written < n) {
    const std::int64_t pos = pos0 + written;
    const std::int64_t index = pos / cfg_.page_tokens;
    const std::int64_t offset = pos % cfg_.page_tokens;
    const std::int64_t rows = std::min(n - written, cfg_.page_tokens - offset);
    Page& page = page_for(sid, layer, index);
    FPDT_CHECK_EQ(page.filled, offset) << " non-contiguous append at position " << pos;
    if (cfg_.execute) {
      Tensor kp = page.kv.slice0(0, 1).reshape({cfg_.page_tokens, model_.n_kv_head,
                                                model_.head_dim()});
      Tensor vp = page.kv.slice0(1, 2).reshape({cfg_.page_tokens, model_.n_kv_head,
                                                model_.head_dim()});
      kp.slice0(offset, offset + rows).copy_from(k.slice0(written, written + rows));
      vp.slice0(offset, offset + rows).copy_from(v.slice0(written, written + rows));
    }
    page.filled = offset + rows;
    written += rows;
  }
}

PagedKvCache::Gathered PagedKvCache::gather(std::int64_t sid, std::int64_t layer,
                                            std::int64_t len) {
  FPDT_CHECK_GE(len, 1) << " empty gather";
  Gathered out;
  // Scratch for the contiguous copy is a transient device charge — the
  // serving analogue of the training loop's per-chunk KV working set. It
  // may evict this very session's cold pages; the copy below reads them
  // from wherever they landed.
  out.scratch = charge_with_retry(device_->hbm(), len * token_bytes_,
                                  /*evict_on_pressure=*/true);
  if (cfg_.execute) {
    out.k = Tensor({len, model_.n_kv_head, model_.head_dim()});
    out.v = Tensor({len, model_.n_kv_head, model_.head_dim()});
  }
  std::int64_t host_bytes = 0;
  for (std::int64_t row = 0; row < len;) {
    const std::int64_t index = row / cfg_.page_tokens;
    const std::int64_t offset = row % cfg_.page_tokens;
    const std::int64_t rows = std::min(len - row, cfg_.page_tokens - offset);
    auto it = pages_.find(PageKey{sid, layer, index});
    FPDT_CHECK(it != pages_.end()) << " gather past the filled prefix (page " << index << ")";
    Page& page = it->second;
    FPDT_CHECK_GE(page.filled, offset + rows) << " gather past the filled prefix";
    if (page.on_host) host_bytes += rows * token_bytes_;  // fetch-copy: host copy stays
    page.last_use = ++tick_;
    if (cfg_.execute) {
      Tensor kp = page.kv.slice0(0, 1).reshape({cfg_.page_tokens, model_.n_kv_head,
                                                model_.head_dim()});
      Tensor vp = page.kv.slice0(1, 2).reshape({cfg_.page_tokens, model_.n_kv_head,
                                                model_.head_dim()});
      out.k.slice0(row, row + rows).copy_from(kp.slice0(offset, offset + rows));
      out.v.slice0(row, row + rows).copy_from(vp.slice0(offset, offset + rows));
    }
    row += rows;
  }
  if (host_bytes > 0) {
    // One aggregated span per gather (not per page): a real implementation
    // batches the scatter-gather DMA, and per-page spans would blow the
    // ledger up quadratically over a long prefill.
    const std::string label = "serve.gather.s" + std::to_string(sid) + ".l" +
                              std::to_string(layer);
    out.ready = transfer_span(device_->h2d_stream(), fault::Site::kH2D, label,
                              device_->rates().h2d_time(host_bytes));
    pending_events_.push_back(out.ready);
    device_->transfers().h2d_bytes += host_bytes;
    device_->transfers().h2d_count += 1;
    stats_.fetch_bytes += host_bytes;
  }
  return out;
}

std::pair<Tensor, Tensor> PagedKvCache::snapshot(std::int64_t sid, std::int64_t layer,
                                                 std::int64_t len) const {
  FPDT_CHECK(cfg_.execute) << " snapshot needs materialized pages";
  Tensor k({len, model_.n_kv_head, model_.head_dim()});
  Tensor v({len, model_.n_kv_head, model_.head_dim()});
  for (std::int64_t row = 0; row < len;) {
    const std::int64_t index = row / cfg_.page_tokens;
    const std::int64_t offset = row % cfg_.page_tokens;
    const std::int64_t rows = std::min(len - row, cfg_.page_tokens - offset);
    auto it = pages_.find(PageKey{sid, layer, index});
    FPDT_CHECK(it != pages_.end()) << " snapshot past the filled prefix";
    const Tensor kp = it->second.kv.slice0(0, 1).reshape({cfg_.page_tokens, model_.n_kv_head,
                                                          model_.head_dim()});
    const Tensor vp = it->second.kv.slice0(1, 2).reshape({cfg_.page_tokens, model_.n_kv_head,
                                                          model_.head_dim()});
    k.slice0(row, row + rows).copy_from(kp.slice0(offset, offset + rows));
    v.slice0(row, row + rows).copy_from(vp.slice0(offset, offset + rows));
    row += rows;
  }
  return {std::move(k), std::move(v)};
}

std::vector<runtime::Event> PagedKvCache::take_pending_events() {
  std::vector<runtime::Event> events;
  events.swap(pending_events_);
  return events;
}

std::int64_t PagedKvCache::device_pages() const {
  std::int64_t n = 0;
  for (const auto& [key, page] : pages_) n += page.on_host ? 0 : 1;
  return n;
}

std::int64_t PagedKvCache::host_pages() const {
  std::int64_t n = 0;
  for (const auto& [key, page] : pages_) n += page.on_host ? 1 : 0;
  return n;
}

}  // namespace fpdt::serve
