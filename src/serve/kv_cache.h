// Paged, two-tier KV cache for multi-tenant serving.
//
// Training-side FPDT bounds HBM by spilling KV chunks to host and fetching
// them back on a dedicated stream pair (core/chunk_store.h); serving needs
// the same trick per *session*: many concurrent prompts whose combined KV
// dwarfs HBM, each growing one token at a time. This cache carves every
// session-layer's K/V into fixed-size pages and keeps each page on exactly
// one tier:
//
//   device tier  a runtime::Allocation against Device::hbm() — the page is
//                resident and gatherable at no transfer cost;
//   host tier    the same bytes charged to Host::pool(); a gather that
//                touches host pages pays an H2D span (and counts the bytes)
//                exactly like the training prefetcher's fetches.
//
// Eviction is LRU over device-resident pages and follows the
// ChunkPrefetcher protocol: the destination bytes are charged when the
// transfer is issued, the d2h span lands on the device's d2h stream, and a
// retry ladder (fault/retry.h) absorbs injected transient faults — on
// exhaustion the transfer degrades to the compute stream (a synchronous,
// exposed copy) rather than corrupting the page. Device charges that hit
// OutOfMemoryError trigger evict-then-retry until the pool genuinely cannot
// hold the request.
//
// Two compute modes share all of this accounting:
//   execute  pages carry real [2, page_tokens, hk, dh] tensors; gather()
//            returns contiguous K/V copies that are bitwise-identical to
//            the monolithic nn::InferenceSession cache (the differential
//            suite's contract);
//   virtual  pages are charges only (no floats), so a 64-session 256K-token
//            workload runs in milliseconds while pool peaks, transfer
//            bytes, spans and eviction decisions stay exactly as in an
//            executed run.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "fault/fault_injector.h"
#include "nn/model_config.h"
#include "runtime/device.h"
#include "runtime/memory_pool.h"
#include "runtime/stream.h"
#include "tensor/tensor.h"

namespace fpdt::serve {

struct KvCacheConfig {
  std::int64_t page_tokens = 1024;
  bool execute = false;  // materialize page tensors (tests) vs accounting-only
};

struct KvCacheStats {
  std::int64_t pages_allocated = 0;
  std::int64_t evictions = 0;      // device -> host page moves
  std::int64_t fetches = 0;        // host -> device page moves (append path)
  std::int64_t fetch_bytes = 0;    // host-resident bytes copied up by gathers
  std::int64_t oom_events = 0;     // OutOfMemoryError caught (genuine or injected)
  std::int64_t oom_retries = 0;    // charge retries that could not evict first
};

class PagedKvCache {
 public:
  PagedKvCache(const nn::ModelConfig& model, runtime::Device& device, runtime::Host& host,
               KvCacheConfig cfg);
  ~PagedKvCache();

  PagedKvCache(const PagedKvCache&) = delete;
  PagedKvCache& operator=(const PagedKvCache&) = delete;

  std::int64_t page_tokens() const { return cfg_.page_tokens; }
  // Logical BF16 bytes of one full page (K and V).
  std::int64_t bytes_per_page() const { return cfg_.page_tokens * token_bytes_; }
  // Logical BF16 bytes one cached token occupies in one layer.
  std::int64_t token_bytes() const { return token_bytes_; }

  void open_session(std::int64_t sid);
  // Frees every page of the session on both tiers; after all sessions close
  // the pools are back at their baseline (the no-leak property test).
  void close_session(std::int64_t sid);

  // Appends rows [pos0, pos0+n) of `layer`'s K/V. In execute mode k/v are
  // [n, hk, dh]; virtual mode passes undefined tensors and only the
  // accounting happens. Rows may span page boundaries.
  void append(std::int64_t sid, std::int64_t layer, std::int64_t pos0, const Tensor& k,
              const Tensor& v, std::int64_t n);

  struct Gathered {
    Tensor k, v;                  // [len, hk, dh] contiguous (execute mode)
    runtime::Allocation scratch;  // device charge backing the gathered copy
    runtime::Event ready;         // H2D completion when host pages were touched
  };
  // Contiguous copy of rows [0, len): each chunk's online-attention step
  // consumes the whole cached prefix in one call — the same single-step
  // recurrence as nn::InferenceSession, which is what keeps chunked prefill
  // bitwise-identical to the monolithic path. Host-resident pages charge an
  // aggregated H2D span; the caller's compute span must wait on `ready` (it
  // is also queued for take_pending_events()).
  Gathered gather(std::int64_t sid, std::int64_t layer, std::int64_t len);

  // Test hook: page contents as contiguous [len, hk, dh] K/V, with no
  // charges, spans or LRU touches (execute mode only).
  std::pair<Tensor, Tensor> snapshot(std::int64_t sid, std::int64_t layer,
                                     std::int64_t len) const;

  // Transfer events enqueued since the last call; the engine threads them
  // into the next compute span's waits so fetches order before the math.
  std::vector<runtime::Event> take_pending_events();

  // Moves the least-recently-used device-resident page to the host tier.
  // False when nothing is evictable (device tier empty).
  bool evict_lru();

  // True once any transfer exhausted its retry ladder and fell back to a
  // synchronous copy on the compute stream.
  bool degraded() const { return degraded_; }
  const KvCacheStats& stats() const { return stats_; }
  std::int64_t device_pages() const;
  std::int64_t host_pages() const;

 private:
  struct PageKey {
    std::int64_t sid = 0;
    std::int64_t layer = 0;
    std::int64_t index = 0;  // page number within the session-layer
    bool operator<(const PageKey& o) const {
      if (sid != o.sid) return sid < o.sid;
      if (layer != o.layer) return layer < o.layer;
      return index < o.index;
    }
  };
  struct Page {
    Tensor kv;  // execute mode: [2, page_tokens, hk, dh]
    runtime::Allocation charge;  // against whichever tier currently owns it
    bool on_host = false;
    std::int64_t last_use = 0;
    std::int64_t filled = 0;  // rows written so far
  };

  Page& page_for(std::int64_t sid, std::int64_t layer, std::int64_t index);
  void fetch_page(Page& page, const PageKey& key);
  // Charge with the OOM ladder: evict-to-host under genuine pressure,
  // bounded retries for injected spurious OOMs, rethrow when the pool truly
  // cannot hold `bytes`.
  runtime::Allocation charge_with_retry(runtime::MemoryPool& pool, std::int64_t bytes,
                                        bool evict_on_pressure);
  // Draw transient faults for a transfer and land its span: on the transfer
  // stream when the retry ladder succeeds, degraded onto the compute stream
  // (synchronous, exposed) when it exhausts.
  runtime::Event transfer_span(runtime::Stream& stream, fault::Site site, std::string label,
                               double duration_s);

  nn::ModelConfig model_;
  runtime::Device* device_;
  runtime::Host* host_;
  KvCacheConfig cfg_;
  std::int64_t token_bytes_ = 0;
  std::int64_t tick_ = 0;
  bool degraded_ = false;
  KvCacheStats stats_;
  std::map<PageKey, Page> pages_;  // ordered => deterministic LRU tie-breaks
  std::vector<runtime::Event> pending_events_;
};

}  // namespace fpdt::serve
