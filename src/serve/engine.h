// Multi-tenant serving engine: chunked prefill + paged KV + continuous
// batching on the emulated FPDT substrate.
//
// One rank group serves many sessions. The scheduler is continuous
// batching in its simplest honest form: a round-robin over active sessions
// where each turn is one quantum — one prefill chunk or one decode token —
// so short requests interleave with a 256K-token prefill instead of
// queueing behind it. Admission holds a session back until a slot is free
// (max_active) and rejects outright anything whose transient gather
// working set could never fit HBM; resident pressure beyond that is the
// KV cache's problem (LRU eviction to the host tier).
//
// Time is the runtime's virtual clock: every quantum becomes a span on the
// device compute stream (analytic duration from StreamRates, same cost
// model as the simulator), transfers land on the h2d/d2h streams, and the
// engine drains eagerly after each quantum so `now` is always the finish
// time of the last quantum. TTFT, per-token latency and throughput are all
// measured on that clock and reported through exact histograms
// (obs::Histogram) mirrored into obs::MetricsRegistry.
//
// Two compute modes: `execute` runs the real model math through
// serve::SessionCompute (bitwise-identical to nn::InferenceSession — the
// differential suite's subject) and can `verify` every completed session
// against the monolithic path; virtual mode skips the floats but keeps
// every charge, span and scheduling decision, which is what lets the
// default 64-session 2K–256K workload run in a CI smoke test.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/model_config.h"
#include "obs/metrics.h"
#include "runtime/stream.h"
#include "serve/kv_cache.h"
#include "serve/traffic.h"

namespace fpdt::serve {

struct ServeOptions {
  nn::ModelConfig model;  // default-constructed => tiny_gpt (set in engine)
  std::uint64_t model_seed = 1234;
  TrafficConfig traffic;
  std::int64_t page_tokens = 1024;
  std::int64_t chunk_tokens = 4096;  // prefill quantum
  std::int64_t max_active = 4;       // continuous-batching slots
  int world = 1;                     // ranks sharing the group (timing model)
  std::int64_t hbm_bytes = 256ll << 20;
  bool execute = false;  // real model math (tests/verify) vs accounting-only
  bool verify = false;   // execute only: replay vs monolithic InferenceSession
};

struct SessionOutcome {
  std::int64_t sid = 0;
  std::int64_t prompt_tokens = 0;
  std::int64_t decode_tokens = 0;
  double arrival_s = 0.0;
  double first_token_s = -1.0;  // virtual time of the first emitted token
  double complete_s = -1.0;
  double ttft_s = -1.0;
  bool rejected = false;
  std::vector<std::int32_t> generated;  // execute mode: emitted tokens
};

struct ServeReport {
  std::int64_t sessions = 0;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;
  std::int64_t prefill_tokens = 0;
  std::int64_t decoded_tokens = 0;
  double makespan_s = 0.0;
  double tokens_per_s = 0.0;
  double ttft_p50_s = 0.0, ttft_p99_s = 0.0;
  double token_p50_s = 0.0, token_p99_s = 0.0;
  std::int64_t hbm_peak_bytes = 0;
  std::int64_t host_peak_bytes = 0;
  std::int64_t h2d_bytes = 0, d2h_bytes = 0;
  KvCacheStats cache;
  bool degraded = false;
  // Bytes still charged after every session drained; nonzero = leak.
  std::int64_t device_leak_bytes = 0;
  std::int64_t host_leak_bytes = 0;
  // Execute+verify: sessions replayed bitwise against nn::InferenceSession.
  std::int64_t verified_sessions = 0;
  bool verify_ok = true;
  runtime::TimelineReport timeline;
  std::vector<SessionOutcome> outcomes;
  // Deterministic event log ("t=<s> arrive s3 len=4096 ..."): two runs with
  // the same options produce byte-identical transcripts.
  std::vector<std::string> transcript;

  bool ok() const {
    return completed == sessions - rejected && device_leak_bytes == 0 &&
           host_leak_bytes == 0 && verify_ok;
  }
  std::string table() const;
  std::string summary() const;
};

class ServingEngine {
 public:
  explicit ServingEngine(ServeOptions opt);
  // Runs the workload to completion; callable once per engine.
  ServeReport run();

 private:
  ServeOptions opt_;
  bool ran_ = false;
};

}  // namespace fpdt::serve
