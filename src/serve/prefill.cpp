#include "serve/prefill.h"

#include "common/check.h"
#include "nn/attention.h"

namespace fpdt::serve {

SessionCompute::SessionCompute(nn::Model& model, PagedKvCache& cache, std::int64_t sid)
    : model_(&model), cache_(&cache), sid_(sid) {}

Tensor SessionCompute::advance(const std::vector<std::int32_t>& tokens, std::int64_t pos0) {
  const std::int64_t n = static_cast<std::int64_t>(tokens.size());
  Tensor h = model_->embedding().forward(tokens);
  for (std::size_t l = 0; l < model_->blocks().size(); ++l) {
    nn::TransformerBlock& blk = model_->blocks()[l];
    nn::NormStats st1;
    Tensor xn = blk.norm1().forward(h, st1);
    nn::AttentionLayer::Qkv qkv = blk.attention().project_qkv(xn, pos0);
    cache_->append(sid_, static_cast<std::int64_t>(l), pos0, qkv.k, qkv.v, n);
    // Attend against the full prefix in one online step over the gathered
    // pages — the same single-block recurrence as the monolithic session.
    PagedKvCache::Gathered g = cache_->gather(sid_, static_cast<std::int64_t>(l), pos0 + n);
    nn::OnlineAttnState state = nn::OnlineAttnState::create(n, qkv.q.dim(1), qkv.q.dim(2));
    nn::online_attn_step(state, qkv.q, g.k, g.v, /*causal=*/true, pos0, 0);
    nn::AttentionOutput out = nn::online_attn_finalize(state);
    Tensor y = add(h, blk.attention().project_out(out.out));
    nn::NormStats st2;
    Tensor yn = blk.norm2().forward(y, st2);
    h = add(y, blk.ffn().forward(yn));
  }
  position_ = pos0 + n;
  return h;
}

void SessionCompute::prefill_chunk(const std::vector<std::int32_t>& tokens) {
  FPDT_CHECK(!finished_prefill_) << " prefill chunk after finish_prefill";
  FPDT_CHECK(!tokens.empty()) << " empty prefill chunk";
  last_hidden_ = advance(tokens, position_);
}

Tensor SessionCompute::finish_prefill() {
  FPDT_CHECK(!finished_prefill_) << " finish_prefill may run once";
  FPDT_CHECK(last_hidden_.defined()) << " finish_prefill before any chunk";
  finished_prefill_ = true;
  nn::NormStats st;
  Tensor hn = model_->final_norm().forward(last_hidden_, st);
  Tensor last = hn.slice0(hn.dim(0) - 1, hn.dim(0));
  return matmul_nt(last, model_->lm_head().weight().value)
      .reshape({model_->config().vocab});
}

Tensor SessionCompute::decode(std::int32_t token) {
  FPDT_CHECK(finished_prefill_) << " decode before finish_prefill";
  Tensor h = advance({token}, position_);
  nn::NormStats st;
  Tensor hn = model_->final_norm().forward(h, st);
  return matmul_nt(hn, model_->lm_head().weight().value)
      .reshape({model_->config().vocab});
}

}  // namespace fpdt::serve
