#include "serve/engine.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/units.h"
#include "data/synthetic_corpus.h"
#include "fault/fault_injector.h"
#include "nn/inference.h"
#include "nn/model.h"
#include "serve/prefill.h"

namespace fpdt::serve {

namespace {

// Fixed-width timestamps keep the transcript byte-identical across runs.
std::string fmt9(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9f", v);
  return buf;
}

std::int32_t argmax_token(const Tensor& logits) {
  // Same tie-break as nn::generate's greedy rule (strict >, first wins).
  std::int64_t best = 0;
  for (std::int64_t i = 1; i < logits.numel(); ++i) {
    if (logits.data()[i] > logits.data()[best]) best = i;
  }
  return static_cast<std::int32_t>(best);
}

struct Active {
  SessionSpec spec;
  SessionOutcome outcome;
  std::int64_t pos = 0;        // prefill progress
  std::int64_t generated = 0;  // emitted tokens (first token included)
  double last_emit_s = 0.0;
  std::vector<std::int32_t> prompt;         // execute mode
  std::unique_ptr<SessionCompute> compute;  // execute mode
  Tensor logits;                            // pending next-token logits
  Tensor prefill_logits;                    // end-of-prefill logits (verify)
  Rng token_rng{0};                         // virtual-mode token synthesis
};

struct VerifyRecord {
  std::int64_t sid = 0;
  std::vector<std::int32_t> prompt;
  Tensor prefill_logits;
  std::vector<std::int32_t> generated;
};

}  // namespace

ServingEngine::ServingEngine(ServeOptions opt) : opt_(std::move(opt)) {
  if (opt_.model.n_layer == 0) opt_.model = nn::tiny_gpt();
  FPDT_CHECK_GT(opt_.chunk_tokens, 0) << " prefill chunk must be positive";
  FPDT_CHECK_GT(opt_.page_tokens, 0) << " page size must be positive";
  FPDT_CHECK_GT(opt_.max_active, 0) << " need at least one batching slot";
  FPDT_CHECK_GE(opt_.world, 1) << " world must be >= 1";
  if (opt_.verify) {
    FPDT_CHECK(opt_.execute) << " --verify needs execute mode";
  }
}

ServeReport ServingEngine::run() {
  FPDT_CHECK(!ran_) << " a ServingEngine runs once";
  ran_ = true;

  const nn::ModelConfig& cfg = opt_.model;
  runtime::Device device(0, opt_.hbm_bytes);
  runtime::Host host;
  PagedKvCache cache(cfg, device, host, KvCacheConfig{opt_.page_tokens, opt_.execute});
  std::unique_ptr<nn::Model> model;
  if (opt_.execute) model = std::make_unique<nn::Model>(cfg, opt_.model_seed);

  const std::vector<SessionSpec> arrivals = generate_traffic(opt_.traffic);
  const std::int64_t param_count = cfg.param_count();
  const runtime::StreamRates& rates = device.rates();
  fault::FaultInjector& injector = fault::FaultInjector::instance();

  ServeReport report;
  report.sessions = opt_.traffic.sessions;
  obs::Histogram ttft_hist;
  obs::Histogram token_hist;
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();

  // A quantum's virtual cost: dense GEMMs scale with tokens, attention with
  // (new token, cached prefix) pairs — the sim::CostModel accounting at
  // serving granularity. `world` ranks split the work sequence-parallel and
  // pay two All2Alls per quantum (the paper's attention dataflow).
  auto quantum_seconds = [&](std::int64_t pos0, std::int64_t n) {
    const double gemm_flops = 2.0 * static_cast<double>(param_count) * static_cast<double>(n);
    const double pairs = static_cast<double>(n) * static_cast<double>(pos0) +
                         static_cast<double>(n) * static_cast<double>(n + 1) / 2.0;
    const double attn_flops = pairs * static_cast<double>(cfg.n_head) *
                              static_cast<double>(4 * cfg.head_dim() + 5);
    double t = rates.gemm_time(gemm_flops / opt_.world) + rates.attn_time(attn_flops / opt_.world);
    if (opt_.world > 1) {
      t += 2.0 * rates.a2a_time(2 * n * cfg.d_model / opt_.world, opt_.world);
    }
    return t;
  };

  // Admission sanity: a session whose transient gather scratch (one layer's
  // contiguous K/V at full length) plus minimal page residency can never
  // fit HBM would deadlock the OOM/evict ladder — reject it up front.
  auto fits = [&](const SessionSpec& spec) {
    if (opt_.hbm_bytes < 0) return true;
    const std::int64_t max_len = spec.prompt_tokens + spec.decode_tokens;
    const std::int64_t required = max_len * cache.token_bytes() + 2 * cache.bytes_per_page();
    return required <= opt_.hbm_bytes;
  };

  double now = 0.0;
  std::size_t next_arrival = 0;
  std::deque<SessionSpec> waiting;
  std::vector<std::unique_ptr<Active>> active;
  std::size_t cursor = 0;
  std::int64_t quantum_index = 0;
  std::int64_t seen_evictions = 0;
  std::vector<VerifyRecord> verify_records;

  auto note = [&](const std::string& line) { report.transcript.push_back(line); };

  auto note_evictions = [&] {
    const std::int64_t delta = cache.stats().evictions - seen_evictions;
    if (delta == 0) return;
    seen_evictions = cache.stats().evictions;
    note("t=" + fmt9(now) + " evict n=" + std::to_string(delta) +
         " host_pages=" + std::to_string(cache.host_pages()));
  };

  auto emit_token = [&](Active& s) {
    std::int32_t token;
    if (opt_.execute) {
      token = argmax_token(s.logits);
    } else {
      token = static_cast<std::int32_t>(s.token_rng.next_below(
          static_cast<std::uint64_t>(std::max<std::int64_t>(cfg.vocab, 1))));
    }
    s.outcome.generated.push_back(token);
    s.generated += 1;
    report.decoded_tokens += 1;
    return token;
  };

  auto admit = [&](const SessionSpec& spec) {
    auto s = std::make_unique<Active>();
    s->spec = spec;
    s->outcome.sid = spec.sid;
    s->outcome.prompt_tokens = spec.prompt_tokens;
    s->outcome.decode_tokens = spec.decode_tokens;
    s->outcome.arrival_s = spec.arrival_s;
    s->token_rng = Rng(opt_.traffic.seed).split(static_cast<std::uint64_t>(spec.sid) + 101);
    cache.open_session(spec.sid);
    if (opt_.execute) {
      // Deterministic per-session prompt stream (the same corpus the
      // training tests draw from), independent of admission order.
      data::SyntheticCorpus corpus(cfg.vocab, opt_.traffic.seed * 1000003ULL +
                                                  0x9E3779B97F4A7C15ULL *
                                                      (static_cast<std::uint64_t>(spec.sid) + 1));
      s->prompt = corpus.sample(spec.prompt_tokens);
      s->compute = std::make_unique<SessionCompute>(*model, cache, spec.sid);
    }
    note("t=" + fmt9(now) + " admit s" + std::to_string(spec.sid));
    active.push_back(std::move(s));
  };

  auto finish_session = [&](std::size_t idx) {
    Active& s = *active[idx];
    s.outcome.complete_s = now;
    note("t=" + fmt9(now) + " complete s" + std::to_string(s.spec.sid) +
         " tokens=" + std::to_string(s.generated));
    if (opt_.verify) {
      verify_records.push_back(
          {s.spec.sid, std::move(s.prompt), std::move(s.prefill_logits), s.outcome.generated});
    }
    cache.close_session(s.spec.sid);
    report.completed += 1;
    report.outcomes.push_back(std::move(s.outcome));
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(idx));
    if (!active.empty()) cursor %= active.size();
  };

  // Records the first emitted token (end of prefill) and finishes the
  // session when its decode budget is a single token.
  auto first_token = [&](Active& s) {
    emit_token(s);
    s.outcome.first_token_s = now;
    s.outcome.ttft_s = now - s.spec.arrival_s;
    s.last_emit_s = now;
    ttft_hist.observe(s.outcome.ttft_s);
    metrics.histogram("serve.ttft_s").observe(s.outcome.ttft_s);
    note("t=" + fmt9(now) + " first-token s" + std::to_string(s.spec.sid) +
         " ttft=" + fmt9(s.outcome.ttft_s));
  };

  while (true) {
    // Pull due arrivals, rejecting the unservable up front.
    while (next_arrival < arrivals.size() && arrivals[next_arrival].arrival_s <= now) {
      const SessionSpec& spec = arrivals[next_arrival++];
      note("t=" + fmt9(spec.arrival_s) + " arrive s" + std::to_string(spec.sid) +
           " len=" + std::to_string(spec.prompt_tokens) +
           " decode=" + std::to_string(spec.decode_tokens));
      if (!fits(spec)) {
        note("t=" + fmt9(spec.arrival_s) + " reject s" + std::to_string(spec.sid) +
             " (working set exceeds hbm)");
        SessionOutcome out;
        out.sid = spec.sid;
        out.prompt_tokens = spec.prompt_tokens;
        out.decode_tokens = spec.decode_tokens;
        out.arrival_s = spec.arrival_s;
        out.rejected = true;
        report.rejected += 1;
        report.outcomes.push_back(std::move(out));
        continue;
      }
      waiting.push_back(spec);
    }
    while (!waiting.empty() &&
           active.size() < static_cast<std::size_t>(opt_.max_active)) {
      admit(waiting.front());
      waiting.pop_front();
    }
    if (active.empty()) {
      if (next_arrival >= arrivals.size()) break;  // drained
      // Idle until the next arrival; the gap is a span so the timeline
      // stays gap-free and `now` comes from one clock.
      const double dt = std::max(arrivals[next_arrival].arrival_s - now, 0.0);
      runtime::Event e = device.compute_stream().enqueue("serve.idle", dt);
      e.wait();
      now = e.ready_time();
      continue;
    }

    // One continuous-batching quantum: round-robin, one prefill chunk or
    // one decode token.
    if (fault::faults_enabled()) injector.begin_step(quantum_index);
    ++quantum_index;
    const std::size_t idx = cursor % active.size();
    Active& s = *active[idx];
    const std::int64_t sid = s.spec.sid;
    bool finished = false;

    if (s.pos < s.spec.prompt_tokens) {
      const std::int64_t n = std::min(opt_.chunk_tokens, s.spec.prompt_tokens - s.pos);
      if (opt_.execute) {
        std::vector<std::int32_t> piece(s.prompt.begin() + s.pos, s.prompt.begin() + s.pos + n);
        s.compute->prefill_chunk(piece);
      } else {
        for (std::int64_t l = 0; l < cfg.n_layer; ++l) {
          cache.append(sid, l, s.pos, Tensor(), Tensor(), n);
          PagedKvCache::Gathered g = cache.gather(sid, l, s.pos + n);
          (void)g;  // accounting only; scratch charge drops at scope exit
        }
      }
      runtime::Event e = device.compute_stream().enqueue(
          "serve.prefill.s" + std::to_string(sid), quantum_seconds(s.pos, n),
          cache.take_pending_events());
      e.wait();
      now = e.ready_time();
      s.pos += n;
      report.prefill_tokens += n;
      if (s.pos == s.spec.prompt_tokens) {
        if (opt_.execute) {
          s.logits = s.compute->finish_prefill();
          if (opt_.verify) s.prefill_logits = s.logits;
        }
        first_token(s);
        finished = s.generated == s.spec.decode_tokens;
      }
    } else {
      const std::int32_t token = s.outcome.generated.back();
      const std::int64_t pos0 = s.spec.prompt_tokens + s.generated - 1;
      if (opt_.execute) {
        s.logits = s.compute->decode(token);
      } else {
        for (std::int64_t l = 0; l < cfg.n_layer; ++l) {
          cache.append(sid, l, pos0, Tensor(), Tensor(), 1);
          PagedKvCache::Gathered g = cache.gather(sid, l, pos0 + 1);
          (void)g;
        }
      }
      runtime::Event e = device.compute_stream().enqueue(
          "serve.decode.s" + std::to_string(sid), quantum_seconds(pos0, 1),
          cache.take_pending_events());
      e.wait();
      now = e.ready_time();
      emit_token(s);
      const double latency = now - s.last_emit_s;
      s.last_emit_s = now;
      token_hist.observe(latency);
      metrics.histogram("serve.token_latency_s").observe(latency);
      finished = s.generated == s.spec.decode_tokens;
    }

    note_evictions();
    if (finished) {
      finish_session(idx);
    } else {
      cursor = (idx + 1) % active.size();
    }
  }

  if (fault::faults_enabled()) injector.reconcile_step();

  // Differential verify: replay every completed session through the
  // monolithic nn::InferenceSession and insist on bitwise-equal prefill
  // logits and an identical greedy token stream.
  if (opt_.verify) {
    for (const VerifyRecord& rec : verify_records) {
      nn::InferenceSession ref(*model, /*prefill_chunk=*/0);
      Tensor logits = ref.prefill(rec.prompt);
      bool ok = logits.numel() == rec.prefill_logits.numel() &&
                std::memcmp(logits.data(), rec.prefill_logits.data(),
                            static_cast<std::size_t>(logits.numel()) * sizeof(float)) == 0;
      std::int32_t token = argmax_token(logits);
      for (std::size_t t = 0; ok && t < rec.generated.size(); ++t) {
        ok = token == rec.generated[t];
        if (ok && t + 1 < rec.generated.size()) {
          logits = ref.decode(token);
          token = argmax_token(logits);
        }
      }
      report.verified_sessions += 1;
      if (!ok) report.verify_ok = false;
    }
  }

  report.timeline = device.timeline_report();  // synchronizes all streams
  report.makespan_s = report.timeline.makespan_s;
  const std::int64_t total_tokens = report.prefill_tokens + report.decoded_tokens;
  report.tokens_per_s =
      report.makespan_s > 0.0 ? static_cast<double>(total_tokens) / report.makespan_s : 0.0;
  report.ttft_p50_s = ttft_hist.percentile(0.5);
  report.ttft_p99_s = ttft_hist.percentile(0.99);
  report.token_p50_s = token_hist.percentile(0.5);
  report.token_p99_s = token_hist.percentile(0.99);
  report.hbm_peak_bytes = device.hbm().peak();
  report.host_peak_bytes = host.pool().peak();
  report.h2d_bytes = device.transfers().h2d_bytes;
  report.d2h_bytes = device.transfers().d2h_bytes;
  report.cache = cache.stats();
  report.degraded = cache.degraded();
  report.device_leak_bytes = device.hbm().used() + device.hbm().staging();
  report.host_leak_bytes = host.pool().used() + host.pool().staging();

  metrics.counter("serve.sessions.completed").add(report.completed);
  metrics.counter("serve.sessions.rejected").add(report.rejected);
  metrics.counter("serve.tokens.prefill").add(report.prefill_tokens);
  metrics.counter("serve.tokens.decoded").add(report.decoded_tokens);
  metrics.counter("serve.kv.evictions").add(report.cache.evictions);
  metrics.counter("serve.kv.fetch_bytes").add(report.cache.fetch_bytes);
  metrics.counter("serve.faults.oom_retries").add(report.cache.oom_retries);
  metrics.gauge("serve.tokens_per_s").set(report.tokens_per_s);
  return report;
}

std::string ServeReport::table() const {
  TextTable t({"metric", "value"});
  t.add_row({"sessions", std::to_string(sessions)});
  t.add_row({"completed", std::to_string(completed)});
  t.add_row({"rejected", std::to_string(rejected)});
  t.add_row({"prefill tokens", format_token_count(prefill_tokens)});
  t.add_row({"decoded tokens", std::to_string(decoded_tokens)});
  t.add_row({"makespan", format_seconds(makespan_s)});
  t.add_row({"tokens/s", cell_f1(tokens_per_s)});
  t.add_row({"ttft p50", format_seconds(ttft_p50_s)});
  t.add_row({"ttft p99", format_seconds(ttft_p99_s)});
  t.add_row({"token latency p50", format_seconds(token_p50_s)});
  t.add_row({"token latency p99", format_seconds(token_p99_s)});
  t.add_row({"hbm peak", format_bytes(hbm_peak_bytes)});
  t.add_row({"host peak", format_bytes(host_peak_bytes)});
  t.add_row({"kv pages", std::to_string(cache.pages_allocated)});
  t.add_row({"evictions", std::to_string(cache.evictions)});
  t.add_row({"page fetches", std::to_string(cache.fetches)});
  t.add_row({"gather fetch bytes", format_bytes(cache.fetch_bytes)});
  t.add_row({"oom events", std::to_string(cache.oom_events)});
  t.add_row({"h2d bytes", format_bytes(h2d_bytes)});
  t.add_row({"d2h bytes", format_bytes(d2h_bytes)});
  t.add_row({"transfer overlap", cell_pct(timeline.overlap_ratio())});
  t.add_row({"degraded", degraded ? "yes" : "no"});
  std::ostringstream os;
  t.print(os);
  return os.str();
}

std::string ServeReport::summary() const {
  std::ostringstream os;
  os << "serve: ttft p50 " << format_seconds(ttft_p50_s) << " p99 "
     << format_seconds(ttft_p99_s) << " | per-token p50 " << format_seconds(token_p50_s)
     << " p99 " << format_seconds(token_p99_s) << " | " << cell_f1(tokens_per_s)
     << " tokens/s\n";
  os << "serve: completed " << completed << "/" << sessions << " rejected " << rejected
     << " | evictions " << cache.evictions << " fetches " << cache.fetches << " | degraded "
     << (degraded ? "yes" : "no") << "\n";
  if (verified_sessions > 0) {
    os << "serve: verify " << (verify_ok ? "OK" : "FAILED") << " (" << verified_sessions
       << " sessions bitwise vs monolithic)\n";
  }
  os << "serve: kv pools " << ((device_leak_bytes == 0 && host_leak_bytes == 0)
                                   ? "drained to baseline (no leak)"
                                   : "LEAKED " + std::to_string(device_leak_bytes) + " device / " +
                                         std::to_string(host_leak_bytes) + " host bytes");
  return os.str();
}

}  // namespace fpdt::serve
