// Chunked prefill + decode over the paged KV cache.
//
// SessionCompute is the execute-mode model driver of the serving engine: it
// replays nn::InferenceSession::advance call-for-call — norm, QKV
// projection at the chunk's rope offset, ONE online-attention step over the
// full cached prefix, finalize, output projection, FFN — with the cached
// prefix gathered from PagedKvCache pages instead of a monolithic tensor.
//
// The bit-identity contract hangs on that "one step": accumulating
// page-by-page through the online-softmax recurrence would reassociate the
// FP32 sums and drift from the monolithic path at the ulp level. Gathering
// the pages into one contiguous copy first (pure memcpy, bit-preserving)
// and then running the same single online_attn_step the monolithic session
// runs makes logits and KV bitwise-identical under both kernel backends —
// which tests/test_serve.cpp asserts with memcmp.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/model.h"
#include "serve/kv_cache.h"

namespace fpdt::serve {

class SessionCompute {
 public:
  SessionCompute(nn::Model& model, PagedKvCache& cache, std::int64_t sid);

  // Runs the next prompt chunk through every layer, appending its K/V to
  // the session's pages. Chunks must be fed in order.
  void prefill_chunk(const std::vector<std::int32_t>& tokens);

  // Final norm over the last chunk's hidden states + LM head; returns the
  // next-token logits [vocab]. Callable once, after the last chunk.
  Tensor finish_prefill();

  // Appends `token` and returns logits for the position after it.
  Tensor decode(std::int32_t token);

  std::int64_t position() const { return position_; }

 private:
  Tensor advance(const std::vector<std::int32_t>& tokens, std::int64_t pos0);

  nn::Model* model_;
  PagedKvCache* cache_;
  std::int64_t sid_;
  std::int64_t position_ = 0;
  Tensor last_hidden_;
  bool finished_prefill_ = false;
};

}  // namespace fpdt::serve
