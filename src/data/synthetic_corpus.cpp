#include "data/synthetic_corpus.h"

#include "common/check.h"

namespace fpdt::data {

SyntheticCorpus::SyntheticCorpus(std::int64_t vocab, std::uint64_t seed)
    : vocab_(vocab), rng_(seed) {
  FPDT_CHECK_GE(vocab, 4) << " corpus vocab";
  transition_.resize(static_cast<std::size_t>(vocab));
  for (std::int64_t t = 0; t < vocab; ++t) {
    transition_[static_cast<std::size_t>(t)] =
        static_cast<std::int32_t>(rng_.next_below(static_cast<std::uint64_t>(vocab)));
  }
  current_ = static_cast<std::int32_t>(rng_.next_below(static_cast<std::uint64_t>(vocab)));
}

std::int32_t SyntheticCorpus::next_token() {
  // Inside a copy segment: replay history verbatim.
  if (copy_remaining_ > 0 && copy_cursor_ < history_.size()) {
    --copy_remaining_;
    return history_[copy_cursor_++];
  }
  // Occasionally start a copy segment replaying the recent past.
  if (history_.size() > 64 && rng_.next_uniform() < 0.02) {
    copy_remaining_ = 24;
    copy_cursor_ = history_.size() - 48;
    --copy_remaining_;
    return history_[copy_cursor_++];
  }
  // Markov step: 80% follow the preferred successor, else uniform noise.
  if (rng_.next_uniform() < 0.8) {
    current_ = transition_[static_cast<std::size_t>(current_)];
  } else {
    current_ = static_cast<std::int32_t>(rng_.next_below(static_cast<std::uint64_t>(vocab_)));
  }
  return current_;
}

std::vector<std::uint64_t> SyntheticCorpus::save_state() const {
  // Layout: [rng, current, copy_remaining, copy_cursor, |history|, history...].
  std::vector<std::uint64_t> out;
  out.reserve(5 + history_.size());
  out.push_back(rng_.state());
  out.push_back(static_cast<std::uint64_t>(current_));
  out.push_back(static_cast<std::uint64_t>(copy_remaining_));
  out.push_back(static_cast<std::uint64_t>(copy_cursor_));
  out.push_back(static_cast<std::uint64_t>(history_.size()));
  for (std::int32_t tok : history_) out.push_back(static_cast<std::uint64_t>(tok));
  return out;
}

void SyntheticCorpus::load_state(const std::vector<std::uint64_t>& state) {
  FPDT_CHECK_GE(static_cast<std::int64_t>(state.size()), 5) << " corpus state truncated";
  const std::size_t n = static_cast<std::size_t>(state[4]);
  FPDT_CHECK_EQ(static_cast<std::int64_t>(state.size()), static_cast<std::int64_t>(5 + n))
      << " corpus state length";
  rng_.set_state(state[0]);
  current_ = static_cast<std::int32_t>(state[1]);
  copy_remaining_ = static_cast<std::int64_t>(state[2]);
  copy_cursor_ = static_cast<std::size_t>(state[3]);
  history_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    history_[i] = static_cast<std::int32_t>(state[5 + i]);
  }
}

std::vector<std::int32_t> SyntheticCorpus::sample(std::int64_t length) {
  std::vector<std::int32_t> out;
  out.reserve(static_cast<std::size_t>(length));
  for (std::int64_t i = 0; i < length; ++i) {
    const std::int32_t tok = next_token();
    out.push_back(tok);
    history_.push_back(tok);
    if (history_.size() > 4096) history_.erase(history_.begin(), history_.begin() + 2048);
  }
  return out;
}

}  // namespace fpdt::data
