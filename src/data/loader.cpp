#include "data/loader.h"

#include <cmath>

#include "common/check.h"

namespace fpdt::data {

SequenceLoader::SequenceLoader(SyntheticCorpus corpus, std::int64_t seq_len, int holdout_every)
    : corpus_(std::move(corpus)), seq_len_(seq_len), holdout_every_(holdout_every) {
  FPDT_CHECK_GE(seq_len, 2) << " loader sequence length";
  FPDT_CHECK_GE(holdout_every, 0) << " holdout period";
}

std::vector<std::int32_t> SequenceLoader::next_sequence() {
  return corpus_.sample(seq_len_ + 1);
}

std::vector<std::vector<std::int32_t>> SequenceLoader::next_batch(int batch_size) {
  FPDT_CHECK_GE(batch_size, 1) << " batch size";
  std::vector<std::vector<std::int32_t>> batch;
  batch.reserve(static_cast<std::size_t>(batch_size));
  while (static_cast<int>(batch.size()) < batch_size) {
    std::vector<std::int32_t> seq = next_sequence();
    ++produced_;
    if (holdout_every_ > 0 && produced_ % holdout_every_ == 0) {
      holdout_.push_back(std::move(seq));
      continue;
    }
    batch.push_back(std::move(seq));
    ++served_;
  }
  return batch;
}

EvalResult evaluate_perplexity(
    const std::vector<std::vector<std::int32_t>>& sequences,
    const std::function<double(const std::vector<std::int32_t>&)>& eval_loss_fn) {
  EvalResult result;
  if (sequences.empty()) return result;
  double total = 0.0;
  for (const auto& seq : sequences) total += eval_loss_fn(seq);
  result.sequences = static_cast<std::int64_t>(sequences.size());
  result.mean_loss = total / static_cast<double>(result.sequences);
  result.perplexity = std::exp(result.mean_loss);
  return result;
}

}  // namespace fpdt::data
