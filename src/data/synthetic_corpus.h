// Deterministic synthetic corpus for pretraining experiments (Fig. 14).
//
// Real text is irrelevant to a systems paper's convergence claim; what the
// loss curve needs is structure a small LM can learn. The stream mixes:
//  - a first-order Markov chain over the vocabulary (local structure), and
//  - periodic copy segments (an earlier span is repeated verbatim),
//    which reward longer-context attention.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace fpdt::data {

class SyntheticCorpus {
 public:
  SyntheticCorpus(std::int64_t vocab, std::uint64_t seed);

  // Next `length` tokens of the stream (consecutive calls continue it).
  std::vector<std::int32_t> sample(std::int64_t length);

  std::int64_t vocab() const { return vocab_; }

  // Full mutable stream state, flattened for checkpointing: restoring it
  // makes the next sample() bit-identical to the uninterrupted stream. The
  // Markov transition table is excluded — it is a pure function of the
  // constructor seed.
  std::vector<std::uint64_t> save_state() const;
  void load_state(const std::vector<std::uint64_t>& state);

 private:
  std::int32_t next_token();

  std::int64_t vocab_;
  Rng rng_;
  std::vector<std::int32_t> transition_;  // Markov: preferred successor per token
  std::vector<std::int32_t> history_;     // recent emissions for copy segments
  std::int32_t current_ = 0;
  std::int64_t copy_remaining_ = 0;
  std::size_t copy_cursor_ = 0;
};

}  // namespace fpdt::data
