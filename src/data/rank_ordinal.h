// Rank-ordinal sequence sharding (paper Fig. 6).
//
// FPDT gathers the sequence chunk-by-chunk with All2All. If ranks held
// contiguous blocks of the sequence (the plain Ulysses layout), the i-th
// chunked All2All would gather a *strided* set of chunks (e.g. T1, T5, T9,
// T13) and the diagonal causal mask would be wrong. Instead the data loader
// deals global chunk (i·P + r) to rank r as its i-th local chunk; then the
// i-th All2All gathers global chunks [i·P, (i+1)·P) — a contiguous span of
// the sequence — and the standard causal mask stays valid. Labels are
// re-ordered identically so the loss matches ("we shuffle the input token
// ids and labels in the data loader; thus there is no overhead").
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace fpdt::data {

struct RankShard {
  std::vector<std::int32_t> inputs;   // s_local token ids, rank-ordinal order
  std::vector<std::int32_t> labels;   // matching next-token labels
  std::vector<std::int64_t> chunk_pos0;  // global position of each local chunk's first token
};

class RankOrdinalSharder {
 public:
  // world: sequence-parallel group size P; chunks_per_rank: u.
  RankOrdinalSharder(int world, std::int64_t chunks_per_rank);

  int world() const { return world_; }
  std::int64_t chunks_per_rank() const { return chunks_per_rank_; }

  // Global chunk index held by (rank, local_chunk): i·P + r.
  std::int64_t global_chunk(int rank, std::int64_t local_chunk) const;

  // Shards a token stream of length s_global + 1 (the +1 provides the final
  // label) into P rank shards; s_global must divide by P·u.
  std::vector<RankShard> shard_tokens(const std::vector<std::int32_t>& tokens) const;

  // Shards an activation-like tensor [s_global, ...] the same way (used by
  // tests and by executors that start from a full hidden state).
  std::vector<Tensor> shard_tensor(const Tensor& full) const;

  // Inverse of shard_tensor: reassembles per-rank locals into global order.
  Tensor unshard_tensor(const std::vector<Tensor>& locals) const;

 private:
  int world_;
  std::int64_t chunks_per_rank_;
};

}  // namespace fpdt::data
