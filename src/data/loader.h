// Batched sequence loader over a token stream, with a held-out validation
// split and a perplexity evaluator — the data plumbing of a real
// pretraining run.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "data/synthetic_corpus.h"

namespace fpdt::data {

class SequenceLoader {
 public:
  // seq_len: tokens per training sequence (each sample carries seq_len + 1
  // ids for next-token labels). holdout_every: every k-th sequence goes to
  // the validation set instead of training (0 = no validation split).
  SequenceLoader(SyntheticCorpus corpus, std::int64_t seq_len, int holdout_every = 0);

  // Next training batch of `batch_size` sequences.
  std::vector<std::vector<std::int32_t>> next_batch(int batch_size);

  // Validation sequences collected so far (grows as training consumes the
  // stream).
  const std::vector<std::vector<std::int32_t>>& validation_set() const { return holdout_; }

  std::int64_t sequences_served() const { return served_; }
  std::int64_t seq_len() const { return seq_len_; }

 private:
  std::vector<std::int32_t> next_sequence();

  SyntheticCorpus corpus_;
  std::int64_t seq_len_;
  int holdout_every_;
  std::int64_t served_ = 0;
  std::int64_t produced_ = 0;
  std::vector<std::vector<std::int32_t>> holdout_;
};

// Mean loss (nats/token) of `eval_loss_fn` over a validation set; exp() of
// it is the perplexity.
struct EvalResult {
  double mean_loss = 0.0;
  double perplexity = 1.0;
  std::int64_t sequences = 0;
};

EvalResult evaluate_perplexity(
    const std::vector<std::vector<std::int32_t>>& sequences,
    const std::function<double(const std::vector<std::int32_t>&)>& eval_loss_fn);

}  // namespace fpdt::data
