#include "data/needle.h"

#include "common/check.h"

namespace fpdt::data {

NeedleGenerator::NeedleGenerator(std::int64_t vocab, std::uint64_t seed)
    : vocab_(vocab), value_range_(std::max<std::int64_t>(4, (vocab - 2) / 4)), rng_(seed) {
  FPDT_CHECK_GE(vocab, 8) << " needle vocab";
}

void NeedleGenerator::append_episode(std::vector<std::int32_t>& out, std::int64_t episode_len,
                                     bool with_answer) {
  FPDT_CHECK_GE(episode_len, 4) << " episode length";
  const auto value = static_cast<std::int32_t>(
      rng_.next_below(static_cast<std::uint64_t>(value_range_)));
  out.push_back(key_marker());
  out.push_back(value);
  // Filler avoids markers and values so the needle's value is unique.
  for (std::int64_t i = 0; i < episode_len - 4; ++i) {
    out.push_back(static_cast<std::int32_t>(
        value_range_ +
        rng_.next_below(static_cast<std::uint64_t>(vocab_ - 2 - value_range_))));
  }
  out.push_back(query_marker());
  if (with_answer) out.push_back(value);
}

std::vector<std::int32_t> NeedleGenerator::training_sequence(std::int64_t min_episode,
                                                             std::int64_t max_episode,
                                                             int episodes) {
  FPDT_CHECK(min_episode >= 4 && min_episode <= max_episode) << " episode length range";
  FPDT_CHECK_GE(episodes, 1) << " episode count";
  std::vector<std::int32_t> out;
  for (int e = 0; e < episodes; ++e) {
    const std::int64_t len =
        min_episode + static_cast<std::int64_t>(rng_.next_below(
                          static_cast<std::uint64_t>(max_episode - min_episode + 1)));
    append_episode(out, len, /*with_answer=*/true);
  }
  return out;
}

NeedleSample NeedleGenerator::sample(std::int64_t distance) {
  FPDT_CHECK_GE(distance, 2) << " needle distance";
  NeedleSample s;
  s.distance = distance;
  append_episode(s.tokens, distance + 2, /*with_answer=*/false);
  // The value is the token right after the KEY marker.
  s.answer = s.tokens[1];
  return s;
}

}  // namespace fpdt::data
