// Needle-in-a-haystack retrieval data — the functional probe of long-context
// *capability* (the property the paper's introduction motivates: models must
// be trained on the desired long context lengths to use them).
//
// Episodic format. Each episode of length e is
//     KEY value filler... QUERY value
// so "at QUERY, recall the value that followed the most recent KEY" is
// supervised once per episode; several episodes per training sequence give
// dense signal. The probe is a single episode of length d+2: answering
// requires attending across distance ~d. A model trained on episodes up to
// length L answers reliably for d <= L and collapses beyond — the
// train-on-the-target-context-length effect (validated end-to-end in
// tests/test_needle.cpp and examples/needle_eval.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace fpdt::data {

struct NeedleSample {
  std::vector<std::int32_t> tokens;  // single episode, ends with the QUERY marker
  std::int32_t answer = 0;           // expected next token
  std::int64_t distance = 0;         // KEY-to-QUERY distance
};

class NeedleGenerator {
 public:
  // Vocabulary layout: [0, value_range) values, [value_range, vocab-2)
  // filler, vocab-2 = KEY marker, vocab-1 = QUERY marker.
  NeedleGenerator(std::int64_t vocab, std::uint64_t seed);

  // Training sequence: `episodes` episodes whose lengths are uniform in
  // [min_episode, max_episode]. Total length varies; every episode ends
  // with a supervised (QUERY -> value) position.
  std::vector<std::int32_t> training_sequence(std::int64_t min_episode,
                                              std::int64_t max_episode, int episodes);

  // Probe: one episode with KEY..QUERY distance exactly `distance`
  // (episode length distance + 2); tokens end at the QUERY marker.
  NeedleSample sample(std::int64_t distance);

  std::int32_t key_marker() const { return static_cast<std::int32_t>(vocab_ - 2); }
  std::int32_t query_marker() const { return static_cast<std::int32_t>(vocab_ - 1); }
  std::int64_t value_range() const { return value_range_; }

 private:
  void append_episode(std::vector<std::int32_t>& out, std::int64_t episode_len,
                      bool with_answer);

  std::int64_t vocab_;
  std::int64_t value_range_;
  Rng rng_;
};

}  // namespace fpdt::data
