#include "data/rank_ordinal.h"

#include "common/check.h"

namespace fpdt::data {

RankOrdinalSharder::RankOrdinalSharder(int world, std::int64_t chunks_per_rank)
    : world_(world), chunks_per_rank_(chunks_per_rank) {
  FPDT_CHECK_GE(world, 1) << " sharder world";
  FPDT_CHECK_GE(chunks_per_rank, 1) << " sharder chunks";
}

std::int64_t RankOrdinalSharder::global_chunk(int rank, std::int64_t local_chunk) const {
  FPDT_CHECK(rank >= 0 && rank < world_) << " rank " << rank;
  FPDT_CHECK(local_chunk >= 0 && local_chunk < chunks_per_rank_) << " chunk " << local_chunk;
  return local_chunk * world_ + rank;
}

std::vector<RankShard> RankOrdinalSharder::shard_tokens(
    const std::vector<std::int32_t>& tokens) const {
  const std::int64_t s_global = static_cast<std::int64_t>(tokens.size()) - 1;
  const std::int64_t total_chunks = static_cast<std::int64_t>(world_) * chunks_per_rank_;
  FPDT_CHECK_GT(s_global, 0) << " need tokens";
  FPDT_CHECK_EQ(s_global % total_chunks, 0)
      << " sequence " << s_global << " not divisible into " << total_chunks << " chunks";
  const std::int64_t c = s_global / total_chunks;

  std::vector<RankShard> shards(static_cast<std::size_t>(world_));
  for (int r = 0; r < world_; ++r) {
    RankShard& shard = shards[static_cast<std::size_t>(r)];
    shard.inputs.reserve(static_cast<std::size_t>(chunks_per_rank_ * c));
    shard.labels.reserve(static_cast<std::size_t>(chunks_per_rank_ * c));
    for (std::int64_t i = 0; i < chunks_per_rank_; ++i) {
      const std::int64_t g = global_chunk(r, i);
      const std::int64_t pos0 = g * c;
      shard.chunk_pos0.push_back(pos0);
      for (std::int64_t t = 0; t < c; ++t) {
        shard.inputs.push_back(tokens[static_cast<std::size_t>(pos0 + t)]);
        shard.labels.push_back(tokens[static_cast<std::size_t>(pos0 + t + 1)]);
      }
    }
  }
  return shards;
}

std::vector<Tensor> RankOrdinalSharder::shard_tensor(const Tensor& full) const {
  const std::int64_t s_global = full.dim(0);
  const std::int64_t total_chunks = static_cast<std::int64_t>(world_) * chunks_per_rank_;
  FPDT_CHECK_EQ(s_global % total_chunks, 0) << " shard_tensor divisibility";
  const std::int64_t c = s_global / total_chunks;
  std::vector<Tensor> locals;
  locals.reserve(static_cast<std::size_t>(world_));
  for (int r = 0; r < world_; ++r) {
    std::vector<Tensor> pieces;
    pieces.reserve(static_cast<std::size_t>(chunks_per_rank_));
    for (std::int64_t i = 0; i < chunks_per_rank_; ++i) {
      const std::int64_t g = global_chunk(r, i);
      pieces.push_back(full.slice0(g * c, (g + 1) * c));
    }
    locals.push_back(concat0(pieces));
  }
  return locals;
}

Tensor RankOrdinalSharder::unshard_tensor(const std::vector<Tensor>& locals) const {
  FPDT_CHECK_EQ(static_cast<int>(locals.size()), world_) << " unshard rank count";
  const std::int64_t s_local = locals[0].dim(0);
  FPDT_CHECK_EQ(s_local % chunks_per_rank_, 0) << " unshard divisibility";
  const std::int64_t c = s_local / chunks_per_rank_;
  std::vector<std::int64_t> out_shape = locals[0].shape();
  out_shape[0] = s_local * world_;
  Tensor full(out_shape);
  for (int r = 0; r < world_; ++r) {
    for (std::int64_t i = 0; i < chunks_per_rank_; ++i) {
      const std::int64_t g = global_chunk(r, i);
      full.slice0(g * c, (g + 1) * c)
          .copy_from(locals[static_cast<std::size_t>(r)].slice0(i * c, (i + 1) * c));
    }
  }
  return full;
}

}  // namespace fpdt::data
