// Dense FP32 tensor used by the functional (numerically exact) layer of the
// reproduction.
//
// Design notes:
//  - Storage is shared (std::shared_ptr) so slicing along the leading
//    dimension yields zero-copy views — the operation FPDT performs
//    constantly when splitting sequences into chunks.
//  - All tensors are contiguous row-major. Views are only created along
//    dim 0, which preserves contiguity; every other re-layout is an explicit
//    copy (permute/narrow), mirroring how real GPU kernels materialise
//    transposed buffers.
//  - FP32 everywhere: the paper trains in BF16, but precision is irrelevant
//    to the algorithmic claims we validate; byte accounting for BF16 lives
//    in the memory model (perfmodel/), not here.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace fpdt {

class Tensor {
 public:
  // Default-constructed tensor is "undefined": no storage, 0 dims.
  Tensor() = default;

  // Zero-initialised tensor of the given shape.
  explicit Tensor(std::vector<std::int64_t> shape);

  static Tensor zeros(std::vector<std::int64_t> shape);
  static Tensor full(std::vector<std::int64_t> shape, float value);
  static Tensor randn(std::vector<std::int64_t> shape, Rng& rng, double mean = 0.0,
                      double stddev = 1.0);
  static Tensor uniform(std::vector<std::int64_t> shape, Rng& rng, double lo, double hi);
  static Tensor from_values(std::vector<std::int64_t> shape, std::vector<float> values);

  bool defined() const { return storage_ != nullptr; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  std::int64_t dim(int i) const;
  const std::vector<std::int64_t>& shape() const { return shape_; }
  std::int64_t numel() const { return numel_; }
  std::int64_t size_bytes() const { return numel_ * static_cast<std::int64_t>(sizeof(float)); }

  float* data();
  const float* data() const;
  std::span<float> span() { return {data(), static_cast<std::size_t>(numel_)}; }
  std::span<const float> span() const { return {data(), static_cast<std::size_t>(numel_)}; }

  // Multi-index accessors; slow, intended for tests and small setups.
  float& at(std::initializer_list<std::int64_t> idx);
  float at(std::initializer_list<std::int64_t> idx) const;

  // Deep copy with fresh storage.
  Tensor clone() const;

  // View with a new shape over the same storage (numel must match).
  Tensor reshape(std::vector<std::int64_t> new_shape) const;

  // Zero-copy view of rows [begin, end) along dim 0.
  Tensor slice0(std::int64_t begin, std::int64_t end) const;

  // Zero-copy view of row `index` along dim 0 (rank reduced by one).
  Tensor select0(std::int64_t index) const;

  // Copying narrow along an arbitrary dim.
  Tensor narrow(int dim, std::int64_t start, std::int64_t length) const;

  // Copying axis permutation; perm is a permutation of [0, ndim).
  Tensor permute(const std::vector<int>& perm) const;

  void fill_(float value);
  void zero_() { fill_(0.0f); }
  void copy_from(const Tensor& src);

  std::string shape_str() const;

  // True when the two tensors alias the same storage bytes (used by tests
  // verifying zero-copy slicing).
  bool shares_storage_with(const Tensor& other) const { return storage_ == other.storage_; }

 private:
  Tensor(std::shared_ptr<std::vector<float>> storage, std::int64_t offset,
         std::vector<std::int64_t> shape);

  static std::int64_t shape_numel(const std::vector<std::int64_t>& shape);

  std::shared_ptr<std::vector<float>> storage_;
  std::int64_t offset_ = 0;
  std::vector<std::int64_t> shape_;
  std::int64_t numel_ = 0;
};

// ---- Elementwise / BLAS-ish free functions -------------------------------

// C = A · B. Either both operands carry identical leading batch dims over
// matrices [m,k]·[k,n], or B is 2-D and broadcast over A's batch dims.
Tensor matmul(const Tensor& a, const Tensor& b);

// C = A · Bᵀ for 2-D A [m,k], B [n,k]. Cache-friendly form used by q·kᵀ.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

// C = Aᵀ · B for 2-D A [k,m], B [k,n]. Used for weight gradients.
Tensor matmul_tn(const Tensor& a, const Tensor& b);

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor mul_scalar(const Tensor& a, float s);
void add_(Tensor& a, const Tensor& b);          // a += b
void axpy_(Tensor& a, float s, const Tensor& b);  // a += s * b
void scale_(Tensor& a, float s);

// Adds row-broadcast bias: x [.., n] += bias [n].
void add_bias_(Tensor& x, const Tensor& bias);

// Treats x as [rows, cols] with cols = last dim.
Tensor row_max(const Tensor& x);
Tensor row_sum(const Tensor& x);
void softmax_rows_(Tensor& x);

Tensor transpose_last2(const Tensor& x);

Tensor concat0(std::span<const Tensor> parts);

double max_abs_diff(const Tensor& a, const Tensor& b);
double l2_norm(const Tensor& a);
double mean_value(const Tensor& a);

// True if every element of |a - b| <= atol + rtol * |b|.
bool allclose(const Tensor& a, const Tensor& b, double rtol = 1e-5, double atol = 1e-6);

}  // namespace fpdt
