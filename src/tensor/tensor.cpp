#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "kernels/backend.h"

namespace fpdt {

std::int64_t Tensor::shape_numel(const std::vector<std::int64_t>& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    FPDT_CHECK_GE(d, 0) << " negative dim";
    n *= d;
  }
  return n;
}

Tensor::Tensor(std::vector<std::int64_t> shape)
    : shape_(std::move(shape)), numel_(shape_numel(shape_)) {
  storage_ = std::make_shared<std::vector<float>>(static_cast<std::size_t>(numel_), 0.0f);
}

Tensor::Tensor(std::shared_ptr<std::vector<float>> storage, std::int64_t offset,
               std::vector<std::int64_t> shape)
    : storage_(std::move(storage)),
      offset_(offset),
      shape_(std::move(shape)),
      numel_(shape_numel(shape_)) {
  FPDT_CHECK_LE(offset_ + numel_, static_cast<std::int64_t>(storage_->size()))
      << " view out of bounds";
}

Tensor Tensor::zeros(std::vector<std::int64_t> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(std::vector<std::int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill_(value);
  return t;
}

Tensor Tensor::randn(std::vector<std::int64_t> shape, Rng& rng, double mean, double stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.span()) v = static_cast<float>(rng.next_normal(mean, stddev));
  return t;
}

Tensor Tensor::uniform(std::vector<std::int64_t> shape, Rng& rng, double lo, double hi) {
  Tensor t(std::move(shape));
  for (float& v : t.span()) v = static_cast<float>(rng.next_uniform(lo, hi));
  return t;
}

Tensor Tensor::from_values(std::vector<std::int64_t> shape, std::vector<float> values) {
  std::int64_t n = shape_numel(shape);
  FPDT_CHECK_EQ(n, static_cast<std::int64_t>(values.size())) << " from_values size mismatch";
  Tensor t;
  t.storage_ = std::make_shared<std::vector<float>>(std::move(values));
  t.offset_ = 0;
  t.shape_ = std::move(shape);
  t.numel_ = n;
  return t;
}

std::int64_t Tensor::dim(int i) const {
  if (i < 0) i += ndim();
  FPDT_CHECK(i >= 0 && i < ndim()) << " dim index " << i << " for " << shape_str();
  return shape_[static_cast<std::size_t>(i)];
}

float* Tensor::data() {
  FPDT_CHECK(defined()) << " data() on undefined tensor";
  return storage_->data() + offset_;
}

const float* Tensor::data() const {
  FPDT_CHECK(defined()) << " data() on undefined tensor";
  return storage_->data() + offset_;
}

namespace {

std::int64_t flat_index(const std::vector<std::int64_t>& shape,
                        std::initializer_list<std::int64_t> idx, const Tensor& t) {
  FPDT_CHECK_EQ(idx.size(), shape.size()) << " at() rank mismatch";
  std::int64_t flat = 0;
  std::size_t i = 0;
  for (std::int64_t ix : idx) {
    FPDT_CHECK(ix >= 0 && ix < shape[i])
        << " index " << ix << " out of bounds at dim " << i << " of " << t.shape_str();
    flat = flat * shape[i] + ix;
    ++i;
  }
  return flat;
}

}  // namespace

float& Tensor::at(std::initializer_list<std::int64_t> idx) {
  return data()[flat_index(shape_, idx, *this)];
}

float Tensor::at(std::initializer_list<std::int64_t> idx) const {
  return data()[flat_index(shape_, idx, *this)];
}

Tensor Tensor::clone() const {
  Tensor t(shape_);
  std::memcpy(t.data(), data(), static_cast<std::size_t>(numel_) * sizeof(float));
  return t;
}

Tensor Tensor::reshape(std::vector<std::int64_t> new_shape) const {
  FPDT_CHECK_EQ(shape_numel(new_shape), numel_)
      << " reshape " << shape_str() << " numel mismatch";
  return Tensor(storage_, offset_, std::move(new_shape));
}

Tensor Tensor::slice0(std::int64_t begin, std::int64_t end) const {
  FPDT_CHECK(ndim() >= 1) << " slice0 on scalar";
  FPDT_CHECK(begin >= 0 && begin <= end && end <= shape_[0])
      << " slice0 [" << begin << "," << end << ") of " << shape_str();
  std::int64_t row = numel_ / std::max<std::int64_t>(shape_[0], 1);
  std::vector<std::int64_t> s = shape_;
  s[0] = end - begin;
  return Tensor(storage_, offset_ + begin * row, std::move(s));
}

Tensor Tensor::select0(std::int64_t index) const {
  Tensor v = slice0(index, index + 1);
  std::vector<std::int64_t> s(shape_.begin() + 1, shape_.end());
  return v.reshape(std::move(s));
}

Tensor Tensor::narrow(int d, std::int64_t start, std::int64_t length) const {
  if (d < 0) d += ndim();
  FPDT_CHECK(d >= 0 && d < ndim()) << " narrow dim";
  FPDT_CHECK(start >= 0 && start + length <= shape_[static_cast<std::size_t>(d)])
      << " narrow range [" << start << "," << start + length << ") of " << shape_str();
  std::vector<std::int64_t> out_shape = shape_;
  out_shape[static_cast<std::size_t>(d)] = length;
  Tensor out(out_shape);
  std::int64_t outer = 1;
  for (int i = 0; i < d; ++i) outer *= shape_[static_cast<std::size_t>(i)];
  std::int64_t inner = 1;
  for (int i = d + 1; i < ndim(); ++i) inner *= shape_[static_cast<std::size_t>(i)];
  const std::int64_t src_mid = shape_[static_cast<std::size_t>(d)];
  const float* src = data();
  float* dst = out.data();
  for (std::int64_t o = 0; o < outer; ++o) {
    std::memcpy(dst + o * length * inner, src + (o * src_mid + start) * inner,
                static_cast<std::size_t>(length * inner) * sizeof(float));
  }
  return out;
}

Tensor Tensor::permute(const std::vector<int>& perm) const {
  FPDT_CHECK_EQ(static_cast<int>(perm.size()), ndim()) << " permute rank";
  std::vector<std::int64_t> out_shape(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    out_shape[i] = shape_[static_cast<std::size_t>(perm[i])];
  }
  Tensor out(out_shape);
  // Strides of the source, then walk the destination in order.
  std::vector<std::int64_t> src_strides(static_cast<std::size_t>(ndim()), 1);
  for (int i = ndim() - 2; i >= 0; --i) {
    src_strides[static_cast<std::size_t>(i)] =
        src_strides[static_cast<std::size_t>(i + 1)] * shape_[static_cast<std::size_t>(i + 1)];
  }
  std::vector<std::int64_t> idx(perm.size(), 0);
  const float* src = data();
  float* dst = out.data();
  for (std::int64_t flat = 0; flat < numel_; ++flat) {
    std::int64_t src_flat = 0;
    for (std::size_t i = 0; i < perm.size(); ++i) {
      src_flat += idx[i] * src_strides[static_cast<std::size_t>(perm[i])];
    }
    dst[flat] = src[src_flat];
    for (int i = static_cast<int>(perm.size()) - 1; i >= 0; --i) {
      if (++idx[static_cast<std::size_t>(i)] < out_shape[static_cast<std::size_t>(i)]) break;
      idx[static_cast<std::size_t>(i)] = 0;
    }
  }
  return out;
}

void Tensor::fill_(float value) {
  for (float& v : span()) v = value;
}

void Tensor::copy_from(const Tensor& src) {
  FPDT_CHECK_EQ(numel_, src.numel()) << " copy_from size mismatch";
  std::memcpy(data(), src.data(), static_cast<std::size_t>(numel_) * sizeof(float));
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) os << (i ? "," : "") << shape_[i];
  os << "]";
  return os.str();
}

// ---- free functions -------------------------------------------------------

namespace {

// Core 2-D GEMM: C[m,n] += A[m,k] · B[k,n], dispatched through the active
// kernel backend (kernels/backend.h).
void gemm_nn_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                 std::int64_t n) {
  kernels::active().gemm_nn_acc(a, b, c, m, k, n);
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  FPDT_CHECK(a.ndim() >= 2 && b.ndim() >= 2) << " matmul rank";
  const std::int64_t m = a.dim(-2);
  const std::int64_t k = a.dim(-1);
  if (b.ndim() == 2) {
    FPDT_CHECK_EQ(k, b.dim(0)) << " matmul inner dim " << a.shape_str() << " x " << b.shape_str();
    const std::int64_t n = b.dim(1);
    const std::int64_t batch = a.numel() / (m * k);
    std::vector<std::int64_t> out_shape = a.shape();
    out_shape.back() = n;
    Tensor out(out_shape);
    // Flatten batch into rows: [batch*m, k] x [k, n].
    gemm_nn_acc(a.data(), b.data(), out.data(), batch * m, k, n);
    return out;
  }
  FPDT_CHECK_EQ(a.ndim(), b.ndim()) << " matmul batch rank";
  for (int i = 0; i < a.ndim() - 2; ++i) {
    FPDT_CHECK_EQ(a.dim(i), b.dim(i)) << " matmul batch dim " << i;
  }
  FPDT_CHECK_EQ(k, b.dim(-2)) << " matmul inner dim";
  const std::int64_t n = b.dim(-1);
  const std::int64_t batch = a.numel() / (m * k);
  std::vector<std::int64_t> out_shape = a.shape();
  out_shape.back() = n;
  Tensor out(out_shape);
  for (std::int64_t bi = 0; bi < batch; ++bi) {
    gemm_nn_acc(a.data() + bi * m * k, b.data() + bi * k * n, out.data() + bi * m * n, m, k, n);
  }
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  FPDT_CHECK(a.ndim() == 2 && b.ndim() == 2) << " matmul_nt expects 2-D";
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  FPDT_CHECK_EQ(k, b.dim(1)) << " matmul_nt inner dim";
  const std::int64_t n = b.dim(0);
  Tensor out({m, n});
  kernels::active().gemm_nt(a.data(), b.data(), out.data(), m, k, n);
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  FPDT_CHECK(a.ndim() == 2 && b.ndim() == 2) << " matmul_tn expects 2-D";
  const std::int64_t k = a.dim(0);
  const std::int64_t m = a.dim(1);
  FPDT_CHECK_EQ(k, b.dim(0)) << " matmul_tn inner dim";
  const std::int64_t n = b.dim(1);
  Tensor out({m, n});
  // Accumulates rank-1 updates into the zero-initialised output. The seed
  // skipped updates whose A element was exactly 0.0f; that silently dropped
  // IEEE non-finite propagation (0 · Inf must be NaN), so the backends
  // apply every update — bit-identical for finite operands.
  kernels::active().gemm_tn_acc(a.data(), b.data(), out.data(), k, m, n);
  return out;
}

namespace {

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  FPDT_CHECK(a.shape() == b.shape())
      << " " << op << " shape mismatch " << a.shape_str() << " vs " << b.shape_str();
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out = a.clone();
  add_(out, b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out = a.clone();
  float* o = out.data();
  const float* bd = b.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) o[i] -= bd[i];
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out = a.clone();
  float* o = out.data();
  const float* bd = b.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) o[i] *= bd[i];
  return out;
}

Tensor mul_scalar(const Tensor& a, float s) {
  Tensor out = a.clone();
  scale_(out, s);
  return out;
}

void add_(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_");
  float* ad = a.data();
  const float* bd = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) ad[i] += bd[i];
}

void axpy_(Tensor& a, float s, const Tensor& b) {
  check_same_shape(a, b, "axpy_");
  float* ad = a.data();
  const float* bd = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) ad[i] += s * bd[i];
}

void scale_(Tensor& a, float s) {
  for (float& v : a.span()) v *= s;
}

void add_bias_(Tensor& x, const Tensor& bias) {
  FPDT_CHECK_EQ(bias.ndim(), 1) << " bias must be 1-D";
  const std::int64_t n = bias.dim(0);
  FPDT_CHECK_EQ(x.dim(-1), n) << " bias width";
  const std::int64_t rows = x.numel() / n;
  float* xd = x.data();
  const float* bd = bias.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = xd + r * n;
    for (std::int64_t j = 0; j < n; ++j) row[j] += bd[j];
  }
}

Tensor row_max(const Tensor& x) {
  const std::int64_t cols = x.dim(-1);
  const std::int64_t rows = x.numel() / cols;
  Tensor out({rows});
  const float* xd = x.data();
  float* od = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    float m = xd[r * cols];
    for (std::int64_t j = 1; j < cols; ++j) m = std::max(m, xd[r * cols + j]);
    od[r] = m;
  }
  return out;
}

Tensor row_sum(const Tensor& x) {
  const std::int64_t cols = x.dim(-1);
  const std::int64_t rows = x.numel() / cols;
  Tensor out({rows});
  const float* xd = x.data();
  float* od = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    float s = 0.0f;
    for (std::int64_t j = 0; j < cols; ++j) s += xd[r * cols + j];
    od[r] = s;
  }
  return out;
}

void softmax_rows_(Tensor& x) {
  const std::int64_t cols = x.dim(-1);
  const std::int64_t rows = x.numel() / cols;
  kernels::active().softmax_rows(x.data(), rows, cols);
}

Tensor transpose_last2(const Tensor& x) {
  FPDT_CHECK(x.ndim() >= 2) << " transpose_last2 rank";
  std::vector<int> perm(static_cast<std::size_t>(x.ndim()));
  for (int i = 0; i < x.ndim(); ++i) perm[static_cast<std::size_t>(i)] = i;
  std::swap(perm[static_cast<std::size_t>(x.ndim() - 1)],
            perm[static_cast<std::size_t>(x.ndim() - 2)]);
  return x.permute(perm);
}

Tensor concat0(std::span<const Tensor> parts) {
  FPDT_CHECK(!parts.empty()) << " concat0 of nothing";
  std::vector<std::int64_t> shape = parts[0].shape();
  std::int64_t total0 = 0;
  for (const Tensor& t : parts) {
    FPDT_CHECK_EQ(t.ndim(), parts[0].ndim()) << " concat0 rank";
    for (int i = 1; i < t.ndim(); ++i) FPDT_CHECK_EQ(t.dim(i), parts[0].dim(i)) << " concat0 dim";
    total0 += t.dim(0);
  }
  shape[0] = total0;
  Tensor out(shape);
  std::int64_t row = 0;
  for (const Tensor& t : parts) {
    out.slice0(row, row + t.dim(0)).copy_from(t);
    row += t.dim(0);
  }
  return out;
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "max_abs_diff");
  double m = 0.0;
  const float* ad = a.data();
  const float* bd = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(ad[i]) - static_cast<double>(bd[i])));
  }
  return m;
}

double l2_norm(const Tensor& a) {
  double s = 0.0;
  for (float v : a.span()) s += static_cast<double>(v) * static_cast<double>(v);
  return std::sqrt(s);
}

double mean_value(const Tensor& a) {
  double s = 0.0;
  for (float v : a.span()) s += v;
  return a.numel() > 0 ? s / static_cast<double>(a.numel()) : 0.0;
}

bool allclose(const Tensor& a, const Tensor& b, double rtol, double atol) {
  if (a.shape() != b.shape()) return false;
  const float* ad = a.data();
  const float* bd = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const double diff = std::abs(static_cast<double>(ad[i]) - static_cast<double>(bd[i]));
    if (diff > atol + rtol * std::abs(static_cast<double>(bd[i]))) return false;
  }
  return true;
}

}  // namespace fpdt
