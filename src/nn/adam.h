// Adam optimizer with FP32 moment states, matching the paper's memory
// accounting of 12 bytes/param of optimizer state (fp32 master + m + v) on
// top of 2-byte weights/grads. State is keyed by parameter name.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "nn/param.h"
#include "tensor/tensor.h"

namespace fpdt::nn {

class Adam {
 public:
  struct Moments {
    Tensor m;
    Tensor v;
  };

  // weight_decay applies decoupled (AdamW-style) decay: w -= lr * wd * w.
  explicit Adam(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.95, double eps = 1e-8,
                double weight_decay = 0.0);

  // Applies one update to every parameter the walker visits, then zeroes
  // its gradient. `walk` must call the visitor for each Param exactly once.
  void step(const std::function<void(const ParamVisitor&)>& walk);

  std::int64_t step_count() const { return t_; }
  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }

  // Moment slot for `p`, zero-initialized on first touch exactly as step()
  // would — so checkpoint save/restore of a never-stepped optimizer is
  // well-defined and bit-identical to stepping from scratch.
  Moments& ensure_moments(const Param& p);

  const std::unordered_map<std::string, Moments>& state() const { return state_; }

  // Rewinds/advances the bias-correction counter; checkpoint restore only.
  void set_step_count(std::int64_t t) { t_ = t; }

 private:
  double lr_, beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
  std::unordered_map<std::string, Moments> state_;
};

}  // namespace fpdt::nn
