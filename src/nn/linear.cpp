#include "nn/linear.h"

#include <cmath>

#include "common/check.h"

namespace fpdt::nn {

Linear::Linear(std::string name, std::int64_t in_features, std::int64_t out_features,
               bool has_bias, Rng& rng)
    : has_bias_(has_bias) {
  const double stddev = 1.0 / std::sqrt(static_cast<double>(in_features));
  weight_ = Param(name + ".weight",
                  Tensor::randn({out_features, in_features}, rng, 0.0, stddev));
  if (has_bias_) {
    bias_ = Param(name + ".bias", Tensor::zeros({out_features}));
  }
}

Tensor Linear::forward(const Tensor& x) const {
  const std::int64_t in = weight_.value.dim(1);
  FPDT_CHECK_EQ(x.dim(-1), in) << " linear input width";
  const std::int64_t rows = x.numel() / in;
  Tensor x2d = x.reshape({rows, in});
  Tensor y2d = matmul_nt(x2d, weight_.value);  // [rows, out]
  if (has_bias_) add_bias_(y2d, bias_.value);
  std::vector<std::int64_t> out_shape = x.shape();
  out_shape.back() = weight_.value.dim(0);
  return y2d.reshape(std::move(out_shape));
}

Tensor Linear::backward(const Tensor& dy, const Tensor& x) {
  const std::int64_t in = weight_.value.dim(1);
  const std::int64_t out = weight_.value.dim(0);
  const std::int64_t rows = dy.numel() / out;
  FPDT_CHECK_EQ(x.numel() / in, rows) << " linear backward rows";
  Tensor dy2d = dy.reshape({rows, out});
  Tensor x2d = x.reshape({rows, in});
  // dW [out, in] += dyᵀ · x
  Tensor dw = matmul_tn(dy2d, x2d);
  add_(weight_.grad, dw);
  if (has_bias_) {
    const float* dp = dy2d.data();
    float* bg = bias_.grad.data();
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t j = 0; j < out; ++j) bg[j] += dp[r * out + j];
    }
  }
  return backward_input_only(dy);
}

Tensor Linear::backward_input_only(const Tensor& dy) const {
  const std::int64_t out = weight_.value.dim(0);
  const std::int64_t rows = dy.numel() / out;
  Tensor dy2d = dy.reshape({rows, out});
  Tensor dx2d = matmul(dy2d, weight_.value);  // [rows, in]
  std::vector<std::int64_t> in_shape = dy.shape();
  in_shape.back() = weight_.value.dim(1);
  return dx2d.reshape(std::move(in_shape));
}

}  // namespace fpdt::nn
