#include "nn/attention.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "kernels/backend.h"

namespace fpdt::nn {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

kernels::AttnDims check_dims(const Tensor& q, const Tensor& k, const Tensor& v) {
  FPDT_CHECK(q.ndim() == 3 && k.ndim() == 3 && v.ndim() == 3) << " attention expects [s,h,d]";
  kernels::AttnDims dm{};
  dm.sq = q.dim(0);
  dm.h = q.dim(1);
  dm.d = q.dim(2);
  dm.sk = k.dim(0);
  dm.hk = k.dim(1);
  FPDT_CHECK_EQ(k.dim(2), dm.d) << " k head dim";
  FPDT_CHECK(v.dim(0) == dm.sk && v.dim(1) == dm.hk && v.dim(2) == dm.d)
      << " v shape " << v.shape_str();
  FPDT_CHECK_EQ(dm.h % dm.hk, 0) << " GQA head grouping";
  dm.group = dm.h / dm.hk;
  return dm;
}

}  // namespace

AttentionOutput reference_attention_forward(const Tensor& q, const Tensor& k, const Tensor& v,
                                            bool causal, std::int64_t q_pos0,
                                            std::int64_t k_pos0) {
  const kernels::AttnDims dm = check_dims(q, k, v);
  AttentionOutput result;
  result.out = Tensor({dm.sq, dm.h, dm.d});
  result.lse = Tensor({dm.sq, dm.h});
  // A fully causally-masked query row (a KV chunk entirely in its future —
  // legitimate under chunked prefill) comes back as a zero output row with
  // lse = -inf, the online-softmax identity element.
  kernels::active().attn_forward(q.data(), k.data(), v.data(), result.out.data(),
                                 result.lse.data(), dm, causal, q_pos0, k_pos0);
  return result;
}

AttentionGrads reference_attention_backward(const Tensor& dout, const Tensor& q, const Tensor& k,
                                            const Tensor& v, const Tensor& out, bool causal,
                                            std::int64_t q_pos0, std::int64_t k_pos0) {
  // The reference backward is expressed through the same pairwise primitive
  // as the chunked path, with one all-covering chunk; correctness of the
  // primitive itself is established against finite differences in tests.
  check_dims(q, k, v);
  AttentionGrads g;
  g.dq = Tensor::zeros(q.shape());
  g.dk = Tensor::zeros(k.shape());
  g.dv = Tensor::zeros(v.shape());
  // Recover lse by re-running forward (cheap relative to clarity here; the
  // production paths always carry the saved lse).
  AttentionOutput fwd = reference_attention_forward(q, k, v, causal, q_pos0, k_pos0);
  Tensor D = online_attn_backward_D(out, dout);
  online_attn_backward_step(q, k, v, dout, fwd.lse, D, causal, q_pos0, k_pos0, g.dq, g.dk, g.dv);
  return g;
}

OnlineAttnState OnlineAttnState::create(std::int64_t sq, std::int64_t h, std::int64_t d) {
  OnlineAttnState st;
  st.acc = Tensor::zeros({sq, h, d});
  st.m = Tensor::full({sq, h}, kNegInf);
  st.l = Tensor::zeros({sq, h});
  return st;
}

void online_attn_step(OnlineAttnState& state, const Tensor& q, const Tensor& k, const Tensor& v,
                      bool causal, std::int64_t q_pos0, std::int64_t k_pos0) {
  const kernels::AttnDims dm = check_dims(q, k, v);
  FPDT_CHECK(state.acc.dim(0) == dm.sq && state.acc.dim(1) == dm.h && state.acc.dim(2) == dm.d)
      << " online state shape";
  kernels::active().online_attn_step(state.acc.data(), state.m.data(), state.l.data(), q.data(),
                                     k.data(), v.data(), dm, causal, q_pos0, k_pos0);
}

AttentionOutput online_attn_finalize(const OnlineAttnState& state) {
  const std::int64_t sq = state.acc.dim(0);
  const std::int64_t h = state.acc.dim(1);
  const std::int64_t d = state.acc.dim(2);
  AttentionOutput result;
  result.out = Tensor({sq, h, d});
  result.lse = Tensor({sq, h});
  const float* accp = state.acc.data();
  const float* mp = state.m.data();
  const float* lp = state.l.data();
  float* op = result.out.data();
  float* lsep = result.lse.data();
  for (std::int64_t r = 0; r < sq * h; ++r) {
    const float l = lp[r];
    if (l == 0.0f) {
      // The row attended to nothing across every folded chunk (fully
      // causally masked): emit the online-softmax identity element rather
      // than aborting. A NaN l (from a genuine all--inf logit row) takes
      // the division path below and propagates.
      for (std::int64_t p = 0; p < d; ++p) op[r * d + p] = 0.0f;
      lsep[r] = kNegInf;
      continue;
    }
    const float inv = 1.0f / l;
    for (std::int64_t p = 0; p < d; ++p) op[r * d + p] = accp[r * d + p] * inv;
    lsep[r] = mp[r] + std::log(l);
  }
  return result;
}

Tensor online_attn_backward_D(const Tensor& out, const Tensor& dout) {
  FPDT_CHECK(out.shape() == dout.shape()) << " D shapes";
  const std::int64_t d = out.dim(-1);
  const std::int64_t rows = out.numel() / d;
  Tensor D({out.dim(0), out.dim(1)});
  const float* op = out.data();
  const float* gp = dout.data();
  float* dp = D.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    float acc = 0.0f;
    for (std::int64_t p = 0; p < d; ++p) acc += op[r * d + p] * gp[r * d + p];
    dp[r] = acc;
  }
  return D;
}

void online_attn_backward_step(const Tensor& q, const Tensor& k, const Tensor& v,
                               const Tensor& dout, const Tensor& lse, const Tensor& D,
                               bool causal, std::int64_t q_pos0, std::int64_t k_pos0, Tensor& dq,
                               Tensor& dk, Tensor& dv) {
  const kernels::AttnDims dm = check_dims(q, k, v);
  FPDT_CHECK(dq.shape() == q.shape() && dk.shape() == k.shape() && dv.shape() == v.shape())
      << " backward accumulator shapes";
  kernels::active().online_attn_backward_step(q.data(), k.data(), v.data(), dout.data(),
                                              lse.data(), D.data(), dm, causal, q_pos0, k_pos0,
                                              dq.data(), dk.data(), dv.data());
}

}  // namespace fpdt::nn
