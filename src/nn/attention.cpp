#include "nn/attention.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"

namespace fpdt::nn {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

struct Dims {
  std::int64_t sq, sk, h, hk, d, group;
};

Dims check_dims(const Tensor& q, const Tensor& k, const Tensor& v) {
  FPDT_CHECK(q.ndim() == 3 && k.ndim() == 3 && v.ndim() == 3) << " attention expects [s,h,d]";
  Dims dm{};
  dm.sq = q.dim(0);
  dm.h = q.dim(1);
  dm.d = q.dim(2);
  dm.sk = k.dim(0);
  dm.hk = k.dim(1);
  FPDT_CHECK_EQ(k.dim(2), dm.d) << " k head dim";
  FPDT_CHECK(v.dim(0) == dm.sk && v.dim(1) == dm.hk && v.dim(2) == dm.d)
      << " v shape " << v.shape_str();
  FPDT_CHECK_EQ(dm.h % dm.hk, 0) << " GQA head grouping";
  dm.group = dm.h / dm.hk;
  return dm;
}

// Computes the scaled, masked logits row for query row i / head hd:
// scores[j] = scale * <q_i, k_j> or -inf where masked.
void logits_row(const float* qrow, const Tensor& k, std::int64_t kv_head, float scale,
                bool causal, std::int64_t qpos, std::int64_t k_pos0, std::vector<float>& scores) {
  const std::int64_t sk = k.dim(0);
  const std::int64_t hk = k.dim(1);
  const std::int64_t d = k.dim(2);
  const float* kp = k.data();
  for (std::int64_t j = 0; j < sk; ++j) {
    if (causal && k_pos0 + j > qpos) {
      scores[static_cast<std::size_t>(j)] = kNegInf;
      continue;
    }
    const float* krow = kp + (j * hk + kv_head) * d;
    float acc = 0.0f;
    for (std::int64_t p = 0; p < d; ++p) acc += qrow[p] * krow[p];
    scores[static_cast<std::size_t>(j)] = acc * scale;
  }
}

}  // namespace

AttentionOutput reference_attention_forward(const Tensor& q, const Tensor& k, const Tensor& v,
                                            bool causal, std::int64_t q_pos0,
                                            std::int64_t k_pos0) {
  const Dims dm = check_dims(q, k, v);
  const float scale = 1.0f / std::sqrt(static_cast<float>(dm.d));
  AttentionOutput result;
  result.out = Tensor({dm.sq, dm.h, dm.d});
  result.lse = Tensor({dm.sq, dm.h});
  std::vector<float> scores(static_cast<std::size_t>(dm.sk));
  const float* qp = q.data();
  const float* vp = v.data();
  float* op = result.out.data();
  float* lp = result.lse.data();
  for (std::int64_t hd = 0; hd < dm.h; ++hd) {
    const std::int64_t kv_head = hd / dm.group;
    for (std::int64_t i = 0; i < dm.sq; ++i) {
      const float* qrow = qp + (i * dm.h + hd) * dm.d;
      logits_row(qrow, k, kv_head, scale, causal, q_pos0 + i, k_pos0, scores);
      float m = kNegInf;
      for (std::int64_t j = 0; j < dm.sk; ++j) m = std::max(m, scores[static_cast<std::size_t>(j)]);
      FPDT_CHECK(m != kNegInf) << " fully masked attention row (q " << i << ")";
      float z = 0.0f;
      for (std::int64_t j = 0; j < dm.sk; ++j) {
        float& s = scores[static_cast<std::size_t>(j)];
        s = (s == kNegInf) ? 0.0f : std::exp(s - m);
        z += s;
      }
      float* orow = op + (i * dm.h + hd) * dm.d;
      for (std::int64_t p = 0; p < dm.d; ++p) orow[p] = 0.0f;
      const float inv = 1.0f / z;
      for (std::int64_t j = 0; j < dm.sk; ++j) {
        const float w = scores[static_cast<std::size_t>(j)] * inv;
        if (w == 0.0f) continue;
        const float* vrow = vp + (j * dm.hk + kv_head) * dm.d;
        for (std::int64_t p = 0; p < dm.d; ++p) orow[p] += w * vrow[p];
      }
      lp[i * dm.h + hd] = m + std::log(z);
    }
  }
  return result;
}

AttentionGrads reference_attention_backward(const Tensor& dout, const Tensor& q, const Tensor& k,
                                            const Tensor& v, const Tensor& out, bool causal,
                                            std::int64_t q_pos0, std::int64_t k_pos0) {
  // The reference backward is expressed through the same pairwise primitive
  // as the chunked path, with one all-covering chunk; correctness of the
  // primitive itself is established against finite differences in tests.
  check_dims(q, k, v);
  AttentionGrads g;
  g.dq = Tensor::zeros(q.shape());
  g.dk = Tensor::zeros(k.shape());
  g.dv = Tensor::zeros(v.shape());
  // Recover lse by re-running forward (cheap relative to clarity here; the
  // production paths always carry the saved lse).
  AttentionOutput fwd = reference_attention_forward(q, k, v, causal, q_pos0, k_pos0);
  Tensor D = online_attn_backward_D(out, dout);
  online_attn_backward_step(q, k, v, dout, fwd.lse, D, causal, q_pos0, k_pos0, g.dq, g.dk, g.dv);
  return g;
}

OnlineAttnState OnlineAttnState::create(std::int64_t sq, std::int64_t h, std::int64_t d) {
  OnlineAttnState st;
  st.acc = Tensor::zeros({sq, h, d});
  st.m = Tensor::full({sq, h}, kNegInf);
  st.l = Tensor::zeros({sq, h});
  return st;
}

void online_attn_step(OnlineAttnState& state, const Tensor& q, const Tensor& k, const Tensor& v,
                      bool causal, std::int64_t q_pos0, std::int64_t k_pos0) {
  const Dims dm = check_dims(q, k, v);
  FPDT_CHECK(state.acc.dim(0) == dm.sq && state.acc.dim(1) == dm.h && state.acc.dim(2) == dm.d)
      << " online state shape";
  const float scale = 1.0f / std::sqrt(static_cast<float>(dm.d));
  std::vector<float> scores(static_cast<std::size_t>(dm.sk));
  const float* qp = q.data();
  const float* vp = v.data();
  float* accp = state.acc.data();
  float* mp = state.m.data();
  float* lp = state.l.data();
  for (std::int64_t hd = 0; hd < dm.h; ++hd) {
    const std::int64_t kv_head = hd / dm.group;
    for (std::int64_t i = 0; i < dm.sq; ++i) {
      const float* qrow = qp + (i * dm.h + hd) * dm.d;
      logits_row(qrow, k, kv_head, scale, causal, q_pos0 + i, k_pos0, scores);
      float block_max = kNegInf;
      for (std::int64_t j = 0; j < dm.sk; ++j) {
        block_max = std::max(block_max, scores[static_cast<std::size_t>(j)]);
      }
      if (block_max == kNegInf) continue;  // fully masked pair for this row
      float& m_run = mp[i * dm.h + hd];
      float& l_run = lp[i * dm.h + hd];
      const float m_new = std::max(m_run, block_max);
      const float rescale = (l_run > 0.0f) ? std::exp(m_run - m_new) : 0.0f;
      float* arow = accp + (i * dm.h + hd) * dm.d;
      if (rescale != 1.0f) {
        for (std::int64_t p = 0; p < dm.d; ++p) arow[p] *= rescale;
      }
      float block_sum = 0.0f;
      for (std::int64_t j = 0; j < dm.sk; ++j) {
        const float s = scores[static_cast<std::size_t>(j)];
        if (s == kNegInf) continue;
        const float w = std::exp(s - m_new);
        block_sum += w;
        const float* vrow = vp + (j * dm.hk + kv_head) * dm.d;
        for (std::int64_t p = 0; p < dm.d; ++p) arow[p] += w * vrow[p];
      }
      l_run = l_run * rescale + block_sum;
      m_run = m_new;
    }
  }
}

AttentionOutput online_attn_finalize(const OnlineAttnState& state) {
  const std::int64_t sq = state.acc.dim(0);
  const std::int64_t h = state.acc.dim(1);
  const std::int64_t d = state.acc.dim(2);
  AttentionOutput result;
  result.out = Tensor({sq, h, d});
  result.lse = Tensor({sq, h});
  const float* accp = state.acc.data();
  const float* mp = state.m.data();
  const float* lp = state.l.data();
  float* op = result.out.data();
  float* lsep = result.lse.data();
  for (std::int64_t r = 0; r < sq * h; ++r) {
    const float l = lp[r];
    FPDT_CHECK(l > 0.0f) << " finalize on row that attended to nothing (row " << r << ")";
    const float inv = 1.0f / l;
    for (std::int64_t p = 0; p < d; ++p) op[r * d + p] = accp[r * d + p] * inv;
    lsep[r] = mp[r] + std::log(l);
  }
  return result;
}

Tensor online_attn_backward_D(const Tensor& out, const Tensor& dout) {
  FPDT_CHECK(out.shape() == dout.shape()) << " D shapes";
  const std::int64_t d = out.dim(-1);
  const std::int64_t rows = out.numel() / d;
  Tensor D({out.dim(0), out.dim(1)});
  const float* op = out.data();
  const float* gp = dout.data();
  float* dp = D.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    float acc = 0.0f;
    for (std::int64_t p = 0; p < d; ++p) acc += op[r * d + p] * gp[r * d + p];
    dp[r] = acc;
  }
  return D;
}

void online_attn_backward_step(const Tensor& q, const Tensor& k, const Tensor& v,
                               const Tensor& dout, const Tensor& lse, const Tensor& D,
                               bool causal, std::int64_t q_pos0, std::int64_t k_pos0, Tensor& dq,
                               Tensor& dk, Tensor& dv) {
  const Dims dm = check_dims(q, k, v);
  FPDT_CHECK(dq.shape() == q.shape() && dk.shape() == k.shape() && dv.shape() == v.shape())
      << " backward accumulator shapes";
  const float scale = 1.0f / std::sqrt(static_cast<float>(dm.d));
  std::vector<float> scores(static_cast<std::size_t>(dm.sk));
  const float* qp = q.data();
  const float* kp = k.data();
  const float* vp = v.data();
  const float* gp = dout.data();
  const float* lsep = lse.data();
  const float* Dp = D.data();
  float* dqp = dq.data();
  float* dkp = dk.data();
  float* dvp = dv.data();
  for (std::int64_t hd = 0; hd < dm.h; ++hd) {
    const std::int64_t kv_head = hd / dm.group;
    for (std::int64_t i = 0; i < dm.sq; ++i) {
      const float* qrow = qp + (i * dm.h + hd) * dm.d;
      logits_row(qrow, k, kv_head, scale, causal, q_pos0 + i, k_pos0, scores);
      const float row_lse = lsep[i * dm.h + hd];
      const float Drow = Dp[i * dm.h + hd];
      const float* grow = gp + (i * dm.h + hd) * dm.d;
      float* dqrow = dqp + (i * dm.h + hd) * dm.d;
      for (std::int64_t j = 0; j < dm.sk; ++j) {
        const float s = scores[static_cast<std::size_t>(j)];
        if (s == kNegInf) continue;
        // True probability of this (i, j) pair over the *full* row.
        const float prob = std::exp(s - row_lse);
        const float* vrow = vp + (j * dm.hk + kv_head) * dm.d;
        const float* krow = kp + (j * dm.hk + kv_head) * dm.d;
        float* dvrow = dvp + (j * dm.hk + kv_head) * dm.d;
        float* dkrow = dkp + (j * dm.hk + kv_head) * dm.d;
        // dP_ij = <dout_i, v_j>; dS_ij = P_ij (dP_ij - D_i).
        float dp_ij = 0.0f;
        for (std::int64_t p = 0; p < dm.d; ++p) dp_ij += grow[p] * vrow[p];
        const float ds = prob * (dp_ij - Drow) * scale;
        for (std::int64_t p = 0; p < dm.d; ++p) {
          dvrow[p] += prob * grow[p];
          dqrow[p] += ds * krow[p];
          dkrow[p] += ds * qrow[p];
        }
      }
    }
  }
}

}  // namespace fpdt::nn
