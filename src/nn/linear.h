// Linear layer with manual backward. Weights use the PyTorch [out, in]
// convention; inputs are [.., in] with leading dims flattened.
#pragma once

#include <string>

#include "common/rng.h"
#include "nn/param.h"
#include "tensor/tensor.h"

namespace fpdt::nn {

class Linear {
 public:
  Linear() = default;
  Linear(std::string name, std::int64_t in_features, std::int64_t out_features, bool has_bias,
         Rng& rng);

  // y = x · Wᵀ (+ b). x: [.., in] -> y: [.., out].
  Tensor forward(const Tensor& x) const;

  // Given dy and the saved input x, accumulates dW (and db) into this
  // layer's grads and returns dx. Safe to call many times per step (chunked
  // execution accumulates naturally).
  Tensor backward(const Tensor& dy, const Tensor& x);

  // dx only — used when a strategy computes weight grads elsewhere (e.g.
  // tensor-parallel shards).
  Tensor backward_input_only(const Tensor& dy) const;

  void visit(const ParamVisitor& fn) {
    fn(weight_);
    if (has_bias_) fn(bias_);
  }

  std::int64_t in_features() const { return weight_.value.dim(1); }
  std::int64_t out_features() const { return weight_.value.dim(0); }
  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }

 private:
  Param weight_;  // [out, in]
  Param bias_;    // [out]
  bool has_bias_ = false;
};

}  // namespace fpdt::nn
