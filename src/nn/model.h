// End-to-end causal LM: embedding -> N blocks -> final norm -> fused LM
// head. The training step uses activation checkpointing (only block inputs
// are kept; backward recomputes) — the configuration every strategy in the
// paper's evaluation runs with ("By default, we enable activation
// checkpoint", §5.1).
//
// This reference trainer is single-device and exact; the distributed
// executors in src/parallel and src/core reuse its weights and must match
// its losses and gradients bit-for-bit up to FP32 reduction order.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/adam.h"
#include "nn/embedding.h"
#include "nn/lm_head.h"
#include "nn/model_config.h"
#include "nn/transformer_block.h"

namespace fpdt::nn {

class Model {
 public:
  Model(ModelConfig cfg, std::uint64_t seed);

  // One forward+backward over `tokens` (length s+1: positions 0..s-1 are
  // inputs, 1..s are targets). Returns mean token loss; gradients are
  // accumulated into the parameters. `lm_chunks` chunks the loss head.
  double train_step_grads(const std::vector<std::int32_t>& tokens, std::int64_t lm_chunks = 1);

  // Forward only; returns mean loss (used for eval).
  double eval_loss(const std::vector<std::int32_t>& tokens);

  void visit_params(const ParamVisitor& fn);
  void zero_grads();

  const ModelConfig& config() const { return cfg_; }
  std::vector<TransformerBlock>& blocks() { return blocks_; }
  Embedding& embedding() { return embed_; }
  Norm& final_norm() { return final_norm_; }
  LmHead& lm_head() { return head_; }

  // Copies all parameter values from another model with identical config
  // (used to give every strategy bit-identical weights in tests).
  void copy_params_from(Model& other);

 private:
  ModelConfig cfg_;
  Embedding embed_;
  std::vector<TransformerBlock> blocks_;
  Norm final_norm_;
  LmHead head_;
};

}  // namespace fpdt::nn
