#include "nn/embedding.h"

#include <cstring>

#include "common/check.h"

namespace fpdt::nn {

Embedding::Embedding(std::string name, std::int64_t vocab, std::int64_t dim, Rng& rng) {
  weight_ = Param(name + ".weight", Tensor::randn({vocab, dim}, rng, 0.0, 0.02));
}

Tensor Embedding::forward(const std::vector<std::int32_t>& tokens) const {
  const std::int64_t s = static_cast<std::int64_t>(tokens.size());
  const std::int64_t dim = weight_.value.dim(1);
  Tensor out({s, dim});
  const float* w = weight_.value.data();
  float* o = out.data();
  for (std::int64_t t = 0; t < s; ++t) {
    const std::int64_t id = tokens[static_cast<std::size_t>(t)];
    FPDT_CHECK(id >= 0 && id < weight_.value.dim(0)) << " token id " << id << " out of vocab";
    std::memcpy(o + t * dim, w + id * dim, static_cast<std::size_t>(dim) * sizeof(float));
  }
  return out;
}

void Embedding::backward(const Tensor& dy, const std::vector<std::int32_t>& tokens) {
  const std::int64_t s = static_cast<std::int64_t>(tokens.size());
  const std::int64_t dim = weight_.value.dim(1);
  FPDT_CHECK_EQ(dy.numel(), s * dim) << " embedding backward size";
  const float* g = dy.data();
  float* wg = weight_.grad.data();
  for (std::int64_t t = 0; t < s; ++t) {
    const std::int64_t id = tokens[static_cast<std::size_t>(t)];
    for (std::int64_t p = 0; p < dim; ++p) wg[id * dim + p] += g[t * dim + p];
  }
}

}  // namespace fpdt::nn
