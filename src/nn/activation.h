// Pointwise activations with exact derivatives (tanh-approximation GELU as
// used by GPT; SiLU for Llama's SwiGLU). The per-element math lives in
// kernels/elementwise.h (shared with the kernel backends); the Tensor-level
// wrappers dispatch through the active backend.
#pragma once

#include "kernels/backend.h"
#include "kernels/elementwise.h"
#include "tensor/tensor.h"

namespace fpdt::nn {

inline float gelu(float x) { return kernels::gelu_scalar(x); }
inline float gelu_grad(float x) { return kernels::gelu_grad_scalar(x); }
inline float silu(float x) { return kernels::silu_scalar(x); }
inline float silu_grad(float x) { return kernels::silu_grad_scalar(x); }

inline Tensor gelu_forward(const Tensor& x) {
  Tensor y(x.shape());
  kernels::active().gelu_forward(x.data(), y.data(), x.numel());
  return y;
}

// dx = dy * gelu'(x); x is the saved pre-activation.
inline Tensor gelu_backward(const Tensor& dy, const Tensor& x) {
  Tensor dx = dy.clone();
  kernels::active().gelu_backward_mul(x.data(), dx.data(), dx.numel());
  return dx;
}

inline Tensor silu_forward(const Tensor& x) {
  Tensor y(x.shape());
  kernels::active().silu_forward(x.data(), y.data(), x.numel());
  return y;
}

inline Tensor silu_backward(const Tensor& dy, const Tensor& x) {
  Tensor dx = dy.clone();
  kernels::active().silu_backward_mul(x.data(), dx.data(), dx.numel());
  return dx;
}

}  // namespace fpdt::nn
