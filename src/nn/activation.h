// Pointwise activations with exact derivatives (tanh-approximation GELU as
// used by GPT; SiLU for Llama's SwiGLU).
#pragma once

#include <cmath>

#include "tensor/tensor.h"

namespace fpdt::nn {

inline float gelu(float x) {
  const float k = 0.7978845608028654f;  // sqrt(2/pi)
  const float inner = k * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

inline float gelu_grad(float x) {
  const float k = 0.7978845608028654f;
  const float x3 = x * x * x;
  const float inner = k * (x + 0.044715f * x3);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  return 0.5f * (1.0f + t) + 0.5f * x * sech2 * k * (1.0f + 3.0f * 0.044715f * x * x);
}

inline float silu(float x) {
  const float s = 1.0f / (1.0f + std::exp(-x));
  return x * s;
}

inline float silu_grad(float x) {
  const float s = 1.0f / (1.0f + std::exp(-x));
  return s * (1.0f + x * (1.0f - s));
}

inline Tensor gelu_forward(const Tensor& x) {
  Tensor y = x.clone();
  for (float& v : y.span()) v = gelu(v);
  return y;
}

// dx = dy * gelu'(x); x is the saved pre-activation.
inline Tensor gelu_backward(const Tensor& dy, const Tensor& x) {
  Tensor dx = dy.clone();
  float* dp = dx.data();
  const float* xp = x.data();
  for (std::int64_t i = 0; i < dx.numel(); ++i) dp[i] *= gelu_grad(xp[i]);
  return dx;
}

inline Tensor silu_forward(const Tensor& x) {
  Tensor y = x.clone();
  for (float& v : y.span()) v = silu(v);
  return y;
}

inline Tensor silu_backward(const Tensor& dy, const Tensor& x) {
  Tensor dx = dy.clone();
  float* dp = dx.data();
  const float* xp = x.data();
  for (std::int64_t i = 0; i < dx.numel(); ++i) dp[i] *= silu_grad(xp[i]);
  return dx;
}

}  // namespace fpdt::nn
