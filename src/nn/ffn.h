// Feed-forward networks: GPT's GELU MLP and Llama's SwiGLU, with optional
// *chunked* execution along the sequence.
//
// FFN is token-wise, so compute and memory both scale linearly (§5.4:
// F(N) = Θ(G(N))) — offloading can never hide behind compute here, which is
// why the paper chunks the FFN (at 2× the attention chunk count) instead of
// offloading it. The chunked path keeps only one chunk's intermediates live
// (charged against the provided pool) and recomputes pre-activations in
// backward, trading FLOPs for the Table-2 "FFN 4Nd/8Nd" buffers.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/model_config.h"
#include "nn/param.h"
#include "runtime/memory_pool.h"
#include "tensor/tensor.h"

namespace fpdt::nn {

class FeedForward {
 public:
  FeedForward() = default;
  FeedForward(std::string name, Arch arch, std::int64_t d_model, std::int64_t hidden, Rng& rng);

  // x: [s, d] -> [s, d]. `chunks` = 1 reproduces the monolithic layer.
  // Intermediate buffers are charged to `pool` when provided.
  Tensor forward(const Tensor& x, std::int64_t chunks = 1,
                 runtime::MemoryPool* pool = nullptr) const;

  // Backward with recompute from the saved layer input (activation-
  // checkpoint style): accumulates weight grads, returns dx.
  Tensor backward(const Tensor& dy, const Tensor& x, std::int64_t chunks = 1,
                  runtime::MemoryPool* pool = nullptr);

  void visit(const ParamVisitor& fn);

  Arch arch() const { return arch_; }
  std::int64_t hidden() const { return hidden_; }

  // Component access for strategies that shard these weights (e.g.
  // Megatron-SP column/row parallelism).
  Linear& fc1() { return fc1_; }  // GPT up-projection | Llama gate
  Linear& fc2() { return fc2_; }  // down-projection (row-parallel)
  Linear& fc3() { return fc3_; }  // Llama up (undefined for GPT)

 private:
  Tensor forward_chunk(const Tensor& xc, runtime::MemoryPool* pool) const;
  Tensor backward_chunk(const Tensor& dyc, const Tensor& xc, runtime::MemoryPool* pool);

  Arch arch_ = Arch::kGpt;
  std::int64_t hidden_ = 0;
  Linear fc1_;   // GPT up-projection  | Llama gate
  Linear fc2_;   // GPT down-projection| Llama down
  Linear fc3_;   // Llama up (unused for GPT)
};

}  // namespace fpdt::nn
