// Transformer block: norm variant wrapper, attention sublayer (the weight
// container every parallel strategy shares), and the block itself with
// activation-checkpoint-style backward (recompute from the saved input).
//
// The distributed executors (Ulysses, Megatron-SP, Ring, FPDT) do not own
// weights — they borrow an AttentionLayer / FeedForward from a block and run
// their own dataflow through them, which is what makes the cross-strategy
// equivalence tests meaningful.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "nn/attention.h"
#include "nn/ffn.h"
#include "nn/linear.h"
#include "nn/model_config.h"
#include "nn/norm.h"
#include "nn/param.h"
#include "tensor/tensor.h"

namespace fpdt::nn {

// LayerNorm (GPT) / RMSNorm (Llama) behind one interface.
class Norm {
 public:
  Norm() = default;
  Norm(std::string name, Arch arch, std::int64_t dim);

  Tensor forward(const Tensor& x, NormStats& stats) const;
  Tensor backward(const Tensor& dy, const Tensor& x, const NormStats& stats);
  void visit(const ParamVisitor& fn);

 private:
  Arch arch_ = Arch::kGpt;
  LayerNorm ln_;
  RmsNorm rms_;
};

// QKV/out projections + RoPE for one attention sublayer.
class AttentionLayer {
 public:
  struct Qkv {
    Tensor q;  // [s, h, dh]
    Tensor k;  // [s, hk, dh]
    Tensor v;  // [s, hk, dh]
  };

  AttentionLayer() = default;
  AttentionLayer(std::string name, const ModelConfig& cfg, Rng& rng);

  // Projects a (chunk of the) normalised hidden state [s, d] whose first
  // token sits at global position pos0; RoPE is applied to q and k with
  // global positions, which is what keeps chunked execution exact.
  Qkv project_qkv(const Tensor& xn, std::int64_t pos0) const;

  // attn_out [s, h, dh] -> [s, d] through Wo.
  Tensor project_out(const Tensor& attn_out) const;

  // Backward of project_out: accumulates dWo, returns d(attn_out) [s,h,dh].
  Tensor backward_out(const Tensor& dy, const Tensor& attn_out);

  // Backward of project_qkv: un-rotates dq/dk, backprops the three
  // projections (accumulating weight grads), returns dxn [s, d].
  Tensor backward_qkv(const Tensor& dq, const Tensor& dk, const Tensor& dv, const Tensor& xn,
                      std::int64_t pos0);

  void visit(const ParamVisitor& fn);

  std::int64_t n_head() const { return n_head_; }
  std::int64_t n_kv_head() const { return n_kv_head_; }
  std::int64_t head_dim() const { return head_dim_; }
  double rope_base() const { return rope_base_; }

  Linear& wq() { return wq_; }
  Linear& wk() { return wk_; }
  Linear& wv() { return wv_; }
  Linear& wo() { return wo_; }

 private:
  std::int64_t n_head_ = 0, n_kv_head_ = 0, head_dim_ = 0;
  double rope_base_ = 10000.0;
  Linear wq_, wk_, wv_, wo_;
};

// Pre-norm block: x + Attn(N1(x)), then y + FFN(N2(y)).
class TransformerBlock {
 public:
  TransformerBlock() = default;
  TransformerBlock(std::string name, const ModelConfig& cfg, Rng& rng);

  // Forward without saving internal context (activation checkpointing: the
  // caller keeps only `x`). `ffn_chunks` follows §5.4.
  Tensor forward_only(const Tensor& x, std::int64_t pos0 = 0, std::int64_t ffn_chunks = 1) const;

  // Recompute-forward then backprop; accumulates all weight grads, returns
  // dx. Must be given the same pos0/ffn_chunks as the forward.
  Tensor backward_with_recompute(const Tensor& dy, const Tensor& x, std::int64_t pos0 = 0,
                                 std::int64_t ffn_chunks = 1);

  void visit(const ParamVisitor& fn);

  AttentionLayer& attention() { return attn_; }
  FeedForward& ffn() { return ffn_; }
  Norm& norm1() { return norm1_; }
  Norm& norm2() { return norm2_; }

 private:
  Norm norm1_, norm2_;
  AttentionLayer attn_;
  FeedForward ffn_;
};

}  // namespace fpdt::nn
