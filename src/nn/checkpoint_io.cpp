#include "nn/checkpoint_io.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

namespace fpdt::nn {

namespace {

constexpr char kModelMagic[8] = {'F', 'P', 'D', 'T', 'C', 'K', 'P', '2'};
constexpr char kTrainMagic[8] = {'F', 'P', 'D', 'T', 'T', 'R', 'N', '1'};
constexpr char kShardMagic[8] = {'F', 'P', 'D', 'T', 'Z', 'R', '0', '1'};

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// In-memory payload writer: the whole payload is serialized before any file
// is opened, so the on-disk write is a single buffer + checksum.
struct Writer {
  std::string buf;

  void put_bytes(const void* p, std::size_t n) {
    buf.append(static_cast<const char*>(p), n);
  }
  void put_u64(std::uint64_t v) { put_bytes(&v, sizeof(v)); }
  void put_string(const std::string& s) {
    put_u64(s.size());
    put_bytes(s.data(), s.size());
  }
  void put_floats(const float* p, std::int64_t n) {
    put_bytes(p, static_cast<std::size_t>(n) * sizeof(float));
  }
};

// Bounds-checked payload reader over the verified buffer.
struct Reader {
  const std::string& buf;
  std::size_t pos = 0;

  void get_bytes(void* p, std::size_t n) {
    FPDT_CHECK_LE(static_cast<std::int64_t>(pos + n), static_cast<std::int64_t>(buf.size()))
        << " checkpoint payload truncated";
    std::memcpy(p, buf.data() + pos, n);
    pos += n;
  }
  std::uint64_t get_u64() {
    std::uint64_t v = 0;
    get_bytes(&v, sizeof(v));
    return v;
  }
  std::string get_string() {
    const std::uint64_t n = get_u64();
    FPDT_CHECK_LT(n, 1u << 20) << " implausible string length in checkpoint";
    std::string s(static_cast<std::size_t>(n), '\0');
    get_bytes(s.data(), s.size());
    return s;
  }
  void get_floats(float* p, std::int64_t n) {
    get_bytes(p, static_cast<std::size_t>(n) * sizeof(float));
  }
  bool exhausted() const { return pos == buf.size(); }
};

// Crash-safe commit: write-to-temp, flush, atomic rename. A crash mid-write
// leaves only `path + ".tmp"` junk; the previous checkpoint under `path`
// stays intact and valid.
void write_file(const std::string& path, const char (&magic)[8], const std::string& payload) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    FPDT_CHECK(out.good()) << " cannot open " << tmp << " for writing";
    out.write(magic, sizeof(magic));
    const std::uint64_t size = payload.size();
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    const std::uint64_t sum = fnv1a64(payload);
    out.write(reinterpret_cast<const char*>(&sum), sizeof(sum));
    out.flush();
    FPDT_CHECK(out.good()) << " write failed for " << tmp;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw FpdtError("checkpoint rename failed: " + tmp + " -> " + path);
  }
}

// Reads, frames and checksum-verifies the payload before the caller touches
// any model state.
std::string read_file(const std::string& path, const char (&magic)[8]) {
  std::ifstream in(path, std::ios::binary);
  FPDT_CHECK(in.good()) << " cannot open " << path;
  std::string raw((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  constexpr std::size_t kHeader = sizeof(magic) + sizeof(std::uint64_t);
  FPDT_CHECK_GE(static_cast<std::int64_t>(raw.size()),
                static_cast<std::int64_t>(kHeader + sizeof(std::uint64_t)))
      << " truncated checkpoint " << path;
  FPDT_CHECK(std::equal(magic, magic + sizeof(magic), raw.data()))
      << " not an FPDT checkpoint of the expected kind (bad magic): " << path;
  std::uint64_t size = 0;
  std::memcpy(&size, raw.data() + sizeof(magic), sizeof(size));
  FPDT_CHECK_EQ(static_cast<std::int64_t>(raw.size()),
                static_cast<std::int64_t>(kHeader + size + sizeof(std::uint64_t)))
      << " truncated or oversized checkpoint " << path;
  std::string payload = raw.substr(kHeader, static_cast<std::size_t>(size));
  std::uint64_t sum = 0;
  std::memcpy(&sum, raw.data() + kHeader + size, sizeof(sum));
  FPDT_CHECK_EQ(fnv1a64(payload), sum) << " checkpoint checksum mismatch (corrupt): " << path;
  return payload;
}

void put_param_header(Writer& w, const Param& p) {
  w.put_string(p.name);
  w.put_u64(static_cast<std::uint64_t>(p.value.ndim()));
  for (int i = 0; i < p.value.ndim(); ++i) {
    w.put_u64(static_cast<std::uint64_t>(p.value.dim(i)));
  }
}

void check_param_header(Reader& r, const Param& p) {
  const std::string name = r.get_string();
  FPDT_CHECK_EQ(name, p.name) << " parameter order/name mismatch";
  const std::uint64_t ndim = r.get_u64();
  FPDT_CHECK_EQ(ndim, static_cast<std::uint64_t>(p.value.ndim()))
      << " rank mismatch for " << name;
  for (int i = 0; i < p.value.ndim(); ++i) {
    const std::uint64_t d = r.get_u64();
    FPDT_CHECK_EQ(d, static_cast<std::uint64_t>(p.value.dim(i)))
        << " shape mismatch for " << name << " dim " << i;
  }
}

}  // namespace

void save_checkpoint(Model& model, const std::string& path) {
  Writer w;
  std::uint64_t count = 0;
  model.visit_params([&](Param&) { ++count; });
  w.put_u64(count);
  model.visit_params([&](Param& p) {
    put_param_header(w, p);
    w.put_floats(p.value.data(), p.value.numel());
  });
  write_file(path, kModelMagic, w.buf);
}

void load_checkpoint(Model& model, const std::string& path) {
  const std::string payload = read_file(path, kModelMagic);
  Reader r{payload};
  const std::uint64_t count = r.get_u64();
  std::uint64_t seen = 0;
  model.visit_params([&](Param& p) {
    FPDT_CHECK_LT(seen, count) << " checkpoint has fewer parameters than the model";
    check_param_header(r, p);
    r.get_floats(p.value.data(), p.value.numel());
    ++seen;
  });
  FPDT_CHECK_EQ(seen, count) << " checkpoint has more parameters than the model";
  FPDT_CHECK(r.exhausted()) << " trailing bytes in checkpoint " << path;
}

void save_training_state(Model& model, Adam& adam, const TrainingState& state,
                         const std::string& path) {
  Writer w;
  std::uint64_t count = 0;
  model.visit_params([&](Param&) { ++count; });
  w.put_u64(count);
  // Params and their Adam moments interleaved in visit order. Moments are
  // materialized (zero-init) for never-stepped params so a step-0 snapshot
  // restores to exactly the state step() would have built.
  model.visit_params([&](Param& p) {
    put_param_header(w, p);
    w.put_floats(p.value.data(), p.value.numel());
    const Adam::Moments& mom = adam.ensure_moments(p);
    w.put_floats(mom.m.data(), mom.m.numel());
    w.put_floats(mom.v.data(), mom.v.numel());
  });
  w.put_u64(static_cast<std::uint64_t>(adam.step_count()));
  w.put_u64(static_cast<std::uint64_t>(state.step));
  w.put_u64(state.streams.size());
  for (const auto& [name, values] : state.streams) {  // std::map: sorted, stable
    w.put_string(name);
    w.put_u64(values.size());
    for (std::uint64_t v : values) w.put_u64(v);
  }
  write_file(path, kTrainMagic, w.buf);
}

TrainingState load_training_state(Model& model, Adam& adam, const std::string& path) {
  const std::string payload = read_file(path, kTrainMagic);
  Reader r{payload};
  const std::uint64_t count = r.get_u64();
  std::uint64_t seen = 0;
  model.visit_params([&](Param& p) {
    FPDT_CHECK_LT(seen, count) << " training state has fewer parameters than the model";
    check_param_header(r, p);
    r.get_floats(p.value.data(), p.value.numel());
    Adam::Moments& mom = adam.ensure_moments(p);
    r.get_floats(mom.m.data(), mom.m.numel());
    r.get_floats(mom.v.data(), mom.v.numel());
    // A restored step starts from a clean slate: any half-accumulated
    // gradient from the failed attempt is discarded.
    float* g = p.grad.data();
    std::fill(g, g + p.grad.numel(), 0.0f);
    ++seen;
  });
  FPDT_CHECK_EQ(seen, count) << " training state has more parameters than the model";
  adam.set_step_count(static_cast<std::int64_t>(r.get_u64()));
  TrainingState state;
  state.step = static_cast<std::int64_t>(r.get_u64());
  const std::uint64_t n_streams = r.get_u64();
  for (std::uint64_t i = 0; i < n_streams; ++i) {
    std::string name = r.get_string();
    const std::uint64_t len = r.get_u64();
    FPDT_CHECK_LT(len, 1u << 24) << " implausible stream state length";
    std::vector<std::uint64_t> values(static_cast<std::size_t>(len));
    for (auto& v : values) v = r.get_u64();
    state.streams.emplace(std::move(name), std::move(values));
  }
  FPDT_CHECK(r.exhausted()) << " trailing bytes in training state " << path;
  return state;
}

namespace {

// Zero-materialized per-rank moment shards for `p`, matching
// zero::ShardedOptimizer::ensure_shards — so a never-stepped optimizer
// round-trips bit-identically to one built by stepping from scratch.
std::vector<Adam::Moments>& ensure_shards(ShardedAdamState& shards, const Param& p,
                                          int world) {
  auto [it, inserted] = shards.try_emplace(p.name);
  if (inserted) {
    const std::int64_t s = (p.value.numel() + world - 1) / world;
    it->second.resize(static_cast<std::size_t>(world));
    for (auto& mom : it->second) {
      mom.m = Tensor::zeros({s});
      mom.v = Tensor::zeros({s});
    }
  }
  return it->second;
}

void put_training_tail(Writer& w, std::int64_t adam_step, const TrainingState& state) {
  w.put_u64(static_cast<std::uint64_t>(adam_step));
  w.put_u64(static_cast<std::uint64_t>(state.step));
  w.put_u64(state.streams.size());
  for (const auto& [name, values] : state.streams) {  // std::map: sorted, stable
    w.put_string(name);
    w.put_u64(values.size());
    for (std::uint64_t v : values) w.put_u64(v);
  }
}

}  // namespace

void save_sharded_training_state(Model& model, ShardedAdamState& shards,
                                 std::int64_t adam_step, int world, int zero_stage,
                                 const TrainingState& state, const std::string& path) {
  Writer w;
  w.put_u64(static_cast<std::uint64_t>(world));
  w.put_u64(static_cast<std::uint64_t>(zero_stage));
  std::uint64_t count = 0;
  model.visit_params([&](Param&) { ++count; });
  w.put_u64(count);
  model.visit_params([&](Param& p) {
    put_param_header(w, p);
    w.put_floats(p.value.data(), p.value.numel());
    const std::vector<Adam::Moments>& mom = ensure_shards(shards, p, world);
    w.put_u64(static_cast<std::uint64_t>(mom[0].m.numel()));
    for (const Adam::Moments& rank_mom : mom) {
      w.put_floats(rank_mom.m.data(), rank_mom.m.numel());
      w.put_floats(rank_mom.v.data(), rank_mom.v.numel());
    }
  });
  put_training_tail(w, adam_step, state);
  write_file(path, kShardMagic, w.buf);
}

ShardedRestore load_sharded_training_state(Model& model, ShardedAdamState& shards,
                                           int world, int zero_stage,
                                           const std::string& path) {
  const std::string payload = read_file(path, kShardMagic);
  Reader r{payload};
  const std::uint64_t saved_world = r.get_u64();
  FPDT_CHECK_EQ(saved_world, static_cast<std::uint64_t>(world))
      << " sharded snapshot taken at world " << saved_world << ", loading at " << world;
  const std::uint64_t saved_stage = r.get_u64();
  FPDT_CHECK_EQ(saved_stage, static_cast<std::uint64_t>(zero_stage))
      << " sharded snapshot taken at ZeRO stage " << saved_stage << ", loading at stage "
      << zero_stage;
  const std::uint64_t count = r.get_u64();
  std::uint64_t seen = 0;
  model.visit_params([&](Param& p) {
    FPDT_CHECK_LT(seen, count) << " sharded state has fewer parameters than the model";
    check_param_header(r, p);
    r.get_floats(p.value.data(), p.value.numel());
    const std::uint64_t s = r.get_u64();
    const std::int64_t expect = (p.value.numel() + world - 1) / world;
    FPDT_CHECK_EQ(static_cast<std::int64_t>(s), expect)
        << " shard size mismatch for " << p.name;
    std::vector<Adam::Moments>& mom = ensure_shards(shards, p, world);
    for (Adam::Moments& rank_mom : mom) {
      r.get_floats(rank_mom.m.data(), rank_mom.m.numel());
      r.get_floats(rank_mom.v.data(), rank_mom.v.numel());
    }
    float* g = p.grad.data();
    std::fill(g, g + p.grad.numel(), 0.0f);
    ++seen;
  });
  FPDT_CHECK_EQ(seen, count) << " sharded state has more parameters than the model";
  ShardedRestore out;
  out.adam_step = static_cast<std::int64_t>(r.get_u64());
  out.state.step = static_cast<std::int64_t>(r.get_u64());
  const std::uint64_t n_streams = r.get_u64();
  for (std::uint64_t i = 0; i < n_streams; ++i) {
    std::string name = r.get_string();
    const std::uint64_t len = r.get_u64();
    FPDT_CHECK_LT(len, 1u << 24) << " implausible stream state length";
    std::vector<std::uint64_t> values(static_cast<std::size_t>(len));
    for (auto& v : values) v = r.get_u64();
    out.state.streams.emplace(std::move(name), std::move(values));
  }
  FPDT_CHECK(r.exhausted()) << " trailing bytes in sharded training state " << path;
  return out;
}

}  // namespace fpdt::nn
