#include "nn/checkpoint_io.h"

#include <cstdint>
#include <fstream>
#include <vector>

#include "common/check.h"

namespace fpdt::nn {

namespace {

constexpr char kMagic[8] = {'F', 'P', 'D', 'T', 'C', 'K', 'P', '1'};

void write_u64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  FPDT_CHECK(in.good()) << " truncated checkpoint";
  return v;
}

void write_string(std::ofstream& out, const std::string& s) {
  write_u64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::ifstream& in) {
  const std::uint64_t n = read_u64(in);
  FPDT_CHECK_LT(n, 1u << 20) << " implausible name length";
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  FPDT_CHECK(in.good()) << " truncated checkpoint";
  return s;
}

}  // namespace

void save_checkpoint(Model& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  FPDT_CHECK(out.good()) << " cannot open " << path << " for writing";
  out.write(kMagic, sizeof(kMagic));

  std::uint64_t count = 0;
  model.visit_params([&](Param&) { ++count; });
  write_u64(out, count);

  model.visit_params([&](Param& p) {
    write_string(out, p.name);
    write_u64(out, static_cast<std::uint64_t>(p.value.ndim()));
    for (int i = 0; i < p.value.ndim(); ++i) {
      write_u64(out, static_cast<std::uint64_t>(p.value.dim(i)));
    }
    out.write(reinterpret_cast<const char*>(p.value.data()),
              static_cast<std::streamsize>(p.value.numel()) * 4);
  });
  FPDT_CHECK(out.good()) << " write failed for " << path;
}

void load_checkpoint(Model& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FPDT_CHECK(in.good()) << " cannot open " << path;
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  FPDT_CHECK(in.good() && std::equal(magic, magic + sizeof(kMagic), kMagic))
      << " not an FPDT checkpoint (bad magic): " << path;

  const std::uint64_t count = read_u64(in);
  std::uint64_t seen = 0;
  model.visit_params([&](Param& p) {
    FPDT_CHECK_LT(seen, count) << " checkpoint has fewer parameters than the model";
    const std::string name = read_string(in);
    FPDT_CHECK_EQ(name, p.name) << " parameter order/name mismatch";
    const std::uint64_t ndim = read_u64(in);
    FPDT_CHECK_EQ(ndim, static_cast<std::uint64_t>(p.value.ndim()))
        << " rank mismatch for " << name;
    for (int i = 0; i < p.value.ndim(); ++i) {
      const std::uint64_t d = read_u64(in);
      FPDT_CHECK_EQ(d, static_cast<std::uint64_t>(p.value.dim(i)))
          << " shape mismatch for " << name << " dim " << i;
    }
    in.read(reinterpret_cast<char*>(p.value.data()),
            static_cast<std::streamsize>(p.value.numel()) * 4);
    FPDT_CHECK(in.good()) << " truncated tensor data for " << name;
    ++seen;
  });
  FPDT_CHECK_EQ(seen, count) << " checkpoint has more parameters than the model";
}

}  // namespace fpdt::nn
