#include "nn/generate.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "nn/inference.h"

namespace fpdt::nn {

Tensor next_token_logits(Model& model, const std::vector<std::int32_t>& prompt) {
  FPDT_CHECK(!prompt.empty()) << " empty prompt";
  Tensor h = model.embedding().forward(prompt);
  for (TransformerBlock& blk : model.blocks()) h = blk.forward_only(h);
  NormStats st;
  Tensor hn = model.final_norm().forward(h, st);
  Tensor last = hn.slice0(hn.dim(0) - 1, hn.dim(0));
  return matmul_nt(last, model.lm_head().weight().value).reshape({model.config().vocab});
}

namespace {

std::int32_t pick(const Tensor& logits, const SampleOptions& options, Rng& rng) {
  const std::int64_t vocab = logits.numel();
  if (options.temperature <= 0.0) {
    std::int64_t best = 0;
    for (std::int64_t i = 1; i < vocab; ++i) {
      if (logits.data()[i] > logits.data()[best]) best = i;
    }
    return static_cast<std::int32_t>(best);
  }
  std::vector<std::pair<float, std::int64_t>> scored;
  scored.reserve(static_cast<std::size_t>(vocab));
  for (std::int64_t i = 0; i < vocab; ++i) scored.emplace_back(logits.data()[i], i);
  std::sort(scored.begin(), scored.end(), std::greater<>());
  const std::int64_t k = options.top_k > 0 ? std::min(options.top_k, vocab) : vocab;
  double max_logit = scored[0].first;
  double z = 0.0;
  std::vector<double> probs(static_cast<std::size_t>(k));
  for (std::int64_t i = 0; i < k; ++i) {
    probs[static_cast<std::size_t>(i)] = std::exp(
        (static_cast<double>(scored[static_cast<std::size_t>(i)].first) - max_logit) /
        options.temperature);
    z += probs[static_cast<std::size_t>(i)];
  }
  double pickpoint = rng.next_uniform() * z;
  for (std::int64_t i = 0; i < k; ++i) {
    pickpoint -= probs[static_cast<std::size_t>(i)];
    if (pickpoint <= 0.0) {
      return static_cast<std::int32_t>(scored[static_cast<std::size_t>(i)].second);
    }
  }
  return static_cast<std::int32_t>(scored[static_cast<std::size_t>(k - 1)].second);
}

}  // namespace

std::vector<std::int32_t> generate(Model& model, std::vector<std::int32_t> prompt,
                                   std::int64_t new_tokens, const SampleOptions& options,
                                   Rng& rng) {
  if (options.kv_cache && options.temperature <= 0.0 && new_tokens > 0 && !prompt.empty()) {
    // Greedy decoding through the KV cache: one prefill, then O(1) decode
    // steps instead of re-running the full prefix per emitted token. The
    // cached path's logits are bitwise-identical to the recompute path's
    // attention over the same prefix, so the token stream cannot change.
    return generate_cached(model, std::move(prompt), new_tokens, options, rng);
  }
  for (std::int64_t t = 0; t < new_tokens; ++t) {
    Tensor logits = next_token_logits(model, prompt);
    prompt.push_back(pick(logits, options, rng));
  }
  return prompt;
}

}  // namespace fpdt::nn
