// Model checkpoint serialization: a small self-describing binary format
// (magic, version, per-parameter name/shape/data). Round-trips bit-exactly,
// validates names and shapes on load, and refuses version/format
// mismatches — the minimum a training system needs to survive restarts.
#pragma once

#include <string>

#include "nn/model.h"

namespace fpdt::nn {

// Writes every parameter of `model` (values only; optimizer state is the
// caller's concern) to `path`. Throws FpdtError on I/O failure.
void save_checkpoint(Model& model, const std::string& path);

// Loads parameters into `model`; every parameter must match by name, order
// and shape (same ModelConfig). Throws FpdtError on any mismatch.
void load_checkpoint(Model& model, const std::string& path);

}  // namespace fpdt::nn
