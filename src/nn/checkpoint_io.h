// Checkpoint serialization: a small self-describing binary format that
// round-trips bit-exactly and survives crashes mid-write.
//
// Every file shares one crash-safe envelope:
//
//   [magic 8B][payload_size u64][payload][fnv1a64(payload) u64]
//
// Writers serialize the payload in memory, write to `path + ".tmp"`, flush,
// and std::rename over the target — a torn write can only ever leave a stale
// but complete previous checkpoint plus a junk temp file, never a
// half-written checkpoint under the real name. Readers verify the checksum
// before touching any model state, so truncation and bit rot are rejected
// up front (FpdtError), not discovered as NaNs three steps later.
//
// Two payload kinds:
//   FPDTCKP2 — model parameters only (save/load_checkpoint);
//   FPDTTRN1 — full training state for restore-and-replay: parameters,
//              Adam moments + step counter, RNG/data-stream states and the
//              global step (save/load_training_state). Restoring resumes
//              training bit-identically to the uninterrupted run.
//
// The former FPDTCKP1 in-place format is refused (bad magic).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "nn/adam.h"
#include "nn/model.h"

namespace fpdt::nn {

// Writes every parameter of `model` (values only; optimizer state is the
// caller's concern) to `path`. Throws FpdtError on I/O failure.
void save_checkpoint(Model& model, const std::string& path);

// Loads parameters into `model`; every parameter must match by name, order
// and shape (same ModelConfig). Throws FpdtError on any mismatch, a bad
// checksum, or a truncated file.
void load_checkpoint(Model& model, const std::string& path);

// Everything outside the model/optimizer tensors that step replay needs:
// the global step counter plus named flat state vectors (data-stream RNGs,
// corpus history — see data::SyntheticCorpus::save_state).
struct TrainingState {
  std::int64_t step = 0;
  std::map<std::string, std::vector<std::uint64_t>> streams;
};

// Full snapshot: parameters, Adam first/second moments (materialized for
// every parameter, zero-initialized if never stepped) and step counter,
// plus `state`. Crash-safe like save_checkpoint.
void save_training_state(Model& model, Adam& adam, const TrainingState& state,
                         const std::string& path);

// Restores a save_training_state snapshot into `model` and `adam` (grads
// are zeroed) and returns the TrainingState. Throws FpdtError on mismatch
// or corruption.
TrainingState load_training_state(Model& model, Adam& adam, const std::string& path);

// ---- ZeRO-sharded training state (FPDTZR01) ------------------------------
// Per-parameter, per-rank flat Adam moment shards of ceil(numel/world)
// elements — the layout parallel/zero's ShardedOptimizer keeps. Declared
// here (not in parallel/zero) so checkpoint I/O stays below the ZeRO layer.
using ShardedAdamState = std::map<std::string, std::vector<Adam::Moments>>;

// Full snapshot of a ZeRO run: parameters, every rank's moment shards
// (zero-materialized for never-stepped params), the Adam step counter,
// world size and stage (validated on load), plus `state`. Crash-safe like
// save_checkpoint.
void save_sharded_training_state(Model& model, ShardedAdamState& shards,
                                 std::int64_t adam_step, int world, int zero_stage,
                                 const TrainingState& state, const std::string& path);

struct ShardedRestore {
  std::int64_t adam_step = 0;
  TrainingState state;
};

// Restores a save_sharded_training_state snapshot into `model` and `shards`
// (grads are zeroed). Throws FpdtError on corruption or if the snapshot was
// taken at a different world size or ZeRO stage — shard geometry is part of
// the state, not re-derivable.
ShardedRestore load_sharded_training_state(Model& model, ShardedAdamState& shards,
                                           int world, int zero_stage,
                                           const std::string& path);

}  // namespace fpdt::nn
