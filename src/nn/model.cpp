#include "nn/model.h"

#include "common/check.h"

namespace fpdt::nn {

Model::Model(ModelConfig cfg, std::uint64_t seed) : cfg_(std::move(cfg)) {
  Rng rng(seed);
  embed_ = Embedding("embed", cfg_.vocab, cfg_.d_model, rng);
  blocks_.reserve(static_cast<std::size_t>(cfg_.n_layer));
  for (std::int64_t l = 0; l < cfg_.n_layer; ++l) {
    blocks_.emplace_back("block" + std::to_string(l), cfg_, rng);
  }
  final_norm_ = Norm("final_norm", cfg_.arch, cfg_.d_model);
  head_ = LmHead("lm_head", cfg_.d_model, cfg_.vocab, rng);
}

double Model::train_step_grads(const std::vector<std::int32_t>& tokens, std::int64_t lm_chunks) {
  FPDT_CHECK_GE(tokens.size(), 2u) << " need at least 2 tokens";
  const std::int64_t s = static_cast<std::int64_t>(tokens.size()) - 1;
  std::vector<std::int32_t> inputs(tokens.begin(), tokens.end() - 1);
  std::vector<std::int32_t> targets(tokens.begin() + 1, tokens.end());

  // Forward with activation checkpointing: keep each block's input only.
  std::vector<Tensor> block_inputs;
  block_inputs.reserve(blocks_.size());
  Tensor h = embed_.forward(inputs);
  for (TransformerBlock& blk : blocks_) {
    block_inputs.push_back(h);
    h = blk.forward_only(h);
  }
  NormStats fstats;
  Tensor hn = final_norm_.forward(h, fstats);

  LossResult loss = head_.forward_backward(hn, targets, lm_chunks, s);

  // Backward.
  Tensor dh = final_norm_.backward(loss.dx, h, fstats);
  for (std::size_t l = blocks_.size(); l-- > 0;) {
    dh = blocks_[l].backward_with_recompute(dh, block_inputs[l]);
  }
  embed_.backward(dh, inputs);
  return loss.mean_loss();
}

double Model::eval_loss(const std::vector<std::int32_t>& tokens) {
  FPDT_CHECK_GE(tokens.size(), 2u) << " need at least 2 tokens";
  const std::int64_t s = static_cast<std::int64_t>(tokens.size()) - 1;
  std::vector<std::int32_t> inputs(tokens.begin(), tokens.end() - 1);
  std::vector<std::int32_t> targets(tokens.begin() + 1, tokens.end());
  Tensor h = embed_.forward(inputs);
  for (TransformerBlock& blk : blocks_) h = blk.forward_only(h);
  NormStats fstats;
  Tensor hn = final_norm_.forward(h, fstats);
  // Reuse the fused head but discard gradients by zeroing them afterwards.
  Tensor saved = head_.weight().grad.clone();
  LossResult loss = head_.forward_backward(hn, targets, 1, s);
  head_.weight().grad.copy_from(saved);
  return loss.mean_loss();
}

void Model::visit_params(const ParamVisitor& fn) {
  embed_.visit(fn);
  for (TransformerBlock& blk : blocks_) blk.visit(fn);
  final_norm_.visit(fn);
  head_.visit(fn);
}

void Model::zero_grads() {
  visit_params([](Param& p) { p.zero_grad(); });
}

void Model::copy_params_from(Model& other) {
  std::vector<Tensor*> src;
  other.visit_params([&](Param& p) { src.push_back(&p.value); });
  std::size_t i = 0;
  visit_params([&](Param& p) {
    FPDT_CHECK_LT(i, src.size()) << " param count mismatch";
    p.value.copy_from(*src[i]);
    ++i;
  });
  FPDT_CHECK_EQ(i, src.size()) << " param count mismatch";
}

}  // namespace fpdt::nn
