// KV-cache inference: chunked prefill + incremental decode.
//
// Training-side FPDT processes the sequence as chunks of online attention
// against cached KV; inference prefill is the same computation with the
// cache kept for decoding. An InferenceSession holds per-layer K/V caches,
// fills them over the prompt in configurable chunks (bounding the prefill
// working set exactly as FPDT bounds training memory), and then decodes one
// token at a time in O(prompt) instead of generate()'s O(prompt²)
// recompute.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "nn/generate.h"
#include "nn/model.h"

namespace fpdt::nn {

class InferenceSession {
 public:
  // prefill_chunk: tokens per prefill chunk (0 = whole prompt at once).
  explicit InferenceSession(Model& model, std::int64_t prefill_chunk = 0);

  // Processes the prompt, filling the KV caches; returns logits for the
  // next token. Callable once per session.
  Tensor prefill(const std::vector<std::int32_t>& prompt);

  // Appends `token` and returns logits for the position after it.
  Tensor decode(std::int32_t token);

  std::int64_t position() const { return position_; }

  // Peak cache size in logical BF16 bytes across layers (for reporting).
  std::int64_t kv_cache_bytes() const;

  // Read-only copy of layer `layer`'s cached K/V rows [0, position) — the
  // oracle the serving engine's paged KV pages are memcmp'd against
  // (tests/test_serve.cpp).
  std::pair<Tensor, Tensor> cache_view(std::size_t layer) const;

 private:
  struct LayerCache {
    Tensor k;  // [capacity, hk, dh]
    Tensor v;
    std::int64_t length = 0;
  };

  // Runs tokens [pos0, pos0+n) through all layers, appending to the caches;
  // returns the final hidden states [n, d].
  Tensor advance(const std::vector<std::int32_t>& tokens, std::int64_t pos0);

  void ensure_capacity(std::int64_t needed);

  Model* model_;
  std::int64_t prefill_chunk_;
  std::int64_t position_ = 0;
  std::int64_t capacity_ = 0;
  std::vector<LayerCache> caches_;
  bool prefilled_ = false;
};

// Generation through an InferenceSession (chunked prefill + O(1) decode
// steps); produces exactly the same tokens as nn::generate.
std::vector<std::int32_t> generate_cached(Model& model, std::vector<std::int32_t> prompt,
                                          std::int64_t new_tokens, const SampleOptions& options,
                                          Rng& rng, std::int64_t prefill_chunk = 0);

}  // namespace fpdt::nn
