// LM head: final projection to vocabulary fused with softmax cross-entropy.
//
// The paper identifies the logits buffer (seq × vocab in FP32) as one of the
// worst memory spikes of long-context training (§5.4) and resolves it by
// chunking the head along the sequence; the suggested chunk count is
// (vocab / hidden) × 2. This class implements both the monolithic and the
// chunked execution; both produce identical losses and gradients (tested),
// but the chunked variant's live logits buffer is seq/u × vocab.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/param.h"
#include "runtime/memory_pool.h"
#include "tensor/tensor.h"

namespace fpdt::nn {

struct LossResult {
  double loss_sum = 0.0;       // summed token NLL over non-ignored targets
  std::int64_t token_count = 0;
  Tensor dx;                   // gradient wrt head input [s, d], already
                               // scaled for mean-loss (1/total_tokens)
  double mean_loss() const {
    return token_count > 0 ? loss_sum / static_cast<double>(token_count) : 0.0;
  }
};

// Target id that contributes neither loss nor gradient (padding positions
// in variable-length batches).
inline constexpr std::int32_t kIgnoreTarget = -1;

class LmHead {
 public:
  LmHead() = default;
  LmHead(std::string name, std::int64_t dim, std::int64_t vocab, Rng& rng);

  // Computes mean cross-entropy over targets and the input gradient in one
  // fused pass; accumulates weight grads. `loss_scale` divides the gradient
  // (pass total token count when chunking so chunk gradients compose).
  // `chunks` splits the sequence; 1 = monolithic.
  // If `pool` is non-null, the live logits buffer is charged against it
  // (FP32, as the paper notes the loss runs in float) so the memory spike
  // is measurable.
  LossResult forward_backward(const Tensor& x, const std::vector<std::int32_t>& targets,
                              std::int64_t chunks, std::int64_t loss_scale_tokens,
                              runtime::MemoryPool* pool = nullptr);

  // Paper §5.4: suggested chunk count = vocab / hidden * 2.
  std::int64_t suggested_chunks() const;

  void visit(const ParamVisitor& fn) { fn(weight_); }
  Param& weight() { return weight_; }

 private:
  Param weight_;  // [vocab, dim]
};

}  // namespace fpdt::nn
