// Rotary position embedding (RoPE), applied per head to query/key chunks.
//
// The position offset parameter matters for FPDT: projections run on local
// sequence *chunks*, and with the rank-ordinal layout (Fig. 6) rank r's i-th
// local chunk covers global positions [(i·P + r)·c, (i·P + r + 1)·c). Using
// global positions here is what keeps chunked attention bit-equivalent to
// the monolithic reference (verified in tests/core).
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace fpdt::nn {

// Rotates x [s, h, d_head] in place; token t gets position pos0 + t.
void rope_apply_(Tensor& x, std::int64_t pos0, double base);

// Backward of rope_apply_ is rotation by the negative angle (the map is
// orthogonal); rotates gradients in place.
void rope_apply_backward_(Tensor& dx, std::int64_t pos0, double base);

}  // namespace fpdt::nn
