#include "nn/inference.h"

#include <cstring>

#include "common/check.h"
#include "nn/attention.h"

namespace fpdt::nn {

InferenceSession::InferenceSession(Model& model, std::int64_t prefill_chunk)
    : model_(&model), prefill_chunk_(prefill_chunk) {
  caches_.resize(model.blocks().size());
}

void InferenceSession::ensure_capacity(std::int64_t needed) {
  if (needed <= capacity_) return;
  std::int64_t new_cap = std::max<std::int64_t>(64, capacity_ * 2);
  while (new_cap < needed) new_cap *= 2;
  const ModelConfig& cfg = model_->config();
  for (LayerCache& cache : caches_) {
    Tensor k({new_cap, cfg.n_kv_head, cfg.head_dim()});
    Tensor v({new_cap, cfg.n_kv_head, cfg.head_dim()});
    if (cache.length > 0) {
      k.slice0(0, cache.length).copy_from(cache.k.slice0(0, cache.length));
      v.slice0(0, cache.length).copy_from(cache.v.slice0(0, cache.length));
    }
    cache.k = std::move(k);
    cache.v = std::move(v);
  }
  capacity_ = new_cap;
}

Tensor InferenceSession::advance(const std::vector<std::int32_t>& tokens, std::int64_t pos0) {
  const std::int64_t n = static_cast<std::int64_t>(tokens.size());
  ensure_capacity(pos0 + n);
  Tensor h = model_->embedding().forward(tokens);
  for (std::size_t l = 0; l < model_->blocks().size(); ++l) {
    TransformerBlock& blk = model_->blocks()[l];
    LayerCache& cache = caches_[l];
    NormStats st1;
    Tensor xn = blk.norm1().forward(h, st1);
    AttentionLayer::Qkv qkv = blk.attention().project_qkv(xn, pos0);
    // Append this chunk's K/V to the cache, then attend against the full
    // prefix — one online step over the cached keys (the FPDT recurrence
    // with the cache as the single accumulated KV block).
    cache.k.slice0(pos0, pos0 + n).copy_from(qkv.k);
    cache.v.slice0(pos0, pos0 + n).copy_from(qkv.v);
    cache.length = pos0 + n;
    OnlineAttnState state =
        OnlineAttnState::create(n, qkv.q.dim(1), qkv.q.dim(2));
    online_attn_step(state, qkv.q, cache.k.slice0(0, cache.length),
                     cache.v.slice0(0, cache.length), /*causal=*/true, pos0, 0);
    AttentionOutput out = online_attn_finalize(state);
    Tensor y = add(h, blk.attention().project_out(out.out));
    NormStats st2;
    Tensor yn = blk.norm2().forward(y, st2);
    h = add(y, blk.ffn().forward(yn));
  }
  position_ = pos0 + n;
  return h;
}

Tensor InferenceSession::prefill(const std::vector<std::int32_t>& prompt) {
  FPDT_CHECK(!prefilled_) << " prefill may run once per session";
  FPDT_CHECK(!prompt.empty()) << " empty prompt";
  prefilled_ = true;
  const std::int64_t n = static_cast<std::int64_t>(prompt.size());
  const std::int64_t chunk = prefill_chunk_ > 0 ? prefill_chunk_ : n;
  Tensor last_hidden;
  for (std::int64_t start = 0; start < n; start += chunk) {
    const std::int64_t end = std::min(n, start + chunk);
    std::vector<std::int32_t> piece(prompt.begin() + start, prompt.begin() + end);
    last_hidden = advance(piece, start);
  }
  NormStats st;
  Tensor hn = model_->final_norm().forward(last_hidden, st);
  Tensor last = hn.slice0(hn.dim(0) - 1, hn.dim(0));
  return matmul_nt(last, model_->lm_head().weight().value)
      .reshape({model_->config().vocab});
}

Tensor InferenceSession::decode(std::int32_t token) {
  FPDT_CHECK(prefilled_) << " decode before prefill";
  Tensor h = advance({token}, position_);
  NormStats st;
  Tensor hn = model_->final_norm().forward(h, st);
  return matmul_nt(hn, model_->lm_head().weight().value)
      .reshape({model_->config().vocab});
}

std::pair<Tensor, Tensor> InferenceSession::cache_view(std::size_t layer) const {
  FPDT_CHECK_LT(layer, caches_.size()) << " bad layer index";
  const LayerCache& cache = caches_[layer];
  return {cache.k.slice0(0, cache.length).clone(), cache.v.slice0(0, cache.length).clone()};
}

std::int64_t InferenceSession::kv_cache_bytes() const {
  std::int64_t total = 0;
  for (const LayerCache& cache : caches_) {
    total += 2 * cache.length * model_->config().n_kv_head * model_->config().head_dim() * 2;
  }
  return total;
}

namespace {

std::int32_t pick_token(const Tensor& logits, const SampleOptions& options, Rng& rng) {
  // Greedy path is all the cached generator needs for exact parity with
  // nn::generate; sampling paths share the same logits so delegating to a
  // one-step generate would recompute — replicate the greedy rule here and
  // fall back to generate()'s sampling for stochastic settings.
  (void)rng;
  FPDT_CHECK(options.temperature <= 0.0)
      << " generate_cached currently supports greedy decoding";
  std::int64_t best = 0;
  for (std::int64_t i = 1; i < logits.numel(); ++i) {
    if (logits.data()[i] > logits.data()[best]) best = i;
  }
  return static_cast<std::int32_t>(best);
}

}  // namespace

std::vector<std::int32_t> generate_cached(Model& model, std::vector<std::int32_t> prompt,
                                          std::int64_t new_tokens, const SampleOptions& options,
                                          Rng& rng, std::int64_t prefill_chunk) {
  InferenceSession session(model, prefill_chunk);
  Tensor logits = session.prefill(prompt);
  for (std::int64_t t = 0; t < new_tokens; ++t) {
    const std::int32_t token = pick_token(logits, options, rng);
    prompt.push_back(token);
    if (t + 1 < new_tokens) logits = session.decode(token);
  }
  return prompt;
}

}  // namespace fpdt::nn
