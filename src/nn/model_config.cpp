#include "nn/model_config.h"

#include "common/check.h"

namespace fpdt::nn {

std::int64_t ModelConfig::param_count() const {
  const std::int64_t d = d_model;
  const std::int64_t kv_dim = n_kv_head * head_dim();
  // Attention: Wq [d,d], Wk/Wv [kv_dim,d], Wo [d,d].
  const std::int64_t attn = d * d + 2 * kv_dim * d + d * d;
  // FFN: GPT MLP has 2 matrices (d*f + f*d); SwiGLU has 3 (gate, up, down).
  const std::int64_t ffn =
      arch == Arch::kLlama ? 3 * d * ffn_hidden : 2 * d * ffn_hidden;
  // Norms: 2 per block (gamma [+ beta for GPT]).
  const std::int64_t norms = (arch == Arch::kLlama ? 2 : 4) * d;
  const std::int64_t block = attn + ffn + norms;
  const std::int64_t embed = vocab * d;
  const std::int64_t head = vocab * d;  // untied LM head
  const std::int64_t final_norm = arch == Arch::kLlama ? d : 2 * d;
  return n_layer * block + embed + head + final_norm;
}

double ModelConfig::train_flops_per_token(std::int64_t seq_len) const {
  // Standard Megatron-style MFU accounting: 6 FLOPs per parameter per token
  // (fwd 2 + bwd 4) for the dense part, plus 12*L*d*s for attention scores
  // and values (the convention does not discount the causal mask).
  const double dense = 6.0 * static_cast<double>(param_count());
  const double attn = 12.0 * static_cast<double>(n_layer) * static_cast<double>(d_model) *
                      static_cast<double>(seq_len);
  return dense + attn;
}

namespace {

ModelConfig make(const std::string& name, Arch arch, std::int64_t layers, std::int64_t d,
                 std::int64_t heads, std::int64_t kv_heads, std::int64_t ffn,
                 std::int64_t vocab) {
  ModelConfig c;
  c.name = name;
  c.arch = arch;
  c.n_layer = layers;
  c.d_model = d;
  c.n_head = heads;
  c.n_kv_head = kv_heads;
  c.ffn_hidden = ffn;
  c.vocab = vocab;
  return c;
}

}  // namespace

ModelConfig gpt_2p7b() { return make("gpt-2.7b", Arch::kGpt, 32, 2560, 32, 32, 4 * 2560, 50304); }
ModelConfig gpt_6p7b() { return make("gpt-6.7b", Arch::kGpt, 32, 4096, 32, 32, 4 * 4096, 50304); }
ModelConfig gpt_13b() { return make("gpt-13b", Arch::kGpt, 40, 5120, 40, 40, 4 * 5120, 50304); }
ModelConfig gpt_30b() { return make("gpt-30b", Arch::kGpt, 48, 7168, 56, 56, 4 * 7168, 50304); }
ModelConfig llama_8b() {
  return make("llama-8b", Arch::kLlama, 32, 4096, 32, 8, 14336, 128256);
}
ModelConfig llama_70b() {
  return make("llama-70b", Arch::kLlama, 80, 8192, 64, 8, 28672, 128256);
}

ModelConfig tiny_gpt(std::int64_t d_model, std::int64_t n_layer, std::int64_t n_head,
                     std::int64_t vocab) {
  return make("tiny-gpt", Arch::kGpt, n_layer, d_model, n_head, n_head, 4 * d_model, vocab);
}

ModelConfig tiny_llama(std::int64_t d_model, std::int64_t n_layer, std::int64_t n_head,
                       std::int64_t n_kv_head, std::int64_t vocab) {
  return make("tiny-llama", Arch::kLlama, n_layer, d_model, n_head, n_kv_head,
              d_model * 8 / 3 / 2 * 2, vocab);
}

ModelConfig model_by_name(const std::string& name) {
  if (name == "gpt-2.7b") return gpt_2p7b();
  if (name == "gpt-6.7b") return gpt_6p7b();
  if (name == "gpt-13b") return gpt_13b();
  if (name == "gpt-30b") return gpt_30b();
  if (name == "llama-8b") return llama_8b();
  if (name == "llama-70b") return llama_70b();
  if (name == "tiny-gpt") return tiny_gpt();
  if (name == "tiny-llama") return tiny_llama();
  throw FpdtError("unknown model: " + name);
}

}  // namespace fpdt::nn
