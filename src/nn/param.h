// Parameter = value + gradient accumulator, owned by its layer. Layers
// expose their parameters through visit() so optimizers, ZeRO partitioning
// and weight cloning never need layer-specific code.
#pragma once

#include <functional>
#include <string>

#include "tensor/tensor.h"

namespace fpdt::nn {

struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  Param() = default;
  Param(std::string n, Tensor v) : name(std::move(n)), value(std::move(v)) {
    grad = Tensor::zeros(value.shape());
  }

  void zero_grad() { grad.zero_(); }
  std::int64_t numel() const { return value.numel(); }
};

using ParamVisitor = std::function<void(Param&)>;

}  // namespace fpdt::nn
