#include "nn/training.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace fpdt::nn {

CosineLrSchedule::CosineLrSchedule(double peak_lr, double min_lr, std::int64_t warmup_steps,
                                   std::int64_t total_steps)
    : peak_lr_(peak_lr),
      min_lr_(min_lr),
      warmup_steps_(warmup_steps),
      total_steps_(total_steps) {
  FPDT_CHECK_GE(total_steps, 1) << " schedule length";
  FPDT_CHECK_GE(warmup_steps, 0) << " warmup";
  FPDT_CHECK_LE(min_lr, peak_lr) << " min_lr above peak";
}

double CosineLrSchedule::lr_at(std::int64_t step) const {
  if (warmup_steps_ > 0 && step < warmup_steps_) {
    return peak_lr_ * static_cast<double>(step + 1) / static_cast<double>(warmup_steps_);
  }
  if (step >= total_steps_) return min_lr_;
  const double progress = static_cast<double>(step - warmup_steps_) /
                          static_cast<double>(std::max<std::int64_t>(1, total_steps_ - warmup_steps_));
  const double cosine = 0.5 * (1.0 + std::cos(std::numbers::pi * progress));
  return min_lr_ + (peak_lr_ - min_lr_) * cosine;
}

double clip_grad_norm(const std::function<void(const ParamVisitor&)>& walk, double max_norm) {
  FPDT_CHECK_GT(max_norm, 0.0) << " clip threshold";
  double sum_sq = 0.0;
  walk([&](Param& p) {
    for (float g : p.grad.span()) sum_sq += static_cast<double>(g) * static_cast<double>(g);
  });
  const double norm = std::sqrt(sum_sq);
  if (norm > max_norm) {
    const float scale = static_cast<float>(max_norm / norm);
    walk([&](Param& p) { scale_(p.grad, scale); });
  }
  return norm;
}

}  // namespace fpdt::nn
