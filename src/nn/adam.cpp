#include "nn/adam.h"

#include <cmath>

#include "common/check.h"
#include "obs/trace.h"

namespace fpdt::nn {

Adam::Adam(double lr, double beta1, double beta2, double eps, double weight_decay)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps), weight_decay_(weight_decay) {}

Adam::Moments& Adam::ensure_moments(const Param& p) {
  auto [it, inserted] = state_.try_emplace(p.name);
  if (inserted) {
    it->second.m = Tensor::zeros(p.value.shape());
    it->second.v = Tensor::zeros(p.value.shape());
  }
  return it->second;
}

void Adam::step(const std::function<void(const ParamVisitor&)>& walk) {
  FPDT_TRACE_SCOPE(obs::kCatPhase, "optimizer");
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  walk([&](Param& p) {
    Moments& mom = ensure_moments(p);
    FPDT_CHECK_EQ(mom.m.numel(), p.value.numel()) << " adam state shape for " << p.name;
    float* w = p.value.data();
    float* g = p.grad.data();
    float* m = mom.m.data();
    float* v = mom.v.data();
    const float b1 = static_cast<float>(beta1_);
    const float b2 = static_cast<float>(beta2_);
    for (std::int64_t i = 0; i < p.value.numel(); ++i) {
      m[i] = b1 * m[i] + (1.0f - b1) * g[i];
      v[i] = b2 * v[i] + (1.0f - b2) * g[i] * g[i];
      const double mhat = static_cast<double>(m[i]) / bc1;
      const double vhat = static_cast<double>(v[i]) / bc2;
      // Decoupled weight decay (AdamW): applied directly to the weight,
      // not through the moments.
      w[i] -= static_cast<float>(lr_ * (mhat / (std::sqrt(vhat) + eps_) +
                                        weight_decay_ * static_cast<double>(w[i])));
      g[i] = 0.0f;
    }
  });
}

}  // namespace fpdt::nn
