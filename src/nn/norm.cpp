#include "nn/norm.h"

#include <cmath>

#include "common/check.h"
#include "kernels/backend.h"

namespace fpdt::nn {

LayerNorm::LayerNorm(std::string name, std::int64_t dim) {
  gamma_ = Param(name + ".gamma", Tensor::full({dim}, 1.0f));
  beta_ = Param(name + ".beta", Tensor::zeros({dim}));
}

Tensor LayerNorm::forward(const Tensor& x, NormStats& stats) const {
  const std::int64_t n = x.dim(-1);
  const std::int64_t rows = x.numel() / n;
  Tensor y(x.shape());
  stats.mean = Tensor({rows});
  stats.rstd = Tensor({rows});
  kernels::active().layernorm_forward(x.data(), gamma_.value.data(), beta_.value.data(), y.data(),
                                      stats.mean.data(), stats.rstd.data(), rows, n, eps_);
  return y;
}

Tensor LayerNorm::backward(const Tensor& dy, const Tensor& x, const NormStats& stats) {
  const std::int64_t n = x.dim(-1);
  const std::int64_t rows = x.numel() / n;
  FPDT_CHECK_EQ(dy.numel(), x.numel()) << " layernorm backward";
  Tensor dx(x.shape());
  kernels::active().layernorm_backward(x.data(), dy.data(), gamma_.value.data(),
                                       stats.mean.data(), stats.rstd.data(), dx.data(),
                                       gamma_.grad.data(), beta_.grad.data(), rows, n);
  return dx;
}

RmsNorm::RmsNorm(std::string name, std::int64_t dim) {
  gamma_ = Param(name + ".gamma", Tensor::full({dim}, 1.0f));
}

Tensor RmsNorm::forward(const Tensor& x, NormStats& stats) const {
  const std::int64_t n = x.dim(-1);
  const std::int64_t rows = x.numel() / n;
  Tensor y(x.shape());
  stats.rstd = Tensor({rows});
  kernels::active().rmsnorm_forward(x.data(), gamma_.value.data(), y.data(), stats.rstd.data(),
                                    rows, n, eps_);
  return y;
}

Tensor RmsNorm::backward(const Tensor& dy, const Tensor& x, const NormStats& stats) {
  const std::int64_t n = x.dim(-1);
  const std::int64_t rows = x.numel() / n;
  Tensor dx(x.shape());
  kernels::active().rmsnorm_backward(x.data(), dy.data(), gamma_.value.data(),
                                     stats.rstd.data(), dx.data(), gamma_.grad.data(), rows, n);
  return dx;
}

}  // namespace fpdt::nn
