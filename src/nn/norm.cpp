#include "nn/norm.h"

#include <cmath>

#include "common/check.h"

namespace fpdt::nn {

LayerNorm::LayerNorm(std::string name, std::int64_t dim) {
  gamma_ = Param(name + ".gamma", Tensor::full({dim}, 1.0f));
  beta_ = Param(name + ".beta", Tensor::zeros({dim}));
}

Tensor LayerNorm::forward(const Tensor& x, NormStats& stats) const {
  const std::int64_t n = x.dim(-1);
  const std::int64_t rows = x.numel() / n;
  Tensor y(x.shape());
  stats.mean = Tensor({rows});
  stats.rstd = Tensor({rows});
  const float* xp = x.data();
  float* yp = y.data();
  const float* g = gamma_.value.data();
  const float* b = beta_.value.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = xp + r * n;
    float mean = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) mean += row[j];
    mean /= static_cast<float>(n);
    float var = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) {
      const float d = row[j] - mean;
      var += d * d;
    }
    var /= static_cast<float>(n);
    const float rstd = 1.0f / std::sqrt(var + eps_);
    stats.mean.data()[r] = mean;
    stats.rstd.data()[r] = rstd;
    float* out = yp + r * n;
    for (std::int64_t j = 0; j < n; ++j) out[j] = (row[j] - mean) * rstd * g[j] + b[j];
  }
  return y;
}

Tensor LayerNorm::backward(const Tensor& dy, const Tensor& x, const NormStats& stats) {
  const std::int64_t n = x.dim(-1);
  const std::int64_t rows = x.numel() / n;
  FPDT_CHECK_EQ(dy.numel(), x.numel()) << " layernorm backward";
  Tensor dx(x.shape());
  const float* xp = x.data();
  const float* dyp = dy.data();
  float* dxp = dx.data();
  const float* g = gamma_.value.data();
  float* dg = gamma_.grad.data();
  float* db = beta_.grad.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float mean = stats.mean.data()[r];
    const float rstd = stats.rstd.data()[r];
    const float* xr = xp + r * n;
    const float* dyr = dyp + r * n;
    float* dxr = dxp + r * n;
    // xhat_j = (x_j - mean) * rstd; dxhat_j = dy_j * gamma_j.
    float sum_dxhat = 0.0f;
    float sum_dxhat_xhat = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) {
      const float xhat = (xr[j] - mean) * rstd;
      const float dxhat = dyr[j] * g[j];
      sum_dxhat += dxhat;
      sum_dxhat_xhat += dxhat * xhat;
      dg[j] += dyr[j] * xhat;
      db[j] += dyr[j];
    }
    const float inv_n = 1.0f / static_cast<float>(n);
    for (std::int64_t j = 0; j < n; ++j) {
      const float xhat = (xr[j] - mean) * rstd;
      const float dxhat = dyr[j] * g[j];
      dxr[j] = rstd * (dxhat - inv_n * sum_dxhat - xhat * inv_n * sum_dxhat_xhat);
    }
  }
  return dx;
}

RmsNorm::RmsNorm(std::string name, std::int64_t dim) {
  gamma_ = Param(name + ".gamma", Tensor::full({dim}, 1.0f));
}

Tensor RmsNorm::forward(const Tensor& x, NormStats& stats) const {
  const std::int64_t n = x.dim(-1);
  const std::int64_t rows = x.numel() / n;
  Tensor y(x.shape());
  stats.rstd = Tensor({rows});
  const float* xp = x.data();
  float* yp = y.data();
  const float* g = gamma_.value.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = xp + r * n;
    float ms = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) ms += row[j] * row[j];
    ms /= static_cast<float>(n);
    const float rstd = 1.0f / std::sqrt(ms + eps_);
    stats.rstd.data()[r] = rstd;
    float* out = yp + r * n;
    for (std::int64_t j = 0; j < n; ++j) out[j] = row[j] * rstd * g[j];
  }
  return y;
}

Tensor RmsNorm::backward(const Tensor& dy, const Tensor& x, const NormStats& stats) {
  const std::int64_t n = x.dim(-1);
  const std::int64_t rows = x.numel() / n;
  Tensor dx(x.shape());
  const float* xp = x.data();
  const float* dyp = dy.data();
  float* dxp = dx.data();
  const float* g = gamma_.value.data();
  float* dg = gamma_.grad.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float rstd = stats.rstd.data()[r];
    const float* xr = xp + r * n;
    const float* dyr = dyp + r * n;
    float* dxr = dxp + r * n;
    float sum_dg_x = 0.0f;  // Σ dy_j * gamma_j * x_j
    for (std::int64_t j = 0; j < n; ++j) {
      sum_dg_x += dyr[j] * g[j] * xr[j];
      dg[j] += dyr[j] * xr[j] * rstd;
    }
    const float k = sum_dg_x * rstd * rstd * rstd / static_cast<float>(n);
    for (std::int64_t j = 0; j < n; ++j) {
      dxr[j] = dyr[j] * g[j] * rstd - xr[j] * k;
    }
  }
  return dx;
}

}  // namespace fpdt::nn
