#include "nn/rope.h"

#include <cmath>
#include <vector>

#include "common/check.h"

namespace fpdt::nn {

namespace {

void rotate(Tensor& x, std::int64_t pos0, double base, double sign) {
  FPDT_CHECK_EQ(x.ndim(), 3) << " rope expects [s, h, d]";
  const std::int64_t s = x.dim(0);
  const std::int64_t h = x.dim(1);
  const std::int64_t d = x.dim(2);
  FPDT_CHECK_EQ(d % 2, 0) << " rope head dim must be even";
  const std::int64_t half = d / 2;
  std::vector<double> inv_freq(static_cast<std::size_t>(half));
  for (std::int64_t i = 0; i < half; ++i) {
    inv_freq[static_cast<std::size_t>(i)] =
        std::pow(base, -2.0 * static_cast<double>(i) / static_cast<double>(d));
  }
  float* xp = x.data();
  for (std::int64_t t = 0; t < s; ++t) {
    const double pos = static_cast<double>(pos0 + t);
    for (std::int64_t i = 0; i < half; ++i) {
      const double theta = sign * pos * inv_freq[static_cast<std::size_t>(i)];
      const float c = static_cast<float>(std::cos(theta));
      const float sn = static_cast<float>(std::sin(theta));
      for (std::int64_t hd = 0; hd < h; ++hd) {
        float* pair = xp + (t * h + hd) * d + 2 * i;
        const float a = pair[0];
        const float b = pair[1];
        pair[0] = a * c - b * sn;
        pair[1] = a * sn + b * c;
      }
    }
  }
}

}  // namespace

void rope_apply_(Tensor& x, std::int64_t pos0, double base) { rotate(x, pos0, base, 1.0); }

void rope_apply_backward_(Tensor& dx, std::int64_t pos0, double base) {
  rotate(dx, pos0, base, -1.0);
}

}  // namespace fpdt::nn
