#include "nn/ffn.h"

#include "common/check.h"
#include "nn/activation.h"

namespace fpdt::nn {

namespace {

using runtime::Allocation;
using runtime::Dtype;
using runtime::dtype_size;

std::int64_t bf16_bytes(std::int64_t numel) { return numel * dtype_size(Dtype::kBF16); }

}  // namespace

FeedForward::FeedForward(std::string name, Arch arch, std::int64_t d_model, std::int64_t hidden,
                         Rng& rng)
    : arch_(arch), hidden_(hidden) {
  const bool bias = arch == Arch::kGpt;
  fc1_ = Linear(name + (arch == Arch::kLlama ? ".gate" : ".fc1"), d_model, hidden, bias, rng);
  fc2_ = Linear(name + (arch == Arch::kLlama ? ".down" : ".fc2"), hidden, d_model, bias, rng);
  if (arch == Arch::kLlama) {
    fc3_ = Linear(name + ".up", d_model, hidden, false, rng);
  }
}

void FeedForward::visit(const ParamVisitor& fn) {
  fc1_.visit(fn);
  fc2_.visit(fn);
  if (arch_ == Arch::kLlama) fc3_.visit(fn);
}

Tensor FeedForward::forward(const Tensor& x, std::int64_t chunks,
                            runtime::MemoryPool* pool) const {
  FPDT_CHECK_EQ(x.ndim(), 2) << " ffn input must be [s, d]";
  const std::int64_t s = x.dim(0);
  chunks = std::min(std::max<std::int64_t>(chunks, 1), s);
  Tensor y(x.shape());
  const std::int64_t base = s / chunks;
  const std::int64_t rem = s % chunks;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::int64_t len = base + (c < rem ? 1 : 0);
    if (len == 0) continue;
    Tensor yc = forward_chunk(x.slice0(row, row + len), pool);
    y.slice0(row, row + len).copy_from(yc);
    row += len;
  }
  return y;
}

Tensor FeedForward::forward_chunk(const Tensor& xc, runtime::MemoryPool* pool) const {
  const std::int64_t len = xc.dim(0);
  if (arch_ == Arch::kGpt) {
    Allocation pre(pool, bf16_bytes(len * hidden_));
    Tensor u = fc1_.forward(xc);
    Allocation act(pool, bf16_bytes(len * hidden_));
    Tensor h = gelu_forward(u);
    return fc2_.forward(h);
  }
  Allocation gate(pool, bf16_bytes(len * hidden_));
  Tensor g = fc1_.forward(xc);
  Allocation up(pool, bf16_bytes(len * hidden_));
  Tensor u = fc3_.forward(xc);
  Allocation act(pool, bf16_bytes(len * hidden_));
  Tensor h = mul(silu_forward(g), u);
  return fc2_.forward(h);
}

Tensor FeedForward::backward(const Tensor& dy, const Tensor& x, std::int64_t chunks,
                             runtime::MemoryPool* pool) {
  FPDT_CHECK(dy.shape() == x.shape()) << " ffn backward shapes";
  const std::int64_t s = x.dim(0);
  chunks = std::min(std::max<std::int64_t>(chunks, 1), s);
  Tensor dx(x.shape());
  const std::int64_t base = s / chunks;
  const std::int64_t rem = s % chunks;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::int64_t len = base + (c < rem ? 1 : 0);
    if (len == 0) continue;
    Tensor dxc = backward_chunk(dy.slice0(row, row + len), x.slice0(row, row + len), pool);
    dx.slice0(row, row + len).copy_from(dxc);
    row += len;
  }
  return dx;
}

Tensor FeedForward::backward_chunk(const Tensor& dyc, const Tensor& xc,
                                   runtime::MemoryPool* pool) {
  const std::int64_t len = xc.dim(0);
  if (arch_ == Arch::kGpt) {
    // Recompute pre-activation u and activation h, then the standard chain.
    // Buffers are released the moment their last consumer runs, so at most
    // three hidden-sized buffers are live at once.
    Allocation pre(pool, bf16_bytes(len * hidden_));
    Tensor u = fc1_.forward(xc);
    Allocation act(pool, bf16_bytes(len * hidden_));
    Tensor h = gelu_forward(u);
    Allocation grad_h(pool, bf16_bytes(len * hidden_));
    Tensor dh = fc2_.backward(dyc, h);
    h = Tensor();
    act.release();
    Allocation grad_u(pool, bf16_bytes(len * hidden_));
    Tensor du = gelu_backward(dh, u);
    dh = Tensor();
    grad_h.release();
    u = Tensor();
    pre.release();
    return fc1_.backward(du, xc);
  }
  Allocation gate(pool, bf16_bytes(len * hidden_));
  Tensor g = fc1_.forward(xc);
  Allocation up(pool, bf16_bytes(len * hidden_));
  Tensor u = fc3_.forward(xc);
  Allocation act(pool, bf16_bytes(2 * len * hidden_));  // silu(g) and h
  Tensor sg = silu_forward(g);
  Tensor h = mul(sg, u);
  Allocation grad_h(pool, bf16_bytes(len * hidden_));
  Tensor dh = fc2_.backward(dyc, h);
  h = Tensor();
  // dgate = dh ⊙ u ⊙ silu'(g); dup = dh ⊙ silu(g).
  Allocation grad_branches(pool, bf16_bytes(2 * len * hidden_));
  Tensor dg = silu_backward(mul(dh, u), g);
  Tensor du = mul(dh, sg);
  dh = Tensor();
  grad_h.release();
  sg = Tensor();
  g = Tensor();
  u = Tensor();
  act.release();
  gate.release();
  up.release();
  Tensor dx = fc1_.backward(dg, xc);
  add_(dx, fc3_.backward(du, xc));
  return dx;
}

}  // namespace fpdt::nn
