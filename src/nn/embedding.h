// Token embedding with scatter-add backward.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/param.h"
#include "tensor/tensor.h"

namespace fpdt::nn {

class Embedding {
 public:
  Embedding() = default;
  Embedding(std::string name, std::int64_t vocab, std::int64_t dim, Rng& rng);

  // tokens: [s] of ids -> [s, dim].
  Tensor forward(const std::vector<std::int32_t>& tokens) const;

  // Accumulates into the weight grad.
  void backward(const Tensor& dy, const std::vector<std::int32_t>& tokens);

  void visit(const ParamVisitor& fn) { fn(weight_); }
  std::int64_t vocab() const { return weight_.value.dim(0); }
  std::int64_t dim() const { return weight_.value.dim(1); }

 private:
  Param weight_;  // [vocab, dim]
};

}  // namespace fpdt::nn
