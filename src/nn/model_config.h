// Model architecture descriptions for the GPT and Llama families used in the
// paper's evaluation (2.7B…70B), plus tiny variants for functional tests and
// the convergence experiment (Fig. 14).
#pragma once

#include <cstdint>
#include <string>

namespace fpdt::nn {

enum class Arch {
  kGpt,    // LayerNorm + GELU MLP + learned/rotary positions, MHA
  kLlama,  // RMSNorm + SwiGLU + RoPE, grouped-query attention
};

struct ModelConfig {
  std::string name;
  Arch arch = Arch::kGpt;
  std::int64_t n_layer = 0;
  std::int64_t d_model = 0;
  std::int64_t n_head = 0;
  std::int64_t n_kv_head = 0;  // == n_head for MHA
  std::int64_t ffn_hidden = 0;
  std::int64_t vocab = 0;
  double rope_base = 10000.0;

  std::int64_t head_dim() const { return d_model / n_head; }

  // Parameter count (embeddings + blocks + final norm + untied LM head).
  std::int64_t param_count() const;

  // Training FLOPs per token for sequence length s (fwd + bwd, standard
  // 6N + attention term accounting; causal attention halves the quadratic
  // term). Used for MFU.
  double train_flops_per_token(std::int64_t seq_len) const;
};

// The six evaluation models of the paper plus small test configs.
ModelConfig gpt_2p7b();
ModelConfig gpt_6p7b();
ModelConfig gpt_13b();
ModelConfig gpt_30b();
ModelConfig llama_8b();
ModelConfig llama_70b();

// Tiny models for unit tests / convergence runs; head count chosen divisible
// by 2 and 4 so they shard across small emulated groups.
ModelConfig tiny_gpt(std::int64_t d_model = 64, std::int64_t n_layer = 2, std::int64_t n_head = 4,
                     std::int64_t vocab = 96);
ModelConfig tiny_llama(std::int64_t d_model = 64, std::int64_t n_layer = 2,
                       std::int64_t n_head = 4, std::int64_t n_kv_head = 2,
                       std::int64_t vocab = 96);

// Look up any config by name ("gpt-2.7b", "llama-8b", ...). Throws on miss.
ModelConfig model_by_name(const std::string& name);

}  // namespace fpdt::nn
