#include "nn/lm_head.h"

#include <cmath>

#include "common/check.h"

namespace fpdt::nn {

LmHead::LmHead(std::string name, std::int64_t dim, std::int64_t vocab, Rng& rng) {
  const double stddev = 1.0 / std::sqrt(static_cast<double>(dim));
  weight_ = Param(name + ".weight", Tensor::randn({vocab, dim}, rng, 0.0, stddev));
}

std::int64_t LmHead::suggested_chunks() const {
  const std::int64_t vocab = weight_.value.dim(0);
  const std::int64_t dim = weight_.value.dim(1);
  return std::max<std::int64_t>(1, vocab / dim * 2);
}

LossResult LmHead::forward_backward(const Tensor& x, const std::vector<std::int32_t>& targets,
                                    std::int64_t chunks, std::int64_t loss_scale_tokens,
                                    runtime::MemoryPool* pool) {
  FPDT_CHECK_EQ(x.ndim(), 2) << " lm head input must be [s, d]";
  const std::int64_t s = x.dim(0);
  const std::int64_t dim = x.dim(1);
  const std::int64_t vocab = weight_.value.dim(0);
  FPDT_CHECK_EQ(dim, weight_.value.dim(1)) << " lm head width";
  FPDT_CHECK_EQ(static_cast<std::int64_t>(targets.size()), s) << " target count";
  FPDT_CHECK_GE(loss_scale_tokens, 1) << " loss scale";
  chunks = std::min(std::max<std::int64_t>(chunks, 1), s);

  LossResult result;
  result.dx = Tensor::zeros({s, dim});
  const float inv_tokens = 1.0f / static_cast<float>(loss_scale_tokens);

  const std::int64_t base = s / chunks;
  const std::int64_t rem = s % chunks;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::int64_t len = base + (c < rem ? 1 : 0);
    if (len == 0) continue;
    Tensor xc = x.slice0(row, row + len);

    // Logits buffer is FP32 (paper §5.4: the loss "usually requires a
    // Float32 data type") — the measured spike scales with len * vocab.
    runtime::Allocation logits_charge(
        pool, len * vocab * runtime::dtype_size(runtime::Dtype::kFP32));
    Tensor logits = matmul_nt(xc.reshape({len, dim}), weight_.value);  // [len, vocab]

    // Fused softmax + CE + gradient, in place in the logits buffer.
    float* lp = logits.data();
    for (std::int64_t i = 0; i < len; ++i) {
      float* lrow = lp + i * vocab;
      float m = lrow[0];
      for (std::int64_t j = 1; j < vocab; ++j) m = std::max(m, lrow[j]);
      double z = 0.0;
      for (std::int64_t j = 0; j < vocab; ++j) z += std::exp(static_cast<double>(lrow[j] - m));
      const float lse = m + static_cast<float>(std::log(z));
      const std::int64_t target = targets[static_cast<std::size_t>(row + i)];
      if (target == kIgnoreTarget) {
        // Padding: no loss, no gradient from this row.
        for (std::int64_t j = 0; j < vocab; ++j) lrow[j] = 0.0f;
        continue;
      }
      FPDT_CHECK(target >= 0 && target < vocab) << " target id " << target;
      result.loss_sum += static_cast<double>(lse - lrow[target]);
      result.token_count += 1;
      // dlogits = (softmax - one_hot) / loss_scale_tokens, written in place.
      for (std::int64_t j = 0; j < vocab; ++j) {
        lrow[j] = std::exp(lrow[j] - lse) * inv_tokens;
      }
      lrow[target] -= inv_tokens;
    }

    // dx_chunk = dlogits · W; dW += dlogitsᵀ · x_chunk.
    Tensor dxc = matmul(logits, weight_.value);
    result.dx.slice0(row, row + len).copy_from(dxc);
    Tensor dw = matmul_tn(logits, xc.reshape({len, dim}));
    add_(weight_.grad, dw);

    row += len;
  }
  return result;
}

}  // namespace fpdt::nn
