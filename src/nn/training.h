// Training-loop utilities: learning-rate schedules, global gradient-norm
// clipping, and a tokens/sec meter. These are the pieces a real
// long-context pretraining run wraps around FpdtTrainer.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

#include "nn/param.h"

namespace fpdt::nn {

// Linear warmup followed by cosine decay to min_lr — the standard LLM
// pretraining schedule.
class CosineLrSchedule {
 public:
  CosineLrSchedule(double peak_lr, double min_lr, std::int64_t warmup_steps,
                   std::int64_t total_steps);

  double lr_at(std::int64_t step) const;

 private:
  double peak_lr_, min_lr_;
  std::int64_t warmup_steps_, total_steps_;
};

// Global L2 gradient-norm clipping over all parameters the walker visits.
// Returns the pre-clip norm. Scale is applied only when norm > max_norm.
double clip_grad_norm(const std::function<void(const ParamVisitor&)>& walk, double max_norm);

// Simple throughput meter for examples/benches.
class ThroughputMeter {
 public:
  void step(std::int64_t tokens) {
    if (steps_ == 0) start_ = Clock::now();
    tokens_ += tokens;
    ++steps_;
  }

  double tokens_per_second() const {
    if (steps_ < 2) return 0.0;
    const double secs =
        std::chrono::duration<double>(Clock::now() - start_).count();
    return secs > 0 ? static_cast<double>(tokens_) / secs : 0.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  std::int64_t tokens_ = 0;
  std::int64_t steps_ = 0;
};

}  // namespace fpdt::nn
