// Autoregressive generation from a trained Model — greedy or
// temperature/top-k sampling. Inference recomputes the full prefix each
// step (no KV cache): fine at demo scale and keeps the forward path single.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/model.h"

namespace fpdt::nn {

struct SampleOptions {
  double temperature = 1.0;  // <= 0 means greedy argmax
  std::int64_t top_k = 0;    // 0 = no truncation
};

// Logits over the vocabulary for the next token after `prompt`.
Tensor next_token_logits(Model& model, const std::vector<std::int32_t>& prompt);

// Extends `prompt` by `new_tokens` sampled tokens; returns the full stream.
std::vector<std::int32_t> generate(Model& model, std::vector<std::int32_t> prompt,
                                   std::int64_t new_tokens, const SampleOptions& options,
                                   Rng& rng);

}  // namespace fpdt::nn
