// Autoregressive generation from a trained Model — greedy or
// temperature/top-k sampling. Greedy decoding routes through the KV-cached
// InferenceSession (chunked prefill + O(1) decode steps, bitwise-identical
// logits); sampling paths recompute the full prefix each step, which keeps
// the stochastic path single and is fine at demo scale. Set
// SampleOptions::kv_cache = false to force the recompute path (reference
// semantics for differential tests).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/model.h"

namespace fpdt::nn {

struct SampleOptions {
  double temperature = 1.0;  // <= 0 means greedy argmax
  std::int64_t top_k = 0;    // 0 = no truncation
  bool kv_cache = true;      // greedy only: decode via the cached session
};

// Logits over the vocabulary for the next token after `prompt`.
Tensor next_token_logits(Model& model, const std::vector<std::int32_t>& prompt);

// Extends `prompt` by `new_tokens` sampled tokens; returns the full stream.
std::vector<std::int32_t> generate(Model& model, std::vector<std::int32_t> prompt,
                                   std::int64_t new_tokens, const SampleOptions& options,
                                   Rng& rng);

}  // namespace fpdt::nn
