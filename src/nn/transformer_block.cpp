#include "nn/transformer_block.h"

#include "common/check.h"
#include "nn/rope.h"

namespace fpdt::nn {

Norm::Norm(std::string name, Arch arch, std::int64_t dim) : arch_(arch) {
  if (arch_ == Arch::kGpt) {
    ln_ = LayerNorm(std::move(name), dim);
  } else {
    rms_ = RmsNorm(std::move(name), dim);
  }
}

Tensor Norm::forward(const Tensor& x, NormStats& stats) const {
  return arch_ == Arch::kGpt ? ln_.forward(x, stats) : rms_.forward(x, stats);
}

Tensor Norm::backward(const Tensor& dy, const Tensor& x, const NormStats& stats) {
  return arch_ == Arch::kGpt ? ln_.backward(dy, x, stats) : rms_.backward(dy, x, stats);
}

void Norm::visit(const ParamVisitor& fn) {
  if (arch_ == Arch::kGpt) {
    ln_.visit(fn);
  } else {
    rms_.visit(fn);
  }
}

AttentionLayer::AttentionLayer(std::string name, const ModelConfig& cfg, Rng& rng)
    : n_head_(cfg.n_head),
      n_kv_head_(cfg.n_kv_head),
      head_dim_(cfg.head_dim()),
      rope_base_(cfg.rope_base) {
  const bool bias = cfg.arch == Arch::kGpt;
  const std::int64_t d = cfg.d_model;
  const std::int64_t kv_dim = n_kv_head_ * head_dim_;
  wq_ = Linear(name + ".wq", d, d, bias, rng);
  wk_ = Linear(name + ".wk", d, kv_dim, bias, rng);
  wv_ = Linear(name + ".wv", d, kv_dim, bias, rng);
  wo_ = Linear(name + ".wo", d, d, bias, rng);
}

AttentionLayer::Qkv AttentionLayer::project_qkv(const Tensor& xn, std::int64_t pos0) const {
  FPDT_CHECK_EQ(xn.ndim(), 2) << " project_qkv input";
  const std::int64_t s = xn.dim(0);
  Qkv qkv;
  qkv.q = wq_.forward(xn).reshape({s, n_head_, head_dim_});
  qkv.k = wk_.forward(xn).reshape({s, n_kv_head_, head_dim_});
  qkv.v = wv_.forward(xn).reshape({s, n_kv_head_, head_dim_});
  rope_apply_(qkv.q, pos0, rope_base_);
  rope_apply_(qkv.k, pos0, rope_base_);
  return qkv;
}

Tensor AttentionLayer::project_out(const Tensor& attn_out) const {
  const std::int64_t s = attn_out.dim(0);
  return wo_.forward(attn_out.reshape({s, n_head_ * head_dim_}));
}

Tensor AttentionLayer::backward_out(const Tensor& dy, const Tensor& attn_out) {
  const std::int64_t s = attn_out.dim(0);
  Tensor d_flat = wo_.backward(dy, attn_out.reshape({s, n_head_ * head_dim_}));
  return d_flat.reshape({s, n_head_, head_dim_});
}

Tensor AttentionLayer::backward_qkv(const Tensor& dq, const Tensor& dk, const Tensor& dv,
                                    const Tensor& xn, std::int64_t pos0) {
  const std::int64_t s = xn.dim(0);
  Tensor dq_rot = dq.clone();
  Tensor dk_rot = dk.clone();
  rope_apply_backward_(dq_rot, pos0, rope_base_);
  rope_apply_backward_(dk_rot, pos0, rope_base_);
  Tensor dxn = wq_.backward(dq_rot.reshape({s, n_head_ * head_dim_}), xn);
  add_(dxn, wk_.backward(dk_rot.reshape({s, n_kv_head_ * head_dim_}), xn));
  add_(dxn, wv_.backward(dv.reshape({s, n_kv_head_ * head_dim_}), xn));
  return dxn;
}

void AttentionLayer::visit(const ParamVisitor& fn) {
  wq_.visit(fn);
  wk_.visit(fn);
  wv_.visit(fn);
  wo_.visit(fn);
}

TransformerBlock::TransformerBlock(std::string name, const ModelConfig& cfg, Rng& rng) {
  norm1_ = Norm(name + ".norm1", cfg.arch, cfg.d_model);
  norm2_ = Norm(name + ".norm2", cfg.arch, cfg.d_model);
  attn_ = AttentionLayer(name + ".attn", cfg, rng);
  ffn_ = FeedForward(name + ".ffn", cfg.arch, cfg.d_model, cfg.ffn_hidden, rng);
}

Tensor TransformerBlock::forward_only(const Tensor& x, std::int64_t pos0,
                                      std::int64_t ffn_chunks) const {
  NormStats st1;
  Tensor xn = norm1_.forward(x, st1);
  AttentionLayer::Qkv qkv = attn_.project_qkv(xn, pos0);
  AttentionOutput ao = reference_attention_forward(qkv.q, qkv.k, qkv.v, /*causal=*/true,
                                                   /*q_pos0=*/pos0, /*k_pos0=*/pos0);
  Tensor y = add(x, attn_.project_out(ao.out));
  NormStats st2;
  Tensor yn = norm2_.forward(y, st2);
  return add(y, ffn_.forward(yn, ffn_chunks));
}

// const_cast-free recompute helpers require non-const members, so the
// backward recomputes through the mutable layer references directly.
Tensor TransformerBlock::backward_with_recompute(const Tensor& dy, const Tensor& x,
                                                 std::int64_t pos0, std::int64_t ffn_chunks) {
  // ---- Recompute forward, keeping what backward needs.
  NormStats st1;
  Tensor xn = norm1_.forward(x, st1);
  AttentionLayer::Qkv qkv = attn_.project_qkv(xn, pos0);
  AttentionOutput ao = reference_attention_forward(qkv.q, qkv.k, qkv.v, /*causal=*/true, pos0,
                                                   pos0);
  Tensor y = add(x, attn_.project_out(ao.out));
  NormStats st2;
  Tensor yn = norm2_.forward(y, st2);

  // ---- Backward. z = y + ffn(yn); dy is dz.
  Tensor dyn = ffn_.backward(dy, yn, ffn_chunks);
  Tensor dy_total = add(dy, norm2_.backward(dyn, y, st2));

  // y = x + wo(attn(qkv(norm1(x)))).
  Tensor dao = attn_.backward_out(dy_total, ao.out);
  AttentionGrads ag = reference_attention_backward(dao, qkv.q, qkv.k, qkv.v, ao.out,
                                                   /*causal=*/true, pos0, pos0);
  Tensor dxn = attn_.backward_qkv(ag.dq, ag.dk, ag.dv, xn, pos0);
  Tensor dx = add(dy_total, norm1_.backward(dxn, x, st1));
  return dx;
}

void TransformerBlock::visit(const ParamVisitor& fn) {
  norm1_.visit(fn);
  attn_.visit(fn);
  norm2_.visit(fn);
  ffn_.visit(fn);
}

}  // namespace fpdt::nn
