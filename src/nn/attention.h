// Attention kernels.
//
// Two implementations of exact causal attention over [s, h, d] tensors:
//
//  1. reference_attention_* — naive O(s²) materialised-scores attention.
//     The ground truth every distributed/chunked path is verified against.
//
//  2. online_attn_* — blockwise *online softmax* attention (the
//     FlashAttention recurrence). Computation proceeds over (query chunk,
//     KV chunk) pairs carrying a running (numerator, row-max, row-sum)
//     state; backward recomputes probabilities from the saved log-sum-exp.
//     This pairwise form is exactly the unit of work FPDT schedules: its
//     forward loop (Fig. 5) is online_attn_step per fetched KV chunk and
//     its backward nested loop (Fig. 7) is online_attn_backward_step per
//     (kv, q) chunk pair.
//
// Grouped-query attention: q has h heads, k/v have hk heads (h % hk == 0);
// query head i reads kv head i / (h / hk).
//
// Causality is decided from *global* token positions (q_pos0 + row,
// k_pos0 + col), so chunked execution with arbitrary chunk offsets remains
// bit-equivalent to the monolithic reference.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace fpdt::nn {

struct AttentionOutput {
  Tensor out;  // [sq, h, d]
  Tensor lse;  // [sq, h] log-sum-exp of each row's logits (saved for bwd)
};

// ---- Reference (naive) attention ------------------------------------------

AttentionOutput reference_attention_forward(const Tensor& q, const Tensor& k, const Tensor& v,
                                            bool causal, std::int64_t q_pos0 = 0,
                                            std::int64_t k_pos0 = 0);

struct AttentionGrads {
  Tensor dq;
  Tensor dk;
  Tensor dv;
};

AttentionGrads reference_attention_backward(const Tensor& dout, const Tensor& q, const Tensor& k,
                                            const Tensor& v, const Tensor& out, bool causal,
                                            std::int64_t q_pos0 = 0, std::int64_t k_pos0 = 0);

// ---- Online (blockwise) attention -----------------------------------------

// Running state for one query chunk. `acc` is the unnormalised output
// numerator; `m`/`l` are the row max and row sum of the online softmax.
struct OnlineAttnState {
  Tensor acc;  // [sq, h, d]
  Tensor m;    // [sq, h], init -inf
  Tensor l;    // [sq, h], init 0

  static OnlineAttnState create(std::int64_t sq, std::int64_t h, std::int64_t d);
};

// Accumulates one KV chunk into the state. Positions of query row i and key
// column j are q_pos0+i and k_pos0+j; with causal=true only j-positions
// <= i-position contribute. Chunk pairs that are entirely masked are a
// no-op (callers normally skip scheduling them).
void online_attn_step(OnlineAttnState& state, const Tensor& q, const Tensor& k, const Tensor& v,
                      bool causal, std::int64_t q_pos0, std::int64_t k_pos0);

// Normalises the accumulator: out = acc / l, lse = m + log(l).
AttentionOutput online_attn_finalize(const OnlineAttnState& state);

// Precomputes D[i,h] = Σ_d dout·out — shared by all backward chunk steps of
// one query chunk.
Tensor online_attn_backward_D(const Tensor& out, const Tensor& dout);

// One (q chunk, kv chunk) backward step: recomputes probabilities from lse,
// accumulates dq += .., dk += .., dv += .. in place. dk/dv have kv-head
// shape [sk, hk, d].
void online_attn_backward_step(const Tensor& q, const Tensor& k, const Tensor& v,
                               const Tensor& dout, const Tensor& lse, const Tensor& D,
                               bool causal, std::int64_t q_pos0, std::int64_t k_pos0, Tensor& dq,
                               Tensor& dk, Tensor& dv);

}  // namespace fpdt::nn
