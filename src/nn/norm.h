// LayerNorm (GPT) and RMSNorm (Llama) with manual backward. Both normalise
// over the last dimension. Backward recomputes the normalised activations
// from saved statistics instead of storing them — the standard
// memory-saving trade the paper's Table 2 accounting assumes.
#pragma once

#include <string>

#include "nn/param.h"
#include "tensor/tensor.h"

namespace fpdt::nn {

// Statistics saved by forward for use in backward.
struct NormStats {
  Tensor mean;  // [rows] (LayerNorm only)
  Tensor rstd;  // [rows]
};

class LayerNorm {
 public:
  LayerNorm() = default;
  LayerNorm(std::string name, std::int64_t dim);

  Tensor forward(const Tensor& x, NormStats& stats) const;
  Tensor backward(const Tensor& dy, const Tensor& x, const NormStats& stats);

  void visit(const ParamVisitor& fn) {
    fn(gamma_);
    fn(beta_);
  }

 private:
  Param gamma_;
  Param beta_;
  float eps_ = 1e-5f;
};

class RmsNorm {
 public:
  RmsNorm() = default;
  RmsNorm(std::string name, std::int64_t dim);

  Tensor forward(const Tensor& x, NormStats& stats) const;
  Tensor backward(const Tensor& dy, const Tensor& x, const NormStats& stats);

  void visit(const ParamVisitor& fn) { fn(gamma_); }

 private:
  Param gamma_;
  float eps_ = 1e-5f;
};

}  // namespace fpdt::nn
