// Emulated GPU ("device") and node-shared host memory, plus Buffer — a
// tensor bound to a pool charge. Transfers between host and device pools go
// through the Device's transfer counters so H2D/D2H traffic is observable
// (cross-checked against the simulator's PCIe model).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "runtime/memory_pool.h"
#include "runtime/stream.h"
#include "tensor/tensor.h"

namespace fpdt::runtime {

// Tensor + accounting charge. The tensor data lives in process memory either
// way; "where" it lives logically is defined by which pool is charged.
class Buffer {
 public:
  Buffer() = default;
  Buffer(MemoryPool* pool, Tensor tensor, Dtype dtype)
      : tensor_(std::move(tensor)),
        dtype_(dtype),
        allocation_(pool, tensor_.numel() * dtype_size(dtype)) {}

  Buffer(Buffer&&) noexcept = default;
  Buffer& operator=(Buffer&&) noexcept = default;

  bool defined() const { return tensor_.defined(); }
  Tensor& tensor() { return tensor_; }
  const Tensor& tensor() const { return tensor_; }
  Dtype dtype() const { return dtype_; }
  std::int64_t bytes() const { return allocation_.bytes(); }

  // Drop the charge and the data.
  void release() {
    allocation_.release();
    tensor_ = Tensor();
  }

  // Take the tensor out, dropping the charge (used when data migrates pools).
  Tensor detach() {
    allocation_.release();
    return std::move(tensor_);
  }

 private:
  Tensor tensor_;
  Dtype dtype_ = Dtype::kBF16;
  Allocation allocation_;
};

struct TransferStats {
  std::int64_t h2d_bytes = 0;
  std::int64_t d2h_bytes = 0;
  std::int64_t h2d_count = 0;
  std::int64_t d2h_count = 0;
};

// One emulated GPU: an HBM arena, transfer counters, and the paper's three
// per-GPU streams (§4.1): compute, host-to-device, device-to-host.
class Device {
 public:
  Device(int rank, std::int64_t hbm_capacity_bytes)
      : rank_(rank),
        hbm_("hbm[rank " + std::to_string(rank) + "]", hbm_capacity_bytes),
        compute_("compute[rank " + std::to_string(rank) + "]"),
        h2d_("h2d[rank " + std::to_string(rank) + "]"),
        d2h_("d2h[rank " + std::to_string(rank) + "]") {
    hbm_.set_trace_identity(rank, "hbm bytes");
    compute_.set_trace_identity(rank, "compute");
    h2d_.set_trace_identity(rank, "h2d");
    d2h_.set_trace_identity(rank, "d2h");
  }

  int rank() const { return rank_; }
  MemoryPool& hbm() { return hbm_; }
  const MemoryPool& hbm() const { return hbm_; }
  TransferStats& transfers() { return transfers_; }
  const TransferStats& transfers() const { return transfers_; }

  Stream& compute_stream() { return compute_; }
  Stream& h2d_stream() { return h2d_; }
  Stream& d2h_stream() { return d2h_; }
  StreamRates& rates() { return rates_; }
  const StreamRates& rates() const { return rates_; }
  void set_rates(const StreamRates& rates) { rates_ = rates; }

  // Drains all three streams (executing deferred side effects).
  void synchronize_streams() {
    compute_.synchronize();
    h2d_.synchronize();
    d2h_.synchronize();
  }

  // Per-device transfer-timeline report; synchronizes first so the span
  // ledger is complete.
  TimelineReport timeline_report() {
    synchronize_streams();
    return make_timeline_report(compute_, h2d_, d2h_);
  }

  void reset_stream_timelines() {
    synchronize_streams();
    compute_.reset_timeline();
    h2d_.reset_timeline();
    d2h_.reset_timeline();
  }

  Buffer alloc(Tensor t, Dtype dtype = Dtype::kBF16) { return Buffer(&hbm_, std::move(t), dtype); }

 private:
  int rank_;
  MemoryPool hbm_;
  TransferStats transfers_;
  Stream compute_;
  Stream h2d_;
  Stream d2h_;
  StreamRates rates_;
};

// Node-shared host memory (the offload target). Unlimited by default, or
// bounded to model the paper's 1 TB nodes.
class Host {
 public:
  explicit Host(std::int64_t capacity_bytes = -1) : pool_("host", capacity_bytes) {
    pool_.set_trace_identity(obs::kNodeRank, "host bytes");
  }

  MemoryPool& pool() { return pool_; }

  Buffer alloc(Tensor t, Dtype dtype = Dtype::kBF16) { return Buffer(&pool_, std::move(t), dtype); }

 private:
  MemoryPool pool_;
};

// Move data device -> host ("offload"). Counts D2H bytes on the device.
inline Buffer offload_to_host(Device& device, Host& host, Buffer device_buffer) {
  const std::int64_t bytes = device_buffer.bytes();
  const Dtype dtype = device_buffer.dtype();
  Tensor t = device_buffer.detach();
  device.transfers().d2h_bytes += bytes;
  device.transfers().d2h_count += 1;
  return host.alloc(std::move(t), dtype);
}

// Move data host -> device ("fetch"). Counts H2D bytes; may throw OOM.
inline Buffer fetch_to_device(Device& device, Buffer host_buffer) {
  const std::int64_t bytes = host_buffer.bytes();
  const Dtype dtype = host_buffer.dtype();
  Tensor t = host_buffer.detach();
  device.transfers().h2d_bytes += bytes;
  device.transfers().h2d_count += 1;
  return device.alloc(std::move(t), dtype);
}

// Copy (not move) host -> device, leaving the host copy resident. This is
// the semantics of fetching a cached KV chunk that later iterations fetch
// again (backward pass).
inline Buffer fetch_copy_to_device(Device& device, const Buffer& host_buffer) {
  Tensor t = host_buffer.tensor().clone();
  device.transfers().h2d_bytes += host_buffer.bytes();
  device.transfers().h2d_count += 1;
  return device.alloc(std::move(t), host_buffer.dtype());
}

}  // namespace fpdt::runtime
