// Emulated accelerator memory.
//
// The paper's claims about FPDT are, at heart, claims about *bytes resident
// in HBM over time*. To measure (not assert) those claims, every tensor the
// functional layer places "on device" carries an accounting charge against a
// MemoryPool with finite capacity. Exceeding capacity throws
// OutOfMemoryError — exactly how the paper's OOM points in Fig. 11 arise.
//
// Charges are expressed in *logical* bytes: the paper trains in BF16
// (2 bytes/elem) while our arithmetic runs in FP32, so a charge of
// numel * dtype_size(kBF16) reproduces the paper's footprints even though
// the backing std::vector<float> is wider.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/logging.h"
#include "fault/fault_injector.h"
#include "obs/trace.h"

namespace fpdt::runtime {

enum class Dtype { kBF16, kFP32 };

inline constexpr std::int64_t dtype_size(Dtype d) { return d == Dtype::kBF16 ? 2 : 4; }

// One sample of pool occupancy; recorded at every charge/discharge when
// timeline recording is on (used by the Fig. 13 memory-timeline bench).
struct MemorySample {
  std::int64_t tick = 0;       // monotonically increasing event counter
  std::int64_t used_bytes = 0;
  std::string label;           // op that caused the change
};

class MemoryPool {
 public:
  // capacity_bytes < 0 means unlimited (host memory pools, reference runs).
  MemoryPool(std::string name, std::int64_t capacity_bytes)
      : name_(std::move(name)), capacity_(capacity_bytes) {}

  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  const std::string& name() const { return name_; }
  std::int64_t capacity() const { return capacity_; }
  std::int64_t used() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return used_;
  }
  std::int64_t peak() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_;
  }

  void reset_peak() {
    std::lock_guard<std::mutex> lock(mutex_);
    peak_ = used_ + staging_;
  }

  void start_timeline() {
    std::lock_guard<std::mutex> lock(mutex_);
    recording_ = true;
    timeline_.clear();
    tick_ = 0;
  }
  void stop_timeline() {
    std::lock_guard<std::mutex> lock(mutex_);
    recording_ = false;
  }
  // Returns a snapshot by value: recording may overlap parallel_for_ranks
  // workers charging this pool, and handing out a reference to the live
  // vector would race with record_locked() growing it.
  std::vector<MemorySample> timeline() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return timeline_;
  }

  // Label attached to subsequent samples; set by executors around each op.
  void set_phase_label(std::string label) {
    std::lock_guard<std::mutex> lock(mutex_);
    phase_label_ = std::move(label);
  }

  // Identity used for trace counter events (obs/trace.h): the owning rank
  // (obs::kNodeRank for node-shared pools) and a short counter name ("hbm",
  // "host"). Assigned by runtime::Device/Host; bare pools fall back to the
  // full pool name on the node process.
  void set_trace_identity(int rank, std::string counter_name) {
    std::lock_guard<std::mutex> lock(mutex_);
    trace_rank_ = rank;
    trace_name_ = std::move(counter_name);
  }

  // Thread-safe: the host pool is shared by all emulated ranks, whose
  // attention loops fork across threads (common/thread_pool.h).
  void charge(std::int64_t bytes) {
    FPDT_CHECK_GE(bytes, 0) << " negative charge on " << name_;
    // Fault-injection point: a spurious OOM, drawn at the acting rank's
    // deterministic stream, exercises the trainer's chunk-doubling
    // degradation path. One relaxed load when the injector is off.
    if (fault::faults_enabled() &&
        fault::FaultInjector::instance().should_fail(fault::Site::kAlloc, current_rank())) {
      throw OutOfMemoryError(name_ + ": injected OOM charging " + std::to_string(bytes) +
                             " bytes");
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (capacity_ >= 0 && used_ + staging_ + bytes > capacity_) {
      throw OutOfMemoryError(name_ + ": OOM allocating " + std::to_string(bytes) +
                             " bytes (used " + std::to_string(used_) + " + staged " +
                             std::to_string(staging_) + " / capacity " +
                             std::to_string(capacity_) + ")");
    }
    used_ += bytes;
    peak_ = std::max(peak_, used_ + staging_);
    record_locked();
  }

  void discharge(std::int64_t bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    FPDT_CHECK_LE(bytes, used_) << " discharge underflow on " << name_;
    used_ -= bytes;
    record_locked();
  }

  // ---- Staging charges: bytes reserved for in-flight stream transfers. ----
  // A prefetch/offload reserves its destination bytes when the transfer is
  // *issued* (where the real cudaMallocAsync would fail), and the reserve
  // converts into a regular data charge when the transfer retires on its
  // stream. Staging counts against capacity and peak — OOM semantics stay
  // honest while a transfer is in flight — but is reported separately.
  std::int64_t staging() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return staging_;
  }

  void charge_staging(std::int64_t bytes) {
    FPDT_CHECK_GE(bytes, 0) << " negative staging charge on " << name_;
    std::lock_guard<std::mutex> lock(mutex_);
    if (capacity_ >= 0 && used_ + staging_ + bytes > capacity_) {
      throw OutOfMemoryError(name_ + ": OOM staging " + std::to_string(bytes) +
                             " in-flight bytes (used " + std::to_string(used_) + " + staged " +
                             std::to_string(staging_) + " / capacity " +
                             std::to_string(capacity_) + ")");
    }
    staging_ += bytes;
    peak_ = std::max(peak_, used_ + staging_);
    record_locked();
  }

  void discharge_staging(std::int64_t bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    FPDT_CHECK_LE(bytes, staging_) << " staging discharge underflow on " << name_;
    staging_ -= bytes;
    record_locked();
  }

 private:
  void record_locked() {
    if (recording_) timeline_.push_back({tick_++, used_ + staging_, phase_label_});
    if (obs::tracing_enabled()) {
      // Node-shared pools (rank kNodeRank) have no clock of their own; stamp
      // their samples at the acting rank's virtual clock.
      const int clock_rank = trace_rank_ >= 0 ? trace_rank_ : std::max(current_rank(), 0);
      obs::Tracer::instance().counter(obs::kCatMemory, trace_name_.empty() ? name_ : trace_name_,
                                      trace_rank_, static_cast<double>(used_ + staging_),
                                      clock_rank);
    }
  }

  std::string name_;
  std::int64_t capacity_;
  mutable std::mutex mutex_;
  std::int64_t used_ = 0;
  std::int64_t staging_ = 0;
  std::int64_t peak_ = 0;
  bool recording_ = false;
  std::int64_t tick_ = 0;
  std::string phase_label_;
  std::vector<MemorySample> timeline_;
  int trace_rank_ = obs::kNodeRank;
  std::string trace_name_;
};

// RAII accounting token. Move-only; discharges its pool on destruction.
class Allocation {
 public:
  Allocation() = default;
  Allocation(MemoryPool* pool, std::int64_t bytes) : pool_(pool), bytes_(bytes) {
    if (pool_ != nullptr) pool_->charge(bytes_);
  }
  Allocation(Allocation&& other) noexcept { *this = std::move(other); }
  Allocation& operator=(Allocation&& other) noexcept {
    release();
    pool_ = std::exchange(other.pool_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
    return *this;
  }
  Allocation(const Allocation&) = delete;
  Allocation& operator=(const Allocation&) = delete;
  ~Allocation() { release(); }

  void release() {
    if (pool_ != nullptr) {
      pool_->discharge(bytes_);
      pool_ = nullptr;
      bytes_ = 0;
    }
  }

  std::int64_t bytes() const { return bytes_; }
  bool active() const { return pool_ != nullptr; }

 private:
  MemoryPool* pool_ = nullptr;
  std::int64_t bytes_ = 0;
};

// RAII staging token for an in-flight transfer: reserves destination bytes
// at issue time, releases them when the transfer retires (and the real data
// charge takes over) or when an abandoned transfer's closure is destroyed.
class StagingCharge {
 public:
  StagingCharge() = default;
  StagingCharge(MemoryPool* pool, std::int64_t bytes) : pool_(pool), bytes_(bytes) {
    if (pool_ != nullptr) pool_->charge_staging(bytes_);
  }
  StagingCharge(StagingCharge&& other) noexcept { *this = std::move(other); }
  StagingCharge& operator=(StagingCharge&& other) noexcept {
    release();
    pool_ = std::exchange(other.pool_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
    return *this;
  }
  StagingCharge(const StagingCharge&) = delete;
  StagingCharge& operator=(const StagingCharge&) = delete;
  ~StagingCharge() { release(); }

  void release() {
    if (pool_ != nullptr) {
      pool_->discharge_staging(bytes_);
      pool_ = nullptr;
      bytes_ = 0;
    }
  }

 private:
  MemoryPool* pool_ = nullptr;
  std::int64_t bytes_ = 0;
};

}  // namespace fpdt::runtime
