#include "runtime/stream.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/units.h"
#include "fault/fault_injector.h"
#include "obs/trace.h"

namespace fpdt::runtime {

// ---- Event ------------------------------------------------------------------

void Event::wait() const {
  if (stream_ == nullptr) return;
  stream_->drain_through(seq_);
}

double Event::ready_time() const {
  if (stream_ == nullptr) return 0.0;
  return stream_->finish_time_of(seq_);
}

// ---- Stream -----------------------------------------------------------------

Event Stream::enqueue(std::string label, double duration_s, std::vector<Event> waits,
                      std::function<void()> fn) {
  FPDT_CHECK_GE(duration_s, 0.0) << " negative duration on stream " << name_;
  const std::int64_t seq = executed() + static_cast<std::int64_t>(pending_.size());
  pending_.push_back(Pending{std::move(label), duration_s, std::move(waits), std::move(fn)});
  return Event(this, seq);
}

void Stream::synchronize() {
  while (!pending_.empty()) execute_front();
}

void Stream::discard_pending() {
  // Account the dropped tasks as executed so outstanding Events stay valid
  // (they resolve to "already done" with the current tail time).
  while (!pending_.empty()) {
    spans_.push_back(StreamSpan{std::move(pending_.front().label), tail_, tail_});
    pending_.pop_front();
  }
}

std::vector<std::string> Stream::pending_labels() const {
  std::vector<std::string> out;
  out.reserve(pending_.size());
  for (const Pending& p : pending_) out.push_back(p.label);
  return out;
}

void Stream::drain_through(std::int64_t seq) {
  while (executed() <= seq && !pending_.empty()) execute_front();
}

void Stream::execute_front() {
  Pending task = std::move(pending_.front());
  pending_.pop_front();
  // Resolve timing: FIFO tail plus every waited event's finish. Waiting
  // drains the source stream first, so finish times are known. The wait
  // graph is acyclic because an Event must exist (task enqueued) before it
  // can be waited on.
  double start = tail_;
  for (const Event& e : task.waits) {
    e.wait();
    start = std::max(start, e.ready_time());
  }
  // Fault-injection point: a straggler spike stretches this task's virtual
  // duration — timing only, the side effect is untouched, so results stay
  // bit-identical while the timeline shows the stall.
  double duration = task.duration;
  if (fault::faults_enabled()) {
    duration += fault::FaultInjector::instance().straggler_delay(trace_rank_);
  }
  spans_.push_back(StreamSpan{std::move(task.label), start, start + duration});
  tail_ = start + duration;
  if (obs::tracing_enabled()) {
    // Emit the resolved span (and advance the rank's virtual clock) before
    // the side effect runs, so events the closure emits — chunk retirement,
    // pool samples — are stamped at this task's finish time.
    obs::Tracer::instance().complete(obs::kCatStream, spans_.back().label, trace_rank_,
                                     trace_track_.empty() ? name_ : trace_track_,
                                     trace_offset_ + start, duration);
  }
  if (task.fn) task.fn();
}

double Stream::finish_time_of(std::int64_t seq) const {
  if (seq < base_) return 0.0;  // recorded before a timeline reset
  const std::int64_t idx = seq - base_;
  FPDT_CHECK_LT(idx, static_cast<std::int64_t>(spans_.size()))
      << " event queried before its task executed on stream " << name_;
  return spans_[static_cast<std::size_t>(idx)].finish;
}

double Stream::busy_time() const {
  double busy = 0.0;
  for (const StreamSpan& s : spans_) busy += s.duration();
  return busy;
}

void Stream::reset_timeline() {
  FPDT_CHECK(pending_.empty()) << " reset_timeline on busy stream " << name_;
  base_ += static_cast<std::int64_t>(spans_.size());
  spans_.clear();
  trace_offset_ += tail_;
  tail_ = 0.0;
}

// ---- Transfer-timeline report ----------------------------------------------

double overlapped_time(const std::vector<StreamSpan>& xs, const std::vector<StreamSpan>& busy) {
  double total = 0.0;
  std::size_t b = 0;
  for (const StreamSpan& x : xs) {
    while (b < busy.size() && busy[b].finish <= x.start) ++b;
    for (std::size_t k = b; k < busy.size() && busy[k].start < x.finish; ++k) {
      total += std::max(0.0, std::min(x.finish, busy[k].finish) -
                                 std::max(x.start, busy[k].start));
    }
  }
  return total;
}

TimelineReport make_timeline_report(const Stream& compute, const Stream& h2d,
                                    const Stream& d2h) {
  FPDT_CHECK(compute.idle() && h2d.idle() && d2h.idle())
      << " synchronize streams before building a timeline report";
  TimelineReport r;
  r.makespan_s = std::max({compute.tail_time(), h2d.tail_time(), d2h.tail_time()});
  r.compute_busy_s = compute.busy_time();
  r.h2d_busy_s = h2d.busy_time();
  r.d2h_busy_s = d2h.busy_time();
  // Clamp against floating-point drift and degenerate ledgers (empty or
  // all-zero-duration spans): hidden can never exceed the transfer busy
  // time, and exposed can never go negative.
  r.hidden_transfer_s = std::min(overlapped_time(h2d.spans(), compute.spans()) +
                                     overlapped_time(d2h.spans(), compute.spans()),
                                 r.transfer_busy_s());
  r.exposed_transfer_s = std::max(0.0, r.transfer_busy_s() - r.hidden_transfer_s);
  return r;
}

std::string TimelineReport::to_string() const {
  std::ostringstream os;
  os << "stream timeline (virtual): makespan " << format_seconds(makespan_s) << "\n"
     << "  busy  compute " << format_seconds(compute_busy_s) << "  h2d "
     << format_seconds(h2d_busy_s) << "  d2h " << format_seconds(d2h_busy_s) << "\n"
     << "  transfer hidden behind compute " << format_seconds(hidden_transfer_s) << " / "
     << format_seconds(transfer_busy_s()) << "  (overlap ratio " << overlap_ratio()
     << ", exposed "
     << format_seconds(exposed_transfer_s) << ")\n";
  return os.str();
}

}  // namespace fpdt::runtime
