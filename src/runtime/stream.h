// Emulated CUDA-style streams and events for the runtime layer.
//
// The paper's pipeline rests on three CUDA streams per GPU ("we deploy three
// CUDA streams", §4.1): compute, host-to-device, and device-to-host. The
// simulator (sim/pipeline_sim.h) models that abstractly; this header gives
// the *executed* runtime the same machinery so prefetch/offload overlap is
// observable in the functional system, not just predicted.
//
// Semantics mirror CUDA:
//   - a Stream executes its tasks FIFO in enqueue order;
//   - an Event marks the completion point of the last task enqueued before
//     it; waiting on it orders work across streams;
//   - tasks carry a *virtual* duration (from StreamRates — a small cost
//     table mirroring sim::CostModel) and an optional side-effect closure.
//
// Execution is deferred and deterministic: enqueue() queues the closure;
// it runs — on the caller's thread — when the task is drained, i.e. when an
// Event recorded after it is waited on or the stream is synchronized. The
// virtual clock is resolved at drain time: start = max(stream tail, waited
// events' finish times), finish = start + duration. Because real side
// effects execute in a fixed topological order of the same DAG, results are
// bit-identical to fully synchronous execution; only the *timeline* (the
// per-stream span ledger) models the asynchrony.
//
// Thread-safety: a Stream is not internally synchronized. Streams are
// per-device, and the executor's fork/join structure (common/thread_pool.h)
// guarantees each emulated rank's streams are touched by one thread at a
// time — the same discipline real per-GPU streams enjoy.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace fpdt::runtime {

class Stream;

// Completion marker for a task on a Stream. Default-constructed events are
// "null": wait() is a no-op and ready_time() is 0 (like cudaEvent on the
// default stream's empty past).
class Event {
 public:
  Event() = default;

  bool valid() const { return stream_ != nullptr; }

  // Drains the recording stream through the marked task, executing deferred
  // side effects. No-op for null events or already-executed tasks.
  void wait() const;

  // Virtual finish time of the marked task. Only meaningful after wait()
  // (or a synchronize of the recording stream); 0 for null events.
  double ready_time() const;

 private:
  friend class Stream;
  Event(Stream* stream, std::int64_t seq) : stream_(stream), seq_(seq) {}

  Stream* stream_ = nullptr;
  std::int64_t seq_ = -1;
};

// One executed task on a stream's virtual timeline.
struct StreamSpan {
  std::string label;
  double start = 0.0;
  double finish = 0.0;
  double duration() const { return finish - start; }
};

// Virtual-time cost table for stream tasks. Defaults mirror the A100 node
// of sim/hardware.h; sim/runtime_bridge.h derives an exactly-matching table
// from a CostModel so runtime-measured timelines and simulator predictions
// share one set of constants.
struct StreamRates {
  double gemm_flops_per_s = 312e12 * 0.62;  // peak × matmul efficiency
  double attn_flops_per_s = 312e12 * 0.45;  // peak × fused-attention efficiency
  double kernel_overhead_s = 12e-6;
  // PCIe Gen-4 ×16 with two GPUs sharing a socket's lanes (§4.2 per-GPU DMA).
  double h2d_bytes_per_s = 16e9;
  double d2h_bytes_per_s = 16e9;
  double transfer_latency_s = 45e-6;  // contended-lane latency (3× base)
  // Collective link for All2All spans, which the runtime enqueues on the
  // *compute* stream (it has no separate comm queue): single-node NVLink.
  double comm_bytes_per_s = 100e9;
  double comm_latency_s = 5e-6;

  double gemm_time(double flops) const { return flops / gemm_flops_per_s + kernel_overhead_s; }
  double attn_time(double flops) const { return flops / attn_flops_per_s + kernel_overhead_s; }
  double a2a_time(std::int64_t bytes_per_gpu, int world) const {
    if (world <= 1) return 0.0;
    const double sent = static_cast<double>(bytes_per_gpu) * (world - 1) / world;
    return sent / comm_bytes_per_s + comm_latency_s;
  }
  double h2d_time(std::int64_t bytes) const {
    return static_cast<double>(bytes) / h2d_bytes_per_s + transfer_latency_s;
  }
  double d2h_time(std::int64_t bytes) const {
    return static_cast<double>(bytes) / d2h_bytes_per_s + transfer_latency_s;
  }
};

class Stream {
 public:
  explicit Stream(std::string name) : name_(std::move(name)) {}

  Stream(const Stream&) = delete;  // Events hold stable Stream pointers
  Stream& operator=(const Stream&) = delete;

  const std::string& name() const { return name_; }

  // Queues a task. `waits` are cross-stream dependencies (CUDA events);
  // `fn` (optional) is the deferred side effect. Returns the task's
  // completion event.
  Event enqueue(std::string label, double duration_s, std::vector<Event> waits = {},
                std::function<void()> fn = {});

  // Executes every pending task in FIFO order.
  void synchronize();

  // Drops pending tasks *without* executing them. Only for abandoning a
  // poisoned pipeline during exception unwind: captured RAII state (staging
  // charges, tensors) is released by closure destruction.
  void discard_pending();

  bool idle() const { return pending_.empty(); }

  // Labels of not-yet-executed tasks, in FIFO order — the end-of-step
  // watchdog's evidence when a transfer never retired (labels embed the
  // chunk key: "fetch.khat.0.1").
  std::vector<std::string> pending_labels() const;

  // Virtual time at which the stream goes idle (after synchronize()).
  double tail_time() const { return tail_; }

  // Sum of executed span durations — the busy-time ledger.
  double busy_time() const;

  // Executed spans in order; starts are monotonic (FIFO).
  const std::vector<StreamSpan>& spans() const { return spans_; }

  // Clears the span ledger and rewinds the virtual clock to 0 so a fresh
  // measurement window can start. Requires an idle stream. Events recorded
  // before the reset degrade to "long done" (ready_time 0). The tracer
  // offset keeps accumulating, so trace timestamps stay monotonic across
  // measurement windows.
  void reset_timeline();

  // Identity used for trace events (obs/trace.h): the owning rank and the
  // lane name within that rank's trace process. Streams default to rank 0
  // with the stream name as lane; runtime::Device assigns the real rank and
  // the short "compute"/"h2d"/"d2h" lanes.
  void set_trace_identity(int rank, std::string track) {
    trace_rank_ = rank;
    trace_track_ = std::move(track);
  }
  int trace_rank() const { return trace_rank_; }

  // Virtual-time offset added to trace timestamps: the total virtual time
  // retired before the last reset_timeline().
  double trace_offset() const { return trace_offset_; }

 private:
  friend class Event;

  struct Pending {
    std::string label;
    double duration = 0.0;
    std::vector<Event> waits;
    std::function<void()> fn;
  };

  void drain_through(std::int64_t seq);
  void execute_front();
  double finish_time_of(std::int64_t seq) const;
  std::int64_t executed() const { return base_ + static_cast<std::int64_t>(spans_.size()); }

  std::string name_;
  std::deque<Pending> pending_;
  std::vector<StreamSpan> spans_;
  std::int64_t base_ = 0;  // seq of the first entry in spans_ (advanced by resets)
  double tail_ = 0.0;
  int trace_rank_ = 0;
  std::string trace_track_;
  double trace_offset_ = 0.0;
};

// ---- Transfer-timeline report ----------------------------------------------

// Virtual time during which spans of `xs` and `busy` overlap. Both must be
// sorted by start with non-overlapping spans (true of any single stream's
// ledger).
double overlapped_time(const std::vector<StreamSpan>& xs, const std::vector<StreamSpan>& busy);

// The observability product of the stream engine: per-stream busy time plus
// how much transfer time hid behind compute — the paper's Fig. 8 story
// ("GPU starving" = exposed transfer time) measured on the executed system.
struct TimelineReport {
  double makespan_s = 0.0;
  double compute_busy_s = 0.0;
  double h2d_busy_s = 0.0;
  double d2h_busy_s = 0.0;
  double hidden_transfer_s = 0.0;   // transfer time overlapped with compute
  double exposed_transfer_s = 0.0;  // transfer time the GPU would starve on

  double transfer_busy_s() const { return h2d_busy_s + d2h_busy_s; }
  // Fraction of transfer time hidden behind compute, clamped to [0, 1].
  // Well-defined (0, never NaN) for empty ledgers and zero-duration spans,
  // where there is no transfer time at all.
  double overlap_ratio() const {
    const double transfer = transfer_busy_s();
    if (transfer <= 0.0) return 0.0;
    return std::clamp(hidden_transfer_s / transfer, 0.0, 1.0);
  }
  std::string to_string() const;
};

// Builds the report from a device's three streams. All three must be idle
// (synchronized) so the ledger is complete.
TimelineReport make_timeline_report(const Stream& compute, const Stream& h2d,
                                    const Stream& d2h);

}  // namespace fpdt::runtime
