// Pluggable math-kernel backends.
//
// Every hot-path numeric primitive in the repo — the GEMM family behind
// matmul/matmul_nt/matmul_tn, the attention kernels (naive reference and
// the online-softmax chunked form FPDT schedules), and the rowwise
// softmax/norm/activation reductions — is expressed against this interface
// and dispatched through a process-wide registry, the execution-provider
// pattern (cf. onnxruntime's custom EPs):
//
//   * "scalar" — the seed's naive FP32 loops, extracted verbatim. This is
//     the bit-exact reference every other backend is pinned against; it is
//     the default, so a build that never selects a backend behaves exactly
//     like the seed.
//   * "simd"   — blocked, cache-tiled, runtime-dispatched AVX2/FMA kernels
//     with a portable fallback, optionally forked across
//     common/thread_pool worker threads. Matches "scalar" within
//     tolerance (tests/test_kernels.cpp pins it), not bitwise: vector
//     accumulation reassociates sums.
//
// Selection (weakest to strongest): FPDT_KERNEL_BACKEND env decides the
// process default at first use; core::FpdtConfig::kernel_backend switches
// it for the lifetime of an FpdtEnv (unless the env var is set, which
// wins over config); an explicit set_active()/BackendScope — what the
// `--backend` CLI flag and the tuner use — always applies.
//
// Ops take raw row-major float buffers, not Tensors, so the kernels
// library sits *below* src/tensor in the dependency order and both the
// tensor free functions and the nn layers can dispatch through it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fpdt::kernels {

// Shapes of one attention call: q is [sq, h, d], k/v are [sk, hk, d] with
// h % hk == 0 (grouped-query attention; query head i reads kv head
// i / group, group = h / hk).
struct AttnDims {
  std::int64_t sq = 0;
  std::int64_t sk = 0;
  std::int64_t h = 0;
  std::int64_t hk = 0;
  std::int64_t d = 0;
  std::int64_t group = 1;
};

// Number of unmasked leading key columns for the query at global position
// `qpos` against a KV chunk starting at global position `k_pos0`. The
// causal mask over a contiguous chunk is always a prefix in chunk-local
// coordinates, so masking is tracked as an index bound — never by
// comparing a score against a -inf sentinel, which would conflate the mask
// with a genuine -inf logit produced by overflow.
inline std::int64_t causal_bound(bool causal, std::int64_t qpos, std::int64_t k_pos0,
                                 std::int64_t sk) {
  if (!causal) return sk;
  const std::int64_t b = qpos - k_pos0 + 1;
  if (b < 0) return 0;
  return b > sk ? sk : b;
}

class Backend {
 public:
  virtual ~Backend() = default;
  virtual const char* name() const = 0;

  // ---- GEMM family --------------------------------------------------------

  // C[m,n] += A[m,k] · B[k,n].
  virtual void gemm_nn_acc(const float* a, const float* b, float* c, std::int64_t m,
                           std::int64_t k, std::int64_t n) const = 0;

  // C[m,n] = A[m,k] · B[n,k]ᵀ (B stored row-major [n,k]).
  virtual void gemm_nt(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                       std::int64_t n) const = 0;

  // C[m,n] += A[k,m]ᵀ · B[k,n] (A stored row-major [k,m]).
  virtual void gemm_tn_acc(const float* a, const float* b, float* c, std::int64_t k,
                           std::int64_t m, std::int64_t n) const = 0;

  // ---- Attention ----------------------------------------------------------
  // All attention ops share the masking contract of causal_bound(): a query
  // row whose bound is 0 (a KV chunk entirely in its causal future —
  // legitimate under chunked prefill) yields the online-softmax identity
  // element: a zero output row with lse = -inf. Genuine -inf logits from
  // overflow are *not* treated as masked; they flow through the softmax
  // (an all--inf row propagates NaN, matching 0/0).

  // Materialised-scores forward: out [sq,h,d], lse [sq,h].
  virtual void attn_forward(const float* q, const float* k, const float* v, float* out,
                            float* lse, const AttnDims& dm, bool causal, std::int64_t q_pos0,
                            std::int64_t k_pos0) const = 0;

  // One online-softmax chunk step: folds (k, v) into the running
  // (acc [sq,h,d], m [sq,h], l [sq,h]) state.
  virtual void online_attn_step(float* acc, float* row_max, float* row_sum, const float* q,
                                const float* k, const float* v, const AttnDims& dm, bool causal,
                                std::int64_t q_pos0, std::int64_t k_pos0) const = 0;

  // One (q chunk, kv chunk) backward step: recomputes probabilities from
  // lse, accumulates dq [sq,h,d], dk/dv [sk,hk,d] in place.
  virtual void online_attn_backward_step(const float* q, const float* k, const float* v,
                                         const float* dout, const float* lse, const float* D,
                                         const AttnDims& dm, bool causal, std::int64_t q_pos0,
                                         std::int64_t k_pos0, float* dq, float* dk,
                                         float* dv) const = 0;

  // ---- Rowwise reductions -------------------------------------------------

  // In-place numerically-stable softmax over each row of x [rows, cols].
  virtual void softmax_rows(float* x, std::int64_t rows, std::int64_t cols) const = 0;

  // LayerNorm over the last dim: y = (x - mean) * rstd * gamma + beta,
  // saving per-row mean/rstd for backward.
  virtual void layernorm_forward(const float* x, const float* gamma, const float* beta, float* y,
                                 float* mean, float* rstd, std::int64_t rows, std::int64_t n,
                                 float eps) const = 0;
  virtual void layernorm_backward(const float* x, const float* dy, const float* gamma,
                                  const float* mean, const float* rstd, float* dx, float* dgamma,
                                  float* dbeta, std::int64_t rows, std::int64_t n) const = 0;

  // RMSNorm over the last dim: y = x * rstd * gamma, rstd saved.
  virtual void rmsnorm_forward(const float* x, const float* gamma, float* y, float* rstd,
                               std::int64_t rows, std::int64_t n, float eps) const = 0;
  virtual void rmsnorm_backward(const float* x, const float* dy, const float* gamma,
                                const float* rstd, float* dx, float* dgamma, std::int64_t rows,
                                std::int64_t n) const = 0;

  // ---- Pointwise activations ---------------------------------------------

  // y = act(x) over n elements; *_backward_mul computes dx = dy * act'(x)
  // in place in dx (callers pass dx pre-filled with dy).
  virtual void gelu_forward(const float* x, float* y, std::int64_t n) const = 0;
  virtual void gelu_backward_mul(const float* x, float* dx, std::int64_t n) const = 0;
  virtual void silu_forward(const float* x, float* y, std::int64_t n) const = 0;
  virtual void silu_backward_mul(const float* x, float* dx, std::int64_t n) const = 0;
};

// ---- Registry -------------------------------------------------------------

// The process-wide active backend. First use initialises the registry with
// the built-in backends and picks the default from FPDT_KERNEL_BACKEND
// (unset or empty means "scalar"). Reads are lock-free (relaxed atomic):
// rank worker threads dispatch through this on every op.
const Backend& active();
std::string active_name();

// Lookup by name; throws FpdtError on unknown names, listing what exists.
const Backend& backend(const std::string& name);

// Switches the active backend; throws on unknown names. Process-global,
// like the fault injector: call between steps, not from rank workers.
void set_active(const std::string& name);

// Registered backend names, in registration order ("scalar" first).
std::vector<std::string> available();

// True when the "simd" backend will dispatch to runtime-detected AVX2/FMA
// kernels (false = portable fallback). Informational, for CLI/CI output.
bool simd_uses_avx2();

// RAII selection: switches on construction (empty name = no-op), restores
// the previous backend on destruction. What run_profile and tests use so a
// backend choice cannot leak across runs.
class BackendScope {
 public:
  explicit BackendScope(const std::string& name) {
    if (!name.empty() && name != active_name()) {
      previous_ = active_name();
      set_active(name);
    }
  }
  ~BackendScope() {
    if (!previous_.empty()) set_active(previous_);
  }
  BackendScope(const BackendScope&) = delete;
  BackendScope& operator=(const BackendScope&) = delete;

 private:
  std::string previous_;
};

}  // namespace fpdt::kernels
