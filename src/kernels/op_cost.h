// Analytic per-call work formulas for the kernels::Backend op families.
//
// Each function computes the FLOP and ideal-byte cost of one dispatch from
// its *shapes only* — never from what a backend executes — so "scalar" and
// "simd" are charged bit-identical integer work for the same call sequence
// (the CI gate in ci/bench_smoke.sh pins this). The registry's metering
// decorator (registry.cpp) calls these and charges obs::Workmeter.
//
// Conventions:
//   * FLOPs: one multiply-add = 2 FLOPs (the Megatron/MFU convention, so a
//     GEMM is 2·m·k·n). Transcendentals (exp/tanh/rsqrt) count as the
//     nominal per-element constants below, not as hardware instruction
//     counts — they exist so elementwise ops register on the roofline at
//     all; GEMM/attention dominate every real step.
//   * Bytes: ideal traffic — each operand array touched once (read or
//     write; accumulated outputs count read+write), float32 = 4 bytes.
//     This is the numerator of achieved-GB/s and the denominator of
//     arithmetic intensity, i.e. a compulsory-traffic lower bound, not a
//     cache-simulation.
//   * Masked attention work is excluded via causal_bound(), matching what
//     the kernels skip and what sim/cost_model.h prices — an MFU of 1.0
//     means "ran at the speed the virtual hardware charges for the
//     unmasked pairs", also for causal steps.
//
// All arithmetic is exact int64. The largest *executed* shapes in this repo
// are emulated single-host steps (≪ 2^40 FLOPs per call); model-scale
// *analytic* projections (obs/bench.h) accumulate in double instead.
#pragma once

#include <cstdint>

#include "kernels/backend.h"
#include "obs/workmeter.h"

namespace fpdt::kernels {

// Nominal per-element FLOP constants for non-GEMM math (documented in
// DESIGN.md §13; shared by forward and backward counts).
inline constexpr std::int64_t kSoftmaxFlopsPerElem = 5;   // max, sub, exp, sum, div
inline constexpr std::int64_t kExpFlops = 1;              // one transcendental = 1 nominal FLOP
inline constexpr std::int64_t kLayerNormFwdFlopsPerElem = 8;
inline constexpr std::int64_t kLayerNormBwdFlopsPerElem = 12;
inline constexpr std::int64_t kRmsNormFwdFlopsPerElem = 6;
inline constexpr std::int64_t kRmsNormBwdFlopsPerElem = 10;
inline constexpr std::int64_t kGeluFwdFlopsPerElem = 14;  // tanh polynomial form
inline constexpr std::int64_t kGeluBwdFlopsPerElem = 20;
inline constexpr std::int64_t kSiluFwdFlopsPerElem = 5;   // sigmoid + mul
inline constexpr std::int64_t kSiluBwdFlopsPerElem = 8;

// ---- GEMM family -----------------------------------------------------------

// Shared core: 2·m·k·n FLOPs; A, B read once, C written (+read when the op
// accumulates into it).
inline obs::OpWork gemm_cost(std::int64_t m, std::int64_t k, std::int64_t n, bool acc) {
  obs::OpWork w;
  w.flops = 2 * m * k * n;
  w.bytes = 4 * (m * k + k * n + (acc ? 2 : 1) * m * n);
  return w;
}

inline obs::OpWork gemm_nn_acc_cost(std::int64_t m, std::int64_t k, std::int64_t n) {
  return gemm_cost(m, k, n, /*acc=*/true);
}
inline obs::OpWork gemm_nt_cost(std::int64_t m, std::int64_t k, std::int64_t n) {
  return gemm_cost(m, k, n, /*acc=*/false);
}
inline obs::OpWork gemm_tn_acc_cost(std::int64_t k, std::int64_t m, std::int64_t n) {
  return gemm_cost(m, k, n, /*acc=*/true);
}

// ---- Attention -------------------------------------------------------------

// Unmasked (query, key) pairs of one attention call, per query head: the
// exact per-row sum of causal_bound(), i.e. precisely the pairs every
// backend computes. O(sq) integer loop — negligible next to the O(sq·sk·d)
// kernel it accounts for.
inline std::int64_t attn_unmasked_pairs(const AttnDims& dm, bool causal, std::int64_t q_pos0,
                                        std::int64_t k_pos0) {
  std::int64_t pairs = 0;
  for (std::int64_t i = 0; i < dm.sq; ++i) {
    pairs += causal_bound(causal, q_pos0 + i, k_pos0, dm.sk);
  }
  return pairs;
}

// Materialised forward: per unmasked pair per head, QKᵀ (2d) + softmax
// (kSoftmaxFlopsPerElem) + PV (2d). Bytes: q/out/lse at [sq,h,·], k/v at
// [sk,hk,d].
inline obs::OpWork attn_forward_cost(const AttnDims& dm, bool causal, std::int64_t q_pos0,
                                     std::int64_t k_pos0) {
  const std::int64_t pairs = attn_unmasked_pairs(dm, causal, q_pos0, k_pos0);
  obs::OpWork w;
  w.flops = dm.h * pairs * (4 * dm.d + kSoftmaxFlopsPerElem);
  w.bytes = 4 * (dm.sq * dm.h * dm.d      // q read
                 + 2 * dm.sk * dm.hk * dm.d  // k, v read
                 + dm.sq * dm.h * dm.d       // out written
                 + dm.sq * dm.h);            // lse written
  return w;
}

// Online-softmax chunk step: the forward pair work plus the running-state
// rescale — per (row, head): new-max compare/rescale of l and of the d-wide
// acc row (2d + 4).
inline obs::OpWork online_attn_step_cost(const AttnDims& dm, bool causal, std::int64_t q_pos0,
                                         std::int64_t k_pos0) {
  const std::int64_t pairs = attn_unmasked_pairs(dm, causal, q_pos0, k_pos0);
  obs::OpWork w;
  w.flops = dm.h * pairs * (4 * dm.d + kSoftmaxFlopsPerElem) + dm.sq * dm.h * (2 * dm.d + 4);
  w.bytes = 4 * (dm.sq * dm.h * dm.d          // q read
                 + 2 * dm.sk * dm.hk * dm.d   // k, v read
                 + 2 * dm.sq * dm.h * dm.d    // acc read+write
                 + 4 * dm.sq * dm.h);         // m, l read+write
  return w;
}

// Backward chunk step: per unmasked pair per head — recompute scores (2d),
// p = exp(s - lse) (kExpFlops), dv += pᵀ·dout (2d), dp = dout·vᵀ (2d),
// ds = p·(dp - D) (3), dq += ds·k and dk += dsᵀ·q (2d each), ≈ 10d + 4.
inline obs::OpWork online_attn_backward_step_cost(const AttnDims& dm, bool causal,
                                                  std::int64_t q_pos0, std::int64_t k_pos0) {
  const std::int64_t pairs = attn_unmasked_pairs(dm, causal, q_pos0, k_pos0);
  obs::OpWork w;
  w.flops = dm.h * pairs * (10 * dm.d + kExpFlops + 3);
  w.bytes = 4 * (2 * dm.sq * dm.h * dm.d      // q, dout read
                 + 2 * dm.sk * dm.hk * dm.d   // k, v read
                 + 2 * dm.sq * dm.h           // lse, D read
                 + 2 * dm.sq * dm.h * dm.d    // dq read+write
                 + 4 * dm.sk * dm.hk * dm.d); // dk, dv read+write
  return w;
}

// ---- Rowwise reductions ----------------------------------------------------

inline obs::OpWork softmax_rows_cost(std::int64_t rows, std::int64_t cols) {
  obs::OpWork w;
  w.flops = rows * cols * kSoftmaxFlopsPerElem;
  w.bytes = 4 * 2 * rows * cols;  // in place: read + write
  return w;
}

inline obs::OpWork layernorm_forward_cost(std::int64_t rows, std::int64_t n) {
  obs::OpWork w;
  w.flops = rows * n * kLayerNormFwdFlopsPerElem;
  w.bytes = 4 * (2 * rows * n + 2 * n + 2 * rows);  // x,y + gamma,beta + mean,rstd
  return w;
}

inline obs::OpWork layernorm_backward_cost(std::int64_t rows, std::int64_t n) {
  obs::OpWork w;
  w.flops = rows * n * kLayerNormBwdFlopsPerElem;
  w.bytes = 4 * (3 * rows * n + 3 * n + 2 * rows);  // x,dy,dx + gamma,dgamma,dbeta + mean,rstd
  return w;
}

inline obs::OpWork rmsnorm_forward_cost(std::int64_t rows, std::int64_t n) {
  obs::OpWork w;
  w.flops = rows * n * kRmsNormFwdFlopsPerElem;
  w.bytes = 4 * (2 * rows * n + n + rows);  // x,y + gamma + rstd
  return w;
}

inline obs::OpWork rmsnorm_backward_cost(std::int64_t rows, std::int64_t n) {
  obs::OpWork w;
  w.flops = rows * n * kRmsNormBwdFlopsPerElem;
  w.bytes = 4 * (3 * rows * n + 2 * n + rows);  // x,dy,dx + gamma,dgamma + rstd
  return w;
}

// ---- Pointwise activations -------------------------------------------------

inline obs::OpWork activation_forward_cost(std::int64_t n, std::int64_t flops_per_elem) {
  obs::OpWork w;
  w.flops = n * flops_per_elem;
  w.bytes = 4 * 2 * n;  // read x, write y
  return w;
}

inline obs::OpWork activation_backward_cost(std::int64_t n, std::int64_t flops_per_elem) {
  obs::OpWork w;
  w.flops = n * flops_per_elem;
  w.bytes = 4 * 3 * n;  // read x, read dx (pre-filled dy), write dx
  return w;
}

}  // namespace fpdt::kernels
