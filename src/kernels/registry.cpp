#include "kernels/backend.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "common/check.h"

namespace fpdt::kernels {

std::unique_ptr<Backend> make_scalar_backend();  // scalar_backend.cpp
std::unique_ptr<Backend> make_simd_backend();    // simd_backend.cpp

namespace {

struct Registry {
  std::vector<std::unique_ptr<Backend>> backends;  // registration order
  std::atomic<const Backend*> active{nullptr};

  Registry() {
    backends.push_back(make_scalar_backend());
    backends.push_back(make_simd_backend());
    const char* env = std::getenv("FPDT_KERNEL_BACKEND");
    const std::string want = (env != nullptr && env[0] != '\0') ? env : "scalar";
    active.store(find(want), std::memory_order_release);
  }

  const Backend* find(const std::string& name) const {
    for (const auto& b : backends) {
      if (name == b->name()) return b.get();
    }
    std::string known;
    for (const auto& b : backends) {
      if (!known.empty()) known += ", ";
      known += b->name();
    }
    throw FpdtError("unknown kernel backend: " + name + " (registered: " + known + ")");
  }
};

Registry& registry() {
  static Registry r;  // constructed on first use; env var read exactly once
  return r;
}

}  // namespace

const Backend& active() { return *registry().active.load(std::memory_order_acquire); }

std::string active_name() { return active().name(); }

const Backend& backend(const std::string& name) { return *registry().find(name); }

void set_active(const std::string& name) {
  Registry& r = registry();
  r.active.store(r.find(name), std::memory_order_release);
}

std::vector<std::string> available() {
  std::vector<std::string> names;
  for (const auto& b : registry().backends) names.emplace_back(b->name());
  return names;
}

}  // namespace fpdt::kernels
