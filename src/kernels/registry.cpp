#include "kernels/backend.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "common/check.h"
#include "kernels/op_cost.h"
#include "obs/workmeter.h"

namespace fpdt::kernels {

std::unique_ptr<Backend> make_scalar_backend();  // scalar_backend.cpp
std::unique_ptr<Backend> make_simd_backend();    // simd_backend.cpp

namespace {

// Work-accounting decorator wrapped around every registered backend: each
// dispatch charges its analytic shape cost (kernels/op_cost.h) to
// obs::Workmeter, then forwards to the real backend. Because the charge is
// computed from shapes — and both built-in backends are wrapped by the same
// decorator at registration — scalar and simd report bit-identical work for
// the same call sequence by construction (SimdBackend's scalar fallback is
// a private instance, not a registry round-trip, so nothing double-counts).
// With metering off each op pays one relaxed atomic load and a
// predicted-not-taken branch, nothing else.
class MeteredBackend final : public Backend {
 public:
  explicit MeteredBackend(std::unique_ptr<Backend> inner) : inner_(std::move(inner)) {}

  const char* name() const override { return inner_->name(); }

  void gemm_nn_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                   std::int64_t n) const override {
    charge(obs::OpKind::kGemm, [&] { return gemm_nn_acc_cost(m, k, n); });
    inner_->gemm_nn_acc(a, b, c, m, k, n);
  }

  void gemm_nt(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
               std::int64_t n) const override {
    charge(obs::OpKind::kGemm, [&] { return gemm_nt_cost(m, k, n); });
    inner_->gemm_nt(a, b, c, m, k, n);
  }

  void gemm_tn_acc(const float* a, const float* b, float* c, std::int64_t k, std::int64_t m,
                   std::int64_t n) const override {
    charge(obs::OpKind::kGemm, [&] { return gemm_tn_acc_cost(k, m, n); });
    inner_->gemm_tn_acc(a, b, c, k, m, n);
  }

  void attn_forward(const float* q, const float* k, const float* v, float* out, float* lse,
                    const AttnDims& dm, bool causal, std::int64_t q_pos0,
                    std::int64_t k_pos0) const override {
    charge(obs::OpKind::kAttention, [&] { return attn_forward_cost(dm, causal, q_pos0, k_pos0); });
    inner_->attn_forward(q, k, v, out, lse, dm, causal, q_pos0, k_pos0);
  }

  void online_attn_step(float* acc, float* row_max, float* row_sum, const float* q,
                        const float* k, const float* v, const AttnDims& dm, bool causal,
                        std::int64_t q_pos0, std::int64_t k_pos0) const override {
    charge(obs::OpKind::kAttention, [&] { return online_attn_step_cost(dm, causal, q_pos0, k_pos0); });
    inner_->online_attn_step(acc, row_max, row_sum, q, k, v, dm, causal, q_pos0, k_pos0);
  }

  void online_attn_backward_step(const float* q, const float* k, const float* v,
                                 const float* dout, const float* lse, const float* D,
                                 const AttnDims& dm, bool causal, std::int64_t q_pos0,
                                 std::int64_t k_pos0, float* dq, float* dk,
                                 float* dv) const override {
    charge(obs::OpKind::kAttention, [&] { return online_attn_backward_step_cost(dm, causal, q_pos0, k_pos0); });
    inner_->online_attn_backward_step(q, k, v, dout, lse, D, dm, causal, q_pos0, k_pos0, dq, dk,
                                      dv);
  }

  void softmax_rows(float* x, std::int64_t rows, std::int64_t cols) const override {
    charge(obs::OpKind::kSoftmax, [&] { return softmax_rows_cost(rows, cols); });
    inner_->softmax_rows(x, rows, cols);
  }

  void layernorm_forward(const float* x, const float* gamma, const float* beta, float* y,
                         float* mean, float* rstd, std::int64_t rows, std::int64_t n,
                         float eps) const override {
    charge(obs::OpKind::kNorm, [&] { return layernorm_forward_cost(rows, n); });
    inner_->layernorm_forward(x, gamma, beta, y, mean, rstd, rows, n, eps);
  }

  void layernorm_backward(const float* x, const float* dy, const float* gamma, const float* mean,
                          const float* rstd, float* dx, float* dgamma, float* dbeta,
                          std::int64_t rows, std::int64_t n) const override {
    charge(obs::OpKind::kNorm, [&] { return layernorm_backward_cost(rows, n); });
    inner_->layernorm_backward(x, dy, gamma, mean, rstd, dx, dgamma, dbeta, rows, n);
  }

  void rmsnorm_forward(const float* x, const float* gamma, float* y, float* rstd,
                       std::int64_t rows, std::int64_t n, float eps) const override {
    charge(obs::OpKind::kNorm, [&] { return rmsnorm_forward_cost(rows, n); });
    inner_->rmsnorm_forward(x, gamma, y, rstd, rows, n, eps);
  }

  void rmsnorm_backward(const float* x, const float* dy, const float* gamma, const float* rstd,
                        float* dx, float* dgamma, std::int64_t rows,
                        std::int64_t n) const override {
    charge(obs::OpKind::kNorm, [&] { return rmsnorm_backward_cost(rows, n); });
    inner_->rmsnorm_backward(x, dy, gamma, rstd, dx, dgamma, rows, n);
  }

  void gelu_forward(const float* x, float* y, std::int64_t n) const override {
    charge(obs::OpKind::kActivation, [&] { return activation_forward_cost(n, kGeluFwdFlopsPerElem); });
    inner_->gelu_forward(x, y, n);
  }

  void gelu_backward_mul(const float* x, float* dx, std::int64_t n) const override {
    charge(obs::OpKind::kActivation, [&] { return activation_backward_cost(n, kGeluBwdFlopsPerElem); });
    inner_->gelu_backward_mul(x, dx, n);
  }

  void silu_forward(const float* x, float* y, std::int64_t n) const override {
    charge(obs::OpKind::kActivation, [&] { return activation_forward_cost(n, kSiluFwdFlopsPerElem); });
    inner_->silu_forward(x, y, n);
  }

  void silu_backward_mul(const float* x, float* dx, std::int64_t n) const override {
    charge(obs::OpKind::kActivation, [&] { return activation_backward_cost(n, kSiluBwdFlopsPerElem); });
    inner_->silu_backward_mul(x, dx, n);
  }

 private:
  // The cost callable is only evaluated when metering is on, so a disabled
  // meter never runs the (O(sq) for attention) shape arithmetic.
  template <typename CostFn>
  static void charge(obs::OpKind kind, CostFn&& cost) {
    if (obs::work_metering_enabled()) obs::Workmeter::instance().charge(kind, cost());
  }

  std::unique_ptr<Backend> inner_;
};

struct Registry {
  std::vector<std::unique_ptr<Backend>> backends;  // registration order
  std::atomic<const Backend*> active{nullptr};

  Registry() {
    backends.push_back(std::make_unique<MeteredBackend>(make_scalar_backend()));
    backends.push_back(std::make_unique<MeteredBackend>(make_simd_backend()));
    const char* env = std::getenv("FPDT_KERNEL_BACKEND");
    const std::string want = (env != nullptr && env[0] != '\0') ? env : "scalar";
    active.store(find(want), std::memory_order_release);
  }

  const Backend* find(const std::string& name) const {
    for (const auto& b : backends) {
      if (name == b->name()) return b.get();
    }
    std::string known;
    for (const auto& b : backends) {
      if (!known.empty()) known += ", ";
      known += b->name();
    }
    throw FpdtError("unknown kernel backend: " + name + " (registered: " + known + ")");
  }
};

Registry& registry() {
  static Registry r;  // constructed on first use; env var read exactly once
  return r;
}

}  // namespace

const Backend& active() { return *registry().active.load(std::memory_order_acquire); }

std::string active_name() { return active().name(); }

const Backend& backend(const std::string& name) { return *registry().find(name); }

void set_active(const std::string& name) {
  Registry& r = registry();
  r.active.store(r.find(name), std::memory_order_release);
}

std::vector<std::string> available() {
  std::vector<std::string> names;
  for (const auto& b : registry().backends) names.emplace_back(b->name());
  return names;
}

}  // namespace fpdt::kernels
