// AVX2/FMA kernels for the "simd" backend. This translation unit is the
// only one compiled with -mavx2 -mfma; simd_backend.cpp guards every call
// behind a runtime __builtin_cpu_supports check, so these instructions
// never execute on hardware that lacks them.
//
// GEMM design: register-tiled micro-kernels (4 rows × 16 columns = 8 ymm
// accumulators for NN/TN, 4 dot-product accumulators for NT) under a
// K-blocking loop (kKc floats) that keeps the streamed B panel hot in L1/L2
// across the row sweep — the classic BLIS/MLAS decomposition, minus packing
// (row-major panels are already contiguous in the dimensions we stream).
// Attention kernels keep the scalar backend's loop structure (per-row
// online softmax) and vectorise both the d-dimension dot/axpy inner loops
// and the per-score exponentials (exp8 below) — with the dots vectorised,
// scalar std::exp over every score becomes the dominant serial cost.
#include "kernels/simd_avx2.h"

#if defined(FPDT_KERNEL_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "kernels/elementwise.h"

namespace fpdt::kernels::avx2 {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

// K-block size for the GEMM family: a [kKc, 16] B panel is 32 KiB — fits
// L1d alongside the A rows it multiplies.
constexpr std::int64_t kKc = 512;

inline float hsum8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

// <a, b> over d elements, 2-way unrolled 8-lane FMA with a scalar tail.
inline float dot(const float* a, const float* b, std::int64_t d) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::int64_t p = 0;
  for (; p + 16 <= d; p += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + p), _mm256_loadu_ps(b + p), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + p + 8), _mm256_loadu_ps(b + p + 8), acc1);
  }
  for (; p + 8 <= d; p += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + p), _mm256_loadu_ps(b + p), acc0);
  }
  float acc = hsum8(_mm256_add_ps(acc0, acc1));
  for (; p < d; ++p) acc += a[p] * b[p];
  return acc;
}

// acc[0..d) += w * v[0..d)
inline void axpy(float w, const float* v, float* acc, std::int64_t d) {
  const __m256 vw = _mm256_set1_ps(w);
  std::int64_t p = 0;
  for (; p + 8 <= d; p += 8) {
    _mm256_storeu_ps(acc + p, _mm256_fmadd_ps(vw, _mm256_loadu_ps(v + p), _mm256_loadu_ps(acc + p)));
  }
  for (; p < d; ++p) acc[p] += w * v[p];
}

// 8-lane expf: Cephes-style 2^n * e^r decomposition with a degree-5
// polynomial for e^r, ~1 ulp over the range attention feeds it (scores
// minus a row max, so x <= 0 up to rounding). Semantics the kernels rely
// on: NaN in -> NaN out (the all-(-inf)-row 0/0 case must propagate), and
// x <= -88.4 (including -inf) underflows to exactly +0.0, matching the
// weight-zero behaviour of masked-scale scores under std::exp.
inline __m256 exp8(__m256 x) {
  // Clamp with x as the second operand of min/max so a NaN input survives
  // (vminps/vmaxps forward src2 when either operand is NaN).
  x = _mm256_max_ps(_mm256_set1_ps(-88.3762626647949f),
                    _mm256_min_ps(_mm256_set1_ps(88.3762626647949f), x));
  __m256 fx = _mm256_fmadd_ps(x, _mm256_set1_ps(1.44269504088896341f), _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);  // n = round-to-minus-inf(x/ln2 + 1/2)
  // r = x - n*ln2, ln2 split into a high and low part for extra bits.
  x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(0.693359375f), x);
  x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(-2.12194440e-4f), x);
  const __m256 x2 = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_fmadd_ps(y, x2, _mm256_add_ps(x, _mm256_set1_ps(1.0f)));
  // 2^n via the exponent field; n = -127 collapses to +0.0 (underflow).
  const __m256i n = _mm256_cvttps_epi32(fx);
  const __m256i pow2n = _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(0x7f)), 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(pow2n));
}

// Transpose-reduce: lane t of the result is the full horizontal sum of
// acc[t]. Reduces 8 dot-product accumulators in ~12 shuffles instead of 8
// independent hsum8 calls — the difference between the score loop being
// FMA-bound and shuffle-bound at small head dims.
inline __m256 hsum8x8(const __m256 acc[8]) {
  const __m256 s01 = _mm256_hadd_ps(acc[0], acc[1]);
  const __m256 s23 = _mm256_hadd_ps(acc[2], acc[3]);
  const __m256 s0123 = _mm256_hadd_ps(s01, s23);
  const __m256 s45 = _mm256_hadd_ps(acc[4], acc[5]);
  const __m256 s67 = _mm256_hadd_ps(acc[6], acc[7]);
  const __m256 s4567 = _mm256_hadd_ps(s45, s67);
  return _mm256_add_ps(_mm256_permute2f128_ps(s0123, s4567, 0x20),
                       _mm256_permute2f128_ps(s0123, s4567, 0x31));
}

// out[t] = sc * <q, rows[t]> for 8 rows starting at r0 with stride ldr.
inline void dot8(const float* q, const float* r0, std::int64_t ldr, std::int64_t d, float sc,
                 float* out) {
  __m256 acc[8];
  for (int t = 0; t < 8; ++t) acc[t] = _mm256_setzero_ps();
  std::int64_t p = 0;
  for (; p + 8 <= d; p += 8) {
    const __m256 qv = _mm256_loadu_ps(q + p);
    for (int t = 0; t < 8; ++t) {
      acc[t] = _mm256_fmadd_ps(qv, _mm256_loadu_ps(r0 + t * ldr + p), acc[t]);
    }
  }
  _mm256_storeu_ps(out, hsum8x8(acc));
  if (p < d) {
    for (int t = 0; t < 8; ++t) {
      const float* row = r0 + t * ldr;
      float extra = 0.0f;
      for (std::int64_t pp = p; pp < d; ++pp) extra += q[pp] * row[pp];
      out[t] += extra;
    }
  }
  _mm256_storeu_ps(out, _mm256_mul_ps(_mm256_loadu_ps(out), _mm256_set1_ps(sc)));
}

// All jn scores of one query row against keys strided by ldr.
inline void score_row(const float* q, const float* k0, std::int64_t ldr, std::int64_t d, float sc,
                      float* scores, std::int64_t jn) {
  std::int64_t j = 0;
  for (; j + 8 <= jn; j += 8) dot8(q, k0 + j * ldr, ldr, d, sc, scores + j);
  for (; j < jn; ++j) scores[j] = dot(q, k0 + j * ldr, d) * sc;
}

inline float max_of(const float* w, std::int64_t jn) {
  float m = kNegInf;
  std::int64_t j = 0;
  if (jn >= 8) {
    __m256 vm = _mm256_loadu_ps(w);
    for (j = 8; j + 8 <= jn; j += 8) vm = _mm256_max_ps(vm, _mm256_loadu_ps(w + j));
    __m128 s = _mm_max_ps(_mm256_castps256_ps128(vm), _mm256_extractf128_ps(vm, 1));
    s = _mm_max_ps(s, _mm_movehl_ps(s, s));
    s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 0x55));
    m = _mm_cvtss_f32(s);
  }
  for (; j < jn; ++j) m = std::max(m, w[j]);
  return m;
}

// out[p_block] (+)= sum_j w[j] * rows[j][p_block], keeping the d-block
// accumulator in a register across the whole j sweep instead of streaming
// the output row through memory once per key.
template <bool kAccumulate>
inline void weighted_rows(const float* w, const float* r0, std::int64_t ldr, std::int64_t d,
                          std::int64_t jn, float* out) {
  std::int64_t p = 0;
  for (; p + 8 <= d; p += 8) {
    __m256 acc = kAccumulate ? _mm256_loadu_ps(out + p) : _mm256_setzero_ps();
    for (std::int64_t j = 0; j < jn; ++j) {
      acc = _mm256_fmadd_ps(_mm256_broadcast_ss(w + j), _mm256_loadu_ps(r0 + j * ldr + p), acc);
    }
    _mm256_storeu_ps(out + p, acc);
  }
  for (; p < d; ++p) {
    float a = kAccumulate ? out[p] : 0.0f;
    for (std::int64_t j = 0; j < jn; ++j) a += w[j] * r0[j * ldr + p];
    out[p] = a;
  }
}

// Head dims with d % 8 == 0 and d <= 32 (4 ymm) run the online-softmax
// recurrence entirely in registers: one sweep over 8-key blocks per query
// row, each k/v row loaded exactly once, block-granular rescale of the
// in-register accumulator. This is the same recurrence the scalar backend
// runs per chunk, applied at 8-key granularity.
constexpr std::int64_t kMaxRegD = 32;

inline void online_row_reg(const float* qrow, const float* kh, const float* vh, std::int64_t ldk,
                           std::int64_t d, float sc, std::int64_t jn, __m256 accv[4], float& m_run,
                           float& l_run) {
  alignas(32) float sbuf[8];
  alignas(32) float wbuf[8];
  const std::int64_t nb = d / 8;
  for (std::int64_t j0 = 0; j0 < jn; j0 += 8) {
    const std::int64_t jb = std::min<std::int64_t>(8, jn - j0);
    const float* kb = kh + j0 * ldk;
    const float* vb = vh + j0 * ldk;
    if (jb == 8) {
      dot8(qrow, kb, ldk, d, sc, sbuf);
    } else {
      for (std::int64_t t = 0; t < jb; ++t) sbuf[t] = dot(qrow, kb + t * ldk, d) * sc;
      // Pad with -inf: exp8 turns the dead lanes into exact zero weight.
      for (std::int64_t t = jb; t < 8; ++t) sbuf[t] = kNegInf;
    }
    float bm = sbuf[0];
    for (std::int64_t t = 1; t < jb; ++t) bm = std::max(bm, sbuf[t]);
    // Rescale only when this block actually raises the running max. For a
    // long key sweep the max stabilises quickly, so the scalar std::exp —
    // the one transcendental the vector path can't batch — drops out of
    // the steady state entirely.
    if (bm > m_run) {
      const float rescale = (l_run > 0.0f) ? std::exp(m_run - bm) : 0.0f;
      if (rescale != 1.0f) {
        const __m256 rs = _mm256_set1_ps(rescale);
        for (std::int64_t b = 0; b < nb; ++b) accv[b] = _mm256_mul_ps(accv[b], rs);
      }
      l_run *= rescale;
      m_run = bm;
    }
    const __m256 w8 = exp8(_mm256_sub_ps(_mm256_load_ps(sbuf), _mm256_set1_ps(m_run)));
    _mm256_store_ps(wbuf, w8);
    const float bsum = hsum8(w8);
    for (std::int64_t t = 0; t < jb; ++t) {
      const __m256 wt = _mm256_broadcast_ss(wbuf + t);
      for (std::int64_t b = 0; b < nb; ++b) {
        accv[b] = _mm256_fmadd_ps(wt, _mm256_loadu_ps(vb + t * ldk + b * 8), accv[b]);
      }
    }
    l_run += bsum;
  }
}

// In-place w[j] = exp(w[j] - m) over jn scores; returns sum of the results.
inline float exp_sub_sum(float* w, std::int64_t jn, float m) {
  const __m256 vm = _mm256_set1_ps(m);
  __m256 vz = _mm256_setzero_ps();
  std::int64_t j = 0;
  for (; j + 8 <= jn; j += 8) {
    const __m256 e = exp8(_mm256_sub_ps(_mm256_loadu_ps(w + j), vm));
    _mm256_storeu_ps(w + j, e);
    vz = _mm256_add_ps(vz, e);
  }
  float z = hsum8(vz);
  for (; j < jn; ++j) {
    w[j] = std::exp(w[j] - m);
    z += w[j];
  }
  return z;
}

inline void scale(float* a, float s, std::int64_t d) {
  const __m256 vs = _mm256_set1_ps(s);
  std::int64_t p = 0;
  for (; p + 8 <= d; p += 8) {
    _mm256_storeu_ps(a + p, _mm256_mul_ps(vs, _mm256_loadu_ps(a + p)));
  }
  for (; p < d; ++p) a[p] *= s;
}

// ---- NN micro-kernels: C[rows,16] += A[rows,kc] · B[kc,16] ---------------

// 4×16 register tile: 8 accumulators, 2 B loads + 4 broadcasts + 8 FMA per
// k iteration; B rows are reused across the 4 A rows.
inline void nn_micro_4x16(const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
                          float* c, std::int64_t ldc, std::int64_t kc) {
  __m256 c00 = _mm256_loadu_ps(c);
  __m256 c01 = _mm256_loadu_ps(c + 8);
  __m256 c10 = _mm256_loadu_ps(c + ldc);
  __m256 c11 = _mm256_loadu_ps(c + ldc + 8);
  __m256 c20 = _mm256_loadu_ps(c + 2 * ldc);
  __m256 c21 = _mm256_loadu_ps(c + 2 * ldc + 8);
  __m256 c30 = _mm256_loadu_ps(c + 3 * ldc);
  __m256 c31 = _mm256_loadu_ps(c + 3 * ldc + 8);
  for (std::int64_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(b + p * ldb);
    const __m256 b1 = _mm256_loadu_ps(b + p * ldb + 8);
    __m256 av = _mm256_set1_ps(a[p]);
    c00 = _mm256_fmadd_ps(av, b0, c00);
    c01 = _mm256_fmadd_ps(av, b1, c01);
    av = _mm256_set1_ps(a[lda + p]);
    c10 = _mm256_fmadd_ps(av, b0, c10);
    c11 = _mm256_fmadd_ps(av, b1, c11);
    av = _mm256_set1_ps(a[2 * lda + p]);
    c20 = _mm256_fmadd_ps(av, b0, c20);
    c21 = _mm256_fmadd_ps(av, b1, c21);
    av = _mm256_set1_ps(a[3 * lda + p]);
    c30 = _mm256_fmadd_ps(av, b0, c30);
    c31 = _mm256_fmadd_ps(av, b1, c31);
  }
  _mm256_storeu_ps(c, c00);
  _mm256_storeu_ps(c + 8, c01);
  _mm256_storeu_ps(c + ldc, c10);
  _mm256_storeu_ps(c + ldc + 8, c11);
  _mm256_storeu_ps(c + 2 * ldc, c20);
  _mm256_storeu_ps(c + 2 * ldc + 8, c21);
  _mm256_storeu_ps(c + 3 * ldc, c30);
  _mm256_storeu_ps(c + 3 * ldc + 8, c31);
}

inline void nn_micro_1x16(const float* a, const float* b, std::int64_t ldb, float* c,
                          std::int64_t kc) {
  __m256 c0 = _mm256_loadu_ps(c);
  __m256 c1 = _mm256_loadu_ps(c + 8);
  for (std::int64_t p = 0; p < kc; ++p) {
    const __m256 av = _mm256_set1_ps(a[p]);
    c0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b + p * ldb), c0);
    c1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b + p * ldb + 8), c1);
  }
  _mm256_storeu_ps(c, c0);
  _mm256_storeu_ps(c + 8, c1);
}

}  // namespace

void gemm_nn_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                 std::int64_t n) {
  for (std::int64_t pc = 0; pc < k; pc += kKc) {
    const std::int64_t kc = std::min<std::int64_t>(kKc, k - pc);
    const float* ab = a + pc;      // A[:, pc:pc+kc], row stride k
    const float* bb = b + pc * n;  // B[pc:pc+kc, :], row stride n
    std::int64_t j = 0;
    for (; j + 16 <= n; j += 16) {
      std::int64_t i = 0;
      for (; i + 4 <= m; i += 4) {
        nn_micro_4x16(ab + i * k, k, bb + j, n, c + i * n + j, n, kc);
      }
      for (; i < m; ++i) {
        nn_micro_1x16(ab + i * k, bb + j, n, c + i * n + j, kc);
      }
    }
    if (j < n) {
      // Column tail (< 16 wide): plain rank-1 updates on the remainder.
      for (std::int64_t i = 0; i < m; ++i) {
        const float* a_row = ab + i * k;
        float* c_row = c + i * n;
        for (std::int64_t p = 0; p < kc; ++p) {
          const float av = a_row[p];
          const float* b_row = bb + p * n;
          for (std::int64_t jt = j; jt < n; ++jt) c_row[jt] += av * b_row[jt];
        }
      }
    }
  }
}

void gemm_nt(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n) {
  // Dot-product form: both operands stream contiguously over k. 1 row × 4
  // columns of B per tile so the A row's loads amortise across 4 dots.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + j * k;
      const float* b1 = b + (j + 1) * k;
      const float* b2 = b + (j + 2) * k;
      const float* b3 = b + (j + 3) * k;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      std::int64_t p = 0;
      for (; p + 8 <= k; p += 8) {
        const __m256 va = _mm256_loadu_ps(a_row + p);
        acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b0 + p), acc0);
        acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b1 + p), acc1);
        acc2 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b2 + p), acc2);
        acc3 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b3 + p), acc3);
      }
      float s0 = hsum8(acc0);
      float s1 = hsum8(acc1);
      float s2 = hsum8(acc2);
      float s3 = hsum8(acc3);
      for (; p < k; ++p) {
        const float av = a_row[p];
        s0 += av * b0[p];
        s1 += av * b1[p];
        s2 += av * b2[p];
        s3 += av * b3[p];
      }
      float* c_row = c + i * n + j;
      c_row[0] = s0;
      c_row[1] = s1;
      c_row[2] = s2;
      c_row[3] = s3;
    }
    for (; j < n; ++j) c[i * n + j] = dot(a_row, b + j * k, k);
  }
}

void gemm_tn_acc(const float* a, const float* b, float* c, std::int64_t k, std::int64_t m,
                 std::int64_t n) {
  // Rank-1 updates blocked 4-deep in k so each C row is loaded/stored once
  // per 4 accumulated outer products.
  std::int64_t p = 0;
  for (; p + 4 <= k; p += 4) {
    const float* a0 = a + p * m;
    const float* a1 = a0 + m;
    const float* a2 = a1 + m;
    const float* a3 = a2 + m;
    const float* b0 = b + p * n;
    const float* b1 = b0 + n;
    const float* b2 = b1 + n;
    const float* b3 = b2 + n;
    for (std::int64_t i = 0; i < m; ++i) {
      const __m256 av0 = _mm256_set1_ps(a0[i]);
      const __m256 av1 = _mm256_set1_ps(a1[i]);
      const __m256 av2 = _mm256_set1_ps(a2[i]);
      const __m256 av3 = _mm256_set1_ps(a3[i]);
      float* c_row = c + i * n;
      std::int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        __m256 acc = _mm256_loadu_ps(c_row + j);
        acc = _mm256_fmadd_ps(av0, _mm256_loadu_ps(b0 + j), acc);
        acc = _mm256_fmadd_ps(av1, _mm256_loadu_ps(b1 + j), acc);
        acc = _mm256_fmadd_ps(av2, _mm256_loadu_ps(b2 + j), acc);
        acc = _mm256_fmadd_ps(av3, _mm256_loadu_ps(b3 + j), acc);
        _mm256_storeu_ps(c_row + j, acc);
      }
      for (; j < n; ++j) {
        c_row[j] += a0[i] * b0[j] + a1[i] * b1[j] + a2[i] * b2[j] + a3[i] * b3[j];
      }
    }
  }
  for (; p < k; ++p) {
    const float* a_row = a + p * m;
    const float* b_row = b + p * n;
    for (std::int64_t i = 0; i < m; ++i) {
      axpy(a_row[i], b_row, c + i * n, n);
    }
  }
}

void attn_forward(const float* q, const float* k, const float* v, float* out, float* lse,
                  const AttnDims& dm, bool causal, std::int64_t q_pos0, std::int64_t k_pos0) {
  const float sc = 1.0f / std::sqrt(static_cast<float>(dm.d));
  const std::int64_t ldk = dm.hk * dm.d;
  std::vector<float> scores(static_cast<std::size_t>(dm.sk));
  for (std::int64_t hd = 0; hd < dm.h; ++hd) {
    const std::int64_t kv_head = hd / dm.group;
    const float* kh = k + kv_head * dm.d;
    const float* vh = v + kv_head * dm.d;
    for (std::int64_t i = 0; i < dm.sq; ++i) {
      const float* qrow = q + (i * dm.h + hd) * dm.d;
      float* orow = out + (i * dm.h + hd) * dm.d;
      const std::int64_t jn = causal_bound(causal, q_pos0 + i, k_pos0, dm.sk);
      if (jn == 0) {
        std::fill(orow, orow + dm.d, 0.0f);
        lse[i * dm.h + hd] = kNegInf;
        continue;
      }
      if (dm.d % 8 == 0 && dm.d <= kMaxRegD) {
        __m256 accv[4];
        const std::int64_t nb = dm.d / 8;
        for (std::int64_t b = 0; b < nb; ++b) accv[b] = _mm256_setzero_ps();
        float m = kNegInf;
        float z = 0.0f;
        online_row_reg(qrow, kh, vh, ldk, dm.d, sc, jn, accv, m, z);
        const __m256 inv = _mm256_set1_ps(1.0f / z);
        for (std::int64_t b = 0; b < nb; ++b) {
          _mm256_storeu_ps(orow + b * 8, _mm256_mul_ps(accv[b], inv));
        }
        lse[i * dm.h + hd] = m + std::log(z);
        continue;
      }
      score_row(qrow, kh, ldk, dm.d, sc, scores.data(), jn);
      const float m = max_of(scores.data(), jn);
      const float z = exp_sub_sum(scores.data(), jn, m);
      scale(scores.data(), 1.0f / z, jn);
      weighted_rows<false>(scores.data(), vh, ldk, dm.d, jn, orow);
      lse[i * dm.h + hd] = m + std::log(z);
    }
  }
}

void online_attn_step(float* acc, float* row_max, float* row_sum, const float* q, const float* k,
                      const float* v, const AttnDims& dm, bool causal, std::int64_t q_pos0,
                      std::int64_t k_pos0) {
  const float sc = 1.0f / std::sqrt(static_cast<float>(dm.d));
  const std::int64_t ldk = dm.hk * dm.d;
  std::vector<float> scores(static_cast<std::size_t>(dm.sk));
  for (std::int64_t hd = 0; hd < dm.h; ++hd) {
    const std::int64_t kv_head = hd / dm.group;
    const float* kh = k + kv_head * dm.d;
    const float* vh = v + kv_head * dm.d;
    for (std::int64_t i = 0; i < dm.sq; ++i) {
      const float* qrow = q + (i * dm.h + hd) * dm.d;
      const std::int64_t jn = causal_bound(causal, q_pos0 + i, k_pos0, dm.sk);
      if (jn == 0) continue;
      float& m_run = row_max[i * dm.h + hd];
      float& l_run = row_sum[i * dm.h + hd];
      float* arow = acc + (i * dm.h + hd) * dm.d;
      if (dm.d % 8 == 0 && dm.d <= kMaxRegD) {
        __m256 accv[4];
        const std::int64_t nb = dm.d / 8;
        for (std::int64_t b = 0; b < nb; ++b) accv[b] = _mm256_loadu_ps(arow + b * 8);
        online_row_reg(qrow, kh, vh, ldk, dm.d, sc, jn, accv, m_run, l_run);
        for (std::int64_t b = 0; b < nb; ++b) _mm256_storeu_ps(arow + b * 8, accv[b]);
        continue;
      }
      score_row(qrow, kh, ldk, dm.d, sc, scores.data(), jn);
      const float block_max = max_of(scores.data(), jn);
      const float m_new = std::max(m_run, block_max);
      const float rescale = (l_run > 0.0f) ? std::exp(m_run - m_new) : 0.0f;
      if (rescale != 1.0f) scale(arow, rescale, dm.d);
      const float block_sum = exp_sub_sum(scores.data(), jn, m_new);
      weighted_rows<true>(scores.data(), vh, ldk, dm.d, jn, arow);
      l_run = l_run * rescale + block_sum;
      m_run = m_new;
    }
  }
}

void online_attn_backward_step(const float* q, const float* k, const float* v, const float* dout,
                               const float* lse, const float* D, const AttnDims& dm, bool causal,
                               std::int64_t q_pos0, std::int64_t k_pos0, float* dq, float* dk,
                               float* dv) {
  // Unlike the forward pass there is no row-max recurrence here — lse is
  // saved state — so every key is independent and the whole backward fuses
  // into ONE sweep over 8-key blocks: scores, probabilities, dq/dk/dv all
  // touch each k/v row while it is still hot in L1, instead of four
  // separate L2-bound sweeps over the chunk per query row.
  const float sc = 1.0f / std::sqrt(static_cast<float>(dm.d));
  const std::int64_t ldk = dm.hk * dm.d;
  alignas(32) float sbuf[8];
  alignas(32) float prb[8];
  alignas(32) float dsb[8];
  for (std::int64_t hd = 0; hd < dm.h; ++hd) {
    const std::int64_t kv_head = hd / dm.group;
    const float* kh = k + kv_head * dm.d;
    const float* vh = v + kv_head * dm.d;
    float* dkh = dk + kv_head * dm.d;
    float* dvh = dv + kv_head * dm.d;
    for (std::int64_t i = 0; i < dm.sq; ++i) {
      const float* qrow = q + (i * dm.h + hd) * dm.d;
      const std::int64_t jn = causal_bound(causal, q_pos0 + i, k_pos0, dm.sk);
      const float row_lse = lse[i * dm.h + hd];
      const float Drow = D[i * dm.h + hd];
      const float* grow = dout + (i * dm.h + hd) * dm.d;
      float* dqrow = dq + (i * dm.h + hd) * dm.d;
      for (std::int64_t j0 = 0; j0 < jn; j0 += 8) {
        const std::int64_t jb = std::min<std::int64_t>(8, jn - j0);
        const float* kb = kh + j0 * ldk;
        const float* vb = vh + j0 * ldk;
        if (jb == 8) {
          dot8(qrow, kb, ldk, dm.d, sc, sbuf);   // s_t   = <q, k_t> * sc
          dot8(grow, vb, ldk, dm.d, 1.0f, dsb);  // dp_t  = <dout, v_t>
          const __m256 pr = exp8(_mm256_sub_ps(_mm256_load_ps(sbuf), _mm256_set1_ps(row_lse)));
          _mm256_store_ps(prb, pr);
          const __m256 ds8 = _mm256_mul_ps(
              _mm256_mul_ps(pr, _mm256_sub_ps(_mm256_load_ps(dsb), _mm256_set1_ps(Drow))),
              _mm256_set1_ps(sc));
          _mm256_store_ps(dsb, ds8);
        } else {
          for (std::int64_t t = 0; t < jb; ++t) {
            const float s = dot(qrow, kb + t * ldk, dm.d) * sc;
            prb[t] = std::exp(s - row_lse);
            dsb[t] = prb[t] * (dot(grow, vb + t * ldk, dm.d) - Drow) * sc;
          }
        }
        // dq_i += ds_t k_t; dv_t += prob_t dout_i; dk_t += ds_t q_i — the
        // k rows are still in L1 from the score dots above.
        std::int64_t p = 0;
        for (; p + 8 <= dm.d; p += 8) {
          const __m256 g8 = _mm256_loadu_ps(grow + p);
          const __m256 q8 = _mm256_loadu_ps(qrow + p);
          __m256 dqa = _mm256_loadu_ps(dqrow + p);
          for (std::int64_t t = 0; t < jb; ++t) {
            const __m256 dst = _mm256_broadcast_ss(dsb + t);
            dqa = _mm256_fmadd_ps(dst, _mm256_loadu_ps(kb + t * ldk + p), dqa);
            float* dvp = dvh + (j0 + t) * ldk + p;
            float* dkp = dkh + (j0 + t) * ldk + p;
            _mm256_storeu_ps(dvp,
                             _mm256_fmadd_ps(_mm256_broadcast_ss(prb + t), g8, _mm256_loadu_ps(dvp)));
            _mm256_storeu_ps(dkp, _mm256_fmadd_ps(dst, q8, _mm256_loadu_ps(dkp)));
          }
          _mm256_storeu_ps(dqrow + p, dqa);
        }
        for (; p < dm.d; ++p) {
          float a = dqrow[p];
          for (std::int64_t t = 0; t < jb; ++t) {
            a += dsb[t] * kb[t * ldk + p];
            dvh[(j0 + t) * ldk + p] += prb[t] * grow[p];
            dkh[(j0 + t) * ldk + p] += dsb[t] * qrow[p];
          }
          dqrow[p] = a;
        }
      }
    }
  }
}

void softmax_rows(float* x, std::int64_t rows, std::int64_t cols) {
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = x + r * cols;
    __m256 vm = _mm256_set1_ps(kNegInf);
    std::int64_t j = 0;
    for (; j + 8 <= cols; j += 8) vm = _mm256_max_ps(vm, _mm256_loadu_ps(row + j));
    float m = (j > 0) ? [&] {
      __m128 s = _mm_max_ps(_mm256_castps256_ps128(vm), _mm256_extractf128_ps(vm, 1));
      s = _mm_max_ps(s, _mm_movehl_ps(s, s));
      s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 0x55));
      return _mm_cvtss_f32(s);
    }()
                      : row[0];
    for (; j < cols; ++j) m = std::max(m, row[j]);
    const float z = exp_sub_sum(row, cols, m);
    scale(row, 1.0f / z, cols);
  }
}

// ---- Activations & norms ---------------------------------------------------

namespace {

// tanh/sigmoid in terms of exp8 so the saturating ends are exact:
// exp8(-inf) = +0, so tanh8 → ±1 and sigmoid8 → 0/1 instead of NaN.
inline __m256 tanh8(__m256 y) {
  // tanh(y) = 1 - 2 / (exp(2y) + 1)
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 e2y = exp8(_mm256_add_ps(y, y));
  return _mm256_sub_ps(one, _mm256_div_ps(_mm256_set1_ps(2.0f), _mm256_add_ps(e2y, one)));
}

inline __m256 sigmoid8(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 enx = exp8(_mm256_sub_ps(_mm256_setzero_ps(), x));
  return _mm256_div_ps(one, _mm256_add_ps(one, enx));
}

constexpr float kGeluK = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluC = 0.044715f;

inline __m256 gelu_inner8(__m256 v) {
  const __m256 v3 = _mm256_mul_ps(_mm256_mul_ps(v, v), v);
  return _mm256_mul_ps(_mm256_set1_ps(kGeluK), _mm256_fmadd_ps(_mm256_set1_ps(kGeluC), v3, v));
}

}  // namespace

void gelu_forward(const float* x, float* y, std::int64_t n) {
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 one = _mm256_set1_ps(1.0f);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 t = tanh8(gelu_inner8(v));
    _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_mul_ps(half, v), _mm256_add_ps(one, t)));
  }
  for (; i < n; ++i) y[i] = gelu_scalar(x[i]);
}

void gelu_backward_mul(const float* x, float* dx, std::int64_t n) {
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 k = _mm256_set1_ps(kGeluK);
  const __m256 c3 = _mm256_set1_ps(3.0f * kGeluC);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 t = tanh8(gelu_inner8(v));
    const __m256 sech2 = _mm256_fnmadd_ps(t, t, one);  // 1 - t^2
    const __m256 dinner = _mm256_mul_ps(k, _mm256_fmadd_ps(c3, _mm256_mul_ps(v, v), one));
    const __m256 grad =
        _mm256_mul_ps(half, _mm256_fmadd_ps(_mm256_mul_ps(v, sech2), dinner,
                                            _mm256_add_ps(one, t)));
    _mm256_storeu_ps(dx + i, _mm256_mul_ps(_mm256_loadu_ps(dx + i), grad));
  }
  for (; i < n; ++i) dx[i] *= gelu_grad_scalar(x[i]);
}

void silu_forward(const float* x, float* y, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    _mm256_storeu_ps(y + i, _mm256_mul_ps(v, sigmoid8(v)));
  }
  for (; i < n; ++i) y[i] = silu_scalar(x[i]);
}

void silu_backward_mul(const float* x, float* dx, std::int64_t n) {
  const __m256 one = _mm256_set1_ps(1.0f);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 s = sigmoid8(v);
    // s * (1 + v * (1 - s))
    const __m256 grad = _mm256_mul_ps(s, _mm256_fmadd_ps(v, _mm256_sub_ps(one, s), one));
    _mm256_storeu_ps(dx + i, _mm256_mul_ps(_mm256_loadu_ps(dx + i), grad));
  }
  for (; i < n; ++i) dx[i] *= silu_grad_scalar(x[i]);
}

void layernorm_forward(const float* x, const float* gamma, const float* beta, float* y,
                       float* mean, float* rstd, std::int64_t rows, std::int64_t n, float eps) {
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = x + r * n;
    __m256 vs = _mm256_setzero_ps();
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8) vs = _mm256_add_ps(vs, _mm256_loadu_ps(row + j));
    float mu = hsum8(vs);
    for (; j < n; ++j) mu += row[j];
    mu *= inv_n;
    const __m256 vmu = _mm256_set1_ps(mu);
    __m256 vv = _mm256_setzero_ps();
    j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(row + j), vmu);
      vv = _mm256_fmadd_ps(d, d, vv);
    }
    float var = hsum8(vv);
    for (; j < n; ++j) {
      const float d = row[j] - mu;
      var += d * d;
    }
    var *= inv_n;
    const float rs = 1.0f / std::sqrt(var + eps);
    mean[r] = mu;
    rstd[r] = rs;
    const __m256 vrs = _mm256_set1_ps(rs);
    float* out = y + r * n;
    j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 xh = _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(row + j), vmu), vrs);
      _mm256_storeu_ps(out + j,
                       _mm256_fmadd_ps(xh, _mm256_loadu_ps(gamma + j), _mm256_loadu_ps(beta + j)));
    }
    for (; j < n; ++j) out[j] = (row[j] - mu) * rs * gamma[j] + beta[j];
  }
}

void layernorm_backward(const float* x, const float* dy, const float* gamma, const float* mean,
                        const float* rstd, float* dx, float* dgamma, float* dbeta,
                        std::int64_t rows, std::int64_t n) {
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float mu = mean[r];
    const float rs = rstd[r];
    const float* xr = x + r * n;
    const float* dyr = dy + r * n;
    float* dxr = dx + r * n;
    const __m256 vmu = _mm256_set1_ps(mu);
    const __m256 vrs = _mm256_set1_ps(rs);
    __m256 v1 = _mm256_setzero_ps();
    __m256 v2 = _mm256_setzero_ps();
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 xh = _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(xr + j), vmu), vrs);
      const __m256 dyv = _mm256_loadu_ps(dyr + j);
      const __m256 dxh = _mm256_mul_ps(dyv, _mm256_loadu_ps(gamma + j));
      v1 = _mm256_add_ps(v1, dxh);
      v2 = _mm256_fmadd_ps(dxh, xh, v2);
      _mm256_storeu_ps(dgamma + j, _mm256_fmadd_ps(dyv, xh, _mm256_loadu_ps(dgamma + j)));
      _mm256_storeu_ps(dbeta + j, _mm256_add_ps(_mm256_loadu_ps(dbeta + j), dyv));
    }
    float sum_dxhat = hsum8(v1);
    float sum_dxhat_xhat = hsum8(v2);
    for (; j < n; ++j) {
      const float xhat = (xr[j] - mu) * rs;
      const float dxhat = dyr[j] * gamma[j];
      sum_dxhat += dxhat;
      sum_dxhat_xhat += dxhat * xhat;
      dgamma[j] += dyr[j] * xhat;
      dbeta[j] += dyr[j];
    }
    const __m256 c1 = _mm256_set1_ps(inv_n * sum_dxhat);
    const __m256 c2 = _mm256_set1_ps(inv_n * sum_dxhat_xhat);
    j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 xh = _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(xr + j), vmu), vrs);
      const __m256 dxh = _mm256_mul_ps(_mm256_loadu_ps(dyr + j), _mm256_loadu_ps(gamma + j));
      const __m256 t = _mm256_fnmadd_ps(xh, c2, _mm256_sub_ps(dxh, c1));
      _mm256_storeu_ps(dxr + j, _mm256_mul_ps(vrs, t));
    }
    for (; j < n; ++j) {
      const float xhat = (xr[j] - mu) * rs;
      const float dxhat = dyr[j] * gamma[j];
      dxr[j] = rs * (dxhat - inv_n * sum_dxhat - xhat * inv_n * sum_dxhat_xhat);
    }
  }
}

void rmsnorm_forward(const float* x, const float* gamma, float* y, float* rstd, std::int64_t rows,
                     std::int64_t n, float eps) {
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = x + r * n;
    __m256 vs = _mm256_setzero_ps();
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 v = _mm256_loadu_ps(row + j);
      vs = _mm256_fmadd_ps(v, v, vs);
    }
    float ms = hsum8(vs);
    for (; j < n; ++j) ms += row[j] * row[j];
    ms *= inv_n;
    const float rs = 1.0f / std::sqrt(ms + eps);
    rstd[r] = rs;
    const __m256 vrs = _mm256_set1_ps(rs);
    float* out = y + r * n;
    j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 v = _mm256_mul_ps(_mm256_loadu_ps(row + j), vrs);
      _mm256_storeu_ps(out + j, _mm256_mul_ps(v, _mm256_loadu_ps(gamma + j)));
    }
    for (; j < n; ++j) out[j] = row[j] * rs * gamma[j];
  }
}

void rmsnorm_backward(const float* x, const float* dy, const float* gamma, const float* rstd,
                      float* dx, float* dgamma, std::int64_t rows, std::int64_t n) {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float rs = rstd[r];
    const float* xr = x + r * n;
    const float* dyr = dy + r * n;
    float* dxr = dx + r * n;
    const __m256 vrs = _mm256_set1_ps(rs);
    __m256 vsum = _mm256_setzero_ps();
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 dyv = _mm256_loadu_ps(dyr + j);
      const __m256 xv = _mm256_loadu_ps(xr + j);
      const __m256 dg = _mm256_mul_ps(dyv, _mm256_loadu_ps(gamma + j));
      vsum = _mm256_fmadd_ps(dg, xv, vsum);
      _mm256_storeu_ps(dgamma + j,
                       _mm256_fmadd_ps(_mm256_mul_ps(dyv, xv), vrs, _mm256_loadu_ps(dgamma + j)));
    }
    float sum_dg_x = hsum8(vsum);
    for (; j < n; ++j) {
      sum_dg_x += dyr[j] * gamma[j] * xr[j];
      dgamma[j] += dyr[j] * xr[j] * rs;
    }
    const float kf = sum_dg_x * rs * rs * rs / static_cast<float>(n);
    const __m256 vkf = _mm256_set1_ps(kf);
    j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 dg =
          _mm256_mul_ps(_mm256_loadu_ps(dyr + j), _mm256_loadu_ps(gamma + j));
      const __m256 t = _mm256_fnmadd_ps(_mm256_loadu_ps(xr + j), vkf, _mm256_mul_ps(dg, vrs));
      _mm256_storeu_ps(dxr + j, t);
    }
    for (; j < n; ++j) dxr[j] = dyr[j] * gamma[j] * rs - xr[j] * kf;
  }
}

}  // namespace fpdt::kernels::avx2

#endif  // FPDT_KERNEL_AVX2
