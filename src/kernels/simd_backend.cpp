// The "simd" backend: runtime-dispatched AVX2/FMA kernels (simd_avx2.cpp)
// with a portable fallback that delegates to the scalar reference loops, so
// selecting "simd" is always safe — on hardware without AVX2 (or a build
// whose compiler can't emit it) it degrades to scalar semantics exactly.
//
// On top of the vector kernels, large row-partitionable ops fork across
// common/thread_pool workers — but only from the top level
// (!in_parallel_region()): the FPDT rank emulation already runs kernel
// calls inside parallel_for_ranks bodies, and a nested fork would
// oversubscribe the machine rather than speed it up. Ops that accumulate
// into operands shared across rows (gemm_tn's C, backward's dk/dv) stay
// single-threaded on the calling worker.
#include <algorithm>
#include <cmath>
#include <memory>

#include "common/thread_pool.h"
#include "kernels/backend.h"
#include "kernels/simd_avx2.h"

namespace fpdt::kernels {

std::unique_ptr<Backend> make_scalar_backend();  // scalar_backend.cpp

namespace {

bool detect_avx2() {
#if defined(FPDT_KERNEL_AVX2)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool avx2_enabled() {
  static const bool enabled = detect_avx2();
  return enabled;
}

// Rows below this run on the calling thread even when workers are
// available: fork-join overhead swamps the kernel at small sizes.
constexpr std::int64_t kMinRowsPerFork = 128;

bool should_fork(std::int64_t rows) {
  return rows >= kMinRowsPerFork && parallel_workers() > 1 && !in_parallel_region();
}

// Splits [0, rows) into one contiguous chunk per worker and runs
// body(row0, nrows) for each, possibly concurrently.
template <typename Body>
void fork_rows(std::int64_t rows, const Body& body) {
  const int workers = std::min<std::int64_t>(parallel_workers(), rows);
  const std::int64_t chunk = (rows + workers - 1) / workers;
  parallel_for_ranks(workers, [&](int w) {
    const std::int64_t row0 = w * chunk;
    const std::int64_t nrows = std::min<std::int64_t>(chunk, rows - row0);
    if (nrows > 0) body(row0, nrows);
  });
}

class SimdBackend final : public Backend {
 public:
  SimdBackend() : scalar_(make_scalar_backend()) {}

  const char* name() const override { return "simd"; }

  // ---- GEMM family ---------------------------------------------------------

  void gemm_nn_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                   std::int64_t n) const override {
#if defined(FPDT_KERNEL_AVX2)
    if (avx2_enabled()) {
      if (should_fork(m)) {
        fork_rows(m, [&](std::int64_t i0, std::int64_t mi) {
          avx2::gemm_nn_acc(a + i0 * k, b, c + i0 * n, mi, k, n);
        });
      } else {
        avx2::gemm_nn_acc(a, b, c, m, k, n);
      }
      return;
    }
#endif
    scalar_->gemm_nn_acc(a, b, c, m, k, n);
  }

  void gemm_nt(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
               std::int64_t n) const override {
#if defined(FPDT_KERNEL_AVX2)
    if (avx2_enabled()) {
      if (should_fork(m)) {
        fork_rows(m, [&](std::int64_t i0, std::int64_t mi) {
          avx2::gemm_nt(a + i0 * k, b, c + i0 * n, mi, k, n);
        });
      } else {
        avx2::gemm_nt(a, b, c, m, k, n);
      }
      return;
    }
#endif
    scalar_->gemm_nt(a, b, c, m, k, n);
  }

  void gemm_tn_acc(const float* a, const float* b, float* c, std::int64_t k, std::int64_t m,
                   std::int64_t n) const override {
    // Every rank-1 update writes all of C — no conflict-free row split, so
    // this one stays on the calling thread.
#if defined(FPDT_KERNEL_AVX2)
    if (avx2_enabled()) {
      avx2::gemm_tn_acc(a, b, c, k, m, n);
      return;
    }
#endif
    scalar_->gemm_tn_acc(a, b, c, k, m, n);
  }

  // ---- Attention -----------------------------------------------------------

  void attn_forward(const float* q, const float* k, const float* v, float* out, float* lse,
                    const AttnDims& dm, bool causal, std::int64_t q_pos0,
                    std::int64_t k_pos0) const override {
#if defined(FPDT_KERNEL_AVX2)
    if (avx2_enabled()) {
      if (should_fork(dm.sq)) {
        fork_rows(dm.sq, [&](std::int64_t i0, std::int64_t ni) {
          AttnDims sub = dm;
          sub.sq = ni;
          avx2::attn_forward(q + i0 * dm.h * dm.d, k, v, out + i0 * dm.h * dm.d, lse + i0 * dm.h,
                             sub, causal, q_pos0 + i0, k_pos0);
        });
      } else {
        avx2::attn_forward(q, k, v, out, lse, dm, causal, q_pos0, k_pos0);
      }
      return;
    }
#endif
    scalar_->attn_forward(q, k, v, out, lse, dm, causal, q_pos0, k_pos0);
  }

  void online_attn_step(float* acc, float* row_max, float* row_sum, const float* q,
                        const float* k, const float* v, const AttnDims& dm, bool causal,
                        std::int64_t q_pos0, std::int64_t k_pos0) const override {
#if defined(FPDT_KERNEL_AVX2)
    if (avx2_enabled()) {
      if (should_fork(dm.sq)) {
        fork_rows(dm.sq, [&](std::int64_t i0, std::int64_t ni) {
          AttnDims sub = dm;
          sub.sq = ni;
          avx2::online_attn_step(acc + i0 * dm.h * dm.d, row_max + i0 * dm.h,
                                 row_sum + i0 * dm.h, q + i0 * dm.h * dm.d, k, v, sub, causal,
                                 q_pos0 + i0, k_pos0);
        });
      } else {
        avx2::online_attn_step(acc, row_max, row_sum, q, k, v, dm, causal, q_pos0, k_pos0);
      }
      return;
    }
#endif
    scalar_->online_attn_step(acc, row_max, row_sum, q, k, v, dm, causal, q_pos0, k_pos0);
  }

  void online_attn_backward_step(const float* q, const float* k, const float* v,
                                 const float* dout, const float* lse, const float* D,
                                 const AttnDims& dm, bool causal, std::int64_t q_pos0,
                                 std::int64_t k_pos0, float* dq, float* dk,
                                 float* dv) const override {
    // dk/dv accumulate contributions from every query row — a row split
    // would race, so this stays on the calling thread.
#if defined(FPDT_KERNEL_AVX2)
    if (avx2_enabled()) {
      avx2::online_attn_backward_step(q, k, v, dout, lse, D, dm, causal, q_pos0, k_pos0, dq, dk,
                                      dv);
      return;
    }
#endif
    scalar_->online_attn_backward_step(q, k, v, dout, lse, D, dm, causal, q_pos0, k_pos0, dq, dk,
                                       dv);
  }

  // ---- Rowwise reductions & activations ------------------------------------
  // All of these run their transcendentals (exp/tanh/sigmoid) through the
  // same polynomial vector exp as the attention kernels; norm backward
  // passes accumulate into row-shared dgamma/dbeta, so norms stay on the
  // calling thread.

  void softmax_rows(float* x, std::int64_t rows, std::int64_t cols) const override {
#if defined(FPDT_KERNEL_AVX2)
    if (avx2_enabled()) {
      avx2::softmax_rows(x, rows, cols);
      return;
    }
#endif
    scalar_->softmax_rows(x, rows, cols);
  }

  void layernorm_forward(const float* x, const float* gamma, const float* beta, float* y,
                         float* mean, float* rstd, std::int64_t rows, std::int64_t n,
                         float eps) const override {
#if defined(FPDT_KERNEL_AVX2)
    if (avx2_enabled()) {
      avx2::layernorm_forward(x, gamma, beta, y, mean, rstd, rows, n, eps);
      return;
    }
#endif
    scalar_->layernorm_forward(x, gamma, beta, y, mean, rstd, rows, n, eps);
  }
  void layernorm_backward(const float* x, const float* dy, const float* gamma, const float* mean,
                          const float* rstd, float* dx, float* dgamma, float* dbeta,
                          std::int64_t rows, std::int64_t n) const override {
#if defined(FPDT_KERNEL_AVX2)
    if (avx2_enabled()) {
      avx2::layernorm_backward(x, dy, gamma, mean, rstd, dx, dgamma, dbeta, rows, n);
      return;
    }
#endif
    scalar_->layernorm_backward(x, dy, gamma, mean, rstd, dx, dgamma, dbeta, rows, n);
  }
  void rmsnorm_forward(const float* x, const float* gamma, float* y, float* rstd,
                       std::int64_t rows, std::int64_t n, float eps) const override {
#if defined(FPDT_KERNEL_AVX2)
    if (avx2_enabled()) {
      avx2::rmsnorm_forward(x, gamma, y, rstd, rows, n, eps);
      return;
    }
#endif
    scalar_->rmsnorm_forward(x, gamma, y, rstd, rows, n, eps);
  }
  void rmsnorm_backward(const float* x, const float* dy, const float* gamma, const float* rstd,
                        float* dx, float* dgamma, std::int64_t rows,
                        std::int64_t n) const override {
#if defined(FPDT_KERNEL_AVX2)
    if (avx2_enabled()) {
      avx2::rmsnorm_backward(x, dy, gamma, rstd, dx, dgamma, rows, n);
      return;
    }
#endif
    scalar_->rmsnorm_backward(x, dy, gamma, rstd, dx, dgamma, rows, n);
  }
  void gelu_forward(const float* x, float* y, std::int64_t n) const override {
#if defined(FPDT_KERNEL_AVX2)
    if (avx2_enabled()) {
      avx2::gelu_forward(x, y, n);
      return;
    }
#endif
    scalar_->gelu_forward(x, y, n);
  }
  void gelu_backward_mul(const float* x, float* dx, std::int64_t n) const override {
#if defined(FPDT_KERNEL_AVX2)
    if (avx2_enabled()) {
      avx2::gelu_backward_mul(x, dx, n);
      return;
    }
#endif
    scalar_->gelu_backward_mul(x, dx, n);
  }
  void silu_forward(const float* x, float* y, std::int64_t n) const override {
#if defined(FPDT_KERNEL_AVX2)
    if (avx2_enabled()) {
      avx2::silu_forward(x, y, n);
      return;
    }
#endif
    scalar_->silu_forward(x, y, n);
  }
  void silu_backward_mul(const float* x, float* dx, std::int64_t n) const override {
#if defined(FPDT_KERNEL_AVX2)
    if (avx2_enabled()) {
      avx2::silu_backward_mul(x, dx, n);
      return;
    }
#endif
    scalar_->silu_backward_mul(x, dx, n);
  }

 private:
  std::unique_ptr<Backend> scalar_;
};

}  // namespace

std::unique_ptr<Backend> make_simd_backend() { return std::make_unique<SimdBackend>(); }

bool simd_uses_avx2() { return avx2_enabled(); }

}  // namespace fpdt::kernels
