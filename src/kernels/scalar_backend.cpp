// The "scalar" reference backend: the seed's naive FP32 loops, extracted
// verbatim from src/tensor/tensor.cpp and src/nn/{attention,norm}.cpp so
// that a run which never selects a backend is bit-identical to the seed.
//
// Three latent numerics bugs of the seed are fixed here (and regression-
// tested in tests/test_kernels.cpp); each fix only changes behavior on
// inputs the seed got wrong, so finite-input results stay bit-identical:
//
//  1. The GEMM rank-1 loops skipped zero A-elements (`if (av == 0.0f)
//     continue;`). That silently dropped IEEE non-finite propagation —
//     0 · Inf must be NaN — making matmul_tn disagree with a
//     transpose-then-matmul oracle on Inf/NaN-laced operands. The
//     short-circuit is gone; for finite inputs adding the 0 · b terms
//     leaves every accumulator bit-unchanged.
//
//  2. A fully causally-masked query row (a KV chunk entirely in the
//     query's future — legitimate under chunked prefill) hard-aborted in
//     reference_attention_forward. It now yields the online-softmax
//     identity element: a zero output row with lse = -inf.
//
//  3. Masked scores were detected by comparing against the -inf sentinel
//     (`s == kNegInf`), conflating the mask with a genuine -inf logit from
//     overflow. Masking is now an index bound (kernels::causal_bound) and
//     genuine -inf logits flow through the softmax — an all--inf row
//     propagates NaN instead of being silently treated as masked.
#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "kernels/backend.h"
#include "kernels/elementwise.h"

namespace fpdt::kernels {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

class ScalarBackend final : public Backend {
 public:
  const char* name() const override { return "scalar"; }

  // Core 2-D GEMM: C[m,n] += A[m,k] · B[k,n]; ikj loop order keeps B row
  // access contiguous.
  void gemm_nn_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                   std::int64_t n) const override {
    for (std::int64_t i = 0; i < m; ++i) {
      float* c_row = c + i * n;
      const float* a_row = a + i * k;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = a_row[p];
        const float* b_row = b + p * n;
        for (std::int64_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
      }
    }
  }

  void gemm_nt(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
               std::int64_t n) const override {
    for (std::int64_t i = 0; i < m; ++i) {
      const float* a_row = a + i * k;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* b_row = b + j * k;
        float acc = 0.0f;
        for (std::int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
        c[i * n + j] = acc;
      }
    }
  }

  // Accumulate rank-1 updates; keeps both A and B row access contiguous.
  void gemm_tn_acc(const float* a, const float* b, float* c, std::int64_t k, std::int64_t m,
                   std::int64_t n) const override {
    for (std::int64_t p = 0; p < k; ++p) {
      const float* a_row = a + p * m;
      const float* b_row = b + p * n;
      for (std::int64_t i = 0; i < m; ++i) {
        const float av = a_row[i];
        float* c_row = c + i * n;
        for (std::int64_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
      }
    }
  }

  void attn_forward(const float* q, const float* k, const float* v, float* out, float* lse,
                    const AttnDims& dm, bool causal, std::int64_t q_pos0,
                    std::int64_t k_pos0) const override {
    const float scale = 1.0f / std::sqrt(static_cast<float>(dm.d));
    std::vector<float> scores(static_cast<std::size_t>(dm.sk));
    for (std::int64_t hd = 0; hd < dm.h; ++hd) {
      const std::int64_t kv_head = hd / dm.group;
      for (std::int64_t i = 0; i < dm.sq; ++i) {
        const float* qrow = q + (i * dm.h + hd) * dm.d;
        float* orow = out + (i * dm.h + hd) * dm.d;
        const std::int64_t jn = causal_bound(causal, q_pos0 + i, k_pos0, dm.sk);
        for (std::int64_t p = 0; p < dm.d; ++p) orow[p] = 0.0f;
        if (jn == 0) {
          // Fully masked row: the online-softmax identity element.
          lse[i * dm.h + hd] = kNegInf;
          continue;
        }
        for (std::int64_t j = 0; j < jn; ++j) {
          const float* krow = k + (j * dm.hk + kv_head) * dm.d;
          float acc = 0.0f;
          for (std::int64_t p = 0; p < dm.d; ++p) acc += qrow[p] * krow[p];
          scores[static_cast<std::size_t>(j)] = acc * scale;
        }
        float m = kNegInf;
        for (std::int64_t j = 0; j < jn; ++j) {
          m = std::max(m, scores[static_cast<std::size_t>(j)]);
        }
        float z = 0.0f;
        for (std::int64_t j = 0; j < jn; ++j) {
          float& s = scores[static_cast<std::size_t>(j)];
          s = std::exp(s - m);
          z += s;
        }
        const float inv = 1.0f / z;
        for (std::int64_t j = 0; j < jn; ++j) {
          const float w = scores[static_cast<std::size_t>(j)] * inv;
          if (w == 0.0f) continue;
          const float* vrow = v + (j * dm.hk + kv_head) * dm.d;
          for (std::int64_t p = 0; p < dm.d; ++p) orow[p] += w * vrow[p];
        }
        lse[i * dm.h + hd] = m + std::log(z);
      }
    }
  }

  void online_attn_step(float* acc, float* row_max, float* row_sum, const float* q,
                        const float* k, const float* v, const AttnDims& dm, bool causal,
                        std::int64_t q_pos0, std::int64_t k_pos0) const override {
    const float scale = 1.0f / std::sqrt(static_cast<float>(dm.d));
    std::vector<float> scores(static_cast<std::size_t>(dm.sk));
    for (std::int64_t hd = 0; hd < dm.h; ++hd) {
      const std::int64_t kv_head = hd / dm.group;
      for (std::int64_t i = 0; i < dm.sq; ++i) {
        const float* qrow = q + (i * dm.h + hd) * dm.d;
        const std::int64_t jn = causal_bound(causal, q_pos0 + i, k_pos0, dm.sk);
        if (jn == 0) continue;  // fully masked pair for this row
        for (std::int64_t j = 0; j < jn; ++j) {
          const float* krow = k + (j * dm.hk + kv_head) * dm.d;
          float dot = 0.0f;
          for (std::int64_t p = 0; p < dm.d; ++p) dot += qrow[p] * krow[p];
          scores[static_cast<std::size_t>(j)] = dot * scale;
        }
        float block_max = kNegInf;
        for (std::int64_t j = 0; j < jn; ++j) {
          block_max = std::max(block_max, scores[static_cast<std::size_t>(j)]);
        }
        float& m_run = row_max[i * dm.h + hd];
        float& l_run = row_sum[i * dm.h + hd];
        const float m_new = std::max(m_run, block_max);
        const float rescale = (l_run > 0.0f) ? std::exp(m_run - m_new) : 0.0f;
        float* arow = acc + (i * dm.h + hd) * dm.d;
        if (rescale != 1.0f) {
          for (std::int64_t p = 0; p < dm.d; ++p) arow[p] *= rescale;
        }
        float block_sum = 0.0f;
        for (std::int64_t j = 0; j < jn; ++j) {
          const float w = std::exp(scores[static_cast<std::size_t>(j)] - m_new);
          block_sum += w;
          const float* vrow = v + (j * dm.hk + kv_head) * dm.d;
          for (std::int64_t p = 0; p < dm.d; ++p) arow[p] += w * vrow[p];
        }
        l_run = l_run * rescale + block_sum;
        m_run = m_new;
      }
    }
  }

  void online_attn_backward_step(const float* q, const float* k, const float* v,
                                 const float* dout, const float* lse, const float* D,
                                 const AttnDims& dm, bool causal, std::int64_t q_pos0,
                                 std::int64_t k_pos0, float* dq, float* dk,
                                 float* dv) const override {
    const float scale = 1.0f / std::sqrt(static_cast<float>(dm.d));
    std::vector<float> scores(static_cast<std::size_t>(dm.sk));
    for (std::int64_t hd = 0; hd < dm.h; ++hd) {
      const std::int64_t kv_head = hd / dm.group;
      for (std::int64_t i = 0; i < dm.sq; ++i) {
        const float* qrow = q + (i * dm.h + hd) * dm.d;
        const std::int64_t jn = causal_bound(causal, q_pos0 + i, k_pos0, dm.sk);
        for (std::int64_t j = 0; j < jn; ++j) {
          const float* krow = k + (j * dm.hk + kv_head) * dm.d;
          float dot = 0.0f;
          for (std::int64_t p = 0; p < dm.d; ++p) dot += qrow[p] * krow[p];
          scores[static_cast<std::size_t>(j)] = dot * scale;
        }
        const float row_lse = lse[i * dm.h + hd];
        const float Drow = D[i * dm.h + hd];
        const float* grow = dout + (i * dm.h + hd) * dm.d;
        float* dqrow = dq + (i * dm.h + hd) * dm.d;
        for (std::int64_t j = 0; j < jn; ++j) {
          // True probability of this (i, j) pair over the *full* row.
          const float prob = std::exp(scores[static_cast<std::size_t>(j)] - row_lse);
          const float* vrow = v + (j * dm.hk + kv_head) * dm.d;
          const float* krow = k + (j * dm.hk + kv_head) * dm.d;
          float* dvrow = dv + (j * dm.hk + kv_head) * dm.d;
          float* dkrow = dk + (j * dm.hk + kv_head) * dm.d;
          // dP_ij = <dout_i, v_j>; dS_ij = P_ij (dP_ij - D_i).
          float dp_ij = 0.0f;
          for (std::int64_t p = 0; p < dm.d; ++p) dp_ij += grow[p] * vrow[p];
          const float ds = prob * (dp_ij - Drow) * scale;
          for (std::int64_t p = 0; p < dm.d; ++p) {
            dvrow[p] += prob * grow[p];
            dqrow[p] += ds * krow[p];
            dkrow[p] += ds * qrow[p];
          }
        }
      }
    }
  }

  void softmax_rows(float* x, std::int64_t rows, std::int64_t cols) const override {
    for (std::int64_t r = 0; r < rows; ++r) {
      float* row = x + r * cols;
      float m = row[0];
      for (std::int64_t j = 1; j < cols; ++j) m = std::max(m, row[j]);
      float z = 0.0f;
      for (std::int64_t j = 0; j < cols; ++j) {
        row[j] = std::exp(row[j] - m);
        z += row[j];
      }
      const float inv = 1.0f / z;
      for (std::int64_t j = 0; j < cols; ++j) row[j] *= inv;
    }
  }

  void layernorm_forward(const float* x, const float* gamma, const float* beta, float* y,
                         float* mean, float* rstd, std::int64_t rows, std::int64_t n,
                         float eps) const override {
    for (std::int64_t r = 0; r < rows; ++r) {
      const float* row = x + r * n;
      float mu = 0.0f;
      for (std::int64_t j = 0; j < n; ++j) mu += row[j];
      mu /= static_cast<float>(n);
      float var = 0.0f;
      for (std::int64_t j = 0; j < n; ++j) {
        const float d = row[j] - mu;
        var += d * d;
      }
      var /= static_cast<float>(n);
      const float rs = 1.0f / std::sqrt(var + eps);
      mean[r] = mu;
      rstd[r] = rs;
      float* out = y + r * n;
      for (std::int64_t j = 0; j < n; ++j) out[j] = (row[j] - mu) * rs * gamma[j] + beta[j];
    }
  }

  void layernorm_backward(const float* x, const float* dy, const float* gamma, const float* mean,
                          const float* rstd, float* dx, float* dgamma, float* dbeta,
                          std::int64_t rows, std::int64_t n) const override {
    for (std::int64_t r = 0; r < rows; ++r) {
      const float mu = mean[r];
      const float rs = rstd[r];
      const float* xr = x + r * n;
      const float* dyr = dy + r * n;
      float* dxr = dx + r * n;
      // xhat_j = (x_j - mean) * rstd; dxhat_j = dy_j * gamma_j.
      float sum_dxhat = 0.0f;
      float sum_dxhat_xhat = 0.0f;
      for (std::int64_t j = 0; j < n; ++j) {
        const float xhat = (xr[j] - mu) * rs;
        const float dxhat = dyr[j] * gamma[j];
        sum_dxhat += dxhat;
        sum_dxhat_xhat += dxhat * xhat;
        dgamma[j] += dyr[j] * xhat;
        dbeta[j] += dyr[j];
      }
      const float inv_n = 1.0f / static_cast<float>(n);
      for (std::int64_t j = 0; j < n; ++j) {
        const float xhat = (xr[j] - mu) * rs;
        const float dxhat = dyr[j] * gamma[j];
        dxr[j] = rs * (dxhat - inv_n * sum_dxhat - xhat * inv_n * sum_dxhat_xhat);
      }
    }
  }

  void rmsnorm_forward(const float* x, const float* gamma, float* y, float* rstd,
                       std::int64_t rows, std::int64_t n, float eps) const override {
    for (std::int64_t r = 0; r < rows; ++r) {
      const float* row = x + r * n;
      float ms = 0.0f;
      for (std::int64_t j = 0; j < n; ++j) ms += row[j] * row[j];
      ms /= static_cast<float>(n);
      const float rs = 1.0f / std::sqrt(ms + eps);
      rstd[r] = rs;
      float* out = y + r * n;
      for (std::int64_t j = 0; j < n; ++j) out[j] = row[j] * rs * gamma[j];
    }
  }

  void rmsnorm_backward(const float* x, const float* dy, const float* gamma, const float* rstd,
                        float* dx, float* dgamma, std::int64_t rows,
                        std::int64_t n) const override {
    for (std::int64_t r = 0; r < rows; ++r) {
      const float rs = rstd[r];
      const float* xr = x + r * n;
      const float* dyr = dy + r * n;
      float* dxr = dx + r * n;
      float sum_dg_x = 0.0f;  // Σ dy_j * gamma_j * x_j
      for (std::int64_t j = 0; j < n; ++j) {
        sum_dg_x += dyr[j] * gamma[j] * xr[j];
        dgamma[j] += dyr[j] * xr[j] * rs;
      }
      const float kf = sum_dg_x * rs * rs * rs / static_cast<float>(n);
      for (std::int64_t j = 0; j < n; ++j) {
        dxr[j] = dyr[j] * gamma[j] * rs - xr[j] * kf;
      }
    }
  }

  void gelu_forward(const float* x, float* y, std::int64_t n) const override {
    for (std::int64_t i = 0; i < n; ++i) y[i] = gelu_scalar(x[i]);
  }
  void gelu_backward_mul(const float* x, float* dx, std::int64_t n) const override {
    for (std::int64_t i = 0; i < n; ++i) dx[i] *= gelu_grad_scalar(x[i]);
  }
  void silu_forward(const float* x, float* y, std::int64_t n) const override {
    for (std::int64_t i = 0; i < n; ++i) y[i] = silu_scalar(x[i]);
  }
  void silu_backward_mul(const float* x, float* dx, std::int64_t n) const override {
    for (std::int64_t i = 0; i < n; ++i) dx[i] *= silu_grad_scalar(x[i]);
  }
};

}  // namespace

std::unique_ptr<Backend> make_scalar_backend() { return std::make_unique<ScalarBackend>(); }

}  // namespace fpdt::kernels
