// Scalar definitions of the pointwise activations (tanh-approximation GELU
// as used by GPT; SiLU for Llama's SwiGLU) with exact derivatives. These
// are the single source of truth for the math: the scalar backend loops
// over them verbatim, the simd backend loops over them in a
// vectorizer-friendly form, and nn/activation.h re-exports them for
// callers that want the per-element functions directly.
#pragma once

#include <cmath>

namespace fpdt::kernels {

inline float gelu_scalar(float x) {
  const float k = 0.7978845608028654f;  // sqrt(2/pi)
  const float inner = k * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

inline float gelu_grad_scalar(float x) {
  const float k = 0.7978845608028654f;
  const float x3 = x * x * x;
  const float inner = k * (x + 0.044715f * x3);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  return 0.5f * (1.0f + t) + 0.5f * x * sech2 * k * (1.0f + 3.0f * 0.044715f * x * x);
}

inline float silu_scalar(float x) {
  const float s = 1.0f / (1.0f + std::exp(-x));
  return x * s;
}

inline float silu_grad_scalar(float x) {
  const float s = 1.0f / (1.0f + std::exp(-x));
  return s * (1.0f + x * (1.0f - s));
}

}  // namespace fpdt::kernels
