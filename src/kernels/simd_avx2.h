// AVX2/FMA kernel entry points for the "simd" backend.
//
// These are defined in simd_avx2.cpp, which CMake compiles with
// -mavx2 -mfma on x86-64 when the compiler supports it (and defines
// FPDT_KERNEL_AVX2 on the kernels target). simd_backend.cpp calls them only
// after __builtin_cpu_supports confirms the CPU actually has AVX2+FMA, so
// the rest of the library stays runnable on any machine the baseline
// compiler flags target.
//
// Numerics contract: identical masking/identity-element semantics to the
// scalar backend (kernels/backend.h), but vector accumulation reassociates
// sums, so results match "scalar" within tolerance rather than bitwise.
#pragma once

#include <cstdint>

#include "kernels/backend.h"

#if defined(FPDT_KERNEL_AVX2)

namespace fpdt::kernels::avx2 {

// GEMM family: same shapes/semantics as Backend::gemm_*.
void gemm_nn_acc(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
                 std::int64_t n);
void gemm_nt(const float* a, const float* b, float* c, std::int64_t m, std::int64_t k,
             std::int64_t n);
void gemm_tn_acc(const float* a, const float* b, float* c, std::int64_t k, std::int64_t m,
                 std::int64_t n);

// Attention: same semantics as Backend::attn_* / Backend::online_attn_*.
void attn_forward(const float* q, const float* k, const float* v, float* out, float* lse,
                  const AttnDims& dm, bool causal, std::int64_t q_pos0, std::int64_t k_pos0);
void online_attn_step(float* acc, float* row_max, float* row_sum, const float* q, const float* k,
                      const float* v, const AttnDims& dm, bool causal, std::int64_t q_pos0,
                      std::int64_t k_pos0);
void online_attn_backward_step(const float* q, const float* k, const float* v, const float* dout,
                               const float* lse, const float* D, const AttnDims& dm, bool causal,
                               std::int64_t q_pos0, std::int64_t k_pos0, float* dq, float* dk,
                               float* dv);

void softmax_rows(float* x, std::int64_t rows, std::int64_t cols);

// Norms and pointwise activations: same shapes/semantics as the Backend
// methods. The transcendentals (tanh/sigmoid/exp) run through the same
// vector exp as the attention kernels.
void layernorm_forward(const float* x, const float* gamma, const float* beta, float* y,
                       float* mean, float* rstd, std::int64_t rows, std::int64_t n, float eps);
void layernorm_backward(const float* x, const float* dy, const float* gamma, const float* mean,
                        const float* rstd, float* dx, float* dgamma, float* dbeta,
                        std::int64_t rows, std::int64_t n);
void rmsnorm_forward(const float* x, const float* gamma, float* y, float* rstd, std::int64_t rows,
                     std::int64_t n, float eps);
void rmsnorm_backward(const float* x, const float* dy, const float* gamma, const float* rstd,
                      float* dx, float* dgamma, std::int64_t rows, std::int64_t n);
void gelu_forward(const float* x, float* y, std::int64_t n);
void gelu_backward_mul(const float* x, float* dx, std::int64_t n);
void silu_forward(const float* x, float* y, std::int64_t n);
void silu_backward_mul(const float* x, float* dx, std::int64_t n);

}  // namespace fpdt::kernels::avx2

#endif  // FPDT_KERNEL_AVX2
