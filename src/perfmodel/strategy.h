// Training-strategy descriptions covering every row of Table 3 and every
// curve of Figs. 1 and 11: the sequence-parallel scheme, the ZeRO stage,
// activation checkpointing (AC) and its CPU offload (OC), and the FPDT
// chunking/offloading knobs.
#pragma once

#include <cstdint>
#include <string>

namespace fpdt::perfmodel {

enum class SeqScheme {
  kMegatronTp,   // plain tensor parallel (activations replicated)
  kMegatronSp,   // Megatron-SP: TP + sequence parallelism
  kUlysses,      // DeepSpeed Ulysses
  kFpdt,         // this paper
  kRing,         // Ring Attention (related-work comparison)
  kMst,          // Mini-sequence Transformer (Luo et al. 2024): chunks the
                 // MLP and loss only — attention spikes remain (§2.2)
};

struct Strategy {
  SeqScheme scheme = SeqScheme::kUlysses;
  int zero_stage = 0;  // 0 = replicated, 1/2/3 = ZeRO stages
  bool activation_checkpoint = false;
  bool ac_offload = false;  // OC: move checkpoints to host memory

  // FPDT knobs (ignored by other schemes).
  std::int64_t fpdt_chunk_tokens = 64 * 1024;  // global chunk size (§5.3 sweet spot)
  bool fpdt_offload = true;                    // false = "FPDT w. chunking" only
  bool fpdt_double_buffer = true;
  // Cache forward chunk outputs for a recompute-free backward; disabled
  // automatically when host memory cannot hold them (see evaluate()).
  bool fpdt_cache_fwd = true;

  // Models the PyTorch gradient-reduction memory spike the paper flags as
  // its remaining bottleneck (§6): a transient FP32 bucket covering this
  // many layers' gradients. 0 = ideal reducer (default).
  std::int64_t grad_reduce_bucket_layers = 0;

  std::string label() const;

  // Canonical configurations used across the benches.
  static Strategy megatron_tp(bool ac = false, bool oc = false);
  static Strategy megatron_sp();
  static Strategy ulysses(int zero_stage = 3, bool ac = false, bool oc = false);
  static Strategy fpdt_chunking_only();  // chunking without offload
  static Strategy fpdt();                // full FPDT (offload + double buffer)
  static Strategy mst();                 // MsT: chunked MLP + loss only
};

}  // namespace fpdt::perfmodel
