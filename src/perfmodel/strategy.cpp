#include "perfmodel/strategy.h"

namespace fpdt::perfmodel {

std::string Strategy::label() const {
  std::string base;
  switch (scheme) {
    case SeqScheme::kMegatronTp:
      base = "TP";
      break;
    case SeqScheme::kMegatronSp:
      base = "Megatron-SP";
      break;
    case SeqScheme::kUlysses:
      base = "Ulysses";
      break;
    case SeqScheme::kFpdt:
      base = fpdt_offload ? "FPDT w. offload" : "FPDT w. chunking";
      break;
    case SeqScheme::kRing:
      base = "Ring";
      break;
    case SeqScheme::kMst:
      base = "MsT";
      break;
  }
  if (zero_stage > 0) base += "+ZeRO-" + std::to_string(zero_stage);
  if (activation_checkpoint) base += ac_offload ? "+AC(OC)" : "+AC";
  return base;
}

Strategy Strategy::megatron_tp(bool ac, bool oc) {
  Strategy s;
  s.scheme = SeqScheme::kMegatronTp;
  s.activation_checkpoint = ac;
  s.ac_offload = oc;
  return s;
}

Strategy Strategy::megatron_sp() {
  Strategy s;
  s.scheme = SeqScheme::kMegatronSp;
  // Activation checkpointing, but no CPU offload of checkpoints: OC is a
  // DeepSpeed feature the Megatron-LM stack the paper benchmarks lacks.
  s.activation_checkpoint = true;
  s.ac_offload = false;
  return s;
}

Strategy Strategy::ulysses(int zero_stage, bool ac, bool oc) {
  Strategy s;
  s.scheme = SeqScheme::kUlysses;
  s.zero_stage = zero_stage;
  s.activation_checkpoint = ac;
  s.ac_offload = oc;
  return s;
}

Strategy Strategy::fpdt_chunking_only() {
  Strategy s;
  s.scheme = SeqScheme::kFpdt;
  s.zero_stage = 3;
  s.activation_checkpoint = true;
  s.ac_offload = true;
  s.fpdt_offload = false;
  // Without host offload there is nowhere cheap to keep per-layer forward
  // caches; backward recomputes chunk-wise instead.
  s.fpdt_cache_fwd = false;
  return s;
}

Strategy Strategy::fpdt() {
  Strategy s;
  s.scheme = SeqScheme::kFpdt;
  s.zero_stage = 3;
  s.activation_checkpoint = true;
  s.ac_offload = true;
  s.fpdt_offload = true;
  return s;
}

Strategy Strategy::mst() {
  Strategy s;
  s.scheme = SeqScheme::kMst;
  s.zero_stage = 3;
  s.activation_checkpoint = true;
  s.ac_offload = true;
  return s;
}

}  // namespace fpdt::perfmodel
