// One-call evaluation of a (model, strategy, world, sequence) point:
// does it fit, what is the per-GPU memory, and what step time / MFU does
// the timeline simulator predict. Every bench for Figs. 1/11/12 and
// Tables 1/3 goes through this.
#pragma once

#include <cstdint>

#include "nn/model_config.h"
#include "perfmodel/memory_model.h"
#include "perfmodel/strategy.h"
#include "sim/hardware.h"
#include "sim/timeline.h"

namespace fpdt::perfmodel {

struct Evaluation {
  bool fits = false;
  MemoryBreakdown memory;
  sim::LayerTiming layer;
  double step_s = 0.0;
  double mfu = 0.0;
  // FPDT only: forward-output caching was disabled because host memory
  // could not hold per-layer caches (backward falls back to recompute).
  bool recompute_fallback = false;
};

Evaluation evaluate(const nn::ModelConfig& cfg, const Strategy& strategy, int world,
                    std::int64_t s_global, const sim::HardwareSpec& hw);

// FPDT chunk count per rank implied by the strategy at this sequence.
std::int64_t fpdt_chunks(const Strategy& strategy, std::int64_t s_global);

}  // namespace fpdt::perfmodel
