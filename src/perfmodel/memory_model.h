// Analytic per-GPU memory model at paper scale.
//
// The functional layer *measures* footprints at laptop scale; this model
// extrapolates the same accounting to the paper's models (2.7B–70B) and
// sequence lengths (128K–4M+), following Table 2's per-phase buffer
// inventory, the ZeRO partitioning rules (Rajbhandari et al., 2020) and the
// Megatron-SP sharding geometry. All quantities are bytes per GPU; BF16
// activations, FP32 optimizer state (16 bytes/param total model state).
//
// The params/grads/optimizer rules are CI-enforced: tests/test_zero.cpp runs
// the executable ZeRO engine (parallel/zero/) and holds the *measured*
// MemoryPool residency to these estimates per stage — change the rules here
// and the differential oracle fails with a per-component diff table.
#pragma once

#include <cstdint>

#include "nn/model_config.h"
#include "perfmodel/strategy.h"
#include "sim/hardware.h"

namespace fpdt::perfmodel {

struct MemoryBreakdown {
  std::int64_t params = 0;           // weights (resident shard)
  std::int64_t grads = 0;
  std::int64_t optimizer = 0;        // fp32 master + Adam moments
  std::int64_t gathered_params = 0;  // ZeRO-3 per-layer working gather
  std::int64_t stored_activations = 0;  // saved between fwd and bwd (on GPU)
  std::int64_t working_set = 0;      // transient per-layer buffers (peak)
  std::int64_t logits_spike = 0;     // loss-head FP32 buffer
  std::int64_t host_bytes = 0;       // offloaded state (checkpoints + chunks)

  std::int64_t device_total() const {
    return params + grads + optimizer + gathered_params + stored_activations + working_set +
           logits_spike;
  }
};

// Per-GPU memory for training `cfg` at global sequence s_global over
// `world` GPUs with the given strategy.
MemoryBreakdown estimate_memory(const nn::ModelConfig& cfg, const Strategy& strategy, int world,
                                std::int64_t s_global);

// Whether the configuration fits the device (and its node's host memory).
bool fits(const nn::ModelConfig& cfg, const Strategy& strategy, int world,
          std::int64_t s_global, const sim::HardwareSpec& hw);

// Largest power-of-two global sequence (in 128K steps below 128K…) that
// fits; 0 when even small sequences OOM (e.g. model state alone exceeds
// HBM). Searches powers of two from 32K up to `limit`.
std::int64_t max_sequence(const nn::ModelConfig& cfg, const Strategy& strategy, int world,
                          const sim::HardwareSpec& hw, std::int64_t limit = 8LL << 20);

// Table 2 export: per-phase activation buffer sizes in Nd "units" (elements
// per token x d) for documentation and the bench that checks the functional
// layer against them.
struct Table2Row {
  const char* phase;
  double forward_nd;
  double backward_nd;
};
const Table2Row* table2_rows(int* count);

}  // namespace fpdt::perfmodel
