#include "perfmodel/evaluate.h"

#include <algorithm>

#include "common/check.h"

namespace fpdt::perfmodel {

std::int64_t fpdt_chunks(const Strategy& st, std::int64_t s_global) {
  const std::int64_t chunk = std::min(st.fpdt_chunk_tokens, s_global);
  return std::max<std::int64_t>(1, s_global / chunk);
}

Evaluation evaluate(const nn::ModelConfig& cfg, const Strategy& strategy, int world,
                    std::int64_t s_global, const sim::HardwareSpec& hw) {
  Evaluation ev;
  Strategy st = strategy;
  if (st.scheme == SeqScheme::kFpdt && st.fpdt_cache_fwd &&
      !fits(cfg, st, world, s_global, hw)) {
    // Prefer the recompute-free backward, but fall back to chunk-wise
    // recompute when per-layer host caches do not fit (long sequences on
    // few GPUs — the regime of Table 1's leftmost columns).
    Strategy fallback = st;
    fallback.fpdt_cache_fwd = false;
    if (fits(cfg, fallback, world, s_global, hw)) {
      st = fallback;
      ev.recompute_fallback = true;
    }
  }
  ev.memory = estimate_memory(cfg, st, world, s_global);
  ev.fits = fits(cfg, st, world, s_global, hw);

  const sim::CostModel cm(hw, world);
  const bool tp_only = st.scheme == SeqScheme::kMegatronTp;
  const std::int64_t s_local = tp_only ? s_global : s_global / world;

  switch (st.scheme) {
    case SeqScheme::kMegatronTp:
      ev.layer = sim::megatron_layer_timing(cfg, cm, s_local, /*seq_parallel=*/false,
                                            st.activation_checkpoint);
      break;
    case SeqScheme::kMegatronSp:
      ev.layer = sim::megatron_layer_timing(cfg, cm, s_local, /*seq_parallel=*/true,
                                            st.activation_checkpoint);
      break;
    case SeqScheme::kUlysses:
      ev.layer = sim::ulysses_layer_timing(cfg, cm, s_local);
      break;
    case SeqScheme::kRing:
      ev.layer = sim::ring_layer_timing(cfg, cm, s_local);
      break;
    case SeqScheme::kMst:
      // Same dataflow as Ulysses; the MLP/loss chunking is compute-neutral.
      ev.layer = sim::ulysses_layer_timing(cfg, cm, s_local);
      break;
    case SeqScheme::kFpdt: {
      const std::int64_t u = fpdt_chunks(st, s_global);
      ev.layer = sim::fpdt_layer_timing(cfg, cm, s_local, u, st.fpdt_offload,
                                        st.fpdt_double_buffer, st.fpdt_cache_fwd);
      break;
    }
  }
  const bool chunked_head =
      st.scheme == SeqScheme::kFpdt || st.scheme == SeqScheme::kMst;
  sim::StepEstimate est = sim::step_estimate(cfg, cm, s_global, ev.layer, chunked_head);

  // ZeRO data-parallel communication (per step). Stage 1/2: one gradient
  // reduction over the full model; stage 3 additionally all-gathers each
  // layer's parameters in forward and backward (half hidden by prefetch).
  if (st.zero_stage > 0 && world > 1) {
    const std::int64_t grad_bytes = 2 * cfg.param_count();
    double zero_comm = (st.zero_stage >= 2) ? cm.reduce_scatter_time(grad_bytes)
                                            : cm.allreduce_time(grad_bytes);
    if (st.zero_stage >= 3) {
      const std::int64_t layer_bytes = 2 * cfg.param_count() / cfg.n_layer;
      zero_comm += 0.5 * 2.0 * static_cast<double>(cfg.n_layer) *
                   cm.allgather_time(layer_bytes);
    }
    est.step_s += zero_comm;
    const double useful = cfg.train_flops_per_token(s_global) *
                          static_cast<double>(s_global) / static_cast<double>(world);
    est.mfu = useful / (est.step_s * hw.peak_flops);
  }

  ev.step_s = est.step_s;
  ev.mfu = est.mfu;
  return ev;
}

}  // namespace fpdt::perfmodel
