#include "perfmodel/memory_model.h"

#include <algorithm>

#include "common/check.h"

namespace fpdt::perfmodel {

namespace {

constexpr std::int64_t kBf16 = 2;
constexpr std::int64_t kFp32 = 4;

struct Dims {
  std::int64_t d, kv_dim, f, vocab, layers;
  bool gpt;
};

Dims dims_of(const nn::ModelConfig& cfg) {
  return {cfg.d_model, cfg.n_kv_head * cfg.head_dim(), cfg.ffn_hidden, cfg.vocab, cfg.n_layer,
          cfg.arch == nn::Arch::kGpt};
}

bool is_tensor_parallel(SeqScheme s) {
  return s == SeqScheme::kMegatronTp || s == SeqScheme::kMegatronSp;
}

}  // namespace

MemoryBreakdown estimate_memory(const nn::ModelConfig& cfg, const Strategy& st, int world,
                                std::int64_t s_global) {
  FPDT_CHECK_GE(world, 1) << " world";
  const Dims dm = dims_of(cfg);
  const std::int64_t N = cfg.param_count();
  const std::int64_t P = world;
  MemoryBreakdown mb;

  // ---- Model state: weights 2B, grads 2B, fp32 master + Adam moments 12B.
  if (is_tensor_parallel(st.scheme)) {
    // Megatron shards parameters, gradients and optimizer across the TP
    // group natively.
    mb.params = 2 * N / P;
    mb.grads = 2 * N / P;
    mb.optimizer = 12 * N / P;
  } else {
    switch (st.zero_stage) {
      case 0:
        mb.params = 2 * N;
        mb.grads = 2 * N;
        mb.optimizer = 12 * N;
        break;
      case 1:
        mb.params = 2 * N;
        mb.grads = 2 * N;
        mb.optimizer = 12 * N / P;
        break;
      case 2:
        mb.params = 2 * N;
        mb.grads = 2 * N / P;
        mb.optimizer = 12 * N / P;
        break;
      default:  // ZeRO-3
        mb.params = 2 * N / P;
        mb.grads = 2 * N / P;
        mb.optimizer = 12 * N / P;
        // Two layers' parameters gathered at a time (compute + prefetch).
        mb.gathered_params = 2 * (2 * N / dm.layers);
        break;
    }
  }

  // ---- Sequence geometry.
  const bool tp_only = st.scheme == SeqScheme::kMegatronTp;
  const std::int64_t s_local = tp_only ? s_global : s_global / P;

  // ---- Stored activations (between forward and backward).
  // Without AC: the Table-2 forward inventory lives for every layer,
  // ~ (8d + 2·kv + {2|3}·f) BF16 elements per token per layer.
  const std::int64_t stored_noac_elems =
      8 * dm.d + 2 * dm.kv_dim + (dm.gpt ? 2 : 3) * dm.f;
  std::int64_t stored = 0;
  std::int64_t host = 0;
  if (!st.activation_checkpoint) {
    std::int64_t per_layer = stored_noac_elems * s_local * kBf16;
    if (tp_only) {
      // Plain TP replicates the norm/residual activations (~4d elements)
      // and shards the rest.
      const std::int64_t repl = 4 * dm.d;
      per_layer = (repl + (stored_noac_elems - repl) / P) * s_local * kBf16;
    } else if (st.scheme == SeqScheme::kMegatronSp) {
      per_layer = stored_noac_elems * s_local * kBf16;  // SP shards storage
    }
    stored = per_layer * dm.layers;
  } else {
    // AC keeps one block input per layer ([s_local, d] BF16)…
    const std::int64_t ckpt = s_local * dm.d * kBf16 * dm.layers;
    if (st.ac_offload) {
      host += ckpt;  // …moved to host with OC; a 2-chunk staging window stays
      stored = 2 * s_local * dm.d * kBf16;
    } else {
      stored = ckpt;
    }
  }
  mb.stored_activations = stored;

  // ---- Transient working set (the buffers FPDT chunks/offloads).
  const std::int64_t qkv_elems_per_tok = dm.d + 2 * dm.kv_dim;
  std::int64_t attn_tokens;   // tokens' worth of attention-layout tensors per GPU
  std::int64_t ffn_tokens;    // tokens per FFN sub-chunk per GPU
  if (st.scheme == SeqScheme::kFpdt) {
    const std::int64_t chunk = std::min(st.fpdt_chunk_tokens, s_global);
    attn_tokens = std::max<std::int64_t>(1, chunk / P);
    ffn_tokens = std::max<std::int64_t>(1, attn_tokens / 2);  // 2x chunks (§5.4)
  } else if (is_tensor_parallel(st.scheme)) {
    // TP attention/FFN GEMMs run over the *full* sequence with sharded
    // heads/hidden (the /P happens below).
    attn_tokens = s_global;
    ffn_tokens = s_global;
  } else if (st.scheme == SeqScheme::kMst) {
    // MsT chunks the MLP (and loss) but not attention — "attention
    // computation can incur the most significant memory spikes during
    // training, which remains unsolved in their method" (§2.2).
    attn_tokens = s_local;
    ffn_tokens = std::max<std::int64_t>(1, s_local / 16);
  } else {
    attn_tokens = s_local;
    ffn_tokens = s_local;
  }
  // Forward: QKV + non-in-place All2All receive buffers + output.
  std::int64_t attn_fwd_elems = (2 * qkv_elems_per_tok + 2 * dm.d) * attn_tokens;
  // Backward: FlashAttention's q,k,v,o,do,dq,dk,dv resident together (8Nd
  // for MHA) plus the All2All send/recv pair.
  std::int64_t attn_bwd_elems =
      ((4 * dm.d + 4 * dm.kv_dim) + 2 * qkv_elems_per_tok) * attn_tokens;
  std::int64_t ffn_elems = ((dm.gpt ? 2 : 3) * dm.f + 2 * dm.d) * ffn_tokens;
  if (is_tensor_parallel(st.scheme)) {
    // TP shards the attention heads and FFN hidden dimension, so the
    // transient buffers shrink by P even though the token count does not.
    attn_fwd_elems /= P;
    attn_bwd_elems /= P;
    ffn_elems /= P;
  }
  std::int64_t working =
      std::max({attn_fwd_elems, attn_bwd_elems, ffn_elems}) * kBf16;

  if (st.scheme == SeqScheme::kMegatronSp) {
    // The sequence all-gather materialises the full [s, d] activation on
    // every rank (input + gathered output in backward).
    working += 2 * s_global * dm.d * kBf16;
  } else if (st.scheme == SeqScheme::kRing) {
    // Two in-flight KV blocks (compute + receive).
    working += 2 * (2 * dm.kv_dim) * s_local * kBf16;
  } else if (st.scheme == SeqScheme::kFpdt) {
    // Per-layer chunk cache: k̂,v̂,q̂,ô (+y, d-sized). With
    // fpdt_cache_fwd the cache of *every* layer lives on host between the
    // forward and backward passes; otherwise only the layer currently in
    // backward holds one (recompute mode).
    const std::int64_t cached_elems = (2 * dm.kv_dim + 3 * dm.d) * s_local;
    if (st.fpdt_offload) {
      host += cached_elems * kBf16 * (st.fpdt_cache_fwd ? dm.layers : 1);
      const int window = st.fpdt_double_buffer ? 2 : 1;
      working += window * 2 * dm.kv_dim * attn_tokens * kBf16;
    } else {
      // "FPDT w. chunking": the cache stays in HBM — all layers' worth if
      // forward outputs are kept, one layer's if backward recomputes.
      working += cached_elems * kBf16 * (st.fpdt_cache_fwd ? dm.layers : 1);
    }
  }
  mb.working_set = working;

  // ---- Loss-head logits spike (FP32, §5.4).
  if (st.scheme == SeqScheme::kMst) {
    // MsT chunks the loss computation; same 2·s_local·d-byte bound.
    mb.logits_spike = 2 * s_local * dm.d;
  } else if (st.scheme == SeqScheme::kFpdt) {
    // Chunked at vocab/hidden × 2: s_local·d/(2·vocab) tokens hold FP32
    // logits at a time ⇒ spike of exactly 2·s_local·d bytes.
    mb.logits_spike = 2 * s_local * dm.d;
  } else if (is_tensor_parallel(st.scheme)) {
    mb.logits_spike = s_local * (dm.vocab / P) * kFp32;  // vocab-parallel head
  } else {
    mb.logits_spike = s_local * dm.vocab * kFp32;
  }

  // ---- Gradient-reduction bucket spike (§6 "future work" bottleneck).
  if (st.grad_reduce_bucket_layers > 0) {
    mb.working_set += st.grad_reduce_bucket_layers * (N / dm.layers) * kFp32;
  }

  mb.host_bytes = host;
  return mb;
}

bool fits(const nn::ModelConfig& cfg, const Strategy& st, int world, std::int64_t s_global,
          const sim::HardwareSpec& hw) {
  const MemoryBreakdown mb = estimate_memory(cfg, st, world, s_global);
  if (mb.device_total() > hw.usable_hbm()) return false;
  // Host memory is per node, shared by the GPUs on that node.
  const std::int64_t host_per_node =
      mb.host_bytes * static_cast<std::int64_t>(std::min(world, hw.gpus_per_node));
  return host_per_node <= hw.host_bytes;
}

std::int64_t max_sequence(const nn::ModelConfig& cfg, const Strategy& st, int world,
                          const sim::HardwareSpec& hw, std::int64_t limit) {
  Strategy fallback = st;
  fallback.fpdt_cache_fwd = false;  // recompute mode needs less host memory
  std::int64_t best = 0;
  for (std::int64_t s = 32 * 1024; s <= limit; s *= 2) {
    if (fits(cfg, st, world, s, hw) ||
        (st.scheme == SeqScheme::kFpdt && fits(cfg, fallback, world, s, hw))) {
      best = s;
    }
  }
  return best;
}

const Table2Row* table2_rows(int* count) {
  // Paper Table 2: memory footprint at each step of a Transformer block,
  // in Nd units (N tokens × d hidden, BF16 elements).
  static const Table2Row rows[] = {
      {"hidden", 1.0, 2.0},   {"qkv_proj", 3.0, 6.0}, {"all2all", 4.0, 4.0},
      {"attention", 4.0, 8.0}, {"ffn", 4.0, 8.0},      {"other", 3.0, 3.0},
  };
  *count = static_cast<int>(sizeof(rows) / sizeof(rows[0]));
  return rows;
}

}  // namespace fpdt::perfmodel
