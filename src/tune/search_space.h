// FPDT tuning-knob grid (§5.3 chunk size, §5.4 FFN/loss-head chunking, the
// ZeRO/offload/double-buffer/cache composition of Table 3) plus the
// constraint predicates that make a grid point executable at a given
// (world, s_global): rank-ordinal sharding needs s_global divisible by
// world·u (data/rank_ordinal.h), and equivalent knob settings collapse to
// one canonical candidate so the planner never scores duplicates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/fpdt_config.h"
#include "perfmodel/strategy.h"

namespace fpdt::tune {

// One grid point, in both vocabularies: the executable core::FpdtConfig the
// Runner hands to the trainer, and the analytic perfmodel::Strategy the
// Planner prices. Keeping the pair together is what makes per-candidate
// modeled-vs-measured deltas possible.
struct Candidate {
  core::FpdtConfig cfg;
  perfmodel::Strategy strategy;
  std::string label;  // deterministic short name, e.g. "u4-z3-off+db+cf-ffn2-lm0"
};

// Maps an executable config onto the analytic model's vocabulary at
// (world, s_global) and stamps the canonical label.
Candidate make_candidate(core::FpdtConfig cfg, int world, std::int64_t s_global);

struct SearchSpace {
  std::vector<std::int64_t> chunks_per_rank{1, 2, 4, 8};       // u
  std::vector<int> zero_stages{0, 1, 2, 3};
  std::vector<std::int64_t> ffn_chunk_multipliers{1, 2};       // §5.4: 2x suffices
  std::vector<std::int64_t> lm_head_chunks{0};                 // 0 = vocab/hidden*2 rule
  std::vector<bool> offload{true, false};
  std::vector<bool> double_buffer{true, false};
  std::vector<bool> cache_fwd{true, false};

  // 2D grid axes (topo/topology.h, parallel/grid2d.h): emulated nodes are
  // world / ranks_per_node, head_degree is the fast-axis span of the head
  // All2All. Defaults {0} (flat fabric, 1D sequence parallelism) keep the
  // seed's grid size; a topology sweep opts in with e.g. {0, 2, 4}.
  // enumerate() drops shapes violating the divisibility rules (the model's
  // head count is checked later, by the planner's caller — enumerate does
  // not see the model).
  std::vector<int> ranks_per_node{0};
  std::vector<int> head_degrees{0};

  // Math-kernel backends to sweep (kernels/backend.h). Defaults to the
  // single process-default entry ("" = inherit) so the grid size is
  // unchanged unless a sweep opts in (e.g. {"scalar", "simd"}). Backends
  // change host wall time, not the emulated virtual clock the planner
  // prices, so the default sweep would measure duplicates.
  std::vector<std::string> kernel_backends{""};

  // Rank-ordinal divisibility: every rank holds u chunks of equal size, so
  // s_global must divide by world·u with at least one token per chunk.
  static bool divisible(int world, std::int64_t s_global, std::int64_t u);

  // Every valid, canonical candidate at (world, s_global), in a
  // deterministic order. Canonicalization: without offload there is no
  // migration, so double_buffer/stream_prefetch are forced off and those
  // grid axes collapse.
  std::vector<Candidate> enumerate(int world, std::int64_t s_global) const;
};

}  // namespace fpdt::tune
