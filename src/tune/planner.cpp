#include "tune/planner.h"

#include <algorithm>

#include "common/units.h"
#include "parallel/grid2d.h"
#include "perfmodel/memory_model.h"

namespace fpdt::tune {

std::int64_t memory_floor(const nn::ModelConfig& model, const perfmodel::Strategy& strategy,
                          int world, std::int64_t s_global) {
  const perfmodel::MemoryBreakdown mb =
      perfmodel::estimate_memory(model, strategy, world, s_global);
  const std::int64_t model_state = mb.params + mb.grads + mb.optimizer;
  // 5% slack keeps the bound below the measured residency even though the
  // analytic parameter count omits biases (measured runs ~1% *above* the
  // estimate; see `fpdt footprint`'s delta column).
  return model_state - model_state / 20;
}

std::vector<PlannedCandidate> Planner::plan() const {
  const std::int64_t budget = req_.budget();
  std::vector<PlannedCandidate> out;
  for (const Candidate& c : req_.space.enumerate(req_.world, req_.s_global)) {
    // SearchSpace::enumerate checks the world-divisibility rules but never
    // sees the model; the head-count rule (head_degree | n_head) lands here.
    if (!parallel::Grid2D::valid(req_.world, c.cfg.ranks_per_node, c.cfg.head_degree,
                                 req_.model.n_head)) {
      continue;
    }
    PlannedCandidate pc;
    pc.cand = c;
    pc.modeled = perfmodel::evaluate(req_.model, c.strategy, req_.world, req_.s_global, req_.hw);
    pc.floor_bytes = memory_floor(req_.model, c.strategy, req_.world, req_.s_global);
    pc.modeled_fits = pc.modeled.memory.device_total() <= budget;
    if (pc.floor_bytes > budget) {
      pc.pruned = true;
      pc.prune_reason = "model-state floor " + format_bytes(pc.floor_bytes) +
                        " exceeds budget " + format_bytes(budget);
    }
    out.push_back(std::move(pc));
  }
  std::sort(out.begin(), out.end(), [](const PlannedCandidate& a, const PlannedCandidate& b) {
    if (a.pruned != b.pruned) return !a.pruned;
    if (!a.pruned) {
      // Spend the Runner's top-K slots on candidates the model predicts to
      // fit the budget before chasing raw modeled speed: the modeled-fastest
      // points are typically the memory-heaviest (resident store, cached
      // forward), and executing only those can leave the report winnerless.
      if (a.modeled_fits != b.modeled_fits) return a.modeled_fits;
      if (a.modeled.step_s != b.modeled.step_s) return a.modeled.step_s < b.modeled.step_s;
    }
    return a.cand.label < b.cand.label;
  });
  return out;
}

}  // namespace fpdt::tune
