// Model-guided candidate planning for `fpdt tune`.
//
// The planner prices every SearchSpace candidate with the analytic
// memory+latency model (perfmodel::evaluate) and prunes *conservatively*:
// a candidate is discarded only when a provable lower bound on its measured
// HBM peak — the ZeRO-partitioned model-state bytes, which the executable
// engine's differential oracle (tests/test_zero.cpp) pins to the analytic
// estimate within 2% — already exceeds the budget. Activation and
// working-set terms are deliberately excluded from the bound: the analytic
// model prices them at paper-pipeline granularity and may overestimate an
// executed laptop-scale step, which would make pruning unsound. The
// prune-soundness contract (tests/test_tune.cpp): no pruned candidate ever
// measures as fitting the budget.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/model_config.h"
#include "perfmodel/evaluate.h"
#include "sim/hardware.h"
#include "tune/search_space.h"

namespace fpdt::tune {

struct TuneRequest {
  nn::ModelConfig model = nn::tiny_gpt(64, 2, 4, 96);
  int world = 2;
  std::int64_t s_global = 512;        // tokens per training step
  std::int64_t hbm_budget_bytes = 0;  // <= 0: the hardware's usable HBM
  int top_k = 6;                      // surviving candidates to execute
  int steps = 1;                      // profiled steps per executed candidate
  std::uint64_t seed = 1234;
  SearchSpace space;
  sim::HardwareSpec hw = sim::a100_80g_node();
  std::string cache_path;             // Runner result cache; empty = in-memory only

  std::int64_t budget() const {
    return hbm_budget_bytes > 0 ? hbm_budget_bytes : hw.usable_hbm();
  }
};

// Conservative lower bound (bytes) on the measured HBM peak of `strategy`:
// the stage's resident model-state estimate with a 5% slack for the bias
// parameters and shard padding the analytic count omits.
std::int64_t memory_floor(const nn::ModelConfig& model, const perfmodel::Strategy& strategy,
                          int world, std::int64_t s_global);

struct PlannedCandidate {
  Candidate cand;
  perfmodel::Evaluation modeled;   // analytic memory + step time for this point
  std::int64_t floor_bytes = 0;    // memory_floor() — the pruning bound
  bool modeled_fits = false;       // modeled device total within the budget
  bool pruned = false;             // floor over budget: provably cannot fit
  std::string prune_reason;        // empty unless pruned
};

class Planner {
 public:
  explicit Planner(TuneRequest req) : req_(std::move(req)) {}

  // Enumerate -> analytic evaluation -> conservative memory pruning.
  // Survivors come first — candidates the model predicts to fit the budget
  // ahead of the rest, fastest-modeled within each group, label tie-break —
  // so the Runner's top-K execution slots go to the configurations most
  // likely to both fit and win. Pruned candidates follow in label order.
  std::vector<PlannedCandidate> plan() const;

  const TuneRequest& request() const { return req_; }

 private:
  TuneRequest req_;
};

}  // namespace fpdt::tune
