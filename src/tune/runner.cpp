#include "tune/runner.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "obs/profiler.h"

namespace fpdt::tune {

namespace {

constexpr const char* kCacheMagic = "FPDTTUNE1";

// Exact double round-trip via the IEEE-754 bit pattern in hex.
std::string bits_of(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(u));
  return buf;
}

bool bits_to(const std::string& s, double* v) {
  if (s.size() != 16) return false;
  std::uint64_t u = 0;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else return false;
    u = (u << 4) | static_cast<std::uint64_t>(d);
  }
  std::memcpy(v, &u, sizeof(u));
  return true;
}

}  // namespace

std::uint64_t Runner::fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

Runner::Runner(TuneRequest req) : req_(std::move(req)) { load_cache(); }

std::string Runner::cache_key(const Candidate& c) const {
  std::ostringstream os;
  os << "model=" << req_.model.name << "/" << req_.model.d_model << "x" << req_.model.n_layer
     << "h" << req_.model.n_head << "kv" << req_.model.n_kv_head << "f" << req_.model.ffn_hidden
     << "v" << req_.model.vocab << ";world=" << req_.world << ";seq=" << req_.s_global
     << ";steps=" << req_.steps << ";seed=" << req_.seed << ";" << c.cfg.canonical();
  return os.str();
}

Measurement Runner::run(const Candidate& c) {
  const std::string key = cache_key(c);
  if (auto it = cache_.find(key); it != cache_.end()) {
    ++hits_;
    Measurement m = it->second;
    m.from_cache = true;
    return m;
  }

  obs::ProfileOptions opt;
  opt.strategy = "fpdt";
  opt.steps = req_.steps;
  opt.world = req_.world;
  opt.chunks = c.cfg.chunks_per_rank;
  opt.chunk_tokens = req_.s_global / (static_cast<std::int64_t>(req_.world) *
                                      c.cfg.chunks_per_rank);
  opt.seed = req_.seed;
  opt.trace = false;
  opt.trace_path.clear();
  opt.metrics_path.clear();
  opt.model = req_.model;
  opt.offload = c.cfg.offload;
  opt.double_buffer = c.cfg.double_buffer;
  opt.cache_fwd = c.cfg.cache_forward_outputs;
  opt.ffn_chunk_multiplier = c.cfg.ffn_chunk_multiplier;
  opt.lm_head_chunks = c.cfg.lm_head_chunks;
  opt.zero_stage = c.cfg.zero_stage;
  opt.kernel_backend = c.cfg.kernel_backend;

  const obs::ProfileResult res = obs::run_profile(opt);
  FPDT_CHECK(!res.steps.empty()) << " candidate " << c.label << " produced no steps";
  const obs::StepStats& last = res.steps.back();

  Measurement m;
  m.virtual_step_s = last.virtual_step_s;
  m.tokens_per_s = last.tokens_per_s;
  m.overlap_ratio = last.overlap_ratio;
  m.hbm_peak_bytes = last.hbm_peak_bytes;
  m.loss = last.loss;
  ++executed_;
  cache_.emplace(key, m);
  if (!req_.cache_path.empty()) save_cache();
  return m;
}

void Runner::load_cache() {
  if (req_.cache_path.empty()) return;
  std::ifstream in(req_.cache_path);
  if (!in) return;  // cold cache
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream is(line);
    std::string magic, hash, key, step_s, tok_s, overlap, loss;
    std::int64_t hbm = 0;
    if (!(is >> magic >> hash >> key >> step_s >> tok_s >> overlap >> hbm >> loss)) continue;
    if (magic != kCacheMagic) continue;
    Measurement m;
    if (!bits_to(step_s, &m.virtual_step_s) || !bits_to(tok_s, &m.tokens_per_s) ||
        !bits_to(overlap, &m.overlap_ratio) || !bits_to(loss, &m.loss)) {
      continue;  // corrupt line: drop it, re-measure on demand
    }
    m.hbm_peak_bytes = hbm;
    // Tamper check: the hash must match the key it claims to cover.
    char want[20];
    std::snprintf(want, sizeof(want), "%016llx",
                  static_cast<unsigned long long>(fnv1a(key)));
    if (hash != want) continue;
    cache_.emplace(std::move(key), m);
  }
}

void Runner::save_cache() const {
  std::ofstream out(req_.cache_path, std::ios::trunc);
  FPDT_CHECK(out.good()) << " cannot write tune cache " << req_.cache_path;
  for (const auto& [key, m] : cache_) {
    char hash[20];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(fnv1a(key)));
    out << kCacheMagic << " " << hash << " " << key << " " << bits_of(m.virtual_step_s) << " "
        << bits_of(m.tokens_per_s) << " " << bits_of(m.overlap_ratio) << " "
        << m.hbm_peak_bytes << " " << bits_of(m.loss) << "\n";
  }
}

}  // namespace fpdt::tune
