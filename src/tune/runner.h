// Deterministic candidate execution for `fpdt tune`.
//
// Each candidate runs as real profiled training steps through
// obs::run_profile (same tiny-model executed path as `fpdt profile`), with
// the request's seed, so a (request, candidate) pair always measures the
// same numbers. Results are cached under a canonical key — model geometry,
// world, sequence, steps, seed, and FpdtConfig::canonical() — hashed with
// FNV-1a; with TuneRequest::cache_path set the cache persists across
// processes, so re-tuning after a knob or budget change only executes the
// configurations it has never seen. Doubles are serialized as IEEE-754 bit
// patterns, which is what makes a warm-cache TuneReport bit-identical to
// the cold one.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "tune/planner.h"

namespace fpdt::tune {

// One executed (or cache-recalled) candidate measurement, all on the
// emulated runtime's virtual clock; the final profiled step's stats.
struct Measurement {
  double virtual_step_s = 0.0;
  double tokens_per_s = 0.0;
  double overlap_ratio = 0.0;
  std::int64_t hbm_peak_bytes = 0;
  double loss = 0.0;
  bool from_cache = false;  // transient; not serialized
};

class Runner {
 public:
  // Loads cache_path when set (a missing file is an empty cache, not an
  // error; a corrupt line invalidates only that line).
  explicit Runner(TuneRequest req);

  // Cache hit or execute-and-remember. Persists the cache file after every
  // executed candidate when cache_path is set (crash-cheap: re-tuning after
  // an interrupt resumes where it stopped).
  Measurement run(const Candidate& c);

  // Canonical cache key for a candidate under this request.
  std::string cache_key(const Candidate& c) const;

  static std::uint64_t fnv1a(const std::string& s);

  int cache_hits() const { return hits_; }
  int executed() const { return executed_; }

 private:
  void load_cache();
  void save_cache() const;

  TuneRequest req_;
  std::map<std::string, Measurement> cache_;
  int hits_ = 0;
  int executed_ = 0;
};

}  // namespace fpdt::tune
