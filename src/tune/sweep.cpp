#include "tune/sweep.h"

#include <map>
#include <sstream>

#include "common/units.h"
#include "nn/model_config.h"
#include "perfmodel/evaluate.h"

namespace fpdt::tune {

std::vector<ChunkSweepRow> chunk_sweep(std::int64_t s_global) {
  const sim::HardwareSpec hw = sim::a100_80g_node();
  struct ModelCase {
    nn::ModelConfig cfg;
    int world;
  };
  // As in the paper: 2.7B/6.7B on 4 GPUs; TP-free ZeRO-3 needs 8/16 GPUs to
  // fit 13B/30B model state.
  const ModelCase cases[] = {
      {nn::gpt_2p7b(), 4},
      {nn::gpt_6p7b(), 4},
      {nn::gpt_13b(), 8},
      {nn::gpt_30b(), 16},
  };

  std::vector<ChunkSweepRow> rows;
  for (const ModelCase& mc : cases) {
    for (std::int64_t chunk = 8 * 1024; chunk <= s_global; chunk *= 2) {
      perfmodel::Strategy st = perfmodel::Strategy::fpdt();
      st.fpdt_chunk_tokens = chunk;
      const perfmodel::Evaluation ev =
          perfmodel::evaluate(mc.cfg, st, mc.world, s_global, hw);
      ChunkSweepRow r;
      r.model = mc.cfg.name;
      r.world = mc.world;
      r.chunk_tokens = chunk;
      r.chunks = s_global / chunk;
      r.mfu = ev.mfu;
      r.model_state = ev.memory.params + ev.memory.grads + ev.memory.optimizer +
                      ev.memory.gathered_params;
      r.hbm_total = ev.memory.device_total();
      r.activations = r.hbm_total - r.model_state;
      rows.push_back(std::move(r));
    }
  }
  return rows;
}

TextTable chunk_sweep_table(const std::vector<ChunkSweepRow>& rows) {
  TextTable t({"model", "gpus", "chunk", "chunks", "mfu", "hbm_total", "model_state",
               "activations"});
  for (const ChunkSweepRow& r : rows) {
    t.add_row({r.model, std::to_string(r.world), format_token_count(r.chunk_tokens),
               std::to_string(r.chunks), cell_pct(r.mfu), format_bytes(r.hbm_total),
               format_bytes(r.model_state), format_bytes(r.activations)});
  }
  return t;
}

bool check_chunk_curve(const std::vector<ChunkSweepRow>& rows, std::string* why,
                       double flat_tol) {
  // Group into per-model series, preserving chunk order.
  std::map<std::string, std::vector<const ChunkSweepRow*>> series;
  for (const ChunkSweepRow& r : rows) series[r.model].push_back(&r);

  std::ostringstream err;
  for (const auto& [model, pts] : series) {
    double max_mfu = 0.0;
    for (const ChunkSweepRow* p : pts) max_mfu = std::max(max_mfu, p->mfu);

    std::size_t sweet = pts.size();
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (pts[i]->mfu >= max_mfu - flat_tol) {
        sweet = i;
        break;
      }
    }
    if (sweet == pts.size()) {
      err << model << ": no sweet spot found\n";
      continue;
    }
    const std::int64_t sweet_chunk = pts[sweet]->chunk_tokens;
    if (sweet_chunk < 32 * 1024 || sweet_chunk > 128 * 1024) {
      err << model << ": sweet spot " << format_token_count(sweet_chunk)
          << " outside [32K, 128K] (paper models 64K)\n";
    }
    for (std::size_t i = 0; i + 1 <= sweet && i + 1 < pts.size(); ++i) {
      if (pts[i + 1]->mfu <= pts[i]->mfu) {
        err << model << ": MFU not strictly rising before the sweet spot ("
            << format_token_count(pts[i]->chunk_tokens) << " -> "
            << format_token_count(pts[i + 1]->chunk_tokens) << ")\n";
      }
    }
    for (std::size_t i = sweet; i < pts.size(); ++i) {
      if (pts[i]->mfu < max_mfu - flat_tol) {
        err << model << ": MFU sags beyond the sweet spot at "
            << format_token_count(pts[i]->chunk_tokens) << " (" << pts[i]->mfu << " vs max "
            << max_mfu << ")\n";
      }
    }
    for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
      if (pts[i + 1]->hbm_total < pts[i]->hbm_total) {
        err << model << ": HBM not monotone in chunk size ("
            << format_token_count(pts[i]->chunk_tokens) << " -> "
            << format_token_count(pts[i + 1]->chunk_tokens) << ")\n";
      }
    }
  }
  if (err.str().empty()) return true;
  if (why != nullptr) *why = err.str();
  return false;
}

}  // namespace fpdt::tune
