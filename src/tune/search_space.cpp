#include "tune/search_space.h"

#include <set>

#include "common/check.h"

namespace fpdt::tune {

namespace {

std::string label_of(const core::FpdtConfig& cfg) {
  std::string s = "u" + std::to_string(cfg.chunks_per_rank) + "-z" +
                  std::to_string(cfg.zero_stage) + "-";
  if (cfg.offload) {
    s += "off";
    if (cfg.double_buffer) s += "+db";
  } else {
    s += "res";  // resident chunk store ("FPDT w. chunking")
  }
  if (cfg.cache_forward_outputs) s += "+cf";
  s += "-ffn" + std::to_string(cfg.ffn_chunk_multiplier) + "-lm" +
       std::to_string(cfg.lm_head_chunks);
  // Non-default math-kernel backend is part of the candidate's identity
  // (distinct float accumulation order => distinct measurement).
  if (!cfg.kernel_backend.empty() && cfg.kernel_backend != "scalar") {
    s += "-" + cfg.kernel_backend;
  }
  // Grid shape only when it departs from the seed's flat/1D default.
  if (cfg.ranks_per_node > 0) s += "-rpn" + std::to_string(cfg.ranks_per_node);
  if (cfg.head_degree > 0) s += "-hd" + std::to_string(cfg.head_degree);
  return s;
}

}  // namespace

Candidate make_candidate(core::FpdtConfig cfg, int world, std::int64_t s_global) {
  FPDT_CHECK_GE(world, 1) << " world";
  FPDT_CHECK(SearchSpace::divisible(world, s_global, cfg.chunks_per_rank))
      << " s_global " << s_global << " not divisible into " << world << " ranks x "
      << cfg.chunks_per_rank << " chunks";
  Candidate c;
  c.cfg = cfg;
  c.strategy = perfmodel::Strategy::fpdt();
  // ZeRO stage -1 (seed sentinel, no model-state accounting) prices like the
  // fully replicated stage 0.
  c.strategy.zero_stage = cfg.zero_stage < 0 ? 0 : cfg.zero_stage;
  // The analytic model thinks in *global* chunk tokens (§5.3); u local
  // chunks per rank over P ranks means s_global / u tokens per global chunk.
  c.strategy.fpdt_chunk_tokens = s_global / cfg.chunks_per_rank;
  c.strategy.fpdt_offload = cfg.offload;
  c.strategy.fpdt_double_buffer = cfg.double_buffer;
  c.strategy.fpdt_cache_fwd = cfg.cache_forward_outputs;
  c.label = label_of(cfg);
  return c;
}

bool SearchSpace::divisible(int world, std::int64_t s_global, std::int64_t u) {
  if (u < 1 || world < 1 || s_global < 1) return false;
  if (s_global % (static_cast<std::int64_t>(world) * u) != 0) return false;
  return s_global / (static_cast<std::int64_t>(world) * u) >= 1;
}

std::vector<Candidate> SearchSpace::enumerate(int world, std::int64_t s_global) const {
  std::vector<Candidate> out;
  std::set<std::string> seen;  // canonicalization collapses duplicate behaviors
  for (std::int64_t u : chunks_per_rank) {
    if (!divisible(world, s_global, u)) continue;
    for (int stage : zero_stages) {
      for (std::int64_t ffn : ffn_chunk_multipliers) {
        for (std::int64_t lm : lm_head_chunks) {
          for (bool off : offload) {
            for (bool db : double_buffer) {
              for (bool cf : cache_fwd) {
                for (const std::string& kb : kernel_backends) {
                  for (int rpn : ranks_per_node) {
                    // A grid axis must tile the world exactly (node-major
                    // placement needs full uniform nodes); rpn == world is
                    // the single-node degenerate and collapses to flat.
                    if (rpn > 0 && (rpn > world || world % rpn != 0)) continue;
                    for (int hd : head_degrees) {
                      // The head axis must tile the world and stay inside
                      // one node (parallel/grid2d.h's validity rules; the
                      // model's n_head is checked by the planner's caller).
                      if (hd > 0 && (hd > world || world % hd != 0)) continue;
                      if (hd > 0 && rpn > 0 && rpn % hd != 0) continue;
                      core::FpdtConfig cfg;
                      cfg.chunks_per_rank = u;
                      cfg.zero_stage = stage;
                      cfg.ffn_chunk_multiplier = ffn;
                      cfg.lm_head_chunks = lm;
                      cfg.offload = off;
                      cfg.double_buffer = off && db;
                      cfg.stream_prefetch = off;
                      cfg.cache_forward_outputs = cf;
                      cfg.kernel_backend = kb;
                      cfg.ranks_per_node = rpn;
                      cfg.head_degree = hd;
                      if (!seen.insert(cfg.canonical()).second) continue;
                      out.push_back(make_candidate(cfg, world, s_global));
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace fpdt::tune
