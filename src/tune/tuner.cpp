#include "tune/tuner.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/table.h"
#include "common/units.h"

namespace fpdt::tune {

namespace {

std::string ratio_cell(double r) { return r > 0.0 ? cell_f2(r) + "x" : "-"; }

}  // namespace

core::FpdtConfig TuneReport::winning_config() const {
  FPDT_CHECK_GE(winner, 0) << " no winning configuration (nothing executed fits the budget)";
  return rows[static_cast<std::size_t>(winner)].planned.cand.cfg;
}

std::string TuneReport::table() const {
  TextTable t({"#", "config", "step(model)", "hbm(model)", "floor", "step(meas)", "tok/s",
               "hbm(meas)", "d-step", "d-hbm", "status"});
  int rank = 0;
  for (const TuneRow& r : rows) {
    ++rank;
    const perfmodel::MemoryBreakdown& mb = r.planned.modeled.memory;
    t.add_row({std::to_string(rank), r.planned.cand.label,
               format_seconds(r.planned.modeled.step_s), format_bytes(mb.device_total()),
               format_bytes(r.planned.floor_bytes),
               r.executed ? format_seconds(r.measured.virtual_step_s) : "-",
               r.executed ? cell_f2(r.measured.tokens_per_s) : "-",
               r.executed ? format_bytes(r.measured.hbm_peak_bytes) : "-",
               ratio_cell(r.time_ratio), ratio_cell(r.mem_ratio), r.status});
  }
  std::ostringstream os;
  t.print(os);
  return os.str();
}

std::string TuneReport::json() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\"model\":\"" << model << "\",\"world\":" << world << ",\"s_global\":" << s_global
     << ",\"budget_bytes\":" << budget_bytes << ",\"top_k\":" << top_k << ",\"steps\":" << steps
     << ",\"seed\":" << seed << ",\"enumerated\":" << enumerated
     << ",\"pruned\":" << pruned_count << ",\"executed\":" << executed_count << ",\"winner\":"
     << (winner >= 0 ? "\"" + rows[static_cast<std::size_t>(winner)].planned.cand.label + "\""
                     : "null")
     << ",\"candidates\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const TuneRow& r = rows[i];
    const core::FpdtConfig& cfg = r.planned.cand.cfg;
    const perfmodel::MemoryBreakdown& mb = r.planned.modeled.memory;
    if (i > 0) os << ",";
    os << "{\"rank\":" << (i + 1) << ",\"label\":\"" << r.planned.cand.label << "\",\"status\":\""
       << r.status << "\",\"executed\":" << (r.executed ? "true" : "false")
       << ",\"pruned\":" << (r.planned.pruned ? "true" : "false") << ",\"config\":{"
       << "\"chunks_per_rank\":" << cfg.chunks_per_rank
       << ",\"chunk_tokens\":" << r.planned.cand.strategy.fpdt_chunk_tokens
       << ",\"offload\":" << (cfg.offload ? "true" : "false")
       << ",\"double_buffer\":" << (cfg.double_buffer ? "true" : "false")
       << ",\"cache_fwd\":" << (cfg.cache_forward_outputs ? "true" : "false")
       << ",\"ffn_chunk_multiplier\":" << cfg.ffn_chunk_multiplier
       << ",\"lm_head_chunks\":" << cfg.lm_head_chunks << ",\"zero_stage\":" << cfg.zero_stage
       << "},\"modeled\":{\"step_s\":" << r.planned.modeled.step_s
       << ",\"mfu\":" << r.planned.modeled.mfu
       << ",\"device_total_bytes\":" << mb.device_total()
       << ",\"floor_bytes\":" << r.planned.floor_bytes
       << ",\"fits_budget\":" << (r.planned.modeled_fits ? "true" : "false") << "}";
    if (r.executed) {
      os << ",\"measured\":{\"virtual_step_s\":" << r.measured.virtual_step_s
         << ",\"tokens_per_s\":" << r.measured.tokens_per_s
         << ",\"overlap_ratio\":" << r.measured.overlap_ratio
         << ",\"hbm_peak_bytes\":" << r.measured.hbm_peak_bytes << ",\"loss\":" << r.measured.loss
         << ",\"fits_budget\":" << (r.fits_budget ? "true" : "false")
         << "},\"delta\":{\"time_ratio\":" << r.time_ratio << ",\"mem_ratio\":" << r.mem_ratio
         << "}";
    }
    if (r.planned.pruned) os << ",\"prune_reason\":\"" << r.planned.prune_reason << "\"";
    os << "}";
  }
  os << "]}";
  return os.str();
}

TuneReport tune(const TuneRequest& req) {
  // The tuner executes real training steps; keep it honest about scale so a
  // paper-size model spec fails fast instead of grinding forever.
  FPDT_CHECK_LE(req.model.param_count(), 100LL * 1000 * 1000)
      << " tune executes real steps; use a small model spec (the analytic-only"
         " commands handle paper scale)";
  FPDT_CHECK_LE(req.s_global, 1 << 20) << " tune sequence too large to execute";
  FPDT_CHECK_GE(req.steps, 1) << " tune steps";
  FPDT_CHECK_GE(req.top_k, 1) << " tune top_k";

  const std::int64_t budget = req.budget();
  Planner planner(req);
  std::vector<PlannedCandidate> planned = planner.plan();

  TuneReport rep;
  rep.model = req.model.name;
  rep.world = req.world;
  rep.s_global = req.s_global;
  rep.budget_bytes = budget;
  rep.top_k = req.top_k;
  rep.steps = req.steps;
  rep.seed = req.seed;
  rep.enumerated = static_cast<int>(planned.size());

  Runner runner(req);
  int executed = 0;
  for (PlannedCandidate& pc : planned) {
    TuneRow row;
    row.planned = std::move(pc);
    if (row.planned.pruned) {
      ++rep.pruned_count;
      row.status = "pruned";
    } else if (executed < req.top_k) {
      ++executed;
      row.executed = true;
      row.measured = runner.run(row.planned.cand);
      row.fits_budget = row.measured.hbm_peak_bytes <= budget;
      if (row.planned.modeled.step_s > 0.0) {
        row.time_ratio = row.measured.virtual_step_s / row.planned.modeled.step_s;
      }
      if (row.planned.modeled.memory.device_total() > 0) {
        row.mem_ratio = static_cast<double>(row.measured.hbm_peak_bytes) /
                        static_cast<double>(row.planned.modeled.memory.device_total());
      }
      row.status = row.fits_budget ? "fits" : "over-budget";
    } else {
      row.status = "skipped";  // analytic-only: beyond top-K, never executed
    }
    rep.rows.push_back(std::move(row));
  }
  rep.executed_count = executed;
  rep.cache_hits = runner.cache_hits();

  // Final ranking: executed rows by measured throughput (the ground truth),
  // then skipped rows by modeled step time, then pruned rows; every tie
  // breaks on the label so the report is deterministic.
  std::sort(rep.rows.begin(), rep.rows.end(), [](const TuneRow& a, const TuneRow& b) {
    const int ka = a.executed ? 0 : (a.planned.pruned ? 2 : 1);
    const int kb = b.executed ? 0 : (b.planned.pruned ? 2 : 1);
    if (ka != kb) return ka < kb;
    if (ka == 0 && a.measured.tokens_per_s != b.measured.tokens_per_s) {
      return a.measured.tokens_per_s > b.measured.tokens_per_s;
    }
    if (ka == 1 && a.planned.modeled.step_s != b.planned.modeled.step_s) {
      return a.planned.modeled.step_s < b.planned.modeled.step_s;
    }
    return a.planned.cand.label < b.planned.cand.label;
  });

  for (std::size_t i = 0; i < rep.rows.size(); ++i) {
    if (rep.rows[i].executed && rep.rows[i].fits_budget) {
      rep.winner = static_cast<int>(i);
      rep.rows[i].status = "winner";
      break;
    }
  }
  return rep;
}

}  // namespace fpdt::tune
